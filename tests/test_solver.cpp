// Unit tests for the LP solver (two-phase simplex) and the max-min
// allocation solvers, including LP-vs-heuristic agreement checks.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "solver/lp.hpp"
#include "solver/maxmin.hpp"

namespace hadar::solver {
namespace {

// ------------------------------------------------------------------ LP ----

TEST(Lp, SolvesTextbookMaximization) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
  LpProblem lp(2);
  lp.set_objective(0, 3.0);
  lp.set_objective(1, 5.0);
  lp.add_constraint({1.0, 0.0}, Relation::kLessEqual, 4.0);
  lp.add_constraint({0.0, 2.0}, Relation::kLessEqual, 12.0);
  lp.add_constraint({3.0, 2.0}, Relation::kLessEqual, 18.0);
  const auto sol = solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-7);
}

TEST(Lp, HandlesGreaterEqualWithTwoPhases) {
  // max -x - y  s.t. x + y >= 4, x <= 10, y <= 10  => obj = -4.
  LpProblem lp(2);
  lp.set_objective(0, -1.0);
  lp.set_objective(1, -1.0);
  lp.add_constraint({1.0, 1.0}, Relation::kGreaterEqual, 4.0);
  lp.add_constraint({1.0, 0.0}, Relation::kLessEqual, 10.0);
  lp.add_constraint({0.0, 1.0}, Relation::kLessEqual, 10.0);
  const auto sol = solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -4.0, 1e-7);
}

TEST(Lp, HandlesEqualityConstraints) {
  // max x + 2y  s.t. x + y = 3, x <= 2 => x=0..? best y=3, x=0 -> obj 6.
  LpProblem lp(2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 2.0);
  lp.add_constraint({1.0, 1.0}, Relation::kEqual, 3.0);
  lp.add_constraint({1.0, 0.0}, Relation::kLessEqual, 2.0);
  const auto sol = solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 6.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 3.0, 1e-7);
}

TEST(Lp, DetectsInfeasible) {
  // x <= 1 and x >= 2 cannot hold.
  LpProblem lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({1.0}, Relation::kLessEqual, 1.0);
  lp.add_constraint({1.0}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(solve(lp).status, LpStatus::kInfeasible);
}

TEST(Lp, DetectsUnbounded) {
  LpProblem lp(1);
  lp.set_objective(0, 1.0);  // max x with no upper bound
  lp.add_constraint({-1.0}, Relation::kLessEqual, 0.0);
  EXPECT_EQ(solve(lp).status, LpStatus::kUnbounded);
}

TEST(Lp, NegativeRhsIsNormalized) {
  // max -x s.t. -x <= -2  (i.e. x >= 2)  => x = 2.
  LpProblem lp(1);
  lp.set_objective(0, -1.0);
  lp.add_constraint({-1.0}, Relation::kLessEqual, -2.0);
  const auto sol = solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
}

TEST(Lp, DegenerateProblemTerminates) {
  // Classic cycling-prone instance; Bland's rule must terminate.
  LpProblem lp(4);
  lp.set_objective(0, 0.75);
  lp.set_objective(1, -150.0);
  lp.set_objective(2, 0.02);
  lp.set_objective(3, -6.0);
  lp.add_constraint({0.25, -60.0, -0.04, 9.0}, Relation::kLessEqual, 0.0);
  lp.add_constraint({0.5, -90.0, -0.02, 3.0}, Relation::kLessEqual, 0.0);
  lp.add_constraint({0.0, 0.0, 1.0, 0.0}, Relation::kLessEqual, 1.0);
  const auto sol = solve(lp);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.05, 1e-6);
}

TEST(Lp, ShortCoefficientVectorsArePadded) {
  LpProblem lp(3);
  lp.set_objective(2, 1.0);
  lp.add_constraint({0.0, 0.0, 1.0}, Relation::kLessEqual, 5.0);
  lp.add_constraint({1.0}, Relation::kLessEqual, 1.0);  // padded with zeros
  const auto sol = solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
}

TEST(Lp, RejectsBadConstruction) {
  EXPECT_THROW(LpProblem(0), std::invalid_argument);
  LpProblem lp(1);
  EXPECT_THROW(lp.set_objective(2, 1.0), std::out_of_range);
  EXPECT_THROW(lp.add_constraint({1.0, 2.0}, Relation::kLessEqual, 1.0),
               std::invalid_argument);
}

// -------------------------------------------------------------- MaxMin ----

MaxMinProblem two_job_problem() {
  // Two jobs, two types. Job 0 is fast on type 0 only; job 1 fast on both.
  MaxMinProblem p;
  p.rate = {{10.0, 1.0}, {8.0, 8.0}};
  p.demand = {1.0, 1.0};
  p.cap = {1.0, 1.0};
  p.scale = {10.0, 8.0};
  return p;
}

TEST(MaxMin, LpSolutionIsFeasibleAndFair) {
  const auto p = two_job_problem();
  const auto sol = solve_max_min_lp(p);
  ASSERT_TRUE(sol.feasible);
  // Both jobs can reach normalized throughput 1 (job0 on type0, job1 on
  // type1), so the optimum is 1.
  EXPECT_NEAR(sol.min_normalized_throughput, 1.0, 1e-6);
  // Constraint check.
  for (std::size_t r = 0; r < 2; ++r) {
    double used = 0.0;
    for (std::size_t j = 0; j < 2; ++j) used += sol.y[j][r] * p.demand[j];
    EXPECT_LE(used, p.cap[r] + 1e-6);
  }
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_LE(sol.y[j][0] + sol.y[j][1], 1.0 + 1e-6);
  }
}

TEST(MaxMin, FillingMatchesLpOnEasyInstance) {
  const auto p = two_job_problem();
  const auto lp = solve_max_min_lp(p);
  const auto heur = solve_max_min_filling(p);
  ASSERT_TRUE(lp.feasible);
  ASSERT_TRUE(heur.feasible);
  EXPECT_NEAR(heur.min_normalized_throughput, lp.min_normalized_throughput, 0.05);
}

TEST(MaxMin, ScarcityIsShared) {
  // Two identical jobs compete for one device of one type.
  MaxMinProblem p;
  p.rate = {{4.0}, {4.0}};
  p.demand = {1.0, 1.0};
  p.cap = {1.0};
  p.scale = {4.0, 4.0};
  const auto sol = solve_max_min_lp(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.min_normalized_throughput, 0.5, 1e-6);
  EXPECT_NEAR(sol.y[0][0], 0.5, 1e-6);
  EXPECT_NEAR(sol.y[1][0], 0.5, 1e-6);
}

TEST(MaxMin, JobWithNoUsableTypeYieldsZero) {
  MaxMinProblem p;
  p.rate = {{0.0}, {5.0}};
  p.demand = {1.0, 1.0};
  p.cap = {1.0};
  const auto lp = solve_max_min_lp(p);
  ASSERT_TRUE(lp.feasible);
  EXPECT_NEAR(lp.min_normalized_throughput, 0.0, 1e-9);
  const auto heur = solve_max_min_filling(p);
  EXPECT_NEAR(heur.min_normalized_throughput, 0.0, 1e-9);
}

TEST(MaxMin, EmptyProblemIsFeasible) {
  MaxMinProblem p;
  p.cap = {1.0, 2.0};
  EXPECT_TRUE(solve_max_min_lp(p).feasible);
  EXPECT_TRUE(solve_max_min_filling(p).feasible);
}

TEST(MaxMin, DispatchUsesHeuristicAboveThreshold) {
  common::Rng rng(5);
  MaxMinProblem p;
  const int J = 30, R = 3;
  for (int j = 0; j < J; ++j) {
    std::vector<double> row;
    for (int r = 0; r < R; ++r) row.push_back(rng.uniform(1.0, 10.0));
    p.rate.push_back(row);
    p.demand.push_back(static_cast<double>(rng.uniform_int(1, 4)));
    p.scale.push_back(*std::max_element(row.begin(), row.end()));
  }
  p.cap = {8.0, 8.0, 8.0};

  MaxMinOptions below;
  below.lp_job_threshold = 100;  // exact LP
  MaxMinOptions above;
  above.lp_job_threshold = 5;  // heuristic
  const auto exact = solve_max_min(p, below);
  const auto heur = solve_max_min(p, above);
  ASSERT_TRUE(exact.feasible);
  ASSERT_TRUE(heur.feasible);
  // Heuristic within 25% of the optimum on random instances.
  EXPECT_GE(heur.min_normalized_throughput, 0.75 * exact.min_normalized_throughput);
  EXPECT_LE(heur.min_normalized_throughput, exact.min_normalized_throughput + 1e-6);
}

TEST(MaxMin, FillingNeverViolatesConstraints) {
  common::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    MaxMinProblem p;
    const int J = static_cast<int>(rng.uniform_int(1, 40));
    const int R = static_cast<int>(rng.uniform_int(1, 4));
    for (int j = 0; j < J; ++j) {
      std::vector<double> row;
      for (int r = 0; r < R; ++r) {
        row.push_back(rng.uniform() < 0.2 ? 0.0 : rng.uniform(0.5, 20.0));
      }
      p.rate.push_back(row);
      p.demand.push_back(static_cast<double>(rng.uniform_int(1, 8)));
    }
    for (int r = 0; r < R; ++r) p.cap.push_back(static_cast<double>(rng.uniform_int(1, 30)));
    const auto sol = solve_max_min_filling(p);
    ASSERT_TRUE(sol.feasible);
    for (int r = 0; r < R; ++r) {
      double used = 0.0;
      for (int j = 0; j < J; ++j) used += sol.y[j][r] * p.demand[j];
      EXPECT_LE(used, p.cap[r] + 1e-6) << "trial " << trial;
    }
    for (int j = 0; j < J; ++j) {
      double total = 0.0;
      for (int r = 0; r < R; ++r) {
        EXPECT_GE(sol.y[j][r], -1e-12);
        total += sol.y[j][r];
      }
      EXPECT_LE(total, 1.0 + 1e-6);
    }
  }
}

TEST(MaxSum, BeatsOrMatchesMaxMinOnTotal) {
  common::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    MaxMinProblem p;
    const int J = static_cast<int>(rng.uniform_int(2, 20));
    for (int j = 0; j < J; ++j) {
      std::vector<double> row = {rng.uniform(0.5, 10.0), rng.uniform(0.5, 10.0)};
      p.scale.push_back(*std::max_element(row.begin(), row.end()));
      p.rate.push_back(std::move(row));
      p.demand.push_back(static_cast<double>(rng.uniform_int(1, 4)));
    }
    p.cap = {6.0, 6.0};
    const auto fair = solve_max_min_lp(p);
    const auto sum = solve_max_sum(p);
    ASSERT_TRUE(fair.feasible);
    ASSERT_TRUE(sum.feasible);
    auto total = [&](const MaxMinSolution& s) {
      double t = 0.0;
      for (int j = 0; j < J; ++j) {
        for (std::size_t r = 0; r < 2; ++r) {
          t += s.y[static_cast<std::size_t>(j)][r] * p.rate[static_cast<std::size_t>(j)][r] /
               p.scale[static_cast<std::size_t>(j)];
        }
      }
      return t;
    };
    EXPECT_GE(total(sum), total(fair) - 1e-6) << "trial " << trial;
  }
}

TEST(MaxSum, RespectsConstraints) {
  MaxMinProblem p;
  p.rate = {{10.0, 1.0}, {8.0, 8.0}, {2.0, 6.0}};
  p.demand = {2.0, 1.0, 3.0};
  p.cap = {3.0, 3.0};
  p.scale = {10.0, 8.0, 6.0};
  for (const auto& sol : {solve_max_sum(p), [&] {
         MaxMinOptions o;
         o.lp_job_threshold = 0;  // force greedy
         return solve_max_sum(p, o);
       }()}) {
    ASSERT_TRUE(sol.feasible);
    for (std::size_t r = 0; r < 2; ++r) {
      double used = 0.0;
      for (std::size_t j = 0; j < 3; ++j) used += sol.y[j][r] * p.demand[j];
      EXPECT_LE(used, p.cap[r] + 1e-6);
    }
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_LE(sol.y[j][0] + sol.y[j][1], 1.0 + 1e-6);
    }
  }
}

TEST(MaxSum, EmptyProblemFeasible) {
  MaxMinProblem p;
  p.cap = {1.0};
  EXPECT_TRUE(solve_max_sum(p).feasible);
}

TEST(MaxMin, RejectsMalformedInput) {
  MaxMinProblem p;
  p.rate = {{1.0}};
  p.demand = {1.0, 2.0};  // arity mismatch
  p.cap = {1.0};
  EXPECT_THROW(solve_max_min_lp(p), std::invalid_argument);
  p.demand = {0.0};  // non-positive demand
  EXPECT_THROW(solve_max_min_filling(p), std::invalid_argument);
}

}  // namespace
}  // namespace hadar::solver
