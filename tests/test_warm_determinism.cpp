// End-to-end determinism of the warm-started Gavel solver: the full fig04
// scenario under Gavel max-sum must produce a bit-identical SimResult with
// warm-start on vs. off, and at 1 vs. N threads. This is the contract that
// makes warm-starting a pure optimization — invisible in every metric.
#include <gtest/gtest.h>

#include "baselines/gavel.hpp"
#include "common/thread_pool.hpp"
#include "runner/scenarios.hpp"
#include "sim/simulator.hpp"

namespace hadar {
namespace {

using common::ScopedThreadCount;

// Exact equality over every schedule-derived field (scheduler_seconds is
// wall-clock and excluded).
void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_jct, b.avg_jct);
  EXPECT_EQ(a.median_jct, b.median_jct);
  EXPECT_EQ(a.min_jct, b.min_jct);
  EXPECT_EQ(a.max_jct, b.max_jct);
  EXPECT_EQ(a.p95_jct, b.p95_jct);
  EXPECT_EQ(a.avg_queueing_delay, b.avg_queueing_delay);
  EXPECT_EQ(a.gpu_utilization, b.gpu_utilization);
  EXPECT_EQ(a.avg_job_utilization, b.avg_job_utilization);
  EXPECT_EQ(a.avg_ftf, b.avg_ftf);
  EXPECT_EQ(a.max_ftf, b.max_ftf);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_reallocations, b.total_reallocations);
  EXPECT_EQ(a.total_preemptions, b.total_preemptions);
  EXPECT_EQ(a.realloc_round_fraction, b.realloc_round_fraction);
  EXPECT_EQ(a.scheduler_calls, b.scheduler_calls);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].first_start, b.jobs[i].first_start);
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_EQ(a.jobs[i].gpu_seconds, b.jobs[i].gpu_seconds);
    EXPECT_EQ(a.jobs[i].compute_gpu_seconds, b.jobs[i].compute_gpu_seconds);
    EXPECT_EQ(a.jobs[i].rounds_run, b.jobs[i].rounds_run);
    EXPECT_EQ(a.jobs[i].preemptions, b.jobs[i].preemptions);
    EXPECT_EQ(a.jobs[i].reallocations, b.jobs[i].reallocations);
    EXPECT_EQ(a.jobs[i].ftf, b.jobs[i].ftf);
  }
}

sim::SimResult run_gavel(const runner::ExperimentConfig& cfg, baselines::GavelPolicy policy,
                         bool warm) {
  baselines::GavelConfig gc;
  gc.policy = policy;
  gc.warm_start = warm;
  baselines::GavelScheduler sched(gc);
  sim::Simulator simulator(cfg.sim);
  return simulator.run(cfg.spec, cfg.trace, sched);
}

TEST(WarmDeterminism, Fig04GavelMaxSumWarmOnOffBitIdentical) {
  const auto cfg = runner::paper_static(240, 42);  // the fig04 scenario
  sim::SimResult warm_on, warm_off, warm_on_mt;
  {
    ScopedThreadCount one(1);
    warm_on = run_gavel(cfg, baselines::GavelPolicy::kMaxSumThroughput, true);
    warm_off = run_gavel(cfg, baselines::GavelPolicy::kMaxSumThroughput, false);
  }
  {
    ScopedThreadCount four(4);
    warm_on_mt = run_gavel(cfg, baselines::GavelPolicy::kMaxSumThroughput, true);
  }
  expect_identical(warm_on, warm_off);
  expect_identical(warm_on, warm_on_mt);
  EXPECT_TRUE(warm_on.all_finished());
}

TEST(WarmDeterminism, GavelMaxMinWarmOnOffBitIdentical) {
  // Smaller instance so the max-min LP (not the filling heuristic) handles
  // every event.
  const auto cfg = runner::paper_static(64, 7);
  sim::SimResult warm_on, warm_off;
  {
    ScopedThreadCount one(1);
    warm_on = run_gavel(cfg, baselines::GavelPolicy::kMaxMinFairness, true);
    warm_off = run_gavel(cfg, baselines::GavelPolicy::kMaxMinFairness, false);
  }
  expect_identical(warm_on, warm_off);
}

}  // namespace
}  // namespace hadar
