// Unit tests for the workload substrate: job specs, the Table II model zoo,
// the synthetic Philly-style trace generator, and CSV trace round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/binary.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"
#include "workload/trace_io.hpp"

namespace hadar::workload {
namespace {

cluster::GpuTypeRegistry sim_reg() { return cluster::GpuTypeRegistry::simulation_default(); }

// ------------------------------------------------------------- JobSpec ----

TEST(JobSpec, RuntimeBounds) {
  JobSpec j;
  j.num_workers = 2;
  j.epochs = 10;
  j.chunks_per_epoch = 100;            // 1000 iterations total
  j.throughput = {10.0, 5.0, 0.0};     // K80-incompatible
  EXPECT_DOUBLE_EQ(j.total_iterations(), 1000.0);
  EXPECT_DOUBLE_EQ(j.max_throughput(), 10.0);
  EXPECT_DOUBLE_EQ(j.min_throughput(), 5.0);                  // zero excluded
  EXPECT_DOUBLE_EQ(j.min_runtime(), 1000.0 / (10.0 * 2));     // t_min (Eq. 8)
  EXPECT_DOUBLE_EQ(j.max_runtime(), 1000.0 / (5.0 * 2));      // t_max (Eq. 8)
}

TEST(JobSpec, ValidateCatchesBadFields) {
  JobSpec j;
  j.num_workers = 1;
  j.epochs = 1;
  j.chunks_per_epoch = 1;
  j.throughput = {1.0, 1.0, 1.0};
  EXPECT_NO_THROW(j.validate(3));
  JobSpec bad = j;
  bad.num_workers = 0;
  EXPECT_THROW(bad.validate(3), std::invalid_argument);
  bad = j;
  bad.throughput = {0.0, 0.0, 0.0};
  EXPECT_THROW(bad.validate(3), std::invalid_argument);
  bad = j;
  bad.throughput = {1.0};  // arity
  EXPECT_THROW(bad.validate(3), std::invalid_argument);
  bad = j;
  bad.arrival = -1.0;
  EXPECT_THROW(bad.validate(3), std::invalid_argument);
  bad = j;
  bad.checkpoint_load = -0.1;
  EXPECT_THROW(bad.validate(3), std::invalid_argument);
}

TEST(Trace, FinalizeSortsAndReindexes) {
  Trace t;
  JobSpec a;
  a.model = "late";
  a.arrival = 100.0;
  a.num_workers = 1;
  a.epochs = 1;
  a.chunks_per_epoch = 1;
  a.throughput = {1.0};
  JobSpec b = a;
  b.model = "early";
  b.arrival = 5.0;
  t.jobs = {a, b};
  t.finalize();
  EXPECT_EQ(t.jobs[0].model, "early");
  EXPECT_EQ(t.jobs[0].id, 0);
  EXPECT_EQ(t.jobs[1].id, 1);
}

// ------------------------------------------------------------ ModelZoo ----

TEST(ModelZoo, CarriesTableTwo) {
  const auto zoo = ModelZoo::paper_default();
  for (const char* name : {"ResNet-50", "ResNet-18", "LSTM", "CycleGAN", "Transformer"}) {
    EXPECT_NE(zoo.find(name), nullptr) << name;
  }
  EXPECT_EQ(zoo.find("ResNet-50")->size_class, SizeClass::kXLarge);
  EXPECT_EQ(zoo.find("ResNet-18")->size_class, SizeClass::kSmall);
  EXPECT_EQ(zoo.find("nope"), nullptr);
}

TEST(ModelZoo, ResNet50HasTenXHeterogeneity) {
  // The published spread the paper's intro quotes: ~10x V100 : K80.
  const auto zoo = ModelZoo::paper_default();
  const auto xs = zoo.throughput_vector(*zoo.find("ResNet-50"), sim_reg());
  EXPECT_NEAR(xs[0] / xs[2], 10.0, 1.0);
}

TEST(ModelZoo, A3cHasTwoXHeterogeneity) {
  const auto zoo = ModelZoo::paper_default();
  const auto xs = zoo.throughput_vector(*zoo.find("A3C"), sim_reg());
  EXPECT_NEAR(xs[0] / xs[2], 2.0, 0.2);
}

TEST(ModelZoo, ThroughputVectorZeroForUnknownTypes) {
  const auto zoo = ModelZoo::paper_default();
  cluster::GpuTypeRegistry reg({{"V100", 10.0}, {"TPUv4", 20.0}});
  const auto xs = zoo.throughput_vector(*zoo.find("LSTM"), reg);
  EXPECT_GT(xs[0], 0.0);
  EXPECT_EQ(xs[1], 0.0);
}

TEST(ModelZoo, MakeJobSizesWorkToIdealRuntime) {
  const auto zoo = ModelZoo::paper_default();
  const auto reg = sim_reg();
  const JobSpec j = zoo.make_job("LSTM", reg, 4, 3600.0);
  // Running 4 workers on the fastest type should take ~an hour.
  EXPECT_NEAR(j.min_runtime(), 3600.0, 0.05 * 3600.0);
  EXPECT_EQ(j.num_workers, 4);
  EXPECT_NO_THROW(j.validate(reg.size()));
}

TEST(ModelZoo, MakeJobRejectsBadArguments) {
  const auto zoo = ModelZoo::paper_default();
  const auto reg = sim_reg();
  EXPECT_THROW(zoo.make_job("nope", reg, 1, 60.0), std::invalid_argument);
  EXPECT_THROW(zoo.make_job("LSTM", reg, 0, 60.0), std::invalid_argument);
  EXPECT_THROW(zoo.make_job("LSTM", reg, 1, -5.0), std::invalid_argument);
}

TEST(ModelZoo, CheckpointCostsMatchTableFour) {
  // Table IV, 6-minute rounds: overhead w/ realloc = (save+load)/360,
  // w/o = save/360.
  const auto zoo = ModelZoo::paper_default();
  const auto* resnet50 = zoo.find("ResNet-50");
  EXPECT_NEAR((resnet50->checkpoint_save + resnet50->checkpoint_load) / 360.0, 0.021, 0.002);
  EXPECT_NEAR(resnet50->checkpoint_save / 360.0, 0.0033, 0.0005);
  const auto* lstm = zoo.find("LSTM");
  EXPECT_NEAR((lstm->checkpoint_save + lstm->checkpoint_load) / 360.0, 0.0201, 0.002);
}

// ------------------------------------------------------- TraceGenerator ----

class TraceGenTest : public ::testing::Test {
 protected:
  ModelZoo zoo_ = ModelZoo::paper_default();
  cluster::GpuTypeRegistry reg_ = sim_reg();
};

TEST_F(TraceGenTest, DeterministicForSameSeed) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 50;
  cfg.seed = 9;
  const Trace a = gen.generate(cfg);
  const Trace b = gen.generate(cfg);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].model, b.jobs[i].model);
    EXPECT_EQ(a.jobs[i].epochs, b.jobs[i].epochs);
    EXPECT_DOUBLE_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
  }
}

TEST_F(TraceGenTest, DifferentSeedsDiffer) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 50;
  cfg.seed = 1;
  const Trace a = gen.generate(cfg);
  cfg.seed = 2;
  const Trace b = gen.generate(cfg);
  int diffs = 0;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].epochs != b.jobs[i].epochs) ++diffs;
  }
  EXPECT_GT(diffs, 10);
}

TEST_F(TraceGenTest, StaticArrivalsAllZero) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 30;
  const Trace t = gen.generate(cfg);
  for (const auto& j : t.jobs) EXPECT_DOUBLE_EQ(j.arrival, 0.0);
}

TEST_F(TraceGenTest, ContinuousArrivalsMatchPoissonRate) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 2000;
  cfg.arrivals = ArrivalPattern::kContinuous;
  cfg.jobs_per_hour = 120.0;
  const Trace t = gen.generate(cfg);
  // Arrivals sorted, mean inter-arrival ~ 30 s.
  double last = 0.0, sum = 0.0;
  for (const auto& j : t.jobs) {
    EXPECT_GE(j.arrival, last);
    sum += j.arrival - last;
    last = j.arrival;
  }
  EXPECT_NEAR(sum / cfg.num_jobs, 30.0, 3.0);
}

TEST_F(TraceGenTest, GpuHoursRespectSizeClasses) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 300;
  cfg.seed = 3;
  const Trace t = gen.generate(cfg);
  std::map<SizeClass, int> count;
  for (const auto& j : t.jobs) {
    const double gpu_hours = j.min_runtime() * j.num_workers / 3600.0;
    ++count[j.size_class];
    switch (j.size_class) {
      case SizeClass::kSmall: EXPECT_LE(gpu_hours, 1.3); break;
      case SizeClass::kMedium:
        EXPECT_GE(gpu_hours, 0.8);
        EXPECT_LE(gpu_hours, 12.0);
        break;
      case SizeClass::kLarge:
        EXPECT_GE(gpu_hours, 8.0);
        EXPECT_LE(gpu_hours, 60.0);
        break;
      case SizeClass::kXLarge:
        EXPECT_GE(gpu_hours, 50.0);
        EXPECT_LE(gpu_hours, 120.0);
        break;
    }
  }
  // Uniform class sampling: every class present in a 300-job trace.
  EXPECT_EQ(count.size(), 4u);
  for (const auto& [cls, n] : count) EXPECT_GT(n, 30) << to_string(cls);
}

TEST_F(TraceGenTest, DiurnalModulationConcentratesArrivals) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 12000;  // ~2 days at the mean rate
  cfg.arrivals = ArrivalPattern::kContinuous;
  cfg.jobs_per_hour = 240.0;
  cfg.diurnal_amplitude = 0.9;
  cfg.seed = 31;
  const Trace t = gen.generate(cfg);
  // Over COMPLETE days only: the sin-positive half (first 12 h of each day)
  // must hold clearly more arrivals than the sin-negative half, and the
  // whole-day rate must stay near the configured mean.
  const double full_days = std::floor(t.jobs.back().arrival / 86400.0);
  ASSERT_GE(full_days, 1.0);
  int peak = 0, trough = 0, in_days = 0;
  for (const auto& j : t.jobs) {
    if (j.arrival >= full_days * 86400.0) continue;
    ++in_days;
    (std::fmod(j.arrival, 86400.0) < 43200.0 ? peak : trough) += 1;
  }
  EXPECT_GT(peak, trough * 2);
  EXPECT_NEAR(in_days / (full_days * 24.0), 240.0, 40.0);
}

TEST_F(TraceGenTest, DiurnalAmplitudeValidated) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.arrivals = ArrivalPattern::kContinuous;
  cfg.diurnal_amplitude = 1.0;
  EXPECT_THROW(gen.generate(cfg), std::invalid_argument);
  cfg.diurnal_amplitude = -0.1;
  EXPECT_THROW(gen.generate(cfg), std::invalid_argument);
}

TEST_F(TraceGenTest, ModelSizePropagates) {
  const JobSpec j = zoo_.make_job("Transformer", reg_, 1, 3600.0);
  EXPECT_NEAR(j.model_size_mb, 240.0, 1e-9);
}

TEST_F(TraceGenTest, FixedModelOverridesSampling) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 20;
  cfg.fixed_model = "LSTM";
  const Trace t = gen.generate(cfg);
  for (const auto& j : t.jobs) EXPECT_EQ(j.model, "LSTM");
  cfg.fixed_model = "nope";
  EXPECT_THROW(gen.generate(cfg), std::invalid_argument);
}

TEST_F(TraceGenTest, RejectsBadConfig) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 0;
  EXPECT_THROW(gen.generate(cfg), std::invalid_argument);
  cfg.num_jobs = 5;
  cfg.arrivals = ArrivalPattern::kContinuous;
  cfg.jobs_per_hour = 0.0;
  EXPECT_THROW(gen.generate(cfg), std::invalid_argument);
}

TEST_F(TraceGenTest, PrototypeWorkloadHasTenTableTwoJobs) {
  const auto reg = cluster::GpuTypeRegistry::aws_prototype();
  TraceGenerator gen(&zoo_, &reg);
  const Trace t = gen.prototype_workload();
  EXPECT_EQ(t.jobs.size(), 10u);
  std::map<std::string, int> models;
  for (const auto& j : t.jobs) ++models[j.model];
  EXPECT_EQ(models.size(), 5u);
  for (const auto& [m, n] : models) EXPECT_EQ(n, 2) << m;
}

// -------------------------------------------------------------- trace IO ----

TEST_F(TraceGenTest, CsvRoundTripPreservesEverything) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 25;
  cfg.arrivals = ArrivalPattern::kContinuous;
  cfg.jobs_per_hour = 60;
  const Trace a = gen.generate(cfg);
  const Trace b = trace_from_csv(trace_to_csv(a, reg_), reg_);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].model, b.jobs[i].model);
    EXPECT_EQ(a.jobs[i].num_workers, b.jobs[i].num_workers);
    EXPECT_EQ(a.jobs[i].epochs, b.jobs[i].epochs);
    EXPECT_EQ(a.jobs[i].chunks_per_epoch, b.jobs[i].chunks_per_epoch);
    EXPECT_EQ(a.jobs[i].size_class, b.jobs[i].size_class);
    EXPECT_NEAR(a.jobs[i].arrival, b.jobs[i].arrival, 1e-3);
    for (int r = 0; r < reg_.size(); ++r) {
      EXPECT_NEAR(a.jobs[i].throughput_on(r), b.jobs[i].throughput_on(r), 1e-6);
    }
  }
}

TEST_F(TraceGenTest, CsvRoundTripsDeadlinesAndTenants) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 40;
  cfg.seed = 5;
  cfg.deadline_fraction = 0.5;
  cfg.num_tenants = 4;
  const Trace a = gen.generate(cfg);
  int with_deadline = 0, tenants_seen = 0;
  std::map<int, int> per_tenant;
  for (const auto& j : a.jobs) {
    if (j.has_deadline()) ++with_deadline;
    ++per_tenant[j.tenant];
  }
  tenants_seen = static_cast<int>(per_tenant.size());
  EXPECT_GT(with_deadline, 5);  // ~half the trace
  EXPECT_LT(with_deadline, 35);
  EXPECT_EQ(tenants_seen, 4);

  const Trace b = trace_from_csv(trace_to_csv(a, reg_), reg_);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].tenant, b.jobs[i].tenant) << "job " << i;
    EXPECT_EQ(a.jobs[i].has_deadline(), b.jobs[i].has_deadline()) << "job " << i;
    EXPECT_NEAR(a.jobs[i].deadline, b.jobs[i].deadline, 1e-3) << "job " << i;
  }
}

TEST_F(TraceGenTest, LegacyCsvWithoutSloColumnsLoadsWithDefaults) {
  // CSVs written before the deadline_s/tenant columns existed must still
  // load: no deadline, tenant 0.
  const std::string csv =
      "id,model,arrival_s,workers,epochs,chunks_per_epoch,size_class,"
      "ckpt_save_s,ckpt_load_s,model_size_mb,x_V100,x_P100,x_K80\n"
      "0,LSTM,0,1,1,1,S,1,1,1,10,4,1\n"
      "1,LSTM,5,2,1,1,S,1,1,1,10,4,1\n";
  const Trace t = trace_from_csv(csv, reg_);
  ASSERT_EQ(t.jobs.size(), 2u);
  for (const auto& j : t.jobs) {
    EXPECT_FALSE(j.has_deadline());
    EXPECT_DOUBLE_EQ(j.deadline, 0.0);
    EXPECT_EQ(j.tenant, 0);
  }
}

TEST_F(TraceGenTest, SloKnobsOffKeepTraceByteIdentical) {
  // The salted per-job SLO streams must not perturb the base trace: with the
  // knobs at their defaults the generated jobs match a config that never
  // heard of deadlines, field for field.
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 30;
  cfg.seed = 99;
  const Trace plain = gen.generate(cfg);
  TraceGenConfig slo = cfg;
  slo.deadline_fraction = 0.5;
  slo.num_tenants = 3;
  const Trace tagged = gen.generate(slo);
  ASSERT_EQ(plain.jobs.size(), tagged.jobs.size());
  for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
    JobSpec stripped = tagged.jobs[i];
    stripped.deadline = 0.0;
    stripped.tenant = 0;
    EXPECT_EQ(stripped, plain.jobs[i]) << "job " << i;
  }
}

TEST_F(TraceGenTest, DeadlinesLandInsideTheSlackBand) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 60;
  cfg.seed = 8;
  cfg.deadline_fraction = 1.0;
  cfg.deadline_slack_lo = 2.0;
  cfg.deadline_slack_hi = 3.0;
  const Trace t = gen.generate(cfg);
  for (const auto& j : t.jobs) {
    ASSERT_TRUE(j.has_deadline());
    const double slack = (j.deadline - j.arrival) / j.min_runtime();
    EXPECT_GE(slack, 2.0 - 1e-9);
    EXPECT_LE(slack, 3.0 + 1e-9);
  }
}

TEST_F(TraceGenTest, JobSpecBinaryRoundTripsSloFields) {
  JobSpec a;
  a.id = 3;
  a.model = "LSTM";
  a.arrival = 12.0;
  a.num_workers = 2;
  a.epochs = 4;
  a.chunks_per_epoch = 10;
  a.throughput = {10.0, 4.0, 1.0};
  a.deadline = 4321.0;
  a.tenant = 7;
  common::BinaryWriter w;
  a.save(w);
  const std::string blob = w.take();
  common::BinaryReader r(blob);
  const JobSpec b = JobSpec::restore(r);
  EXPECT_EQ(a, b);
}

TEST_F(TraceGenTest, RejectsBadSloConfig) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 5;
  cfg.deadline_fraction = 1.5;
  EXPECT_THROW(gen.generate(cfg), std::invalid_argument);
  cfg.deadline_fraction = 0.5;
  cfg.deadline_slack_lo = 0.0;
  EXPECT_THROW(gen.generate(cfg), std::invalid_argument);
  cfg.deadline_slack_lo = 3.0;
  cfg.deadline_slack_hi = 2.0;  // hi < lo
  EXPECT_THROW(gen.generate(cfg), std::invalid_argument);
  cfg.deadline_slack_hi = 4.0;
  cfg.num_tenants = 0;
  EXPECT_THROW(gen.generate(cfg), std::invalid_argument);
}

TEST_F(TraceGenTest, CsvRejectsMissingColumns) {
  EXPECT_THROW(trace_from_csv("id,model\n0,LSTM\n", reg_), std::runtime_error);
}

TEST_F(TraceGenTest, CsvRejectsMalformedNumbers) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 1;
  std::string csv = trace_to_csv(gen.generate(cfg), reg_);
  const auto pos = csv.find("\n") + 1;  // first data row
  csv = csv.substr(0, pos) + "x,LSTM,abc,1,1,1,S,1,1,1,1,1,1\n";
  EXPECT_THROW(trace_from_csv(csv, reg_), std::runtime_error);
}

TEST_F(TraceGenTest, CsvRejectsBadSizeClass) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 1;
  std::string csv = trace_to_csv(gen.generate(cfg), reg_);
  // Replace the valid size-class token with garbage, keeping the row shape.
  const auto pos = csv.find("\n") + 1;
  csv = csv.substr(0, pos) + "0,LSTM,0,1,1,1,HUGE,1,1,1,1,1,1\n";
  EXPECT_THROW(trace_from_csv(csv, reg_), std::runtime_error);
}

TEST_F(TraceGenTest, CsvRejectsTrailingGarbageInNumber) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 1;
  std::string csv = trace_to_csv(gen.generate(cfg), reg_);
  // "12abc" parses a prefix via stod but must still be rejected.
  const auto pos = csv.find("\n") + 1;
  csv = csv.substr(0, pos) + "0,LSTM,12abc,1,1,1,S,1,1,1,1,1,1\n";
  EXPECT_THROW(trace_from_csv(csv, reg_), std::runtime_error);
}

TEST_F(TraceGenTest, CsvRejectsMalformedWorkerCount) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 1;
  std::string csv = trace_to_csv(gen.generate(cfg), reg_);
  const auto pos = csv.find("\n") + 1;
  csv = csv.substr(0, pos) + "0,LSTM,0,two,1,1,S,1,1,1,1,1,1\n";
  EXPECT_THROW(trace_from_csv(csv, reg_), std::runtime_error);
}

TEST_F(TraceGenTest, CsvRejectsMissingThroughputColumn) {
  // All scalar columns present, but no x_<type> columns for the registry.
  const std::string csv =
      "id,model,arrival_s,workers,epochs,chunks_per_epoch,size_class,"
      "ckpt_save_s,ckpt_load_s,model_size_mb\n"
      "0,LSTM,0,1,1,1,S,1,1,1\n";
  EXPECT_THROW(trace_from_csv(csv, reg_), std::runtime_error);
}

// Regression for the step-invariance bug: arrival streams used to share one
// RNG, so job k's attributes depended on how many draws jobs 0..k-1 made and
// a stream resumed from a cursor diverged from batch generation. Every job
// now forks its own stream from (seed, index).
TEST_F(TraceGenTest, StreamMatchesBatchGeneration) {
  TraceGenConfig cfg;
  cfg.num_jobs = 40;
  cfg.arrivals = ArrivalPattern::kContinuous;
  cfg.jobs_per_hour = 90.0;
  cfg.seed = 1234;
  const Trace batch = TraceGenerator(&zoo_, &reg_).generate(cfg);
  TraceStream stream(&zoo_, &reg_, cfg);
  for (int i = 0; i < cfg.num_jobs; ++i) {
    EXPECT_EQ(stream.next(), batch.jobs[static_cast<std::size_t>(i)]) << "job " << i;
  }
}

TEST_F(TraceGenTest, StreamResumedFromSavedCursorIsIdentical) {
  TraceGenConfig cfg;
  cfg.num_jobs = 30;
  cfg.arrivals = ArrivalPattern::kContinuous;
  cfg.jobs_per_hour = 120.0;
  cfg.diurnal_amplitude = 0.4;
  cfg.seed = 77;
  TraceStream full(&zoo_, &reg_, cfg);
  TraceStream head(&zoo_, &reg_, cfg);
  std::vector<JobSpec> expected;
  for (int i = 0; i < 30; ++i) expected.push_back(full.next());
  for (int i = 0; i < 11; ++i) EXPECT_EQ(head.next(), expected[static_cast<std::size_t>(i)]);

  common::BinaryWriter w;
  head.save(w);
  const std::string blob = w.take();
  // A crash between job 11 and 12: a fresh stream restored from the durable
  // cursor must emit the identical suffix.
  TraceStream resumed(&zoo_, &reg_, cfg);
  common::BinaryReader r(blob);
  resumed.restore(r);
  EXPECT_EQ(resumed.index(), 11);
  for (int i = 11; i < 30; ++i) {
    EXPECT_EQ(resumed.next(), expected[static_cast<std::size_t>(i)]) << "job " << i;
  }
}

TEST_F(TraceGenTest, ReadTraceFileRejectsMissingPath) {
  EXPECT_THROW(read_trace_file(::testing::TempDir() + "/no-such-trace.csv", reg_),
               std::runtime_error);
}

TEST_F(TraceGenTest, FileRoundTrip) {
  TraceGenerator gen(&zoo_, &reg_);
  TraceGenConfig cfg;
  cfg.num_jobs = 5;
  const Trace a = gen.generate(cfg);
  const std::string path = ::testing::TempDir() + "/trace.csv";
  ASSERT_TRUE(write_trace_file(path, a, reg_));
  const Trace b = read_trace_file(path, reg_);
  EXPECT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_THROW(read_trace_file("/nonexistent/nope.csv", reg_), std::runtime_error);
}

}  // namespace
}  // namespace hadar::workload
