// Unit tests for the common substrate: RNG determinism and distribution
// sanity, statistics, CSV round-tripping, table rendering, env parsing, and
// the thread pool's parallel_for/parallel_map contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace hadar::common {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(7);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.exponential(2.0);
  EXPECT_NEAR(s / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats st;
  for (int i = 0; i < 100000; ++i) st.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(st.mean(), 3.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(1);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(w), std::invalid_argument);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(29);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(31);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

// -------------------------------------------------------------- stats ----

TEST(Stats, MeanAndStddev) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  // Sample standard deviation: sum of squares 5.0 over n - 1 = 3.
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, StddevSingleSampleIsZero) {
  EXPECT_EQ(stddev({42.0}), 0.0);
  RunningStats st;
  st.add(42.0);
  EXPECT_EQ(st.variance(), 0.0);
  EXPECT_EQ(st.stddev(), 0.0);
}

TEST(Stats, SampleVarianceOfTwoPoints) {
  // Var({0, 2}) with the n - 1 divisor is exactly 2.
  std::vector<double> xs = {0.0, 2.0};
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
  RunningStats st;
  st.add(0.0);
  st.add(2.0);
  EXPECT_NEAR(st.variance(), 2.0, 1e-12);
}

TEST(Stats, EmptyInputsAreZero) {
  std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0.0);
  EXPECT_EQ(stddev(xs), 0.0);
  EXPECT_EQ(min_of(xs), 0.0);
  EXPECT_EQ(max_of(xs), 0.0);
  EXPECT_EQ(median(xs), 0.0);
  EXPECT_TRUE(empirical_cdf(xs).empty());
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileClampsP) {
  std::vector<double> xs = {1, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200), 2.0);
}

TEST(Stats, CdfIsMonotoneAndEndsAtOne) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  const auto cdf = empirical_cdf(xs, 20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
    EXPECT_GE(cdf[i].x, cdf[i - 1].x);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().x, 5.0);
}

TEST(Stats, CdfSinglePointSample) {
  const auto cdf = empirical_cdf({7.0}, 10);
  ASSERT_EQ(cdf.size(), 10u);
  // Every sampled x <= 7 gets fraction < 1 until x reaches the sample.
  EXPECT_DOUBLE_EQ(cdf.front().x, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().x, 7.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (const auto& pt : cdf) {
    EXPECT_TRUE(pt.fraction == 0.0 || pt.fraction == 1.0);
  }
}

TEST(Stats, CdfOnePointCurve) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0}, 1);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 3.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 1.0);
}

TEST(Stats, CdfZeroPointsYieldsEmptyCurve) {
  EXPECT_TRUE(empirical_cdf({1.0, 2.0}, 0).empty());
}

TEST(Stats, CdfAllEqualValues) {
  const auto cdf = empirical_cdf({4.0, 4.0, 4.0}, 5);
  ASSERT_EQ(cdf.size(), 5u);
  for (std::size_t i = 0; i + 1 < cdf.size(); ++i) {
    EXPECT_LT(cdf[i].x, 4.0);
    EXPECT_DOUBLE_EQ(cdf[i].fraction, 0.0);
  }
  EXPECT_DOUBLE_EQ(cdf.back().x, 4.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(37);
  std::vector<double> xs;
  RunningStats st;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    xs.push_back(x);
    st.add(x);
  }
  EXPECT_NEAR(st.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(st.stddev(), stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(st.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(st.max(), max_of(xs));
  EXPECT_EQ(st.count(), 1000u);
}

// ---------------------------------------------------------------- csv ----

TEST(Csv, RoundTripsSimpleTable) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "x"});
  w.add_row({"2", "y"});
  const auto doc = parse_csv(w.to_string());
  ASSERT_EQ(doc.header.size(), 2u);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "1");
  EXPECT_EQ(doc.rows[1][1], "y");
  EXPECT_EQ(doc.column("b"), 1);
  EXPECT_EQ(doc.column("zzz"), -1);
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter w({"v"});
  w.add_row({"has,comma"});
  w.add_row({"has\"quote"});
  w.add_row({"has\nnewline"});
  const auto doc = parse_csv(w.to_string());
  ASSERT_EQ(doc.rows.size(), 3u);
  EXPECT_EQ(doc.rows[0][0], "has,comma");
  EXPECT_EQ(doc.rows[1][0], "has\"quote");
  EXPECT_EQ(doc.rows[2][0], "has\nnewline");
}

TEST(Csv, RejectsArityMismatch) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), std::invalid_argument);
}

TEST(Csv, RejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv("a\n\"oops"), std::runtime_error);
}

TEST(Csv, HandlesCrLf) {
  const auto doc = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, FieldFormatting) {
  EXPECT_EQ(CsvWriter::field(1.5), "1.5");
  EXPECT_EQ(CsvWriter::field(static_cast<long long>(42)), "42");
}

// -------------------------------------------------------------- table ----

TEST(Table, RendersAlignedColumns) {
  AsciiTable t("Title", {"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== Title =="), std::string::npos);
  EXPECT_NE(out.find("| longer-name |"), std::string::npos);
  EXPECT_NE(out.find("| x           |"), std::string::npos);
}

TEST(Table, FormattersBehave) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::integer(7), "7");
  EXPECT_EQ(AsciiTable::speedup(2.5, 1), "2.5x");
  EXPECT_EQ(AsciiTable::percent(0.876, 1), "87.6%");
  EXPECT_EQ(AsciiTable::duration(30.0), "30.0 s");
  EXPECT_EQ(AsciiTable::duration(120.0), "2.0 min");
  EXPECT_EQ(AsciiTable::duration(7200.0), "2.00 h");
}

TEST(Table, PadsShortRows) {
  AsciiTable t("", {"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

// ---------------------------------------------------------------- env ----

TEST(EnvInt, ReturnsDefaultWhenUnset) {
  unsetenv("HADAR_TEST_ENV_INT");
  EXPECT_EQ(env_int("HADAR_TEST_ENV_INT", 7), 7);
}

TEST(EnvInt, ParsesValidValue) {
  setenv("HADAR_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(env_int("HADAR_TEST_ENV_INT", 7), 42);
  unsetenv("HADAR_TEST_ENV_INT");
}

TEST(EnvInt, RejectsGarbageAndTrailingJunk) {
  setenv("HADAR_TEST_ENV_INT", "notanumber", 1);
  EXPECT_EQ(env_int("HADAR_TEST_ENV_INT", 7), 7);  // atoi would say 0
  setenv("HADAR_TEST_ENV_INT", "12abc", 1);
  EXPECT_EQ(env_int("HADAR_TEST_ENV_INT", 7), 7);
  setenv("HADAR_TEST_ENV_INT", "999999999999999999999", 1);
  EXPECT_EQ(env_int("HADAR_TEST_ENV_INT", 7), 7);
  unsetenv("HADAR_TEST_ENV_INT");
}

TEST(EnvInt, EnforcesMinimumOnlyWhenCallerSetsAFloor) {
  setenv("HADAR_TEST_ENV_INT", "0", 1);
  EXPECT_EQ(env_int("HADAR_TEST_ENV_INT", 7, 1), 7);  // warns, falls back
  setenv("HADAR_TEST_ENV_INT", "-3", 1);
  EXPECT_EQ(env_int("HADAR_TEST_ENV_INT", 7, 1), 7);
  EXPECT_EQ(env_int("HADAR_TEST_ENV_INT", 7, 0), 7);
  unsetenv("HADAR_TEST_ENV_INT");
}

TEST(EnvInt, DefaultAcceptsZeroAndNegativeValues) {
  // Zero/negative are legitimate for knobs like HADAR_CELLS=0 (auto) and
  // HADAR_SERVICE_SNAPSHOT=0 (off): without an explicit floor they must be
  // returned verbatim, not clamped to the default.
  setenv("HADAR_TEST_ENV_INT", "0", 1);
  EXPECT_EQ(env_int("HADAR_TEST_ENV_INT", 7), 0);
  setenv("HADAR_TEST_ENV_INT", "-3", 1);
  EXPECT_EQ(env_int("HADAR_TEST_ENV_INT", 7), -3);
  unsetenv("HADAR_TEST_ENV_INT");
}

// --------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      parallel_map(100, [](std::size_t i) { return static_cast<int>(i * i); }, &pool);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPool, ZeroWorkersRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  EXPECT_EQ(pool.concurrency(), 1);
  int sum = 0;  // serial execution: unsynchronized access is safe
  parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); }, &pool);
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        parallel_for(8, [&](std::size_t) { total.fetch_add(1); }, &pool);
      },
      &pool);
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(
          64,
          [](std::size_t i) {
            if (i % 7 == 3) throw std::runtime_error("boom");
          },
          &pool),
      std::runtime_error);
}

TEST(ThreadPool, ScopedThreadCountSwapsGlobalPool) {
  {
    ScopedThreadCount one(1);
    EXPECT_EQ(ThreadPool::global().concurrency(), 1);
  }
  {
    ScopedThreadCount four(4);
    EXPECT_EQ(ThreadPool::global().concurrency(), 4);
    const auto out = parallel_map(33, [](std::size_t i) { return i + 1; });
    long long sum = std::accumulate(out.begin(), out.end(), 0LL);
    EXPECT_EQ(sum, 33LL * 34 / 2);
  }
}

}  // namespace
}  // namespace hadar::common
