// Tests for the profiling-based throughput estimator (Fig. 2): measurement
// attribution, EWMA convergence, registry-scaled extrapolation, and the
// estimator-driven Hadar configuration end-to-end.
#include <gtest/gtest.h>

#include "core/hadar_scheduler.hpp"
#include "core/throughput_estimator.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

namespace hadar::core {
namespace {

using cluster::ClusterSpec;
using cluster::GpuTypeRegistry;
using cluster::JobAllocation;
using test::ContextBuilder;

TEST(Estimator, RejectsBadConstruction) {
  EXPECT_THROW(ThroughputEstimator(nullptr), std::invalid_argument);
  const auto reg = GpuTypeRegistry::simulation_default();
  EstimatorConfig bad;
  bad.blend = 0.0;
  EXPECT_THROW(ThroughputEstimator(&reg, bad), std::invalid_argument);
}

TEST(Estimator, UnprofiledJobGetsNominalPrior) {
  const auto spec = ClusterSpec::simulation_default();
  ThroughputEstimator est(&spec.types());
  ContextBuilder b(&spec);
  b.add_job(1, 1000.0, {3.0, 1.4, 0.3});
  const auto ctx = b.build();
  est.observe(ctx);
  EXPECT_FALSE(est.profiled(0));
  const auto e = est.estimate(ctx.jobs[0]);
  // Prior scales with the registry's nominal relative speeds (10:4:1).
  EXPECT_NEAR(e[0] / e[2], 10.0, 1e-9);
  EXPECT_NEAR(e[1] / e[2], 4.0, 1e-9);
}

TEST(Estimator, MeasuresBottleneckTypeFromProgress) {
  const auto spec = ClusterSpec::simulation_default();
  ThroughputEstimator est(&spec.types());
  ContextBuilder b(&spec);
  b.add_job(2, 1e6, {3.0, 1.4, 0.3});
  auto ctx = b.build(0.0, 360.0);
  // Round 0: job just placed on V100s, no progress yet.
  ctx.jobs[0].current_allocation = JobAllocation({{0, 0, 2}});
  est.observe(ctx);
  // Round 1: same placement, progressed at the true rate (2 * 3 it/s).
  ctx.now = 360.0;
  ctx.jobs[0].iterations_done = 2 * 3.0 * 360.0;
  est.observe(ctx);
  EXPECT_TRUE(est.profiled(0));
  const auto e = est.estimate(ctx.jobs[0]);
  EXPECT_NEAR(e[0], 3.0, 1e-6);          // measured
  EXPECT_NEAR(e[1], 3.0 * 0.4, 1e-6);    // extrapolated via relative speeds
}

TEST(Estimator, EwmaConvergesUnderNoisyRounds) {
  const auto spec = ClusterSpec::simulation_default();
  EstimatorConfig cfg;
  cfg.blend = 0.5;
  ThroughputEstimator est(&spec.types(), cfg);
  ContextBuilder b(&spec);
  b.add_job(1, 1e9, {5.0, 2.0, 0.5});
  auto ctx = b.build(0.0, 360.0);
  ctx.jobs[0].current_allocation = JobAllocation({{0, 0, 1}});
  est.observe(ctx);
  double iters = 0.0;
  const double rates[] = {4.0, 6.0, 5.5, 4.5, 5.0, 5.0, 5.0, 5.0};
  for (double r : rates) {
    iters += r * 360.0;
    ctx.now += 360.0;
    ctx.jobs[0].iterations_done = iters;
    est.observe(ctx);
  }
  const auto e = est.estimate(ctx.jobs[0]);
  EXPECT_NEAR(e[0], 5.0, 0.25);
}

TEST(Estimator, IgnoresRoundsWithChangedAllocation) {
  // Progress across an allocation change mixes two placements; the
  // estimator must not attribute it.
  const auto spec = ClusterSpec::simulation_default();
  ThroughputEstimator est(&spec.types());
  ContextBuilder b(&spec);
  b.add_job(1, 1e6, {5.0, 2.0, 0.5});
  auto ctx = b.build(0.0, 360.0);
  ctx.jobs[0].current_allocation = JobAllocation({{0, 0, 1}});
  est.observe(ctx);
  ctx.now = 360.0;
  ctx.jobs[0].iterations_done = 1000.0;
  ctx.jobs[0].current_allocation = JobAllocation({{5, 1, 1}});  // moved
  est.observe(ctx);
  EXPECT_FALSE(est.profiled(0));
}

TEST(Estimator, ResetForgetsEverything) {
  const auto spec = ClusterSpec::simulation_default();
  ThroughputEstimator est(&spec.types());
  ContextBuilder b(&spec);
  b.add_job(1, 1e6, {5.0, 2.0, 0.5});
  auto ctx = b.build(0.0, 360.0);
  ctx.jobs[0].current_allocation = JobAllocation({{0, 0, 1}});
  est.observe(ctx);
  ctx.now = 360.0;
  ctx.jobs[0].iterations_done = 5.0 * 360.0;
  est.observe(ctx);
  ASSERT_TRUE(est.profiled(0));
  est.reset();
  EXPECT_FALSE(est.profiled(0));
}

TEST(Estimator, HadarWithEstimatorCompletesTrace) {
  const auto spec = ClusterSpec::simulation_default();
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &spec.types());
  workload::TraceGenConfig tcfg;
  tcfg.num_jobs = 15;
  tcfg.seed = 21;
  tcfg.large_lo = 2.0;
  tcfg.large_hi = 5.0;
  tcfg.xlarge_lo = 5.0;
  tcfg.xlarge_hi = 8.0;
  const auto trace = gen.generate(tcfg);

  HadarConfig cfg;
  cfg.use_estimator = true;
  HadarScheduler sched(cfg);
  sim::Simulator sim{sim::SimConfig{}};
  const auto r = sim.run(spec, trace, sched);
  EXPECT_TRUE(r.all_finished());
}

TEST(Estimator, OracleAndEstimatorAgreeOnUncontendedJob) {
  // A single job: profiling should converge and keep the job on the fast
  // pool, completing within ~20% of the oracle schedule.
  const auto spec = ClusterSpec::simulation_default();
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &spec.types());
  workload::TraceGenConfig tcfg;
  tcfg.num_jobs = 1;
  tcfg.seed = 23;
  tcfg.fixed_model = "LSTM";
  tcfg.small_lo = 0.8;
  tcfg.small_hi = 1.0;
  tcfg.medium_lo = 0.8;
  tcfg.medium_hi = 1.0;
  tcfg.large_lo = 0.8;
  tcfg.large_hi = 1.0;
  tcfg.xlarge_lo = 0.8;
  tcfg.xlarge_hi = 1.0;
  const auto trace = gen.generate(tcfg);

  sim::Simulator sim{sim::SimConfig{}};
  HadarScheduler oracle;
  HadarConfig est_cfg;
  est_cfg.use_estimator = true;
  HadarScheduler with_est(est_cfg);
  const auto r_oracle = sim.run(spec, trace, oracle);
  const auto r_est = sim.run(spec, trace, with_est);
  ASSERT_TRUE(r_oracle.all_finished());
  ASSERT_TRUE(r_est.all_finished());
  EXPECT_LE(r_est.avg_jct, r_oracle.avg_jct * 1.25);
}

}  // namespace
}  // namespace hadar::core
