// Tests for sharded hierarchical scheduling (sim/sharded.hpp +
// cluster/cell_partition.hpp): partition quota conservation, the cells=1
// bit-identical passthrough for all four paper schedulers, thread-count
// invariance of multi-cell runs, migration invariants, config overlay
// fallbacks, and save/restore. This suite also runs under TSan in CI to
// pin the "per-cell solves share no mutable state" claim.
#include <gtest/gtest.h>

#include <cstdlib>

#include "cluster/allocation.hpp"
#include "cluster/cell_partition.hpp"
#include "common/binary.hpp"
#include "common/thread_pool.hpp"
#include "runner/experiment.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "workload/trace_gen.hpp"
#include "test_util.hpp"

namespace hadar {
namespace {

using cluster::ClusterSpec;
using common::ScopedThreadCount;
using sim::ShardConfig;
using sim::ShardedScheduler;
using test::ContextBuilder;

// ------------------------------------------------------------ partition ----

TEST(CellPartition, EveryNodeInExactlyOneCellAndCapacityConserved) {
  const ClusterSpec spec = ClusterSpec::scaled(20);  // 60 nodes, 240 GPUs
  for (const int k : {1, 2, 3, 7, 60}) {
    SCOPED_TRACE(k);
    const auto layout = cluster::partition_cells(spec, k);
    ASSERT_EQ(layout.num_cells, k);
    ASSERT_EQ(static_cast<int>(layout.cell_of_node.size()), spec.num_nodes());
    ASSERT_EQ(static_cast<int>(layout.nodes.size()), k);
    ASSERT_EQ(static_cast<int>(layout.specs.size()), k);

    std::vector<int> seen(static_cast<std::size_t>(spec.num_nodes()), 0);
    for (int c = 0; c < k; ++c) {
      const auto& cell_nodes = layout.nodes[static_cast<std::size_t>(c)];
      EXPECT_FALSE(cell_nodes.empty());
      const ClusterSpec& local = layout.specs[static_cast<std::size_t>(c)];
      ASSERT_EQ(local.num_nodes(), static_cast<int>(cell_nodes.size()));
      for (std::size_t i = 0; i < cell_nodes.size(); ++i) {
        const NodeId g = cell_nodes[i];
        ++seen[static_cast<std::size_t>(g)];
        EXPECT_EQ(layout.cell_of_node[static_cast<std::size_t>(g)], c);
        // Local node i mirrors global node g's capacities under a dense id.
        EXPECT_EQ(local.node(static_cast<NodeId>(i)).gpu_capacity,
                  spec.node(g).gpu_capacity);
      }
    }
    for (const int n : seen) EXPECT_EQ(n, 1);

    // Per-type totals are conserved, and the balanced deal gives every cell
    // a slice of every type pool (each cell sees the full heterogeneity mix).
    for (GpuTypeId r = 0; r < spec.num_types(); ++r) {
      int total = 0;
      for (int c = 0; c < k; ++c) {
        const int cell_total = layout.specs[static_cast<std::size_t>(c)].total_of_type(r);
        total += cell_total;
        if (k <= 3) {
          EXPECT_GT(cell_total, 0);
        }
      }
      EXPECT_EQ(total, spec.total_of_type(r));
    }
  }
}

TEST(CellPartition, DeterministicAndClamped) {
  const ClusterSpec spec = ClusterSpec::scaled(4);  // 12 nodes
  const auto a = cluster::partition_cells(spec, 3);
  const auto b = cluster::partition_cells(spec, 3);
  EXPECT_EQ(a.cell_of_node, b.cell_of_node);
  EXPECT_EQ(a.nodes, b.nodes);
  // More cells than nodes clamps to one node per cell.
  EXPECT_EQ(cluster::partition_cells(spec, 99).num_cells, 12);
}

TEST(CellPartition, AutoCellsScalesWithClusterSize) {
  EXPECT_EQ(cluster::auto_cells(0), 1);
  EXPECT_EQ(cluster::auto_cells(100), 1);
  EXPECT_EQ(cluster::auto_cells(256), 2);
  EXPECT_EQ(cluster::auto_cells(1000), 7);
  EXPECT_EQ(cluster::auto_cells(10000), 64);
  EXPECT_EQ(cluster::auto_cells(1000000), 64);
}

// ------------------------------------------------------------- identity ----

runner::ExperimentConfig scaled_experiment(int nodes_per_type, int num_jobs,
                                           std::uint64_t seed) {
  runner::ExperimentConfig cfg;
  cfg.spec = ClusterSpec::scaled(nodes_per_type);
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &cfg.spec.types());
  workload::TraceGenConfig tc;
  tc.num_jobs = num_jobs;
  tc.arrivals = workload::ArrivalPattern::kContinuous;
  tc.jobs_per_hour = 120.0;
  tc.seed = seed;
  cfg.trace = gen.generate(tc);
  cfg.sim.seed = seed;
  return cfg;
}

void expect_same_outcomes(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_jct, b.avg_jct);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_reallocations, b.total_reallocations);
  EXPECT_EQ(a.total_preemptions, b.total_preemptions);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].first_start, b.jobs[i].first_start);
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_EQ(a.jobs[i].gpu_seconds, b.jobs[i].gpu_seconds);
    EXPECT_EQ(a.jobs[i].preemptions, b.jobs[i].preemptions);
    EXPECT_EQ(a.jobs[i].reallocations, b.jobs[i].reallocations);
  }
}

TEST(Sharding, CellsOneIsBitIdenticalForAllPaperSchedulers) {
  const auto cfg = scaled_experiment(6, 60, 17);
  for (const std::string& name : runner::kPaperSchedulers) {
    SCOPED_TRACE(name);
    auto flat = runner::make_flat_scheduler(name);
    auto sharded = runner::make_sharded_scheduler(name, ShardConfig{});
    EXPECT_EQ(sharded->name(), flat->name());

    sim::Simulator simulator(cfg.sim);
    const auto a = simulator.run(cfg.spec, cfg.trace, *flat);
    const auto b = simulator.run(cfg.spec, cfg.trace, *sharded);
    expect_same_outcomes(a, b);
  }
}

TEST(Sharding, MultiCellScheduleIdenticalAcrossThreadCounts) {
  const auto cfg = scaled_experiment(8, 70, 23);
  ShardConfig shard;
  shard.cells = 3;
  for (const std::string& name : {std::string("hadar"), std::string("gavel")}) {
    SCOPED_TRACE(name);
    sim::SimResult one, four;
    {
      ScopedThreadCount serial(1);
      sim::Simulator simulator(cfg.sim);
      auto sched = runner::make_sharded_scheduler(name, shard);
      one = simulator.run(cfg.spec, cfg.trace, *sched);
    }
    {
      ScopedThreadCount parallel(4);
      sim::Simulator simulator(cfg.sim);
      auto sched = runner::make_sharded_scheduler(name, shard);
      four = simulator.run(cfg.spec, cfg.trace, *sched);
    }
    expect_same_outcomes(one, four);
  }
}

// The simulator validates capacity and gang semantics of every round when
// validate_allocations is on (the default), so a full multi-cell run doubles
// as an allocation-invariant check across hundreds of rounds.
TEST(Sharding, MultiCellRunsPassSimulatorValidation) {
  const auto cfg = scaled_experiment(8, 60, 29);
  ASSERT_TRUE(cfg.sim.validate_allocations);
  for (const std::string& name : runner::kPaperSchedulers) {
    SCOPED_TRACE(name);
    ShardConfig shard;
    shard.cells = 4;
    sim::Simulator simulator(cfg.sim);
    auto sched = runner::make_sharded_scheduler(name, shard);
    const auto res = simulator.run(cfg.spec, cfg.trace, *sched);
    EXPECT_EQ(res.num_unfinished, 0);
  }
}

// ------------------------------------------------------------ migration ----

// 4 nodes x 4 V100-only; two cells of 8 devices. Three jobs: A (gang 8) and
// G (gang 4) both route to cell 0 (B's 12-worker gang makes cell 1 look
// loaded during routing), but together they exceed the cell — the policy
// places one and the other migrates to cell 1, which B (infeasible anywhere:
// 12 > 8) left empty.
TEST(Sharding, UnplaceableJobMigratesToCheaperCell) {
  const ClusterSpec spec = ClusterSpec::from_counts(
      cluster::GpuTypeRegistry::simulation_default(),
      {{4, 0, 0}, {4, 0, 0}, {4, 0, 0}, {4, 0, 0}});
  ContextBuilder builder(&spec);
  builder.add_job(8, 1e6, {4.0, 0.0, 0.0});   // A
  builder.add_job(12, 1e6, {4.0, 0.0, 0.0});  // B: no cell can fit it
  builder.add_job(4, 1e6, {4.0, 0.0, 0.0});   // G
  const auto ctx = builder.build();

  ShardConfig shard;
  shard.cells = 2;
  ShardedScheduler sched([] { return runner::make_flat_scheduler("hadar"); }, shard);
  const auto out = sched.schedule(ctx);

  ASSERT_NE(sched.layout(), nullptr);
  EXPECT_EQ(sched.num_cells(), 2);
  EXPECT_EQ(out.count(0), 1u);
  EXPECT_EQ(out.count(1), 0u);  // a 12-gang fits no 8-device cell
  EXPECT_EQ(out.count(2), 1u);
  EXPECT_EQ(sched.migrations(), 1);
  EXPECT_EQ(cluster::validate(spec, out), "");

  // Every allocation must stay inside a single cell, with exact gang size.
  const auto& layout = *sched.layout();
  for (const auto& [id, alloc] : out) {
    const int cell = layout.cell_of_node[static_cast<std::size_t>(
        alloc.placements().front().node)];
    for (const auto& p : alloc.placements()) {
      EXPECT_EQ(layout.cell_of_node[static_cast<std::size_t>(p.node)], cell);
    }
    EXPECT_EQ(alloc.total_workers(), ctx.jobs[static_cast<std::size_t>(id)].spec->num_workers);
    EXPECT_EQ(sched.cell_of_job(id), cell);
  }
}

TEST(Sharding, MigrationThresholdOneDisablesMigration) {
  const ClusterSpec spec = ClusterSpec::from_counts(
      cluster::GpuTypeRegistry::simulation_default(),
      {{4, 0, 0}, {4, 0, 0}, {4, 0, 0}, {4, 0, 0}});
  ContextBuilder builder(&spec);
  builder.add_job(8, 1e6, {4.0, 0.0, 0.0});
  builder.add_job(12, 1e6, {4.0, 0.0, 0.0});
  builder.add_job(4, 1e6, {4.0, 0.0, 0.0});
  const auto ctx = builder.build();

  ShardConfig shard;
  shard.cells = 2;
  shard.migration_threshold = 1.0;
  ShardedScheduler sched([] { return runner::make_flat_scheduler("hadar"); }, shard);
  const auto out = sched.schedule(ctx);
  EXPECT_EQ(sched.migrations(), 0);
  // Jobs 0 and 2 contend for cell 0; without migration only one runs.
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(cluster::validate(spec, out), "");
}

// ----------------------------------------------------------- durability ----

TEST(Sharding, SaveRestoreReproducesDecisions) {
  const ClusterSpec spec = ClusterSpec::scaled(4);  // 12 nodes
  ContextBuilder builder(&spec);
  for (int i = 0; i < 10; ++i) {
    builder.add_job(1 + i % 4, 1e5, {8.0, 4.0, 2.0});
  }
  const auto ctx = builder.build();

  ShardConfig shard;
  shard.cells = 3;
  const auto factory = [] { return runner::make_flat_scheduler("tiresias"); };
  ShardedScheduler original(factory, shard);
  (void)original.schedule(ctx);

  common::BinaryWriter w;
  original.save_state(w);

  ShardedScheduler restored(factory, shard);
  common::BinaryReader r(w.data());
  restored.restore_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(restored.num_cells(), original.num_cells());
  EXPECT_EQ(restored.migrations(), original.migrations());

  const auto a = original.schedule(ctx);
  const auto b = restored.schedule(ctx);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------- bookkeeping ----

// Owns JobSpecs with caller-chosen ids and arrivals (ContextBuilder always
// numbers jobs from zero), so churn and id recycling are expressible.
class ChurnContext {
 public:
  explicit ChurnContext(const ClusterSpec* spec) : spec_(spec) {}

  ChurnContext& add(JobId id, Seconds arrival, int workers) {
    auto j = std::make_unique<workload::JobSpec>();
    j->id = id;
    j->model = "churn-" + std::to_string(id);
    j->arrival = arrival;
    j->num_workers = workers;
    j->epochs = 1000000;
    j->chunks_per_epoch = 1;
    j->throughput.assign(static_cast<std::size_t>(spec_->num_types()), 4.0);
    specs_.push_back(std::move(j));
    return *this;
  }

  sim::SchedulerContext build(Seconds now) const {
    sim::SchedulerContext ctx;
    ctx.spec = spec_;
    ctx.now = now;
    ctx.round_length = 360.0;
    for (const auto& s : specs_) {
      sim::JobView v;
      v.spec = s.get();
      v.throughput = s->throughput;
      v.rounds_on_type.assign(static_cast<std::size_t>(spec_->num_types()), 0);
      ctx.jobs.push_back(std::move(v));
    }
    return ctx;
  }

 private:
  const ClusterSpec* spec_;
  std::vector<std::unique_ptr<workload::JobSpec>> specs_;
};

// Service-mode churn: hundreds of jobs arrive and retire, yet the
// orchestrator's sticky-routing and starvation maps must stay sized by the
// *live* job set — persisted state must not grow with run history.
TEST(Sharding, ChurnWorkloadKeepsBookkeepingStateBounded) {
  const ClusterSpec spec = ClusterSpec::scaled(4);  // 12 nodes
  ShardConfig shard;
  shard.cells = 3;
  ShardedScheduler sched([] { return runner::make_flat_scheduler("yarn"); }, shard);

  const auto state_bytes = [&sched] {
    common::BinaryWriter w;
    sched.save_state(w);
    return w.data().size();
  };

  // Every round retires the previous window of jobs and admits a fresh one
  // (always-new ids), plus one gang no cell can ever fit (stays starved).
  std::size_t mid = 0;
  JobId next_id = 0;
  for (int round = 0; round < 40; ++round) {
    ChurnContext cc(&spec);
    cc.add(100000, 0.0, 64);  // unplaceable: exceeds the whole cluster
    for (int k = 0; k < 5; ++k) cc.add(next_id++, round * 360.0, 1 + k % 3);
    const auto ctx = cc.build(round * 360.0);
    (void)sched.schedule(ctx);
    if (round == 19) mid = state_bytes();
  }
  // 200 jobs churned through; state size at round 40 matches round 20.
  EXPECT_GT(mid, 0u);
  EXPECT_EQ(state_bytes(), mid);
  EXPECT_EQ(sched.starved_rounds(100000), 40);  // the live starved job
  EXPECT_EQ(sched.starved_rounds(0), 0);        // retired jobs are pruned
}

// A fresh job that recycles a finished job's id (external id allocators do
// this in service mode) must not inherit the dead job's starvation counter
// or sticky cell. Entries are guarded by the owning job's arrival time.
TEST(Sharding, RecycledJobIdGetsFreshRoutingAndStarvationCounter) {
  const ClusterSpec spec = ClusterSpec::from_counts(
      cluster::GpuTypeRegistry::simulation_default(),
      {{4, 0, 0}, {4, 0, 0}, {4, 0, 0}, {4, 0, 0}});
  ShardConfig shard;
  shard.cells = 2;
  shard.migration_threshold = 1.0;  // isolate routing from refinement
  shard.starvation_rounds = 0;
  ShardedScheduler sched([] { return runner::make_flat_scheduler("yarn"); }, shard);

  // Rounds 1-3: job 7 is an unplaceable 20-gang; its counter climbs.
  for (int round = 1; round <= 3; ++round) {
    ChurnContext cc(&spec);
    cc.add(7, 0.0, 20);
    (void)sched.schedule(cc.build(round * 360.0));
    EXPECT_EQ(sched.starved_rounds(7), round);
  }

  // Round 4: id 7 now names a *new* job (later arrival). The counter
  // restarts at 1 instead of resuming at 4.
  {
    ChurnContext cc(&spec);
    cc.add(7, 1000.0, 20);
    (void)sched.schedule(cc.build(4 * 360.0));
    EXPECT_EQ(sched.starved_rounds(7), 1);
  }

  // Sticky routing must likewise forget the dead job's cell. Round 1 parks
  // job 7 in cell 1 (the 8-gang fills cell 0 first). Round 2 loads both
  // cells equally with fresh 8-gangs, so least-load routing with its
  // low-cell tie-break sends a *fresh* job to cell 0 — the recycled id must
  // take that path, not the stale sticky entry for cell 1.
  sched.reset();
  {
    ChurnContext cc(&spec);
    cc.add(3, 0.0, 8);  // ties break low: routed to cell 0
    cc.add(7, 0.0, 2);  // load 8 vs 0: routed to cell 1
    (void)sched.schedule(cc.build(360.0));
    EXPECT_EQ(sched.cell_of_job(3), 0);
    EXPECT_EQ(sched.cell_of_job(7), 1);
  }
  {
    ChurnContext cc(&spec);
    cc.add(9, 2000.0, 8);   // cell 0 (tie)
    cc.add(10, 2000.0, 8);  // cell 1
    cc.add(7, 2000.0, 2);   // recycled id: fresh tie-break -> cell 0
    (void)sched.schedule(cc.build(2160.0));
    EXPECT_EQ(sched.cell_of_job(7), 0);
  }
}

// --------------------------------------------------------------- config ----

TEST(ShardConfig, FromEnvOverlaysAndFallsBackOnBadValues) {
  ::setenv("HADAR_CELLS", "4", 1);
  ::setenv("HADAR_CELL_MIGRATION", "0.25", 1);
  ShardConfig cfg = ShardConfig::from_env();
  EXPECT_EQ(cfg.cells, 4);
  EXPECT_EQ(cfg.migration_threshold, 0.25);

  // Bad values warn on stderr and keep the defaults (HADAR_SERVICE_* rule).
  ::setenv("HADAR_CELLS", "banana", 1);
  ::setenv("HADAR_CELL_MIGRATION", "2.5", 1);
  cfg = ShardConfig::from_env();
  EXPECT_EQ(cfg.cells, 1);
  EXPECT_EQ(cfg.migration_threshold, 0.05);

  ::setenv("HADAR_CELLS", "-3", 1);
  cfg = ShardConfig::from_env();
  EXPECT_EQ(cfg.cells, 1);

  ::unsetenv("HADAR_CELLS");
  ::unsetenv("HADAR_CELL_MIGRATION");
  cfg = ShardConfig::from_env();
  EXPECT_EQ(cfg.cells, 1);
  EXPECT_EQ(cfg.migration_threshold, 0.05);
}

TEST(ShardConfig, MakeSchedulerHonorsEnvOverlay) {
  ::setenv("HADAR_CELLS", "2", 1);
  auto sched = runner::make_scheduler("hadar");
  EXPECT_NE(sched->name().find("cells=2"), std::string::npos);
  ::unsetenv("HADAR_CELLS");
  auto flat = runner::make_scheduler("hadar");
  EXPECT_EQ(flat->name().find("cells"), std::string::npos);
}

}  // namespace
}  // namespace hadar
