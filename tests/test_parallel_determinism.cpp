// The hard requirement of the parallel engine: the same seed + config must
// produce bit-identical schedules and metrics at every thread count. Runs
// the paper four-way comparison at HADAR_THREADS in {1, 4} and compares
// SchedulerRun results metric for metric (wall-clock fields excluded — they
// measure the host, not the schedule), and checks the parallel DP against
// the serial path at beam_width 1 and the default width.
#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "core/dp_allocation.hpp"
#include "runner/scenarios.hpp"
#include "test_util.hpp"

namespace hadar {
namespace {

using common::ScopedThreadCount;

void expect_same_outcomes(const sim::SimResult& a, const sim::SimResult& b,
                          const std::string& scheduler) {
  SCOPED_TRACE(scheduler);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_jct, b.avg_jct);
  EXPECT_EQ(a.median_jct, b.median_jct);
  EXPECT_EQ(a.min_jct, b.min_jct);
  EXPECT_EQ(a.max_jct, b.max_jct);
  EXPECT_EQ(a.p95_jct, b.p95_jct);
  EXPECT_EQ(a.avg_queueing_delay, b.avg_queueing_delay);
  EXPECT_EQ(a.gpu_utilization, b.gpu_utilization);
  EXPECT_EQ(a.avg_job_utilization, b.avg_job_utilization);
  EXPECT_EQ(a.avg_ftf, b.avg_ftf);
  EXPECT_EQ(a.max_ftf, b.max_ftf);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_reallocations, b.total_reallocations);
  EXPECT_EQ(a.total_preemptions, b.total_preemptions);
  EXPECT_EQ(a.realloc_round_fraction, b.realloc_round_fraction);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].first_start, b.jobs[i].first_start);
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_EQ(a.jobs[i].gpu_seconds, b.jobs[i].gpu_seconds);
    EXPECT_EQ(a.jobs[i].compute_gpu_seconds, b.jobs[i].compute_gpu_seconds);
    EXPECT_EQ(a.jobs[i].rounds_run, b.jobs[i].rounds_run);
    EXPECT_EQ(a.jobs[i].preemptions, b.jobs[i].preemptions);
    EXPECT_EQ(a.jobs[i].reallocations, b.jobs[i].reallocations);
  }
}

TEST(ParallelDeterminism, FourWayComparisonIdenticalAcrossThreadCounts) {
  const auto cfg = runner::paper_static(48, 42);

  std::vector<runner::SchedulerRun> one, four;
  {
    ScopedThreadCount serial(1);
    one = runner::compare(cfg, runner::kPaperSchedulers);
  }
  {
    ScopedThreadCount parallel(4);
    four = runner::compare(cfg, runner::kPaperSchedulers);
  }

  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].scheduler, four[i].scheduler);
    expect_same_outcomes(one[i].result, four[i].result, one[i].scheduler);
  }
}

TEST(ParallelDeterminism, SweepMatchesCompare) {
  const auto cfg = runner::paper_static(32, 7);

  std::vector<runner::SweepCase> cases;
  for (const auto& sched : runner::kPaperSchedulers) cases.push_back({"s", sched, cfg});

  std::vector<runner::SweepResult> swept;
  std::vector<runner::SchedulerRun> compared;
  {
    ScopedThreadCount parallel(4);
    swept = runner::sweep(cases);
  }
  {
    ScopedThreadCount serial(1);
    compared = runner::compare(cfg, runner::kPaperSchedulers);
  }

  ASSERT_EQ(swept.size(), compared.size());
  for (std::size_t i = 0; i < swept.size(); ++i) {
    EXPECT_EQ(swept[i].scheduler, compared[i].scheduler);
    expect_same_outcomes(swept[i].result, compared[i].result, swept[i].scheduler);
  }
}

// DP-level check: identical DpResult across thread counts, including the
// beam_width=1 degenerate case (which must stay the pure greedy serial
// path — its single-state beam never fans out).
class DpThreadCountTest : public ::testing::Test {
 protected:
  core::DpResult run(const sim::SchedulerContext& ctx, const core::DpConfig& cfg) {
    cluster::ClusterState state(ctx.spec);
    const core::UtilityFunction u(core::UtilityKind::kEffectiveThroughput,
                                  static_cast<double>(ctx.jobs.size()));
    core::PriceBook book(ctx.spec->num_types(), core::PricingConfig{});
    book.compute_bounds(ctx, u);
    std::vector<const sim::JobView*> queue;
    for (const auto& j : ctx.jobs) queue.push_back(&j);
    return core::dp_allocation(queue, state, book, u, ctx.now, sim::NetworkModel{}, cfg);
  }

  static void expect_same(const core::DpResult& a, const core::DpResult& b) {
    EXPECT_EQ(a.total_payoff, b.total_payoff);
    EXPECT_EQ(a.jobs_scheduled, b.jobs_scheduled);
    EXPECT_EQ(a.stats.states_explored, b.stats.states_explored);
    EXPECT_EQ(a.stats.greedy_tail_jobs, b.stats.greedy_tail_jobs);
    ASSERT_EQ(a.allocs.size(), b.allocs.size());
    auto ia = a.allocs.begin();
    auto ib = b.allocs.begin();
    for (; ia != a.allocs.end(); ++ia, ++ib) {
      EXPECT_EQ(ia->first, ib->first);
      EXPECT_TRUE(ia->second == ib->second);
    }
  }
};

TEST_F(DpThreadCountTest, DefaultBeamIdenticalAcrossThreadCounts) {
  const auto spec = cluster::ClusterSpec::simulation_default();
  test::ContextBuilder b(&spec);
  for (int i = 0; i < 24; ++i) {
    b.add_job(1 + i % 8, 2000.0 * (1 + i % 5), {10.0, 5.0, 1.0});
  }
  const auto ctx = b.build();

  core::DpConfig cfg;
  cfg.beam_width = 16;
  core::DpResult serial, parallel;
  {
    ScopedThreadCount one(1);
    serial = run(ctx, cfg);
  }
  {
    ScopedThreadCount four(4);
    parallel = run(ctx, cfg);
  }
  expect_same(serial, parallel);
}

TEST_F(DpThreadCountTest, BeamWidthOneMatchesGreedySerialPath) {
  const auto spec = cluster::ClusterSpec::simulation_default();
  test::ContextBuilder b(&spec);
  for (int i = 0; i < 12; ++i) b.add_job(4, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();

  core::DpConfig greedy;
  greedy.beam_width = 1;
  core::DpResult serial, parallel;
  {
    ScopedThreadCount one(1);
    serial = run(ctx, greedy);
  }
  {
    ScopedThreadCount four(4);
    parallel = run(ctx, greedy);
  }
  expect_same(serial, parallel);
}

}  // namespace
}  // namespace hadar
