// Tests for the empirical companion to Theorem 2: the realized utility of a
// Hadar schedule must stay within the guaranteed 2*alpha factor of the
// offline utility upper bound, across seeds, and better schedulers must
// score better empirical ratios.
#include <gtest/gtest.h>

#include "core/competitive.hpp"
#include "runner/experiment.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

namespace hadar::core {
namespace {

runner::ExperimentConfig small_experiment(std::uint64_t seed, int jobs = 20) {
  runner::ExperimentConfig e;
  e.spec = cluster::ClusterSpec::simulation_default();
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &e.spec.types());
  workload::TraceGenConfig t;
  t.num_jobs = jobs;
  t.seed = seed;
  t.large_lo = 1.0;
  t.large_hi = 4.0;
  t.xlarge_lo = 3.0;
  t.xlarge_hi = 6.0;
  e.trace = gen.generate(t);
  return e;
}

TEST(Competitive, ReportFieldsAreConsistent) {
  const auto cfg = small_experiment(3);
  const auto runs = runner::compare(cfg, {"hadar"});
  const auto rep = analyze_competitiveness(cfg.spec, cfg.trace, runs[0].result);
  EXPECT_GT(rep.achieved_utility, 0.0);
  EXPECT_GE(rep.utility_upper_bound, rep.achieved_utility - 1e-9);
  EXPECT_GE(rep.empirical_ratio, 1.0 - 1e-9);
  EXPECT_GE(rep.alpha, 1.0);
  EXPECT_DOUBLE_EQ(rep.guaranteed_ratio, 2.0 * rep.alpha);
}

TEST(Competitive, UpperBoundEqualsIdealUtilitySum) {
  // With an uncontended cluster (one small job), Hadar achieves nearly the
  // ideal utility: the round quantization is the only loss.
  runner::ExperimentConfig e;
  e.spec = cluster::ClusterSpec::simulation_default();
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  e.trace.jobs = {zoo.make_job("LSTM", e.spec.types(), 4, /*ideal_runtime=*/7200.0)};
  e.trace.finalize();
  const auto runs = runner::compare(e, {"hadar"});
  const auto rep = analyze_competitiveness(e.spec, e.trace, runs[0].result);
  EXPECT_LT(rep.empirical_ratio, 1.2);
}

class CompetitiveSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompetitiveSeeds, HadarStaysWithinGuarantee) {
  const auto cfg = small_experiment(GetParam());
  const auto runs = runner::compare(cfg, {"hadar"});
  const auto rep = analyze_competitiveness(cfg.spec, cfg.trace, runs[0].result);
  EXPECT_TRUE(rep.within_guarantee())
      << "empirical " << rep.empirical_ratio << " vs guaranteed " << rep.guaranteed_ratio;
}

TEST_P(CompetitiveSeeds, HadarRatioBeatsYarn) {
  const auto cfg = small_experiment(GetParam());
  const auto runs = runner::compare(cfg, {"hadar", "yarn"});
  const auto rep_h = analyze_competitiveness(cfg.spec, cfg.trace, runs[0].result);
  const auto rep_y = analyze_competitiveness(cfg.spec, cfg.trace, runs[1].result);
  EXPECT_LT(rep_h.empirical_ratio, rep_y.empirical_ratio);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompetitiveSeeds, ::testing::Values(1, 2, 3, 4, 5));

TEST(Competitive, UnfinishedRunsScoreWorse) {
  auto cfg = small_experiment(9);
  cfg.sim.horizon = 2 * 3600.0;  // cut the run short
  const auto full = runner::compare(cfg, {"hadar"});
  cfg.sim.horizon = 0.0;
  const auto complete = runner::compare(cfg, {"hadar"});
  const auto rep_cut = analyze_competitiveness(cfg.spec, cfg.trace, full[0].result);
  const auto rep_full = analyze_competitiveness(cfg.spec, cfg.trace, complete[0].result);
  EXPECT_GE(rep_cut.empirical_ratio, rep_full.empirical_ratio);
}

}  // namespace
}  // namespace hadar::core
