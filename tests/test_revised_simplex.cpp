// Equivalence suite for the sparse revised simplex engine: randomized
// Gavel-shaped LPs where the dense tableau and the revised engine (cold and
// warm-started) must agree on status and objective to 1e-7, plus
// degenerate/cycling instances, infeasible-after-warm-start, general
// relation coverage, and the sparse-row construction API.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "solver/lp.hpp"
#include "solver/maxmin.hpp"
#include "solver/revised_simplex.hpp"

namespace hadar::solver {
namespace {

constexpr double kTol = 1e-7;

// A Gavel max-min-shaped instance: variables [z, Y(j,r)...], one z-row and
// one time-row per job, one capacity row per type — all <=. `keys` names the
// jobs so warm-start tests can remove/add jobs between solves.
struct GavelInstance {
  std::vector<std::int64_t> keys;
  std::vector<std::vector<double>> rate;  // [job][type]
  std::vector<double> demand;
  std::vector<double> cap;

  int J() const { return static_cast<int>(keys.size()); }
  int R() const { return static_cast<int>(cap.size()); }

  // Builds the LP + warm labels exactly like solver::solve_max_min_lp does.
  void build(LpProblem& lp_out, LpLabels& labels) const {
    const int nv = 1 + J() * R();
    lp_out = LpProblem(nv);
    lp_out.set_objective(0, 1.0);
    labels.var.assign(static_cast<std::size_t>(nv), -1);
    labels.row.clear();
    for (int j = 0; j < J(); ++j) {
      std::vector<SparseEntry> row{{0, 1.0}};
      for (int r = 0; r < R(); ++r) {
        const int v = 1 + j * R() + r;
        labels.var[static_cast<std::size_t>(v)] = keys[static_cast<std::size_t>(j)] * R() + r;
        if (rate[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] != 0.0) {
          row.push_back({v, -rate[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)]});
        }
      }
      lp_out.add_constraint_sparse(row, Relation::kLessEqual, 0.0);
      labels.row.push_back(2 * keys[static_cast<std::size_t>(j)]);
      row.clear();
      for (int r = 0; r < R(); ++r) row.push_back({1 + j * R() + r, 1.0});
      lp_out.add_constraint_sparse(row, Relation::kLessEqual, 1.0);
      labels.row.push_back(2 * keys[static_cast<std::size_t>(j)] + 1);
    }
    for (int r = 0; r < R(); ++r) {
      std::vector<SparseEntry> row;
      for (int j = 0; j < J(); ++j) {
        row.push_back({1 + j * R() + r, demand[static_cast<std::size_t>(j)]});
      }
      lp_out.add_constraint_sparse(row, Relation::kLessEqual, p_cap(r));
      labels.row.push_back(-(r + 1));
    }
  }

  double p_cap(int r) const { return cap[static_cast<std::size_t>(r)]; }
};

GavelInstance random_instance(common::Rng& rng, int jobs, int types) {
  GavelInstance g;
  g.cap.resize(static_cast<std::size_t>(types));
  for (double& c : g.cap) c = static_cast<double>(rng.uniform_int(4, 32));
  for (int j = 0; j < jobs; ++j) {
    g.keys.push_back(j);
    g.demand.push_back(static_cast<double>(rng.uniform_int(1, 4)));
    std::vector<double> row(static_cast<std::size_t>(types), 0.0);
    for (double& x : row) {
      x = rng.uniform() < 0.15 ? 0.0 : rng.uniform(0.2, 4.0);  // some can't-run types
    }
    g.rate.push_back(std::move(row));
  }
  return g;
}

void remove_job(GavelInstance& g, int j) {
  g.keys.erase(g.keys.begin() + j);
  g.rate.erase(g.rate.begin() + j);
  g.demand.erase(g.demand.begin() + j);
}

// ------------------------------------------------- dense vs revised cold ----

TEST(RevisedSimplex, MatchesDenseOnRandomGavelShapedLps) {
  common::Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const auto g = random_instance(rng, 2 + trial % 14, 2 + trial % 3);
    LpProblem lp(1);
    LpLabels labels;
    g.build(lp, labels);
    const auto dense = solve(lp);
    const auto revised = solve_revised(lp);
    ASSERT_EQ(dense.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(revised.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(dense.objective, revised.objective, kTol) << "trial " << trial;
  }
}

TEST(RevisedSimplex, MatchesDenseOnGeneralRelations) {
  // max 2x + 3y  s.t. x + y <= 10, x >= 2, y = 3  => x=7, y=3, obj=23.
  LpProblem lp(2);
  lp.set_objective(0, 2.0);
  lp.set_objective(1, 3.0);
  lp.add_constraint({1.0, 1.0}, Relation::kLessEqual, 10.0);
  lp.add_constraint({1.0, 0.0}, Relation::kGreaterEqual, 2.0);
  lp.add_constraint({0.0, 1.0}, Relation::kEqual, 3.0);
  const auto dense = solve(lp);
  const auto revised = solve_revised(lp);
  ASSERT_EQ(revised.status, LpStatus::kOptimal);
  EXPECT_NEAR(revised.objective, 23.0, kTol);
  EXPECT_NEAR(revised.x[0], 7.0, kTol);
  EXPECT_NEAR(revised.x[1], 3.0, kTol);
  EXPECT_NEAR(dense.objective, revised.objective, kTol);
}

TEST(RevisedSimplex, HandlesNegativeRhsAndSurplus) {
  // -x - y <= -4 (i.e. x + y >= 4), x <= 3, y <= 3; max x + 2y => (1,3)? No:
  // max at x=3,y=3 obj=9; the >= row is slack there.
  LpProblem lp(2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 2.0);
  lp.add_constraint({-1.0, -1.0}, Relation::kLessEqual, -4.0);
  lp.add_constraint({1.0, 0.0}, Relation::kLessEqual, 3.0);
  lp.add_constraint({0.0, 1.0}, Relation::kLessEqual, 3.0);
  const auto revised = solve_revised(lp);
  ASSERT_EQ(revised.status, LpStatus::kOptimal);
  EXPECT_NEAR(revised.objective, 9.0, kTol);
}

TEST(RevisedSimplex, DetectsInfeasible) {
  LpProblem lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({1.0}, Relation::kLessEqual, 1.0);
  lp.add_constraint({1.0}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_revised(lp).status, LpStatus::kInfeasible);
}

TEST(RevisedSimplex, DetectsUnbounded) {
  LpProblem lp(2);
  lp.set_objective(0, 1.0);
  lp.add_constraint({0.0, 1.0}, Relation::kLessEqual, 1.0);
  EXPECT_EQ(solve_revised(lp).status, LpStatus::kUnbounded);
}

TEST(RevisedSimplex, SurvivesDegenerateCyclingInstance) {
  // Beale's classic cycling example; Bland's rule must terminate. Optimum
  // 0.05 at x = (1/25, 0, 1, 0).
  LpProblem lp(4);
  lp.set_objective(0, 0.75);
  lp.set_objective(1, -150.0);
  lp.set_objective(2, 0.02);
  lp.set_objective(3, -6.0);
  lp.add_constraint({0.25, -60.0, -0.04, 9.0}, Relation::kLessEqual, 0.0);
  lp.add_constraint({0.5, -90.0, -0.02, 3.0}, Relation::kLessEqual, 0.0);
  lp.add_constraint({0.0, 0.0, 1.0, 0.0}, Relation::kLessEqual, 1.0);
  const auto dense = solve(lp);
  const auto revised = solve_revised(lp);
  ASSERT_EQ(revised.status, LpStatus::kOptimal);
  EXPECT_NEAR(revised.objective, 0.05, kTol);
  EXPECT_NEAR(dense.objective, revised.objective, kTol);
}

// --------------------------------------------------------- warm starts ----

TEST(RevisedSimplex, WarmStartAgreesWithColdAcrossEventStream) {
  common::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = random_instance(rng, 12, 3);
    LpContext ctx;
    // Event stream: solve, drop a job, solve, drop another, solve...
    for (int event = 0; event < 6 && g.J() > 2; ++event) {
      LpProblem lp(1);
      LpLabels labels;
      g.build(lp, labels);
      const auto warm = ctx.solve(lp, labels);
      const auto cold = solve_revised(lp);
      const auto dense = solve(lp);
      ASSERT_EQ(warm.status, LpStatus::kOptimal);
      ASSERT_EQ(cold.status, LpStatus::kOptimal);
      EXPECT_NEAR(warm.objective, dense.objective, kTol);
      EXPECT_NEAR(warm.objective, cold.objective, kTol);
      // Canonical extraction: warm and cold must agree on the SOLUTION
      // bitwise, not just the objective — this is what makes warm-start
      // invisible in scheduler output.
      ASSERT_EQ(warm.x.size(), cold.x.size());
      for (std::size_t i = 0; i < warm.x.size(); ++i) {
        EXPECT_EQ(warm.x[i], cold.x[i]) << "trial " << trial << " event " << event
                                        << " var " << i;
      }
      remove_job(g, static_cast<int>(rng.uniform_int(0, g.J() - 1)));
    }
    EXPECT_GT(ctx.stats().warm_hits, 0u);
  }
}

TEST(RevisedSimplex, WarmStartIsBitIdenticalOnSymmetricTwinJobs) {
  // Two identical jobs sharing one saturated capacity: the optimal face is
  // a segment (any split works), the classic case where warm and cold
  // endpoints diverge without canonicalization.
  GavelInstance g;
  g.keys = {0, 1, 2};
  g.rate = {{2.0, 1.0}, {2.0, 1.0}, {1.0, 3.0}};
  g.demand = {2.0, 2.0, 1.0};
  g.cap = {2.0, 2.0};

  LpProblem lp(1);
  LpLabels labels;
  g.build(lp, labels);
  const auto cold = solve_revised(lp);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);

  // Drive the context to a different pre-basis by solving a perturbed
  // instance first, then re-solve the original warm.
  LpContext ctx;
  auto perturbed = g;
  remove_job(perturbed, 1);
  LpProblem plp(1);
  LpLabels plabels;
  perturbed.build(plp, plabels);
  ASSERT_EQ(ctx.solve(plp, plabels).status, LpStatus::kOptimal);
  const auto warm = ctx.solve(lp, labels);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  ASSERT_EQ(warm.x.size(), cold.x.size());
  for (std::size_t i = 0; i < warm.x.size(); ++i) {
    EXPECT_EQ(warm.x[i], cold.x[i]) << "var " << i;
  }
}

TEST(RevisedSimplex, InfeasibleAfterWarmStartFallsBackCleanly) {
  LpProblem lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({1.0}, Relation::kLessEqual, 5.0);
  LpLabels labels;
  labels.var = {7};
  labels.row = {11};
  LpContext ctx;
  ASSERT_EQ(ctx.solve(lp, labels).status, LpStatus::kOptimal);
  ASSERT_TRUE(ctx.has_basis());

  // Same labels, now contradictory: the saved basis cannot be feasible.
  LpProblem bad(1);
  bad.set_objective(0, 1.0);
  bad.add_constraint({1.0}, Relation::kLessEqual, 5.0);
  LpLabels bad_labels;
  bad_labels.var = {7};
  bad_labels.row = {11, 13};
  bad.add_constraint({1.0}, Relation::kGreaterEqual, 9.0);
  EXPECT_EQ(ctx.solve(bad, bad_labels).status, LpStatus::kInfeasible);
  EXPECT_FALSE(ctx.has_basis());  // failed solves drop the basis

  // And the context recovers on the next feasible problem.
  EXPECT_EQ(ctx.solve(lp, labels).status, LpStatus::kOptimal);
  EXPECT_TRUE(ctx.has_basis());
}

TEST(RevisedSimplex, RejectsLabelArityMismatch) {
  LpProblem lp(2);
  lp.set_objective(0, 1.0);
  lp.add_constraint({1.0, 1.0}, Relation::kLessEqual, 1.0);
  LpContext ctx;
  LpLabels labels;
  labels.var = {0};  // should be 2
  labels.row = {0};
  EXPECT_THROW(ctx.solve(lp, labels), std::invalid_argument);
}

// ------------------------------------------------- sparse construction ----

TEST(SparseRows, AddConstraintCompressesAndPads) {
  LpProblem lp(4);
  lp.add_constraint({0.0, 2.0}, Relation::kLessEqual, 1.0);  // short row
  ASSERT_EQ(lp.num_constraints(), 1);
  const auto& row = lp.rows()[0];
  ASSERT_EQ(row.a.size(), 1u);  // zero dropped, tail implicit
  EXPECT_EQ(row.a[0].index, 1);
  EXPECT_DOUBLE_EQ(row.coeff(1), 2.0);
  EXPECT_DOUBLE_EQ(row.coeff(0), 0.0);
  EXPECT_DOUBLE_EQ(row.coeff(3), 0.0);
}

TEST(SparseRows, AddConstraintRejectsOverlongRows) {
  LpProblem lp(2);
  EXPECT_THROW(lp.add_constraint({1.0, 2.0, 3.0}, Relation::kLessEqual, 1.0),
               std::invalid_argument);
}

TEST(SparseRows, AddConstraintSparseValidates) {
  LpProblem lp(4);
  EXPECT_THROW(lp.add_constraint_sparse({{4, 1.0}}, Relation::kLessEqual, 1.0),
               std::invalid_argument);  // out of range
  EXPECT_THROW(lp.add_constraint_sparse({{-1, 1.0}}, Relation::kLessEqual, 1.0),
               std::invalid_argument);  // negative
  EXPECT_THROW(lp.add_constraint_sparse({{2, 1.0}, {1, 1.0}}, Relation::kLessEqual, 1.0),
               std::invalid_argument);  // not ascending
  EXPECT_THROW(lp.add_constraint_sparse({{1, 1.0}, {1, 2.0}}, Relation::kLessEqual, 1.0),
               std::invalid_argument);  // duplicate
  lp.add_constraint_sparse({{0, 1.0}, {2, 0.0}, {3, 4.0}}, Relation::kLessEqual, 2.0);
  ASSERT_EQ(lp.rows()[0].a.size(), 2u);  // explicit zero dropped
  EXPECT_DOUBLE_EQ(lp.rows()[0].coeff(3), 4.0);
}

TEST(SparseRows, SparseAndDenseConstructionSolveIdentically) {
  LpProblem dense_lp(3);
  dense_lp.set_objective(0, 1.0);
  dense_lp.set_objective(2, 2.0);
  dense_lp.add_constraint({1.0, 0.0, 1.0}, Relation::kLessEqual, 4.0);
  dense_lp.add_constraint({0.0, 1.0, 2.0}, Relation::kLessEqual, 6.0);

  LpProblem sparse_lp(3);
  sparse_lp.set_objective(0, 1.0);
  sparse_lp.set_objective(2, 2.0);
  sparse_lp.add_constraint_sparse({{0, 1.0}, {2, 1.0}}, Relation::kLessEqual, 4.0);
  sparse_lp.add_constraint_sparse({{1, 1.0}, {2, 2.0}}, Relation::kLessEqual, 6.0);

  const auto a = solve(dense_lp);
  const auto b = solve(sparse_lp);
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.x, b.x);
}

// ----------------------------------------------- max-min engine parity ----

TEST(MaxMinEngines, DenseAndRevisedAgree) {
  common::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = random_instance(rng, 3 + trial % 10, 2 + trial % 3);
    MaxMinProblem p;
    p.rate = g.rate;
    p.demand = g.demand;
    p.cap = g.cap;
    p.key = g.keys;

    MaxMinOptions dense_opts;
    dense_opts.engine = LpEngine::kDense;
    MaxMinOptions revised_opts;
    revised_opts.engine = LpEngine::kRevised;

    const auto a = solve_max_min(p, dense_opts);
    const auto b = solve_max_min(p, revised_opts);
    ASSERT_EQ(a.feasible, b.feasible);
    EXPECT_NEAR(a.min_normalized_throughput, b.min_normalized_throughput, kTol);

    const auto sa = solve_max_sum(p, dense_opts);
    const auto sb = solve_max_sum(p, revised_opts);
    ASSERT_EQ(sa.feasible, sb.feasible);
    // max-sum reports the min normalized throughput of its solution, which
    // can differ between optimal vertices; compare the objective instead.
    double obj_a = 0.0, obj_b = 0.0;
    for (int j = 0; j < g.J(); ++j) {
      for (int r = 0; r < g.R(); ++r) {
        obj_a += sa.y[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] *
                 g.rate[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)];
        obj_b += sb.y[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] *
                 g.rate[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)];
      }
    }
    EXPECT_NEAR(obj_a, obj_b, 1e-6);
  }
}

TEST(MaxMinEngines, WarmContextMatchesContextFreeSolves) {
  common::Rng rng(5);
  auto g = random_instance(rng, 10, 3);
  MaxMinContext ctx;
  MaxMinOptions opts;  // revised engine default
  for (int event = 0; event < 5 && g.J() > 1; ++event) {
    MaxMinProblem p;
    p.rate = g.rate;
    p.demand = g.demand;
    p.cap = g.cap;
    p.key = g.keys;
    const auto warm = solve_max_min(p, opts, &ctx);
    const auto cold = solve_max_min(p, opts, nullptr);
    ASSERT_EQ(warm.feasible, cold.feasible);
    ASSERT_EQ(warm.y.size(), cold.y.size());
    for (std::size_t j = 0; j < warm.y.size(); ++j) {
      for (std::size_t r = 0; r < warm.y[j].size(); ++r) {
        EXPECT_EQ(warm.y[j][r], cold.y[j][r]) << "event " << event;
      }
    }
    remove_job(g, static_cast<int>(rng.uniform_int(0, g.J() - 1)));
  }
  EXPECT_GT(ctx.max_min.stats().warm_hits, 0u);
}

}  // namespace
}  // namespace hadar::solver
