// Unit tests for the cluster substrate: GPU-type registry, cluster specs,
// allocations (normalization, bottleneck), and mutable cluster state.
#include <gtest/gtest.h>

#include "cluster/allocation.hpp"
#include "cluster/cluster_spec.hpp"
#include "cluster/cluster_state.hpp"
#include "cluster/gpu_type.hpp"

namespace hadar::cluster {
namespace {

// ------------------------------------------------------------ registry ----

TEST(GpuTypeRegistry, LooksUpByName) {
  const auto reg = GpuTypeRegistry::simulation_default();
  EXPECT_EQ(reg.size(), 3);
  EXPECT_EQ(reg.name(0), "V100");
  EXPECT_EQ(reg.at("K80"), 2);
  EXPECT_EQ(reg.find("TPU"), kInvalidGpuType);
  EXPECT_THROW(reg.at("TPU"), std::out_of_range);
}

TEST(GpuTypeRegistry, RejectsDuplicatesAndBadSpeeds) {
  EXPECT_THROW(GpuTypeRegistry({{"A", 1.0}, {"A", 2.0}}), std::invalid_argument);
  EXPECT_THROW(GpuTypeRegistry({{"A", 0.0}}), std::invalid_argument);
  EXPECT_THROW(GpuTypeRegistry({{"", 1.0}}), std::invalid_argument);
  EXPECT_THROW(GpuTypeRegistry(std::vector<GpuTypeInfo>{}), std::invalid_argument);
}

TEST(GpuTypeRegistry, EqualityByNames) {
  EXPECT_TRUE(GpuTypeRegistry::simulation_default() == GpuTypeRegistry::simulation_default());
  EXPECT_FALSE(GpuTypeRegistry::simulation_default() == GpuTypeRegistry::aws_prototype());
}

// ---------------------------------------------------------------- spec ----

TEST(ClusterSpec, SimulationDefaultMatchesPaper) {
  const auto spec = ClusterSpec::simulation_default();
  EXPECT_EQ(spec.num_nodes(), 15);
  EXPECT_EQ(spec.total_gpus(), 60);
  for (GpuTypeId r = 0; r < 3; ++r) EXPECT_EQ(spec.total_of_type(r), 20);
}

TEST(ClusterSpec, AwsPrototypeMatchesPaper) {
  const auto spec = ClusterSpec::aws_prototype();
  EXPECT_EQ(spec.num_nodes(), 8);
  EXPECT_EQ(spec.total_gpus(), 8);
  EXPECT_EQ(spec.num_types(), 4);
  for (GpuTypeId r = 0; r < 4; ++r) EXPECT_EQ(spec.total_of_type(r), 2);
}

TEST(ClusterSpec, ScaledGrowsLinearly) {
  const auto spec = ClusterSpec::scaled(10, 4);
  EXPECT_EQ(spec.num_nodes(), 30);
  EXPECT_EQ(spec.total_gpus(), 120);
  EXPECT_THROW(ClusterSpec::scaled(0), std::invalid_argument);
}

TEST(ClusterSpec, RejectsBadNodeVectors) {
  auto reg = GpuTypeRegistry::simulation_default();
  EXPECT_THROW(ClusterSpec::from_counts(reg, {{1, 2}}), std::invalid_argument);   // arity
  EXPECT_THROW(ClusterSpec::from_counts(reg, {{1, -1, 0}}), std::invalid_argument);
}

TEST(ClusterSpec, SummaryMentionsEveryType) {
  const auto spec = ClusterSpec::simulation_default();
  const auto s = spec.summary();
  EXPECT_NE(s.find("V100:20"), std::string::npos);
  EXPECT_NE(s.find("K80:20"), std::string::npos);
  EXPECT_NE(s.find("15 nodes"), std::string::npos);
}

// ----------------------------------------------------------- allocation ----

TEST(JobAllocation, NormalizesAndMerges) {
  JobAllocation a({{2, 1, 1}, {0, 0, 2}, {2, 1, 1}});
  ASSERT_EQ(a.placements().size(), 2u);
  EXPECT_EQ(a.placements()[0].node, 0);
  EXPECT_EQ(a.placements()[1].count, 2);  // merged 1+1 on (2,1)
  EXPECT_EQ(a.total_workers(), 4);
  EXPECT_EQ(a.nodes_used(), 2);
  EXPECT_EQ(a.types_used(), 2);
  EXPECT_EQ(a.workers_of_type(1), 2);
}

TEST(JobAllocation, EqualityIsOrderInsensitive) {
  JobAllocation a({{1, 0, 1}, {0, 2, 3}});
  JobAllocation b({{0, 2, 3}, {1, 0, 1}});
  EXPECT_EQ(a, b);
}

TEST(JobAllocation, BottleneckIsMinOverUsedTypes) {
  JobAllocation a({{0, 0, 2}, {1, 2, 1}});  // types 0 and 2
  const std::vector<double> xs = {10.0, 5.0, 2.0};
  EXPECT_DOUBLE_EQ(a.bottleneck_throughput(xs), 2.0);
  EXPECT_DOUBLE_EQ(JobAllocation{}.bottleneck_throughput(xs), 0.0);
}

TEST(JobAllocation, RejectsInvalidPlacements) {
  EXPECT_THROW(JobAllocation({{0, 0, 0}}), std::invalid_argument);
  EXPECT_THROW(JobAllocation({{-1, 0, 1}}), std::invalid_argument);
}

TEST(JobAllocation, ToStringNamesTypes) {
  const auto spec = ClusterSpec::simulation_default();
  JobAllocation a({{0, 0, 2}});
  EXPECT_EQ(a.to_string(spec), "n0:V100x2");
  EXPECT_EQ(JobAllocation{}.to_string(spec), "(paused)");
}

TEST(Validate, FlagsOverCapacity) {
  const auto spec = ClusterSpec::simulation_default();
  AllocationMap m;
  m.emplace(0, JobAllocation({{0, 0, 4}}));
  EXPECT_TRUE(validate(spec, m).empty());
  m.emplace(1, JobAllocation({{0, 0, 1}}));  // node 0 has only 4 V100s
  EXPECT_FALSE(validate(spec, m).empty());
}

TEST(Validate, FlagsUnknownNodeOrType) {
  const auto spec = ClusterSpec::simulation_default();
  AllocationMap m;
  m.emplace(0, JobAllocation({{99, 0, 1}}));
  EXPECT_FALSE(validate(spec, m).empty());
}

TEST(Fits, ConsidersExistingAllocations) {
  const auto spec = ClusterSpec::simulation_default();
  AllocationMap taken;
  taken.emplace(0, JobAllocation({{0, 0, 3}}));
  EXPECT_TRUE(fits(spec, taken, JobAllocation({{0, 0, 1}})));
  EXPECT_FALSE(fits(spec, taken, JobAllocation({{0, 0, 2}})));
}

// ---------------------------------------------------------------- state ----

TEST(ClusterState, AllocateReleaseRoundTrips) {
  const auto spec = ClusterSpec::simulation_default();
  ClusterState st(&spec);
  EXPECT_EQ(st.total_free(), 60);
  JobAllocation a({{0, 0, 3}, {5, 1, 2}});
  ASSERT_TRUE(st.can_allocate(a));
  st.allocate(a);
  EXPECT_EQ(st.free_count(0, 0), 1);
  EXPECT_EQ(st.gamma(5, 1), 2);
  EXPECT_EQ(st.total_free(), 55);
  st.release(a);
  EXPECT_EQ(st.total_free(), 60);
}

TEST(ClusterState, AllocateThrowsOverCapacity) {
  const auto spec = ClusterSpec::simulation_default();
  ClusterState st(&spec);
  JobAllocation a({{0, 0, 5}});  // node 0 has 4 V100s
  EXPECT_FALSE(st.can_allocate(a));
  EXPECT_THROW(st.allocate(a), std::runtime_error);
}

TEST(ClusterState, ReleaseThrowsOnUnderflow) {
  const auto spec = ClusterSpec::simulation_default();
  ClusterState st(&spec);
  EXPECT_THROW(st.release(JobAllocation({{0, 0, 1}})), std::runtime_error);
}

TEST(ClusterState, SnapshotRestore) {
  const auto spec = ClusterSpec::simulation_default();
  ClusterState st(&spec);
  const auto empty = st.snapshot();
  st.allocate(JobAllocation({{1, 0, 4}}));
  const auto one = st.snapshot();
  st.restore(empty);
  EXPECT_EQ(st.total_free(), 60);
  st.restore(one);
  EXPECT_EQ(st.free_count(1, 0), 0);
}

TEST(ClusterState, HashDistinguishesStates) {
  const auto spec = ClusterSpec::simulation_default();
  ClusterState a(&spec), b(&spec);
  EXPECT_EQ(a.hash(), b.hash());
  a.allocate(JobAllocation({{0, 0, 1}}));
  EXPECT_NE(a.hash(), b.hash());
  b.allocate(JobAllocation({{0, 0, 1}}));
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(ClusterState, IsFullWhenEverythingTaken) {
  const auto reg = GpuTypeRegistry({{"X", 1.0}});
  const auto spec = ClusterSpec::from_counts(reg, {{2}});
  ClusterState st(&spec);
  EXPECT_FALSE(st.is_full());
  st.allocate(JobAllocation({{0, 0, 2}}));
  EXPECT_TRUE(st.is_full());
}

TEST(ClusterState, ClearResets) {
  const auto spec = ClusterSpec::simulation_default();
  ClusterState st(&spec);
  st.allocate(JobAllocation({{0, 0, 2}}));
  st.clear();
  EXPECT_EQ(st.total_free(), 60);
}

}  // namespace
}  // namespace hadar::cluster
