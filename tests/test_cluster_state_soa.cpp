// PR 8 safety net for the hot-path data-layout rewrite:
//  1. Randomized equivalence of the SoA ClusterState (O(1) aggregates,
//     usable-slot table, incremental hash) against a scan-based reference.
//  2. Undo-log mark/rollback restores counters, aggregates, and hash exactly,
//     including nested marks and interleaved release().
//  3. The incrementally maintained hash always agrees with the from-scratch
//     hash of the same snapshot under randomized allocate/release/restore.
//  4. Golden bit-identity: full simulation digests for all four schedulers,
//     sharded (cells 1 and 4) at 1 and 4 threads, pinned to the values
//     captured on the pre-SoA implementation. Any FP-order or
//     candidate-order drift in the allocation hot paths trips these.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <random>
#include <vector>

#include "cluster/cluster_state.hpp"
#include "common/thread_pool.hpp"
#include "runner/scenarios.hpp"
#include "sim/simulator.hpp"

using namespace hadar;

namespace {

// Scan-based reference: a bare usage vector over the spec; every query is
// recomputed from first principles.
struct RefState {
  const cluster::ClusterSpec* spec;
  std::vector<int> used;  // dense [node][type], same layout as Snapshot

  explicit RefState(const cluster::ClusterSpec* s) : spec(s) { clear(); }

  std::size_t index(NodeId h, GpuTypeId r) const {
    return static_cast<std::size_t>(h) * static_cast<std::size_t>(spec->num_types()) +
           static_cast<std::size_t>(r);
  }
  int cap(NodeId h, GpuTypeId r) const {
    const auto& n = spec->node(h);
    return n.available ? n.capacity(r) : 0;
  }
  int free_count(NodeId h, GpuTypeId r) const { return cap(h, r) - used[index(h, r)]; }
  int total_free_of_type(GpuTypeId r) const {
    int n = 0;
    for (NodeId h = 0; h < spec->num_nodes(); ++h) n += free_count(h, r);
    return n;
  }
  int total_free() const {
    int n = 0;
    for (GpuTypeId r = 0; r < spec->num_types(); ++r) n += total_free_of_type(r);
    return n;
  }
  int node_free(NodeId h) const {
    int n = 0;
    for (GpuTypeId r = 0; r < spec->num_types(); ++r) n += free_count(h, r);
    return n;
  }
  bool can_allocate(const cluster::JobAllocation& a) const {
    std::vector<int> scratch = used;
    for (const auto& p : a.placements()) {
      scratch[index(p.node, p.type)] += p.count;
      if (scratch[index(p.node, p.type)] > cap(p.node, p.type)) return false;
    }
    return true;
  }
  void allocate(const cluster::JobAllocation& a) {
    for (const auto& p : a.placements()) used[index(p.node, p.type)] += p.count;
  }
  void release(const cluster::JobAllocation& a) {
    for (const auto& p : a.placements()) used[index(p.node, p.type)] -= p.count;
  }
  void clear() {
    used.assign(static_cast<std::size_t>(spec->num_nodes()) *
                    static_cast<std::size_t>(spec->num_types()),
                0);
  }
};

// Draws a feasible allocation of 1..3 distinct (node, type) placements, or
// nullopt when the cluster is too full to host one.
std::optional<cluster::JobAllocation> random_alloc(const cluster::ClusterState& st,
                                                   std::mt19937& rng) {
  const auto& usable = st.usable_slots();
  if (usable.empty()) return std::nullopt;
  std::vector<cluster::TaskPlacement> ps;
  std::vector<std::size_t> taken;
  const int want = 1 + static_cast<int>(rng() % 3);
  for (int k = 0; k < want; ++k) {
    const auto& slot = usable[rng() % usable.size()];
    bool dup = false;
    for (const std::size_t c : taken) dup = dup || c == static_cast<std::size_t>(slot.cell);
    if (dup) continue;
    const int free = st.free_in_cell(static_cast<std::size_t>(slot.cell));
    if (free <= 0) continue;
    ps.push_back({slot.node, slot.type, 1 + static_cast<int>(rng() % free)});
    taken.push_back(static_cast<std::size_t>(slot.cell));
  }
  if (ps.empty()) return std::nullopt;
  return cluster::JobAllocation(ps);
}

void expect_matches_reference(const cluster::ClusterState& st, const RefState& ref) {
  ASSERT_EQ(st.snapshot(), ref.used);
  int total = 0;
  for (NodeId h = 0; h < ref.spec->num_nodes(); ++h) {
    ASSERT_EQ(st.node_free(h), ref.node_free(h)) << "node " << h;
    for (GpuTypeId r = 0; r < ref.spec->num_types(); ++r) {
      ASSERT_EQ(st.free_count(h, r), ref.free_count(h, r)) << h << "," << r;
      ASSERT_EQ(st.used_count(h, r), ref.used[ref.index(h, r)]) << h << "," << r;
    }
  }
  for (GpuTypeId r = 0; r < ref.spec->num_types(); ++r) {
    ASSERT_EQ(st.total_free_of_type(r), ref.total_free_of_type(r)) << "type " << r;
    total += ref.total_free_of_type(r);
  }
  ASSERT_EQ(st.total_free(), total);
  ASSERT_EQ(st.is_full(), total == 0);
  ASSERT_EQ(st.hash(), cluster::ClusterState::hash(st.snapshot()));
}

std::vector<cluster::ClusterSpec> test_specs() {
  std::vector<cluster::ClusterSpec> specs;
  specs.push_back(cluster::ClusterSpec::simulation_default());
  specs.push_back(cluster::ClusterSpec::aws_prototype());
  specs.push_back(cluster::ClusterSpec::scaled(3, 2));
  // A masked view exercises unavailable nodes and degraded cells in the
  // usable-slot table.
  {
    auto big = cluster::ClusterSpec::scaled(4, 3);
    cluster::AvailabilityMask mask(big);
    mask.set_node_up(1, false);
    mask.set_node_up(7, false);
    mask.degrade(2, 0, 2);
    specs.push_back(big.masked(mask));
  }
  return specs;
}

TEST(ClusterStateSoa, RandomizedEquivalenceVsReference) {
  for (const auto& spec : test_specs()) {
    cluster::ClusterState st(&spec);
    RefState ref(&spec);
    std::mt19937 rng(1234);
    std::vector<cluster::JobAllocation> live;
    expect_matches_reference(st, ref);
    for (int step = 0; step < 400; ++step) {
      const int op = static_cast<int>(rng() % 10);
      if (op < 5) {
        if (auto a = random_alloc(st, rng)) {
          ASSERT_TRUE(st.can_allocate(*a));
          ASSERT_TRUE(ref.can_allocate(*a));
          st.allocate(*a);
          ref.allocate(*a);
          live.push_back(*a);
        }
      } else if (op < 8 && !live.empty()) {
        const std::size_t i = rng() % live.size();
        st.release(live[i]);
        ref.release(live[i]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (op == 8) {
        st.clear();
        ref.clear();
        live.clear();
      }
      // can_allocate must agree on arbitrary (often infeasible) requests too.
      if (auto probe = random_alloc(st, rng)) {
        ASSERT_EQ(st.can_allocate(*probe), ref.can_allocate(*probe));
      }
      ASSERT_NO_FATAL_FAILURE(expect_matches_reference(st, ref));
    }
  }
}

TEST(ClusterStateSoa, RestoreRewindsToSnapshotExactly) {
  const auto spec = cluster::ClusterSpec::simulation_default();
  cluster::ClusterState st(&spec);
  std::mt19937 rng(77);
  for (int i = 0; i < 5; ++i) {
    if (auto a = random_alloc(st, rng)) st.allocate(*a);
  }
  const auto snap = st.snapshot();
  const auto hash_at_snap = st.hash();
  const int free_at_snap = st.total_free();
  for (int i = 0; i < 5; ++i) {
    if (auto a = random_alloc(st, rng)) st.allocate(*a);
  }
  st.restore(snap);
  ASSERT_EQ(st.snapshot(), snap);
  ASSERT_EQ(st.hash(), hash_at_snap);
  ASSERT_EQ(st.total_free(), free_at_snap);
  ASSERT_EQ(st.hash(), cluster::ClusterState::hash(snap));
}

TEST(ClusterStateSoa, UndoRollbackRestoresCountersAggregatesAndHash) {
  const auto spec = cluster::ClusterSpec::simulation_default();
  cluster::ClusterState st(&spec);
  std::mt19937 rng(4242);
  if (auto a = random_alloc(st, rng)) st.allocate(*a);  // non-trivial base

  st.set_undo_enabled(true);
  ASSERT_TRUE(st.undo_enabled());
  for (int trial = 0; trial < 50; ++trial) {
    const auto base_snap = st.snapshot();
    const auto base_hash = st.hash();
    const auto outer = st.mark();
    std::vector<cluster::JobAllocation> applied;
    for (int i = 0; i < 4; ++i) {
      if (auto a = random_alloc(st, rng)) {
        st.allocate_unchecked(*a);
        applied.push_back(*a);
      }
    }
    // Nested mark: roll back an inner probe first, then the outer branch.
    const auto inner = st.mark();
    if (auto a = random_alloc(st, rng)) st.allocate_unchecked(*a);
    st.rollback(inner);
    if (!applied.empty()) {
      st.release(applied.back());  // release() is undo-recorded too
      applied.pop_back();
    }
    st.rollback(outer);
    ASSERT_EQ(st.snapshot(), base_snap);
    ASSERT_EQ(st.hash(), base_hash);
    ASSERT_EQ(st.hash(), cluster::ClusterState::hash(st.snapshot()));
    ASSERT_EQ(st.mark(), outer);  // log fully popped
  }
  // Disabling clears the log; the state itself is untouched.
  const auto snap = st.snapshot();
  st.set_undo_enabled(false);
  ASSERT_EQ(st.mark(), 0u);
  ASSERT_EQ(st.snapshot(), snap);
}

TEST(ClusterStateSoa, IncrementalHashMatchesFromScratch) {
  for (const auto& spec : test_specs()) {
    cluster::ClusterState st(&spec);
    std::mt19937 rng(99);
    std::vector<cluster::JobAllocation> live;
    std::vector<cluster::ClusterState::Snapshot> snaps;
    for (int step = 0; step < 300; ++step) {
      const int op = static_cast<int>(rng() % 10);
      if (op < 5) {
        if (auto a = random_alloc(st, rng)) {
          st.allocate(*a);
          live.push_back(*a);
        }
      } else if (op < 7 && !live.empty()) {
        const std::size_t i = rng() % live.size();
        st.release(live[i]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (op == 7 && !snaps.empty()) {
        st.restore(snaps[rng() % snaps.size()]);
        live.clear();  // releases below the snapshot could underflow
      } else if (op == 8) {
        snaps.push_back(st.snapshot());
      }
      ASSERT_EQ(st.hash(), cluster::ClusterState::hash(st.snapshot()))
          << "divergence at step " << step;
    }
  }
}

// ---- golden bit-identity of full runs --------------------------------------

void fold(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
}

std::uint64_t bits(double d) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::uint64_t digest(const sim::SimResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  fold(h, static_cast<std::uint64_t>(r.rounds));
  fold(h, static_cast<std::uint64_t>(r.total_reallocations));
  fold(h, static_cast<std::uint64_t>(r.total_preemptions));
  fold(h, bits(r.makespan));
  fold(h, bits(r.avg_jct));
  fold(h, bits(r.avg_ftf));
  for (const auto& j : r.jobs) {
    fold(h, static_cast<std::uint64_t>(j.id));
    fold(h, bits(j.first_start));
    fold(h, bits(j.finish));
    fold(h, bits(j.gpu_seconds));
    fold(h, static_cast<std::uint64_t>(j.preemptions));
    fold(h, static_cast<std::uint64_t>(j.reallocations));
  }
  return h;
}

struct GoldenCase {
  int cells;
  int threads;
  std::uint64_t want;
};

// Digests captured on the pre-PR8 (vector-of-vectors state, snapshot-copy DP)
// implementation over runner::paper_static(48, 42). The refactor must keep
// every one of these bit-identical: same digest across cells=1/4 configs at
// both thread counts, and the same values as before the rewrite.
void run_golden(const char* scheduler, const std::vector<GoldenCase>& cases) {
  const auto cfg = runner::paper_static(48, 42);
  for (const auto& c : cases) {
    common::ScopedThreadCount tc(c.threads);
    sim::ShardConfig sc;
    sc.cells = c.cells;
    auto sched = runner::make_sharded_scheduler(scheduler, sc);
    sim::Simulator simulator(cfg.sim);
    const auto res = simulator.run(cfg.spec, cfg.trace, *sched);
    EXPECT_EQ(digest(res), c.want)
        << scheduler << " cells=" << c.cells << " threads=" << c.threads;
  }
}

TEST(GoldenSchedules, Hadar) {
  run_golden("hadar", {{1, 1, 0xeb450380668af1ebULL},
                       {1, 4, 0xeb450380668af1ebULL},
                       {4, 1, 0x7904d60fbee5d204ULL},
                       {4, 4, 0x7904d60fbee5d204ULL}});
}

TEST(GoldenSchedules, Gavel) {
  run_golden("gavel", {{1, 1, 0x1794860897048e93ULL},
                       {1, 4, 0x1794860897048e93ULL},
                       {4, 1, 0x40851bc4e0c3d36bULL},
                       {4, 4, 0x40851bc4e0c3d36bULL}});
}

TEST(GoldenSchedules, Tiresias) {
  run_golden("tiresias", {{1, 1, 0x72841aae2da1cdedULL},
                          {1, 4, 0x72841aae2da1cdedULL},
                          {4, 1, 0xc00b5cea6a37e9f4ULL},
                          {4, 4, 0xc00b5cea6a37e9f4ULL}});
}

TEST(GoldenSchedules, Yarn) {
  run_golden("yarn", {{1, 1, 0x5a80765775e201edULL},
                      {1, 4, 0x5a80765775e201edULL},
                      {4, 1, 0x0a680be5a30a58b8ULL},
                      {4, 4, 0x0a680be5a30a58b8ULL}});
}

}  // namespace
