// Shared helpers for scheduler-level tests: quick construction of JobSpecs,
// JobViews, and SchedulerContexts without running a simulation.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "sim/scheduler.hpp"

namespace hadar::test {

/// Owns JobSpecs and builds a SchedulerContext over them.
class ContextBuilder {
 public:
  explicit ContextBuilder(const cluster::ClusterSpec* spec) : spec_(spec) {}

  /// Adds a job; `rates` arity must match the spec's GPU types.
  ContextBuilder& add_job(int workers, double iterations, std::vector<double> rates,
                          Seconds arrival = 0.0) {
    auto j = std::make_unique<workload::JobSpec>();
    j->id = static_cast<JobId>(specs_.size());
    j->model = "test-" + std::to_string(j->id);
    j->arrival = arrival;
    j->num_workers = workers;
    j->epochs = static_cast<std::int64_t>(iterations);
    j->chunks_per_epoch = 1;
    j->throughput = std::move(rates);
    specs_.push_back(std::move(j));
    return *this;
  }

  /// Sets progress on the most recently added job.
  ContextBuilder& with_progress(double iterations_done) {
    progress_[specs_.size() - 1] = iterations_done;
    return *this;
  }

  /// Sets the DNN parameter size of the most recently added job.
  ContextBuilder& with_model_size(double mb) {
    specs_.back()->model_size_mb = mb;
    return *this;
  }

  /// Sets the absolute deadline of the most recently added job.
  ContextBuilder& with_deadline(Seconds deadline) {
    specs_.back()->deadline = deadline;
    return *this;
  }

  /// Sets the tenant of the most recently added job.
  ContextBuilder& with_tenant(int tenant) {
    specs_.back()->tenant = tenant;
    return *this;
  }

  sim::SchedulerContext build(Seconds now = 0.0, Seconds round_length = 360.0) const {
    sim::SchedulerContext ctx;
    ctx.spec = spec_;
    ctx.now = now;
    ctx.round_length = round_length;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      sim::JobView v;
      v.spec = specs_[i].get();
      v.throughput = specs_[i]->throughput;
      v.rounds_on_type.assign(static_cast<std::size_t>(spec_->num_types()), 0);
      const auto it = progress_.find(i);
      if (it != progress_.end()) v.iterations_done = it->second;
      ctx.jobs.push_back(std::move(v));
    }
    return ctx;
  }

  const workload::JobSpec& spec(std::size_t i) const { return *specs_[i]; }

 private:
  const cluster::ClusterSpec* spec_;
  std::vector<std::unique_ptr<workload::JobSpec>> specs_;
  std::map<std::size_t, double> progress_;
};

}  // namespace hadar::test
