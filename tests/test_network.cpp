// Tests for the communication model: penalty-factor mode, the
// parameter-server synchronization model, and their effect end-to-end on
// the simulator and on Hadar's placement choices.
#include <gtest/gtest.h>

#include "core/hadar_scheduler.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace hadar::sim {
namespace {

TEST(NetworkModel, SingleNodeIsFree) {
  NetworkModel m;
  m.parameter_server = true;
  EXPECT_DOUBLE_EQ(m.effective_rate(5.0, 1, 500.0), 5.0);
  m.parameter_server = false;
  EXPECT_DOUBLE_EQ(m.effective_rate(5.0, 1, 500.0), 5.0);
}

TEST(NetworkModel, PenaltyFactorCompoundsPerExtraNode) {
  NetworkModel m;
  m.penalty_factor = 0.9;
  EXPECT_NEAR(m.effective_rate(10.0, 2, 0.0), 9.0, 1e-12);
  EXPECT_NEAR(m.effective_rate(10.0, 4, 0.0), 10.0 * 0.9 * 0.9 * 0.9, 1e-12);
}

TEST(NetworkModel, ParameterServerMatchesClosedForm) {
  NetworkModel m;
  m.parameter_server = true;
  m.nic_bandwidth_gbps = 10.0;
  // 100 MB model: t_comm = 2 * 800e6 bits / 10e9 bps = 0.16 s per iteration.
  // At x = 5 it/s: x_eff = 5 / (1 + 5 * 0.16) = 2.777...
  EXPECT_NEAR(m.effective_rate(5.0, 2, 100.0), 5.0 / 1.8, 1e-9);
  // More nodes do not add further penalty in this model (NIC-bound).
  EXPECT_NEAR(m.effective_rate(5.0, 5, 100.0), 5.0 / 1.8, 1e-9);
}

TEST(NetworkModel, BiggerModelsHurtMore) {
  NetworkModel m;
  m.parameter_server = true;
  const double small = m.effective_rate(5.0, 2, 10.0);
  const double large = m.effective_rate(5.0, 2, 1000.0);
  EXPECT_GT(small, large);
  EXPECT_GT(large, 0.0);
}

TEST(NetworkModel, FasterNicsHelp) {
  NetworkModel slow, fast;
  slow.parameter_server = fast.parameter_server = true;
  slow.nic_bandwidth_gbps = 1.0;
  fast.nic_bandwidth_gbps = 100.0;
  EXPECT_LT(slow.effective_rate(5.0, 2, 100.0), fast.effective_rate(5.0, 2, 100.0));
}

TEST(NetworkModel, ZeroAndNegativeRatesAreSafe) {
  NetworkModel m;
  EXPECT_DOUBLE_EQ(m.effective_rate(0.0, 3, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(m.effective_rate(-1.0, 3, 100.0), 0.0);
}

TEST(NetworkModel, ValidateRejectsBadParameters) {
  NetworkModel m;
  m.penalty_factor = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = NetworkModel{};
  m.penalty_factor = 1.5;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = NetworkModel{};
  m.parameter_server = true;
  m.nic_bandwidth_gbps = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = NetworkModel{};
  EXPECT_NO_THROW(m.validate());
}

TEST(NetworkModel, SimulatorUsesParameterServerModel) {
  // A 2-worker job split across two single-GPU nodes with a 100 MB model on
  // 10 Gb/s NICs: per-worker rate 1 it/s => x_eff = 1/(1+0.16) it/s.
  auto spec = cluster::ClusterSpec::from_counts(
      cluster::GpuTypeRegistry({{"G", 1.0}}), {std::vector<int>{1}, std::vector<int>{1}});
  class SplitSched : public IScheduler {
   public:
    std::string name() const override { return "split"; }
    cluster::AllocationMap schedule(const SchedulerContext& ctx) override {
      cluster::AllocationMap m;
      for (const auto& j : ctx.jobs) {
        m.emplace(j.id(), cluster::JobAllocation({{0, 0, 1}, {1, 0, 1}}));
      }
      return m;
    }
  } sched;

  SimConfig cfg;
  cfg.round_length = 1000.0;
  cfg.flat_reallocation_penalty = 0.0;
  cfg.network.parameter_server = true;
  cfg.network.nic_bandwidth_gbps = 10.0;
  Simulator sim(cfg);
  workload::Trace t;
  workload::JobSpec j;
  j.model = "net";
  j.num_workers = 2;
  j.epochs = 1000;
  j.chunks_per_epoch = 1;
  j.throughput = {1.0};
  j.model_size_mb = 100.0;
  t.jobs = {j};
  t.finalize();
  const auto r = sim.run(spec, t, sched);
  // 1000 iters at aggregate 2/(1.16) it/s = 580 s.
  EXPECT_NEAR(r.jobs[0].finish, 580.0, 1e-6);
}

TEST(NetworkModel, HadarAvoidsCrossNodePlacementForChattyModels) {
  // Two placements for a 2-worker job: same node on a slower type vs two
  // nodes of a faster type. With a huge model on slow NICs, Hadar must pick
  // the consolidated slower pool.
  using test::ContextBuilder;
  auto spec = cluster::ClusterSpec::from_counts(
      cluster::GpuTypeRegistry({{"Fast", 2.0}, {"Slow", 1.0}}),
      {std::vector<int>{1, 0}, std::vector<int>{1, 0}, std::vector<int>{0, 2}});
  ContextBuilder b(&spec);
  b.add_job(2, 1e6, {2.0, 1.6}).with_model_size(2000.0);
  auto ctx = b.build();
  ctx.network.parameter_server = true;
  ctx.network.nic_bandwidth_gbps = 1.0;  // 2 GB over 1 Gb/s: brutal
  core::HadarScheduler sched;
  const auto m = sched.schedule(ctx);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.begin()->second.nodes_used(), 1);
  EXPECT_EQ(m.begin()->second.workers_of_type(1), 2);  // the Slow pool
}

}  // namespace
}  // namespace hadar::sim
