// Tests for the Hadar online scheduler (Algorithm 1): gang/capacity safety,
// sticky incremental updates vs full recomputes, the liveness guard, policy
// switching, and end-to-end behavior on small simulations.
#include <gtest/gtest.h>

#include "core/hadar_scheduler.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

namespace hadar::core {
namespace {

using cluster::ClusterSpec;
using test::ContextBuilder;

TEST(HadarScheduler, ProducesValidGangAllocations) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  for (int i = 0; i < 12; ++i) b.add_job(1 + i % 8, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  HadarScheduler sched;
  const auto m = sched.schedule(ctx);
  EXPECT_TRUE(cluster::validate(spec, m).empty());
  for (const auto& [id, a] : m) {
    EXPECT_EQ(a.total_workers(), ctx.jobs[static_cast<std::size_t>(id)].spec->num_workers);
  }
  EXPECT_FALSE(m.empty());
}

TEST(HadarScheduler, SchedulesSomethingOnIdleCluster) {
  // Liveness: a single queued job on an empty cluster always runs.
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  b.add_job(2, 100.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  HadarScheduler sched;
  EXPECT_EQ(sched.schedule(ctx).size(), 1u);
}

TEST(HadarScheduler, StickyKeepsRunningJobsInPlace) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  b.add_job(4, 1e9, {10.0, 5.0, 1.0});
  auto ctx = b.build();
  HadarConfig cfg;
  cfg.sticky = true;
  cfg.full_recompute_period = 1000;  // effectively never recompute
  HadarScheduler sched(cfg);
  auto first = sched.schedule(ctx);
  ASSERT_EQ(first.size(), 1u);
  // Feed the allocation back as the job's current placement.
  ctx.jobs[0].current_allocation = first.begin()->second;
  ctx.now += 360.0;
  const auto second = sched.schedule(ctx);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.begin()->second, first.begin()->second);
}

TEST(HadarScheduler, FullRecomputeEveryRoundWhenNotSticky) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  b.add_job(4, 1e9, {10.0, 5.0, 1.0});
  auto ctx = b.build();
  HadarConfig cfg;
  cfg.sticky = false;
  HadarScheduler sched(cfg);
  // Not sticky: the decision is recomputed, but an optimal placement should
  // still be stable (the current allocation is among the candidates).
  auto first = sched.schedule(ctx);
  ctx.jobs[0].current_allocation = first.begin()->second;
  const auto second = sched.schedule(ctx);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.begin()->second.total_workers(), 4);
}

TEST(HadarScheduler, ResetClearsState) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  b.add_job(2, 1000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  HadarScheduler sched;
  sched.schedule(ctx);
  EXPECT_TRUE(sched.price_book().ready());
  sched.reset();
  EXPECT_FALSE(sched.price_book().ready());
}

TEST(HadarScheduler, UtilityKindsAllProduceValidSchedules) {
  const auto spec = ClusterSpec::simulation_default();
  for (const auto kind : {UtilityKind::kEffectiveThroughput, UtilityKind::kMinMakespan,
                          UtilityKind::kFinishTimeFairness}) {
    ContextBuilder b(&spec);
    for (int i = 0; i < 10; ++i) b.add_job(1 + i % 4, 2000.0 * (i + 1), {10.0, 5.0, 1.0});
    const auto ctx = b.build();
    HadarConfig cfg;
    cfg.utility = kind;
    HadarScheduler sched(cfg);
    const auto m = sched.schedule(ctx);
    EXPECT_TRUE(cluster::validate(spec, m).empty()) << to_string(kind);
    EXPECT_FALSE(m.empty()) << to_string(kind);
  }
}

TEST(HadarScheduler, NameAndIntrospection) {
  HadarScheduler sched;
  EXPECT_EQ(sched.name(), "Hadar");
  EXPECT_EQ(sched.config().utility, UtilityKind::kEffectiveThroughput);
}

// ------------------------------------------------------- end-to-end ----

workload::Trace small_trace(int n, std::uint64_t seed,
                            const cluster::GpuTypeRegistry& reg) {
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &reg);
  workload::TraceGenConfig cfg;
  cfg.num_jobs = n;
  cfg.seed = seed;
  // Keep unit tests fast: shrink the big classes.
  cfg.large_lo = 2.0;
  cfg.large_hi = 6.0;
  cfg.xlarge_lo = 6.0;
  cfg.xlarge_hi = 10.0;
  return gen.generate(cfg);
}

TEST(HadarScheduler, CompletesAWholeTrace) {
  const auto spec = ClusterSpec::simulation_default();
  const auto trace = small_trace(25, 5, spec.types());
  sim::SimConfig sc;
  sim::Simulator sim(sc);
  HadarScheduler sched;
  const auto r = sim.run(spec, trace, sched);
  EXPECT_TRUE(r.all_finished());
  EXPECT_GT(r.avg_jct, 0.0);
  EXPECT_GT(r.gpu_utilization, 0.0);
}

TEST(HadarScheduler, DeterministicAcrossRuns) {
  const auto spec = ClusterSpec::simulation_default();
  const auto trace = small_trace(20, 9, spec.types());
  sim::SimConfig sc;
  sim::Simulator sim(sc);
  HadarScheduler sched;
  const auto a = sim.run(spec, trace, sched);
  const auto b = sim.run(spec, trace, sched);
  EXPECT_DOUBLE_EQ(a.avg_jct, b.avg_jct);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_preemptions, b.total_preemptions);
}

TEST(HadarScheduler, MakespanPolicyShortensMakespan) {
  const auto spec = ClusterSpec::simulation_default();
  const auto trace = small_trace(40, 11, spec.types());
  sim::Simulator sim{sim::SimConfig{}};
  HadarConfig jct_cfg;
  HadarScheduler jct_sched(jct_cfg);
  HadarConfig mk_cfg;
  mk_cfg.utility = UtilityKind::kMinMakespan;
  HadarScheduler mk_sched(mk_cfg);
  const auto r_jct = sim.run(spec, trace, jct_sched);
  const auto r_mk = sim.run(spec, trace, mk_sched);
  ASSERT_TRUE(r_jct.all_finished());
  ASSERT_TRUE(r_mk.all_finished());
  // The makespan policy must not be (much) worse at its own objective.
  EXPECT_LE(r_mk.makespan, r_jct.makespan * 1.05);
}

TEST(HadarScheduler, MixingAblationDoesNotBeatFullHadar) {
  const auto spec = ClusterSpec::simulation_default();
  const auto trace = small_trace(30, 13, spec.types());
  sim::Simulator sim{sim::SimConfig{}};
  HadarScheduler full;
  HadarConfig nomix_cfg;
  nomix_cfg.dp.find_alloc.allow_mixed_types = false;
  HadarScheduler nomix(nomix_cfg);
  const auto r_full = sim.run(spec, trace, full);
  const auto r_nomix = sim.run(spec, trace, nomix);
  ASSERT_TRUE(r_full.all_finished());
  ASSERT_TRUE(r_nomix.all_finished());
  // Task-level mixing is the paper's headline: removing it must not help.
  EXPECT_LE(r_full.avg_jct, r_nomix.avg_jct * 1.10);
}

TEST(HadarScheduler, LowChurnComparedToEveryRoundRecompute) {
  const auto spec = ClusterSpec::simulation_default();
  const auto trace = small_trace(30, 17, spec.types());
  sim::Simulator sim{sim::SimConfig{}};
  HadarScheduler sticky;  // default: sticky with periodic recompute
  HadarConfig ns_cfg;
  ns_cfg.sticky = false;
  HadarScheduler notsticky(ns_cfg);
  const auto r_sticky = sim.run(spec, trace, sticky);
  const auto r_not = sim.run(spec, trace, notsticky);
  // The paper reports only ~30% of rounds change an allocation: sticky mode
  // must churn strictly less than full recompute every round.
  EXPECT_LT(r_sticky.realloc_round_fraction, 0.5);
  EXPECT_LE(r_sticky.realloc_round_fraction, r_not.realloc_round_fraction + 1e-9);
}

}  // namespace
}  // namespace hadar::core
