// Property-based suites (parameterized gtest): invariants that must hold
// for EVERY scheduler on randomized workloads across seeds —
//   * capacity is never exceeded, gang semantics always hold (the simulator
//     throws otherwise, so completion implies compliance);
//   * every job eventually finishes (no starvation) on finite traces;
//   * progress conservation: a finished job's iterations equal its spec;
//   * determinism: same seed => identical results;
//   * preemptive schedulers respect the monotone arrival of metrics.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

namespace hadar::runner {
namespace {

struct Param {
  const char* scheduler;
  std::uint64_t seed;
  bool continuous;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string s = info.param.scheduler;
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s + "_seed" + std::to_string(info.param.seed) +
         (info.param.continuous ? "_cont" : "_static");
}

ExperimentConfig make_config(const Param& p) {
  ExperimentConfig e;
  e.spec = cluster::ClusterSpec::simulation_default();
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &e.spec.types());
  workload::TraceGenConfig t;
  t.num_jobs = 20;
  t.seed = p.seed;
  t.arrivals = p.continuous ? workload::ArrivalPattern::kContinuous
                            : workload::ArrivalPattern::kStatic;
  t.jobs_per_hour = 120.0;
  // Keep property sweeps quick: compress the size classes.
  t.medium_lo = 0.5;
  t.medium_hi = 2.0;
  t.large_lo = 1.0;
  t.large_hi = 4.0;
  t.xlarge_lo = 2.0;
  t.xlarge_hi = 6.0;
  e.trace = gen.generate(t);
  e.sim.seed = p.seed;
  return e;
}

class SchedulerProperties : public ::testing::TestWithParam<Param> {};

TEST_P(SchedulerProperties, CompletesAllJobsWithoutViolations) {
  const auto cfg = make_config(GetParam());
  sim::Simulator sim(cfg.sim);  // validate_allocations on: violations throw
  auto sched = make_scheduler(GetParam().scheduler);
  const auto r = sim.run(cfg.spec, cfg.trace, *sched);
  EXPECT_TRUE(r.all_finished());

  for (const auto& j : r.jobs) {
    const auto& spec = cfg.trace.jobs[static_cast<std::size_t>(j.id)];
    // Lifecycle sanity.
    ASSERT_TRUE(j.finished());
    EXPECT_GE(j.first_start, spec.arrival);
    EXPECT_GT(j.finish, j.first_start);
    EXPECT_GE(j.rounds_run, 1);
    // Progress conservation: attained compute suffices for the spec's work
    // at the job's best rate (it can never need less).
    const double min_compute_needed =
        spec.total_iterations() / spec.max_throughput();
    EXPECT_GE(j.compute_gpu_seconds + 1e-6, min_compute_needed);
    // Held time dominates compute time.
    EXPECT_GE(j.gpu_seconds + 1e-9, j.compute_gpu_seconds);
    EXPECT_GE(j.ftf, 0.0);
  }

  // Aggregate consistency.
  EXPECT_GE(r.makespan, r.max_jct);
  EXPECT_LE(r.min_jct, r.median_jct);
  EXPECT_LE(r.median_jct, r.max_jct);
  EXPECT_LE(r.avg_jct, r.max_jct);
  EXPECT_GE(r.avg_jct, r.min_jct);
  EXPECT_GT(r.gpu_utilization, 0.0);
  EXPECT_LE(r.gpu_utilization, 1.0 + 1e-9);
  EXPECT_GT(r.avg_job_utilization, 0.0);
  EXPECT_LE(r.avg_job_utilization, 1.0 + 1e-9);
}

TEST_P(SchedulerProperties, DeterministicAcrossRuns) {
  const auto cfg = make_config(GetParam());
  sim::Simulator sim(cfg.sim);
  auto sched = make_scheduler(GetParam().scheduler);
  const auto a = sim.run(cfg.spec, cfg.trace, *sched);
  const auto b = sim.run(cfg.spec, cfg.trace, *sched);
  EXPECT_DOUBLE_EQ(a.avg_jct, b.avg_jct);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.avg_ftf, b.avg_ftf);
  EXPECT_EQ(a.total_preemptions, b.total_preemptions);
  EXPECT_EQ(a.total_reallocations, b.total_reallocations);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish) << i;
  }
}

constexpr Param kParams[] = {
    {"hadar", 1, false},    {"hadar", 2, false},    {"hadar", 3, true},
    {"hadar", 4, true},     {"hadar-makespan", 5, false},
    {"hadar-ftf", 6, false},{"hadar-nomix", 7, false},
    {"hadar-greedy", 8, true},
    {"gavel", 1, false},    {"gavel", 2, true},     {"gavel", 3, true},
    {"tiresias", 1, false}, {"tiresias", 2, true},
    {"yarn", 1, false},     {"yarn", 2, true},
    {"srtf", 1, false},     {"srtf", 2, true},
};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerProperties,
                         ::testing::ValuesIn(kParams), param_name);

// --------- cross-scheduler properties over a seed sweep -----------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, HadarNeverLosesBadlyToGavel) {
  // Robustness across workloads: Hadar's avg JCT within 15% of Gavel's or
  // better on every seed (the paper claims consistent wins).
  Param p{"hadar", GetParam(), false};
  const auto cfg = make_config(p);
  const auto runs = compare(cfg, {"hadar", "gavel"});
  EXPECT_LE(runs[0].result.avg_jct, runs[1].result.avg_jct * 1.15)
      << "seed " << GetParam();
}

TEST_P(SeedSweep, StragglerInjectionNeverBreaksInvariants) {
  Param p{"hadar", GetParam(), true};
  auto cfg = make_config(p);
  cfg.sim.straggler.probability = 0.1;
  cfg.sim.straggler.slowdown = 0.4;
  sim::Simulator sim(cfg.sim);
  auto sched = make_scheduler("hadar");
  const auto r = sim.run(cfg.spec, cfg.trace, *sched);
  EXPECT_TRUE(r.all_finished());
  // Stragglers only slow things down vs the clean run.
  cfg.sim.straggler.probability = 0.0;
  sim::Simulator clean(cfg.sim);
  const auto rc = clean.run(cfg.spec, cfg.trace, *sched);
  EXPECT_GE(r.avg_jct, rc.avg_jct * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace hadar::runner
