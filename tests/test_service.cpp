// Durability-layer tests: changelog framing and torn-tail truncation,
// snapshot round-trips, daemon-vs-batch-simulator bit-identity, admission
// backpressure, and the crash-point sweep — kill the daemon after every
// changelog record boundary, recover, and require the completed run to be
// bit-identical to an uninterrupted one (plus torn-write / bit-flip /
// randomized-corruption variants).
//
// "Killing" the daemon = destroying it. The changelog flushes stdio buffers
// after every append, so the bytes on disk at any instant between appends
// equal the bytes after a destructor close — destruction reproduces exactly
// the file state a SIGKILL at that boundary would leave.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "common/binary.hpp"
#include "common/env.hpp"
#include "runner/experiment.hpp"
#include "service/admission_queue.hpp"
#include "service/changelog.hpp"
#include "service/daemon.hpp"
#include "service/recovery.hpp"
#include "service/snapshot.hpp"
#include "sim/simulator.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

namespace hadar::service {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string d = ::testing::TempDir() + "hadar_service_" + name;
  fs::remove_all(d);
  return d;
}

// --------------------------------------------------------------- fixture ----

struct Scenario {
  cluster::ClusterSpec spec;
  workload::Trace trace;
  sim::SimConfig sim;
};

/// Small continuous trace of short jobs: enough rounds to cross several
/// snapshot/rotation boundaries, cheap enough to sweep every crash point.
/// Jitter, stragglers, and observation noise are on so replay exercises all
/// three RNG stream families.
Scenario small_scenario(std::uint64_t seed = 5, int num_jobs = 14) {
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  Scenario s;
  s.spec = cluster::ClusterSpec::simulation_default();
  workload::TraceGenConfig t;
  t.num_jobs = num_jobs;
  t.arrivals = workload::ArrivalPattern::kContinuous;
  t.jobs_per_hour = 40.0;  // arrivals spread over several round boundaries
  t.seed = seed;
  t.small_lo = 0.05;
  t.small_hi = 0.4;
  t.medium_lo = 0.4;
  t.medium_hi = 2.5;
  t.large_weight = 0.0;
  t.xlarge_weight = 0.0;
  s.trace = workload::TraceGenerator(&zoo, &s.spec.types()).generate(t);
  s.sim.seed = seed;
  s.sim.throughput_jitter = 0.05;
  s.sim.straggler.probability = 0.1;
  s.sim.observation_noise = 0.05;
  s.sim.enable_event_log = true;
  return s;
}

ServiceConfig service_config(const Scenario& s, const std::string& dir,
                             long long snapshot_interval = 7) {
  ServiceConfig cfg;
  cfg.dir = dir;
  cfg.snapshot_interval = snapshot_interval;
  cfg.queue_depth = 256;
  cfg.sim = s.sim;
  return cfg;
}

void submit_all(SchedulerDaemon& d, const workload::Trace& trace, std::size_t from = 0) {
  for (std::size_t i = from; i < trace.jobs.size(); ++i) {
    ASSERT_TRUE(d.submit(trace.jobs[i])) << "queue rejected job " << i;
  }
}

/// Bit-exact SimResult comparison minus the one wall-clock field
/// (scheduler_seconds measures host time, not simulated state).
void expect_same_result(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    EXPECT_EQ(x.id, y.id) << i;
    EXPECT_EQ(x.arrival, y.arrival) << i;
    EXPECT_EQ(x.first_start, y.first_start) << i;
    EXPECT_EQ(x.finish, y.finish) << i;
    EXPECT_EQ(x.gpu_seconds, y.gpu_seconds) << i;
    EXPECT_EQ(x.compute_gpu_seconds, y.compute_gpu_seconds) << i;
    EXPECT_EQ(x.rounds_run, y.rounds_run) << i;
    EXPECT_EQ(x.preemptions, y.preemptions) << i;
    EXPECT_EQ(x.reallocations, y.reallocations) << i;
    EXPECT_EQ(x.failure_kills, y.failure_kills) << i;
    EXPECT_EQ(x.lost_gpu_seconds, y.lost_gpu_seconds) << i;
    EXPECT_EQ(x.ftf, y.ftf) << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_jct, b.avg_jct);
  EXPECT_EQ(a.median_jct, b.median_jct);
  EXPECT_EQ(a.min_jct, b.min_jct);
  EXPECT_EQ(a.max_jct, b.max_jct);
  EXPECT_EQ(a.p95_jct, b.p95_jct);
  EXPECT_EQ(a.avg_queueing_delay, b.avg_queueing_delay);
  EXPECT_EQ(a.gpu_utilization, b.gpu_utilization);
  EXPECT_EQ(a.avg_job_utilization, b.avg_job_utilization);
  EXPECT_EQ(a.avg_ftf, b.avg_ftf);
  EXPECT_EQ(a.max_ftf, b.max_ftf);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_reallocations, b.total_reallocations);
  EXPECT_EQ(a.total_preemptions, b.total_preemptions);
  EXPECT_EQ(a.num_never_started, b.num_never_started);
  EXPECT_EQ(a.num_unfinished, b.num_unfinished);
  EXPECT_EQ(a.num_node_failures, b.num_node_failures);
  EXPECT_EQ(a.num_node_recoveries, b.num_node_recoveries);
  EXPECT_EQ(a.num_gpu_degrades, b.num_gpu_degrades);
  EXPECT_EQ(a.total_failure_kills, b.total_failure_kills);
  EXPECT_EQ(a.lost_gpu_seconds, b.lost_gpu_seconds);
  EXPECT_EQ(a.goodput, b.goodput);
  EXPECT_EQ(a.realloc_round_fraction, b.realloc_round_fraction);
  EXPECT_EQ(a.scheduler_calls, b.scheduler_calls);
}

struct GoldenRun {
  sim::SimResult result;
  std::vector<sim::Event> events;
  long long rounds = 0;
};

/// Uninterrupted daemon run over the whole trace.
GoldenRun golden_run(const Scenario& s, const std::string& scheduler,
                     const std::string& dir, long long snapshot_interval = 7) {
  SchedulerDaemon d(&s.spec, runner::make_scheduler(scheduler), service_config(s, dir, snapshot_interval));
  submit_all(d, s.trace);
  GoldenRun g;
  g.rounds = d.run_until_idle();
  g.result = d.result(s.trace.jobs.size());
  g.events = d.engine().event_log().sorted();
  return g;
}

/// Recovers a daemon over `dir`, re-feeds the not-yet-admitted suffix of the
/// trace (the producer's resubmission of non-durable events), runs to
/// completion, and checks bit-identity with the golden run.
void recover_and_finish(const Scenario& s, const std::string& scheduler,
                        const std::string& dir, const GoldenRun& golden,
                        long long snapshot_interval = 7) {
  SchedulerDaemon d(&s.spec, runner::make_scheduler(scheduler), service_config(s, dir, snapshot_interval));
  submit_all(d, s.trace, d.engine().jobs_admitted());
  d.run_until_idle();
  expect_same_result(d.result(s.trace.jobs.size()), golden.result);
  EXPECT_EQ(d.engine().event_log().sorted(), golden.events);
}

/// Runs a fresh daemon for exactly `rounds` rounds and "crashes" (destroys)
/// it, leaving the durable directory as a kill at that record boundary would.
void run_and_crash(const Scenario& s, const std::string& scheduler,
                   const std::string& dir, long long rounds,
                   long long snapshot_interval = 7) {
  fs::remove_all(dir);
  SchedulerDaemon d(&s.spec, runner::make_scheduler(scheduler), service_config(s, dir, snapshot_interval));
  submit_all(d, s.trace);
  for (long long i = 0; i < rounds; ++i) ASSERT_TRUE(d.run_round().has_value());
}

std::string active_changelog_of(const std::string& dir) {
  long long best = -1;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    long long r = -1;
    if (std::sscanf(name.c_str(), "changelog_%lld.wal", &r) == 1 && r > best) best = r;
  }
  EXPECT_GE(best, 0) << "no changelog in " << dir;
  return changelog_path(dir, best);
}

void append_bytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

// ------------------------------------------------------------- changelog ----

TEST(Changelog, AppendScanRoundtrip) {
  const std::string dir = fresh_dir("clg_roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/log.wal";
  {
    ChangelogWriter w(path);
    w.append("alpha");
    w.append("");
    w.append(std::string(1000, 'x'));
    EXPECT_EQ(w.records_appended(), 3);
  }
  const ChangelogScan scan = scan_changelog(path);
  EXPECT_TRUE(scan.clean());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0], "alpha");
  EXPECT_EQ(scan.records[1], "");
  EXPECT_EQ(scan.records[2], std::string(1000, 'x'));
  ASSERT_EQ(scan.record_ends.size(), 3u);
  EXPECT_EQ(scan.record_ends.back(), scan.valid_bytes);
}

TEST(Changelog, AppendModeContinuesExistingFile) {
  const std::string dir = fresh_dir("clg_append");
  fs::create_directories(dir);
  const std::string path = dir + "/log.wal";
  { ChangelogWriter(path).append("one"); }
  {
    ChangelogWriter w(path, FsyncMode::kNone, /*append=*/true);
    w.append("two");
  }
  const ChangelogScan scan = scan_changelog(path);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1], "two");
}

TEST(Changelog, TornTailIsDetectedAndTruncated) {
  const std::string dir = fresh_dir("clg_torn");
  fs::create_directories(dir);
  const std::string path = dir + "/log.wal";
  {
    ChangelogWriter w(path);
    w.append("first");
    w.append("second");
  }
  append_bytes(path, "\x13\x00\x00\x00partial");  // header promises more than exists
  ChangelogScan scan = scan_changelog(path);
  EXPECT_FALSE(scan.clean());
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_GT(scan.torn_bytes, 0u);
  truncate_changelog(path, scan.valid_bytes);
  scan = scan_changelog(path);
  EXPECT_TRUE(scan.clean());
  EXPECT_EQ(scan.records.size(), 2u);
}

TEST(Changelog, BitFlipFailsCrcAndKeepsPrefix) {
  const std::string dir = fresh_dir("clg_flip");
  fs::create_directories(dir);
  const std::string path = dir + "/log.wal";
  {
    ChangelogWriter w(path);
    w.append("aaaaaaaa");
    w.append("bbbbbbbb");
  }
  const ChangelogScan before = scan_changelog(path);
  ASSERT_EQ(before.records.size(), 2u);
  flip_byte(path, before.record_ends[0] + 10);  // inside record 1's payload
  const ChangelogScan after = scan_changelog(path);
  EXPECT_FALSE(after.clean());
  ASSERT_EQ(after.records.size(), 1u);
  EXPECT_EQ(after.records[0], "aaaaaaaa");
  EXPECT_EQ(after.valid_bytes, before.record_ends[0]);
}

TEST(Changelog, GarbageFileHasBadMagic) {
  const std::string dir = fresh_dir("clg_magic");
  fs::create_directories(dir);
  const std::string path = dir + "/log.wal";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a changelog at all", f);
  std::fclose(f);
  const ChangelogScan scan = scan_changelog(path);
  EXPECT_TRUE(scan.bad_magic);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_TRUE(scan_changelog(dir + "/absent.wal").missing);
}

TEST(Changelog, RoundRecordEncodeDecodeRoundtrip) {
  const Scenario s = small_scenario();
  RoundRecord rec;
  rec.round = 42;
  rec.start = 15120.0;
  rec.rng_before = 0xdeadbeefcafe1234ull;
  rec.rng_after = 0x1122334455667788ull;
  rec.admitted = {s.trace.jobs[0], s.trace.jobs[1]};
  cluster::JobAllocation a;
  rec.allocations.emplace(7, a);
  const RoundRecord back = RoundRecord::decode(rec.encode());
  EXPECT_EQ(back.round, rec.round);
  EXPECT_EQ(back.start, rec.start);
  EXPECT_EQ(back.rng_before, rec.rng_before);
  EXPECT_EQ(back.rng_after, rec.rng_after);
  EXPECT_EQ(back.admitted, rec.admitted);
  EXPECT_EQ(back.allocations.size(), 1u);
  EXPECT_THROW(RoundRecord::decode(rec.encode() + "junk"), std::runtime_error);
}

// -------------------------------------------------------------- snapshot ----

TEST(Snapshot, RoundtripRestoresBitExactState) {
  const Scenario s = small_scenario();
  const std::string dir = fresh_dir("snap_roundtrip");
  SchedulerDaemon d(&s.spec, runner::make_scheduler("hadar"), service_config(s, dir));
  submit_all(d, s.trace);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(d.run_round().has_value());

  const std::string path = dir + "/probe.snap";
  write_snapshot(path, d.engine(), d.scheduler(), /*fsync=*/false);

  sim::RoundEngine fresh(&s.spec, s.sim);
  auto sched = runner::make_scheduler("hadar");
  sched->reset();
  ASSERT_TRUE(read_snapshot(path, fresh, *sched));

  common::BinaryWriter a;
  common::BinaryWriter b;
  d.engine().save(a);
  fresh.save(b);
  EXPECT_EQ(a.take(), b.take());
  common::BinaryWriter sa;
  common::BinaryWriter sb;
  d.scheduler().save_state(sa);
  sched->save_state(sb);
  EXPECT_EQ(sa.take(), sb.take());
}

TEST(Snapshot, CorruptOrMissingSnapshotIsRejected) {
  const Scenario s = small_scenario();
  const std::string dir = fresh_dir("snap_corrupt");
  SchedulerDaemon d(&s.spec, runner::make_scheduler("tiresias"), service_config(s, dir));
  submit_all(d, s.trace);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(d.run_round().has_value());
  const std::string path = dir + "/probe.snap";
  write_snapshot(path, d.engine(), d.scheduler(), false);

  sim::RoundEngine fresh(&s.spec, s.sim);
  auto sched = runner::make_scheduler("tiresias");
  sched->reset();
  EXPECT_FALSE(read_snapshot(dir + "/absent.snap", fresh, *sched));
  flip_byte(path, 64);
  EXPECT_FALSE(read_snapshot(path, fresh, *sched));
  EXPECT_EQ(fresh.rounds_completed(), 0);  // untouched on rejection
}

// ---------------------------------------------------------- daemon basics ----

TEST(AdmissionQueueTest, BackpressureRejectsBeyondCapacity) {
  AdmissionQueue q(4);
  workload::JobSpec j;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(j));
  EXPECT_FALSE(q.try_push(j));
  EXPECT_FALSE(q.try_push(j));
  EXPECT_EQ(q.accepted(), 4u);
  EXPECT_EQ(q.rejected(), 2u);
  EXPECT_EQ(q.drain().size(), 4u);
  EXPECT_TRUE(q.try_push(j));  // space again after drain
  EXPECT_THROW(AdmissionQueue(0), std::invalid_argument);
}

TEST(Daemon, BackpressureSurfacesThroughSubmit) {
  const Scenario s = small_scenario();
  ServiceConfig cfg = service_config(s, fresh_dir("daemon_bp"));
  cfg.queue_depth = 3;
  SchedulerDaemon d(&s.spec, runner::make_scheduler("yarn"), cfg);
  int accepted = 0;
  for (const auto& j : s.trace.jobs) accepted += d.submit(j) ? 1 : 0;
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(d.queue().rejected(), s.trace.jobs.size() - 3);
}

TEST(Daemon, IdleWithoutWorkAndConfigFromEnv) {
  const Scenario s = small_scenario();
  SchedulerDaemon d(&s.spec, runner::make_scheduler("srtf"),
                    service_config(s, fresh_dir("daemon_idle")));
  EXPECT_TRUE(d.idle());
  EXPECT_FALSE(d.run_round().has_value());
  EXPECT_FALSE(d.recovery().recovered);

  ServiceConfig def = ServiceConfig::from_env();
  EXPECT_EQ(def.snapshot_interval, 50);
  EXPECT_EQ(def.queue_depth, 1024u);
  EXPECT_EQ(def.fsync, FsyncMode::kNone);
  EXPECT_THROW(parse_fsync_mode("sometimes"), std::invalid_argument);

  // Env knobs never crash: a bad HADAR_SERVICE_FSYNC warns and falls back.
  ::setenv("HADAR_SERVICE_FSYNC", "banana", 1);
  EXPECT_EQ(ServiceConfig::from_env().fsync, FsyncMode::kNone);
  EXPECT_EQ(fsync_mode_from_env("HADAR_SERVICE_FSYNC", FsyncMode::kRotate),
            FsyncMode::kRotate);
  ::unsetenv("HADAR_SERVICE_FSYNC");
}

/// The daemon and the batch Simulator drive the same engine: identical
/// results and event timelines for every scheduler.
TEST(Daemon, MatchesBatchSimulatorForEveryScheduler) {
  const Scenario s = small_scenario();
  for (const char* name : {"hadar", "gavel", "tiresias", "yarn"}) {
    SCOPED_TRACE(name);
    sim::Simulator batch(s.sim);
    auto batch_sched = runner::make_scheduler(name);
    const sim::SimResult expected = batch.run(s.spec, s.trace, *batch_sched);

    SchedulerDaemon d(&s.spec, runner::make_scheduler(name),
                      service_config(s, fresh_dir(std::string("daemon_eq_") + name)));
    submit_all(d, s.trace);
    d.run_until_idle();
    expect_same_result(d.result(s.trace.jobs.size()), expected);
    EXPECT_EQ(d.engine().event_log().sorted(), batch.event_log().sorted());
  }
}

// ------------------------------------------------------------- recovery ----

TEST(Recovery, FreshDirectoryStartsAtGenesis) {
  const std::string dir = fresh_dir("rec_fresh");
  const Scenario s = small_scenario();
  sim::RoundEngine engine(&s.spec, s.sim);
  auto sched = runner::make_scheduler("hadar");
  sched->reset();
  const RecoveryReport rep = recover(dir, engine, *sched);
  EXPECT_FALSE(rep.recovered);
  EXPECT_EQ(rep.snapshot_round, -1);
  EXPECT_EQ(rep.replayed_rounds, 0);
  EXPECT_EQ(rep.active_changelog, changelog_path(dir, 0));
  EXPECT_FALSE(rep.to_string().empty());
}

/// Kill the daemon after EVERY changelog record boundary; each recovery must
/// finish the run bit-identically to the uninterrupted one. Covers record
/// replay, snapshot restore, rotation boundaries, and the re-feed of
/// non-durable queued submissions — for all four schedulers.
TEST(Recovery, CrashPointSweepIsBitIdenticalForEveryScheduler) {
  const Scenario s = small_scenario();
  for (const char* name : {"hadar", "gavel", "tiresias", "yarn"}) {
    SCOPED_TRACE(name);
    const std::string base = std::string("sweep_") + name;
    const GoldenRun golden = golden_run(s, name, fresh_dir(base + "_golden"));
    ASSERT_GT(golden.rounds, 10) << "scenario too small to be interesting";
    const std::string dir = fresh_dir(base);
    for (long long crash = 0; crash <= golden.rounds; ++crash) {
      SCOPED_TRACE("crash after round " + std::to_string(crash));
      run_and_crash(s, name, dir, crash);
      recover_and_finish(s, name, dir, golden);
    }
  }
}

TEST(Recovery, CrashPointSweepWithFaultInjection) {
  Scenario s = small_scenario(11);
  s.sim.failure.node_mttf = 4000.0;
  s.sim.failure.node_mttr = 1800.0;
  s.sim.failure.seed = 99;
  const GoldenRun golden = golden_run(s, "hadar", fresh_dir("sweep_fail_golden"));
  const std::string dir = fresh_dir("sweep_fail");
  for (long long crash = 0; crash <= golden.rounds; crash += 3) {
    SCOPED_TRACE("crash after round " + std::to_string(crash));
    run_and_crash(s, "hadar", dir, crash);
    recover_and_finish(s, "hadar", dir, golden);
  }
}

TEST(Recovery, TornWriteIsTruncatedAndRunCompletes) {
  const Scenario s = small_scenario();
  const GoldenRun golden = golden_run(s, "gavel", fresh_dir("torn_golden"));
  const std::string dir = fresh_dir("torn");
  const long long crash = golden.rounds / 2;
  run_and_crash(s, "gavel", dir, crash);
  // A record torn mid-write by the crash: header + half the payload.
  append_bytes(active_changelog_of(dir),
               std::string("\xF0\x00\x00\x00\x99\x99\x99\x99", 8) + "only-half");

  SchedulerDaemon d(&s.spec, runner::make_scheduler("gavel"), service_config(s, dir));
  EXPECT_TRUE(d.recovery().torn_tail);
  EXPECT_GT(d.recovery().truncated_bytes, 0u);
  submit_all(d, s.trace, d.engine().jobs_admitted());
  d.run_until_idle();
  expect_same_result(d.result(s.trace.jobs.size()), golden.result);
  EXPECT_EQ(d.engine().event_log().sorted(), golden.events);
}

TEST(Recovery, BitFlippedTailRecordIsDroppedAndReExecuted) {
  const Scenario s = small_scenario();
  const GoldenRun golden = golden_run(s, "tiresias", fresh_dir("flip_golden"));
  const std::string dir = fresh_dir("flip");
  long long crash = golden.rounds / 2;
  if (crash % 7 == 0) ++crash;  // rotation boundary leaves an empty active file
  ASSERT_LE(crash, golden.rounds);
  run_and_crash(s, "tiresias", dir, crash);
  const std::string active = active_changelog_of(dir);
  const ChangelogScan scan = scan_changelog(active);
  ASSERT_FALSE(scan.records.empty());
  // Corrupt the last record's payload: CRC must reject it, recovery must
  // truncate to the previous boundary and deterministically re-execute.
  const std::uint64_t prev_end = scan.records.size() > 1
                                     ? scan.record_ends[scan.records.size() - 2]
                                     : kMagicSize;
  flip_byte(active, prev_end + 12);

  SchedulerDaemon d(&s.spec, runner::make_scheduler("tiresias"), service_config(s, dir));
  EXPECT_TRUE(d.recovery().torn_tail);
  EXPECT_EQ(d.engine().rounds_completed(), crash - 1);
  submit_all(d, s.trace, d.engine().jobs_admitted());
  d.run_until_idle();
  expect_same_result(d.result(s.trace.jobs.size()), golden.result);
  EXPECT_EQ(d.engine().event_log().sorted(), golden.events);
}

TEST(Recovery, CorruptSnapshotFallsBackToReplay) {
  const Scenario s = small_scenario();
  const GoldenRun golden = golden_run(s, "hadar", fresh_dir("snapfall_golden"));
  const std::string dir = fresh_dir("snapfall");
  const long long crash = std::min<long long>(golden.rounds, 16);  // past 2 snapshots
  run_and_crash(s, "hadar", dir, crash);
  // Corrupt every snapshot: recovery must fall back to genesis and replay
  // the full changelog chain.
  long long snaps = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".snap") {
      flip_byte(e.path().string(), 32);
      ++snaps;
    }
  }
  ASSERT_GT(snaps, 0);
  SchedulerDaemon d(&s.spec, runner::make_scheduler("hadar"), service_config(s, dir));
  EXPECT_EQ(d.recovery().snapshot_round, -1);
  EXPECT_EQ(d.recovery().discarded_snapshots, snaps);
  EXPECT_EQ(d.engine().rounds_completed(), crash);
  submit_all(d, s.trace, d.engine().jobs_admitted());
  d.run_until_idle();
  expect_same_result(d.result(s.trace.jobs.size()), golden.result);
}

/// Randomized corruption fuzz: crash at a random round, apply a random
/// mutation to the durable directory, recover, re-feed, finish, and demand
/// bit-identity. Iteration count scales via HADAR_RECOVERY_FUZZ_ITERS (CI
/// runs a deeper sweep than the default developer loop).
TEST(Recovery, RandomizedCorruptionFuzz) {
  const Scenario s = small_scenario();
  const GoldenRun golden = golden_run(s, "hadar", fresh_dir("fuzz_golden"));
  const int iters = common::env_int("HADAR_RECOVERY_FUZZ_ITERS", 4, 1);
  for (int it = 0; it < iters; ++it) {
    SCOPED_TRACE("fuzz iteration " + std::to_string(it));
    std::mt19937 rng(0xf00d + static_cast<unsigned>(it));
    const std::string dir = fresh_dir("fuzz");
    const long long crash =
        std::uniform_int_distribution<long long>(0, golden.rounds)(rng);
    run_and_crash(s, "hadar", dir, crash);

    const std::string active = active_changelog_of(dir);
    const ChangelogScan scan = scan_changelog(active);
    switch (std::uniform_int_distribution<int>(0, 3)(rng)) {
      case 0:
        break;  // clean kill
      case 1: {  // torn append of random garbage
        std::string junk(std::uniform_int_distribution<std::size_t>(1, 64)(rng), '\0');
        for (auto& c : junk) c = static_cast<char>(rng());
        append_bytes(active, junk);
        break;
      }
      case 2: {  // flip a random byte anywhere past the magic
        if (scan.valid_bytes > kMagicSize) {
          flip_byte(active, std::uniform_int_distribution<std::uint64_t>(
                                kMagicSize, scan.valid_bytes - 1)(rng));
        }
        break;
      }
      case 3: {  // rip off a random tail (mid-record truncation)
        if (scan.valid_bytes > kMagicSize) {
          truncate_changelog(active, std::uniform_int_distribution<std::uint64_t>(
                                         kMagicSize, scan.valid_bytes - 1)(rng));
        }
        break;
      }
    }
    recover_and_finish(s, "hadar", dir, golden);
  }
}

}  // namespace
}  // namespace hadar::service
