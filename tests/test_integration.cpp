// Integration tests: the runner factory and scenarios, full multi-scheduler
// simulations on moderate traces, and the paper's qualitative result shapes
// (who wins on which metric).
#include <gtest/gtest.h>

#include "runner/scenarios.hpp"

namespace hadar::runner {
namespace {

TEST(Runner, FactoryKnowsEveryScheduler) {
  for (const char* name : {"hadar", "hadar-makespan", "hadar-ftf", "hadar-nomix",
                           "hadar-greedy", "hadar-estimator", "gavel", "tiresias", "yarn",
                           "srtf"}) {
    const auto s = make_scheduler(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_FALSE(s->name().empty());
  }
  EXPECT_THROW(make_scheduler("nope"), std::invalid_argument);
}

TEST(Runner, ScenariosMatchPaperSetups) {
  const auto st = paper_static(30, 1);
  EXPECT_EQ(st.spec.total_gpus(), 60);
  EXPECT_EQ(st.trace.jobs.size(), 30u);
  EXPECT_DOUBLE_EQ(st.sim.round_length, 360.0);
  EXPECT_DOUBLE_EQ(st.sim.flat_reallocation_penalty, 10.0);
  for (const auto& j : st.trace.jobs) EXPECT_DOUBLE_EQ(j.arrival, 0.0);

  const auto ct = paper_continuous(40.0, 30, 1);
  bool any_late = false;
  for (const auto& j : ct.trace.jobs) any_late |= j.arrival > 0.0;
  EXPECT_TRUE(any_late);

  const auto pr = prototype(/*testbed_noise=*/true);
  EXPECT_EQ(pr.spec.total_gpus(), 8);
  EXPECT_EQ(pr.trace.jobs.size(), 10u);
  EXPECT_FALSE(pr.sim.use_flat_reallocation_penalty);
  EXPECT_GT(pr.sim.throughput_jitter, 0.0);
}

class ShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One moderate static trace shared by all shape assertions (expensive).
    cfg_ = new ExperimentConfig(paper_static(120, 42));
    runs_ = new std::vector<SchedulerRun>(
        compare(*cfg_, {"hadar", "gavel", "tiresias", "yarn"}));
  }
  static void TearDownTestSuite() {
    delete runs_;
    delete cfg_;
    runs_ = nullptr;
    cfg_ = nullptr;
  }
  const sim::SimResult& result(const std::string& name) const {
    for (const auto& r : *runs_) {
      if (r.scheduler == name || (name == "yarn" && r.scheduler == "YARN-CS")) {
        return r.result;
      }
    }
    throw std::runtime_error("missing " + name);
  }

  static ExperimentConfig* cfg_;
  static std::vector<SchedulerRun>* runs_;
};

ExperimentConfig* ShapeTest::cfg_ = nullptr;
std::vector<SchedulerRun>* ShapeTest::runs_ = nullptr;

TEST_F(ShapeTest, EverySchedulerFinishesTheTrace) {
  for (const auto& r : *runs_) {
    EXPECT_TRUE(r.result.all_finished()) << r.scheduler;
    EXPECT_EQ(r.result.jobs.size(), 120u) << r.scheduler;
  }
}

TEST_F(ShapeTest, HadarWinsAverageJct) {
  const double hadar = result("Hadar").avg_jct;
  EXPECT_LT(hadar, result("Gavel").avg_jct);
  EXPECT_LT(hadar, result("Tiresias").avg_jct);
  EXPECT_LT(hadar, result("yarn").avg_jct);
}

TEST_F(ShapeTest, YarnIsFarBehindOnJct) {
  // Paper: 7-15x vs Hadar; require at least 2x on this smaller trace.
  EXPECT_GT(result("yarn").avg_jct, 2.0 * result("Hadar").avg_jct);
}

TEST_F(ShapeTest, YarnHasTopJobUtilization) {
  // Paper Fig. 4: YARN-CS highest (non-preemptive), Hadar close behind,
  // Gavel and Tiresias lower.
  const double yarn = result("yarn").avg_job_utilization;
  EXPECT_GT(yarn, 0.95);
  EXPECT_GE(yarn, result("Hadar").avg_job_utilization);
  EXPECT_GT(result("Hadar").avg_job_utilization, result("Gavel").avg_job_utilization);
  EXPECT_GT(result("Hadar").avg_job_utilization, result("Tiresias").avg_job_utilization);
}

TEST_F(ShapeTest, HadarBeatsBaselinesOnFtf) {
  // Paper Fig. 5: Hadar's avg FTF beats Gavel and Tiresias.
  const double hadar = result("Hadar").avg_ftf;
  EXPECT_LT(hadar, result("Gavel").avg_ftf);
  EXPECT_LT(hadar, result("Tiresias").avg_ftf);
}

TEST_F(ShapeTest, HadarChurnsFarLessThanGavel) {
  // The paper reports ~30% of rounds change allocations for Hadar while
  // Gavel reshuffles continuously.
  EXPECT_LT(result("Hadar").realloc_round_fraction,
            result("Gavel").realloc_round_fraction);
  EXPECT_LT(result("Hadar").realloc_round_fraction, 0.5);
}

TEST_F(ShapeTest, NonPreemptiveYarnNeverPreempts) {
  EXPECT_EQ(result("yarn").total_preemptions, 0);
}

TEST(MakespanPolicy, HadarMakespanBeatsGavelAndTiresias) {
  // Paper Fig. 6: with the makespan objective Hadar wins on makespan.
  auto cfg = paper_static(80, 7);
  const auto runs = compare(cfg, {"hadar-makespan", "gavel", "tiresias"});
  const double hadar = runs[0].result.makespan;
  EXPECT_LT(hadar, runs[1].result.makespan * 1.02);
  EXPECT_LT(hadar, runs[2].result.makespan);
}

TEST(ContinuousTrace, HadarStillWinsJct) {
  auto cfg = paper_continuous(/*jobs_per_hour=*/60.0, /*num_jobs=*/100, /*seed=*/3);
  const auto runs = compare(cfg, {"hadar", "gavel", "tiresias"});
  EXPECT_TRUE(runs[0].result.all_finished());
  EXPECT_LT(runs[0].result.avg_jct, runs[1].result.avg_jct);
  EXPECT_LT(runs[0].result.avg_jct, runs[2].result.avg_jct);
}

TEST(Prototype, SimulatedClusterShapeMatchesTableThree) {
  // Table III: Hadar < Gavel < Tiresias on both JCT and makespan, and the
  // noisy "physical" run stays within ~25% of the clean simulation (the
  // paper reports <10% between its simulator and testbed).
  auto clean = prototype(false);
  auto noisy = prototype(true);
  const auto r_clean = compare(clean, {"hadar", "gavel", "tiresias"});
  const auto r_noisy = compare(noisy, {"hadar", "gavel", "tiresias"});
  for (const auto& rr : {std::cref(r_clean), std::cref(r_noisy)}) {
    const auto& runs = rr.get();
    EXPECT_LT(runs[0].result.avg_jct, runs[1].result.avg_jct);
    EXPECT_LT(runs[0].result.avg_jct, runs[2].result.avg_jct);
    // Known deviation (EXPERIMENTS.md): on the tiny 8-GPU cluster Hadar's
    // JCT policy trades ~10-15% makespan for its JCT win, where the paper's
    // Table III shows wins on both; require parity, not dominance.
    EXPECT_LT(runs[0].result.makespan, runs[1].result.makespan * 1.20);
  }
  EXPECT_NEAR(r_noisy[0].result.avg_jct / r_clean[0].result.avg_jct, 1.0, 0.25);
}

}  // namespace
}  // namespace hadar::runner
