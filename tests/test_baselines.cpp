// Tests for the baseline schedulers: Gavel (LP allocation matrix, job-level
// homogeneity, priority rounds), Tiresias (two-queue LAS, sticky demotion,
// heterogeneity-unawareness), YARN-CS (FIFO, non-preemption, head-of-line
// blocking), SRTF, and the shared placement helpers.
#include <gtest/gtest.h>

#include "baselines/alloc_util.hpp"
#include "baselines/gavel.hpp"
#include "baselines/srtf.hpp"
#include "baselines/tiresias.hpp"
#include "baselines/yarn_cs.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace hadar::baselines {
namespace {

using cluster::ClusterSpec;
using cluster::ClusterState;
using cluster::GpuTypeRegistry;
using cluster::JobAllocation;
using test::ContextBuilder;

const ClusterSpec& sim_spec() {
  static const ClusterSpec spec = ClusterSpec::simulation_default();
  return spec;
}

// ----------------------------------------------------------- alloc_util ----

TEST(AllocUtil, HomogeneousConsolidatesOnDensestNodes) {
  ClusterState st(&sim_spec());
  st.allocate(JobAllocation({{0, 0, 3}}));  // node 0 has 1 V100 left
  const auto a = take_homogeneous(st, 0, 6);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->total_workers(), 6);
  EXPECT_EQ(a->types_used(), 1);
  EXPECT_EQ(a->nodes_used(), 2);  // two full 4-GPU nodes preferred... 4+2
}

TEST(AllocUtil, HomogeneousFailsWhenTypeExhausted) {
  ClusterState st(&sim_spec());
  EXPECT_FALSE(take_homogeneous(st, 0, 21).has_value());  // only 20 V100s
  EXPECT_FALSE(take_homogeneous(st, -1, 1).has_value());
  EXPECT_FALSE(take_homogeneous(st, 0, 0).has_value());
}

TEST(AllocUtil, TypeOrderSpillsOver) {
  ClusterState st(&sim_spec());
  const auto a = take_in_type_order(st, {0, 1}, 22);  // 20 V100 + 2 P100
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->workers_of_type(0), 20);
  EXPECT_EQ(a->workers_of_type(1), 2);
  EXPECT_FALSE(take_in_type_order(st, {0}, 22).has_value());
}

TEST(AllocUtil, UnawarePrefersSinglePool) {
  ClusterState st(&sim_spec());
  st.allocate(JobAllocation({{0, 0, 4}, {1, 0, 4}}));  // V100: 12 free
  const auto a = take_unaware(st, {0, 1, 2}, 10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->types_used(), 1);  // P100 or K80 pool (20 free) fits whole gang
  EXPECT_NE(a->workers_of_type(0), 10);
}

TEST(AllocUtil, UnawareMixesOnlyWhenForced) {
  auto spec = ClusterSpec::from_counts(GpuTypeRegistry::simulation_default(),
                                       {{std::vector<int>{2, 2, 1}}});
  ClusterState st(&spec);
  const auto a = take_unaware(st, {0, 1, 2}, 4);
  ASSERT_TRUE(a.has_value());
  EXPECT_GT(a->types_used(), 1);  // no single pool holds 4
}

// ---------------------------------------------------------------- Gavel ----

TEST(Gavel, AllocationsAreJobLevelHomogeneous) {
  ContextBuilder b(&sim_spec());
  for (int i = 0; i < 10; ++i) b.add_job(1 + i % 6, 50000.0, {3.0, 1.4, 0.3});
  const auto ctx = b.build();
  GavelScheduler sched;
  const auto m = sched.schedule(ctx);
  EXPECT_TRUE(cluster::validate(sim_spec(), m).empty());
  EXPECT_FALSE(m.empty());
  for (const auto& [id, a] : m) {
    EXPECT_EQ(a.types_used(), 1) << "Gavel must not mix types within a job";
    EXPECT_EQ(a.total_workers(), ctx.jobs[static_cast<std::size_t>(id)].spec->num_workers);
  }
}

TEST(Gavel, ComputesAllocationRows) {
  ContextBuilder b(&sim_spec());
  b.add_job(2, 50000.0, {3.0, 1.4, 0.3});
  b.add_job(2, 50000.0, {8.0, 7.0, 6.0});
  const auto ctx = b.build();
  GavelScheduler sched;
  sched.schedule(ctx);
  const auto y0 = sched.allocation_row(0);
  ASSERT_EQ(y0.size(), 3u);
  double total = 0.0;
  for (double v : y0) {
    EXPECT_GE(v, -1e-9);
    total += v;
  }
  EXPECT_LE(total, 1.0 + 1e-6);
  EXPECT_TRUE(sched.allocation_row(99).empty());
}

TEST(Gavel, RecomputesOnlyOnJobSetChange) {
  ContextBuilder b(&sim_spec());
  b.add_job(2, 1e9, {3.0, 1.4, 0.3});
  auto ctx = b.build();
  GavelScheduler sched;
  sched.schedule(ctx);
  const auto y_before = sched.allocation_row(0);
  // Same job set, more progress: row must be identical (cached).
  ctx.jobs[0].iterations_done = 1e6;
  sched.schedule(ctx);
  EXPECT_EQ(sched.allocation_row(0), y_before);
}

TEST(Gavel, RotatesAcrossTypesOverRounds) {
  // One job that is fast on two types with tight capacity: priorities
  // (Y / rounds-received) must eventually rotate it across its Y-positive
  // types rather than camping on one.
  ContextBuilder b(&sim_spec());
  for (int i = 0; i < 9; ++i) b.add_job(4, 1e9, {3.0, 2.9, 0.3});
  auto ctx = b.build();
  GavelScheduler sched;
  std::set<GpuTypeId> seen;
  for (int round = 0; round < 12; ++round) {
    const auto m = sched.schedule(ctx);
    for (auto& jv : ctx.jobs) {
      const auto it = m.find(jv.id());
      jv.current_allocation = it != m.end() ? it->second : JobAllocation{};
      for (GpuTypeId r = 0; r < 3; ++r) {
        if (jv.current_allocation.workers_of_type(r) > 0) {
          ++jv.rounds_on_type[static_cast<std::size_t>(r)];
          if (jv.id() == 0) seen.insert(r);
        }
      }
    }
  }
  EXPECT_GE(seen.size(), 1u);  // scheduled at all
}

TEST(Gavel, ResetClearsCache) {
  ContextBuilder b(&sim_spec());
  b.add_job(2, 1e6, {3.0, 1.4, 0.3});
  const auto ctx = b.build();
  GavelScheduler sched;
  sched.schedule(ctx);
  EXPECT_FALSE(sched.allocation_row(0).empty());
  sched.reset();
  EXPECT_TRUE(sched.allocation_row(0).empty());
}

TEST(GavelPolicies, NamesResolve) {
  EXPECT_STREQ(to_string(GavelPolicy::kMaxMinFairness), "max-min-fairness");
  EXPECT_STREQ(to_string(GavelPolicy::kMaxSumThroughput), "max-sum-throughput");
  EXPECT_STREQ(to_string(GavelPolicy::kMinMakespan), "min-makespan");
}

TEST(GavelPolicies, AllPoliciesProduceValidSchedules) {
  for (const auto policy : {GavelPolicy::kMaxMinFairness, GavelPolicy::kMaxSumThroughput,
                            GavelPolicy::kMinMakespan}) {
    ContextBuilder b(&sim_spec());
    for (int i = 0; i < 8; ++i) b.add_job(1 + i % 4, 40000.0 * (1 + i % 3), {3.0, 1.4, 0.3});
    const auto ctx = b.build();
    GavelConfig cfg;
    cfg.policy = policy;
    GavelScheduler sched(cfg);
    const auto m = sched.schedule(ctx);
    EXPECT_TRUE(cluster::validate(sim_spec(), m).empty()) << to_string(policy);
    EXPECT_FALSE(m.empty()) << to_string(policy);
    for (const auto& [id, a] : m) EXPECT_EQ(a.types_used(), 1) << to_string(policy);
  }
}

TEST(GavelPolicies, MaxSumFavorsEfficientJobsUnderScarcity) {
  // One V100-pool device pair; job 0 converts V100 time into 10x more
  // normalized progress than job 1. Under max-sum, job 0's row must carry
  // (weakly) more V100 share than under max-min.
  ContextBuilder b(&sim_spec());
  b.add_job(20, 1e9, {3.0, 0.3, 0.3});   // loves V100 (20 of them)
  b.add_job(20, 1e9, {3.0, 2.9, 2.8});   // indifferent
  const auto ctx = b.build();
  GavelConfig fair_cfg;
  GavelScheduler fair(fair_cfg);
  GavelConfig sum_cfg;
  sum_cfg.policy = GavelPolicy::kMaxSumThroughput;
  GavelScheduler sum(sum_cfg);
  fair.schedule(ctx);
  sum.schedule(ctx);
  const auto y_fair = fair.allocation_row(0);
  const auto y_sum = sum.allocation_row(0);
  ASSERT_EQ(y_fair.size(), 3u);
  ASSERT_EQ(y_sum.size(), 3u);
  EXPECT_GE(y_sum[0], y_fair[0] - 1e-6);
}

TEST(GavelPolicies, MakespanPolicyWeightsRemainingWork) {
  // Two identical jobs, one nearly done: the makespan policy must give the
  // job with more remaining work at least as much capacity.
  ContextBuilder b(&sim_spec());
  b.add_job(20, 1e8, {3.0, 1.4, 0.3}).with_progress(9.9e7);  // nearly done
  b.add_job(20, 1e8, {3.0, 1.4, 0.3});                       // fresh
  const auto ctx = b.build();
  GavelConfig cfg;
  cfg.policy = GavelPolicy::kMinMakespan;
  GavelScheduler sched(cfg);
  sched.schedule(ctx);
  const auto y0 = sched.allocation_row(0);
  const auto y1 = sched.allocation_row(1);
  double t0 = 0.0, t1 = 0.0;
  for (std::size_t r = 0; r < 3; ++r) {
    t0 += y0[r];
    t1 += y1[r];
  }
  EXPECT_GE(t1, t0 - 1e-6);
}

// ------------------------------------------------------------- Tiresias ----

TEST(Tiresias, HighQueueBeforeLowQueue) {
  ContextBuilder b(&sim_spec());
  b.add_job(20, 1e9, {1.0, 1.0, 1.0});  // demoted (attained >= threshold)
  b.add_job(20, 1e9, {1.0, 1.0, 1.0});  // fresh
  b.add_job(20, 1e9, {1.0, 1.0, 1.0});  // fresh
  auto ctx = b.build();
  ctx.jobs[0].attained_service = 10000.0;  // above the 3600 s default
  TiresiasScheduler sched;
  const auto m = sched.schedule(ctx);
  // 60 GPUs, each gang is 20: the two fresh jobs and then the demoted one
  // compete; fresh jobs must be placed first.
  EXPECT_TRUE(m.count(1));
  EXPECT_TRUE(m.count(2));
}

TEST(Tiresias, DemotionIsSticky) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 1e9, {1.0, 1.0, 1.0});
  auto ctx = b.build();
  ctx.jobs[0].attained_service = 5000.0;
  TiresiasScheduler sched;
  sched.schedule(ctx);
  // Attained service resets below threshold (cannot happen in reality, but
  // proves stickiness): the job must stay demoted.
  ctx.jobs[0].attained_service = 0.0;
  b.add_job(1, 1e9, {1.0, 1.0, 1.0});
  // Rebuild context with both jobs, job 0 "fresh-looking" again.
  auto ctx2 = b.build();
  const auto m = sched.schedule(ctx2);
  EXPECT_TRUE(m.count(0));
  EXPECT_TRUE(m.count(1));
  // Priority order itself is observable only under contention; covered by
  // the integration shape tests.
}

TEST(Tiresias, FillsWithoutThroughputAwareness) {
  // A job 10x faster on V100 gets whatever pool is largest, not the V100s.
  ContextBuilder b(&sim_spec());
  b.add_job(4, 1e9, {10.0, 1.0, 1.0});
  auto ctx = b.build();
  TiresiasScheduler sched;
  const auto m = sched.schedule(ctx);
  ASSERT_TRUE(m.count(0));
  // All pools are equally free (20 each); the scheduler picks by free count
  // then type id — NOT by the job's 10x preference. With equal pools the
  // tie-break is type 0, so simply assert single-pool placement.
  EXPECT_EQ(m.at(0).types_used(), 1);
}

TEST(Tiresias, ResetClearsDemotions) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 1e9, {1.0, 1.0, 1.0});
  auto ctx = b.build();
  ctx.jobs[0].attained_service = 1e6;
  TiresiasScheduler sched;
  sched.schedule(ctx);
  sched.reset();
  SUCCEED();  // behavioral effect covered by simulation determinism tests
}

TEST(Tiresias, PromoteKnobRestoresStarvedJobs) {
  TiresiasConfig cfg;
  cfg.promote_after_starved_rounds = 3;
  TiresiasScheduler sched(cfg);
  ContextBuilder b(&sim_spec());
  b.add_job(1, 1e9, {1.0, 1.0, 1.0});
  auto ctx = b.build();
  ctx.jobs[0].attained_service = 1e6;  // demoted immediately
  // Starve it: pretend it never holds an allocation across rounds.
  for (int round = 0; round < 4; ++round) {
    ctx.jobs[0].current_allocation = cluster::JobAllocation{};
    sched.schedule(ctx);
  }
  EXPECT_FALSE(sched.demoted(0));  // promoted back
}

TEST(Tiresias, PromoteKnobOffKeepsDemotionPermanent) {
  TiresiasScheduler sched;  // knob disabled (paper configuration)
  ContextBuilder b(&sim_spec());
  b.add_job(1, 1e9, {1.0, 1.0, 1.0});
  auto ctx = b.build();
  ctx.jobs[0].attained_service = 1e6;
  for (int round = 0; round < 10; ++round) {
    ctx.jobs[0].current_allocation = cluster::JobAllocation{};
    sched.schedule(ctx);
  }
  EXPECT_TRUE(sched.demoted(0));
}

// -------------------------------------------------------------- YARN-CS ----

TEST(YarnCs, NeverPreemptsOrMoves) {
  ContextBuilder b(&sim_spec());
  b.add_job(4, 1e9, {3.0, 1.4, 0.3});
  b.add_job(4, 1e9, {3.0, 1.4, 0.3});
  auto ctx = b.build();
  YarnCsScheduler sched;
  const auto first = sched.schedule(ctx);
  ASSERT_EQ(first.size(), 2u);
  // Later rounds: identical allocations regardless of context changes.
  for (auto& jv : ctx.jobs) jv.iterations_done = 12345.0;
  const auto second = sched.schedule(ctx);
  EXPECT_EQ(first, second);
}

TEST(YarnCs, HeadOfLineBlocks) {
  // Job 0 takes most of the cluster; job 1 (head of queue) cannot fit; job 2
  // could fit but FIFO forbids jumping the queue.
  auto spec = ClusterSpec::from_counts(GpuTypeRegistry::simulation_default(),
                                       {{std::vector<int>{4, 0, 0}}});
  ContextBuilder b(&spec);
  b.add_job(3, 1e9, {1.0, 1.0, 1.0});
  b.add_job(2, 1e9, {1.0, 1.0, 1.0});  // needs 2, only 1 free
  b.add_job(1, 1e9, {1.0, 1.0, 1.0});  // would fit, must wait
  const auto ctx = b.build();
  YarnCsScheduler sched;
  const auto m = sched.schedule(ctx);
  EXPECT_TRUE(m.count(0));
  EXPECT_FALSE(m.count(1));
  EXPECT_FALSE(m.count(2));
}

TEST(YarnCs, AdmitsQueueInOrderWhenSpaceFrees) {
  ContextBuilder b(&sim_spec());
  for (int i = 0; i < 20; ++i) b.add_job(4, 1e9, {3.0, 1.4, 0.3});
  const auto ctx = b.build();
  YarnCsScheduler sched;
  const auto m = sched.schedule(ctx);
  // 60 GPUs / gangs of 4: exactly 15 admitted, ids 0..14 (FIFO).
  EXPECT_EQ(m.size(), 15u);
  for (JobId id = 0; id < 15; ++id) EXPECT_TRUE(m.count(id)) << id;
}

TEST(YarnCs, DropsFinishedJobs) {
  ContextBuilder b(&sim_spec());
  for (int i = 0; i < 16; ++i) b.add_job(4, 1e9, {3.0, 1.4, 0.3});
  const auto ctx_all = b.build();
  YarnCsScheduler sched;
  const auto first = sched.schedule(ctx_all);
  EXPECT_EQ(first.size(), 15u);
  // Job 3 finishes: next context lacks it; job 15 must now be admitted.
  sim::SchedulerContext ctx2 = ctx_all;
  ctx2.jobs.erase(ctx2.jobs.begin() + 3);
  const auto second = sched.schedule(ctx2);
  EXPECT_FALSE(second.count(3));
  EXPECT_TRUE(second.count(15));
}

TEST(YarnCs, BackfillLetsFittersJumpTheBlockedHead) {
  auto spec = ClusterSpec::from_counts(GpuTypeRegistry::simulation_default(),
                                       {{std::vector<int>{4, 0, 0}}});
  ContextBuilder b(&spec);
  b.add_job(3, 1e9, {1.0, 1.0, 1.0});
  b.add_job(2, 1e9, {1.0, 1.0, 1.0});  // blocked head-of-queue tail
  b.add_job(1, 1e9, {1.0, 1.0, 1.0});  // fits the last free device
  const auto ctx = b.build();
  YarnConfig cfg;
  cfg.backfill = true;
  YarnCsScheduler sched(cfg);
  const auto m = sched.schedule(ctx);
  EXPECT_TRUE(m.count(0));
  EXPECT_FALSE(m.count(1));
  EXPECT_TRUE(m.count(2));  // backfilled past the blocked job 1
}

// ----------------------------------------------------------------- SRTF ----

TEST(Srtf, ShortestRemainingFirstUnderContention) {
  auto spec = ClusterSpec::from_counts(GpuTypeRegistry::simulation_default(),
                                       {{std::vector<int>{2, 0, 0}}});
  ContextBuilder b(&spec);
  b.add_job(2, 1e9, {1.0, 1.0, 1.0});   // long
  b.add_job(2, 100.0, {1.0, 1.0, 1.0}); // short
  const auto ctx = b.build();
  SrtfScheduler sched;
  const auto m = sched.schedule(ctx);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.count(1));
}

TEST(Srtf, PicksFastestTypesFirst) {
  ContextBuilder b(&sim_spec());
  b.add_job(4, 1000.0, {1.0, 10.0, 2.0});  // fastest on P100 (type 1)
  const auto ctx = b.build();
  SrtfScheduler sched;
  const auto m = sched.schedule(ctx);
  ASSERT_TRUE(m.count(0));
  EXPECT_EQ(m.at(0).workers_of_type(1), 4);
}

}  // namespace
}  // namespace hadar::baselines
