// Tests for the utility functions (Sec. III-A) and the primal-dual price
// book (Eqs. 5-8): bound computation, the exponential price curve, marginal
// pricing, and the competitive-ratio factor alpha.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <utility>

#include "core/pricing.hpp"
#include "test_util.hpp"

namespace hadar::core {
namespace {

using cluster::ClusterSpec;
using cluster::ClusterState;
using cluster::JobAllocation;
using test::ContextBuilder;

const ClusterSpec& sim_spec() {
  static const ClusterSpec spec = ClusterSpec::simulation_default();
  return spec;
}

// ------------------------------------------------------------- utility ----

TEST(Utility, InverseStretchAtIdealIsGangSize) {
  ContextBuilder b(&sim_spec());
  b.add_job(4, 1000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  const UtilityFunction u(UtilityKind::kEffectiveThroughput);
  // Ideal remaining runtime: 1000 / (10 * 4) = 25 s.
  EXPECT_DOUBLE_EQ(ideal_remaining_runtime(ctx.jobs[0]), 25.0);
  EXPECT_DOUBLE_EQ(ideal_total_runtime(ctx.jobs[0]), 25.0);
  EXPECT_NEAR(u(ctx.jobs[0], 25.0, 0.0), 4.0, 1e-9);   // W * stretch 1
  EXPECT_NEAR(u(ctx.jobs[0], 250.0, 0.0), 0.4, 1e-9);  // stretch 10
  EXPECT_NEAR(u.best_case(ctx.jobs[0], 0.0), 4.0, 1e-9);
}

TEST(Utility, DecreasesWithDuration) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 100.0, {1.0, 0.5, 0.1});
  const auto ctx = b.build();
  for (const auto kind : {UtilityKind::kEffectiveThroughput, UtilityKind::kMinMakespan,
                          UtilityKind::kFinishTimeFairness}) {
    const UtilityFunction u(kind, 10);
    double prev = u(ctx.jobs[0], 10.0, 0.0);
    for (double d = 20.0; d <= 1000.0; d *= 2) {
      const double v = u(ctx.jobs[0], d, 0.0);
      EXPECT_LT(v, prev) << to_string(kind);
      EXPECT_GE(v, 0.0);
      prev = v;
    }
  }
}

TEST(Utility, ProgressRaisesValuePerRemainingWork) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 1000.0, {10.0, 5.0, 1.0}).with_progress(900.0);
  const auto ctx = b.build();
  EXPECT_DOUBLE_EQ(ctx.jobs[0].remaining_iterations(), 100.0);
  EXPECT_DOUBLE_EQ(ideal_remaining_runtime(ctx.jobs[0]), 10.0);
  EXPECT_DOUBLE_EQ(ideal_total_runtime(ctx.jobs[0]), 100.0);
}

TEST(Utility, PrioritySrptFavorsShortThenAges) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 100.0, {1.0, 0.5, 0.1});     // short: 100 s ideal
  b.add_job(1, 10000.0, {1.0, 0.5, 0.1});   // long: 10000 s ideal
  const auto ctx = b.build();
  const UtilityFunction u(UtilityKind::kEffectiveThroughput);
  // Fresh: short job wins.
  EXPECT_GT(u.priority(ctx.jobs[0], 0.0), u.priority(ctx.jobs[1], 0.0));
  // Both aged equally: short job still wins (response ratio grows faster).
  EXPECT_GT(u.priority(ctx.jobs[0], 50000.0), u.priority(ctx.jobs[1], 50000.0));
  // The long job's priority grows without bound as it waits.
  EXPECT_GT(u.priority(ctx.jobs[1], 1e7), u.priority(ctx.jobs[0], 0.0));
}

TEST(Utility, PriorityLptFavorsLong) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 100.0, {1.0, 0.5, 0.1});
  b.add_job(1, 10000.0, {1.0, 0.5, 0.1});
  const auto ctx = b.build();
  const UtilityFunction u(UtilityKind::kMinMakespan);
  EXPECT_LT(u.priority(ctx.jobs[0], 0.0), u.priority(ctx.jobs[1], 0.0));
}

TEST(Utility, PriorityFtfFavorsWorstRho) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 1000.0, {1.0, 0.5, 0.1});
  b.add_job(1, 1000.0, {1.0, 0.5, 0.1}, /*arrival=*/5000.0);
  const auto ctx = b.build(/*now=*/6000.0);
  const UtilityFunction u(UtilityKind::kFinishTimeFairness, 2);
  // Job 0 has waited 6000 s, job 1 only 1000 s: job 0 is worse off.
  EXPECT_GT(u.priority(ctx.jobs[0], 6000.0), u.priority(ctx.jobs[1], 6000.0));
}

TEST(Utility, ZeroThroughputJobHasZeroValue) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 100.0, {0.0, 0.0, 0.0});
  const auto ctx = b.build();
  const UtilityFunction u;
  EXPECT_EQ(u(ctx.jobs[0], 100.0, 0.0), 0.0);
  EXPECT_EQ(u.priority(ctx.jobs[0], 100.0), 0.0);
  EXPECT_EQ(u.best_case(ctx.jobs[0], 0.0), 0.0);
}

// ------------------------------------------------------------ PriceBook ----

PriceBook make_book(const sim::SchedulerContext& ctx,
                    UtilityKind kind = UtilityKind::kEffectiveThroughput) {
  PriceBook book(ctx.spec->num_types(), PricingConfig{});
  const UtilityFunction u(kind, static_cast<double>(ctx.jobs.size()));
  book.compute_bounds(ctx, u);
  return book;
}

TEST(PriceBook, BoundsOrderedAndPositive) {
  ContextBuilder b(&sim_spec());
  b.add_job(2, 5000.0, {10.0, 5.0, 1.0});
  b.add_job(4, 500.0, {40.0, 20.0, 8.0});
  const auto ctx = b.build();
  const auto book = make_book(ctx);
  for (GpuTypeId r = 0; r < 3; ++r) {
    EXPECT_GT(book.u_min(r), 0.0);
    EXPECT_LT(book.u_min(r), book.u_max(r));
  }
  EXPECT_GE(book.alpha(), 1.0);
}

TEST(PriceBook, PriceCurveIsExponentialBetweenBounds) {
  ContextBuilder b(&sim_spec());
  b.add_job(2, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  const auto book = make_book(ctx);
  const int cap = 20;
  // Eq. 5 endpoints.
  EXPECT_NEAR(book.price(0, 0, cap), book.u_min(0), 1e-12);
  EXPECT_NEAR(book.price(0, cap, cap), book.u_max(0), 1e-9 * book.u_max(0));
  // Strictly increasing, geometric steps.
  double prev = book.price(0, 0, cap);
  const double step = std::pow(book.u_max(0) / book.u_min(0), 1.0 / cap);
  for (int g = 1; g <= cap; ++g) {
    const double p = book.price(0, g, cap);
    EXPECT_GT(p, prev);
    EXPECT_NEAR(p / prev, step, 1e-9 * step);
    prev = p;
  }
}

TEST(PriceBook, ZeroCapacityPoolIsInfinitelyExpensive) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 100.0, {1.0, 1.0, 1.0});
  const auto ctx = b.build();
  const auto book = make_book(ctx);
  EXPECT_TRUE(std::isinf(book.price(0, 0, 0)));
}

TEST(PriceBook, AllocationCostClimbsTheCurve) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 100.0, {1.0, 1.0, 1.0});
  const auto ctx = b.build();
  const auto book = make_book(ctx);
  ClusterState st(&sim_spec());
  // Taking 4 devices on one node must cost more than 4x the entry price
  // (the curve rises with each claimed device).
  const JobAllocation four({{0, 0, 4}});
  const double cost = book.allocation_cost(st, four);
  EXPECT_GT(cost, 4.0 * book.u_min(0));
  // And it must equal the sum of marginal prices along the way.
  double expected = 0.0;
  for (int g = 0; g < 4; ++g) expected += book.price(0, g, 4);
  EXPECT_NEAR(cost, expected, 1e-12);
}

TEST(PriceBook, MarginalPriceTracksState) {
  ContextBuilder b(&sim_spec());
  b.add_job(1, 100.0, {1.0, 1.0, 1.0});
  const auto ctx = b.build();
  const auto book = make_book(ctx);
  ClusterState st(&sim_spec());
  const double before = book.marginal_price(st, 0, 0);
  st.allocate(JobAllocation({{0, 0, 2}}));
  const double after = book.marginal_price(st, 0, 0);
  EXPECT_GT(after, before);
}

TEST(PriceBook, EmptyQueueYieldsBenignBounds) {
  ContextBuilder b(&sim_spec());
  const auto ctx = b.build();
  PriceBook book(3, PricingConfig{});
  const UtilityFunction u;
  EXPECT_NO_THROW(book.compute_bounds(ctx, u));
  for (GpuTypeId r = 0; r < 3; ++r) {
    EXPECT_GT(book.u_min(r), 0.0);
    EXPECT_LT(book.u_min(r), book.u_max(r));
  }
}

TEST(PriceBook, EtaScalesTheFloor) {
  ContextBuilder b(&sim_spec());
  b.add_job(2, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  const UtilityFunction u;
  PricingConfig low;
  low.eta = 1.0;
  PricingConfig high;
  high.eta = 100.0;
  PriceBook a(3, low), c(3, high);
  a.compute_bounds(ctx, u);
  c.compute_bounds(ctx, u);
  EXPECT_GT(a.u_min(0), c.u_min(0));  // larger eta => lower floor (Eq. 7)
}

TEST(PriceBook, RejectsBadConfig) {
  PricingConfig bad;
  bad.eta = 0.0;
  EXPECT_THROW(PriceBook(3, bad), std::invalid_argument);
  EXPECT_THROW(PriceBook(0, PricingConfig{}), std::invalid_argument);
  PriceBook book(3, PricingConfig{});
  EXPECT_THROW(book.price(5, 0, 4), std::out_of_range);
}

// ---- PriceCache keying: per-book identity, no cross-book aliasing ----

TEST(PriceBook, IdentityIsFreshPerConstructionAndStablePerAssignment) {
  PriceBook a(3, PricingConfig{});
  PriceBook b(3, PricingConfig{});
  EXPECT_NE(a.identity(), 0u);
  EXPECT_NE(b.identity(), 0u);
  EXPECT_NE(a.identity(), b.identity());

  PriceBook copy(a);  // a new logical book: fresh identity, same bounds
  EXPECT_NE(copy.identity(), a.identity());
  EXPECT_EQ(copy.bounds_version(), a.bounds_version());
  PriceBook moved(std::move(copy));
  EXPECT_NE(moved.identity(), a.identity());

  // Assignment is the same logical book with changed bounds: identity is
  // kept, the bounds version bumps.
  const auto id = a.identity();
  const auto v = a.bounds_version();
  a = b;
  EXPECT_EQ(a.identity(), id);
  EXPECT_GT(a.bounds_version(), v);
  a = PriceBook(3, PricingConfig{});
  EXPECT_EQ(a.identity(), id);
}

// Two live books (per-cell books under sharding, two Simulators in one
// process) at the *same* bounds-version count must never serve each other's
// prices through a shared cache.
TEST(PriceCache, TwoLiveBooksShareOneCacheWithoutAliasing) {
  ContextBuilder b(&sim_spec());
  b.add_job(2, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  const UtilityFunction u;
  PricingConfig low;
  low.eta = 1.0;
  PricingConfig high;
  high.eta = 100.0;
  PriceBook cheap(3, high), dear(3, low);
  cheap.compute_bounds(ctx, u);
  dear.compute_bounds(ctx, u);
  ASSERT_NE(cheap.price_at_fraction(0, 0.5), dear.price_at_fraction(0, 0.5));
  ASSERT_EQ(cheap.bounds_version(), dear.bounds_version());  // identity must split them

  PriceCache cache;
  for (int pass = 0; pass < 3; ++pass) {
    for (const PriceBook* book : {&cheap, &dear}) {
      cache.sync(*book);
      for (const double f : {0.0, 0.25, 0.5, 0.5, 1.0}) {
        EXPECT_EQ(cache.price(*book, 0, f), book->price_at_fraction(0, f));
      }
    }
  }
}

// A new book constructed at a dead book's address (with an equal
// bounds-version count) must invalidate a cache synced to the old one.
TEST(PriceCache, AddressReuseDoesNotServeStalePrices) {
  ContextBuilder b(&sim_spec());
  b.add_job(2, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  const UtilityFunction u;
  PricingConfig low;
  low.eta = 1.0;
  PricingConfig high;
  high.eta = 100.0;

  std::optional<PriceBook> slot;
  slot.emplace(3, high);
  slot->compute_bounds(ctx, u);
  PriceCache cache;
  cache.sync(*slot);
  const double stale = cache.price(*slot, 0, 0.5);

  slot.emplace(3, low);  // same address, same bump count, different bounds
  slot->compute_bounds(ctx, u);
  cache.sync(*slot);
  EXPECT_EQ(cache.price(*slot, 0, 0.5), slot->price_at_fraction(0, 0.5));
  EXPECT_NE(cache.price(*slot, 0, 0.5), stale);
}

TEST(PriceBook, AlphaMatchesLogRatio) {
  ContextBuilder b(&sim_spec());
  b.add_job(2, 5000.0, {10.0, 5.0, 1.0});
  b.add_job(1, 50.0, {30.0, 10.0, 3.0});
  const auto ctx = b.build();
  const auto book = make_book(ctx);
  double expect = 1.0;
  for (GpuTypeId r = 0; r < 3; ++r) {
    expect = std::max(expect, std::log(book.u_max(r) / book.u_min(r)));
  }
  EXPECT_DOUBLE_EQ(book.alpha(), expect);
}

}  // namespace
}  // namespace hadar::core
