// Fault-injection tests: availability masking, the FailureModel event
// processes (scripted and stochastic), checkpoint-rollback kill semantics in
// the simulator, and survival of all four paper schedulers under shrink/grow.
#include <gtest/gtest.h>

#include "cluster/cluster_state.hpp"
#include "runner/experiment.hpp"
#include "runner/scenarios.hpp"
#include "sim/failure_model.hpp"
#include "sim/simulator.hpp"

namespace hadar::sim {
namespace {

using cluster::AvailabilityMask;
using cluster::ClusterSpec;
using cluster::GpuTypeRegistry;
using cluster::JobAllocation;
using workload::JobSpec;
using workload::Trace;

ClusterSpec two_singles() {
  // Two nodes with one type-0 GPU each.
  return ClusterSpec::from_counts(GpuTypeRegistry({{"G", 1.0}}),
                                  {std::vector<int>{1}, std::vector<int>{1}});
}

JobSpec simple_job(double iters, int workers = 1, double rate = 1.0, Seconds arrival = 0.0) {
  JobSpec j;
  j.model = "unit";
  j.arrival = arrival;
  j.num_workers = workers;
  j.epochs = static_cast<std::int64_t>(iters);
  j.chunks_per_epoch = 1;
  j.throughput = {rate};
  return j;
}

// Gang-places each job on the first node with enough free type-0 devices.
// Unlike test_sim's GreedyAll (pinned to node 0), this follows capacity to
// surviving nodes, which is what the failover tests need.
class FirstFit : public IScheduler {
 public:
  std::string name() const override { return "first-fit"; }
  cluster::AllocationMap schedule(const SchedulerContext& ctx) override {
    cluster::ClusterState st(ctx.spec);
    cluster::AllocationMap m;
    for (const auto& j : ctx.jobs) {
      for (NodeId h = 0; h < ctx.spec->num_nodes(); ++h) {
        JobAllocation a({{h, 0, j.spec->num_workers}});
        if (st.can_allocate(a)) {
          st.allocate(a);
          m.emplace(j.id(), a);
          break;
        }
      }
    }
    return m;
  }
};

FailureConfig script_of(std::vector<ClusterEvent> events) {
  FailureConfig f;
  f.script = std::move(events);
  return f;
}

// ------------------------------------------------------- availability ----

TEST(AvailabilityMask, MaskedSpecZeroesDownNodes) {
  const ClusterSpec spec = two_singles();
  AvailabilityMask mask(spec);
  EXPECT_TRUE(mask.all_available());
  EXPECT_TRUE(mask.set_node_up(0, false));
  EXPECT_FALSE(mask.set_node_up(0, false));  // idempotent
  EXPECT_FALSE(mask.all_available());

  const ClusterSpec live = spec.masked(mask);
  EXPECT_FALSE(live.node(0).available);
  EXPECT_TRUE(live.node(1).available);
  EXPECT_EQ(live.node(0).capacity(0), 0);
  EXPECT_EQ(live.node(1).capacity(0), 1);
  EXPECT_EQ(live.total_gpus(), 1);
  EXPECT_EQ(live.num_nodes(), 2);  // ids stay dense
}

TEST(AvailabilityMask, DegradeClampsToCapacity) {
  const ClusterSpec spec = ClusterSpec::from_counts(GpuTypeRegistry({{"G", 1.0}}),
                                                    {std::vector<int>{4}});
  AvailabilityMask mask(spec);
  EXPECT_EQ(mask.degrade(0, 0, 3), 3);
  EXPECT_EQ(mask.live_capacity(0, 0), 1);
  EXPECT_EQ(mask.degrade(0, 0, 5), 1);   // clamped at capacity
  EXPECT_EQ(mask.live_capacity(0, 0), 0);
  EXPECT_EQ(mask.degrade(0, 0, -10), -4);  // clamped at zero
  EXPECT_EQ(mask.live_capacity(0, 0), 4);
}

// ------------------------------------------------------- failure model ----

TEST(FailureModel, ScriptedEventsFireInOrderAndIdempotently) {
  const ClusterSpec spec = two_singles();
  FailureConfig f = script_of({
      {300.0, ClusterEventKind::kNodeUp, 0, kInvalidGpuType, 1},
      {100.0, ClusterEventKind::kNodeDown, 0, kInvalidGpuType, 1},
      {100.0, ClusterEventKind::kNodeDown, 0, kInvalidGpuType, 1},  // dup: dropped
  });
  FailureModel fm(spec, f);

  EXPECT_TRUE(fm.advance_to(50.0).empty());
  const auto at100 = fm.advance_to(150.0);
  ASSERT_EQ(at100.size(), 1u);
  EXPECT_EQ(at100[0].kind, ClusterEventKind::kNodeDown);
  EXPECT_FALSE(fm.mask().node_up(0));

  const auto at300 = fm.advance_to(1000.0);
  ASSERT_EQ(at300.size(), 1u);
  EXPECT_EQ(at300[0].kind, ClusterEventKind::kNodeUp);
  EXPECT_TRUE(fm.mask().all_available());
}

TEST(FailureModel, RejectsBadScriptAndConfig) {
  const ClusterSpec spec = two_singles();
  EXPECT_THROW(FailureModel(spec, script_of({{0.0, ClusterEventKind::kNodeDown, 7,
                                              kInvalidGpuType, 1}})),
               std::invalid_argument);
  EXPECT_THROW(FailureModel(spec, script_of({{0.0, ClusterEventKind::kGpuDegrade, 0, 9, 1}})),
               std::invalid_argument);
  FailureConfig f;
  f.node_mttf = 100.0;
  f.node_mttr = 0.0;
  EXPECT_THROW(FailureModel(spec, f), std::invalid_argument);
}

TEST(FailureModel, StochasticStreamIsSeedDeterministicAndStepInvariant) {
  const ClusterSpec spec = ClusterSpec::simulation_default();
  FailureConfig f;
  f.node_mttf = 20000.0;
  f.node_mttr = 4000.0;
  f.gpu_mttf = 400000.0;
  f.gpu_mttr = 4000.0;
  f.seed = 11;

  auto collect = [&](Seconds step) {
    FailureModel fm(spec, f);
    std::vector<ClusterEvent> all;
    for (Seconds t = step; t <= 100000.0 + 1e-9; t += step) {
      for (const auto& e : fm.advance_to(t)) all.push_back(e);
    }
    return all;
  };
  const auto coarse = collect(100000.0);
  const auto fine = collect(500.0);
  ASSERT_FALSE(coarse.empty());
  ASSERT_EQ(coarse.size(), fine.size());
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    EXPECT_EQ(coarse[i].time, fine[i].time);
    EXPECT_EQ(coarse[i].kind, fine[i].kind);
    EXPECT_EQ(coarse[i].node, fine[i].node);
    EXPECT_EQ(coarse[i].type, fine[i].type);
  }
}

// --------------------------------------------------- simulator + kills ----

TEST(FailureSim, NodeCrashRollsBackToCheckpointAndRestartsElsewhere) {
  // 500 iters at 1 it/s, L = 100, flat 10 s penalty. Failure-free finish is
  // 510 (see test_sim). Node 0 dies at t=200: the round-2 progress (100
  // iters) is rolled back to the t=100 checkpoint (90 iters), and the job
  // restarts on node 1 the same round, repaying the 10 s penalty:
  //   t=200: 90 -> 180, t=300..500: +300 -> 480, t=600: 20 left -> 620.
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.enable_event_log = true;
  cfg.failure = script_of({{200.0, ClusterEventKind::kNodeDown, 0, kInvalidGpuType, 1}});
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(500)};
  t.finalize();
  FirstFit sched;
  const auto r = sim.run(two_singles(), t, sched);

  ASSERT_TRUE(r.all_finished());
  EXPECT_NEAR(r.jobs[0].finish, 620.0, 1e-6);
  EXPECT_EQ(r.jobs[0].failure_kills, 1);
  EXPECT_EQ(r.total_failure_kills, 1);
  EXPECT_NEAR(r.jobs[0].lost_gpu_seconds, 100.0, 1e-9);
  EXPECT_NEAR(r.lost_gpu_seconds, 100.0, 1e-9);
  EXPECT_EQ(r.num_node_failures, 1);
  EXPECT_LT(r.goodput, r.gpu_utilization);

  const auto& log = sim.event_log();
  EXPECT_EQ(log.of_kind(EventKind::kNodeDown).size(), 1u);
  EXPECT_EQ(log.of_kind(EventKind::kKill).size(), 1u);
  EXPECT_EQ(log.of_kind(EventKind::kResume).size(), 1u);
  EXPECT_EQ(r.jobs[0].preemptions, 0);  // failure kills are not preemptions
}

TEST(FailureSim, JobWaitsOutRepairWhenNoSpareCapacity) {
  // Single 1-GPU node, down from 200 to 400: the job is killed back to 90
  // iters, idles two rounds, resumes at t=400 and finishes 410 iters later:
  //   t=400: 90 -> 180, +300 -> 480 at t=800, 20 left -> 820.
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.enable_event_log = true;
  cfg.failure = script_of({{200.0, ClusterEventKind::kNodeDown, 0, kInvalidGpuType, 1},
                           {400.0, ClusterEventKind::kNodeUp, 0, kInvalidGpuType, 1}});
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(500)};
  t.finalize();
  FirstFit sched;
  const auto r = sim.run(ClusterSpec::from_counts(GpuTypeRegistry({{"G", 1.0}}),
                                                  {std::vector<int>{1}}),
                         t, sched);
  ASSERT_TRUE(r.all_finished());
  EXPECT_NEAR(r.jobs[0].finish, 820.0, 1e-6);
  EXPECT_EQ(r.num_node_failures, 1);
  EXPECT_EQ(r.num_node_recoveries, 1);
  EXPECT_EQ(r.jobs[0].failure_kills, 1);
}

TEST(FailureSim, IdleGpuDegradeKillsNobody) {
  // 2-GPU node, 1-worker job: degrading the spare GPU shrinks capacity but
  // the held allocation still fits, so the run is unaffected.
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.failure = script_of({{100.0, ClusterEventKind::kGpuDegrade, 0, 0, 1}});
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(500)};
  t.finalize();
  FirstFit sched;
  const auto r = sim.run(ClusterSpec::from_counts(GpuTypeRegistry({{"G", 1.0}}),
                                                  {std::vector<int>{2}}),
                         t, sched);
  ASSERT_TRUE(r.all_finished());
  EXPECT_NEAR(r.jobs[0].finish, 510.0, 1e-6);
  EXPECT_EQ(r.total_failure_kills, 0);
  EXPECT_EQ(r.num_gpu_degrades, 1);
  EXPECT_NEAR(r.goodput, r.gpu_utilization, 1e-12);
}

TEST(FailureSim, RestartChargesCheckpointLoadOnly) {
  // Per-model costs: save 2 s, load 18 s. A voluntary reallocation costs
  // 20 s, but a failure restart only pays the 18 s load (the save happened
  // implicitly at the round boundary). 500 iters, L = 100, node 0 dies at
  // t=200 with node 1 free:
  //   t=0: 20 s penalty -> 80 iters. t=100: +100 -> 180 (checkpoint 80).
  //   t=200 kill -> back to 80; restart pays 18 s -> +82 -> 162.
  //   t=300..500: +300 -> 462; t=600: 38 left -> finish 638.
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.use_flat_reallocation_penalty = false;
  cfg.failure = script_of({{200.0, ClusterEventKind::kNodeDown, 0, kInvalidGpuType, 1}});
  Simulator sim(cfg);
  Trace t;
  JobSpec j = simple_job(500);
  j.checkpoint_save = 2.0;
  j.checkpoint_load = 18.0;
  t.jobs = {j};
  t.finalize();
  FirstFit sched;
  const auto r = sim.run(two_singles(), t, sched);
  ASSERT_TRUE(r.all_finished());
  EXPECT_NEAR(r.jobs[0].finish, 638.0, 1e-6);
  EXPECT_NEAR(r.jobs[0].lost_gpu_seconds, 100.0, 1e-9);
}

TEST(FailureSim, DisabledFailuresLeaveResultsBitIdentical) {
  // The failure subsystem must be a strict no-op when not configured: same
  // trace and seed produce the same result object field for field.
  auto run_once = [](bool touch_failure_defaults) {
    SimConfig cfg;
    cfg.round_length = 100.0;
    if (touch_failure_defaults) cfg.failure = FailureConfig{};
    Simulator sim(cfg);
    Trace t;
    t.jobs = {simple_job(500), simple_job(300, 1, 1.0, 150.0)};
    t.finalize();
    FirstFit sched;
    return sim.run(two_singles(), t, sched);
  };
  const auto a = run_once(false);
  const auto b = run_once(true);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_EQ(a.jobs[i].gpu_seconds, b.jobs[i].gpu_seconds);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.gpu_utilization, b.gpu_utilization);
  EXPECT_EQ(a.goodput, a.gpu_utilization);
}

// ------------------------------------------- scheduler shrink/grow runs ----

TEST(FailureSim, AllPaperSchedulersSurviveStochasticFailures) {
  // Every scheduler must complete a seeded failure run with allocation
  // validation on (capacity + gang checked against the live spec every
  // round) and produce identical results when repeated.
  runner::ExperimentConfig cfg = runner::resilience(/*node_mttf=*/40000.0,
                                                    /*node_mttr=*/4000.0,
                                                    /*gpu_mttf=*/400000.0,
                                                    /*gpu_mttr=*/4000.0,
                                                    /*num_jobs=*/48);
  ASSERT_TRUE(cfg.sim.validate_allocations);
  for (const auto& name : runner::kPaperSchedulers) {
    auto sched = runner::make_scheduler(name);
    Simulator sim_a(cfg.sim);
    const auto a = sim_a.run(cfg.spec, cfg.trace, *sched);
    EXPECT_GT(a.num_node_failures, 0) << name;
    EXPECT_EQ(a.num_unfinished, 0) << name;

    auto sched2 = runner::make_scheduler(name);
    Simulator sim_b(cfg.sim);
    const auto b = sim_b.run(cfg.spec, cfg.trace, *sched2);
    EXPECT_EQ(a.makespan, b.makespan) << name;
    EXPECT_EQ(a.avg_jct, b.avg_jct) << name;
    EXPECT_EQ(a.lost_gpu_seconds, b.lost_gpu_seconds) << name;
    EXPECT_EQ(a.total_failure_kills, b.total_failure_kills) << name;
  }
}

TEST(FailureSim, FailureFreeResilienceScenarioMatchesPaperStatic) {
  // resilience(0) must be paper_static exactly: the fault subsystem is a
  // strict no-op when disabled, for every scheduler in the comparison.
  runner::ExperimentConfig base = runner::paper_static(/*num_jobs=*/48);
  runner::ExperimentConfig off = runner::resilience(/*node_mttf=*/0.0, 3600.0,
                                                    /*gpu_mttf=*/0.0, 3600.0,
                                                    /*num_jobs=*/48);
  ASSERT_FALSE(off.sim.failure.enabled());
  for (const auto& name : runner::kPaperSchedulers) {
    auto s1 = runner::make_scheduler(name);
    Simulator sim1(base.sim);
    const auto clean = sim1.run(base.spec, base.trace, *s1);
    auto s2 = runner::make_scheduler(name);
    Simulator sim2(off.sim);
    const auto quiet = sim2.run(off.spec, off.trace, *s2);
    EXPECT_EQ(clean.makespan, quiet.makespan) << name;
    EXPECT_EQ(clean.avg_jct, quiet.avg_jct) << name;
    EXPECT_EQ(quiet.lost_gpu_seconds, 0.0) << name;
    EXPECT_EQ(quiet.total_failure_kills, 0) << name;
  }
}

}  // namespace
}  // namespace hadar::sim
