// Tests for the scenario-diversity policy layer (DESIGN.md §15): the
// deadline/quota decorator stages, the duration predictor, SLO accounting in
// SimResult, the sweep positional-ordering contract, and the tune_policy
// grid search (including its thread-count reproducibility).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/policy_stages.hpp"
#include "core/utility.hpp"
#include "pipeline/staged_scheduler.hpp"
#include "pipeline/stages.hpp"
#include "runner/scenarios.hpp"
#include "runner/tune_policy.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace hadar {
namespace {

using cluster::ClusterSpec;
using common::ScopedThreadCount;
using core::DeadlineUtilityStage;
using core::DurationPredictor;
using core::PolicyConfig;
using core::TenantQuotaStage;
using core::with_policy;
using pipeline::RoundState;
using pipeline::StagedScheduler;
using test::ContextBuilder;

sim::SimResult run_experiment(const runner::ExperimentConfig& cfg, sim::IScheduler& sched) {
  sim::Simulator simulator(cfg.sim);
  return simulator.run(cfg.spec, cfg.trace, sched);
}

// ---------------------------------------------------------- PolicyConfig ---

TEST(PolicyConfig, ValidateRejectsBadKnobs) {
  PolicyConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.deadline_weight = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.deadline_weight = 0.0;
  cfg.fairness_weight = -0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.fairness_weight = 1.0;
  cfg.quota_gpu_hours = -2.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.quota_gpu_hours = 0.0;
  cfg.tenant_weights = {1.0, 0.0};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PolicyConfig, WeightOfFallsBackToOne) {
  PolicyConfig cfg;
  cfg.tenant_weights = {2.0, 0.5};
  EXPECT_DOUBLE_EQ(cfg.weight_of(0), 2.0);
  EXPECT_DOUBLE_EQ(cfg.weight_of(1), 0.5);
  EXPECT_DOUBLE_EQ(cfg.weight_of(2), 1.0);   // beyond the vector
  EXPECT_DOUBLE_EQ(cfg.weight_of(-1), 1.0);  // out of range
}

TEST(PolicyConfig, DisabledByDefault) {
  const PolicyConfig cfg;
  EXPECT_FALSE(cfg.deadline_enabled());
  EXPECT_FALSE(cfg.quota_enabled());
  EXPECT_FALSE(cfg.enabled());
}

// ----------------------------------------------------------- with_policy ---

TEST(WithPolicy, DisabledConfigReturnsBaseUnchanged) {
  auto base = runner::make_flat_scheduler("hadar");
  sim::IScheduler* raw = base.get();
  auto wrapped = with_policy(std::move(base), PolicyConfig{});
  EXPECT_EQ(wrapped.get(), raw);
}

TEST(WithPolicy, WrapsOnlyEnabledSlots) {
  PolicyConfig cfg;
  cfg.deadline_weight = 1.0;
  auto sched = with_policy(runner::make_flat_scheduler("hadar"), cfg);
  auto* staged = dynamic_cast<StagedScheduler*>(sched.get());
  ASSERT_NE(staged, nullptr);
  EXPECT_EQ(staged->stages().priority->name(), "policy.deadline");
  EXPECT_NE(staged->stages().admission->name(), "policy.quota");

  cfg = PolicyConfig{};
  cfg.quota_gpu_hours = 10.0;
  sched = with_policy(runner::make_flat_scheduler("hadar"), cfg);
  staged = dynamic_cast<StagedScheduler*>(sched.get());
  ASSERT_NE(staged, nullptr);
  EXPECT_EQ(staged->stages().admission->name(), "policy.quota");
  EXPECT_NE(staged->stages().priority->name(), "policy.deadline");
}

TEST(WithPolicy, RejectsNonStagedSchedulers) {
  PolicyConfig cfg;
  cfg.deadline_weight = 1.0;
  // srtf is the one remaining monolithic policy.
  auto base = runner::make_flat_scheduler("srtf");
  if (dynamic_cast<StagedScheduler*>(base.get()) == nullptr) {
    EXPECT_THROW(with_policy(std::move(base), cfg), std::invalid_argument);
  }
}

// ----------------------------------------------------- DeadlineUtilityStage

TEST(DeadlineUtilityStage, PromotesUrgentJobsOverArrivalOrder) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  b.add_job(2, 1e6, {10.0, 5.0, 1.0});  // job 0: no deadline
  b.add_job(2, 1e6, {10.0, 5.0, 1.0}).with_deadline(60.0);  // job 1: hopeless soon
  const auto ctx = b.build();

  PolicyConfig cfg;
  cfg.deadline_weight = 2.0;
  DeadlineUtilityStage stage(std::make_shared<pipeline::ArrivalOrderPriorityStage>(), cfg);
  cluster::ClusterState st(&spec);
  RoundState rs;
  rs.begin_round(ctx, &st);
  pipeline::PassThroughAdmissionStage().admit(rs);
  ASSERT_EQ(rs.queue.size(), 2u);
  EXPECT_EQ(rs.queue[0]->id(), 0);  // arrival order before the stage

  stage.prioritize(rs);
  ASSERT_EQ(rs.queue.size(), 2u);
  EXPECT_EQ(rs.queue[0]->id(), 1);  // deadline job jumps the line
  ASSERT_FALSE(rs.ranked.empty());
  EXPECT_EQ(rs.ranked.front().job->id(), 1);
}

TEST(DeadlineUtilityStage, ZeroWeightBlendPreservesInnerOrder) {
  // fairness-only blend (deadline_weight counts, but all urgencies equal)
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  for (int i = 0; i < 5; ++i) b.add_job(1, 1000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();

  PolicyConfig cfg;
  cfg.deadline_weight = 3.0;  // enabled, but no job has a deadline
  DeadlineUtilityStage stage(std::make_shared<pipeline::ArrivalOrderPriorityStage>(), cfg);
  cluster::ClusterState st(&spec);
  RoundState rs;
  rs.begin_round(ctx, &st);
  pipeline::PassThroughAdmissionStage().admit(rs);
  stage.prioritize(rs);
  ASSERT_EQ(rs.queue.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(rs.queue[static_cast<std::size_t>(i)]->id(), i);
}

// -------------------------------------------------------- TenantQuotaStage

TEST(TenantQuotaStage, BlocksTenantsPastTheHardCap) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  b.add_job(1, 1e6, {10.0, 5.0, 1.0}).with_tenant(0);
  b.add_job(1, 1e6, {10.0, 5.0, 1.0}).with_tenant(1);
  auto ctx = b.build();
  // Tenant 0 already burned 10 GPU-hours; tenant 1 none.
  ctx.jobs[0].attained_service = 10.0 * 3600.0;

  PolicyConfig cfg;
  cfg.quota_gpu_hours = 1.0;
  cfg.quota_strictness = 1.0;  // hard cap right at quota
  TenantQuotaStage stage(std::make_shared<pipeline::PassThroughAdmissionStage>(), cfg);
  cluster::ClusterState st(&spec);
  RoundState rs;
  rs.begin_round(ctx, &st);
  stage.admit(rs);
  ASSERT_EQ(rs.queue.size(), 1u);
  EXPECT_EQ(rs.queue[0]->id(), 1);
  EXPECT_DOUBLE_EQ(stage.usage_gpu_seconds(0), 10.0 * 3600.0);
  EXPECT_DOUBLE_EQ(stage.usage_gpu_seconds(1), 0.0);
}

TEST(TenantQuotaStage, IdleGuardNeverStarvesTheCluster) {
  // Every tenant past the hard cap: the guard must still admit someone.
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  b.add_job(1, 1e6, {10.0, 5.0, 1.0}).with_tenant(0);
  b.add_job(1, 1e6, {10.0, 5.0, 1.0}).with_tenant(1);
  auto ctx = b.build();
  ctx.jobs[0].attained_service = 8.0 * 3600.0;  // worse offender
  ctx.jobs[1].attained_service = 5.0 * 3600.0;

  PolicyConfig cfg;
  cfg.quota_gpu_hours = 1.0;
  cfg.quota_strictness = 1.0;
  TenantQuotaStage stage(std::make_shared<pipeline::PassThroughAdmissionStage>(), cfg);
  cluster::ClusterState st(&spec);
  RoundState rs;
  rs.begin_round(ctx, &st);
  stage.admit(rs);
  ASSERT_EQ(rs.queue.size(), 1u);
  EXPECT_EQ(rs.queue[0]->id(), 1);  // minimal-overage tenant gets in
}

TEST(TenantQuotaStage, WeightedOverageDecidesDrfSharing) {
  // Both tenants between quota and cap; the smaller *weighted* overage wins.
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  b.add_job(1, 1e6, {10.0, 5.0, 1.0}).with_tenant(0);
  b.add_job(1, 1e6, {10.0, 5.0, 1.0}).with_tenant(1);
  auto ctx = b.build();
  // Tenant 0: 8 GPUh over a weighted 4 GPUh quota -> overage (8-4)/4 = 1.
  // Tenant 1: 3 GPUh over a 1 GPUh quota -> overage (3-1)/1 = 2.
  ctx.jobs[0].attained_service = 8.0 * 3600.0;
  ctx.jobs[1].attained_service = 3.0 * 3600.0;

  PolicyConfig cfg;
  cfg.quota_gpu_hours = 1.0;
  cfg.quota_strictness = 0.1;       // cap at 10x quota: nobody hard-blocked
  cfg.tenant_weights = {4.0, 1.0};  // tenant 0's overage shrinks 4x
  TenantQuotaStage stage(std::make_shared<pipeline::PassThroughAdmissionStage>(), cfg);
  cluster::ClusterState st(&spec);
  RoundState rs;
  rs.begin_round(ctx, &st);
  stage.admit(rs);
  ASSERT_EQ(rs.queue.size(), 1u);
  EXPECT_EQ(rs.queue[0]->id(), 0);
}

// ------------------------------------------------------- DurationPredictor

TEST(DurationPredictor, LearnsStretchFromCompletions) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  b.add_job(1, 1000.0, {10.0, 5.0, 1.0});
  const auto ctx_full = b.build(0.0);

  DurationPredictor pred;
  EXPECT_EQ(pred.samples(), 0);
  EXPECT_DOUBLE_EQ(pred.stretch(workload::SizeClass::kSmall), 1.0);

  pred.observe(0.0, ctx_full.jobs);
  const double ideal = core::ideal_total_runtime(ctx_full.jobs[0]);
  ASSERT_GT(ideal, 0.0);

  // The job vanishes at t = 2 * ideal: realized stretch 2.0.
  const sim::SchedulerContext empty = ContextBuilder(&spec).build(2.0 * ideal);
  pred.observe(2.0 * ideal, empty.jobs);
  EXPECT_EQ(pred.samples(), 1);
  const auto cls = ctx_full.jobs[0].spec->size_class;
  EXPECT_NEAR(pred.stretch(cls), 2.0, 1e-9);

  // predict_remaining scales the ideal remaining runtime by the stretch.
  ContextBuilder b2(&spec);
  b2.add_job(1, 1000.0, {10.0, 5.0, 1.0});
  const auto ctx2 = b2.build();
  EXPECT_NEAR(pred.predict_remaining(ctx2.jobs[0]),
              2.0 * core::ideal_remaining_runtime(ctx2.jobs[0]), 1e-6);

  pred.reset();
  EXPECT_EQ(pred.samples(), 0);
}

// ------------------------------------------------------------ end to end ---

TEST(PolicyEndToEnd, NoDeadlineTraceIsBitIdenticalUnderDecorators) {
  // Decorated pipeline over a deadline-free, single-tenant trace must
  // reproduce the undecorated schedule exactly (the blend is pure fairness
  // and the quota stage is disabled by cfg).
  const auto cfg = runner::paper_static(48, 42);
  auto plain = runner::make_flat_scheduler("hadar");
  const auto base = run_experiment(cfg, *plain);

  PolicyConfig pc;
  pc.deadline_weight = 2.0;  // enabled, but no job carries a deadline
  auto decorated = with_policy(runner::make_flat_scheduler("hadar"), pc);
  const auto dec = run_experiment(cfg, *decorated);

  EXPECT_EQ(dec.rounds, base.rounds);
  EXPECT_EQ(dec.total_reallocations, base.total_reallocations);
  EXPECT_EQ(dec.total_preemptions, base.total_preemptions);
  EXPECT_DOUBLE_EQ(dec.makespan, base.makespan);
  EXPECT_DOUBLE_EQ(dec.avg_jct, base.avg_jct);
  ASSERT_EQ(dec.jobs.size(), base.jobs.size());
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(dec.jobs[i].first_start, base.jobs[i].first_start);
    EXPECT_DOUBLE_EQ(dec.jobs[i].finish, base.jobs[i].finish);
  }
}

TEST(PolicyEndToEnd, FixedSeedSloMetricsArePinned) {
  // Golden SLO accounting for hadar over slo_static(48, 42). Any change to
  // the trace forks, the SLO finalize pass, or the base schedule moves these.
  const auto cfg = runner::slo_static(48, 42);
  auto sched = runner::make_flat_scheduler("hadar");
  const auto r = run_experiment(cfg, *sched);

  EXPECT_EQ(r.num_deadline_jobs, 23);
  EXPECT_EQ(r.num_deadline_met, 20);
  EXPECT_NEAR(r.deadline_attainment, 0.86956521739130432, 1e-12);
  EXPECT_NEAR(r.avg_tardiness, 701.44293865664065, 1e-6);
  EXPECT_NEAR(r.max_tardiness, 11552.919887169599, 1e-6);

  ASSERT_EQ(r.tenant_shares.size(), 3u);
  EXPECT_EQ(r.tenant_shares[0].tenant, 0);
  EXPECT_EQ(r.tenant_shares[0].jobs, 17);
  EXPECT_EQ(r.tenant_shares[1].jobs, 19);
  EXPECT_EQ(r.tenant_shares[2].jobs, 12);
  EXPECT_NEAR(r.tenant_shares[0].share, 0.2848972064930077, 1e-12);
  EXPECT_NEAR(r.tenant_shares[1].share, 0.39222328840824816, 1e-12);
  EXPECT_NEAR(r.tenant_shares[2].share, 0.32287950509874408, 1e-12);
  double total = 0.0;
  for (const auto& t : r.tenant_shares) total += t.share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PolicyEndToEnd, DeadlineWeightImprovesAttainment) {
  const auto cfg = runner::slo_static(48, 42);
  auto plain = runner::make_flat_scheduler("hadar");
  const auto base = run_experiment(cfg, *plain);

  PolicyConfig pc;
  pc.deadline_weight = 2.0;
  auto urgent = with_policy(runner::make_flat_scheduler("hadar"), pc);
  const auto dec = run_experiment(cfg, *urgent);

  EXPECT_GE(dec.deadline_attainment, base.deadline_attainment);
  EXPECT_LE(dec.avg_tardiness, base.avg_tardiness);
}

// ------------------------------------------------------- sweep / tuner ----

TEST(SweepOrdering, ResultsArePositionalAtAnyThreadCount) {
  // The contract tune_policy depends on: result[i] belongs to cases[i],
  // independent of completion order. Compare a sweep against individually
  // run cases, then re-run the sweep single-threaded.
  std::vector<runner::SweepCase> cases;
  for (const auto& name : {"yarn", "tiresias", "hadar"}) {
    runner::SweepCase c;
    c.label = name;
    c.scheduler = name;
    c.config = runner::paper_static(24, 7);
    cases.push_back(std::move(c));
  }

  std::vector<sim::SimResult> solo;
  for (const auto& c : cases) {
    auto sched = runner::make_scheduler(c.scheduler);
    solo.push_back(run_experiment(c.config, *sched));
  }

  for (const int threads : {1, 4}) {
    ScopedThreadCount guard(threads);
    const auto swept = runner::sweep(cases);
    ASSERT_EQ(swept.size(), cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i) {
      EXPECT_EQ(swept[i].label, cases[i].label);
      EXPECT_DOUBLE_EQ(swept[i].result.makespan, solo[i].makespan);
      EXPECT_DOUBLE_EQ(swept[i].result.avg_jct, solo[i].avg_jct);
      EXPECT_EQ(swept[i].result.rounds, solo[i].rounds);
    }
  }
}

TEST(TunePolicy, GridIsEnumeratedInOrderAndScored) {
  const auto cfg = runner::slo_static(24, 11);
  runner::TuneGrid grid;
  grid.deadline_weights = {0.0, 1.0};
  grid.quota_strictness = {0.0};
  const auto r = runner::tune_policy("hadar", cfg, grid);

  ASSERT_EQ(r.points.size(), 2u);
  EXPECT_DOUBLE_EQ(r.points[0].policy.deadline_weight, 0.0);
  EXPECT_DOUBLE_EQ(r.points[1].policy.deadline_weight, 1.0);
  ASSERT_GE(r.best, 0);
  ASSERT_LT(static_cast<std::size_t>(r.best), r.points.size());
  for (const auto& p : r.points) {
    EXPECT_DOUBLE_EQ(p.score, runner::tune_score(p));
    EXPECT_GE(r.best_point().score, p.score - 1e-12);
  }

  const std::string json = runner::tune_result_json(r);
  EXPECT_NE(json.find("\"scheduler\": \"hadar\""), std::string::npos);
  EXPECT_NE(json.find("\"best\""), std::string::npos);
}

TEST(TunePolicy, ReproducibleAcrossThreadCounts) {
  const auto cfg = runner::slo_static(24, 11);
  runner::TuneGrid grid;
  grid.deadline_weights = {0.0, 1.0};
  grid.quota_strictness = {0.0, 1.0};
  grid.quota_gpu_hours = 50.0;

  std::string json1, jsonN;
  int best1 = -1, bestN = -1;
  {
    ScopedThreadCount guard(1);
    const auto r = runner::tune_policy("hadar", cfg, grid);
    json1 = runner::tune_result_json(r);
    best1 = r.best;
  }
  {
    ScopedThreadCount guard(4);
    const auto r = runner::tune_policy("hadar", cfg, grid);
    jsonN = runner::tune_result_json(r);
    bestN = r.best;
  }
  EXPECT_EQ(best1, bestN);
  EXPECT_EQ(json1, jsonN);
}

}  // namespace
}  // namespace hadar
