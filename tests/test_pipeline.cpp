// Tests for the Blox-style round pipeline (src/pipeline/): driver contracts
// (stage order, observer, per-stage timing, save/restore), per-stage golden
// digests pinning every extracted stage's output bit-for-bit over the same
// workload the end-to-end golden digests use, and mixed pipelines composed
// of stages from different policies (the point of the stage interfaces).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/tiresias.hpp"
#include "common/binary.hpp"
#include "common/thread_pool.hpp"
#include "core/hadar_scheduler.hpp"
#include "pipeline/staged_scheduler.hpp"
#include "pipeline/stages.hpp"
#include "runner/experiment.hpp"
#include "runner/scenarios.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace hadar {
namespace {

using common::ScopedThreadCount;
using pipeline::RoundState;
using pipeline::StagedScheduler;
using pipeline::StageKind;
using pipeline::StageSet;
using test::ContextBuilder;

// ------------------------------------------------------------- digests ----

void fold(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
}

std::uint64_t bits(double d) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

void fold_alloc(std::uint64_t& h, const cluster::JobAllocation& a) {
  for (const auto& p : a.placements()) {
    fold(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(p.node)));
    fold(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(p.type)));
    fold(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(p.count)));
  }
}

/// Folds every stage-visible product of one stage invocation: the queue, the
/// ranked candidates, the proposed placements, and the running result. Any
/// behavioral drift in any stage of any policy moves at least one digest.
struct StageDigests {
  std::array<std::uint64_t, pipeline::kNumStages> h;
  StageDigests() { h.fill(1469598103934665603ULL); }

  void observe(StageKind k, const RoundState& rs) {
    auto& d = h[static_cast<std::size_t>(k)];
    fold(d, rs.queue.size());
    for (const sim::JobView* j : rs.queue) {
      fold(d, static_cast<std::uint64_t>(static_cast<std::int64_t>(j->id())));
    }
    fold(d, rs.ranked.size());
    for (const auto& c : rs.ranked) {
      fold(d, static_cast<std::uint64_t>(static_cast<std::int64_t>(c.job->id())));
      fold(d, static_cast<std::uint64_t>(static_cast<std::int64_t>(c.type)));
      fold(d, bits(c.priority));
    }
    fold(d, rs.proposed.size());
    for (const auto& [id, alloc] : rs.proposed) {
      fold(d, static_cast<std::uint64_t>(static_cast<std::int64_t>(id)));
      fold_alloc(d, alloc);
    }
    fold(d, rs.result.size());
    for (const auto& [id, alloc] : rs.result) {
      fold(d, static_cast<std::uint64_t>(static_cast<std::int64_t>(id)));
      fold_alloc(d, alloc);
    }
  }
};

/// Runs the end-to-end golden workload (runner::paper_static(48, 42) — the
/// same one tests/test_cluster_state_soa.cpp pins) through the flat staged
/// scheduler and digests every stage's output. Set HADAR_PIPELINE_PRINT=1
/// to print the table for refreshing the constants after an *intended*
/// behavior change.
StageDigests run_stage_golden(const std::string& scheduler) {
  ScopedThreadCount tc(1);
  const auto cfg = runner::paper_static(48, 42);
  auto sched = runner::make_flat_scheduler(scheduler);
  auto* staged = dynamic_cast<StagedScheduler*>(sched.get());
  EXPECT_NE(staged, nullptr) << scheduler << " is not a StagedScheduler";
  StageDigests d;
  staged->set_stage_observer([&d](StageKind k, const RoundState& rs) { d.observe(k, rs); });
  sim::Simulator simulator(cfg.sim);
  (void)simulator.run(cfg.spec, cfg.trace, *sched);
  if (std::getenv("HADAR_PIPELINE_PRINT") != nullptr) {
    for (int i = 0; i < pipeline::kNumStages; ++i) {
      std::printf("%s %s 0x%016llx\n", scheduler.c_str(),
                  pipeline::to_string(static_cast<StageKind>(i)),
                  static_cast<unsigned long long>(d.h[static_cast<std::size_t>(i)]));
    }
  }
  return d;
}

void expect_stage_digests(const std::string& scheduler,
                          const std::array<std::uint64_t, pipeline::kNumStages>& want) {
  const StageDigests got = run_stage_golden(scheduler);
  for (int i = 0; i < pipeline::kNumStages; ++i) {
    EXPECT_EQ(got.h[static_cast<std::size_t>(i)], want[static_cast<std::size_t>(i)])
        << scheduler << " stage " << pipeline::to_string(static_cast<StageKind>(i));
  }
}

// Pinned on the first staged implementation (this PR): each value folds one
// stage's outputs over every round of the golden workload. The end-to-end
// digests in test_cluster_state_soa.cpp prove the pipeline matches the
// monolithic schedulers; these pin each extracted stage individually, so a
// future stage edit that shifts work between stages (same end result,
// different intermediate products) is caught and must be intentional.
TEST(PerStageGolden, Hadar) {
  expect_stage_digests("hadar",
                       {0x310ba7e6a9b98630ULL, 0xbe987c0ef8ace394ULL, 0xb5f069abdc531775ULL,
                        0xff081758f307f45fULL, 0xff081758f307f45fULL});
}

TEST(PerStageGolden, Gavel) {
  expect_stage_digests("gavel",
                       {0x2f5bfb384b04d664ULL, 0x2f5bfb384b04d664ULL, 0xfc5d17767b5ff1feULL,
                        0x734d384c51130bf7ULL, 0x734d384c51130bf7ULL});
}

TEST(PerStageGolden, Tiresias) {
  expect_stage_digests("tiresias",
                       {0x140515a907cf0344ULL, 0xeb7184abc23fa586ULL, 0xeb7184abc23fa586ULL,
                        0x74221784998de8d1ULL, 0x74221784998de8d1ULL});
}

TEST(PerStageGolden, Yarn) {
  expect_stage_digests("yarn",
                       {0xad5529c4f432c078ULL, 0x9ace0c55489e2855ULL, 0x9ace0c55489e2855ULL,
                        0xb744963735cfa021ULL, 0xb744963735cfa021ULL});
}

// -------------------------------------------------------------- driver ----

TEST(StagedScheduler, RunsStagesInFixedOrderOncePerRound) {
  StageSet set;
  set.admission = std::make_shared<pipeline::PassThroughAdmissionStage>();
  set.priority = std::make_shared<pipeline::ArrivalOrderPriorityStage>();
  set.allocation = std::make_shared<pipeline::NoSolveStage>();
  set.placement = std::make_shared<pipeline::GreedyPlacementStage>();
  set.preemption = std::make_shared<pipeline::NoPreemptionStage>();
  StagedScheduler sched("fifo", std::move(set));
  sched.enable_stage_timing(true);

  std::vector<StageKind> order;
  sched.set_stage_observer([&order](StageKind k, const RoundState&) { order.push_back(k); });

  const cluster::ClusterSpec spec = cluster::ClusterSpec::scaled(2);
  ContextBuilder b(&spec);
  b.add_job(2, 1e5, {8.0, 4.0, 2.0});
  b.add_job(1, 1e5, {8.0, 4.0, 2.0});
  const auto ctx = b.build();

  const auto out = sched.schedule(ctx);
  EXPECT_EQ(out.size(), 2u);  // both jobs fit a 24-GPU cluster
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < pipeline::kNumStages; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], static_cast<StageKind>(i));
  }
  (void)sched.schedule(ctx);
  EXPECT_EQ(order.size(), 10u);
  EXPECT_EQ(sched.timed_rounds(), 2u);
}

// ------------------------------------------------------ mixed pipelines ----

/// Hadar's admission/pricing/DP with Tiresias' LAS preemption pass in the
/// preemption slot — the stage-swap composition the pipeline exists for.
std::unique_ptr<StagedScheduler> make_mixed(double queue_threshold = 3600.0) {
  StageSet set = core::make_hadar_stages(core::HadarConfig{});
  baselines::TiresiasConfig tc;
  tc.queue_threshold = queue_threshold;
  set.preemption = std::make_shared<baselines::TiresiasPreemptionStage>(tc);
  return std::make_unique<StagedScheduler>("hadar+las-preempt", std::move(set));
}

TEST(MixedPipeline, HadarAllocationWithTiresiasPreemptionRunsDeterministically) {
  const auto cfg = runner::paper_static(32, 7);
  ASSERT_TRUE(cfg.sim.validate_allocations);
  sim::SimResult a, b;
  {
    sim::Simulator simulator(cfg.sim);
    auto sched = make_mixed();
    a = simulator.run(cfg.spec, cfg.trace, *sched);
  }
  {
    sim::Simulator simulator(cfg.sim);
    auto sched = make_mixed();
    b = simulator.run(cfg.spec, cfg.trace, *sched);
  }
  EXPECT_EQ(a.num_unfinished, 0);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_jct, b.avg_jct);
  EXPECT_EQ(a.rounds, b.rounds);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
}

TEST(MixedPipeline, SaveRestoreRoundTripsAcrossPolicies) {
  const cluster::ClusterSpec spec = cluster::ClusterSpec::scaled(2);
  ContextBuilder b(&spec);
  for (int i = 0; i < 8; ++i) b.add_job(1 + i % 3, 1e5, {8.0, 4.0, 2.0});
  const auto ctx = b.build();

  auto original = make_mixed();
  (void)original->schedule(ctx);
  (void)original->schedule(ctx);

  common::BinaryWriter w;
  original->save_state(w);
  auto restored = make_mixed();
  common::BinaryReader r(w.data());
  restored->restore_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(original->schedule(ctx), restored->schedule(ctx));
}

// Synthetic single-round check that the Tiresias preemption stage actually
// revokes: an over-threshold job's *fresh* grant is taken back when a short
// job is left waiting, and kept when nothing short waits.
TEST(MixedPipeline, TiresiasPreemptionStageRevokesFreshGrants) {
  const cluster::ClusterSpec spec = cluster::ClusterSpec::from_counts(
      cluster::GpuTypeRegistry::simulation_default(), {{4, 0, 0}});

  const auto make_fifo_las = [] {
    StageSet set;
    set.admission = std::make_shared<pipeline::PassThroughAdmissionStage>();
    set.priority = std::make_shared<pipeline::ArrivalOrderPriorityStage>();
    set.allocation = std::make_shared<pipeline::NoSolveStage>();
    set.placement = std::make_shared<pipeline::GreedyPlacementStage>();
    set.preemption =
        std::make_shared<baselines::TiresiasPreemptionStage>(baselines::TiresiasConfig{});
    return std::make_unique<StagedScheduler>("fifo+las-preempt", std::move(set));
  };

  // Job 0 (long: 2 GPU-hours attained, currently paused) grabs 2 of the 4
  // devices; job 1's 4-gang no longer fits and waits. The preemption pass
  // must revoke job 0's fresh grant.
  {
    ContextBuilder b(&spec);
    b.add_job(2, 1e5, {8.0, 0.0, 0.0});
    b.add_job(4, 1e5, {8.0, 0.0, 0.0});
    auto ctx = b.build();
    ctx.jobs[0].attained_service = 7200.0;  // over the 3600 s threshold
    auto sched = make_fifo_las();
    const auto out = sched->schedule(ctx);
    EXPECT_EQ(out.count(0), 0u);
    EXPECT_EQ(out.count(1), 0u);  // still waiting; devices free next round
  }

  // Same jobs, but the short job fits alongside: nothing waits, the long
  // job's grant stands.
  {
    ContextBuilder b(&spec);
    b.add_job(2, 1e5, {8.0, 0.0, 0.0});
    b.add_job(2, 1e5, {8.0, 0.0, 0.0});
    auto ctx = b.build();
    ctx.jobs[0].attained_service = 7200.0;
    auto sched = make_fifo_las();
    const auto out = sched->schedule(ctx);
    EXPECT_EQ(out.count(0), 1u);
    EXPECT_EQ(out.count(1), 1u);
  }
}

}  // namespace
}  // namespace hadar
