// Tests for the observability layer (src/obs) and its consumers: span
// recording/nesting, metrics registry semantics (bucket edges, kind
// conflicts, reset), Chrome-JSON export schema, the trace_report breakdown,
// the shared sim-time formatter, and the two determinism contracts —
// identical span multisets across thread counts, and a traced run computing
// the bit-identical schedule of an untraced one. The concurrent-recording
// test doubles as the TSan target for the CI sanitizer matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "analysis/trace_report.hpp"
#include "common/thread_pool.hpp"
#include "common/time_format.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/experiment.hpp"
#include "runner/scenarios.hpp"

namespace hadar {
namespace {

using common::ScopedThreadCount;

/// Installs a session for the test body and guarantees uninstall on exit
/// (a leaked install would leak tracing into every later test).
class Installed {
 public:
  explicit Installed(obs::TraceSession* s) : s_(s) { s_->install(); }
  ~Installed() { s_->uninstall(); }
  Installed(const Installed&) = delete;
  Installed& operator=(const Installed&) = delete;

 private:
  obs::TraceSession* s_;
};

// ---------------------------------------------------------------- spans --

TEST(TraceSession, RecordsNestedSpansInOrder) {
  obs::TraceSession session;
  {
    Installed in(&session);
    HADAR_TRACE_SCOPE("test", "outer");
    {
      HADAR_TRACE_SCOPE("test", "inner");
    }
  }
  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 2u);
  auto find = [&](const char* name) {
    return std::find_if(events.begin(), events.end(), [&](const obs::TraceEvent& e) {
      return std::string(e.name) == name;
    });
  };
  const auto outer = find("outer");
  const auto inner = find("inner");
  ASSERT_NE(outer, events.end());
  ASSERT_NE(inner, events.end());
  // Same thread, and the outer interval contains the inner one.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->ts_us, inner->ts_us);
  EXPECT_GE(outer->ts_us + outer->dur_us, inner->ts_us + inner->dur_us);
  EXPECT_EQ(inner->phase, obs::TracePhase::kComplete);
}

TEST(TraceSession, DetailLevelGatesSpans) {
  obs::TraceConfig cfg;
  cfg.detail = 0;
  obs::TraceSession session(cfg);
  {
    Installed in(&session);
    HADAR_TRACE_SCOPE("test", "coarse", 0);
    HADAR_TRACE_SCOPE("test", "fine", 2);  // above the session's detail
    obs::ScopedSpan span("test", "also_fine", 1);
    EXPECT_FALSE(span.active());
  }
  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "coarse");
}

TEST(TraceSession, NoSessionMeansNoRecording) {
  ASSERT_EQ(obs::TraceSession::current(), nullptr);
  EXPECT_FALSE(obs::tracing());
  obs::ScopedSpan span("test", "orphan");
  EXPECT_FALSE(span.active());
  span.arg("ignored", 1.0);  // must be safe no-ops
  obs::count("orphan.counter");
  obs::gauge_set("orphan.gauge", 3.0);
  obs::observe("orphan.hist", 5.0);
}

TEST(TraceSession, SpanArgsAndInstantsRoundTrip) {
  obs::TraceSession session;
  {
    Installed in(&session);
    {
      obs::ScopedSpan span("test", "work");
      span.arg("items", 7.0);
      span.str_arg("label", "abc");
    }
    session.instant("test", "tick", {{"round", 3.0}});
    session.counter("depth", 4.0);
  }
  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 3u);
  const auto& span = events[0];
  ASSERT_EQ(span.num_args, 1);
  EXPECT_STREQ(span.args[0].key, "items");
  EXPECT_EQ(span.args[0].value, 7.0);
  EXPECT_STREQ(span.str_key, "label");
  EXPECT_EQ(span.str_value, "abc");
  EXPECT_EQ(events[1].phase, obs::TracePhase::kInstant);
  EXPECT_EQ(events[2].phase, obs::TracePhase::kCounter);
  EXPECT_EQ(events[2].args[0].value, 4.0);
}

TEST(TraceSession, ClearDropsEventsKeepsRecording) {
  obs::TraceSession session;
  Installed in(&session);
  { HADAR_TRACE_SCOPE("test", "a"); }
  session.clear();
  EXPECT_EQ(session.event_count(), 0u);
  { HADAR_TRACE_SCOPE("test", "b"); }
  ASSERT_EQ(session.event_count(), 1u);
  EXPECT_STREQ(session.snapshot()[0].name, "b");
}

// -------------------------------------------------------------- metrics --

TEST(Metrics, HistogramBucketEdges) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // first bucket
  h.observe(1.0);    // edge: (.., 1.0] -> first bucket
  h.observe(1.0001); // second bucket
  h.observe(10.0);   // edge -> second bucket
  h.observe(100.0);  // edge -> third bucket
  h.observe(100.5);  // overflow
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.total, 6u);
  EXPECT_NEAR(s.sum, 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 100.5, 1e-9);
}

TEST(Metrics, RegistryKindConflictThrows) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {}), std::invalid_argument);       // empty bounds
  EXPECT_THROW(reg.histogram("h", {2.0, 1.0}), std::invalid_argument);  // not ascending
}

TEST(Metrics, RegistryResetKeepsHandlesValid) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Histogram& h = reg.histogram("h", {1.0, 2.0});
  c.add(5);
  g.set(7.0);
  h.observe(1.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().total, 0u);
  c.add(2);  // old handle must still feed the registry
  const auto snap = reg.snapshot();
  const auto it = std::find_if(snap.begin(), snap.end(),
                               [](const obs::MetricValue& m) { return m.name == "c"; });
  ASSERT_NE(it, snap.end());
  EXPECT_EQ(it->value, 2.0);
}

TEST(Metrics, CsvSamplerFixesColumnsAtFirstSample) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(1);
  obs::MetricsCsvSampler sampler(&reg);
  sampler.sample(0.0);
  reg.counter("b").add(9);  // registered after the header: ignored
  sampler.sample(60.0);
  const std::string csv = sampler.csv();
  EXPECT_NE(csv.find("sim_time,a"), std::string::npos);
  EXPECT_EQ(csv.find(",b"), std::string::npos);
  EXPECT_EQ(sampler.rows(), 2u);
}

TEST(Metrics, SessionHelpersFeedRegistry) {
  obs::TraceSession session;
  {
    Installed in(&session);
    obs::count("n", 3);
    obs::count("n");
    obs::gauge_set("depth", 12.0);
    obs::observe("dur", 4.5);
  }
  EXPECT_EQ(session.metrics().counter("n").value(), 4u);
  EXPECT_EQ(session.metrics().gauge("depth").value(), 12.0);
  const std::string json = session.metrics().to_json();
  EXPECT_NE(json.find("\"n\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
}

// --------------------------------------------------------- JSON export ---

TEST(ChromeJson, SchemaHasRequiredFields) {
  obs::TraceSession session;
  {
    Installed in(&session);
    {
      obs::ScopedSpan span("cat1", "span1");
      span.arg("k", 2.0);
      span.str_arg("s", "v");
    }
    session.instant("cat1", "inst1");
    session.counter("ctr1", 9.0);
  }
  const std::string json = session.chrome_json();
  // Top-level shape chrome://tracing and Perfetto both accept.
  EXPECT_EQ(json.find('{'), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One complete span with args, one instant with thread scope, one counter.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"span1\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"cat1\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"v\""), std::string::npos);
  // Every event carries pid/tid/ts, and the object closes properly.
  EXPECT_NE(json.find("\"pid\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_EQ(json.rfind('}'), json.size() - (json.back() == '\n' ? 2 : 1));
}

// -------------------------------------------------------- trace report ---

TEST(TraceReport, BucketsByCategory) {
  obs::TraceEvent e;
  e.cat = "lp";
  e.name = "lp.solve";
  EXPECT_EQ(analysis::bucket_of(e), analysis::TimeBucket::kSolve);
  e.cat = "gavel";
  e.name = "gavel.recompute";
  EXPECT_EQ(analysis::bucket_of(e), analysis::TimeBucket::kSolve);
  e.name = "gavel.pack";
  EXPECT_EQ(analysis::bucket_of(e), analysis::TimeBucket::kPlacement);
  e.cat = "hadar";
  e.name = "hadar.dp";
  EXPECT_EQ(analysis::bucket_of(e), analysis::TimeBucket::kPlacement);
  e.cat = "sim";
  e.name = "sim.advance";
  EXPECT_EQ(analysis::bucket_of(e), analysis::TimeBucket::kBookkeeping);
  // Pipeline stage spans: priority/allocation self time is solve work,
  // placement/preemption is placement, admission is bookkeeping.
  e.cat = "pipeline";
  e.name = "stage.priority";
  EXPECT_EQ(analysis::bucket_of(e), analysis::TimeBucket::kSolve);
  e.name = "stage.allocation";
  EXPECT_EQ(analysis::bucket_of(e), analysis::TimeBucket::kSolve);
  e.name = "stage.placement";
  EXPECT_EQ(analysis::bucket_of(e), analysis::TimeBucket::kPlacement);
  e.name = "stage.preemption";
  EXPECT_EQ(analysis::bucket_of(e), analysis::TimeBucket::kPlacement);
  e.name = "stage.admission";
  EXPECT_EQ(analysis::bucket_of(e), analysis::TimeBucket::kBookkeeping);
}

TEST(TraceReport, SelfTimeExcludesChildren) {
  // Hand-built trace: run [0,100] > round [10,90] > solve [20,40],
  // placement [50,70]. Round self time (bookkeeping) = 80 - 20 - 20 = 40.
  auto mk = [](const char* cat, const char* name, double ts, double dur) {
    obs::TraceEvent e;
    e.cat = cat;
    e.name = name;
    e.phase = obs::TracePhase::kComplete;
    e.ts_us = ts;
    e.dur_us = dur;
    return e;
  };
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent run = mk("sim", "sim.run", 0.0, 100.0);
  run.str_key = "scheduler";
  run.str_value = "Test";
  events.push_back(run);
  obs::TraceEvent round = mk("sim", "sim.round", 10.0, 80.0);
  round.add_arg("round", 1.0);
  round.add_arg("t", 360.0);
  events.push_back(round);
  events.push_back(mk("lp", "lp.solve", 20.0, 20.0));
  events.push_back(mk("hadar", "hadar.dp", 50.0, 20.0));

  const auto report = analysis::build_trace_report(events);
  ASSERT_EQ(report.schedulers.size(), 1u);
  const auto& sb = report.schedulers[0];
  EXPECT_EQ(sb.scheduler, "Test");
  ASSERT_EQ(sb.rounds.size(), 1u);
  const auto& rb = sb.rounds[0];
  EXPECT_EQ(rb.round, 1);
  EXPECT_EQ(rb.sim_t, 360.0);
  EXPECT_DOUBLE_EQ(rb.total_us, 80.0);
  EXPECT_DOUBLE_EQ(rb.solve_us, 20.0);
  EXPECT_DOUBLE_EQ(rb.placement_us, 20.0);
  EXPECT_DOUBLE_EQ(rb.bookkeeping_us, 40.0);

  const std::string rendered = analysis::render_trace_report(report);
  EXPECT_NE(rendered.find("Test"), std::string::npos);
  EXPECT_NE(rendered.find("solve"), std::string::npos);
}

TEST(TraceReport, EmptyTraceRendersPlaceholder) {
  const auto report = analysis::build_trace_report({});
  EXPECT_TRUE(report.schedulers.empty());
  EXPECT_NE(analysis::render_trace_report(report).find("no sim.run"),
            std::string::npos);
}

// ------------------------------------------------------- time formatter --

TEST(TimeFormat, AdaptiveUnits) {
  EXPECT_EQ(common::format_sim_time(0.0), "0.0s");
  EXPECT_EQ(common::format_sim_time(12.34), "12.3s");
  EXPECT_EQ(common::format_sim_time(599.9), "599.9s");
  EXPECT_EQ(common::format_sim_time(600.0), "10.0min");
  EXPECT_EQ(common::format_sim_time(3600.0), "60.0min");
  EXPECT_EQ(common::format_sim_time(7200.0), "2.00h");
  EXPECT_EQ(common::format_sim_time(11700.0), "3.25h");
  EXPECT_EQ(common::format_sim_time(-90.0), "-90.0s");
}

// --------------------------------------------------------- determinism ---

/// (name, cat, detail-args) tuple — everything except tid/wall-time.
using EventKey = std::tuple<std::string, std::string, std::string>;

std::vector<EventKey> event_multiset(const obs::TraceSession& session) {
  std::vector<EventKey> keys;
  for (const auto& e : session.snapshot()) {
    if (e.phase != obs::TracePhase::kComplete &&
        e.phase != obs::TracePhase::kInstant) {
      continue;  // counters sample wall-clock-adjacent state; skip
    }
    std::string args;
    for (int i = 0; i < e.num_args; ++i) {
      args += e.args[i].key;
      args += '=';
      args += std::to_string(e.args[i].value);
      args += ';';
    }
    if (e.str_key != nullptr) {
      args += e.str_key;
      args += '=';
      args += e.str_value;
    }
    keys.emplace_back(e.name, e.cat, args);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(ObsDeterminism, SameSpanMultisetAcrossThreadCounts) {
  const auto cfg = runner::paper_static(24, 42);
  auto run_traced = [&](int threads) {
    ScopedThreadCount tc(threads);
    obs::TraceConfig tcfg;
    tcfg.detail = 2;
    obs::TraceSession session(tcfg);
    Installed in(&session);
    sim::Simulator sim(cfg.sim);
    auto sched = runner::make_scheduler("hadar");
    sim.run(cfg.spec, cfg.trace, *sched);
    return event_multiset(session);
  };
  const auto one = run_traced(1);
  const auto four = run_traced(4);
  EXPECT_EQ(one, four);
}

TEST(ObsDeterminism, TracedRunIsBitIdenticalToUntraced) {
  const auto cfg = runner::paper_static(24, 42);
  auto run_once = [&](bool traced) {
    obs::TraceConfig tcfg;
    tcfg.detail = 2;
    obs::TraceSession session(tcfg);
    if (traced) session.install();
    sim::Simulator sim(cfg.sim);
    auto sched = runner::make_scheduler("hadar");
    auto r = sim.run(cfg.spec, cfg.trace, *sched);
    if (traced) {
      session.uninstall();
      EXPECT_GT(session.event_count(), 0u);
    }
    return r;
  };
  const auto plain = run_once(false);
  const auto traced = run_once(true);
  EXPECT_EQ(plain.makespan, traced.makespan);
  EXPECT_EQ(plain.avg_jct, traced.avg_jct);
  EXPECT_EQ(plain.p95_jct, traced.p95_jct);
  EXPECT_EQ(plain.total_preemptions, traced.total_preemptions);
  EXPECT_EQ(plain.total_reallocations, traced.total_reallocations);
  ASSERT_EQ(plain.jobs.size(), traced.jobs.size());
  for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
    EXPECT_EQ(plain.jobs[i].finish, traced.jobs[i].finish);
    EXPECT_EQ(plain.jobs[i].gpu_seconds, traced.jobs[i].gpu_seconds);
  }
}

// The TSan target: hammer one session from many threads at once. Asserts
// only counts (the interesting property is the absence of data races).
TEST(ObsConcurrency, ParallelRecordingIsRaceFree) {
  obs::TraceSession session;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  {
    Installed in(&session);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&session] {
        for (int i = 0; i < kPerThread; ++i) {
          HADAR_TRACE_SCOPE("test", "worker_op");
          obs::count("ops");
          obs::observe("op.dur", static_cast<double>(i % 7));
          session.counter("inflight", static_cast<double>(i));
        }
      });
    }
    for (auto& t : workers) t.join();
  }
  EXPECT_EQ(session.event_count(),
            static_cast<std::size_t>(kThreads * kPerThread * 2));  // span + counter
  EXPECT_EQ(session.metrics().counter("ops").value(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto hist = session.metrics().histogram("op.dur", obs::duration_buckets_ms())
                        .snapshot();
  EXPECT_EQ(hist.total, static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace hadar
