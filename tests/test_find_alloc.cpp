// Tests for FIND_ALLOC (Algorithm 2 lines 22-34): feasibility, gang sizing,
// bottleneck-aware candidate choice, slowest-eligible-first filling,
// consolidation preferences, communication costs, and config ablations.
#include <gtest/gtest.h>

#include "core/find_alloc.hpp"
#include "test_util.hpp"

namespace hadar::core {
namespace {

using cluster::ClusterSpec;
using cluster::ClusterState;
using cluster::GpuTypeRegistry;
using cluster::JobAllocation;
using test::ContextBuilder;

struct Fixture {
  explicit Fixture(ClusterSpec s) : spec(std::move(s)), builder(&spec), state(&spec) {}

  std::optional<AllocCandidate> run(const sim::JobView& job,
                                    const FindAllocConfig& cfg = {},
                                    UtilityKind kind = UtilityKind::kEffectiveThroughput) {
    const UtilityFunction u(kind, 4.0);
    PriceBook book(spec.num_types(), PricingConfig{});
    auto ctx = builder.build();
    book.compute_bounds(ctx, u);
    return find_alloc(job, state, book, u, /*now=*/0.0, sim::NetworkModel{}, cfg);
  }

  ClusterSpec spec;
  ContextBuilder builder;
  ClusterState state;
};

TEST(FindAlloc, ReturnsGangSizedAllocation) {
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(4, 10000.0, {10.0, 5.0, 1.0});
  const auto ctx = f.builder.build();
  const auto cand = f.run(ctx.jobs[0]);
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->alloc.total_workers(), 4);
  EXPECT_GT(cand->payoff, 0.0);
}

TEST(FindAlloc, PrefersFastTypeOnEmptyCluster) {
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(4, 10000.0, {10.0, 5.0, 1.0});
  const auto ctx = f.builder.build();
  const auto cand = f.run(ctx.jobs[0]);
  ASSERT_TRUE(cand.has_value());
  // All four workers on V100s (type 0): nothing beats stretch 1.
  EXPECT_EQ(cand->alloc.workers_of_type(0), 4);
  EXPECT_EQ(cand->alloc.types_used(), 1);
}

TEST(FindAlloc, MixesTypesWhenFastOnesAreScarce) {
  // 2 V100 free; job wants 3 workers and runs nearly as fast on P100.
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(3, 10000.0, {10.0, 9.5, 1.0});
  const auto ctx = f.builder.build();
  // Occupy 18 of 20 V100s.
  for (NodeId h = 0; h < 4; ++h) f.state.allocate(JobAllocation({{h, 0, 4}}));
  f.state.allocate(JobAllocation({{4, 0, 2}}));
  const auto cand = f.run(ctx.jobs[0]);
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->alloc.total_workers(), 3);
  // P100-level bottleneck (stretch ~1.05) beats waiting; workers must avoid
  // the K80 (bottleneck 1.0 -> stretch 10).
  EXPECT_EQ(cand->alloc.workers_of_type(2), 0);
}

TEST(FindAlloc, SlowestEligibleFirstLeavesFastGpusFree) {
  // Job 0 runs equally well everywhere => the bottleneck is identical for
  // any placement. With a V100-hungry job in the queue (raising the V100
  // price via Eq. 6), the fill must avoid the V100s and leave them for the
  // job that can exploit them.
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(4, 1000.0, {2.0, 2.0, 2.0});
  f.builder.add_job(4, 100000.0, {30.0, 5.0, 1.0});  // values V100 30x
  const auto ctx = f.builder.build();
  const auto cand = f.run(ctx.jobs[0]);
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->alloc.workers_of_type(0), 0);
}

TEST(FindAlloc, InfeasibleWhenGangCannotFit) {
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(61, 1000.0, {1.0, 1.0, 1.0});  // cluster has 60 GPUs
  const auto ctx = f.builder.build();
  EXPECT_FALSE(f.run(ctx.jobs[0]).has_value());
}

TEST(FindAlloc, InfeasibleOnFullCluster) {
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(1, 1000.0, {1.0, 1.0, 1.0});
  const auto ctx = f.builder.build();
  for (NodeId h = 0; h < f.spec.num_nodes(); ++h) {
    for (GpuTypeId r = 0; r < 3; ++r) {
      const int free = f.state.free_count(h, r);
      if (free > 0) f.state.allocate(JobAllocation({{h, r, free}}));
    }
  }
  EXPECT_FALSE(f.run(ctx.jobs[0]).has_value());
}

TEST(FindAlloc, SkipsIncompatibleTypes) {
  // Job can only run on K80s (type 2).
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(4, 1000.0, {0.0, 0.0, 3.0});
  const auto ctx = f.builder.build();
  const auto cand = f.run(ctx.jobs[0]);
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->alloc.workers_of_type(2), 4);
  EXPECT_EQ(cand->alloc.types_used(), 1);
}

TEST(FindAlloc, ConsolidatesWithinANodeWhenPossible) {
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(4, 10000.0, {10.0, 5.0, 1.0});
  const auto ctx = f.builder.build();
  const auto cand = f.run(ctx.jobs[0]);
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->alloc.nodes_used(), 1);  // a 4-GPU node fits the gang
}

TEST(FindAlloc, MultiNodePaysCommunicationCost) {
  // 8 workers cannot fit one 4-GPU node: the candidate spans nodes and its
  // cost must exceed the pure device cost.
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(8, 10000.0, {10.0, 5.0, 1.0});
  const auto ctx = f.builder.build();
  FindAllocConfig cfg;
  cfg.comm_cost_weight = 0.5;
  const auto with_comm = f.run(ctx.jobs[0], cfg);
  cfg.comm_cost_weight = 0.0;
  const auto without = f.run(ctx.jobs[0], cfg);
  ASSERT_TRUE(with_comm.has_value());
  ASSERT_TRUE(without.has_value());
  EXPECT_GT(with_comm->alloc.nodes_used(), 1);
  EXPECT_GT(with_comm->cost, without->cost);
}

TEST(FindAlloc, DisallowMultiNodeRestrictsToOneNode) {
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(8, 10000.0, {10.0, 5.0, 1.0});
  const auto ctx = f.builder.build();
  FindAllocConfig cfg;
  cfg.allow_multi_node = false;
  // 8 workers cannot fit any single 4-GPU node.
  EXPECT_FALSE(f.run(ctx.jobs[0], cfg).has_value());
}

TEST(FindAlloc, DisallowMixedTypesForcesHomogeneity) {
  // 2 V100 + 2 P100 free in total; a 3-worker job must mix or fail.
  auto spec = ClusterSpec::from_counts(GpuTypeRegistry::simulation_default(),
                                       {{std::vector<int>{2, 2, 0}}});
  Fixture f(std::move(spec));
  f.builder.add_job(3, 1000.0, {10.0, 9.0, 1.0});
  const auto ctx = f.builder.build();
  FindAllocConfig strict;
  strict.allow_mixed_types = false;
  EXPECT_FALSE(f.run(ctx.jobs[0], strict).has_value());
  FindAllocConfig loose;
  const auto cand = f.run(ctx.jobs[0], loose);
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->alloc.types_used(), 2);
}

TEST(FindAlloc, CurrentAllocationIsACandidate) {
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(2, 10000.0, {10.0, 5.0, 1.0});
  auto ctx = f.builder.build();
  ctx.jobs[0].current_allocation = JobAllocation({{0, 0, 2}});
  const UtilityFunction u;
  PriceBook book(3, PricingConfig{});
  book.compute_bounds(ctx, u);
  const auto cand =
      find_alloc(ctx.jobs[0], f.state, book, u, 0.0, sim::NetworkModel{}, FindAllocConfig{});
  ASSERT_TRUE(cand.has_value());
  // The current placement is already optimal (V100s, one node): keep it.
  EXPECT_EQ(cand->alloc, ctx.jobs[0].current_allocation);
}

TEST(FindAlloc, EstimatedDurationReflectsBottleneck) {
  Fixture f(ClusterSpec::simulation_default());
  f.builder.add_job(4, 8000.0, {10.0, 5.0, 1.0});
  const auto ctx = f.builder.build();
  const auto cand = f.run(ctx.jobs[0]);
  ASSERT_TRUE(cand.has_value());
  // 8000 iters / (4 workers * 10 it/s) = 200 s on V100s.
  EXPECT_NEAR(cand->est_duration, 200.0, 1e-6);
}

TEST(FindAlloc, HigherUtilizationRaisesCost) {
  Fixture busy(ClusterSpec::simulation_default());
  busy.builder.add_job(4, 10000.0, {10.0, 5.0, 1.0});
  const auto ctx = busy.builder.build();
  const auto before = busy.run(ctx.jobs[0]);
  // Fill 16 of the 20 V100s.
  for (NodeId h = 0; h < 4; ++h) busy.state.allocate(JobAllocation({{h, 0, 4}}));
  const auto after = busy.run(ctx.jobs[0]);
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->cost, before->cost);
}

}  // namespace
}  // namespace hadar::core
