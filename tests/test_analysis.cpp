// Tests for the analysis module: CSV/Markdown comparison exports, per-job
// dumps, and the ASCII Gantt timeline renderer.
#include <gtest/gtest.h>

#include "analysis/report.hpp"
#include "analysis/timeline.hpp"
#include "common/csv.hpp"
#include "runner/experiment.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

namespace hadar::analysis {
namespace {

struct Fixture : public ::testing::Test {
  static void SetUpTestSuite() {
    cfg_ = new runner::ExperimentConfig();
    cfg_->spec = cluster::ClusterSpec::simulation_default();
    static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
    workload::TraceGenerator gen(&zoo, &cfg_->spec.types());
    workload::TraceGenConfig t;
    t.num_jobs = 12;
    t.seed = 77;
    t.large_lo = 1.0;
    t.large_hi = 3.0;
    t.xlarge_lo = 2.0;
    t.xlarge_hi = 4.0;
    cfg_->trace = gen.generate(t);
    cfg_->sim.enable_event_log = true;
    runs_ = new std::vector<runner::SchedulerRun>(
        runner::compare(*cfg_, {"hadar", "gavel"}));
  }
  static void TearDownTestSuite() {
    delete runs_;
    delete cfg_;
  }
  static runner::ExperimentConfig* cfg_;
  static std::vector<runner::SchedulerRun>* runs_;
};
runner::ExperimentConfig* Fixture::cfg_ = nullptr;
std::vector<runner::SchedulerRun>* Fixture::runs_ = nullptr;

TEST_F(Fixture, ComparisonCsvParsesBack) {
  std::vector<NamedResult> named;
  for (const auto& r : *runs_) named.push_back({r.scheduler, &r.result});
  const auto doc = common::parse_csv(comparison_csv(named));
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "Hadar");
  EXPECT_EQ(doc.rows[1][0], "Gavel");
  const int col = doc.column("avg_jct_s");
  ASSERT_GE(col, 0);
  EXPECT_GT(std::stod(doc.rows[0][static_cast<std::size_t>(col)]), 0.0);
}

TEST_F(Fixture, ComparisonMarkdownHasTableStructure) {
  std::vector<NamedResult> named;
  for (const auto& r : *runs_) named.push_back({r.scheduler, &r.result});
  const std::string md = comparison_markdown(named);
  EXPECT_NE(md.find("| scheduler |"), std::string::npos);
  EXPECT_NE(md.find("|---|"), std::string::npos);
  EXPECT_NE(md.find("| Hadar |"), std::string::npos);
}

TEST_F(Fixture, PerJobCsvHasOneRowPerJob) {
  const auto doc = common::parse_csv(per_job_csv(runs_->front().result));
  EXPECT_EQ(doc.rows.size(), cfg_->trace.jobs.size());
  const int col = doc.column("jct_s");
  ASSERT_GE(col, 0);
  for (const auto& row : doc.rows) {
    EXPECT_GT(std::stod(row[static_cast<std::size_t>(col)]), 0.0);  // all finished
  }
}

TEST_F(Fixture, ReportRejectsNullResults) {
  EXPECT_THROW(comparison_csv({{"x", nullptr}}), std::invalid_argument);
}

TEST(Gantt, RendersRunningAndFinishPhases) {
  // Re-run a tiny sim with the event log on and render it.
  runner::ExperimentConfig cfg;
  cfg.spec = cluster::ClusterSpec::simulation_default();
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  cfg.trace.jobs = {zoo.make_job("ResNet-18", cfg.spec.types(), 2, 3600.0),
                    zoo.make_job("LSTM", cfg.spec.types(), 4, 7200.0)};
  cfg.trace.finalize();
  cfg.sim.enable_event_log = true;
  sim::Simulator sim(cfg.sim);
  auto sched = runner::make_scheduler("hadar");
  sim.run(cfg.spec, cfg.trace, *sched);

  const std::string g = ascii_gantt(sim.event_log(), cfg.trace);
  EXPECT_NE(g.find("J0"), std::string::npos);
  EXPECT_NE(g.find("J1"), std::string::npos);
  EXPECT_NE(g.find('#'), std::string::npos);  // something ran
  EXPECT_NE(g.find("legend:"), std::string::npos);
}

TEST(Gantt, EmptyLogHandled) {
  sim::EventLog log;
  workload::Trace t;
  EXPECT_EQ(ascii_gantt(log, t), "(empty event log)\n");
}

TEST(Gantt, MaxJobsTruncates) {
  runner::ExperimentConfig cfg;
  cfg.spec = cluster::ClusterSpec::simulation_default();
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  for (int i = 0; i < 6; ++i) {
    cfg.trace.jobs.push_back(zoo.make_job("ResNet-18", cfg.spec.types(), 1, 1800.0));
  }
  cfg.trace.finalize();
  cfg.sim.enable_event_log = true;
  sim::Simulator sim(cfg.sim);
  auto sched = runner::make_scheduler("srtf");
  sim.run(cfg.spec, cfg.trace, *sched);
  GanttOptions opts;
  opts.max_jobs = 3;
  const std::string g = ascii_gantt(sim.event_log(), cfg.trace, opts);
  EXPECT_NE(g.find("more jobs"), std::string::npos);
}

}  // namespace
}  // namespace hadar::analysis
