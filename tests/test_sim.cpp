// Simulator-engine tests: round mechanics, completion timing, checkpoint
// penalties, gang/capacity validation, bottleneck progress, metrics.
#include <gtest/gtest.h>

#include "baselines/srtf.hpp"
#include "cluster/cluster_state.hpp"
#include "sim/simulator.hpp"

namespace hadar::sim {
namespace {

using cluster::ClusterSpec;
using cluster::GpuTypeRegistry;
using cluster::JobAllocation;
using workload::JobSpec;
using workload::Trace;

// A single-type 1-node cluster with `gpus` devices.
ClusterSpec tiny_cluster(int gpus = 4) {
  return ClusterSpec::from_counts(GpuTypeRegistry({{"G", 1.0}}), {{std::vector<int>{gpus}}});
}

JobSpec simple_job(double iters, int workers = 1, double rate = 1.0, Seconds arrival = 0.0) {
  JobSpec j;
  j.model = "unit";
  j.arrival = arrival;
  j.num_workers = workers;
  j.epochs = static_cast<std::int64_t>(iters);
  j.chunks_per_epoch = 1;
  j.throughput = {rate};
  return j;
}

// Scheduler that always gives every job its gang on node 0 (tests drive it
// on clusters where that fits).
class GreedyAll : public IScheduler {
 public:
  std::string name() const override { return "greedy-all"; }
  cluster::AllocationMap schedule(const SchedulerContext& ctx) override {
    cluster::ClusterState st(ctx.spec);
    cluster::AllocationMap m;
    for (const auto& j : ctx.jobs) {
      JobAllocation a({{0, 0, j.spec->num_workers}});
      if (st.can_allocate(a)) {
        st.allocate(a);
        m.emplace(j.id(), a);
      }
    }
    return m;
  }
};

// Deliberately broken schedulers for validation tests.
class OverCommit : public IScheduler {
 public:
  std::string name() const override { return "overcommit"; }
  cluster::AllocationMap schedule(const SchedulerContext& ctx) override {
    cluster::AllocationMap m;
    for (const auto& j : ctx.jobs) {
      m.emplace(j.id(), JobAllocation({{0, 0, 1000}}));
    }
    return m;
  }
};

class HalfGang : public IScheduler {
 public:
  std::string name() const override { return "half-gang"; }
  cluster::AllocationMap schedule(const SchedulerContext& ctx) override {
    cluster::AllocationMap m;
    for (const auto& j : ctx.jobs) {
      if (j.spec->num_workers > 1) {
        m.emplace(j.id(), JobAllocation({{0, 0, j.spec->num_workers - 1}}));
      }
    }
    return m;
  }
};

class NeverSchedule : public IScheduler {
 public:
  std::string name() const override { return "never"; }
  cluster::AllocationMap schedule(const SchedulerContext&) override { return {}; }
};

TEST(Simulator, SingleJobFinishTimeIsExact) {
  // 500 iterations at 1 it/s on 1 worker: 500 s of compute. Round length
  // 100 s; first round charges a 10 s reallocation penalty (new allocation).
  // Rounds 1-5 advance 90+100+100+100+100 = 490; finish 10 s into round 6's
  // compute, i.e. at t=510.
  SimConfig cfg;
  cfg.round_length = 100.0;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(500)};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  ASSERT_TRUE(r.all_finished());
  EXPECT_NEAR(r.jobs[0].finish, 510.0, 1e-6);
  EXPECT_NEAR(r.makespan, 510.0, 1e-6);
  EXPECT_EQ(r.jobs[0].first_start, 0.0);
}

TEST(Simulator, NoPenaltyWhenConfiguredOff) {
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.flat_reallocation_penalty = 0.0;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(500)};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  EXPECT_NEAR(r.jobs[0].finish, 500.0, 1e-6);
}

TEST(Simulator, GangProgressScalesWithWorkers) {
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.flat_reallocation_penalty = 0.0;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(400, /*workers=*/4)};  // aggregate 4 it/s
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  EXPECT_NEAR(r.jobs[0].finish, 100.0, 1e-6);
}

TEST(Simulator, ArrivalDelaysVisibilityToRoundBoundary) {
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.flat_reallocation_penalty = 0.0;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(100, 1, 1.0, /*arrival=*/150.0)};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  // Arrives at 150 -> first visible at round boundary 200 -> finish 300.
  EXPECT_EQ(r.jobs[0].first_start, 200.0);
  EXPECT_NEAR(r.jobs[0].finish, 300.0, 1e-6);
  EXPECT_NEAR(r.jobs[0].queueing_delay(), 50.0, 1e-6);
}

TEST(Simulator, CapacityViolationThrows) {
  Simulator sim;
  Trace t;
  t.jobs = {simple_job(100, 1000)};
  t.finalize();
  OverCommit sched;
  EXPECT_THROW(sim.run(tiny_cluster(), t, sched), std::runtime_error);
}

TEST(Simulator, GangViolationThrows) {
  Simulator sim;
  Trace t;
  t.jobs = {simple_job(100, 2)};
  t.finalize();
  HalfGang sched;
  EXPECT_THROW(sim.run(tiny_cluster(), t, sched), std::runtime_error);
}

TEST(Simulator, StallDetectionFires) {
  SimConfig cfg;
  cfg.round_length = 1000.0;  // keep the stall loop fast
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(100)};
  t.finalize();
  NeverSchedule sched;
  EXPECT_THROW(sim.run(tiny_cluster(), t, sched), std::runtime_error);
}

TEST(Simulator, HorizonStopsEarly) {
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.horizon = 250.0;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(100000)};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  EXPECT_FALSE(r.all_finished());
  EXPECT_FALSE(r.jobs[0].finished());
  EXPECT_LE(r.rounds, 3);
}

TEST(Simulator, BottleneckThroughputGovernsMixedAllocations) {
  // Two types with rates 4 and 1; a 2-worker job placed across both must
  // advance at 2 * min(4,1) = 2 it/s (constraint 1b).
  auto spec = ClusterSpec::from_counts(GpuTypeRegistry({{"F", 4.0}, {"S", 1.0}}),
                                       {{std::vector<int>{1, 1}}});
  class MixedSched : public IScheduler {
   public:
    std::string name() const override { return "mixed"; }
    cluster::AllocationMap schedule(const SchedulerContext& ctx) override {
      cluster::AllocationMap m;
      for (const auto& j : ctx.jobs) {
        m.emplace(j.id(), JobAllocation({{0, 0, 1}, {0, 1, 1}}));
      }
      return m;
    }
  } sched;

  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.flat_reallocation_penalty = 0.0;
  Simulator sim(cfg);
  Trace t;
  JobSpec j = simple_job(200, 2);
  j.throughput = {4.0, 1.0};
  t.jobs = {j};
  t.finalize();
  const auto r = sim.run(spec, t, sched);
  EXPECT_NEAR(r.jobs[0].finish, 100.0, 1e-6);  // 200 iters / (2 * 1 it/s)
}

TEST(Simulator, NetworkPenaltyAppliesPerExtraNode) {
  auto spec = ClusterSpec::from_counts(GpuTypeRegistry({{"G", 1.0}}),
                                       {std::vector<int>{1}, std::vector<int>{1}});
  class SplitSched : public IScheduler {
   public:
    std::string name() const override { return "split"; }
    cluster::AllocationMap schedule(const SchedulerContext& ctx) override {
      cluster::AllocationMap m;
      for (const auto& j : ctx.jobs) {
        m.emplace(j.id(), JobAllocation({{0, 0, 1}, {1, 0, 1}}));
      }
      return m;
    }
  } sched;

  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.flat_reallocation_penalty = 0.0;
  cfg.network.penalty_factor = 0.5;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(100, 2)};  // 2 workers at 1 it/s, penalty 0.5 -> 1 it/s
  t.finalize();
  const auto r = sim.run(spec, t, sched);
  EXPECT_NEAR(r.jobs[0].finish, 100.0, 1e-6);
}

TEST(Simulator, PerModelCheckpointCostsApply) {
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.use_flat_reallocation_penalty = false;
  Simulator sim(cfg);
  Trace t;
  JobSpec j = simple_job(500);
  j.checkpoint_save = 2.0;
  j.checkpoint_load = 18.0;  // 20 s on allocation change
  t.jobs = {j};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  // First round loses 20 s: finish at 520.
  EXPECT_NEAR(r.jobs[0].finish, 520.0, 1e-6);
}

TEST(Simulator, PeriodicSaveChargedWhenEnabled) {
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.use_flat_reallocation_penalty = false;
  cfg.charge_periodic_save = true;
  Simulator sim(cfg);
  Trace t;
  JobSpec j = simple_job(500);
  j.checkpoint_save = 5.0;
  j.checkpoint_load = 15.0;
  t.jobs = {j};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  // Round 1: 20 s penalty, 80 iters. Rounds 2..6: 5 s save, 95 iters each.
  // After round 5: 80 + 4*95 = 460. Round 6: 5 s save then 40 iters -> 545.
  EXPECT_NEAR(r.jobs[0].finish, 545.0, 1e-6);
}

TEST(Simulator, UtilizationMetricsComputed) {
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.flat_reallocation_penalty = 0.0;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(400, 4)};  // exactly one full round on 4 GPUs
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(4), t, sched);
  EXPECT_NEAR(r.gpu_utilization, 1.0, 1e-9);
  EXPECT_NEAR(r.avg_job_utilization, 1.0, 1e-9);
}

TEST(Simulator, PreemptionAndReallocationCounted) {
  // Alternates a job between two nodes every round.
  auto spec = ClusterSpec::from_counts(GpuTypeRegistry({{"G", 1.0}}),
                                       {std::vector<int>{1}, std::vector<int>{1}});
  class Flapper : public IScheduler {
   public:
    std::string name() const override { return "flapper"; }
    cluster::AllocationMap schedule(const SchedulerContext& ctx) override {
      ++round_;
      cluster::AllocationMap m;
      for (const auto& j : ctx.jobs) {
        m.emplace(j.id(), JobAllocation({{round_ % 2, 0, 1}}));
      }
      return m;
    }
    void reset() override { round_ = 0; }

   private:
    int round_ = 0;
  } sched;

  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.flat_reallocation_penalty = 10.0;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(270)};
  t.finalize();
  const auto r = sim.run(spec, t, sched);
  ASSERT_TRUE(r.all_finished());
  EXPECT_GE(r.total_reallocations, 2);
  EXPECT_GT(r.realloc_round_fraction, 0.9);
}

TEST(Simulator, PreemptThenResumeAccounting) {
  // Rounds: run, paused, run, run. The pause is one preemption; the comeback
  // is one reallocation logged as a distinct kResume event (the job resumes
  // from empty rather than moving between placements).
  class PauseSecondRound : public IScheduler {
   public:
    std::string name() const override { return "pause-once"; }
    cluster::AllocationMap schedule(const SchedulerContext& ctx) override {
      ++round_;
      if (round_ == 2) return {};
      cluster::AllocationMap m;
      for (const auto& j : ctx.jobs) m.emplace(j.id(), JobAllocation({{0, 0, 1}}));
      return m;
    }
    void reset() override { round_ = 0; }

   private:
    int round_ = 0;
  } sched;

  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.enable_event_log = true;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(230)};
  t.finalize();
  const auto r = sim.run(tiny_cluster(1), t, sched);
  ASSERT_TRUE(r.all_finished());
  // t=0: 10 s penalty, 90 iters. t=100: paused. t=200: resume penalty, 90
  // more (180). t=300: 50 left -> finish 350.
  EXPECT_NEAR(r.jobs[0].finish, 350.0, 1e-6);
  EXPECT_EQ(r.jobs[0].preemptions, 1);
  EXPECT_EQ(r.jobs[0].reallocations, 1);
  EXPECT_EQ(r.total_preemptions, 1);
  // total_reallocations counts every round that paid a setup penalty,
  // including the first start: t=0 start + t=200 resume.
  EXPECT_EQ(r.total_reallocations, 2);

  const auto& log = sim.event_log();
  EXPECT_EQ(log.of_kind(EventKind::kPreempt).size(), 1u);
  EXPECT_EQ(log.of_kind(EventKind::kResume).size(), 1u);
  EXPECT_TRUE(log.of_kind(EventKind::kReallocate).empty());
  EXPECT_EQ(log.of_kind(EventKind::kPreempt)[0].time, 100.0);
  EXPECT_EQ(log.of_kind(EventKind::kResume)[0].time, 200.0);
}

TEST(Simulator, NeverStartedAndUnfinishedJobsReported) {
  // 1-GPU cluster, two jobs, hard horizon: job 0 monopolizes the device and
  // job 1 never starts; neither finishes. Both must be visible in the
  // result rather than silently dropped from the averages.
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.horizon = 250.0;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(100000), simple_job(100000)};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(1), t, sched);
  EXPECT_FALSE(r.all_finished());
  EXPECT_EQ(r.num_never_started, 1);
  EXPECT_EQ(r.num_unfinished, 2);
  EXPECT_EQ(r.jobs[1].first_start, -1.0);
}

TEST(Simulator, CompletedRunHasNoUnfinishedJobs) {
  Simulator sim;
  Trace t;
  t.jobs = {simple_job(10)};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  ASSERT_TRUE(r.all_finished());
  EXPECT_EQ(r.num_never_started, 0);
  EXPECT_EQ(r.num_unfinished, 0);
}

TEST(EventLog, SortedTimelineIsMonotoneDespiteInsertionOrder) {
  // Job 0 finishes at t=160, recorded during the round starting at t=100;
  // job 1's arrival at t=150 is only recorded when admitted at t=200. Raw
  // insertion order is therefore non-monotone; sorted()/to_string() must
  // restore (time, kind, job) order.
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.enable_event_log = true;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(150), simple_job(50, 1, 1.0, /*arrival=*/150.0)};
  t.finalize();
  GreedyAll sched;
  sim.run(tiny_cluster(1), t, sched);
  const auto& log = sim.event_log();

  bool raw_monotone = true;
  for (std::size_t i = 1; i < log.events().size(); ++i) {
    if (log.events()[i].time < log.events()[i - 1].time) raw_monotone = false;
  }
  EXPECT_FALSE(raw_monotone);  // the regression this test pins down

  const auto sorted = log.sorted();
  ASSERT_EQ(sorted.size(), log.events().size());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i].time, sorted[i - 1].time);
  }
  // The rendered timeline shows job 1's arrival (150) before job 0's finish.
  const std::string text = log.to_string();
  EXPECT_LT(text.find("arrival job 1"), text.find("finish job 0"));
}

TEST(Simulator, EventLogRecordsLifecycle) {
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.enable_event_log = true;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(50)};
  t.finalize();
  GreedyAll sched;
  sim.run(tiny_cluster(), t, sched);
  const auto& log = sim.event_log();
  EXPECT_EQ(log.of_kind(EventKind::kArrival).size(), 1u);
  EXPECT_EQ(log.of_kind(EventKind::kStart).size(), 1u);
  EXPECT_EQ(log.of_kind(EventKind::kFinish).size(), 1u);
  EXPECT_NE(log.to_string().find("finish job 0"), std::string::npos);
}

TEST(Simulator, StragglerSlowdownDelaysCompletion) {
  SimConfig slow;
  slow.round_length = 100.0;
  slow.flat_reallocation_penalty = 0.0;
  slow.straggler.probability = 1.0;  // every round struck
  slow.straggler.slowdown = 0.5;
  Simulator sim(slow);
  Trace t;
  t.jobs = {simple_job(100)};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  EXPECT_NEAR(r.jobs[0].finish, 200.0, 1e-6);  // half speed
}

TEST(Simulator, JitterIsMeanPreservingOnAverage) {
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.flat_reallocation_penalty = 0.0;
  cfg.throughput_jitter = 0.2;
  Simulator sim(cfg);
  Trace t;
  for (int i = 0; i < 50; ++i) t.jobs.push_back(simple_job(5000, 1, 1.0));
  t.finalize();
  // 50 single-GPU jobs on a 50-GPU node; each ideally 5000 s.
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(50), t, sched);
  ASSERT_TRUE(r.all_finished());
  EXPECT_NEAR(r.avg_jct, 5000.0, 250.0);
}

TEST(Simulator, ObservationNoisePerturbsSchedulerViewOnly) {
  // With noise, the scheduler sees wrong rates but true progress is exact:
  // completion time unchanged for a fixed allocation policy.
  SimConfig cfg;
  cfg.round_length = 100.0;
  cfg.flat_reallocation_penalty = 0.0;
  cfg.observation_noise = 0.5;
  Simulator sim(cfg);
  Trace t;
  t.jobs = {simple_job(500)};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  EXPECT_NEAR(r.jobs[0].finish, 500.0, 1e-6);
}

TEST(Simulator, RejectsBadConfig) {
  SimConfig cfg;
  cfg.round_length = 0.0;
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
  cfg = SimConfig{};
  cfg.network.penalty_factor = 0.0;
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
  cfg = SimConfig{};
  cfg.straggler.probability = 2.0;
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
}

TEST(Simulator, SchedulerTimingRecorded) {
  Simulator sim;
  Trace t;
  t.jobs = {simple_job(10)};
  t.finalize();
  GreedyAll sched;
  const auto r = sim.run(tiny_cluster(), t, sched);
  EXPECT_GE(r.scheduler_calls, 1);
  EXPECT_GE(r.scheduler_seconds, 0.0);
}

TEST(SimResult, CdfAndAccessors) {
  Simulator sim;
  Trace t;
  t.jobs = {simple_job(10), simple_job(2000, 1, 1.0, 0.0)};
  t.finalize();
  baselines::SrtfScheduler sched;
  const auto r = sim.run(tiny_cluster(2), t, sched);
  ASSERT_TRUE(r.all_finished());
  EXPECT_EQ(r.finish_times().size(), 2u);
  EXPECT_EQ(r.jcts().size(), 2u);
  const auto cdf = r.completion_cdf(10);
  ASSERT_EQ(cdf.size(), 10u);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

}  // namespace
}  // namespace hadar::sim
