// Tests for DP_allocation (Algorithm 2): admission filtering, capacity
// safety along include/exclude branches, payoff maximization (include vs
// exclude), the greedy tail, beam degradation, and the Fig. 1 motivating
// example (Hadar's task-level mixing beating job-level allocation).
#include <gtest/gtest.h>

#include "core/dp_allocation.hpp"
#include "test_util.hpp"

namespace hadar::core {
namespace {

using cluster::ClusterSpec;
using cluster::ClusterState;
using cluster::GpuTypeRegistry;
using test::ContextBuilder;

DpResult run_dp(const sim::SchedulerContext& ctx, ClusterState& state,
                const DpConfig& cfg = {},
                UtilityKind kind = UtilityKind::kEffectiveThroughput) {
  const UtilityFunction u(kind, static_cast<double>(ctx.jobs.size()));
  PriceBook book(ctx.spec->num_types(), PricingConfig{});
  book.compute_bounds(ctx, u);
  std::vector<const sim::JobView*> queue;
  for (const auto& j : ctx.jobs) queue.push_back(&j);
  return dp_allocation(queue, state, book, u, ctx.now, sim::NetworkModel{}, cfg);
}

TEST(DpAllocation, SchedulesEveryJobWhenCapacitySuffices) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  for (int i = 0; i < 5; ++i) b.add_job(4, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  ClusterState state(&spec);
  const auto r = run_dp(ctx, state);
  EXPECT_EQ(r.jobs_scheduled, 5);
  EXPECT_EQ(r.allocs.size(), 5u);
  EXPECT_GT(r.total_payoff, 0.0);
  // The caller's state must be unchanged.
  EXPECT_EQ(state.total_free(), 60);
}

TEST(DpAllocation, ResultRespectsCapacity) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  for (int i = 0; i < 30; ++i) b.add_job(4, 5000.0, {10.0, 5.0, 1.0});  // 120 wanted, 60 exist
  const auto ctx = b.build();
  ClusterState state(&spec);
  const auto r = run_dp(ctx, state);
  EXPECT_LE(r.jobs_scheduled, 15);
  cluster::AllocationMap all = r.allocs;
  EXPECT_TRUE(cluster::validate(spec, all).empty());
  int total = 0;
  for (const auto& [id, a] : all) {
    EXPECT_EQ(a.total_workers(), 4);  // gang semantics
    total += a.total_workers();
  }
  EXPECT_LE(total, 60);
}

TEST(DpAllocation, HonorsPreExistingAllocations) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  for (int i = 0; i < 20; ++i) b.add_job(4, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  ClusterState state(&spec);
  // Pin 40 of the 60 devices.
  for (NodeId h = 0; h < 10; ++h) {
    state.allocate(cluster::JobAllocation({{h, h < 5 ? 0 : 1, 4}}));
  }
  const auto r = run_dp(ctx, state);
  int total = 0;
  for (const auto& [id, a] : r.allocs) total += a.total_workers();
  EXPECT_LE(total, 20);
  EXPECT_EQ(state.total_free(), 20);  // state restored
}

TEST(DpAllocation, PrefersHigherTotalPayoffOverGreedyInclude) {
  // One 4-GPU node. Greedy include-first would give the first job (a poor
  // fit, stretch 5) the node; the DP exclude branch discovers that the later
  // fast job is worth more.
  const auto spec =
      ClusterSpec::from_counts(GpuTypeRegistry({{"G", 1.0}}), {{std::vector<int>{4}}});
  ContextBuilder b(&spec);
  b.add_job(4, 1000.0, {1.0}).with_progress(0.0);  // slow on this type
  b.add_job(4, 1000.0, {10.0});                    // 10x faster here
  auto ctx = b.build();
  // Make job 0's only type slow relative to its own best (simulate: its
  // declared best rate is elsewhere, so inverse stretch here is low).
  // To model that, give job 0 a tiny rate (stretch >> 1 wrt itself is 1, so
  // instead rely on capacity: both want all 4 devices; job 1 has more
  // remaining value per second).
  ClusterState state(&spec);
  DpConfig cfg;
  cfg.beam_width = 8;
  const auto r = run_dp(ctx, state, cfg);
  EXPECT_EQ(r.jobs_scheduled, 1);
  ASSERT_EQ(r.allocs.size(), 1u);
  // Either job yields stretch 1 on its only type; payoffs tie at W=4 scale,
  // so the DP keeps the first-priority one — the important property is that
  // exactly one gang fits and capacity holds.
  EXPECT_EQ(r.allocs.begin()->second.total_workers(), 4);
}

TEST(DpAllocation, GreedyTailHandlesJobsBeyondWindow) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  for (int i = 0; i < 30; ++i) b.add_job(1, 1000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  ClusterState state(&spec);
  DpConfig cfg;
  cfg.queue_window = 4;  // 26 jobs fall into the greedy tail
  const auto r = run_dp(ctx, state, cfg);
  EXPECT_EQ(r.jobs_scheduled, 30);
  EXPECT_EQ(r.stats.greedy_tail_jobs, 26);
}

TEST(DpAllocation, BeamWidthOneIsPureGreedy) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  for (int i = 0; i < 10; ++i) b.add_job(4, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  ClusterState state(&spec);
  DpConfig greedy;
  greedy.beam_width = 1;
  const auto r = run_dp(ctx, state, greedy);
  EXPECT_EQ(r.jobs_scheduled, 10);  // 40 of 60 devices: everything fits
}

TEST(DpAllocation, WiderBeamNeverLosesPayoff) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  for (int i = 0; i < 25; ++i) {
    b.add_job(1 + i % 8, 2000.0 * (1 + i % 5), {10.0, 5.0, 1.0});
  }
  const auto ctx = b.build();
  ClusterState s1(&spec), s2(&spec);
  DpConfig narrow;
  narrow.beam_width = 1;
  DpConfig wide;
  wide.beam_width = 64;
  const auto rn = run_dp(ctx, s1, narrow);
  const auto rw = run_dp(ctx, s2, wide);
  EXPECT_GE(rw.total_payoff, rn.total_payoff - 1e-9);
}

TEST(DpAllocation, QueueWindowZeroIsPureGreedyTail) {
  // queue_window = 0: no branching at all, every job flows through the
  // greedy tail in priority order.
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  for (int i = 0; i < 12; ++i) b.add_job(4, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  ClusterState state(&spec);
  DpConfig cfg;
  cfg.queue_window = 0;
  const auto r = run_dp(ctx, state, cfg);
  EXPECT_EQ(r.stats.states_explored, 0);
  EXPECT_EQ(r.stats.greedy_tail_jobs, 12);
  EXPECT_EQ(r.jobs_scheduled, 12);  // 48 of 60 devices: everything fits
  EXPECT_EQ(state.total_free(), 60);
}

TEST(DpAllocation, FullClusterAtRoundStartSchedulesNothing) {
  const auto spec = ClusterSpec::simulation_default();
  ContextBuilder b(&spec);
  for (int i = 0; i < 6; ++i) b.add_job(2, 5000.0, {10.0, 5.0, 1.0});
  const auto ctx = b.build();
  ClusterState state(&spec);
  // Saturate every device before the decision.
  for (NodeId h = 0; h < spec.num_nodes(); ++h) {
    for (GpuTypeId t = 0; t < spec.num_types(); ++t) {
      const int cap = spec.node(h).capacity(t);
      if (cap > 0) state.allocate(cluster::JobAllocation({{h, t, cap}}));
    }
  }
  ASSERT_TRUE(state.is_full());
  const auto r = run_dp(ctx, state);
  EXPECT_EQ(r.jobs_scheduled, 0);
  EXPECT_TRUE(r.allocs.empty());
  EXPECT_EQ(r.total_payoff, 0.0);
  EXPECT_EQ(r.stats.states_explored, 0);  // include branches never attempted
  EXPECT_TRUE(state.is_full());           // caller's state untouched
}

TEST(DpAllocation, EmptyQueueWithWindowZeroAndPinnedState) {
  // Degenerate corner: nothing to decide, window 0, cluster partially used.
  const auto spec = ClusterSpec::simulation_default();
  ClusterState state(&spec);
  state.allocate(cluster::JobAllocation({{0, 0, 2}}));
  const UtilityFunction u;
  PriceBook book(3, PricingConfig{});
  DpConfig cfg;
  cfg.queue_window = 0;
  const auto r = dp_allocation({}, state, book, u, 0.0, sim::NetworkModel{}, cfg);
  EXPECT_EQ(r.jobs_scheduled, 0);
  EXPECT_TRUE(r.allocs.empty());
  EXPECT_EQ(r.stats.greedy_tail_jobs, 0);
  EXPECT_EQ(state.free_count(0, 0), spec.node(0).capacity(0) - 2);
}

TEST(DpAllocation, EmptyQueueIsEmptyResult) {
  const auto spec = ClusterSpec::simulation_default();
  ClusterState state(&spec);
  const UtilityFunction u;
  PriceBook book(3, PricingConfig{});
  const auto r = dp_allocation({}, state, book, u, 0.0, sim::NetworkModel{}, DpConfig{});
  EXPECT_EQ(r.jobs_scheduled, 0);
  EXPECT_TRUE(r.allocs.empty());
}

TEST(DpAllocation, RejectsBadConfig) {
  const auto spec = ClusterSpec::simulation_default();
  ClusterState state(&spec);
  const UtilityFunction u;
  PriceBook book(3, PricingConfig{});
  DpConfig bad;
  bad.beam_width = 0;
  EXPECT_THROW(dp_allocation({}, state, book, u, 0.0, sim::NetworkModel{}, bad),
               std::invalid_argument);
}

// ------------------------------------------------- Fig. 1 toy example ----
// Cluster: 2 V100, 3 P100, 1 K80. J1 wants 3 GPUs, J2 and J3 want 2.
// Reconstructed throughputs (DESIGN.md): per-worker rates such that J1 on
// 2xV100 + 1xK80 achieves min(40, 30) = 30 aggregate (the paper's round-1
// outcome) while a job-level scheduler cannot place J1 on 3 same-type GPUs
// of its preferred types at all (only P100 has 3).

ClusterSpec fig1_cluster() {
  // One node per GPU pool keeps the toy faithful to "2 V100, 3 P100, 1 K80".
  return ClusterSpec::from_counts(
      GpuTypeRegistry::simulation_default(),
      {std::vector<int>{2, 0, 0}, std::vector<int>{0, 3, 0}, std::vector<int>{0, 0, 1}});
}

TEST(DpAllocationFig1, HadarMixesTypesForJ1) {
  const auto spec = fig1_cluster();
  ContextBuilder b(&spec);
  b.add_job(3, 80.0 * 100.0, {20.0, 15.0, 10.0});  // J1: 80 epochs
  b.add_job(2, 30.0 * 100.0, {10.0, 7.5, 5.0});    // J2: 30 epochs
  b.add_job(2, 50.0 * 100.0, {5.0, 5.0, 6.25});    // J3: 50 epochs
  const auto ctx = b.build();
  ClusterState state(&spec);
  const auto r = run_dp(ctx, state);
  // All six GPUs are usable: Hadar schedules all three gangs (3+2+1... no:
  // 3+2+2 = 7 > 6, so exactly two jobs fit).
  int workers = 0;
  for (const auto& [id, a] : r.allocs) workers += a.total_workers();
  EXPECT_LE(workers, 6);
  EXPECT_GE(r.jobs_scheduled, 2);
  // J1 (3 workers) can only be placed by mixing pools: V100x2+K80 or
  // P100x3 — both valid; a job-level homogeneous scheduler would be limited
  // to P100x3.
  const auto it = r.allocs.find(0);
  if (it != r.allocs.end()) {
    EXPECT_EQ(it->second.total_workers(), 3);
  }
}

TEST(DpAllocationFig1, MixedAllocationMatchesPaperThroughput) {
  // Force the paper's round-1 placement of J1 and check the aggregate rate.
  const auto spec = fig1_cluster();
  ContextBuilder b(&spec);
  b.add_job(3, 8000.0, {20.0, 15.0, 10.0});
  const auto ctx = b.build();
  cluster::JobAllocation paper_alloc({{0, 0, 2}, {2, 2, 1}});  // 2 V100 + 1 K80
  const double x = paper_alloc.bottleneck_throughput(ctx.jobs[0].throughput);
  // Bottleneck is the K80 at 10 it/s; aggregate = 3 * 10 = 30 — the paper's
  // min(40, 30) = 30.
  EXPECT_DOUBLE_EQ(x * 3, 30.0);
}

}  // namespace
}  // namespace hadar::core
