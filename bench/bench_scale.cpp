// Scale bench for sharded hierarchical scheduling: drives the RoundEngine
// directly with Hadar on clusters from ~100 to 10,000 nodes and job sets
// from 1k to 100k, unsharded vs cell-sharded (sim/sharded.hpp), and reports
// rounds/second plus per-round p50/p99 latency. Emits BENCH_SCALE.json and
// feeds the calibration-normalized scale_round_* metrics into the perf gate
// (bench/baseline.json), so a regression in the sharded hot path fails CI
// like any other perf metric.
//
// Sweep (mode x config):
//   ~100 nodes / 1k jobs     flat + sharded
//   ~1k  nodes / 10k jobs    flat + sharded   (the >=2x speedup comparison)
//   ~10k nodes / 100k jobs   sharded; flat only with HADAR_SCALE_FULL=1
//                            (an unsharded 10k-node round is minutes, not
//                            milliseconds — exactly the wall the sharding
//                            decomposition removes)
//
// Knobs: HADAR_SCALE_ROUNDS (measured rounds per config, default 4),
// HADAR_SCALE_FULL=1 (adds the unsharded 10k-node run),
// HADAR_SCALE_MAX_NODES (skip sweep configs above this node count; the CI
// gate self-test caps at ~1k so the injected slowdown trips on the 1k
// metrics without paying for the 10k run twice), HADAR_THREADS,
// HADAR_CELLS (0 = auto; applies to the sharded runs), plus the perf-gate
// family HADAR_PERF_BASELINE / HADAR_PERF_GATE / HADAR_PERF_INJECT_SLOWDOWN
// / HADAR_PERF_WRITE_BASELINE (see perf_gate.hpp).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "runner/experiment.hpp"
#include "perf_gate.hpp"
#include "sim/round_engine.hpp"
#include "sim/sharded.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

using namespace hadar;

namespace {

struct ScaleResult {
  std::string mode;  ///< "flat" or "sharded"
  int nodes = 0;
  int jobs = 0;
  int cells = 1;
  int rounds = 0;
  double total_s = 0.0;
  double rounds_per_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
};

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(p * (static_cast<double>(xs.size()) - 1.0) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

/// One measured configuration: admit `trace` into a fresh RoundEngine and
/// step `rounds` rounds (after one untimed warmup round), timing each step.
ScaleResult run_config(const cluster::ClusterSpec& spec, const workload::Trace& trace,
                       bool sharded, sim::ShardConfig shard, int rounds) {
  ScaleResult res;
  res.mode = sharded ? "sharded" : "flat";
  res.nodes = spec.num_nodes();
  res.jobs = static_cast<int>(trace.jobs.size());
  res.rounds = rounds;

  sim::SimConfig cfg;
  cfg.validate_allocations = false;  // time the scheduler, not the referee
  cfg.enable_event_log = false;
  sim::RoundEngine engine(&spec, cfg);
  for (const auto& j : trace.jobs) engine.admit(j);

  sim::SchedulerPtr sched =
      sharded ? runner::make_sharded_scheduler("hadar", shard)
              : runner::make_flat_scheduler("hadar");

  engine.step(*sched);  // warmup: partitioning, context build, warm caches
  if (sharded) {
    if (auto* s = dynamic_cast<sim::ShardedScheduler*>(sched.get())) {
      res.cells = s->num_cells();
    }
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(rounds));
  common::WallTimer total;
  for (int i = 0; i < rounds; ++i) {
    common::WallTimer t;
    engine.step(*sched);
    samples.push_back(t.seconds());
  }
  res.total_s = total.seconds();
  res.rounds_per_s = res.total_s > 0.0 ? rounds / res.total_s : 0.0;
  res.p50_s = percentile(samples, 0.50);
  res.p99_s = percentile(samples, 0.99);
  return res;
}

workload::Trace make_trace(const cluster::ClusterSpec& spec, int jobs, std::uint64_t seed) {
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &spec.types());
  workload::TraceGenConfig cfg;
  cfg.num_jobs = jobs;
  cfg.arrivals = workload::ArrivalPattern::kStatic;
  cfg.seed = seed;
  return gen.generate(cfg);
}

}  // namespace

int main() {
  const int threads = common::ThreadPool::configured_concurrency();
  const int rounds = common::env_int("HADAR_SCALE_ROUNDS", 4, 1);
  const bool full = common::env_int("HADAR_SCALE_FULL", 0, 0) != 0;
  const int max_nodes = common::env_int("HADAR_SCALE_MAX_NODES", 20000, 1);
  const sim::ShardConfig shard = sim::ShardConfig::from_env(
      [] {
        sim::ShardConfig s;
        s.cells = 0;  // auto-size from the cluster unless HADAR_CELLS says otherwise
        return s;
      }());

  struct Config {
    int nodes_per_type;
    int jobs;
    bool flat;  ///< also run the unsharded mode
  };
  const std::vector<Config> sweep = {
      {34, 1000, true},             // ~100 nodes
      {334, 10000, true},           // ~1k nodes: the speedup comparison point
      {3334, 100000, full},         // ~10k nodes: flat only on request
  };

  std::vector<ScaleResult> results;
  for (const auto& c : sweep) {
    if (c.nodes_per_type * 3 > max_nodes) {
      std::printf("skipping ~%d-node config (HADAR_SCALE_MAX_NODES=%d)\n\n",
                  c.nodes_per_type * 3, max_nodes);
      continue;
    }
    const cluster::ClusterSpec spec = cluster::ClusterSpec::scaled(c.nodes_per_type);
    const workload::Trace trace = make_trace(spec, c.jobs, 97);
    std::printf("config: %s, %d jobs, %d measured rounds\n", spec.summary().c_str(),
                c.jobs, rounds);
    if (c.flat) {
      results.push_back(run_config(spec, trace, false, shard, rounds));
      std::printf("  flat    : %.2f rounds/s (p50 %.3fs, p99 %.3fs)\n",
                  results.back().rounds_per_s, results.back().p50_s, results.back().p99_s);
    }
    results.push_back(run_config(spec, trace, true, shard, rounds));
    std::printf("  sharded : %.2f rounds/s (p50 %.3fs, p99 %.3fs, %d cells)\n\n",
                results.back().rounds_per_s, results.back().p50_s, results.back().p99_s,
                results.back().cells);
  }

  // The headline number: sharded vs flat rounds/s at the 1k-node point.
  const ScaleResult* flat_1k = nullptr;
  const ScaleResult* sharded_1k = nullptr;
  const ScaleResult* sharded_10k = nullptr;
  for (const auto& r : results) {
    if (r.nodes > 500 && r.nodes <= 1500) {
      (r.mode == "flat" ? flat_1k : sharded_1k) = &r;
    }
    if (r.nodes > 5000 && r.mode == "sharded") sharded_10k = &r;
  }
  const double speedup_1k = (flat_1k != nullptr && sharded_1k != nullptr &&
                             sharded_1k->rounds_per_s > 0.0)
                                ? sharded_1k->rounds_per_s / flat_1k->rounds_per_s
                                : 0.0;

  common::AsciiTable t("scale sweep (" + std::to_string(threads) + " threads)",
                       {"nodes", "jobs", "mode", "cells", "rounds/s", "p50", "p99"});
  for (const auto& r : results) {
    t.add_row({std::to_string(r.nodes), std::to_string(r.jobs), r.mode,
               std::to_string(r.cells), common::AsciiTable::num(r.rounds_per_s, 2),
               common::AsciiTable::num(r.p50_s, 3) + " s",
               common::AsciiTable::num(r.p99_s, 3) + " s"});
  }
  if (speedup_1k > 0.0) {
    t.set_footnote("sharded speedup at ~1k nodes: " +
                   common::AsciiTable::speedup(speedup_1k, 2));
  }
  std::printf("%s\n", t.render().c_str());
  if (speedup_1k > 0.0 && speedup_1k < 2.0) {
    std::printf("WARNING: sharded speedup at ~1k nodes is %.2fx (< 2x target)\n", speedup_1k);
  }

  // ---- perf gate: the sharded rounds at the 1k-node point ----
  const double calib_s = bench::median_timing([] { return bench::calibration_run(); });
  std::vector<bench::GateMetric> gate_metrics;
  if (sharded_1k != nullptr) {
    gate_metrics.push_back({"scale_round_p50_1k", sharded_1k->p50_s, 0.0});
    gate_metrics.push_back({"scale_round_p99_1k", sharded_1k->p99_s, 0.0});
  }
  if (sharded_10k != nullptr) {
    gate_metrics.push_back({"scale_round_p99_10k", sharded_10k->p99_s, 0.0});
  }
  const bench::GateResult gate = bench::run_perf_gate(gate_metrics, calib_s);
  std::printf("%s\n", gate.report.c_str());

  if (std::FILE* f = std::fopen("BENCH_SCALE.json", "w")) {
    std::fprintf(f, "{\n  \"threads\": %d,\n  \"measured_rounds\": %d,\n", threads, rounds);
    std::fprintf(f, "  \"speedup_1k\": %.3f,\n", speedup_1k);
    std::fprintf(f, "  \"configs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(f,
                   "    {\"nodes\": %d, \"jobs\": %d, \"mode\": \"%s\", \"cells\": %d,"
                   " \"rounds_per_s\": %.4f, \"round_p50_s\": %.4f, \"round_p99_s\": %.4f}%s\n",
                   r.nodes, r.jobs, r.mode.c_str(), r.cells, r.rounds_per_s, r.p50_s,
                   r.p99_s, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Gate micros keyed by their baseline.json names (CI baseline-drift check).
    std::fprintf(f, "  \"gate_metrics\": {\n");
    for (std::size_t i = 0; i < gate_metrics.size(); ++i) {
      std::fprintf(f, "    \"%s\": %.6f%s\n", gate_metrics[i].name.c_str(),
                   gate_metrics[i].seconds, i + 1 < gate_metrics.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_SCALE.json\n");
  }

  if (bench::perf_gate_enforced() && gate.failed) {
    std::printf("perf gate: FAIL (HADAR_PERF_GATE enforced)\n");
    return 1;
  }
  return 0;
}
