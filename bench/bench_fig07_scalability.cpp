// Fig. 7 — scalability: wall-clock time for one scheduling decision as the
// number of active jobs grows from 32 to 2048, with the cluster scaled
// alongside (the paper grows the cluster with the jobs). Compares Hadar's
// DP against Gavel's LP/priority allocation. Paper shape: comparable
// scaling, with even 2000-job rounds computed within the 7-minute round.
#include <benchmark/benchmark.h>

#include "baselines/gavel.hpp"
#include "common/thread_pool.hpp"
#include "core/hadar_scheduler.hpp"
#include "runner/scenarios.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

using namespace hadar;

namespace {

struct Scenario {
  cluster::ClusterSpec spec;
  workload::Trace trace;
  sim::SchedulerContext ctx;
};

// Cluster scales with the job count: ~1 four-GPU node per 8 jobs per type.
Scenario make_scenario(int jobs) {
  Scenario s;
  const int nodes_per_type = std::max(1, jobs / 24);
  s.spec = cluster::ClusterSpec::scaled(nodes_per_type, 4);
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &s.spec.types());
  workload::TraceGenConfig cfg;
  cfg.num_jobs = jobs;
  cfg.seed = 1234;
  s.trace = gen.generate(cfg);

  s.ctx.spec = &s.spec;
  s.ctx.round_length = 360.0;
  for (const auto& j : s.trace.jobs) {
    sim::JobView v;
    v.spec = &j;
    v.throughput = j.throughput;
    v.rounds_on_type.assign(static_cast<std::size_t>(s.spec.num_types()), 0);
    s.ctx.jobs.push_back(std::move(v));
  }
  return s;
}

void BM_HadarDecision(benchmark::State& state) {
  const auto s = make_scenario(static_cast<int>(state.range(0)));
  core::HadarScheduler sched;
  for (auto _ : state) {
    state.PauseTiming();
    sched.reset();
    state.ResumeTiming();
    benchmark::DoNotOptimize(sched.schedule(s.ctx));
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
  state.counters["gpus"] = static_cast<double>(s.spec.total_gpus());
}

void BM_GavelDecision(benchmark::State& state) {
  const auto s = make_scenario(static_cast<int>(state.range(0)));
  baselines::GavelScheduler sched;
  for (auto _ : state) {
    state.PauseTiming();
    sched.reset();  // force the allocation recompute (the expensive path)
    state.ResumeTiming();
    benchmark::DoNotOptimize(sched.schedule(s.ctx));
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
  state.counters["gpus"] = static_cast<double>(s.spec.total_gpus());
}

// End-to-end view of the same scalability story: the full four-way paper
// comparison (Hadar, Gavel, Tiresias, YARN-CS) as one runner::sweep, which
// fans the four independent simulations across the HADAR_THREADS pool.
void BM_FourWaySweep(benchmark::State& state) {
  const auto cfg = runner::paper_static(static_cast<int>(state.range(0)), 42);
  std::vector<runner::SweepCase> cases;
  for (const auto& sched : runner::kPaperSchedulers) {
    cases.push_back({"static", sched, cfg});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner::sweep(cases));
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
  state.counters["threads"] =
      static_cast<double>(common::ThreadPool::global().concurrency());
}

}  // namespace

BENCHMARK(BM_HadarDecision)->RangeMultiplier(4)->Range(32, 2048)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GavelDecision)->RangeMultiplier(4)->Range(32, 2048)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FourWaySweep)->RangeMultiplier(2)->Range(32, 128)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
