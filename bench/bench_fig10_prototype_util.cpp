// Fig. 10 — cluster-wide GPU utilization on the (simulated) physical
// prototype: the 8-GPU AWS cluster of Sec. IV-B running the 10-job Table II
// mix, with testbed noise and the Table IV per-model checkpoint costs.
// Paper shape: Hadar > Gavel > Tiresias.
#include <cstdio>

#include "bench_common.hpp"

using namespace hadar;

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  const auto cfg = runner::prototype(/*testbed_noise=*/true);
  bench::print_header("Fig. 10", "GPU utilization on the prototype cluster", cfg);
  const auto runs = runner::compare(cfg, runner::kPreemptiveSchedulers);

  common::AsciiTable t("Prototype GPU utilization",
                       {"scheduler", "job-level util", "cluster-wide util", "avg JCT",
                        "makespan"});
  for (const auto& run : runs) {
    const auto& r = run.result;
    t.add_row({run.scheduler, common::AsciiTable::percent(r.avg_job_utilization),
               common::AsciiTable::percent(r.gpu_utilization),
               common::AsciiTable::duration(r.avg_jct),
               common::AsciiTable::duration(r.makespan)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Paper shape: Hadar achieves the best utilization among the preemptive\n"
              "schedulers by mixing heterogeneous GPUs across a job's tasks.\n");
  return 0;
}
