// Fig. 4 — cluster-wide GPU utilization of the four schedulers on the
// simulated cluster: the percentage of a job's run-time during which its
// GPUs are actually computing. Paper shape: YARN-CS highest (non-preemptive),
// Hadar close behind, Gavel and Tiresias below.
#include <cstdio>

#include "bench_common.hpp"

using namespace hadar;

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  const auto cfg = runner::paper_static(bench::bench_jobs(240), 42);
  bench::print_header("Fig. 4", "GPU utilization (static trace)", cfg);
  const auto runs = runner::compare(cfg, runner::kPaperSchedulers);

  common::AsciiTable t("GPU utilization",
                       {"scheduler", "job-level util (Fig. 4)", "cluster-wide util",
                        "preemptions", "reallocations"});
  for (const auto& run : runs) {
    const auto& r = run.result;
    t.add_row({run.scheduler, common::AsciiTable::percent(r.avg_job_utilization),
               common::AsciiTable::percent(r.gpu_utilization),
               common::AsciiTable::integer(r.total_preemptions),
               common::AsciiTable::integer(r.total_reallocations)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Paper shape: YARN-CS > Hadar >> Gavel ~ Tiresias on job-level utilization.\n");
  return 0;
}
