// Table III — JCT and makespan of Hadar / Gavel / Tiresias on the prototype
// setup, in both the "physical cluster" stand-in (simulation with testbed
// noise + Table IV checkpoint costs) and the clean simulated cluster. The
// paper's point: the two columns agree within ~10%, validating the
// simulator; we report the same agreement figure.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

using namespace hadar;

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  const auto noisy = runner::prototype(/*testbed_noise=*/true);
  const auto clean = runner::prototype(/*testbed_noise=*/false);
  bench::print_header("Table III", "prototype cluster (10 Table II jobs)", clean);

  const std::vector<std::string> scheds = {"hadar", "gavel", "tiresias"};
  const auto r_phys = runner::compare(noisy, scheds);
  const auto r_sim = runner::compare(clean, scheds);

  common::AsciiTable t("JCT and makespan", {"setting", "metric", "Hadar", "Gavel",
                                            "Tiresias"});
  auto add = [&](const char* setting, const char* metric,
                 const std::vector<runner::SchedulerRun>& runs, bool makespan) {
    std::vector<std::string> row = {setting, metric};
    for (const auto& r : runs) {
      row.push_back(common::AsciiTable::duration(makespan ? r.result.makespan
                                                          : r.result.avg_jct));
    }
    t.add_row(std::move(row));
  };
  add("physical (noisy sim)", "avg JCT", r_phys, false);
  add("physical (noisy sim)", "makespan", r_phys, true);
  add("simulated", "avg JCT", r_sim, false);
  add("simulated", "makespan", r_sim, true);
  std::printf("%s\n", t.render().c_str());

  double worst = 0.0;
  for (std::size_t i = 0; i < scheds.size(); ++i) {
    worst = std::max(worst, std::fabs(r_phys[i].result.avg_jct / r_sim[i].result.avg_jct - 1.0));
  }
  std::printf("Physical-vs-simulated avg-JCT agreement: within %.1f%% (paper: within 10%%)\n",
              worst * 100.0);
  std::printf("Paper reference: Hadar 2.3x (JCT) / 1.9x (makespan) vs Gavel; 3x / 2.9x vs"
              " Tiresias.\n");
  const auto& h = r_phys[0].result;
  std::printf("Measured: %.2fx / %.2fx vs Gavel; %.2fx / %.2fx vs Tiresias.\n",
              r_phys[1].result.avg_jct / h.avg_jct, r_phys[1].result.makespan / h.makespan,
              r_phys[2].result.avg_jct / h.avg_jct, r_phys[2].result.makespan / h.makespan);
  return 0;
}
