// Fig. 6 — makespan comparison with Hadar's scheduling policy flexibly
// switched to makespan minimization (the generality claim of Sec. III-A).
// Paper: Hadar ~1.5x shorter than Gavel, ~2x shorter than Tiresias.
#include <cstdio>

#include "bench_common.hpp"

using namespace hadar;

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  const auto cfg = runner::paper_static(bench::bench_jobs(240), 42);
  bench::print_header("Fig. 6", "makespan with the min-makespan policy (static trace)", cfg);
  const auto runs = runner::compare(cfg, {"hadar-makespan", "gavel", "gavel-makespan", "tiresias"});

  common::AsciiTable t("Makespan", {"scheduler", "makespan", "avg JCT", "job util"});
  for (const auto& run : runs) {
    t.add_row({&run == &runs[0] ? "Hadar (makespan policy)"
               : (&run == &runs[2] ? "Gavel (makespan policy)" : run.scheduler),
               common::AsciiTable::duration(run.result.makespan),
               common::AsciiTable::duration(run.result.avg_jct),
               common::AsciiTable::percent(run.result.avg_job_utilization)});
  }
  std::printf("%s\n", t.render().c_str());

  const double hadar = runs[0].result.makespan;
  std::printf("Hadar makespan improvement: %.2fx vs Gavel (paper ~1.5x), %.2fx vs"
              " Gavel-makespan, %.2fx vs Tiresias (paper ~2x)\n",
              runs[1].result.makespan / hadar, runs[2].result.makespan / hadar,
              runs[3].result.makespan / hadar);
  return 0;
}
