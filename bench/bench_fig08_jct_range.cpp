// Fig. 8 — min / average / max JCT for Hadar, Gavel, and Tiresias under
// varying input job rates (continuous Poisson arrivals). The paper reads
// the min-max band as a robustness indicator: Hadar's band is tightest,
// Gavel's widens with load, Tiresias' is widest.
#include <cstdio>

#include "bench_common.hpp"

using namespace hadar;

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  const int jobs = bench::bench_jobs(160);
  const double rates[] = {40.0, 80.0, 120.0};

  std::printf("Fig. 8 — JCT range vs input job rate (continuous trace, %d jobs)\n\n", jobs);
  common::AsciiTable t("JCT min / avg / max by arrival rate",
                       {"rate (jobs/h)", "scheduler", "min JCT", "avg JCT", "max JCT",
                        "range"});
  // Every (rate, scheduler) cell is an independent seeded simulation: one
  // sweep fans all of them across the HADAR_THREADS pool.
  std::vector<runner::SweepCase> cases;
  for (double rate : rates) {
    for (const auto& sched : runner::kPreemptiveSchedulers) {
      cases.push_back({common::AsciiTable::num(rate, 0), sched,
                       runner::paper_continuous(rate, jobs, 42)});
    }
  }
  for (const auto& run : runner::sweep(cases)) {
    const auto& r = run.result;
    t.add_row({run.label, run.scheduler,
               common::AsciiTable::duration(r.min_jct),
               common::AsciiTable::duration(r.avg_jct),
               common::AsciiTable::duration(r.max_jct),
               common::AsciiTable::duration(r.max_jct - r.min_jct)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Paper shape: Hadar keeps the tightest min-max band; Gavel widens with\n"
              "load; Tiresias shows the largest variability at high job rates.\n");
  return 0;
}
