// Fig. 8 — min / average / max JCT for Hadar, Gavel, and Tiresias under
// varying input job rates (continuous Poisson arrivals). The paper reads
// the min-max band as a robustness indicator: Hadar's band is tightest,
// Gavel's widens with load, Tiresias' is widest.
#include <cstdio>

#include "bench_common.hpp"

using namespace hadar;

int main() {
  const int jobs = bench::bench_jobs(160);
  const double rates[] = {40.0, 80.0, 120.0};

  std::printf("Fig. 8 — JCT range vs input job rate (continuous trace, %d jobs)\n\n", jobs);
  common::AsciiTable t("JCT min / avg / max by arrival rate",
                       {"rate (jobs/h)", "scheduler", "min JCT", "avg JCT", "max JCT",
                        "range"});
  struct Band {
    double lo, hi;
  };
  std::vector<std::vector<Band>> bands(3);
  for (std::size_t ri = 0; ri < std::size(rates); ++ri) {
    const auto cfg = runner::paper_continuous(rates[ri], jobs, 42);
    const auto runs = runner::compare(cfg, runner::kPreemptiveSchedulers);
    for (std::size_t si = 0; si < runs.size(); ++si) {
      const auto& r = runs[si].result;
      t.add_row({common::AsciiTable::num(rates[ri], 0), runs[si].scheduler,
                 common::AsciiTable::duration(r.min_jct),
                 common::AsciiTable::duration(r.avg_jct),
                 common::AsciiTable::duration(r.max_jct),
                 common::AsciiTable::duration(r.max_jct - r.min_jct)});
      bands[si].push_back({r.min_jct, r.max_jct});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Paper shape: Hadar keeps the tightest min-max band; Gavel widens with\n"
              "load; Tiresias shows the largest variability at high job rates.\n");
  return 0;
}
