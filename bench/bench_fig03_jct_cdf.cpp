// Fig. 3 — cumulative fraction of jobs completed along the timeline, for
// Hadar, Gavel, Tiresias, and YARN-CS, under (a) the static trace and (b)
// the continuous (Poisson) trace. Prints the CDF series the figure plots
// plus the avg/median JCT speedups the text quotes.
#include <cstdio>

#include "bench_common.hpp"

using namespace hadar;

namespace {

void run_setting(const char* label, const runner::ExperimentConfig& cfg) {
  bench::print_header("Fig. 3", label, cfg);
  const auto runs = runner::compare(cfg, runner::kPaperSchedulers);

  // CDF series: fraction of jobs completed by time t.
  constexpr std::size_t kPoints = 12;
  double tmax = 0.0;
  for (const auto& r : runs) tmax = std::max(tmax, r.result.makespan);
  common::AsciiTable cdf("Cumulative fraction of jobs completed",
                         [&] {
                           std::vector<std::string> h = {"time"};
                           for (const auto& r : runs) h.push_back(r.scheduler);
                           return h;
                         }());
  for (std::size_t i = 1; i <= kPoints; ++i) {
    const double t = tmax * static_cast<double>(i) / kPoints;
    std::vector<std::string> row = {common::AsciiTable::duration(t)};
    for (const auto& r : runs) {
      int done = 0;
      for (const auto& j : r.result.jobs) {
        if (j.finished() && j.finish <= t) ++done;
      }
      row.push_back(common::AsciiTable::percent(
          static_cast<double>(done) / static_cast<double>(r.result.jobs.size()), 1));
    }
    cdf.add_row(std::move(row));
  }
  std::printf("%s\n", cdf.render().c_str());

  bench::print_comparison("Summary metrics", runs);

  const auto& hadar = runs.front().result;
  common::AsciiTable sp("Hadar speedups", {"vs", "avg JCT", "median JCT", "queueing delay"});
  for (std::size_t i = 1; i < runs.size(); ++i) {
    sp.add_row({runs[i].scheduler,
                common::AsciiTable::speedup(runs[i].result.avg_jct / hadar.avg_jct),
                common::AsciiTable::speedup(runs[i].result.median_jct / hadar.median_jct),
                common::AsciiTable::speedup(runs[i].result.avg_queueing_delay /
                                            std::max(1.0, hadar.avg_queueing_delay))});
  }
  std::printf("%s\n", sp.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  const int jobs = bench::bench_jobs(480);
  run_setting("(a) static trace", runner::paper_static(jobs, 42));
  run_setting("(b) continuous trace (Poisson, 60 jobs/hour)",
              runner::paper_continuous(60.0, jobs, 42));
  std::printf("Paper reference: static avg JCT 7x vs YARN-CS, 1.8x vs Gavel, 2.5x vs\n"
              "Tiresias; median 15x / 2.1x / 3x. Continuous: 5x / 1.5x / 2.3x.\n");
  return 0;
}
