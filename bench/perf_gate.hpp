// Perf-regression gate used by bench_perf_regression: compares the current
// micro timings against a checked-in baseline (bench/baseline.json) and
// fails the run on a >25% slowdown.
//
// Portability: absolute wall-clock timings do not transfer between machines,
// so both the baseline and the current run are *calibration-normalized* —
// every metric is stored as (metric_seconds / calib_seconds), where
// calib_seconds is the median time of a fixed CPU-bound hash kernel measured
// in the same process. The ratio cancels machine speed to first order; the
// 25% tolerance absorbs the rest (cache topology, turbo states).
//
// Knobs:
//   HADAR_PERF_BASELINE=<path>    baseline file (default bench/baseline.json
//                                 relative to the CWD, then ./baseline.json)
//   HADAR_PERF_GATE=1             make a FAIL verdict exit non-zero
//   HADAR_PERF_INJECT_SLOWDOWN=<f> multiply measured timings by f (CI
//                                 self-test that the gate actually fails)
//   HADAR_PERF_WRITE_BASELINE=<path> write the current run as a new baseline
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"

namespace hadar::bench {

inline std::uint64_t& perf_gate_sink() {
  static std::uint64_t sink = 0;
  return sink;
}

/// One run of the calibration kernel: a fixed-trip-count SplitMix64 chain,
/// CPU-bound, allocation-free, deterministic. Returns its wall time.
inline double calibration_run() {
  std::uint64_t z = 0x9E3779B97F4A7C15ULL;
  std::uint64_t acc = 0;
  common::WallTimer t;
  for (int i = 0; i < 20000000; ++i) {
    z += 0x9E3779B97F4A7C15ULL;
    std::uint64_t x = z;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    acc ^= x ^ (x >> 31);
  }
  perf_gate_sink() ^= acc;
  return t.seconds();
}

inline double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Median-of-N wrapper for a timing functor (seconds per call).
template <typename Fn>
double median_timing(Fn&& time_once, int n = 5) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) samples.push_back(time_once());
  return median_of(std::move(samples));
}

struct GateMetric {
  std::string name;
  double seconds = 0.0;  ///< median wall time of the micro
  double ratio = 0.0;    ///< seconds / calib_seconds (what is compared)
};

struct GateResult {
  bool baseline_found = false;
  bool failed = false;   ///< any metric regressed past tolerance
  std::string report;    ///< rendered ASCII verdict table
};

/// Extracts `"name": <number>` from a (flat, self-written) JSON string.
/// Returns false when the key is absent.
inline bool json_number(const std::string& json, const std::string& name, double* out) {
  const std::string needle = "\"" + name + "\"";
  std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  pos = json.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  const char* start = json.c_str() + pos + 1;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

inline std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

inline std::string locate_baseline() {
  if (const char* env = std::getenv("HADAR_PERF_BASELINE")) return env;
  for (const char* cand : {"bench/baseline.json", "baseline.json", "../bench/baseline.json",
                           "../../bench/baseline.json"}) {
    if (std::FILE* f = std::fopen(cand, "rb")) {
      std::fclose(f);
      return cand;
    }
  }
  return "bench/baseline.json";  // default (likely missing) path for messages
}

/// Serializes the current metrics as a baseline/artifact JSON.
inline std::string gate_json(const std::vector<GateMetric>& metrics, double calib_seconds) {
  char buf[160];
  std::string out = "{\n";
  std::snprintf(buf, sizeof(buf), "  \"calib_seconds\": %.6f,\n", calib_seconds);
  out += buf;
  out += "  \"tolerance\": 1.25,\n";
  out += "  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "    \"%s\": %.6f%s\n", metrics[i].name.c_str(),
                  metrics[i].ratio, i + 1 < metrics.size() ? "," : "");
    out += buf;
  }
  out += "  }\n}\n";
  return out;
}

/// Compares current metrics against the baseline file. A metric fails when
/// its calibration-normalized ratio exceeds baseline * tolerance. Metrics
/// missing from the baseline (newly added micros) report as "new" and never
/// fail. A missing baseline file degrades to an informational run.
inline GateResult run_perf_gate(std::vector<GateMetric>& metrics, double calib_seconds,
                                double tolerance = 1.25) {
  GateResult res;
  const double inject =
      std::getenv("HADAR_PERF_INJECT_SLOWDOWN") != nullptr
          ? std::strtod(std::getenv("HADAR_PERF_INJECT_SLOWDOWN"), nullptr)
          : 1.0;
  for (auto& m : metrics) {
    if (inject > 0.0 && inject != 1.0) m.seconds *= inject;
    m.ratio = calib_seconds > 0.0 ? m.seconds / calib_seconds : 0.0;
  }

  const std::string path = locate_baseline();
  const std::string json = read_file(path);
  res.baseline_found = !json.empty();

  common::AsciiTable t("perf gate (baseline: " + path + ")",
                       {"metric", "current", "baseline", "change", "verdict"});
  for (const auto& m : metrics) {
    double base = 0.0;
    if (!res.baseline_found || !json_number(json, m.name, &base) || base <= 0.0) {
      t.add_row({m.name, common::AsciiTable::num(m.ratio, 4), "-", "-", "new"});
      continue;
    }
    const double change = m.ratio / base;
    const bool ok = m.ratio <= base * tolerance;
    if (!ok) res.failed = true;
    char chg[32];
    std::snprintf(chg, sizeof(chg), "%+.1f%%", (change - 1.0) * 100.0);
    t.add_row({m.name, common::AsciiTable::num(m.ratio, 4),
               common::AsciiTable::num(base, 4), chg, ok ? "PASS" : "FAIL"});
  }
  if (!res.baseline_found) {
    t.set_footnote("no baseline file — informational run (see docs on refreshing it)");
    res.failed = false;
  } else if (inject != 1.0) {
    char note[96];
    std::snprintf(note, sizeof(note), "HADAR_PERF_INJECT_SLOWDOWN=%.2f applied", inject);
    t.set_footnote(note);
  }
  res.report = t.render();

  if (const char* wpath = std::getenv("HADAR_PERF_WRITE_BASELINE")) {
    if (std::FILE* f = std::fopen(wpath, "w")) {
      const std::string out = gate_json(metrics, calib_seconds);
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
      std::printf("perf gate: wrote new baseline -> %s\n", wpath);
    }
  }
  return res;
}

/// True when a FAIL verdict should make the process exit non-zero.
inline bool perf_gate_enforced() {
  const char* v = std::getenv("HADAR_PERF_GATE");
  return v != nullptr && std::strcmp(v, "0") != 0 && std::strcmp(v, "") != 0;
}

}  // namespace hadar::bench
