// Resilience sweep: the paper four-way comparison under fault injection.
// One availability timeline per failure rate (seeded independently of the
// workload), shared by all four schedulers so the degradation curve isolates
// scheduling policy from failure luck. Rows: failure-free baseline plus
// three node-MTTF levels with proportional single-GPU degrades. Emits
// BENCH_RESILIENCE.json with absolute metrics and vs-baseline ratios.
//
// Knobs: HADAR_BENCH_JOBS (trace size, default 96).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runner/experiment.hpp"

using namespace hadar;

namespace {

struct FailureLevel {
  const char* label;  ///< row key, e.g. "mttf=20000s"
  double node_mttf;   ///< seconds; 0 disables fault injection entirely
};

// MTTR is held at ~1 repair hour so the sweep varies only the failure rate.
constexpr double kNodeMttr = 3600.0;
constexpr double kGpuMttr = 3600.0;

runner::ExperimentConfig level_config(const FailureLevel& lvl, int jobs) {
  // Single-GPU degrades arrive an order of magnitude rarer than node
  // crashes; both scale together as the level's failure rate rises.
  const double gpu_mttf = lvl.node_mttf > 0.0 ? lvl.node_mttf * 10.0 : 0.0;
  return runner::resilience(lvl.node_mttf, kNodeMttr, gpu_mttf, kGpuMttr, jobs);
}

}  // namespace

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  const int jobs = bench::bench_jobs(96);
  const std::vector<FailureLevel> levels = {
      {"no-failures", 0.0},
      {"mttf=80000s", 80000.0},
      {"mttf=40000s", 40000.0},
      {"mttf=20000s", 20000.0},
  };

  std::vector<runner::SweepCase> cases;
  for (const auto& lvl : levels) {
    for (const auto& sched : runner::kPaperSchedulers) {
      cases.push_back({lvl.label, sched, level_config(lvl, jobs)});
    }
  }

  bench::print_header("resilience", "fault-injection degradation sweep", cases[0].config);
  const auto runs = runner::sweep(cases);

  // Baseline (level 0) metrics per scheduler, for the degradation ratios.
  const std::size_t S = runner::kPaperSchedulers.size();
  auto baseline_of = [&](std::size_t i) -> const sim::SimResult& {
    return runs[i % S].result;
  };

  common::AsciiTable t("resilience: JCT / makespan / goodput vs failure rate",
                       {"level", "scheduler", "avg JCT", "makespan", "goodput",
                        "lost work", "kills", "node fails", "JCT x", "mksp x"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i].result;
    const auto& base = baseline_of(i);
    t.add_row({runs[i].label, runs[i].scheduler,
               common::AsciiTable::duration(r.avg_jct),
               common::AsciiTable::duration(r.makespan),
               common::AsciiTable::percent(r.goodput),
               common::AsciiTable::num(r.lost_gpu_seconds / 3600.0, 1) + " GPU-h",
               common::AsciiTable::num(static_cast<double>(r.total_failure_kills), 0),
               common::AsciiTable::num(static_cast<double>(r.num_node_failures), 0),
               common::AsciiTable::num(base.avg_jct > 0.0 ? r.avg_jct / base.avg_jct : 0.0, 3),
               common::AsciiTable::num(base.makespan > 0.0 ? r.makespan / base.makespan : 0.0,
                                       3)});
  }
  std::printf("%s\n", t.render().c_str());

  bool all_finished = true;
  for (const auto& run : runs) all_finished = all_finished && run.result.num_unfinished == 0;
  std::printf("all jobs finished under every failure level: %s\n\n",
              all_finished ? "yes" : "NO");

  const char* out_path = "BENCH_RESILIENCE.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "failed to open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"jobs\": %d,\n"
               "  \"node_mttr_seconds\": %.0f,\n"
               "  \"levels\": [",
               jobs, kNodeMttr);
  for (std::size_t l = 0; l < levels.size(); ++l) {
    std::fprintf(f, "%s\"%s\"", l ? ", " : "", levels[l].label);
  }
  std::fprintf(f, "],\n  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i].result;
    const auto& base = baseline_of(i);
    std::fprintf(f,
                 "    {\"level\": \"%s\", \"scheduler\": \"%s\", "
                 "\"node_mttf_seconds\": %.0f, "
                 "\"avg_jct\": %.3f, \"p95_jct\": %.3f, \"makespan\": %.3f, "
                 "\"goodput\": %.5f, \"gpu_utilization\": %.5f, "
                 "\"lost_gpu_seconds\": %.3f, \"failure_kills\": %lld, "
                 "\"node_failures\": %lld, \"gpu_degrades\": %lld, "
                 "\"num_unfinished\": %d, "
                 "\"avg_jct_vs_baseline\": %.4f, \"makespan_vs_baseline\": %.4f}%s\n",
                 runs[i].label.c_str(), runs[i].scheduler.c_str(),
                 levels[i / S].node_mttf, r.avg_jct, r.p95_jct, r.makespan, r.goodput,
                 r.gpu_utilization, r.lost_gpu_seconds, r.total_failure_kills,
                 r.num_node_failures, r.num_gpu_degrades, r.num_unfinished,
                 base.avg_jct > 0.0 ? r.avg_jct / base.avg_jct : 0.0,
                 base.makespan > 0.0 ? r.makespan / base.makespan : 0.0,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return all_finished ? 0 : 2;
}
