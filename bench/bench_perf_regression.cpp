// Perf-regression harness: times the hot paths this repo's evaluation is
// wall-clock-bound by — FIND_ALLOC, DP_allocation, and the Gavel LP
// re-solve — plus an end-to-end fig07-style four-way comparison sweep, at
// HADAR_THREADS=1 and at the configured thread count. Emits BENCH_PR9.json
// (wall-clock, rounds/sec, speedup vs serial, LP engine comparison,
// determinism checks) keeping the earlier micro/end_to_end keys so the perf
// trajectory stays comparable across PRs. PR 8 added the hot-path rows the
// SoA/undo-log/arena pass targets: thread-pool dispatch overhead and the
// per-branch DP bookkeeping cost (mark/apply/hash/rollback). PR 9 adds the
// staged-pipeline rows: the per-round scaffolding cost of the StagedScheduler
// driver (gated as staged_round_overhead, and required to stay under 2% of
// the real Hadar staged round) plus the per-stage
// admission/priority/allocation/placement/preemption split of that round.
//
// The run doubles as the perf-regression *gate*: the stable micro timings
// are calibration-normalized (see perf_gate.hpp) and compared against the
// checked-in bench/baseline.json, median-of-5, failing on a >25% slowdown
// when HADAR_PERF_GATE=1. It also measures the observability layer itself:
// the per-scope cost of a disabled HADAR_TRACE_SCOPE and the end-to-end
// delta of running a simulation with tracing enabled.
//
// Knobs: HADAR_BENCH_JOBS (end-to-end trace size, default 96),
// HADAR_THREADS (parallel lane count, default hardware concurrency),
// HADAR_PERF_BASELINE / HADAR_PERF_GATE / HADAR_PERF_INJECT_SLOWDOWN /
// HADAR_PERF_WRITE_BASELINE (see perf_gate.hpp).
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/gavel.hpp"
#include "bench_common.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/dp_allocation.hpp"
#include "core/hadar_scheduler.hpp"
#include "obs/trace.hpp"
#include "perf_gate.hpp"
#include "pipeline/staged_scheduler.hpp"
#include "sim/simulator.hpp"
#include "solver/maxmin.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

using namespace hadar;

namespace {

// Fig. 7-style decision scenario: cluster scaled with the queue.
struct DecisionScenario {
  cluster::ClusterSpec spec;
  workload::Trace trace;
  sim::SchedulerContext ctx;
};

DecisionScenario make_decision_scenario(int jobs) {
  DecisionScenario s;
  s.spec = cluster::ClusterSpec::scaled(std::max(1, jobs / 24), 4);
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &s.spec.types());
  workload::TraceGenConfig cfg;
  cfg.num_jobs = jobs;
  cfg.seed = 1234;
  s.trace = gen.generate(cfg);

  s.ctx.spec = &s.spec;
  s.ctx.round_length = 360.0;
  for (const auto& j : s.trace.jobs) {
    sim::JobView v;
    v.spec = &j;
    v.throughput = j.throughput;
    v.rounds_on_type.assign(static_cast<std::size_t>(s.spec.num_types()), 0);
    s.ctx.jobs.push_back(std::move(v));
  }
  return s;
}

// Repeats `fn` until ~0.2 s of wall-clock accumulates; returns seconds/call.
template <typename Fn>
double time_per_call(Fn&& fn, int min_reps = 3) {
  fn();  // warm-up
  int reps = 0;
  common::WallTimer t;
  do {
    fn();
    ++reps;
  } while ((reps < min_reps || t.seconds() < 0.2) && reps < 10000);
  return t.seconds() / reps;
}

// Scheduler metrics must be bit-identical across thread counts (wall-clock
// fields excluded — they measure the host, not the schedule).
bool same_schedule(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.jobs.size() != b.jobs.size() || a.makespan != b.makespan ||
      a.avg_jct != b.avg_jct || a.median_jct != b.median_jct ||
      a.p95_jct != b.p95_jct || a.avg_ftf != b.avg_ftf ||
      a.rounds != b.rounds || a.total_reallocations != b.total_reallocations ||
      a.total_preemptions != b.total_preemptions) {
    return false;
  }
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].finish != b.jobs[i].finish ||
        a.jobs[i].first_start != b.jobs[i].first_start ||
        a.jobs[i].gpu_seconds != b.jobs[i].gpu_seconds) {
      return false;
    }
  }
  return true;
}

// The end-to-end workload: the paper four-way comparison over two seeds —
// 8 independent (scheduler x seed) simulations. Two seeds matter for the
// parallel story: the Hadar simulation dominates a single comparison, so a
// seed-replicated sweep is what lets a multi-core box overlap the heavy
// cells instead of serializing on one of them.
std::vector<runner::SweepCase> four_way_cases(int jobs) {
  std::vector<runner::SweepCase> cases;
  for (const std::uint64_t seed : {42ULL, 7ULL}) {
    const auto cfg = runner::paper_static(jobs, seed);
    for (const auto& sched : runner::kPaperSchedulers) {
      cases.push_back({"seed=" + std::to_string(seed), sched, cfg});
    }
  }
  return cases;
}

// ---- staged-pipeline scaffolding microbench --------------------------------

// Five empty stages: a round through them is 100% pipeline scaffolding —
// the ClusterState clear, the RoundState reset, per-stage span + virtual
// dispatch, and the result move — with zero policy work. Its per-round cost
// is an upper bound on what the StagedScheduler driver adds to any of the
// former monolithic rounds.
struct NullAdmission final : pipeline::IAdmissionStage {
  std::string name() const override { return "bench.null"; }
  void admit(pipeline::RoundState&) override {}
};
struct NullPriority final : pipeline::IPriorityStage {
  std::string name() const override { return "bench.null"; }
  void prioritize(pipeline::RoundState&) override {}
};
struct NullAllocation final : pipeline::IAllocationStage {
  std::string name() const override { return "bench.null"; }
  void allocate(pipeline::RoundState&) override {}
};
struct NullPlacement final : pipeline::IPlacementStage {
  std::string name() const override { return "bench.null"; }
  void place(pipeline::RoundState&) override {}
};
struct NullPreemption final : pipeline::IPreemptionStage {
  std::string name() const override { return "bench.null"; }
  void preempt(pipeline::RoundState&) override {}
};

pipeline::StageSet null_stages() {
  pipeline::StageSet s;
  s.admission = std::make_shared<NullAdmission>();
  s.priority = std::make_shared<NullPriority>();
  s.allocation = std::make_shared<NullAllocation>();
  s.placement = std::make_shared<NullPlacement>();
  s.preemption = std::make_shared<NullPreemption>();
  return s;
}

// ---- Gavel LP event-resolve microbench -------------------------------------

// Snapshot of the Gavel max-min problem for one point in an event stream.
// Construction mirrors GavelScheduler::recompute_allocation.
solver::MaxMinProblem gavel_problem(const DecisionScenario& s,
                                    const std::vector<int>& alive) {
  const int R = s.spec.num_types();
  solver::MaxMinProblem p;
  p.cap.assign(static_cast<std::size_t>(R), 0.0);
  for (GpuTypeId r = 0; r < R; ++r) p.cap[static_cast<std::size_t>(r)] = s.spec.total_of_type(r);
  for (const int i : alive) {
    const auto& job = s.ctx.jobs[static_cast<std::size_t>(i)];
    std::vector<double> row(static_cast<std::size_t>(R), 0.0);
    for (GpuTypeId r = 0; r < R; ++r) {
      row[static_cast<std::size_t>(r)] = job.throughput_on(r) * job.spec->num_workers;
    }
    p.rate.push_back(std::move(row));
    p.demand.push_back(job.spec->num_workers);
    p.scale.push_back(std::max(1e-9, job.max_throughput() * job.spec->num_workers));
    p.key.push_back(job.id());
  }
  return p;
}

struct LpStreamResult {
  double ms_per_event = 0.0;
  double warm_hit_rate = 0.0;
};

// Times the re-solve after each event of a completion stream (one job leaves
// per event, the Gavel steady state). problems[0] is only used to prime the
// warm context; events 1..E are timed.
LpStreamResult time_lp_stream(const std::vector<solver::MaxMinProblem>& problems,
                              solver::LpEngine engine, bool warm, int reps) {
  LpStreamResult out;
  double total = 0.0;
  int count = 0;
  std::uint64_t attempts = 0, hits = 0;
  for (int rep = 0; rep < reps; ++rep) {
    solver::MaxMinContext ctx;
    if (warm) {
      (void)solver::solve_max_min_lp(problems[0], 200000, engine, &ctx);  // prime
    }
    for (std::size_t e = 1; e < problems.size(); ++e) {
      common::WallTimer t;
      const auto sol =
          solver::solve_max_min_lp(problems[e], 200000, engine, warm ? &ctx : nullptr);
      total += t.seconds();
      ++count;
      if (!sol.feasible) std::fprintf(stderr, "LP stream: infeasible event %zu\n", e);
    }
    attempts += ctx.max_min.stats().warm_attempts;
    hits += ctx.max_min.stats().warm_hits;
  }
  out.ms_per_event = count > 0 ? total * 1e3 / count : 0.0;
  out.warm_hit_rate =
      attempts > 0 ? static_cast<double>(hits) / static_cast<double>(attempts) : 0.0;
  return out;
}

}  // namespace

int main() {
  const int threads = common::ThreadPool::configured_concurrency();
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int e2e_jobs = bench::bench_jobs(96);

  std::printf("perf regression harness — %d thread lane(s), %d hardware core(s)\n\n",
              threads, hw);

  // ---- micro: FIND_ALLOC over a 128-job queue on an empty cluster ----
  const auto micro = make_decision_scenario(128);
  const core::UtilityFunction utility(core::UtilityKind::kEffectiveThroughput,
                                      static_cast<double>(micro.ctx.jobs.size()));
  core::PriceBook book(micro.spec.num_types(), core::PricingConfig{});
  book.compute_bounds(micro.ctx, utility);
  const sim::NetworkModel network;
  cluster::ClusterState state(&micro.spec);

  const double find_alloc_s = bench::median_timing([&] {
    return time_per_call([&] {
      for (const auto& j : micro.ctx.jobs) {
        auto cand = core::find_alloc(j, state, book, utility, 0.0, network, {});
        (void)cand;
      }
    });
  });
  const double find_alloc_us =
      find_alloc_s * 1e6 / static_cast<double>(micro.ctx.jobs.size());

  // ---- micro: one DP_allocation round decision, serial vs parallel ----
  std::vector<const sim::JobView*> queue;
  for (const auto& j : micro.ctx.jobs) queue.push_back(&j);
  auto dp_once = [&] {
    auto r = core::dp_allocation(queue, state, book, utility, 0.0, network, {});
    (void)r;
  };
  double dp_serial_ms = 0.0, dp_parallel_ms = 0.0, dp_parallel4_ms = 0.0;
  {
    common::ScopedThreadCount one(1);
    dp_serial_ms = bench::median_timing([&] { return time_per_call(dp_once); }) * 1e3;
  }
  {
    common::ScopedThreadCount many(threads);
    dp_parallel_ms = time_per_call(dp_once) * 1e3;
  }
  {
    // Pinned 4-lane run so the speedup figure is comparable across hosts
    // (the acceptance bar is "> 1.3x at 4 threads on a multi-core box").
    common::ScopedThreadCount four(4);
    dp_parallel4_ms = time_per_call(dp_once) * 1e3;
  }

  // ---- micro: thread-pool dispatch overhead ----
  // A trivial 64-way parallel_for on a private 4-lane pool: what one DP beam
  // level pays just to fan out. The function_ref-style dispatch enqueues raw
  // fn/arg tasks, so this is the descriptor + wakeup cost, no heap
  // std::function per lane.
  double pool_dispatch_us = 0.0;
  {
    common::ThreadPool pool(3);  // 4 lanes: 3 workers + the calling thread
    std::atomic<std::uint64_t> dispatch_sink{0};
    pool_dispatch_us =
        bench::median_timing([&] {
          return time_per_call([&] {
            common::parallel_for(
                64,
                [&](std::size_t i) {
                  dispatch_sink.fetch_add(i, std::memory_order_relaxed);
                },
                &pool);
          });
        }) *
        1e6;
  }

  // ---- micro: DP branch bookkeeping (undo log + incremental hash) ----
  // Per-branch cost of the snapshot replacement: mark, apply a two-node
  // allocation unchecked, read the O(1) state hash, roll back. This is what
  // every explored DP state pays instead of a full Snapshot copy + rehash.
  double dp_branch_ns = 0.0;
  {
    cluster::ClusterState branch_state(&micro.spec);
    branch_state.set_undo_enabled(true);
    const cluster::JobAllocation branch_alloc({{0, 0, 2}, {5, 1, 1}});
    constexpr int kBranches = 1024;
    volatile std::uint64_t hash_sink = 0;
    dp_branch_ns = bench::median_timing([&] {
                     return time_per_call([&] {
                       for (int i = 0; i < kBranches; ++i) {
                         const auto m = branch_state.mark();
                         branch_state.allocate_unchecked(branch_alloc);
                         hash_sink = branch_state.hash();
                         branch_state.rollback(m);
                       }
                     });
                   }) *
                   1e9 / kBranches;
    (void)hash_sink;
    branch_state.set_undo_enabled(false);
  }

  // ---- micro: Gavel LP event-resolve, dense vs revised vs warm ----
  // One job completes per event; Gavel re-solves the max-min LP each time.
  const auto lp_scn = make_decision_scenario(96);
  std::vector<solver::MaxMinProblem> lp_problems;
  {
    std::vector<int> alive(lp_scn.ctx.jobs.size());
    for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = static_cast<int>(i);
    lp_problems.push_back(gavel_problem(lp_scn, alive));
    for (int e = 0; e < 12; ++e) {
      alive.erase(alive.begin() + (static_cast<int>(alive.size()) * 2 / 3));
      lp_problems.push_back(gavel_problem(lp_scn, alive));
    }
  }
  const auto lp_dense = time_lp_stream(lp_problems, solver::LpEngine::kDense, false, 1);
  const auto lp_cold = time_lp_stream(lp_problems, solver::LpEngine::kRevised, false, 3);
  const auto lp_warm = time_lp_stream(lp_problems, solver::LpEngine::kRevised, true, 3);
  const double lp_warm_speedup =
      lp_warm.ms_per_event > 0.0 ? lp_dense.ms_per_event / lp_warm.ms_per_event : 0.0;

  // ---- micro: Gavel round loop with an unchanged job set ----
  // Steady-state rounds between events: priority rebuild + greedy packing,
  // no LP re-solve (epoch/id-signature change detection short-circuits it).
  double gavel_round_us = 0.0;
  {
    baselines::GavelScheduler gavel{baselines::GavelConfig{}};
    gavel.reset();
    (void)gavel.schedule(lp_scn.ctx);  // first round pays the LP solve
    gavel_round_us = time_per_call([&] { (void)gavel.schedule(lp_scn.ctx); }) * 1e6;
  }

  // ---- micro: per-round live-view refresh (masked_into, zero-alloc) ----
  // RoundEngine refreshes its live ClusterSpec in place each round instead
  // of constructing masked() copies; this pins the refresh cost on a
  // ~1k-node cluster with a degraded mask (the worst realistic case).
  double masked_refresh_us = 0.0;
  {
    const auto big = cluster::ClusterSpec::scaled(334);
    cluster::AvailabilityMask mask(big);
    for (NodeId h = 0; h < big.num_nodes(); h += 7) mask.set_node_up(h, false);
    for (NodeId h = 1; h < big.num_nodes(); h += 11) mask.degrade(h, 0, 1);
    cluster::ClusterSpec live = big.masked(mask);
    masked_refresh_us = bench::median_timing([&] {
                          return time_per_call([&] { big.masked_into(mask, &live); });
                        }) *
                        1e6;
  }

  // ---- micro: staged-pipeline scaffolding + per-stage round split ----
  // PR 9 re-expressed every scheduler as a StagedScheduler assembly; the 16
  // golden digests pin bit-identity, this pins the wall-clock side. The
  // empty-stage round is pure driver scaffolding, gated absolutely below as
  // staged_round_overhead and required to stay under 2% of the real Hadar
  // staged round on the same 96-job context. Stage timing on the Hadar round
  // yields the per-stage split.
  double staged_overhead_us = 0.0;
  double hadar_round_ms = 0.0;
  std::array<double, pipeline::kNumStages> hadar_stage_us{};
  {
    common::ScopedThreadCount one(1);
    pipeline::StagedScheduler nul("bench-null", null_stages());
    nul.reset();
    (void)nul.schedule(lp_scn.ctx);
    staged_overhead_us = bench::median_timing([&] {
                           return time_per_call([&] { (void)nul.schedule(lp_scn.ctx); });
                         }) *
                         1e6;

    core::HadarScheduler hadar;
    hadar.reset();
    (void)hadar.schedule(lp_scn.ctx);  // warm: price bounds + estimator state
    hadar.enable_stage_timing(true);
    hadar_round_ms = time_per_call([&] { (void)hadar.schedule(lp_scn.ctx); }) * 1e3;
    const double rounds = static_cast<double>(hadar.timed_rounds());
    for (int i = 0; i < pipeline::kNumStages; ++i) {
      hadar_stage_us[static_cast<std::size_t>(i)] =
          rounds > 0.0
              ? hadar.stage_seconds()[static_cast<std::size_t>(i)] / rounds * 1e6
              : 0.0;
    }
  }
  const double staged_overhead_frac =
      hadar_round_ms > 0.0 ? staged_overhead_us / (hadar_round_ms * 1e3) : 0.0;
  const bool staged_overhead_ok = staged_overhead_frac < 0.02;

  // ---- end-to-end: fig04-style Gavel max-sum, warm vs cold LP context ----
  double gavel_e2e_cold_s = 0.0, gavel_e2e_warm_s = 0.0;
  bool gavel_e2e_identical = false;
  {
    const auto gcfg = runner::paper_static(e2e_jobs, 42);
    auto run_one = [&](bool warm) {
      baselines::GavelConfig gc;
      gc.policy = baselines::GavelPolicy::kMaxSumThroughput;
      gc.warm_start = warm;
      baselines::GavelScheduler sched(gc);
      sim::Simulator simulator(gcfg.sim);
      return simulator.run(gcfg.spec, gcfg.trace, sched);
    };
    common::ScopedThreadCount one(1);
    sim::SimResult cold_res, warm_res;
    gavel_e2e_cold_s = common::time_call([&] { cold_res = run_one(false); });
    gavel_e2e_warm_s = common::time_call([&] { warm_res = run_one(true); });
    gavel_e2e_identical = same_schedule(cold_res, warm_res);
  }
  const double gavel_e2e_speedup =
      gavel_e2e_warm_s > 0.0 ? gavel_e2e_cold_s / gavel_e2e_warm_s : 0.0;

  // ---- obs: disabled-tracing scope cost ----
  // The RAII macro's disabled path must stay off the profile: one relaxed
  // atomic load + branch. Measured as the delta between a counting loop
  // with and without a scope per iteration.
  double ns_per_disabled_scope = 0.0;
  {
    volatile std::uint64_t scope_sink = 0;
    constexpr int kIters = 1 << 22;
    const double base_s = bench::median_timing([&] {
      return time_per_call([&] {
        for (int i = 0; i < kIters; ++i) scope_sink = scope_sink + 1;
      });
    }, 3);
    const double scoped_s = bench::median_timing([&] {
      return time_per_call([&] {
        for (int i = 0; i < kIters; ++i) {
          HADAR_TRACE_SCOPE("bench", "noop");
          scope_sink = scope_sink + 1;
        }
      });
    }, 3);
    ns_per_disabled_scope =
        std::max(0.0, scoped_s - base_s) * 1e9 / static_cast<double>(kIters);
  }

  // ---- obs: end-to-end tracing overhead + schedule identity ----
  // The same Hadar simulation untraced and with a full-detail session
  // installed: the traced run must produce the bit-identical schedule, and
  // the untraced run is what the perf gate protects.
  double sim_plain_s = 0.0, sim_traced_s = 0.0;
  bool traced_identical = false;
  std::size_t traced_events = 0;
  {
    const auto tcfg = runner::paper_static(std::min(e2e_jobs, 48), 42);
    auto run_one = [&] {
      auto sched = runner::make_scheduler("hadar");
      sim::Simulator simulator(tcfg.sim);
      return simulator.run(tcfg.spec, tcfg.trace, *sched);
    };
    common::ScopedThreadCount one(1);
    sim::SimResult plain, traced;
    sim_plain_s = common::time_call([&] { plain = run_one(); });
    {
      obs::TraceConfig ocfg;
      ocfg.detail = 2;
      obs::TraceSession session(ocfg);
      session.install();
      sim_traced_s = common::time_call([&] { traced = run_one(); });
      session.uninstall();
      traced_events = session.event_count();
    }
    traced_identical = same_schedule(plain, traced);
  }
  const double tracing_overhead =
      sim_plain_s > 0.0 ? sim_traced_s / sim_plain_s - 1.0 : 0.0;

  // ---- end-to-end: the paper four-way comparison as one sweep ----
  const auto cases = four_way_cases(e2e_jobs);
  std::vector<runner::SweepResult> serial_runs, parallel_runs;
  double e2e_serial_s = 0.0, e2e_parallel_s = 0.0;
  {
    common::ScopedThreadCount one(1);
    e2e_serial_s = common::time_call([&] { serial_runs = runner::sweep(cases); });
  }
  {
    common::ScopedThreadCount many(threads);
    e2e_parallel_s = common::time_call([&] { parallel_runs = runner::sweep(cases); });
  }

  bool deterministic = serial_runs.size() == parallel_runs.size();
  long long total_rounds = 0;
  for (std::size_t i = 0; i < parallel_runs.size(); ++i) {
    total_rounds += parallel_runs[i].result.rounds;
    deterministic =
        deterministic && same_schedule(serial_runs[i].result, parallel_runs[i].result);
  }
  const double speedup = e2e_parallel_s > 0.0 ? e2e_serial_s / e2e_parallel_s : 0.0;
  const double rounds_per_s =
      e2e_parallel_s > 0.0 ? static_cast<double>(total_rounds) / e2e_parallel_s : 0.0;

  common::AsciiTable t("perf regression (PR 9)", {"metric", "value"});
  t.add_row({"find_alloc / call", common::AsciiTable::num(find_alloc_us, 2) + " us"});
  t.add_row({"dp_allocation (1 thread)", common::AsciiTable::num(dp_serial_ms, 2) + " ms"});
  t.add_row({"dp_allocation (" + std::to_string(threads) + " threads)",
             common::AsciiTable::num(dp_parallel_ms, 2) + " ms"});
  t.add_row({"dp_allocation (4 threads, pinned)",
             common::AsciiTable::num(dp_parallel4_ms, 2) + " ms"});
  t.add_row({"pool dispatch, 64-way / 4 lanes",
             common::AsciiTable::num(pool_dispatch_us, 2) + " us"});
  t.add_row({"dp branch mark/apply/hash/rollback",
             common::AsciiTable::num(dp_branch_ns, 1) + " ns"});
  t.add_row({"gavel LP event re-solve, dense cold",
             common::AsciiTable::num(lp_dense.ms_per_event, 2) + " ms"});
  t.add_row({"gavel LP event re-solve, revised cold",
             common::AsciiTable::num(lp_cold.ms_per_event, 2) + " ms"});
  t.add_row({"gavel LP event re-solve, revised warm",
             common::AsciiTable::num(lp_warm.ms_per_event, 2) + " ms"});
  t.add_row({"warm vs dense speedup", common::AsciiTable::speedup(lp_warm_speedup, 2)});
  t.add_row({"warm-basis hit rate", common::AsciiTable::percent(lp_warm.warm_hit_rate)});
  t.add_row({"gavel round loop (no event)",
             common::AsciiTable::num(gavel_round_us, 1) + " us"});
  t.add_row({"masked_into refresh, ~1k nodes",
             common::AsciiTable::num(masked_refresh_us, 1) + " us"});
  t.add_row({"staged pipeline scaffolding / round",
             common::AsciiTable::num(staged_overhead_us, 2) + " us"});
  t.add_row({"hadar staged round (96 jobs)",
             common::AsciiTable::num(hadar_round_ms, 2) + " ms"});
  for (int i = 0; i < pipeline::kNumStages; ++i) {
    t.add_row({std::string("  stage ") +
                   pipeline::to_string(static_cast<pipeline::StageKind>(i)),
               common::AsciiTable::num(hadar_stage_us[static_cast<std::size_t>(i)], 1) +
                   " us"});
  }
  t.add_row({"pipeline overhead vs hadar round",
             common::AsciiTable::percent(staged_overhead_frac)});
  t.add_row({"pipeline overhead < 2%", staged_overhead_ok ? "yes" : "NO"});
  t.add_row({"gavel max-sum e2e, cold ctx",
             common::AsciiTable::num(gavel_e2e_cold_s, 2) + " s"});
  t.add_row({"gavel max-sum e2e, warm ctx",
             common::AsciiTable::num(gavel_e2e_warm_s, 2) + " s"});
  t.add_row({"gavel e2e warm == cold schedule", gavel_e2e_identical ? "yes" : "NO"});
  t.add_row({"sweep of " + std::to_string(cases.size()) + " sims, " +
                 std::to_string(e2e_jobs) + " jobs (1 thread)",
             common::AsciiTable::num(e2e_serial_s, 2) + " s"});
  t.add_row({"sweep (" + std::to_string(threads) + " threads)",
             common::AsciiTable::num(e2e_parallel_s, 2) + " s"});
  t.add_row({"end-to-end speedup", common::AsciiTable::speedup(speedup, 2)});
  t.add_row({"rounds / second", common::AsciiTable::num(rounds_per_s, 1)});
  t.add_row({"deterministic across threads", deterministic ? "yes" : "NO"});
  t.add_row({"disabled trace scope", common::AsciiTable::num(ns_per_disabled_scope, 2) + " ns"});
  t.add_row({"hadar e2e, tracing off", common::AsciiTable::num(sim_plain_s, 2) + " s"});
  t.add_row({"hadar e2e, tracing on (" + std::to_string(traced_events) + " events)",
             common::AsciiTable::num(sim_traced_s, 2) + " s"});
  t.add_row({"tracing overhead", common::AsciiTable::percent(tracing_overhead)});
  t.add_row({"traced == untraced schedule", traced_identical ? "yes" : "NO"});
  std::printf("%s\n", t.render().c_str());

  // ---- perf gate: calibration-normalized comparison vs baseline.json ----
  const double calib_s = bench::median_timing([] { return bench::calibration_run(); });
  std::vector<bench::GateMetric> gate_metrics = {
      {"find_alloc_call", find_alloc_us * 1e-6, 0.0},
      {"dp_allocation_serial", dp_serial_ms * 1e-3, 0.0},
      {"dp_branch_snapshot", dp_branch_ns * 1e-9, 0.0},
      {"pool_dispatch", pool_dispatch_us * 1e-6, 0.0},
      {"lp_event_revised_cold", lp_cold.ms_per_event * 1e-3, 0.0},
      {"lp_event_revised_warm", lp_warm.ms_per_event * 1e-3, 0.0},
      {"gavel_round_loop", gavel_round_us * 1e-6, 0.0},
      {"masked_refresh", masked_refresh_us * 1e-6, 0.0},
      {"staged_round_overhead", staged_overhead_us * 1e-6, 0.0},
      {"hadar_e2e_untraced", sim_plain_s, 0.0},
  };
  const bench::GateResult gate = bench::run_perf_gate(gate_metrics, calib_s);
  std::printf("%s\n", gate.report.c_str());
  if (std::FILE* f = std::fopen("perf_gate_current.json", "w")) {
    const std::string out = bench::gate_json(gate_metrics, calib_s);
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote perf_gate_current.json\n");
  }

  const char* out_path = "BENCH_PR9.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"pr\": 9,\n"
                 "  \"threads\": %d,\n"
                 "  \"hardware_concurrency\": %d,\n"
                 "  \"micro\": {\n"
                 "    \"find_alloc_us_per_call\": %.3f,\n"
                 "    \"dp_allocation_ms_serial\": %.3f,\n"
                 "    \"dp_allocation_ms_parallel\": %.3f,\n"
                 "    \"dp_allocation_speedup\": %.3f,\n"
                 "    \"dp_allocation_ms_parallel4\": %.3f,\n"
                 "    \"dp_allocation_speedup_4t\": %.3f,\n"
                 "    \"pool_dispatch_us\": %.3f,\n"
                 "    \"dp_branch_snapshot_ns\": %.1f\n"
                 "  },\n"
                 "  \"lp\": {\n"
                 "    \"jobs\": %zu,\n"
                 "    \"events\": %zu,\n"
                 "    \"cold_dense_ms_per_event\": %.3f,\n"
                 "    \"cold_revised_ms_per_event\": %.3f,\n"
                 "    \"warm_revised_ms_per_event\": %.3f,\n"
                 "    \"warm_vs_cold_dense_speedup\": %.3f,\n"
                 "    \"warm_hit_rate\": %.3f\n"
                 "  },\n"
                 "  \"gavel\": {\n"
                 "    \"round_loop_us_no_event\": %.2f,\n"
                 "    \"e2e_jobs\": %d,\n"
                 "    \"e2e_cold_seconds\": %.3f,\n"
                 "    \"e2e_warm_seconds\": %.3f,\n"
                 "    \"e2e_speedup\": %.3f,\n"
                 "    \"e2e_warm_cold_identical\": %s\n"
                 "  },\n"
                 "  \"end_to_end\": {\n"
                 "    \"jobs\": %d,\n"
                 "    \"sweep_cases\": %zu,\n"
                 "    \"serial_seconds\": %.3f,\n"
                 "    \"parallel_seconds\": %.3f,\n"
                 "    \"speedup\": %.3f,\n"
                 "    \"rounds_per_second\": %.1f,\n"
                 "    \"deterministic_across_threads\": %s\n"
                 "  },\n"
                 "  \"pipeline\": {\n"
                 "    \"staged_round_overhead_us\": %.3f,\n"
                 "    \"hadar_staged_round_ms\": %.3f,\n"
                 "    \"stage_us\": {\n"
                 "      \"admission\": %.2f,\n"
                 "      \"priority\": %.2f,\n"
                 "      \"allocation\": %.2f,\n"
                 "      \"placement\": %.2f,\n"
                 "      \"preemption\": %.2f\n"
                 "    },\n"
                 "    \"overhead_vs_hadar_round\": %.5f,\n"
                 "    \"overhead_under_2pct\": %s\n"
                 "  },\n"
                 "  \"obs\": {\n"
                 "    \"disabled_scope_ns\": %.3f,\n"
                 "    \"hadar_e2e_untraced_seconds\": %.3f,\n"
                 "    \"hadar_e2e_traced_seconds\": %.3f,\n"
                 "    \"tracing_overhead\": %.4f,\n"
                 "    \"traced_events\": %zu,\n"
                 "    \"traced_schedule_identical\": %s\n"
                 "  },\n"
                 "  \"perf_gate\": {\n"
                 "    \"calib_seconds\": %.6f,\n"
                 "    \"baseline_found\": %s,\n"
                 "    \"failed\": %s\n"
                 "  }\n"
                 "}\n",
                 threads, hw, find_alloc_us, dp_serial_ms, dp_parallel_ms,
                 dp_parallel_ms > 0.0 ? dp_serial_ms / dp_parallel_ms : 0.0,
                 dp_parallel4_ms,
                 dp_parallel4_ms > 0.0 ? dp_serial_ms / dp_parallel4_ms : 0.0,
                 pool_dispatch_us, dp_branch_ns, lp_scn.ctx.jobs.size(),
                 lp_problems.size() - 1, lp_dense.ms_per_event,
                 lp_cold.ms_per_event, lp_warm.ms_per_event, lp_warm_speedup,
                 lp_warm.warm_hit_rate, gavel_round_us, e2e_jobs, gavel_e2e_cold_s,
                 gavel_e2e_warm_s, gavel_e2e_speedup,
                 gavel_e2e_identical ? "true" : "false", e2e_jobs, cases.size(),
                 e2e_serial_s, e2e_parallel_s, speedup, rounds_per_s,
                 deterministic ? "true" : "false", staged_overhead_us,
                 hadar_round_ms, hadar_stage_us[0], hadar_stage_us[1],
                 hadar_stage_us[2], hadar_stage_us[3], hadar_stage_us[4],
                 staged_overhead_frac, staged_overhead_ok ? "true" : "false",
                 ns_per_disabled_scope, sim_plain_s,
                 sim_traced_s, tracing_overhead, traced_events,
                 traced_identical ? "true" : "false", calib_s,
                 gate.baseline_found ? "true" : "false", gate.failed ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "failed to open %s for writing\n", out_path);
    return 1;
  }
  if (gate.failed && bench::perf_gate_enforced()) {
    std::fprintf(stderr, "perf gate: FAILED (>25%% slowdown vs baseline)\n");
    return 3;
  }
  return deterministic && gavel_e2e_identical && traced_identical && staged_overhead_ok
             ? 0
             : 2;
}
