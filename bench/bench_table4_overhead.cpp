// Table IV — preemption overhead of Hadar's round-based scheduler per
// Table II model, with and without resource reallocation, over 6-minute
// rounds. Reported two ways: (1) directly from the checkpoint-cost model
// calibrated to the paper's measurements, and (2) measured end-to-end in a
// simulation where one job is forcibly reallocated (or not) every round.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/simulator.hpp"
#include "workload/model_zoo.hpp"

using namespace hadar;

namespace {

// Forces one job to flip between two placements every round (reallocation)
// or hold one placement (no reallocation).
class ForcedMove : public sim::IScheduler {
 public:
  explicit ForcedMove(bool move) : move_(move) {}
  std::string name() const override { return "forced-move"; }
  cluster::AllocationMap schedule(const sim::SchedulerContext& ctx) override {
    ++round_;
    cluster::AllocationMap m;
    for (const auto& j : ctx.jobs) {
      const NodeId node = move_ ? (round_ % 2) : 0;
      m.emplace(j.id(), cluster::JobAllocation({{node, 0, 1}}));
    }
    return m;
  }
  void reset() override { round_ = 0; }

 private:
  bool move_;
  long round_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  std::printf("Table IV — preemption overhead per model, 6-minute rounds\n\n");
  const auto zoo = workload::ModelZoo::paper_default();
  constexpr double kRound = 360.0;

  common::AsciiTable t("Checkpoint overhead",
                       {"model", "w/ realloc (model)", "w/o realloc (model)",
                        "w/ realloc (paper)", "w/o realloc (paper)", "measured w/",
                        "measured w/o"});
  const std::vector<std::pair<std::string, std::pair<double, double>>> paper = {
      {"ResNet-50", {2.1, 0.33}}, {"ResNet-18", {1.29, 0.21}}, {"LSTM", {2.01, 0.87}},
      {"CycleGAN", {0.68, 0.13}}, {"Transformer", {0.71, 0.17}}};

  for (const auto& [name, ref] : paper) {
    const auto* p = zoo.find(name);
    const double with_model = (p->checkpoint_save + p->checkpoint_load) / kRound;
    const double without_model = p->checkpoint_save / kRound;

    // End-to-end measurement: run one single-worker job of this model for
    // many rounds on a 2-node cluster, with vs without forced reallocation,
    // and compare the completion time against the overhead-free ideal.
    auto spec = cluster::ClusterSpec::from_counts(
        cluster::GpuTypeRegistry({{"V100", 10.0}}),
        {std::vector<int>{1}, std::vector<int>{1}});
    workload::Trace trace;
    {
      cluster::GpuTypeRegistry reg({{"V100", 10.0}});
      trace.jobs = {zoo.make_job(name, reg, 1, /*ideal_runtime=*/50 * kRound)};
      trace.finalize();
    }
    sim::SimConfig sc;
    sc.round_length = kRound;
    sc.use_flat_reallocation_penalty = false;
    sc.charge_periodic_save = true;
    sc.network.penalty_factor = 1.0;
    double measured[2];
    for (int mode = 0; mode < 2; ++mode) {
      ForcedMove sched(mode == 0);
      sim::Simulator sim(sc);
      const auto r = sim.run(spec, trace, sched);
      const double ideal = trace.jobs[0].min_runtime();
      measured[mode] = (r.jobs[0].jct() - ideal) / r.jobs[0].jct();
    }

    t.add_row({name, common::AsciiTable::percent(with_model, 2),
               common::AsciiTable::percent(without_model, 2),
               common::AsciiTable::num(ref.first, 2) + "%",
               common::AsciiTable::num(ref.second, 2) + "%",
               common::AsciiTable::percent(measured[0], 2),
               common::AsciiTable::percent(measured[1], 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("The checkpoint-cost model is calibrated to the paper's Table IV; the\n"
              "measured columns verify the simulator charges exactly those costs.\n");
  return 0;
}
