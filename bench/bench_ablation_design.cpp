// Design-choice ablations (DESIGN.md §6), one sweep per knob on a shared
// moderate workload:
//   1. DP beam width (include/exclude branching vs pure greedy);
//   2. task-level type mixing on/off (the headline capability);
//   3. allocation stickiness (incremental updates vs full recompute);
//   4. communication-cost weight;
//   5. price-function eta;
//   6. exponential (Eq. 5) price curve vs a near-flat one (eta -> huge).
// Also reports the empirical competitive ratio (Theorem 2 companion).
#include <cstdio>

#include "bench_common.hpp"
#include "core/competitive.hpp"
#include "core/hadar_scheduler.hpp"

using namespace hadar;

namespace {

sim::SimResult run(const runner::ExperimentConfig& cfg, const core::HadarConfig& hc) {
  sim::Simulator sim(cfg.sim);
  core::HadarScheduler sched(hc);
  return sim.run(cfg.spec, cfg.trace, sched);
}

}  // namespace

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  const auto cfg = runner::paper_static(bench::bench_jobs(120), 42);
  bench::print_header("Ablations", "Hadar design choices (static trace)", cfg);

  common::AsciiTable t("Design ablations",
                       {"configuration", "avg JCT", "makespan", "avg FTF", "job util",
                        "realloc rounds", "emp. ratio"});
  auto add = [&](const std::string& label, const core::HadarConfig& hc) {
    const auto r = run(cfg, hc);
    const auto rep = core::analyze_competitiveness(cfg.spec, cfg.trace, r, hc.utility,
                                                   hc.pricing);
    t.add_row({label, common::AsciiTable::duration(r.avg_jct),
               common::AsciiTable::duration(r.makespan),
               common::AsciiTable::num(r.avg_ftf, 3),
               common::AsciiTable::percent(r.avg_job_utilization),
               common::AsciiTable::percent(r.realloc_round_fraction),
               common::AsciiTable::num(rep.empirical_ratio, 2)});
  };

  core::HadarConfig base;
  add("baseline (defaults)", base);

  for (int beam : {1, 8, 256}) {
    core::HadarConfig hc = base;
    hc.dp.beam_width = beam;
    add("beam width " + std::to_string(beam), hc);
  }
  {
    core::HadarConfig hc = base;
    hc.dp.find_alloc.allow_mixed_types = false;
    add("no type mixing (job-level)", hc);
  }
  // (A "no multi-node placements" row is deliberately absent: the workload's
  // 8-16 worker gangs cannot fit any single 4-GPU node, so that restriction
  // leaves jobs permanently unschedulable rather than merely slower.)
  {
    core::HadarConfig hc = base;
    hc.sticky = false;
    add("full recompute every round", hc);
  }
  {
    core::HadarConfig hc = base;
    hc.full_recompute_period = 20;
    add("recompute every 20 rounds", hc);
  }
  for (double w : {0.0, 2.0}) {
    core::HadarConfig hc = base;
    hc.dp.find_alloc.comm_cost_weight = w;
    add("comm-cost weight " + common::AsciiTable::num(w, 1), hc);
  }
  for (double eta : {0.25, 4.0, 1e6}) {
    core::HadarConfig hc = base;
    hc.pricing.eta = eta;
    add(eta >= 1e5 ? "near-flat prices (eta=1e6)" : "eta " + common::AsciiTable::num(eta, 2),
        hc);
  }

  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: mixing and the DP branching should pay for themselves on JCT;\n"
              "stickiness trades a little JCT for far fewer reallocation rounds; the\n"
              "empirical ratio stays within the 2*alpha guarantee everywhere.\n");
  return 0;
}
