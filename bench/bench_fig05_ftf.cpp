// Fig. 5 — finish-time fairness (Themis rho) of Hadar, Gavel, and Tiresias.
// Paper: Hadar improves average FTF by ~1.5x over Gavel and ~1.8x over
// Tiresias.
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace hadar;

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  const auto cfg = runner::paper_static(bench::bench_jobs(240), 42);
  bench::print_header("Fig. 5", "finish-time fairness (static trace)", cfg);
  const auto runs = runner::compare(cfg, runner::kPreemptiveSchedulers);

  common::AsciiTable t("Finish-time fairness (lower is better)",
                       {"scheduler", "avg FTF", "median FTF", "p95 FTF", "max FTF"});
  for (const auto& run : runs) {
    std::vector<double> rhos;
    for (const auto& j : run.result.jobs) {
      if (j.finished()) rhos.push_back(j.ftf);
    }
    t.add_row({run.scheduler, common::AsciiTable::num(run.result.avg_ftf, 3),
               common::AsciiTable::num(common::median(rhos), 3),
               common::AsciiTable::num(common::percentile(rhos, 95), 3),
               common::AsciiTable::num(run.result.max_ftf, 3)});
  }
  std::printf("%s\n", t.render().c_str());

  const double hadar = runs[0].result.avg_ftf;
  std::printf("Hadar avg-FTF improvement: %.1fx vs Gavel (paper ~1.5x), %.1fx vs Tiresias"
              " (paper ~1.8x)\n",
              runs[1].result.avg_ftf / hadar, runs[2].result.avg_ftf / hadar);
  return 0;
}
