// Micro-benchmarks of the core building blocks plus the DESIGN.md ablation
// targets: price evaluation, FIND_ALLOC, DP_allocation (beam vs greedy,
// mixing on/off), pool dispatch overhead, DP branch bookkeeping (snapshot
// copy vs undo log), the LP and filling max-min solvers, and trace
// generation.
#include <benchmark/benchmark.h>

#include <atomic>

#include "common/thread_pool.hpp"
#include "core/dp_allocation.hpp"
#include "core/hadar_scheduler.hpp"
#include "solver/maxmin.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

using namespace hadar;

namespace {

struct World {
  cluster::ClusterSpec spec = cluster::ClusterSpec::simulation_default();
  workload::Trace trace;
  sim::SchedulerContext ctx;
  core::UtilityFunction utility;
  core::PriceBook book;

  explicit World(int jobs) : utility(core::UtilityKind::kEffectiveThroughput, jobs) {
    static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
    workload::TraceGenerator gen(&zoo, &spec.types());
    workload::TraceGenConfig cfg;
    cfg.num_jobs = jobs;
    cfg.seed = 99;
    trace = gen.generate(cfg);
    ctx.spec = &spec;
    ctx.round_length = 360.0;
    for (const auto& j : trace.jobs) {
      sim::JobView v;
      v.spec = &j;
      v.throughput = j.throughput;
      v.rounds_on_type.assign(3, 0);
      ctx.jobs.push_back(std::move(v));
    }
    book = core::PriceBook(3, core::PricingConfig{});
    book.compute_bounds(ctx, utility);
  }
};

void BM_PriceBounds(benchmark::State& state) {
  World w(static_cast<int>(state.range(0)));
  core::PriceBook book(3, core::PricingConfig{});
  for (auto _ : state) {
    book.compute_bounds(w.ctx, w.utility);
    benchmark::DoNotOptimize(book.alpha());
  }
}
BENCHMARK(BM_PriceBounds)->Arg(64)->Arg(512);

void BM_MarginalPrice(benchmark::State& state) {
  World w(32);
  cluster::ClusterState st(&w.spec);
  st.allocate(cluster::JobAllocation({{0, 0, 2}}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.book.marginal_price(st, 0, 0));
  }
}
BENCHMARK(BM_MarginalPrice);

void BM_FindAlloc(benchmark::State& state) {
  World w(32);
  cluster::ClusterState st(&w.spec);
  st.allocate(cluster::JobAllocation({{0, 0, 4}, {5, 1, 4}}));  // some load
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::find_alloc(w.ctx.jobs[0], st, w.book, w.utility, 0.0,
                                              sim::NetworkModel{}, core::FindAllocConfig{}));
  }
}
BENCHMARK(BM_FindAlloc);

void BM_DpAllocation(benchmark::State& state) {
  World w(static_cast<int>(state.range(0)));
  cluster::ClusterState st(&w.spec);
  std::vector<const sim::JobView*> queue;
  for (const auto& j : w.ctx.jobs) queue.push_back(&j);
  core::DpConfig cfg;
  cfg.beam_width = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::dp_allocation(queue, st, w.book, w.utility, 0.0, sim::NetworkModel{}, cfg));
  }
  state.SetLabel(cfg.beam_width == 1 ? "greedy" : "beam");
}
BENCHMARK(BM_DpAllocation)->Args({64, 1})->Args({64, 64})->Args({256, 64})
    ->Unit(benchmark::kMillisecond);

void BM_HadarFullRound(benchmark::State& state) {
  World w(static_cast<int>(state.range(0)));
  core::HadarScheduler sched;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.schedule(w.ctx));
  }
  state.SetLabel("ablation: full Hadar");
}
BENCHMARK(BM_HadarFullRound)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_HadarNoMixRound(benchmark::State& state) {
  World w(static_cast<int>(state.range(0)));
  core::HadarConfig cfg;
  cfg.dp.find_alloc.allow_mixed_types = false;
  core::HadarScheduler sched(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.schedule(w.ctx));
  }
  state.SetLabel("ablation: homogeneous placements only");
}
BENCHMARK(BM_HadarNoMixRound)->Arg(128)->Unit(benchmark::kMillisecond);

solver::MaxMinProblem maxmin_problem(int jobs) {
  World w(jobs);
  solver::MaxMinProblem p;
  p.cap = {20.0, 20.0, 20.0};
  for (const auto& j : w.ctx.jobs) {
    std::vector<double> row;
    for (GpuTypeId r = 0; r < 3; ++r) {
      row.push_back(j.throughput_on(r) * j.spec->num_workers);
    }
    p.rate.push_back(row);
    p.demand.push_back(j.spec->num_workers);
    p.scale.push_back(j.max_throughput() * j.spec->num_workers);
  }
  return p;
}

void BM_MaxMinLp(benchmark::State& state) {
  const auto p = maxmin_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_max_min_lp(p));
  }
}
BENCHMARK(BM_MaxMinLp)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_MaxMinFilling(benchmark::State& state) {
  const auto p = maxmin_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_max_min_filling(p));
  }
}
BENCHMARK(BM_MaxMinFilling)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond);

// Cost of fanning a trivial 64-way parallel_for across a private pool: the
// DP dispatches one of these per beam level, so enqueue overhead (now a
// single refcounted run descriptor instead of a std::function per lane) is
// hot-path relevant.
void BM_PoolDispatch(benchmark::State& state) {
  common::ThreadPool pool(static_cast<int>(state.range(0)) - 1);
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    common::parallel_for(
        64, [&](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); }, &pool);
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_PoolDispatch)->Arg(1)->Arg(4);

// DP branch bookkeeping, old way: materialize a snapshot, restore it into a
// scratch state, hash it from scratch.
void BM_DpBranchSnapshotCopy(benchmark::State& state) {
  World w(8);
  cluster::ClusterState st(&w.spec);
  const cluster::JobAllocation alloc({{0, 0, 2}, {1, 1, 1}});
  for (auto _ : state) {
    cluster::ClusterState scratch(&w.spec);
    scratch.restore(st.snapshot());
    scratch.allocate(alloc);
    const auto snap = scratch.snapshot();
    benchmark::DoNotOptimize(cluster::ClusterState::hash(snap));
    scratch.restore(st.snapshot());
  }
}
BENCHMARK(BM_DpBranchSnapshotCopy);

// DP branch bookkeeping, new way: undo-log mark/rollback with the
// incrementally maintained O(1) hash.
void BM_DpBranchUndo(benchmark::State& state) {
  World w(8);
  cluster::ClusterState st(&w.spec);
  st.set_undo_enabled(true);
  const cluster::JobAllocation alloc({{0, 0, 2}, {1, 1, 1}});
  for (auto _ : state) {
    const auto m = st.mark();
    st.allocate_unchecked(alloc);
    benchmark::DoNotOptimize(st.hash());
    st.rollback(m);
  }
}
BENCHMARK(BM_DpBranchUndo);

void BM_TraceGeneration(benchmark::State& state) {
  const auto spec = cluster::ClusterSpec::simulation_default();
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &spec.types());
  workload::TraceGenConfig cfg;
  cfg.num_jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(cfg));
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(480)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
