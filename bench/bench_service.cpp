// Service-mode benchmark: drives the durable SchedulerDaemon with Poisson
// arrival storms at 100x and 1000x the paper's continuous-trace rate and
// measures what the durability layer costs —
//   * admission-queue ingest throughput (events/second),
//   * per-round latency percentiles (p50/p95/p99, includes the changelog
//     append) and sustained rounds/second,
//   * crash-recovery time as a function of the changelog tail length
//     (replayed records vs wall-clock), and
//   * the EventLog sorted-view maintenance cost per round (the O(new
//     events) merge structure, guarded against regressing to a full sort).
//
// Emits BENCH_SERVICE.json and feeds the stable micros through the same
// calibration-normalized perf gate as bench_perf_regression (baseline.json
// keys service_round_median / service_recovery_per_round /
// event_log_round_delta; HADAR_PERF_GATE / HADAR_PERF_INJECT_SLOWDOWN
// apply).
//
// Knobs: HADAR_BENCH_JOBS (jobs per storm, default 96), HADAR_SERVICE_FSYNC
// (changelog durability mode for the storm runs, default none).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "perf_gate.hpp"
#include "runner/experiment.hpp"
#include "service/daemon.hpp"
#include "service/recovery.hpp"
#include "sim/event_log.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"

using namespace hadar;

namespace {

namespace fs = std::filesystem;

/// The paper's continuous experiments submit ~60 jobs/hour; the storms
/// multiply that.
constexpr double kPaperJobsPerHour = 60.0;

std::string fresh_dir(const std::string& name) {
  const std::string d = (fs::temp_directory_path() / ("hadar_bench_" + name)).string();
  fs::remove_all(d);
  return d;
}

workload::Trace storm_trace(const cluster::ClusterSpec& spec, int jobs, double rate_mult,
                            std::uint64_t seed) {
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenConfig cfg;
  cfg.num_jobs = jobs;
  cfg.arrivals = workload::ArrivalPattern::kContinuous;
  cfg.jobs_per_hour = kPaperJobsPerHour * rate_mult;
  cfg.seed = seed;
  return workload::TraceGenerator(&zoo, &spec.types()).generate(cfg);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct StormResult {
  double rate_mult = 0.0;
  int jobs = 0;
  double ingest_events_per_s = 0.0;
  long long rounds = 0;
  double run_seconds = 0.0;
  double rounds_per_s = 0.0;
  double round_ms_p50 = 0.0;
  double round_ms_p95 = 0.0;
  double round_ms_p99 = 0.0;
  double round_ms_max = 0.0;
  std::uint64_t changelog_bytes = 0;
  std::string dir;  ///< durable dir left behind for the recovery curve
};

StormResult run_storm(const cluster::ClusterSpec& spec, double rate_mult, int jobs,
                      long long snapshot_interval) {
  StormResult out;
  out.rate_mult = rate_mult;
  out.jobs = jobs;
  const workload::Trace trace = storm_trace(spec, jobs, rate_mult, 42);

  char tag[64];
  std::snprintf(tag, sizeof(tag), "storm_%dx", static_cast<int>(rate_mult));
  out.dir = fresh_dir(tag);

  service::ServiceConfig cfg;
  cfg.dir = out.dir;
  cfg.snapshot_interval = snapshot_interval;
  cfg.queue_depth = static_cast<std::size_t>(jobs);
  cfg.fsync = service::fsync_mode_from_env("HADAR_SERVICE_FSYNC", service::FsyncMode::kNone);
  cfg.sim.seed = 42;
  service::SchedulerDaemon daemon(&spec, runner::make_scheduler("hadar"), cfg);

  // Ingest: the bounded queue absorbing the whole storm in one burst.
  {
    common::WallTimer t;
    for (const auto& j : trace.jobs) {
      if (!daemon.submit(j)) std::fprintf(stderr, "storm: queue rejected job %d\n", j.id);
    }
    const double s = t.seconds();
    out.ingest_events_per_s = s > 0.0 ? static_cast<double>(jobs) / s : 0.0;
  }

  // Round loop: every round carries scheduling + advancement + the durable
  // changelog append.
  std::vector<double> round_s;
  common::WallTimer total;
  while (true) {
    common::WallTimer t;
    if (!daemon.run_round().has_value()) break;
    round_s.push_back(t.seconds());
  }
  out.run_seconds = total.seconds();
  out.rounds = daemon.engine().rounds_completed();
  out.rounds_per_s =
      out.run_seconds > 0.0 ? static_cast<double>(out.rounds) / out.run_seconds : 0.0;
  out.round_ms_p50 = percentile(round_s, 0.50) * 1e3;
  out.round_ms_p95 = percentile(round_s, 0.95) * 1e3;
  out.round_ms_p99 = percentile(round_s, 0.99) * 1e3;
  out.round_ms_max = round_s.empty() ? 0.0 : *std::max_element(round_s.begin(), round_s.end()) * 1e3;
  for (const auto& e : fs::directory_iterator(out.dir)) {
    if (e.path().extension() == ".wal") out.changelog_bytes += e.file_size();
  }
  return out;
}

struct RecoveryPoint {
  long long records = 0;
  double seconds = 0.0;
  double rounds_per_s = 0.0;
};

/// Recovery time vs changelog length: truncate a no-snapshot changelog to a
/// fraction of its records and time a full genesis replay of the prefix.
RecoveryPoint time_recovery(const cluster::ClusterSpec& spec, const std::string& src_wal,
                            const std::vector<std::uint64_t>& record_ends,
                            std::size_t keep_records) {
  const std::string dir = fresh_dir("recovery_curve");
  fs::create_directories(dir);
  const std::string dst = service::changelog_path(dir, 0);
  fs::copy_file(src_wal, dst);
  if (keep_records < record_ends.size()) {
    service::truncate_changelog(
        dst, keep_records == 0 ? service::kMagicSize : record_ends[keep_records - 1]);
  }
  sim::SimConfig sim;
  sim.seed = 42;
  sim::RoundEngine engine(&spec, sim);
  auto sched = runner::make_scheduler("hadar");
  sched->reset();
  const service::RecoveryReport rep = service::recover(dir, engine, *sched);
  RecoveryPoint p;
  p.records = rep.replayed_rounds;
  p.seconds = rep.seconds;
  p.rounds_per_s = rep.seconds > 0.0 ? static_cast<double>(rep.replayed_rounds) / rep.seconds : 0.0;
  return p;
}

/// EventLog sorted-view upkeep per round: append a round's worth of events,
/// consume the sorted delta — the daemon's notification path. The merge
/// structure makes this O(new events); a regression to a full per-round sort
/// shows up as superlinear time and trips the gate.
double event_log_round_delta_seconds() {
  constexpr int kRounds = 3000;
  constexpr int kPerRound = 32;
  const double s = bench::median_timing([&] {
    common::WallTimer t;
    sim::EventLog log;
    log.set_enabled(true);
    std::size_t cursor = 0;
    for (int r = 0; r < kRounds; ++r) {
      for (int e = 0; e < kPerRound; ++e) {
        // Timestamps interleave across rounds (arrivals recorded in the
        // past, finishes in the future) — the merge path, not append-only.
        const double time = r * 360.0 + ((e * 7919) % 720) - 360.0;
        log.record(time, e % 3 == 0 ? sim::EventKind::kFinish : sim::EventKind::kStart,
                   e, "");
      }
      const auto delta = log.sorted_since(cursor);
      cursor = log.size();
      if (delta.size() != kPerRound) std::fprintf(stderr, "event_log: bad delta\n");
    }
    return t.seconds();
  });
  return s / kRounds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceGuard trace_guard(argc, argv);
  const int jobs = bench::bench_jobs(96);
  const cluster::ClusterSpec spec = cluster::ClusterSpec::simulation_default();

  std::printf("service benchmark — durable daemon under Poisson arrival storms\n\n");

  // ---- arrival storms at 100x / 1000x the paper rate ----
  std::vector<StormResult> storms;
  storms.push_back(run_storm(spec, 100.0, jobs, /*snapshot_interval=*/50));
  storms.push_back(run_storm(spec, 1000.0, jobs, /*snapshot_interval=*/50));

  // ---- recovery-time curve over changelog length ----
  // A snapshot-free run leaves one changelog holding every round; replaying
  // prefixes of it is exactly "recover after N durable rounds".
  const StormResult curve_run = run_storm(spec, 1000.0, jobs, /*snapshot_interval=*/0);
  const std::string curve_wal = service::changelog_path(curve_run.dir, 0);
  const service::ChangelogScan curve_scan = service::scan_changelog(curve_wal);
  std::vector<RecoveryPoint> curve;
  for (const double frac : {0.25, 0.5, 1.0}) {
    const auto keep = static_cast<std::size_t>(frac * static_cast<double>(curve_scan.records.size()));
    curve.push_back(time_recovery(spec, curve_wal, curve_scan.record_ends, keep));
  }

  // ---- EventLog incremental sorted-view micro ----
  const double evlog_round_s = event_log_round_delta_seconds();

  common::AsciiTable t("service daemon under arrival storms",
                       {"rate", "jobs", "ingest ev/s", "rounds", "rounds/s", "round p50",
                        "round p99", "wal bytes"});
  for (const auto& s : storms) {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.0fx", s.rate_mult);
    t.add_row({rate, std::to_string(s.jobs), common::AsciiTable::num(s.ingest_events_per_s, 0),
               std::to_string(s.rounds), common::AsciiTable::num(s.rounds_per_s, 1),
               common::AsciiTable::num(s.round_ms_p50, 2) + " ms",
               common::AsciiTable::num(s.round_ms_p99, 2) + " ms",
               std::to_string(s.changelog_bytes)});
  }
  std::printf("%s\n", t.render().c_str());

  common::AsciiTable rt("crash recovery vs changelog length",
                        {"replayed rounds", "recovery time", "rounds/s"});
  for (const auto& p : curve) {
    rt.add_row({std::to_string(p.records), common::AsciiTable::num(p.seconds * 1e3, 1) + " ms",
                common::AsciiTable::num(p.rounds_per_s, 0)});
  }
  std::printf("%s\n", rt.render().c_str());
  std::printf("event log sorted-view upkeep: %.2f us/round\n\n", evlog_round_s * 1e6);

  // ---- perf gate over the stable micros ----
  const double calib_s = bench::median_timing([] { return bench::calibration_run(); });
  const RecoveryPoint& full = curve.back();
  std::vector<bench::GateMetric> gate_metrics = {
      {"service_round_median", storms[1].round_ms_p50 * 1e-3, 0.0},
      {"service_recovery_per_round",
       full.records > 0 ? full.seconds / static_cast<double>(full.records) : 0.0, 0.0},
      {"event_log_round_delta", evlog_round_s, 0.0},
  };
  const bench::GateResult gate = bench::run_perf_gate(gate_metrics, calib_s);
  std::printf("%s\n", gate.report.c_str());

  const char* out_path = "BENCH_SERVICE.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"storms\": [\n");
  for (std::size_t i = 0; i < storms.size(); ++i) {
    const auto& s = storms[i];
    std::fprintf(f,
                 "    {\"rate_mult\": %.0f, \"jobs\": %d, \"ingest_events_per_second\": %.0f,\n"
                 "     \"rounds\": %lld, \"rounds_per_second\": %.2f,\n"
                 "     \"round_ms\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, \"max\": %.4f},\n"
                 "     \"changelog_bytes\": %llu}%s\n",
                 s.rate_mult, s.jobs, s.ingest_events_per_s, s.rounds, s.rounds_per_s,
                 s.round_ms_p50, s.round_ms_p95, s.round_ms_p99, s.round_ms_max,
                 static_cast<unsigned long long>(s.changelog_bytes),
                 i + 1 < storms.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"recovery_curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::fprintf(f,
                 "    {\"replayed_rounds\": %lld, \"seconds\": %.6f, \"rounds_per_second\": %.0f}%s\n",
                 curve[i].records, curve[i].seconds, curve[i].rounds_per_s,
                 i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"event_log\": {\"sorted_view_us_per_round\": %.4f},\n",
               evlog_round_s * 1e6);
  // The gate micros under their baseline.json keys, so CI's baseline-drift
  // check can verify every baseline row is still being measured somewhere.
  std::fprintf(f, "  \"gate_metrics\": {\n");
  for (std::size_t i = 0; i < gate_metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.6f%s\n", gate_metrics[i].name.c_str(),
                 gate_metrics[i].seconds, i + 1 < gate_metrics.size() ? "," : "");
  }
  std::fprintf(f,
               "  },\n"
               "  \"perf_gate\": {\"calib_seconds\": %.6f, \"baseline_found\": %s, \"failed\": %s}\n"
               "}\n",
               calib_s, gate.baseline_found ? "true" : "false", gate.failed ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  for (const auto& s : storms) fs::remove_all(s.dir);
  fs::remove_all(curve_run.dir);

  if (gate.failed && bench::perf_gate_enforced()) {
    std::fprintf(stderr, "perf gate: FAILED (>25%% slowdown vs baseline)\n");
    return 3;
  }
  return 0;
}
