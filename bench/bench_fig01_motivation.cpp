// Fig. 1 — the motivating toy example (Sec. II-A).
//
// Cluster: 2 V100, 3 P100, 1 K80. Three jobs: J1 (3 GPUs, 80 epochs),
// J2 (2 GPUs, 30 epochs), J3 (2 GPUs, 50 epochs), with the reconstructed
// throughput matrix (DESIGN.md). Simulates Gavel and Hadar round by round
// and reports per-job average throughput and the avg-JCT improvement the
// paper quotes (~20%).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "runner/experiment.hpp"

using namespace hadar;

namespace {

cluster::ClusterSpec fig1_cluster() {
  return cluster::ClusterSpec::from_counts(
      cluster::GpuTypeRegistry::simulation_default(),
      {std::vector<int>{2, 0, 0}, std::vector<int>{0, 3, 0}, std::vector<int>{0, 0, 1}});
}

workload::Trace fig1_trace() {
  // One "round" of the toy = one epoch-batch; N = 100 iterations per epoch.
  // Reconstructed per-worker rates (it/s): chosen so the outcomes stated in
  // the paper hold, e.g. J1 on 2xV100 + 1xK80 runs at min(40,30)=30 it/s
  // aggregate (see DESIGN.md, substitution table).
  auto make = [](JobId id, int workers, std::int64_t epochs, std::vector<double> x) {
    workload::JobSpec j;
    j.id = id;
    std::string model = "J";
    model += std::to_string(id + 1);
    j.model = std::move(model);
    j.num_workers = workers;
    j.epochs = epochs;
    j.chunks_per_epoch = 100;
    j.throughput = std::move(x);
    return j;
  };
  workload::Trace t;
  t.jobs = {make(0, 3, 80, {20.0, 15.0, 10.0}), make(1, 2, 30, {10.0, 7.5, 5.0}),
            make(2, 2, 50, {5.0, 5.0, 6.25})};
  t.finalize();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  std::printf("Fig. 1 — motivating example: task-level (Hadar) vs job-level (Gavel)\n");
  const auto spec = fig1_cluster();
  const auto trace = fig1_trace();
  std::printf("cluster: %s\n\n", spec.summary().c_str());

  sim::SimConfig sc;
  sc.round_length = 60.0;               // toy rounds
  sc.flat_reallocation_penalty = 0.0;   // the toy ignores checkpoint cost
  sc.network.penalty_factor = 1.0;      // and communication cost

  common::AsciiTable table(
      "Round-by-round outcome",
      {"scheduler", "avg thpt J1", "avg thpt J2", "avg thpt J3", "JCT J1", "JCT J2",
       "JCT J3", "avg JCT"});
  double jct[2] = {0.0, 0.0};
  int row = 0;
  for (const char* name : {"hadar", "gavel"}) {
    sim::Simulator sim(sc);
    auto sched = runner::make_scheduler(name);
    const auto r = sim.run(spec, trace, *sched);
    std::vector<std::string> cells = {sched->name()};
    for (int j = 0; j < 3; ++j) {
      const auto& out = r.jobs[static_cast<std::size_t>(j)];
      const double iters = trace.jobs[static_cast<std::size_t>(j)].total_iterations();
      cells.push_back(common::AsciiTable::num(out.finished() ? iters / out.jct() : 0.0, 1));
    }
    for (int j = 0; j < 3; ++j) {
      cells.push_back(common::AsciiTable::duration(r.jobs[static_cast<std::size_t>(j)].jct()));
    }
    cells.push_back(common::AsciiTable::duration(r.avg_jct));
    table.add_row(std::move(cells));
    jct[row++] = r.avg_jct;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Hadar avg-JCT improvement over Gavel: %.0f%%  (paper: ~20%%)\n",
              (jct[1] / jct[0] - 1.0) * 100.0);

  // The static placement the paper walks through in round 1.
  const cluster::JobAllocation paper_j1({{0, 0, 2}, {2, 2, 1}});
  const double agg =
      paper_j1.bottleneck_throughput(trace.jobs[0].throughput) * paper_j1.total_workers();
  std::printf("J1 on 2xV100 + 1xK80: aggregate throughput = %.0f it/s (paper: min(40,30)=30)\n",
              agg);
  return 0;
}
