// Policy auto-tuner bench (DESIGN.md §15): grid-searches (deadline_weight,
// fairness_weight, quota_strictness) for one scheduler over the deadline/
// tenant slo_static scenario and emits BENCH_POLICY.json with every grid
// point and the winning weight vector. The tuner is deterministic — the
// grid order, the positional sweep contract, and the first-best tie-break
// make the winner identical at any HADAR_THREADS — and this bench proves it
// by running the grid twice and diffing the verdicts.
//
// Knobs: HADAR_BENCH_JOBS (trace size, default 96), HADAR_POLICY_SCHED
// (scheduler name, default hadar), HADAR_POLICY_QUOTA_GPH (per-tenant
// GPU-hour budget; default sized to half a fair share of the trace load so
// the quota axis actually binds).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "runner/tune_policy.hpp"

using namespace hadar;

int main(int argc, char** argv) {
  bench::TraceGuard trace_guard(argc, argv);

  const int jobs = bench::bench_jobs(96);
  const int tenants = 3;
  const runner::ExperimentConfig cfg = runner::slo_static(jobs, 42, 0.5, tenants);
  bench::print_header("bench_policy", "deadline/quota weight auto-tuner", cfg);

  runner::TuneGrid grid;
  // Half a fair per-tenant share: tight enough that the strictness axis
  // changes schedules, loose enough that the idle guard rarely fires.
  const double fair_share = cfg.trace.total_gpu_hours() / tenants;
  grid.quota_gpu_hours =
      common::env_double("HADAR_POLICY_QUOTA_GPH", 0.5 * fair_share, 0.0, 1e12);
  const std::string sched = common::env_str("HADAR_POLICY_SCHED", "hadar");

  const runner::TuneResult result = runner::tune_policy(sched, cfg, grid);
  const runner::TuneResult replay = runner::tune_policy(sched, cfg, grid);

  common::AsciiTable t("policy grid (" + sched + ", " + std::to_string(jobs) + " jobs, " +
                           std::to_string(tenants) + " tenants)",
                       {"dw", "fw", "qs", "score", "attain", "tard(s)", "imbal", "jct(s)"});
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const runner::TunePoint& p = result.points[i];
    t.add_row({common::AsciiTable::num(p.policy.deadline_weight, 2),
               common::AsciiTable::num(p.policy.fairness_weight, 2),
               common::AsciiTable::num(p.policy.quota_strictness, 2),
               common::AsciiTable::num(p.score, 4),
               common::AsciiTable::num(p.deadline_attainment, 3),
               common::AsciiTable::num(p.avg_tardiness, 0),
               common::AsciiTable::num(p.tenant_imbalance, 3),
               common::AsciiTable::num(p.avg_jct, 0)});
  }
  const runner::TunePoint& best = result.best_point();
  t.set_footnote("best: dw=" + common::AsciiTable::num(best.policy.deadline_weight, 2) +
                 " fw=" + common::AsciiTable::num(best.policy.fairness_weight, 2) +
                 " qs=" + common::AsciiTable::num(best.policy.quota_strictness, 2) +
                 " (score " + common::AsciiTable::num(best.score, 4) + ")");
  std::printf("%s\n", t.render().c_str());

  // Determinism self-check: the replayed grid must produce the identical
  // verdict byte for byte (same seeds, same positional sweep).
  const std::string json = runner::tune_result_json(result);
  const bool reproducible =
      result.best == replay.best && json == runner::tune_result_json(replay);
  std::printf("tuner reproducibility: %s\n", reproducible ? "ok" : "MISMATCH");

  if (std::FILE* f = std::fopen("BENCH_POLICY.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_POLICY.json\n");
  }

  return reproducible ? 0 : 1;
}
