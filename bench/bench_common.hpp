// Shared plumbing for the figure/table benches: workload sizing via
// environment override and uniform comparison-table printing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/table.hpp"
#include "runner/scenarios.hpp"

namespace hadar::bench {

/// Job count for the trace-driven figures. The paper uses 480; override with
/// HADAR_BENCH_JOBS to trade fidelity for wall-clock. Invalid values warn
/// and fall back (strict strtol parse — std::atoi would silently turn a
/// typo into 0).
inline int bench_jobs(int def) { return common::env_int("HADAR_BENCH_JOBS", def, 1); }

inline void print_header(const char* fig, const char* what,
                         const runner::ExperimentConfig& cfg) {
  std::printf("%s — %s\n", fig, what);
  std::printf("cluster: %s | jobs: %zu | total load: %.0f GPU-hours | round: %.0f s\n\n",
              cfg.spec.summary().c_str(), cfg.trace.jobs.size(),
              cfg.trace.total_gpu_hours(), cfg.sim.round_length);
}

/// Standard per-scheduler metric rows used by several figures.
inline void print_comparison(const std::string& title,
                             const std::vector<runner::SchedulerRun>& runs) {
  common::AsciiTable t(title, {"scheduler", "avg JCT", "median JCT", "p95 JCT", "makespan",
                               "queueing", "job util", "avg FTF", "realloc rounds"});
  for (const auto& run : runs) {
    const auto& r = run.result;
    t.add_row({run.scheduler, common::AsciiTable::duration(r.avg_jct),
               common::AsciiTable::duration(r.median_jct),
               common::AsciiTable::duration(r.p95_jct),
               common::AsciiTable::duration(r.makespan),
               common::AsciiTable::duration(r.avg_queueing_delay),
               common::AsciiTable::percent(r.avg_job_utilization),
               common::AsciiTable::num(r.avg_ftf, 3),
               common::AsciiTable::percent(r.realloc_round_fraction)});
  }
  std::printf("%s\n", t.render().c_str());
}

}  // namespace hadar::bench
