// Shared plumbing for the figure/table benches: workload sizing via
// environment override, uniform comparison-table printing, and the
// HADAR_TRACE / --trace observability knob.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/trace_report.hpp"
#include "common/env.hpp"
#include "common/table.hpp"
#include "obs/trace.hpp"
#include "runner/scenarios.hpp"

namespace hadar::bench {

/// Job count for the trace-driven figures. The paper uses 480; override with
/// HADAR_BENCH_JOBS to trade fidelity for wall-clock. Invalid values warn
/// and fall back (strict strtol parse — std::atoi would silently turn a
/// typo into 0).
inline int bench_jobs(int def) { return common::env_int("HADAR_BENCH_JOBS", def, 1); }

inline void print_header(const char* fig, const char* what,
                         const runner::ExperimentConfig& cfg) {
  std::printf("%s — %s\n", fig, what);
  std::printf("cluster: %s | jobs: %zu | total load: %.0f GPU-hours | round: %.0f s\n\n",
              cfg.spec.summary().c_str(), cfg.trace.jobs.size(),
              cfg.trace.total_gpu_hours(), cfg.sim.round_length);
}

/// Observability knob shared by every bench main. A trace is recorded when
/// HADAR_TRACE=<path> is set or `--trace <path>` is passed; detail comes
/// from HADAR_TRACE_DETAIL (0..2, default 1). On destruction the guard
/// writes the Chrome JSON (plus <path>.metrics.csv when per-round metrics
/// were sampled) and prints the trace_report round breakdown. With the knob
/// unset it constructs no session, so the instrumented code paths stay on
/// the disabled fast path.
class TraceGuard {
 public:
  explicit TraceGuard(int argc = 0, char** argv = nullptr) {
    const char* env = std::getenv("HADAR_TRACE");
    std::string path = env != nullptr ? env : "";
    for (int i = 1; argv != nullptr && i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0) path = argv[i + 1];
    }
    if (path.empty()) return;
    obs::TraceConfig cfg;
    cfg.path = path;
    cfg.detail = common::env_int("HADAR_TRACE_DETAIL", 1, 0);
    session_ = std::make_unique<obs::TraceSession>(cfg);
    session_->install();
  }

  ~TraceGuard() {
    if (session_ == nullptr) return;
    session_->uninstall();
    const std::string& path = session_->config().path;
    if (session_->write_chrome_json(path)) {
      std::printf("trace: %zu events -> %s (load via chrome://tracing or ui.perfetto.dev)\n",
                  session_->event_count(), path.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", path.c_str());
    }
    const std::string csv = session_->metrics_csv();
    if (!csv.empty()) {
      const std::string csv_path = path + ".metrics.csv";
      if (std::FILE* f = std::fopen(csv_path.c_str(), "w")) {
        std::fwrite(csv.data(), 1, csv.size(), f);
        std::fclose(f);
        std::printf("trace: per-round metrics -> %s\n", csv_path.c_str());
      }
    }
    std::printf("\n%s", analysis::trace_report(*session_).c_str());
  }

  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

  obs::TraceSession* session() { return session_.get(); }

 private:
  std::unique_ptr<obs::TraceSession> session_;
};

/// Standard per-scheduler metric rows used by several figures.
inline void print_comparison(const std::string& title,
                             const std::vector<runner::SchedulerRun>& runs) {
  common::AsciiTable t(title, {"scheduler", "avg JCT", "median JCT", "p95 JCT", "makespan",
                               "queueing", "job util", "avg FTF", "realloc rounds"});
  for (const auto& run : runs) {
    const auto& r = run.result;
    t.add_row({run.scheduler, common::AsciiTable::duration(r.avg_jct),
               common::AsciiTable::duration(r.median_jct),
               common::AsciiTable::duration(r.p95_jct),
               common::AsciiTable::duration(r.makespan),
               common::AsciiTable::duration(r.avg_queueing_delay),
               common::AsciiTable::percent(r.avg_job_utilization),
               common::AsciiTable::num(r.avg_ftf, 3),
               common::AsciiTable::percent(r.realloc_round_fraction)});
  }
  std::printf("%s\n", t.render().c_str());
}

}  // namespace hadar::bench
