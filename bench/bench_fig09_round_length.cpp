// Fig. 9 — impact of the scheduling-round length (6 to 48 minutes) on
// Hadar's average JCT, across increasing arrival rates. Paper shape: small
// rounds win (fresher allocations); large rounds degrade JCT through
// queueing delay and allocation drift, roughly half of it queueing.
#include <cstdio>
#include <iterator>

#include "bench_common.hpp"

using namespace hadar;

int main(int argc, char** argv) {
  hadar::bench::TraceGuard trace_guard(argc, argv);
  const int jobs = bench::bench_jobs(160);
  const double round_minutes[] = {6.0, 12.0, 24.0, 48.0};
  const double rates[] = {40.0, 80.0};

  std::printf("Fig. 9 — avg JCT vs round length (continuous trace, %d jobs, Hadar)\n\n",
              jobs);
  common::AsciiTable t("Average JCT by round length", [&] {
    std::vector<std::string> h = {"round length"};
    for (double rate : rates) h.push_back("avg JCT @" +
                                          common::AsciiTable::num(rate, 0) + " jobs/h");
    for (double rate : rates) h.push_back("queueing @" +
                                          common::AsciiTable::num(rate, 0) + " jobs/h");
    return h;
  }());

  // All (round length, rate) Hadar runs are independent: one parallel sweep.
  std::vector<runner::SweepCase> cases;
  for (double mins : round_minutes) {
    for (double rate : rates) {
      auto cfg = runner::paper_continuous(rate, jobs, 42);
      cfg.sim.round_length = mins * 60.0;
      cases.push_back({common::AsciiTable::num(mins, 0) + " min", "hadar",
                       std::move(cfg)});
    }
  }
  const auto results = runner::sweep(cases);
  for (std::size_t mi = 0; mi < std::size(round_minutes); ++mi) {
    std::vector<std::string> row = {cases[mi * std::size(rates)].label};
    for (std::size_t ri = 0; ri < std::size(rates); ++ri) {
      row.push_back(common::AsciiTable::duration(
          results[mi * std::size(rates) + ri].result.avg_jct));
    }
    for (std::size_t ri = 0; ri < std::size(rates); ++ri) {
      row.push_back(common::AsciiTable::duration(
          results[mi * std::size(rates) + ri].result.avg_queueing_delay));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Paper shape: longer rounds degrade avg JCT; queueing delay contributes\n"
              "roughly half of the degradation.\n");
  return 0;
}
