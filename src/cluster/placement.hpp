// Greedy gang-placement helpers shared by the baseline schedulers and the
// sharded scheduler's cross-cell migration pass: gang-sized grabs of free
// devices with consolidation-first node choice. Moved here from
// baselines/alloc_util so layers below baselines (the cell orchestrator in
// sim/) can reuse them.
#pragma once

#include <optional>
#include <vector>

#include "cluster/cluster_state.hpp"

namespace hadar::cluster {

/// Takes exactly `workers` type-`r` devices, preferring nodes with the most
/// free devices of that type (fewest nodes spanned). nullopt if infeasible.
std::optional<JobAllocation> take_homogeneous(const ClusterState& state, GpuTypeId r,
                                              int workers);

/// Takes exactly `workers` devices following `type_order` (devices of
/// type_order[0] first, then type_order[1], ...), consolidation-first within
/// each type. May mix types. nullopt if infeasible.
std::optional<JobAllocation> take_in_type_order(const ClusterState& state,
                                                const std::vector<GpuTypeId>& type_order,
                                                int workers);

/// Heterogeneity-unaware gang fill as a production scheduler would do it:
/// prefer a single device pool (the usable type with the most free devices
/// that fits the whole gang — device affinity, no throughput awareness),
/// fall back to mixing types only when no single pool fits.
std::optional<JobAllocation> take_unaware(const ClusterState& state,
                                          const std::vector<GpuTypeId>& usable,
                                          int workers);

}  // namespace hadar::cluster
