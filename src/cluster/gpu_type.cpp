#include "cluster/gpu_type.hpp"

#include <stdexcept>

namespace hadar::cluster {

GpuTypeRegistry::GpuTypeRegistry(std::vector<GpuTypeInfo> types) : types_(std::move(types)) {
  if (types_.empty()) throw std::invalid_argument("GpuTypeRegistry: no types");
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name.empty()) throw std::invalid_argument("GpuTypeRegistry: empty type name");
    if (types_[i].relative_speed <= 0.0) {
      throw std::invalid_argument("GpuTypeRegistry: non-positive relative speed");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (types_[j].name == types_[i].name) {
        throw std::invalid_argument("GpuTypeRegistry: duplicate type " + types_[i].name);
      }
    }
  }
}

const GpuTypeInfo& GpuTypeRegistry::info(GpuTypeId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("GpuTypeRegistry::info: bad id");
  return types_[static_cast<std::size_t>(id)];
}

GpuTypeId GpuTypeRegistry::find(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (types_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return kInvalidGpuType;
}

GpuTypeId GpuTypeRegistry::at(const std::string& name) const {
  const GpuTypeId id = find(name);
  if (id == kInvalidGpuType) throw std::out_of_range("GpuTypeRegistry::at: unknown type " + name);
  return id;
}

bool GpuTypeRegistry::operator==(const GpuTypeRegistry& other) const {
  if (size() != other.size()) return false;
  for (int i = 0; i < size(); ++i) {
    if (types_[static_cast<std::size_t>(i)].name !=
        other.types_[static_cast<std::size_t>(i)].name) {
      return false;
    }
  }
  return true;
}

GpuTypeRegistry GpuTypeRegistry::simulation_default() {
  return GpuTypeRegistry({{"V100", 10.0}, {"P100", 4.0}, {"K80", 1.0}});
}

GpuTypeRegistry GpuTypeRegistry::aws_prototype() {
  return GpuTypeRegistry({{"V100", 10.0}, {"T4", 5.0}, {"K80", 1.0}, {"K520", 0.8}});
}

}  // namespace hadar::cluster
