#include "cluster/allocation.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "common/binary.hpp"

namespace hadar::cluster {

JobAllocation::JobAllocation(std::vector<TaskPlacement> placements)
    : placements_(std::move(placements)) {
  for (const auto& p : placements_) {
    if (p.count <= 0) throw std::invalid_argument("JobAllocation: non-positive worker count");
    if (p.node < 0 || p.type < 0) throw std::invalid_argument("JobAllocation: invalid ids");
  }
  normalize();
}

int JobAllocation::total_workers() const {
  int n = 0;
  for (const auto& p : placements_) n += p.count;
  return n;
}

int JobAllocation::nodes_used() const {
  std::set<NodeId> nodes;
  for (const auto& p : placements_) nodes.insert(p.node);
  return static_cast<int>(nodes.size());
}

int JobAllocation::types_used() const {
  std::set<GpuTypeId> types;
  for (const auto& p : placements_) types.insert(p.type);
  return static_cast<int>(types.size());
}

int JobAllocation::workers_of_type(GpuTypeId r) const {
  int n = 0;
  for (const auto& p : placements_) {
    if (p.type == r) n += p.count;
  }
  return n;
}

double JobAllocation::bottleneck_throughput(const std::vector<double>& xs) const {
  if (placements_.empty()) return 0.0;
  double x = std::numeric_limits<double>::infinity();
  for (const auto& p : placements_) {
    const auto r = static_cast<std::size_t>(p.type);
    const double v = r < xs.size() ? xs[r] : 0.0;
    x = std::min(x, v);
  }
  return x;
}

void JobAllocation::normalize() {
  std::sort(placements_.begin(), placements_.end(),
            [](const TaskPlacement& a, const TaskPlacement& b) {
              return a.node != b.node ? a.node < b.node : a.type < b.type;
            });
  // Merge adjacent placements on the same (node, type).
  std::vector<TaskPlacement> merged;
  for (const auto& p : placements_) {
    if (!merged.empty() && merged.back().node == p.node && merged.back().type == p.type) {
      merged.back().count += p.count;
    } else {
      merged.push_back(p);
    }
  }
  placements_ = std::move(merged);
}

std::string JobAllocation::to_string(const ClusterSpec& spec) const {
  if (placements_.empty()) return "(paused)";
  std::string s;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (i) s += " + ";
    const auto& p = placements_[i];
    s += 'n';
    s += std::to_string(p.node);
    s += ':';
    s += spec.types().name(p.type);
    s += 'x';
    s += std::to_string(p.count);
  }
  return s;
}

void JobAllocation::save(common::BinaryWriter& w) const {
  w.u32(static_cast<std::uint32_t>(placements_.size()));
  for (const auto& p : placements_) {
    w.i32(p.node);
    w.i32(p.type);
    w.i32(p.count);
  }
}

JobAllocation JobAllocation::restore(common::BinaryReader& r) {
  std::vector<TaskPlacement> ps(r.u32());
  for (auto& p : ps) {
    p.node = r.i32();
    p.type = r.i32();
    p.count = r.i32();
  }
  return ps.empty() ? JobAllocation{} : JobAllocation(std::move(ps));
}

namespace {

// used[h][r] accumulated across an allocation map.
std::vector<std::vector<int>> usage(const ClusterSpec& spec, const AllocationMap& allocs) {
  std::vector<std::vector<int>> used(
      static_cast<std::size_t>(spec.num_nodes()),
      std::vector<int>(static_cast<std::size_t>(spec.num_types()), 0));
  for (const auto& [job, alloc] : allocs) {
    (void)job;
    for (const auto& p : alloc.placements()) {
      used.at(static_cast<std::size_t>(p.node)).at(static_cast<std::size_t>(p.type)) += p.count;
    }
  }
  return used;
}

}  // namespace

bool fits(const ClusterSpec& spec, const AllocationMap& taken, const JobAllocation& alloc) {
  auto used = usage(spec, taken);
  for (const auto& p : alloc.placements()) {
    if (p.node < 0 || p.node >= spec.num_nodes()) return false;
    if (p.type < 0 || p.type >= spec.num_types()) return false;
    auto& u = used[static_cast<std::size_t>(p.node)][static_cast<std::size_t>(p.type)];
    u += p.count;
    if (u > spec.node(p.node).capacity(p.type)) return false;
  }
  return true;
}

std::string validate(const ClusterSpec& spec, const AllocationMap& allocs) {
  for (const auto& [job, alloc] : allocs) {
    for (const auto& p : alloc.placements()) {
      if (p.node < 0 || p.node >= spec.num_nodes()) {
        return "job " + std::to_string(job) + ": invalid node " + std::to_string(p.node);
      }
      if (p.type < 0 || p.type >= spec.num_types()) {
        return "job " + std::to_string(job) + ": invalid type " + std::to_string(p.type);
      }
    }
  }
  const auto used = usage(spec, allocs);
  for (NodeId h = 0; h < spec.num_nodes(); ++h) {
    for (GpuTypeId r = 0; r < spec.num_types(); ++r) {
      const int u = used[static_cast<std::size_t>(h)][static_cast<std::size_t>(r)];
      const int c = spec.node(h).capacity(r);
      if (u > c) {
        return "node " + std::to_string(h) + " type " + spec.types().name(r) +
               ": used " + std::to_string(u) + " > capacity " + std::to_string(c);
      }
    }
  }
  return {};
}

}  // namespace hadar::cluster
