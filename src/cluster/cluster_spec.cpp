#include "cluster/cluster_spec.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/binary.hpp"

namespace hadar::cluster {

int NodeSpec::total_gpus() const {
  return std::accumulate(gpu_capacity.begin(), gpu_capacity.end(), 0);
}

AvailabilityMask::AvailabilityMask(const ClusterSpec& spec) : spec_(&spec) {
  up_.assign(static_cast<std::size_t>(spec.num_nodes()), 1);
  degraded_.assign(static_cast<std::size_t>(spec.num_nodes()) *
                       static_cast<std::size_t>(spec.num_types()),
                   0);
}

std::size_t AvailabilityMask::index(NodeId h, GpuTypeId r) const {
  return static_cast<std::size_t>(h) * static_cast<std::size_t>(spec_->num_types()) +
         static_cast<std::size_t>(r);
}

bool AvailabilityMask::node_up(NodeId h) const {
  if (spec_ == nullptr || h < 0 || h >= spec_->num_nodes()) return false;
  return up_[static_cast<std::size_t>(h)] != 0;
}

bool AvailabilityMask::set_node_up(NodeId h, bool up) {
  if (spec_ == nullptr || h < 0 || h >= spec_->num_nodes()) {
    throw std::out_of_range("AvailabilityMask::set_node_up: bad node id");
  }
  char& cur = up_[static_cast<std::size_t>(h)];
  const char want = up ? 1 : 0;
  if (cur == want) return false;
  cur = want;
  return true;
}

int AvailabilityMask::degraded(NodeId h, GpuTypeId r) const {
  if (spec_ == nullptr || h < 0 || h >= spec_->num_nodes() || r < 0 ||
      r >= spec_->num_types()) {
    return 0;
  }
  return degraded_[index(h, r)];
}

int AvailabilityMask::degrade(NodeId h, GpuTypeId r, int count) {
  if (spec_ == nullptr || h < 0 || h >= spec_->num_nodes() || r < 0 ||
      r >= spec_->num_types()) {
    throw std::out_of_range("AvailabilityMask::degrade: bad (node, type)");
  }
  int& d = degraded_[index(h, r)];
  const int cap = spec_->node(h).capacity(r);
  const int before = d;
  d = std::clamp(d + count, 0, cap);
  return d - before;
}

int AvailabilityMask::live_capacity(NodeId h, GpuTypeId r) const {
  if (!node_up(h) || r < 0 || r >= spec_->num_types()) return 0;
  const int cap = spec_->node(h).capacity(r) - degraded_[index(h, r)];
  return cap > 0 ? cap : 0;
}

int AvailabilityMask::total_live() const {
  if (spec_ == nullptr) return 0;
  int total = 0;
  for (NodeId h = 0; h < spec_->num_nodes(); ++h) {
    for (GpuTypeId r = 0; r < spec_->num_types(); ++r) total += live_capacity(h, r);
  }
  return total;
}

bool AvailabilityMask::all_available() const {
  if (spec_ == nullptr) return true;
  for (char u : up_) {
    if (!u) return false;
  }
  for (int d : degraded_) {
    if (d != 0) return false;
  }
  return true;
}

void AvailabilityMask::save(common::BinaryWriter& w) const {
  w.u32(static_cast<std::uint32_t>(up_.size()));
  for (char u : up_) w.u8(static_cast<std::uint8_t>(u));
  w.u32(static_cast<std::uint32_t>(degraded_.size()));
  for (int d : degraded_) w.i32(d);
}

void AvailabilityMask::restore(common::BinaryReader& r) {
  const std::uint32_t nu = r.u32();
  if (nu != up_.size()) throw std::runtime_error("AvailabilityMask::restore: shape mismatch");
  for (char& u : up_) u = static_cast<char>(r.u8());
  const std::uint32_t nd = r.u32();
  if (nd != degraded_.size()) {
    throw std::runtime_error("AvailabilityMask::restore: shape mismatch");
  }
  for (int& d : degraded_) d = r.i32();
}

ClusterSpec::ClusterSpec(GpuTypeRegistry types, std::vector<NodeSpec> nodes)
    : types_(std::move(types)), nodes_(std::move(nodes)) {
  totals_.assign(static_cast<std::size_t>(types_.size()), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeSpec& n = nodes_[i];
    if (n.id != static_cast<NodeId>(i)) {
      throw std::invalid_argument("ClusterSpec: node ids must be dense and in order");
    }
    if (n.gpu_capacity.size() != static_cast<std::size_t>(types_.size())) {
      throw std::invalid_argument("ClusterSpec: capacity vector arity mismatch");
    }
    for (int r = 0; r < types_.size(); ++r) {
      const int c = n.gpu_capacity[static_cast<std::size_t>(r)];
      if (c < 0) throw std::invalid_argument("ClusterSpec: negative capacity");
      totals_[static_cast<std::size_t>(r)] += c;
    }
  }
}

const NodeSpec& ClusterSpec::node(NodeId h) const {
  if (h < 0 || h >= num_nodes()) throw std::out_of_range("ClusterSpec::node: bad id");
  return nodes_[static_cast<std::size_t>(h)];
}

int ClusterSpec::total_of_type(GpuTypeId r) const {
  if (r < 0 || r >= num_types()) return 0;
  return totals_[static_cast<std::size_t>(r)];
}

int ClusterSpec::total_gpus() const {
  return std::accumulate(totals_.begin(), totals_.end(), 0);
}

std::string ClusterSpec::summary() const {
  std::string s = std::to_string(num_nodes()) + " nodes, " + std::to_string(total_gpus()) +
                  " GPUs (";
  for (int r = 0; r < num_types(); ++r) {
    if (r) s += ", ";
    s += types_.name(r) + ":" + std::to_string(total_of_type(r));
  }
  s += ")";
  return s;
}

ClusterSpec ClusterSpec::masked(const AvailabilityMask& mask) const {
  ClusterSpec out;
  masked_into(mask, &out);
  return out;
}

void ClusterSpec::masked_into(const AvailabilityMask& mask, ClusterSpec* out) const {
  if (out == nullptr) throw std::invalid_argument("ClusterSpec::masked_into: null out");
  if (out == this) throw std::invalid_argument("ClusterSpec::masked_into: out aliases source");
  const auto R = static_cast<std::size_t>(num_types());
  if (out->types_.size() != num_types()) out->types_ = types_;
  out->nodes_.resize(nodes_.size());
  out->totals_.assign(R, 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeSpec& src = nodes_[i];
    NodeSpec& dst = out->nodes_[i];
    dst.id = src.id;
    dst.available = mask.node_up(src.id);
    dst.gpu_capacity.resize(R);
    for (GpuTypeId r = 0; r < num_types(); ++r) {
      const int live = mask.live_capacity(src.id, r);
      dst.gpu_capacity[static_cast<std::size_t>(r)] = live;
      out->totals_[static_cast<std::size_t>(r)] += live;
    }
  }
}

ClusterSpec ClusterSpec::from_counts(GpuTypeRegistry types,
                                     const std::vector<std::vector<int>>& counts_per_node) {
  std::vector<NodeSpec> nodes;
  nodes.reserve(counts_per_node.size());
  for (std::size_t i = 0; i < counts_per_node.size(); ++i) {
    nodes.push_back(NodeSpec{static_cast<NodeId>(i), counts_per_node[i]});
  }
  return ClusterSpec(std::move(types), std::move(nodes));
}

ClusterSpec ClusterSpec::simulation_default() {
  // 15 nodes / 60 GPUs: five 4-GPU nodes per type (V100, P100, K80).
  std::vector<std::vector<int>> counts;
  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i < 5; ++i) {
      std::vector<int> c(3, 0);
      c[static_cast<std::size_t>(r)] = 4;
      counts.push_back(std::move(c));
    }
  }
  return from_counts(GpuTypeRegistry::simulation_default(), counts);
}

ClusterSpec ClusterSpec::aws_prototype() {
  // Types: V100, T4, K80, K520 — two single-GPU instances of each.
  std::vector<std::vector<int>> counts;
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 2; ++i) {
      std::vector<int> c(4, 0);
      c[static_cast<std::size_t>(r)] = 1;
      counts.push_back(std::move(c));
    }
  }
  return from_counts(GpuTypeRegistry::aws_prototype(), counts);
}

ClusterSpec ClusterSpec::scaled(int nodes_per_type, int gpus_per_node) {
  if (nodes_per_type <= 0 || gpus_per_node <= 0) {
    throw std::invalid_argument("ClusterSpec::scaled: non-positive size");
  }
  std::vector<std::vector<int>> counts;
  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i < nodes_per_type; ++i) {
      std::vector<int> c(3, 0);
      c[static_cast<std::size_t>(r)] = gpus_per_node;
      counts.push_back(std::move(c));
    }
  }
  return from_counts(GpuTypeRegistry::simulation_default(), counts);
}

}  // namespace hadar::cluster
