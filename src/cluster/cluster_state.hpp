// Mutable view of free/used devices during a scheduling decision. The Hadar
// DP mutates and rolls back this state along include/exclude branches, so it
// supports cheap snapshot/restore, an O(1) undo log for branch rollback, and
// an incrementally maintained hash for memoization.
//
// Layout is structure-of-arrays: alongside the dense used_[node*ntypes+type]
// counters the state maintains per-type free totals, per-node free counts,
// the cluster-wide free total, and a dense table of usable (node, type)
// slots (available node, capacity > 0). total_free_of_type()/total_free()/
// is_full() are therefore O(1) instead of full scans, and FIND_ALLOC gathers
// candidate slots from the usable table without probing dead cells.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/allocation.hpp"
#include "cluster/cluster_spec.hpp"

namespace hadar::cluster {

/// Free-capacity tracker over a ClusterSpec. Not thread-safe by design: a
/// scheduling decision is a single-threaded search.
class ClusterState {
 public:
  explicit ClusterState(const ClusterSpec* spec);

  const ClusterSpec& spec() const { return *spec_; }

  int free_count(NodeId h, GpuTypeId r) const;
  int used_count(NodeId h, GpuTypeId r) const;

  /// Whether node h is live in the underlying (possibly masked) spec.
  bool node_available(NodeId h) const { return spec_->node(h).available; }

  /// Cluster-wide free devices of type r. O(1) (maintained).
  int total_free_of_type(GpuTypeId r) const;
  /// Cluster-wide free devices across all types. O(1) (maintained).
  int total_free() const { return total_free_; }
  /// Free devices on node h across all types. O(1) (maintained).
  int node_free(NodeId h) const;
  /// The paper's gamma_h^r(t): allocated count on (h, r).
  int gamma(NodeId h, GpuTypeId r) const { return used_count(h, r); }

  bool is_full() const { return total_free_ == 0; }

  /// One (node, type) cell with capacity on a live node. `cell` indexes the
  /// dense used/capacity arrays (node * num_types + type).
  struct UsableSlot {
    NodeId node;
    GpuTypeId type;
    std::int32_t cell;
  };
  /// Dense table of usable cells, ascending (node, type). Rebuilt by clear()
  /// from the (possibly re-masked) spec; allocate/release never change it.
  const std::vector<UsableSlot>& usable_slots() const { return usable_; }
  /// Free devices in a dense cell index (no bounds check; hot path).
  int free_in_cell(std::size_t cell) const {
    return cap_[cell] - used_[cell];
  }

  /// Claims the placements of `alloc`. Throws std::runtime_error when
  /// capacity would be exceeded (callers must check with can_allocate()).
  void allocate(const JobAllocation& alloc);

  /// allocate() without the feasibility check, for replaying placement
  /// sequences already validated on an identical usage trajectory (the DP's
  /// branch reconstruction). Still recorded in the undo log when enabled.
  void allocate_unchecked(const JobAllocation& alloc);

  /// Releases the placements of `alloc` (exact inverse of allocate()).
  void release(const JobAllocation& alloc);

  bool can_allocate(const JobAllocation& alloc) const;

  /// Resets to all-free and re-reads the spec: cached capacities, the usable
  /// slot table, and all aggregates are rebuilt. Required because masked
  /// specs are rewritten in place on topology changes.
  void clear();

  /// Snapshot/restore for search rollback; snapshots are value types.
  using Snapshot = std::vector<int>;
  Snapshot snapshot() const { return used_; }
  void restore(const Snapshot& snap);

  // ---- undo log: O(touched cells) rollback for the DP's branch search ----
  /// Enables/disables recording. Disabling clears the log. Off by default so
  /// long-lived states (the simulator's refit state) never grow a log.
  void set_undo_enabled(bool on);
  bool undo_enabled() const { return undo_enabled_; }
  using UndoMark = std::size_t;
  /// Position in the log; pass to rollback() to revert to this point.
  UndoMark mark() const { return undo_.size(); }
  /// Reverts every mutation recorded after `m` (reverse order), restoring
  /// counters, aggregates, and the hash exactly.
  void rollback(UndoMark m);

  /// Incrementally maintained hash of the usage vector (XOR-fold of mixed
  /// per-cell terms, so updates are O(1) per touched cell and the value is
  /// independent of mutation order). Memoization key for the DP.
  std::uint64_t hash() const { return hash_; }
  /// Same hash computed from scratch on a snapshot, so the DP can key a
  /// state without restoring it first; agrees with hash() by construction.
  static std::uint64_t hash(const Snapshot& snap);

 private:
  std::size_t index(NodeId h, GpuTypeId r) const;
  /// Writes used_[cell] = v and updates aggregates + hash (not the undo log).
  void set_cell(std::size_t cell, int v);
  /// set_cell that records the previous value when undo is enabled.
  void mutate_cell(std::size_t cell, int v);

  const ClusterSpec* spec_;
  int num_nodes_ = 0;
  int num_types_ = 0;
  std::vector<int> used_;  // dense [node][type]
  std::vector<int> cap_;   // dense cached capacities (snapshot of the spec)
  std::vector<int> free_of_type_;
  std::vector<int> node_free_;
  int total_free_ = 0;
  std::uint64_t hash_ = 0;
  std::vector<UsableSlot> usable_;

  bool undo_enabled_ = false;
  std::vector<std::pair<std::uint32_t, int>> undo_;  // (cell, previous value)
};

}  // namespace hadar::cluster
