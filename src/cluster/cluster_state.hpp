// Mutable view of free/used devices during a scheduling decision. The Hadar
// DP mutates and rolls back this state along include/exclude branches, so it
// supports cheap snapshot/restore and a stable hash for memoization.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/allocation.hpp"
#include "cluster/cluster_spec.hpp"

namespace hadar::cluster {

/// Free-capacity tracker over a ClusterSpec. Not thread-safe by design: a
/// scheduling decision is a single-threaded search.
class ClusterState {
 public:
  explicit ClusterState(const ClusterSpec* spec);

  const ClusterSpec& spec() const { return *spec_; }

  int free_count(NodeId h, GpuTypeId r) const;
  int used_count(NodeId h, GpuTypeId r) const;

  /// Whether node h is live in the underlying (possibly masked) spec.
  bool node_available(NodeId h) const { return spec_->node(h).available; }

  /// Cluster-wide free devices of type r.
  int total_free_of_type(GpuTypeId r) const;
  /// Cluster-wide free devices across all types.
  int total_free() const;
  /// The paper's gamma_h^r(t): allocated count on (h, r).
  int gamma(NodeId h, GpuTypeId r) const { return used_count(h, r); }

  bool is_full() const { return total_free() == 0; }

  /// Claims the placements of `alloc`. Throws std::runtime_error when
  /// capacity would be exceeded (callers must check with can_allocate()).
  void allocate(const JobAllocation& alloc);

  /// Releases the placements of `alloc` (exact inverse of allocate()).
  void release(const JobAllocation& alloc);

  bool can_allocate(const JobAllocation& alloc) const;

  /// Resets to all-free.
  void clear();

  /// Snapshot/restore for search rollback; snapshots are value types.
  using Snapshot = std::vector<int>;
  Snapshot snapshot() const { return used_; }
  void restore(const Snapshot& snap);

  /// FNV-1a hash of the usage vector; memoization key for the DP.
  std::uint64_t hash() const;
  /// Same hash computed directly on a snapshot, so the DP can key a state
  /// without restoring it first.
  static std::uint64_t hash(const Snapshot& snap);

 private:
  std::size_t index(NodeId h, GpuTypeId r) const;

  const ClusterSpec* spec_;
  std::vector<int> used_;  // dense [node][type]
};

}  // namespace hadar::cluster
