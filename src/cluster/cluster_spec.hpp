// Static description of a heterogeneous cluster: which machines exist and
// how many accelerators of each type they carry (the paper's c_h^r).
#pragma once

#include <string>
#include <vector>

#include "cluster/gpu_type.hpp"
#include "common/types.hpp"

namespace hadar::common {
class BinaryWriter;
class BinaryReader;
}  // namespace hadar::common

namespace hadar::cluster {

/// One machine. gpu_capacity[r] == number of type-r devices on this node.
/// `available` is false in live (masked) views of a cluster whose node is
/// currently down — such nodes keep their id but expose zero capacity.
struct NodeSpec {
  NodeId id = kInvalidNode;
  std::vector<int> gpu_capacity;
  bool available = true;

  int capacity(GpuTypeId r) const {
    return (r >= 0 && static_cast<std::size_t>(r) < gpu_capacity.size())
               ? gpu_capacity[static_cast<std::size_t>(r)]
               : 0;
  }
  int total_gpus() const;
};

class ClusterSpec;

/// Per-node / per-(node, type) availability overlay over a ClusterSpec:
/// which machines are up and how many devices of each type are degraded
/// (failed individually while their node stays up). The failure model
/// mutates a mask; `ClusterSpec::masked()` turns it into the live capacity
/// view schedulers see.
class AvailabilityMask {
 public:
  AvailabilityMask() = default;
  /// Everything up, nothing degraded.
  explicit AvailabilityMask(const ClusterSpec& spec);

  bool node_up(NodeId h) const;
  /// Returns true when the call actually changed the node's state.
  bool set_node_up(NodeId h, bool up);

  int degraded(NodeId h, GpuTypeId r) const;
  /// Adds `count` degraded devices on (h, r) (negative restores them).
  /// Clamped to [0, capacity]; returns the delta actually applied.
  int degrade(NodeId h, GpuTypeId r, int count);

  /// Capacity of (h, r) visible to schedulers: 0 when the node is down,
  /// otherwise nameplate capacity minus degraded devices.
  int live_capacity(NodeId h, GpuTypeId r) const;
  int total_live() const;
  bool all_available() const;

  /// Bit-exact persistence for the durability layer. restore() requires a
  /// mask already bound to the same spec shape (node/type counts must match,
  /// else std::runtime_error).
  void save(common::BinaryWriter& w) const;
  void restore(common::BinaryReader& r);

 private:
  std::size_t index(NodeId h, GpuTypeId r) const;

  const ClusterSpec* spec_ = nullptr;
  std::vector<char> up_;
  std::vector<int> degraded_;  // dense [node][type]
};

/// Immutable cluster description shared by schedulers and the simulator.
class ClusterSpec {
 public:
  ClusterSpec() = default;
  ClusterSpec(GpuTypeRegistry types, std::vector<NodeSpec> nodes);

  const GpuTypeRegistry& types() const { return types_; }
  int num_types() const { return types_.size(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const NodeSpec& node(NodeId h) const;
  const std::vector<NodeSpec>& nodes() const { return nodes_; }

  /// Cluster-wide device count of type r.
  int total_of_type(GpuTypeId r) const;
  /// Cluster-wide device count across all types.
  int total_gpus() const;

  /// Human-readable one-line summary, e.g. "15 nodes, 60 GPUs (V100:20 ...)".
  std::string summary() const;

  /// Live view under `mask`: down nodes keep their id but get zero capacity
  /// and `available == false`; degraded devices are subtracted per (h, r).
  /// Node ids stay dense so allocations keyed by NodeId remain meaningful.
  ClusterSpec masked(const AvailabilityMask& mask) const;

  /// In-place masked(): rewrites `*out` to the live view, reusing its node
  /// and capacity buffers when shapes already match — the per-round refresh
  /// then allocates nothing. `out` is typically a previously masked copy of
  /// *this (its address must stay stable for schedulers caching spec
  /// pointers); it must not alias *this.
  void masked_into(const AvailabilityMask& mask, ClusterSpec* out) const;

  /// Builder: `counts_per_node[i][r]` gives node i's type-r capacity.
  static ClusterSpec from_counts(GpuTypeRegistry types,
                                 const std::vector<std::vector<int>>& counts_per_node);

  /// The paper's simulated cluster (Sec. IV-A): 15 nodes, 20 GPUs of each of
  /// V100/P100/K80 (60 total). Nodes carry 4 GPUs each; five nodes per type.
  static ClusterSpec simulation_default();

  /// The paper's AWS prototype (Sec. IV-B): 8 nodes, 8 GPUs — two nodes of
  /// each of V100 (p3.2xlarge), T4 (g4dn.xlarge), K80 (p2.xlarge), and
  /// K520 (g2dn.2xlarge), one GPU per node.
  static ClusterSpec aws_prototype();

  /// A scaled heterogeneous cluster for scalability studies: `scale` nodes
  /// per type, 4 GPUs per node, using the simulation type registry.
  static ClusterSpec scaled(int nodes_per_type, int gpus_per_node = 4);

 private:
  GpuTypeRegistry types_;
  std::vector<NodeSpec> nodes_;
  std::vector<int> totals_;
};

}  // namespace hadar::cluster
