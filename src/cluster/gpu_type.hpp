// GPU/accelerator type registry: maps device-type names ("V100", "K80", ...)
// to dense ids used everywhere else. Registries are immutable after
// construction so the id <-> name mapping can never shift under a running
// experiment.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace hadar::cluster {

/// Static metadata for one accelerator type.
struct GpuTypeInfo {
  std::string name;       ///< e.g. "V100"
  double relative_speed;  ///< nominal speed vs the slowest type (display only)
};

/// Immutable, ordered set of accelerator types in a cluster.
class GpuTypeRegistry {
 public:
  GpuTypeRegistry() = default;
  explicit GpuTypeRegistry(std::vector<GpuTypeInfo> types);

  /// Number of registered types (R in the paper).
  int size() const { return static_cast<int>(types_.size()); }

  const GpuTypeInfo& info(GpuTypeId id) const;
  const std::string& name(GpuTypeId id) const { return info(id).name; }

  /// Id for a type name, or kInvalidGpuType when unknown.
  GpuTypeId find(const std::string& name) const;

  /// Id for a type name; throws std::out_of_range when unknown.
  GpuTypeId at(const std::string& name) const;

  bool operator==(const GpuTypeRegistry& other) const;

  /// The registry used by the paper's simulations: V100, P100, K80
  /// (fastest first).
  static GpuTypeRegistry simulation_default();

  /// The registry of the paper's AWS prototype: V100, T4, K80, K520.
  static GpuTypeRegistry aws_prototype();

 private:
  std::vector<GpuTypeInfo> types_;
};

}  // namespace hadar::cluster
