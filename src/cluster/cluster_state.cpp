#include "cluster/cluster_state.hpp"

#include <stdexcept>

namespace hadar::cluster {

ClusterState::ClusterState(const ClusterSpec* spec) : spec_(spec) {
  if (spec_ == nullptr) throw std::invalid_argument("ClusterState: null spec");
  used_.assign(static_cast<std::size_t>(spec_->num_nodes()) *
                   static_cast<std::size_t>(spec_->num_types()),
               0);
}

std::size_t ClusterState::index(NodeId h, GpuTypeId r) const {
  if (h < 0 || h >= spec_->num_nodes() || r < 0 || r >= spec_->num_types()) {
    throw std::out_of_range("ClusterState: bad (node, type)");
  }
  return static_cast<std::size_t>(h) * static_cast<std::size_t>(spec_->num_types()) +
         static_cast<std::size_t>(r);
}

int ClusterState::free_count(NodeId h, GpuTypeId r) const {
  return spec_->node(h).capacity(r) - used_[index(h, r)];
}

int ClusterState::used_count(NodeId h, GpuTypeId r) const { return used_[index(h, r)]; }

int ClusterState::total_free_of_type(GpuTypeId r) const {
  int n = 0;
  for (NodeId h = 0; h < spec_->num_nodes(); ++h) n += free_count(h, r);
  return n;
}

int ClusterState::total_free() const {
  int n = 0;
  for (GpuTypeId r = 0; r < spec_->num_types(); ++r) n += total_free_of_type(r);
  return n;
}

void ClusterState::allocate(const JobAllocation& alloc) {
  if (!can_allocate(alloc)) throw std::runtime_error("ClusterState::allocate: over capacity");
  for (const auto& p : alloc.placements()) used_[index(p.node, p.type)] += p.count;
}

void ClusterState::release(const JobAllocation& alloc) {
  for (const auto& p : alloc.placements()) {
    auto& u = used_[index(p.node, p.type)];
    if (u < p.count) throw std::runtime_error("ClusterState::release: underflow");
    u -= p.count;
  }
}

bool ClusterState::can_allocate(const JobAllocation& alloc) const {
  // Placements are normalized (one entry per (node, type)), so a per-entry
  // check is exact.
  for (const auto& p : alloc.placements()) {
    if (p.node < 0 || p.node >= spec_->num_nodes()) return false;
    if (p.type < 0 || p.type >= spec_->num_types()) return false;
    if (free_count(p.node, p.type) < p.count) return false;
  }
  return true;
}

void ClusterState::clear() { std::fill(used_.begin(), used_.end(), 0); }

void ClusterState::restore(const Snapshot& snap) {
  if (snap.size() != used_.size()) throw std::invalid_argument("ClusterState::restore: arity");
  used_ = snap;
}

std::uint64_t ClusterState::hash() const { return hash(used_); }

std::uint64_t ClusterState::hash(const Snapshot& snap) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (int u : snap) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(u));
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

}  // namespace hadar::cluster
