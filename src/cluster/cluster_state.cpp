#include "cluster/cluster_state.hpp"

#include <stdexcept>

namespace hadar::cluster {

namespace {

// Per-cell hash term: a SplitMix64-style finalizer over (cell index, count).
// The state hash is the XOR of these terms over all cells, which makes
// incremental maintenance O(1) per touched cell (XOR the old term out, the
// new one in) and the value independent of the order mutations happened in.
std::uint64_t cell_term(std::size_t cell, int used) {
  std::uint64_t x = (static_cast<std::uint64_t>(cell) << 32) ^
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(used));
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

constexpr std::uint64_t kHashSeed = 1469598103934665603ULL;

}  // namespace

ClusterState::ClusterState(const ClusterSpec* spec) : spec_(spec) {
  if (spec_ == nullptr) throw std::invalid_argument("ClusterState: null spec");
  clear();
}

std::size_t ClusterState::index(NodeId h, GpuTypeId r) const {
  if (h < 0 || h >= num_nodes_ || r < 0 || r >= num_types_) {
    throw std::out_of_range("ClusterState: bad (node, type)");
  }
  return static_cast<std::size_t>(h) * static_cast<std::size_t>(num_types_) +
         static_cast<std::size_t>(r);
}

int ClusterState::free_count(NodeId h, GpuTypeId r) const {
  const std::size_t i = index(h, r);
  return cap_[i] - used_[i];
}

int ClusterState::used_count(NodeId h, GpuTypeId r) const { return used_[index(h, r)]; }

int ClusterState::total_free_of_type(GpuTypeId r) const {
  if (r < 0 || r >= num_types_) throw std::out_of_range("ClusterState: bad type");
  return free_of_type_[static_cast<std::size_t>(r)];
}

int ClusterState::node_free(NodeId h) const {
  if (h < 0 || h >= num_nodes_) throw std::out_of_range("ClusterState: bad node");
  return node_free_[static_cast<std::size_t>(h)];
}

void ClusterState::set_cell(std::size_t cell, int v) {
  const int old = used_[cell];
  if (old == v) return;
  const int delta = v - old;
  used_[cell] = v;
  free_of_type_[cell % static_cast<std::size_t>(num_types_)] -= delta;
  node_free_[cell / static_cast<std::size_t>(num_types_)] -= delta;
  total_free_ -= delta;
  hash_ ^= cell_term(cell, old) ^ cell_term(cell, v);
}

void ClusterState::mutate_cell(std::size_t cell, int v) {
  if (undo_enabled_ && used_[cell] != v) {
    undo_.emplace_back(static_cast<std::uint32_t>(cell), used_[cell]);
  }
  set_cell(cell, v);
}

void ClusterState::allocate(const JobAllocation& alloc) {
  if (!can_allocate(alloc)) throw std::runtime_error("ClusterState::allocate: over capacity");
  allocate_unchecked(alloc);
}

void ClusterState::allocate_unchecked(const JobAllocation& alloc) {
  for (const auto& p : alloc.placements()) {
    const std::size_t i = index(p.node, p.type);
    mutate_cell(i, used_[i] + p.count);
  }
}

void ClusterState::release(const JobAllocation& alloc) {
  for (const auto& p : alloc.placements()) {
    const std::size_t i = index(p.node, p.type);
    if (used_[i] < p.count) throw std::runtime_error("ClusterState::release: underflow");
    mutate_cell(i, used_[i] - p.count);
  }
}

bool ClusterState::can_allocate(const JobAllocation& alloc) const {
  // Placements are normalized (one entry per (node, type)), so a per-entry
  // check is exact.
  for (const auto& p : alloc.placements()) {
    if (p.node < 0 || p.node >= num_nodes_) return false;
    if (p.type < 0 || p.type >= num_types_) return false;
    const std::size_t i = static_cast<std::size_t>(p.node) *
                              static_cast<std::size_t>(num_types_) +
                          static_cast<std::size_t>(p.type);
    if (cap_[i] - used_[i] < p.count) return false;
  }
  return true;
}

void ClusterState::clear() {
  num_nodes_ = spec_->num_nodes();
  num_types_ = spec_->num_types();
  const std::size_t cells =
      static_cast<std::size_t>(num_nodes_) * static_cast<std::size_t>(num_types_);
  used_.assign(cells, 0);
  cap_.resize(cells);
  free_of_type_.assign(static_cast<std::size_t>(num_types_), 0);
  node_free_.assign(static_cast<std::size_t>(num_nodes_), 0);
  total_free_ = 0;
  usable_.clear();
  std::uint64_t h = kHashSeed;
  std::size_t i = 0;
  for (NodeId n = 0; n < num_nodes_; ++n) {
    const NodeSpec& node = spec_->node(n);
    for (GpuTypeId r = 0; r < num_types_; ++r, ++i) {
      const int c = node.capacity(r);
      cap_[i] = c;
      free_of_type_[static_cast<std::size_t>(r)] += c;
      node_free_[static_cast<std::size_t>(n)] += c;
      total_free_ += c;
      h ^= cell_term(i, 0);
      if (c > 0 && node.available) {
        usable_.push_back(UsableSlot{n, r, static_cast<std::int32_t>(i)});
      }
    }
  }
  hash_ = h;
  undo_.clear();
}

void ClusterState::restore(const Snapshot& snap) {
  if (snap.size() != used_.size()) throw std::invalid_argument("ClusterState::restore: arity");
  for (std::size_t i = 0; i < snap.size(); ++i) mutate_cell(i, snap[i]);
}

void ClusterState::set_undo_enabled(bool on) {
  undo_enabled_ = on;
  undo_.clear();
}

void ClusterState::rollback(UndoMark m) {
  if (m > undo_.size()) throw std::invalid_argument("ClusterState::rollback: bad mark");
  while (undo_.size() > m) {
    const auto [cell, prev] = undo_.back();
    undo_.pop_back();
    set_cell(cell, prev);
  }
}

std::uint64_t ClusterState::hash(const Snapshot& snap) {
  std::uint64_t h = kHashSeed;
  for (std::size_t i = 0; i < snap.size(); ++i) h ^= cell_term(i, snap[i]);
  return h;
}

}  // namespace hadar::cluster
