#include "cluster/placement.hpp"

#include <algorithm>

namespace hadar::cluster {

std::optional<JobAllocation> take_homogeneous(const ClusterState& state, GpuTypeId r,
                                              int workers) {
  const auto& spec = state.spec();
  if (r < 0 || r >= spec.num_types() || workers <= 0) return std::nullopt;
  if (state.total_free_of_type(r) < workers) return std::nullopt;

  std::vector<std::pair<int, NodeId>> nodes;  // (free, node), consolidation-first
  for (NodeId h = 0; h < spec.num_nodes(); ++h) {
    const int f = state.free_count(h, r);
    if (f > 0) nodes.emplace_back(f, h);
  }
  std::sort(nodes.begin(), nodes.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });

  std::vector<TaskPlacement> pl;
  int need = workers;
  for (const auto& [free, h] : nodes) {
    if (need == 0) break;
    const int take = std::min(need, free);
    pl.push_back({h, r, take});
    need -= take;
  }
  if (need != 0) return std::nullopt;
  return JobAllocation(std::move(pl));
}

std::optional<JobAllocation> take_in_type_order(const ClusterState& state,
                                                const std::vector<GpuTypeId>& type_order,
                                                int workers) {
  const auto& spec = state.spec();
  if (workers <= 0) return std::nullopt;

  int total_free = 0;
  for (GpuTypeId r : type_order) total_free += state.total_free_of_type(r);
  if (total_free < workers) return std::nullopt;

  std::vector<TaskPlacement> pl;
  int need = workers;
  for (GpuTypeId r : type_order) {
    if (need == 0) break;
    std::vector<std::pair<int, NodeId>> nodes;
    for (NodeId h = 0; h < spec.num_nodes(); ++h) {
      const int f = state.free_count(h, r);
      if (f > 0) nodes.emplace_back(f, h);
    }
    std::sort(nodes.begin(), nodes.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (const auto& [free, h] : nodes) {
      if (need == 0) break;
      const int take = std::min(need, free);
      pl.push_back({h, r, take});
      need -= take;
    }
  }
  if (need != 0) return std::nullopt;
  return JobAllocation(std::move(pl));
}

std::optional<JobAllocation> take_unaware(const ClusterState& state,
                                          const std::vector<GpuTypeId>& usable,
                                          int workers) {
  // Single pool first: usable types by descending free count.
  std::vector<std::pair<int, GpuTypeId>> by_free;
  for (GpuTypeId r : usable) by_free.emplace_back(state.total_free_of_type(r), r);
  std::sort(by_free.begin(), by_free.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (const auto& [free, r] : by_free) {
    if (free < workers) break;
    if (auto alloc = take_homogeneous(state, r, workers)) return alloc;
  }
  // No single pool fits: mix, most-free pools first.
  std::vector<GpuTypeId> order;
  for (const auto& [free, r] : by_free) order.push_back(r);
  return take_in_type_order(state, order, workers);
}

}  // namespace hadar::cluster
