// Task-level allocations: which (node, GPU-type) slots a job's workers
// occupy in a round. This is the paper's w_jh^r(t), the unit every
// scheduler trades in.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "common/types.hpp"

// hadar::common::BinaryWriter/BinaryReader are forward-declared by
// cluster_spec.hpp (included above).

namespace hadar::cluster {

/// `count` workers of one job on type-`type` GPUs of node `node`.
struct TaskPlacement {
  NodeId node = kInvalidNode;
  GpuTypeId type = kInvalidGpuType;
  int count = 0;

  friend bool operator==(const TaskPlacement&, const TaskPlacement&) = default;
};

/// A job's full placement for one round (possibly spanning nodes and types —
/// Hadar's task-level flexibility). Empty == job not scheduled this round.
class JobAllocation {
 public:
  JobAllocation() = default;
  explicit JobAllocation(std::vector<TaskPlacement> placements);

  bool empty() const { return placements_.empty(); }
  const std::vector<TaskPlacement>& placements() const { return placements_; }

  /// Total workers across placements (must equal W_j under gang scheduling).
  int total_workers() const;

  /// Number of distinct nodes used (>1 means a non-consolidated placement
  /// paying communication cost).
  int nodes_used() const;

  /// Number of distinct GPU types used (>1 is Hadar-only mixing).
  int types_used() const;

  /// Workers of type r across all nodes.
  int workers_of_type(GpuTypeId r) const;

  /// The bottleneck per-worker throughput x_j(t) = min over used types of
  /// xs[type] (constraint 1b). Returns 0 for an empty allocation.
  double bottleneck_throughput(const std::vector<double>& per_type_throughput) const;

  /// Canonical ordering (sorted by node, then type) so allocations compare
  /// structurally; equality is "same multiset of placements".
  void normalize();
  friend bool operator==(const JobAllocation&, const JobAllocation&) = default;

  /// "n0:V100x2 + n3:K80x1"-style rendering.
  std::string to_string(const ClusterSpec& spec) const;

  /// Bit-exact persistence (changelog records, engine snapshots).
  void save(common::BinaryWriter& w) const;
  static JobAllocation restore(common::BinaryReader& r);

 private:
  std::vector<TaskPlacement> placements_;
};

/// Round decision: allocations keyed by job. Jobs absent from the map (or
/// mapped to an empty allocation) are paused/queued this round.
using AllocationMap = std::map<JobId, JobAllocation>;

/// True when `alloc` fits within the free capacity of `spec` considering all
/// allocations already present in `taken`.
bool fits(const ClusterSpec& spec, const AllocationMap& taken, const JobAllocation& alloc);

/// Validates an entire allocation map against cluster capacity; returns an
/// empty string when valid, else a human-readable violation description.
std::string validate(const ClusterSpec& spec, const AllocationMap& allocs);

}  // namespace hadar::cluster
