#include "cluster/cell_partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace hadar::cluster {

int auto_cells(int num_nodes) {
  if (num_nodes <= 0) return 1;
  return std::clamp(num_nodes / 128, 1, 64);
}

CellLayout partition_cells(const ClusterSpec& spec, int num_cells) {
  const int H = spec.num_nodes();
  if (H == 0) throw std::invalid_argument("partition_cells: empty cluster");
  const int K = std::clamp(num_cells, 1, H);

  // Order nodes by (dominant type, id): the deal below then stripes every
  // type pool across cells instead of concentrating a type in one cell.
  std::vector<NodeId> order(static_cast<std::size_t>(H));
  for (NodeId h = 0; h < H; ++h) order[static_cast<std::size_t>(h)] = h;
  auto dominant = [&spec](NodeId h) {
    const NodeSpec& n = spec.node(h);
    GpuTypeId best = 0;
    int best_cap = -1;
    for (GpuTypeId r = 0; r < spec.num_types(); ++r) {
      if (n.capacity(r) > best_cap) {
        best_cap = n.capacity(r);
        best = r;
      }
    }
    return best;
  };
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const GpuTypeId da = dominant(a), db = dominant(b);
    return da != db ? da < db : a < b;
  });

  CellLayout layout;
  layout.num_cells = K;
  layout.cell_of_node.assign(static_cast<std::size_t>(H), 0);
  layout.nodes.resize(static_cast<std::size_t>(K));

  // Greedy balanced deal: each node lands on the cell with the least total
  // capacity so far (ties to the lowest cell index, so the result is a pure
  // function of the spec).
  std::vector<long long> cap(static_cast<std::size_t>(K), 0);
  std::vector<std::size_t> count(static_cast<std::size_t>(K), 0);
  for (const NodeId h : order) {
    int best = 0;
    for (int c = 1; c < K; ++c) {
      const auto bc = static_cast<std::size_t>(best);
      const auto cc = static_cast<std::size_t>(c);
      if (cap[cc] < cap[bc] || (cap[cc] == cap[bc] && count[cc] < count[bc])) best = c;
    }
    const auto b = static_cast<std::size_t>(best);
    layout.cell_of_node[static_cast<std::size_t>(h)] = best;
    layout.nodes[b].push_back(h);
    cap[b] += spec.node(h).total_gpus();
    ++count[b];
  }

  // Materialize per-cell specs with dense local ids in global-node order.
  layout.specs.reserve(static_cast<std::size_t>(K));
  for (int c = 0; c < K; ++c) {
    auto& cell_nodes = layout.nodes[static_cast<std::size_t>(c)];
    std::sort(cell_nodes.begin(), cell_nodes.end());
    std::vector<NodeSpec> local;
    local.reserve(cell_nodes.size());
    for (std::size_t i = 0; i < cell_nodes.size(); ++i) {
      NodeSpec n = spec.node(cell_nodes[i]);
      n.id = static_cast<NodeId>(i);
      local.push_back(std::move(n));
    }
    layout.specs.emplace_back(spec.types(), std::move(local));
  }
  return layout;
}

}  // namespace hadar::cluster
