// Scheduling cells: a deterministic partition of a cluster's nodes into K
// disjoint sub-clusters ("cells"), each materialized as a dense-id
// ClusterSpec of its own. The sharded scheduler (sim/sharded.hpp) solves an
// independent per-cell scheduling problem on every cell concurrently and
// merges the results, which turns the per-round cost from
// O(solve(H, J)) into O(max_cell solve(H/K, J/K)) — the decomposition the
// 10k-node scale target needs.
//
// Partitioning policy: nodes are keyed by their dominant GPU type (argmax
// capacity, ties to the lower type id) and dealt type-by-type onto the cell
// with the least total capacity so far. Each cell therefore receives an
// approximately proportional slice of every type pool ("GPU-type affinity,
// balanced capacity"): a cell looks like a scaled-down copy of the whole
// cluster, so any per-cell policy sees the same heterogeneity mix the
// unsharded policy would.
#pragma once

#include <vector>

#include "cluster/cluster_spec.hpp"

namespace hadar::cluster {

/// The result of partitioning one ClusterSpec into cells. Local node i of
/// cell c is global node nodes[c][i]; ids within a cell preserve global
/// order, so local->global remapping is a vector lookup.
struct CellLayout {
  int num_cells = 0;
  /// Global node id -> owning cell index.
  std::vector<int> cell_of_node;
  /// Cell -> its global node ids, ascending.
  std::vector<std::vector<NodeId>> nodes;
  /// Cell -> local dense-id ClusterSpec (shares the global type registry
  /// arity; local node i maps to nodes[c][i]).
  std::vector<ClusterSpec> specs;

  /// Total devices of cell c (over its local spec).
  int cell_capacity(int c) const { return specs[static_cast<std::size_t>(c)].total_gpus(); }
};

/// Partitions `spec` into `num_cells` cells (clamped to [1, num_nodes]).
/// Deterministic: the same spec and cell count always produce the same
/// layout, independent of thread count or call history.
CellLayout partition_cells(const ClusterSpec& spec, int num_cells);

/// Heuristic cell count for a cluster size: one cell per ~128 nodes, capped
/// at 64 cells, at least 1. The sharding sweet spot: cells small enough that
/// per-cell solves are cheap, large enough that every cell still carries a
/// representative slice of each GPU-type pool.
int auto_cells(int num_nodes);

}  // namespace hadar::cluster
