#include "common/thread_pool.hpp"

#include "common/env.hpp"

namespace hadar::common {

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) workers = 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit_raw(void (*fn)(void*), void* arg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{fn, arg});
  }
  cv_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  auto owned = std::make_unique<std::function<void()>>(std::move(task));
  submit_raw(
      [](void* arg) {
        std::unique_ptr<std::function<void()>> fn(static_cast<std::function<void()>*>(arg));
        (*fn)();
      },
      owned.release());
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = queue_.front();
      queue_.pop_front();
    }
    task.fn(task.arg);
  }
}

namespace detail {

void drain(ParallelRun& run) {
  for (;;) {
    const std::size_t i = run.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= run.n) return;
    if (!run.failed.load(std::memory_order_relaxed)) {
      try {
        run.invoke(run.body, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(run.mu);
        if (!run.error) run.error = std::current_exception();
        run.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (run.done.fetch_add(1, std::memory_order_acq_rel) + 1 == run.n) {
      std::lock_guard<std::mutex> lock(run.mu);
      run.cv.notify_all();
    }
  }
}

void release(ParallelRun& run) {
  if (run.refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete &run;
}

void helper_entry(void* arg) {
  auto* run = static_cast<ParallelRun*>(arg);
  drain(*run);
  release(*run);
}

}  // namespace detail

int ThreadPool::configured_concurrency() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return env_int("HADAR_THREADS", hw > 0 ? hw : 1, 1);
}

std::unique_ptr<ThreadPool>& ThreadPool::global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

ThreadPool& ThreadPool::global() {
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(configured_concurrency() - 1);
  return *slot;
}

ScopedThreadCount::ScopedThreadCount(int concurrency) {
  if (concurrency < 1) concurrency = 1;
  saved_ = std::move(ThreadPool::global_slot());
  ThreadPool::global_slot() = std::make_unique<ThreadPool>(concurrency - 1);
}

ScopedThreadCount::~ScopedThreadCount() {
  ThreadPool::global_slot() = std::move(saved_);
}

}  // namespace hadar::common
