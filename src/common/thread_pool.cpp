#include "common/thread_pool.hpp"

#include "common/env.hpp"

namespace hadar::common {

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) workers = 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::configured_concurrency() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return env_int("HADAR_THREADS", hw > 0 ? hw : 1, 1);
}

std::unique_ptr<ThreadPool>& ThreadPool::global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

ThreadPool& ThreadPool::global() {
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(configured_concurrency() - 1);
  return *slot;
}

ScopedThreadCount::ScopedThreadCount(int concurrency) {
  if (concurrency < 1) concurrency = 1;
  saved_ = std::move(ThreadPool::global_slot());
  ThreadPool::global_slot() = std::make_unique<ThreadPool>(concurrency - 1);
}

ScopedThreadCount::~ScopedThreadCount() {
  ThreadPool::global_slot() = std::move(saved_);
}

}  // namespace hadar::common
