// Descriptive statistics used by the metric pipeline: means, percentiles,
// CDF sampling, and a streaming (Welford) accumulator.
#pragma once

#include <cstddef>
#include <vector>

namespace hadar::common {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n - 1 divisor); 0 for fewer than two samples.
double stddev(const std::vector<double>& xs);

/// Minimum / maximum; 0 for an empty sample.
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// p-th percentile (p in [0,100]) with linear interpolation between order
/// statistics; 0 for an empty sample. Does not mutate the input.
double percentile(std::vector<double> xs, double p);

/// Median == percentile(xs, 50).
double median(std::vector<double> xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double x;         ///< value (e.g. time in seconds)
  double fraction;  ///< fraction of samples <= x, in [0,1]
};

/// Empirical CDF of `xs` sampled at `points` evenly spaced x-values spanning
/// [0, max(xs)]. Empty input yields an empty curve.
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs, std::size_t points = 50);

/// Streaming mean/variance accumulator (Welford). Numerically stable.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n - 1 divisor)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hadar::common
