#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hadar::common {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs, std::size_t points) {
  std::vector<CdfPoint> curve;
  if (xs.empty() || points == 0) return curve;
  std::sort(xs.begin(), xs.end());
  const double xmax = xs.back();
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? xmax : xmax * static_cast<double>(i) / static_cast<double>(points - 1);
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    const double frac =
        static_cast<double>(it - xs.begin()) / static_cast<double>(xs.size());
    curve.push_back({x, frac});
  }
  return curve;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace hadar::common
