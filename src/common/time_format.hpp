// Shared rendering of simulated-time values. The event log, the ASCII
// timeline, and the trace report all stamp events with simulated seconds;
// one formatter keeps the three outputs mutually greppable instead of each
// picking its own unit and precision.
#pragma once

#include <string>

#include "common/types.hpp"

namespace hadar::common {

/// Renders a simulated-time value with an adaptive unit: "12.5s" below ten
/// minutes, "42.0min" below two hours, "3.25h" beyond. Negative values keep
/// their sign; non-finite values render as "inf"/"nan".
std::string format_sim_time(Seconds seconds);

}  // namespace hadar::common
