// Tiny leveled logger. The simulator is hot-path sensitive: logging below
// the active level costs one branch and no formatting.
#pragma once

#include <cstdarg>
#include <string>

namespace hadar::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global minimum level (default kWarn: library stays quiet).
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging to stderr with a level prefix.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define HADAR_LOG_DEBUG(...) ::hadar::common::logf(::hadar::common::LogLevel::kDebug, __VA_ARGS__)
#define HADAR_LOG_INFO(...) ::hadar::common::logf(::hadar::common::LogLevel::kInfo, __VA_ARGS__)
#define HADAR_LOG_WARN(...) ::hadar::common::logf(::hadar::common::LogLevel::kWarn, __VA_ARGS__)
#define HADAR_LOG_ERROR(...) ::hadar::common::logf(::hadar::common::LogLevel::kError, __VA_ARGS__)

}  // namespace hadar::common
