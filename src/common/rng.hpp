// Deterministic, seedable random number generation for reproducible
// experiments. SplitMix64 core (fast, full-period, passes BigCrush on the
// outputs we use) with the handful of distributions the simulator needs.
#pragma once

#include <cstdint>
#include <vector>

namespace hadar::common {

/// Deterministic 64-bit PRNG. Same seed => same stream on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64 step).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given rate (mean 1/rate). Used for Poisson
  /// inter-arrival gaps. Requires rate > 0.
  double exponential(double rate);

  /// Standard normal via Box-Muller (no cached spare: keeps the stream
  /// position a pure function of the call count).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(normal(mu, sigma)). Heavy-tailed durations.
  double lognormal(double mu, double sigma);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fork a statistically independent child stream (for per-job jitter that
  /// must not perturb the parent stream position).
  Rng fork();

  /// The raw SplitMix64 state. `Rng(state())` reconstructs the stream at
  /// exactly this position — the durability layer's save/restore hook.
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t s) { state_ = s; }

 private:
  std::uint64_t state_;
};

/// Statistically independent child seed for (seed, key) without consuming
/// any parent stream position: one SplitMix64 scramble of the pair. Used for
/// the fork-per-job / fork-per-process streams that make traces and failure
/// timelines step-invariant (the stream of entity k never depends on how
/// many draws entities 0..k-1 consumed).
std::uint64_t mix64(std::uint64_t seed, std::uint64_t key);

}  // namespace hadar::common
