// Strict environment-variable parsing shared by the thread pool and the
// bench harness. std::atoi silently maps garbage to 0, which turns a typo'd
// HADAR_BENCH_JOBS / HADAR_THREADS into a surprising-but-valid config; these
// helpers parse with strtol, reject trailing junk and out-of-range values,
// and warn once on stderr before falling back to the default.
#pragma once

#include <limits>
#include <string>

namespace hadar::common {

/// Reads integer env var `name`. Returns `def` when unset. Values that fail
/// to parse or carry trailing junk produce a warning on stderr and return
/// `def`; so do values below `min_value` when the caller sets a floor. The
/// default imposes no floor — zero and negative values are legitimate for
/// several knobs (HADAR_CELLS=0 means auto-size, HADAR_SERVICE_SNAPSHOT=0
/// disables snapshots), so callers opt into a minimum explicitly.
int env_int(const char* name, int def, int min_value = std::numeric_limits<int>::min());

/// Reads floating-point env var `name`. Returns `def` when unset. Values
/// that fail to parse, carry trailing junk, or fall outside
/// [min_value, max_value] produce a warning on stderr and return `def`.
double env_double(const char* name, double def, double min_value, double max_value);

/// Reads string env var `name`; returns `def` when unset or empty.
std::string env_str(const char* name, const std::string& def);

}  // namespace hadar::common
