// Core identifier and time types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace hadar {

/// Identifier of a job within a trace. Dense, assigned in arrival order.
using JobId = std::int32_t;
/// Identifier of a machine (server) in the cluster. Dense.
using NodeId = std::int32_t;
/// Identifier of a GPU/accelerator type (index into GpuTypeRegistry). Dense.
using GpuTypeId = std::int32_t;

/// Simulated wall-clock time and durations, in seconds.
using Seconds = double;

inline constexpr JobId kInvalidJob = -1;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr GpuTypeId kInvalidGpuType = -1;
inline constexpr Seconds kInfiniteTime = std::numeric_limits<Seconds>::infinity();

}  // namespace hadar
