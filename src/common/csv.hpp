// Minimal CSV reader/writer for trace files and experiment outputs.
// RFC-4180 quoting for fields containing commas/quotes/newlines.
#pragma once

#include <string>
#include <vector>

namespace hadar::common {

/// Builds CSV text in memory; write_file() persists it.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends one row. Must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with %.6g and ints with %lld.
  static std::string field(double v);
  static std::string field(long long v);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders header + rows as CSV text.
  std::string to_string() const;

  /// Writes to disk. Returns false (and leaves no partial file behind is NOT
  /// guaranteed) on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parsed CSV document: header + data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index by name, or -1 when absent.
  int column(const std::string& name) const;
};

/// Parses CSV text (first line is the header). Handles quoted fields and
/// embedded newlines; throws std::runtime_error on malformed quoting.
CsvDocument parse_csv(const std::string& text);

/// Reads and parses a CSV file. Throws std::runtime_error when unreadable.
CsvDocument read_csv_file(const std::string& path);

}  // namespace hadar::common
