#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hadar::common {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is < 2^-40 for the spans we use (< 2^24); acceptable.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);  // guard log(0)
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: no positive weight");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  // Floating point slack: return the last positively weighted index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

std::uint64_t mix64(std::uint64_t seed, std::uint64_t key) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (key + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace hadar::common
