#include "common/time_format.hpp"

#include <cmath>
#include <cstdio>

namespace hadar::common {

std::string format_sim_time(Seconds seconds) {
  if (std::isnan(seconds)) return "nan";
  if (std::isinf(seconds)) return seconds > 0.0 ? "inf" : "-inf";
  const double mag = std::fabs(seconds);
  char buf[48];
  if (mag < 600.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else if (mag < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1fmin", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fh", seconds / 3600.0);
  }
  return buf;
}

}  // namespace hadar::common
