// Monotonic scratch allocator for per-round buffers. A scheduling round
// allocates many short-lived vectors (candidate queues, job-view copies,
// per-cell scratch); bump allocation from a reusable block makes those
// effectively free, and reset() reclaims everything at once at the round
// boundary.
//
// Lifetime rule: nothing allocated from an arena may outlive the next
// reset(). The owner (sim::RoundEngine for the top-level context, each
// ShardedScheduler cell for its own) resets at the start of every round, so
// arena-backed containers must be strictly round-local.
//
// Not thread-safe: one arena serves one thread of execution. Concurrent
// consumers (sharded cells solved in parallel) each get their own arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace hadar::common {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 64 * 1024)
      : default_block_(block_bytes < 256 ? 256 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  // Movable so owners can live in resizable containers (sharded cells).
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Bump-allocates `bytes` with the given alignment. Never returns null
  /// (grows by appending blocks); alignment must be a power of two.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (current_ < blocks_.size()) {
      if (void* p = take_from(blocks_[current_], bytes, align)) return p;
      ++current_;
      offset_ = 0;
    }
    const std::size_t size = bytes + align > default_block_ ? bytes + align : default_block_;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    current_ = blocks_.size() - 1;
    offset_ = 0;
    return take_from(blocks_.back(), bytes, align);  // fresh block always fits
  }

  /// Rewinds to empty, keeping every block for reuse. O(1).
  void reset() {
    current_ = 0;
    offset_ = 0;
    allocated_ = 0;
  }

  /// Bytes handed out since the last reset() (diagnostics/tests).
  std::size_t bytes_allocated() const { return allocated_; }
  /// Total bytes held across blocks (high-water capacity).
  std::size_t bytes_reserved() const {
    std::size_t n = 0;
    for (const auto& b : blocks_) n += b.size;
    return n;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Carves `bytes` out of `b` at the current cursor, or returns null when
  /// the block cannot hold it. Alignment is computed on the absolute address
  /// so it holds regardless of the block base's own alignment.
  void* take_from(Block& b, std::size_t bytes, std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t aligned = (base + offset_ + align - 1) & ~(align - 1);
    const std::size_t start = static_cast<std::size_t>(aligned - base);
    if (start + bytes > b.size) return nullptr;
    offset_ = start + bytes;
    allocated_ += bytes;
    return b.data.get() + start;
  }

  std::vector<Block> blocks_;
  std::size_t current_ = 0;
  std::size_t offset_ = 0;
  std::size_t default_block_;
  std::size_t allocated_ = 0;
};

/// std::allocator adapter over an Arena. A null arena degrades to the global
/// heap, so containers parameterized on it work with hand-built contexts
/// (tests) that carry no arena. Deallocation is a no-op on the arena path —
/// memory comes back wholesale at reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator<U>& b) noexcept {
    return a.arena() == b.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

/// Round-local vector: heap-compatible when no arena is supplied.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace hadar::common
