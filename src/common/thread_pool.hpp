// Process-wide worker pool behind the parallel experiment engine and the
// intra-round Hadar DP. Deliberately minimal — a locked task queue, no work
// stealing — because every call site fans out coarse, independent units
// (whole simulations, per-beam-state FIND_ALLOC evaluations).
//
// Concurrency model: `parallel_for(n, fn)` claims indices from an atomic
// counter shared between the calling thread and up to size() pool workers.
// The caller always participates, so nested parallel_for calls issued from
// inside a pool task cannot deadlock — when every worker is busy the caller
// simply drains its own loop serially. Results are identified by index, so
// output order (and therefore every consumer's behaviour) is independent of
// the thread count; determinism is the contract the scheduler relies on.
//
// Dispatch cost: tasks are (function pointer, void*) pairs and the shared
// run descriptor is a single heap node refcounted by caller + helpers, so a
// parallel_for performs one allocation total instead of one std::function
// per lane. The DP dispatches a parallel_for per beam level, so this is on
// the scheduler's hot path.
//
// Sizing: HADAR_THREADS sets the total concurrency (workers + caller);
// unset => std::thread::hardware_concurrency(). HADAR_THREADS=1 disables
// the pool entirely (pure serial execution).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hadar::common {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 is valid (parallel_for degrades to serial).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (callers add one more lane on top).
  int size() const { return static_cast<int>(workers_.size()); }
  /// Total parallel lanes a parallel_for can use: workers + the caller.
  int concurrency() const { return size() + 1; }

  /// Enqueues fn(arg) without allocating; runs on some worker thread
  /// eventually. The caller guarantees `arg` stays valid until the task has
  /// run (parallel_for refcounts its run descriptor for this).
  void submit_raw(void (*fn)(void*), void* arg);

  /// Enqueues an arbitrary callable (one heap allocation to type-erase it).
  void submit(std::function<void()> task);

  /// The shared pool, created on first use with HADAR_THREADS - 1 workers.
  static ThreadPool& global();
  /// Total concurrency requested via HADAR_THREADS (>=1); falls back to
  /// hardware_concurrency on unset/invalid values (see common/env.hpp).
  static int configured_concurrency();

 private:
  friend class ScopedThreadCount;
  static std::unique_ptr<ThreadPool>& global_slot();

  /// Type-erased unit of work; POD so the queue never allocates per task.
  struct Task {
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Temporarily replaces the global pool with one of exactly `concurrency`
/// total lanes. For benches and determinism tests that compare thread
/// counts within one process; installs/restores must not race with running
/// parallel work.
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(int concurrency);
  ~ScopedThreadCount();

  ScopedThreadCount(const ScopedThreadCount&) = delete;
  ScopedThreadCount& operator=(const ScopedThreadCount&) = delete;

 private:
  std::unique_ptr<ThreadPool> saved_;
};

namespace detail {

/// Shared progress of one parallel_for: indices are claimed via `next`,
/// `done` counts finished ones, and the first exception wins. Heap-
/// allocated and intrusively refcounted (caller + one ref per helper task);
/// the callable is reached through the raw (body, invoke) pair, so neither
/// enqueueing a lane nor running it allocates. Stragglers dequeued after
/// the caller returned find the index range exhausted and never touch
/// `body`; the last reference frees the descriptor.
struct ParallelRun {
  std::size_t n = 0;
  void* body = nullptr;
  void (*invoke)(void*, std::size_t) = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::atomic<int> refs{1};
  std::exception_ptr error;
  std::mutex mu;
  std::condition_variable cv;
};

/// Claims and runs indices until the range is exhausted.
void drain(ParallelRun& run);
/// Drops one reference; the last one deletes the run.
void release(ParallelRun& run);
/// Pool-side entry point for one helper lane: drain, then release.
void helper_entry(void* arg);

}  // namespace detail

/// Invokes fn(i) for every i in [0, n), fanning across `pool` (the global
/// pool when null). Blocks until all iterations finish; rethrows the first
/// exception. Iteration order across threads is unspecified, but callers
/// that write results by index observe thread-count-independent output.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, ThreadPool* pool = nullptr) {
  if (n == 0) return;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  if (n == 1 || p.size() == 0) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  using F = std::remove_reference_t<Fn>;
  auto* run = new detail::ParallelRun;
  run->n = n;
  run->body = const_cast<void*>(static_cast<const void*>(std::addressof(fn)));
  run->invoke = [](void* body, std::size_t i) { (*static_cast<F*>(body))(i); };

  // Helpers only ever claim indices from `run`; once the caller has seen
  // done == n no helper can touch `fn` again, so handing out its address is
  // safe even though stragglers may still be dequeued later.
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(p.size()), n - 1);
  run->refs.store(1 + static_cast<int>(helpers), std::memory_order_relaxed);
  for (std::size_t h = 0; h < helpers; ++h) p.submit_raw(&detail::helper_entry, run);
  detail::drain(*run);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(run->mu);
    run->cv.wait(lock, [&] { return run->done.load(std::memory_order_acquire) == n; });
    error = run->error;  // copied before releasing our reference
  }
  detail::release(*run);
  if (error) std::rethrow_exception(error);
}

/// parallel_for that materializes fn(i) into a vector indexed by i. The
/// result type must be default-constructible.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, ThreadPool* pool = nullptr)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  std::vector<std::invoke_result_t<Fn&, std::size_t>> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, pool);
  return out;
}

}  // namespace hadar::common
