// Process-wide worker pool behind the parallel experiment engine and the
// intra-round Hadar DP. Deliberately minimal — a locked task queue, no work
// stealing — because every call site fans out coarse, independent units
// (whole simulations, per-beam-state FIND_ALLOC evaluations).
//
// Concurrency model: `parallel_for(n, fn)` claims indices from an atomic
// counter shared between the calling thread and up to size() pool workers.
// The caller always participates, so nested parallel_for calls issued from
// inside a pool task cannot deadlock — when every worker is busy the caller
// simply drains its own loop serially. Results are identified by index, so
// output order (and therefore every consumer's behaviour) is independent of
// the thread count; determinism is the contract the scheduler relies on.
//
// Sizing: HADAR_THREADS sets the total concurrency (workers + caller);
// unset => std::thread::hardware_concurrency(). HADAR_THREADS=1 disables
// the pool entirely (pure serial execution).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hadar::common {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 is valid (parallel_for degrades to serial).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (callers add one more lane on top).
  int size() const { return static_cast<int>(workers_.size()); }
  /// Total parallel lanes a parallel_for can use: workers + the caller.
  int concurrency() const { return size() + 1; }

  /// Enqueues one task; runs on some worker thread eventually.
  void submit(std::function<void()> task);

  /// The shared pool, created on first use with HADAR_THREADS - 1 workers.
  static ThreadPool& global();
  /// Total concurrency requested via HADAR_THREADS (>=1); falls back to
  /// hardware_concurrency on unset/invalid values (see common/env.hpp).
  static int configured_concurrency();

 private:
  friend class ScopedThreadCount;
  static std::unique_ptr<ThreadPool>& global_slot();

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Temporarily replaces the global pool with one of exactly `concurrency`
/// total lanes. For benches and determinism tests that compare thread
/// counts within one process; installs/restores must not race with running
/// parallel work.
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(int concurrency);
  ~ScopedThreadCount();

  ScopedThreadCount(const ScopedThreadCount&) = delete;
  ScopedThreadCount& operator=(const ScopedThreadCount&) = delete;

 private:
  std::unique_ptr<ThreadPool> saved_;
};

namespace detail {

/// Shared progress of one parallel_for: indices are claimed via `next`,
/// `done` counts finished ones, and the first exception wins.
struct ParallelRun {
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mu;
  std::condition_variable cv;
};

template <typename Fn>
void drain(const std::shared_ptr<ParallelRun>& run, Fn* fn) {
  for (;;) {
    const std::size_t i = run->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= run->n) return;
    if (!run->failed.load(std::memory_order_relaxed)) {
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(run->mu);
        if (!run->error) run->error = std::current_exception();
        run->failed.store(true, std::memory_order_relaxed);
      }
    }
    if (run->done.fetch_add(1, std::memory_order_acq_rel) + 1 == run->n) {
      std::lock_guard<std::mutex> lock(run->mu);
      run->cv.notify_all();
    }
  }
}

}  // namespace detail

/// Invokes fn(i) for every i in [0, n), fanning across `pool` (the global
/// pool when null). Blocks until all iterations finish; rethrows the first
/// exception. Iteration order across threads is unspecified, but callers
/// that write results by index observe thread-count-independent output.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, ThreadPool* pool = nullptr) {
  if (n == 0) return;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  if (n == 1 || p.size() == 0) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto run = std::make_shared<detail::ParallelRun>();
  run->n = n;
  using F = std::remove_reference_t<Fn>;
  F* body = std::addressof(fn);

  // Helpers only ever claim indices from `run`; once the caller has seen
  // done == n no helper can touch `fn` again, so capturing its address is
  // safe even though stragglers may still be dequeued later.
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(p.size()), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    p.submit([run, body] { detail::drain(run, body); });
  }
  detail::drain(run, body);

  std::unique_lock<std::mutex> lock(run->mu);
  run->cv.wait(lock, [&] { return run->done.load(std::memory_order_acquire) == n; });
  if (run->error) std::rethrow_exception(run->error);
}

/// parallel_for that materializes fn(i) into a vector indexed by i. The
/// result type must be default-constructible.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, ThreadPool* pool = nullptr)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  std::vector<std::invoke_result_t<Fn&, std::size_t>> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, pool);
  return out;
}

}  // namespace hadar::common
