// Wall-clock timing for the perf-regression harness (bench_perf_regression)
// and ad-hoc instrumentation. Monotonic, header-only, no allocation.
#pragma once

#include <chrono>

namespace hadar::common {

class WallTimer {
  using Clock = std::chrono::steady_clock;

 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  Clock::time_point start_;
};

/// Times one call of `fn` in seconds.
template <typename Fn>
double time_call(Fn&& fn) {
  WallTimer t;
  fn();
  return t.seconds();
}

}  // namespace hadar::common
