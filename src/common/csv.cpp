#include "common/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hadar::common {
namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void append_row(std::string& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out += ',';
    out += quote(row[i]);
  }
  out += '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("CsvWriter: empty header");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row arity does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string CsvWriter::field(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string CsvWriter::field(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string CsvWriter::to_string() const {
  std::string out;
  append_row(out, header_);
  for (const auto& r : rows_) append_row(out, r);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << to_string();
  return static_cast<bool>(f);
}

int CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

CsvDocument parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    if (field_started || !record.empty() || !field.empty()) {
      end_field();
      records.push_back(std::move(record));
      record.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      if (!field.empty()) throw std::runtime_error("parse_csv: quote inside unquoted field");
      in_quotes = true;
      field_started = true;
    } else if (c == ',') {
      end_field();
      field_started = true;  // a comma implies the next field exists
    } else if (c == '\n') {
      end_record();
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) throw std::runtime_error("parse_csv: unterminated quoted field");
  end_record();

  CsvDocument doc;
  if (records.empty()) return doc;
  doc.header = std::move(records.front());
  doc.rows.assign(std::make_move_iterator(records.begin() + 1),
                  std::make_move_iterator(records.end()));
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_csv_file: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_csv(ss.str());
}

}  // namespace hadar::common
