#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace hadar::common {

AsciiTable::AsciiTable(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("AsciiTable: empty header");
}

void AsciiTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());  // pad short rows with empty cells
  rows_.push_back(std::move(row));
}

std::string AsciiTable::num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string AsciiTable::speedup(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
  return buf;
}

std::string AsciiTable::percent(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

std::string AsciiTable::duration(double seconds) {
  char buf[48];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  }
  return buf;
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto rule = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      s += ' ' + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    s += '\n';
    return s;
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += rule();
  out += line(header_);
  out += rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  if (!footnote_.empty()) out += footnote_ + '\n';
  return out;
}

}  // namespace hadar::common
