#include "common/binary.hpp"

#include <array>
#include <stdexcept>

namespace hadar::common {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::u32(std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  buf_.append(b, 4);
}

void BinaryWriter::u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  buf_.append(b, 8);
}

void BinaryWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void BinaryWriter::bytes(const void* data, std::size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

const char* BinaryReader::need(std::size_t n) {
  if (n > data_.size() - pos_) throw std::runtime_error("BinaryReader: truncated input");
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t BinaryReader::u8() {
  return static_cast<std::uint8_t>(*need(1));
}

std::uint32_t BinaryReader::u32() {
  const char* p = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::u64() {
  const char* p = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::string BinaryReader::str() {
  const std::uint32_t n = u32();
  const char* p = need(n);
  return std::string(p, n);
}

}  // namespace hadar::common
