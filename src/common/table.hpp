// ASCII table rendering for the benchmark harness: every bench binary prints
// the rows/series of its paper figure or table through this formatter so the
// outputs are uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace hadar::common {

/// Column-aligned ASCII table with a title and optional footnote.
class AsciiTable {
 public:
  AsciiTable(std::string title, std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Formatting helpers mirroring CsvWriter.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);
  /// "3.4x" style speedup cell.
  static std::string speedup(double v, int precision = 1);
  /// "87.2%" style percentage cell (v in [0,1]).
  static std::string percent(double v, int precision = 1);
  /// Seconds rendered as "1.23 h" / "4.5 min" / "32 s" as appropriate.
  static std::string duration(double seconds);

  std::string render() const;

  void set_footnote(std::string note) { footnote_ = std::move(note); }

 private:
  std::string title_;
  std::string footnote_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hadar::common
