#include "common/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace hadar::common {

int env_int(const char* name, int def, int min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return def;

  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  const bool parsed = end != raw && *end == '\0' && errno != ERANGE &&
                      v >= std::numeric_limits<int>::min() &&
                      v <= std::numeric_limits<int>::max();
  if (!parsed) {
    std::fprintf(stderr, "[hadar] warning: %s='%s' is not an integer; using %d\n",
                 name, raw, def);
    return def;
  }
  if (v < min_value) {
    std::fprintf(stderr, "[hadar] warning: %s=%ld is below the minimum %d; using %d\n",
                 name, v, min_value, def);
    return def;
  }
  return static_cast<int>(v);
}

double env_double(const char* name, double def, double min_value, double max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return def;

  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "[hadar] warning: %s='%s' is not a number; using %g\n",
                 name, raw, def);
    return def;
  }
  if (v < min_value || v > max_value) {
    std::fprintf(stderr,
                 "[hadar] warning: %s=%g is outside [%g, %g]; using %g\n",
                 name, v, min_value, max_value, def);
    return def;
  }
  return v;
}

std::string env_str(const char* name, const std::string& def) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? def : std::string(raw);
}

}  // namespace hadar::common
