// Little binary (de)serialization layer for the durability subsystem:
// length-delimited, explicitly-typed primitives appended to a growable
// buffer, plus the CRC-32 used to checksum changelog records and snapshots.
//
// Doubles are serialized as their IEEE-754 bit pattern (via u64), never as
// text, so a save/restore round trip is bit-exact — the property the
// deterministic-replay machinery depends on. Integers are fixed-width
// little-endian, so files transfer between hosts.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace hadar::common {

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) over `size` bytes.
std::uint32_t crc32(const void* data, std::size_t size);
inline std::uint32_t crc32(std::string_view s) { return crc32(s.data(), s.size()); }

/// Appends typed primitives to an owned byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Bit-exact: the IEEE-754 pattern, not a decimal rendering.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// u32 length prefix + raw bytes.
  void str(std::string_view s);
  void bytes(const void* data, std::size_t size);

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a byte span. Every accessor throws
/// std::runtime_error("BinaryReader: truncated input") past the end, so a
/// torn record surfaces as a recoverable parse error, never as UB.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  const char* need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

// Convenience helpers for the containers the engine state uses.

template <typename T>
void write_pod_vector(BinaryWriter& w, const std::vector<T>& v,
                      void (BinaryWriter::*put)(T)) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const T& x : v) (w.*put)(x);
}

inline void write_f64_vector(BinaryWriter& w, const std::vector<double>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) w.f64(x);
}
inline std::vector<double> read_f64_vector(BinaryReader& r) {
  std::vector<double> v(r.u32());
  for (double& x : v) x = r.f64();
  return v;
}
inline void write_i32_vector(BinaryWriter& w, const std::vector<int>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (int x : v) w.i32(x);
}
inline std::vector<int> read_i32_vector(BinaryReader& r) {
  std::vector<int> v(r.u32());
  for (int& x : v) x = r.i32();
  return v;
}

}  // namespace hadar::common
