#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace hadar::common {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* prefix(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    default: return "";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::fputs(prefix(level), stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace hadar::common
