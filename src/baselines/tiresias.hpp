// Tiresias [4] baseline: two-queue Discretized 2D-LAS, configured as in the
// paper's evaluation (two priority queues, PromoteKnob disabled — demoted
// jobs never return to the high queue), expressed as a round pipeline.
//
// A job's priority attribute is its attained service (GPU-seconds). Jobs
// below `queue_threshold` sit in the high-priority queue; above it they are
// demoted. Within a queue order is FIFO by arrival. Tiresias is
// heterogeneity-UNAWARE: it fills a gang from whatever devices are free in
// a fixed node/type order, never consulting throughput.
//
// Stage split: all policy state (queue membership, starvation counters)
// lives in the priority stage; admission passes every job through, there is
// no optimization solve, and the shared greedy placement stage packs the
// ranked list with take_unaware(). TiresiasPreemptionStage is an optional
// composable stage (the LAS discipline as a preemption pass) for mixing
// into other pipelines.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "pipeline/staged_scheduler.hpp"

namespace hadar::baselines {

struct TiresiasConfig {
  /// Attained-service demotion threshold in GPU-seconds (default 1 GPU-hour).
  double queue_threshold = 3600.0;
  /// The PromoteKnob: when > 0, a demoted job that has been STARVED (held no
  /// allocation) for this many consecutive rounds is promoted back to the
  /// high-priority queue. The paper's evaluation disables it (0).
  int promote_after_starved_rounds = 0;
};

/// Priority: the 2-queue LAS bookkeeping (demotion/promotion/starvation)
/// plus the ranked order — high queue first, FIFO within a queue. Owns all
/// of Tiresias' cross-round state.
class TiresiasQueueStage final : public pipeline::IPriorityStage {
 public:
  explicit TiresiasQueueStage(TiresiasConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "tiresias.queues"; }
  void prioritize(pipeline::RoundState& rs) override;
  void reset() override;
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

  bool demoted(JobId id) const { return demoted_.count(id) > 0; }

 private:
  TiresiasConfig cfg_;
  std::set<JobId> demoted_;
  std::set<JobId> promoted_;             // shielded until served again
  std::map<JobId, int> starved_rounds_;  // consecutive rounds without a gang
};

/// The LAS discipline as a composable preemption stage: when the round
/// leaves an under-threshold (short) job waiting, fresh grants handed to
/// over-threshold jobs are revoked — the freed devices go to the short job
/// in a following round. Jobs that already held devices are never disturbed
/// here, so a pipeline mixing this into a sticky policy keeps its
/// no-needless-churn property. Stateless.
class TiresiasPreemptionStage final : public pipeline::IPreemptionStage {
 public:
  explicit TiresiasPreemptionStage(TiresiasConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "tiresias.preempt"; }
  void preempt(pipeline::RoundState& rs) override;

 private:
  TiresiasConfig cfg_;
};

class TiresiasScheduler final : public pipeline::StagedScheduler {
 public:
  explicit TiresiasScheduler(TiresiasConfig cfg = {});

  /// Introspection for tests.
  bool demoted(JobId id) const { return queues_->demoted(id); }

 private:
  explicit TiresiasScheduler(std::shared_ptr<TiresiasQueueStage> queues);

  std::shared_ptr<TiresiasQueueStage> queues_;
};

}  // namespace hadar::baselines
