// Tiresias [4] baseline: two-queue Discretized 2D-LAS, configured as in the
// paper's evaluation (two priority queues, PromoteKnob disabled — demoted
// jobs never return to the high queue).
//
// A job's priority attribute is its attained service (GPU-seconds). Jobs
// below `queue_threshold` sit in the high-priority queue; above it they are
// demoted. Within a queue order is FIFO by arrival. Tiresias is
// heterogeneity-UNAWARE: it fills a gang from whatever devices are free in
// a fixed node/type order, never consulting throughput.
#pragma once

#include <map>
#include <set>

#include "sim/scheduler.hpp"

namespace hadar::baselines {

struct TiresiasConfig {
  /// Attained-service demotion threshold in GPU-seconds (default 1 GPU-hour).
  double queue_threshold = 3600.0;
  /// The PromoteKnob: when > 0, a demoted job that has been STARVED (held no
  /// allocation) for this many consecutive rounds is promoted back to the
  /// high-priority queue. The paper's evaluation disables it (0).
  int promote_after_starved_rounds = 0;
};

class TiresiasScheduler : public sim::IScheduler {
 public:
  explicit TiresiasScheduler(TiresiasConfig cfg = {});

  std::string name() const override;
  cluster::AllocationMap schedule(const sim::SchedulerContext& ctx) override;
  void reset() override;

  /// Cross-round decision state: queue membership and starvation counters.
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

  /// Introspection for tests.
  bool demoted(JobId id) const { return demoted_.count(id) > 0; }

 private:
  TiresiasConfig cfg_;
  std::set<JobId> demoted_;
  std::set<JobId> promoted_;             // shielded until served again
  std::map<JobId, int> starved_rounds_;  // consecutive rounds without a gang
  std::vector<const sim::JobView*> order_;  // reused per-round sort buffer
  std::vector<GpuTypeId> usable_;           // reused per-job scratch
};

}  // namespace hadar::baselines
