// Gavel [1] baseline: job-level heterogeneity-aware scheduling.
//
// Gavel computes an optimal time-fraction matrix Y[j][r] (the share of
// wall-clock time job j should spend on GPU type r) by solving a max-min
// fairness program over normalized effective throughputs, then realizes Y
// with round-based priority scheduling: priority(j, r) = Y[j][r] divided by
// the rounds job j has already received on type r. Within a round every job
// runs on ONE device type (job-level homogeneity) — the limitation Hadar's
// task-level mixing removes.
//
// The Y matrix is recomputed only when the active job set changes (Gavel's
// event-driven refresh, detected via SchedulerContext::jobs_epoch with a
// job-id signature fallback for epoch-less contexts); small instances use
// the exact LP — warm-started across events through a solver::MaxMinContext
// — larger ones the progressive-filling solver.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cluster/cluster_state.hpp"
#include "sim/scheduler.hpp"
#include "solver/maxmin.hpp"

namespace hadar::baselines {

/// Gavel's pluggable optimization objectives (its generality claim):
enum class GavelPolicy {
  /// max-min fairness over normalized effective throughput (Gavel default)
  kMaxMinFairness,
  /// maximize the sum of normalized throughputs (cluster efficiency)
  kMaxSumThroughput,
  /// minimize makespan: max-min over throughput normalized by *remaining*
  /// work, which equalizes completion times
  kMinMakespan,
};

const char* to_string(GavelPolicy p);

struct GavelConfig {
  GavelPolicy policy = GavelPolicy::kMaxMinFairness;
  solver::MaxMinOptions solver;
  /// Priority denominator smoothing: priority = Y / (rounds_on_type + eps).
  double rounds_epsilon = 1.0;
  /// Warm-start the allocation LP from the previous event's optimal basis
  /// (revised engine only). Canonical extraction makes the solutions
  /// identical with this on or off; the switch exists for A/B benchmarks.
  bool warm_start = true;
};

class GavelScheduler : public sim::IScheduler {
 public:
  explicit GavelScheduler(GavelConfig cfg = {});

  std::string name() const override;
  cluster::AllocationMap schedule(const sim::SchedulerContext& ctx) override;
  void reset() override;

  /// Cross-round decision state: the Y matrix and the change-detection
  /// signatures guarding its recomputation. The warm-start LP basis
  /// (lp_ctx_) is deliberately NOT saved: canonical solution extraction
  /// makes warm and cold solves bit-identical, so a restored scheduler
  /// merely pays one cold solve at the next event.
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

  /// Last computed Y row for a job (tests/introspection); empty if unknown.
  std::vector<double> allocation_row(JobId id) const;

 private:
  void recompute_allocation(const sim::SchedulerContext& ctx);
  bool job_set_changed(const sim::SchedulerContext& ctx);
  bool cluster_changed(const sim::SchedulerContext& ctx);

  struct Entry {
    const sim::JobView* job;
    GpuTypeId type;
    double priority;
  };

  GavelConfig cfg_;
  std::uint64_t last_epoch_ = 0;             // last ctx.jobs_epoch acted on
  std::uint64_t last_cluster_epoch_ = 0;     // last ctx.cluster_epoch acted on
  std::vector<JobId> active_ids_;            // signature for epoch-less contexts
  std::vector<JobId> ids_scratch_;
  std::vector<int> last_caps_;               // per-type capacity signature
  std::vector<int> caps_scratch_;
  std::map<JobId, std::vector<double>> y_;   // time-fraction rows
  solver::MaxMinContext lp_ctx_;             // warm-start basis across events
  solver::MaxMinProblem problem_;            // reused LP input buffers
  std::vector<Entry> entries_;               // reused per-round priority list
  std::optional<cluster::ClusterState> state_;  // reused per-round free map
};

}  // namespace hadar::baselines
