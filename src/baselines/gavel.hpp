// Gavel [1] baseline: job-level heterogeneity-aware scheduling, expressed
// as a round pipeline (src/pipeline/).
//
// Gavel computes an optimal time-fraction matrix Y[j][r] (the share of
// wall-clock time job j should spend on GPU type r) by solving a max-min
// fairness program over normalized effective throughputs, then realizes Y
// with round-based priority scheduling: priority(j, r) = Y[j][r] divided by
// the rounds job j has already received on type r. Within a round every job
// runs on ONE device type (job-level homogeneity) — the limitation Hadar's
// task-level mixing removes.
//
// Stage split: the priority stage detects job-set/topology change events
// (SchedulerContext::jobs_epoch with an id-signature fallback) and flags a
// refresh; the allocation stage runs the LP solve — warm-started across
// events through a solver::MaxMinContext — rebuilds Y, and emits the sorted
// (job, type) priority entries; the shared greedy placement stage packs
// them with take_homogeneous().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "pipeline/staged_scheduler.hpp"
#include "solver/maxmin.hpp"

namespace hadar::baselines {

/// Gavel's pluggable optimization objectives (its generality claim):
enum class GavelPolicy {
  /// max-min fairness over normalized effective throughput (Gavel default)
  kMaxMinFairness,
  /// maximize the sum of normalized throughputs (cluster efficiency)
  kMaxSumThroughput,
  /// minimize makespan: max-min over throughput normalized by *remaining*
  /// work, which equalizes completion times
  kMinMakespan,
};

const char* to_string(GavelPolicy p);

struct GavelConfig {
  GavelPolicy policy = GavelPolicy::kMaxMinFairness;
  solver::MaxMinOptions solver;
  /// Priority denominator smoothing: priority = Y / (rounds_on_type + eps).
  double rounds_epsilon = 1.0;
  /// Warm-start the allocation LP from the previous event's optimal basis
  /// (revised engine only). Canonical extraction makes the solutions
  /// identical with this on or off; the switch exists for A/B benchmarks.
  bool warm_start = true;
};

/// The core the Gavel stages share. The change-detection signatures are
/// owned (reset/persisted) by the priority stage, the Y matrix by the
/// allocation stage; needs_solve is a per-round flag the priority stage
/// writes and the allocation stage consumes.
struct GavelPipelineState {
  GavelConfig cfg;
  std::uint64_t last_epoch = 0;             ///< last ctx.jobs_epoch acted on
  std::uint64_t last_cluster_epoch = 0;     ///< last ctx.cluster_epoch acted on
  std::vector<JobId> active_ids;            ///< signature for epoch-less contexts
  std::vector<JobId> ids_scratch;
  std::vector<int> last_caps;               ///< per-type capacity signature
  std::vector<int> caps_scratch;
  std::map<JobId, std::vector<double>> y;   ///< time-fraction rows
  solver::MaxMinContext lp_ctx;             ///< warm-start basis across events
  solver::MaxMinProblem problem;            ///< reused LP input buffers
  bool needs_solve = false;                 ///< per-round: refresh Y this round
};

/// Priority: event detection. Flags a Y refresh on job-set changes and
/// topology changes (the latter also drops the warm-start basis: the cached
/// LP operated on different capacities, so its basis may be infeasible).
class GavelChangeStage final : public pipeline::IPriorityStage {
 public:
  explicit GavelChangeStage(std::shared_ptr<GavelPipelineState> st) : st_(std::move(st)) {}
  std::string name() const override { return "gavel.refresh-detect"; }
  void prioritize(pipeline::RoundState& rs) override;
  void reset() override;
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

 private:
  bool job_set_changed(const sim::SchedulerContext& ctx);
  bool cluster_changed(const sim::SchedulerContext& ctx);

  std::shared_ptr<GavelPipelineState> st_;
};

/// Allocation: the LP solve. Recomputes Y when flagged, then emits the
/// round's ranked (job, type) entries — Y / (rounds received on that type),
/// sorted best-first — for the shared greedy placement stage.
class GavelLpStage final : public pipeline::IAllocationStage {
 public:
  explicit GavelLpStage(std::shared_ptr<GavelPipelineState> st) : st_(std::move(st)) {}
  std::string name() const override { return "gavel.lp"; }
  void allocate(pipeline::RoundState& rs) override;
  void reset() override;
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

 private:
  void recompute_allocation(const sim::SchedulerContext& ctx);

  std::shared_ptr<GavelPipelineState> st_;
};

/// The Gavel stage assembly. `state`, when non-null, receives the shared
/// core (tests compose mixed pipelines from these stages).
pipeline::StageSet make_gavel_stages(GavelConfig cfg,
                                     std::shared_ptr<GavelPipelineState>* state = nullptr);

class GavelScheduler final : public pipeline::StagedScheduler {
 public:
  explicit GavelScheduler(GavelConfig cfg = {});

  /// Last computed Y row for a job (tests/introspection); empty if unknown.
  std::vector<double> allocation_row(JobId id) const;

 private:
  explicit GavelScheduler(std::shared_ptr<GavelPipelineState> st);

  std::shared_ptr<GavelPipelineState> st_;
};

}  // namespace hadar::baselines
