#include "baselines/gavel.hpp"

#include <algorithm>

#include "baselines/alloc_util.hpp"
#include "common/binary.hpp"
#include "obs/trace.hpp"

namespace hadar::baselines {

const char* to_string(GavelPolicy p) {
  switch (p) {
    case GavelPolicy::kMaxMinFairness: return "max-min-fairness";
    case GavelPolicy::kMaxSumThroughput: return "max-sum-throughput";
    case GavelPolicy::kMinMakespan: return "min-makespan";
  }
  return "?";
}

GavelScheduler::GavelScheduler(GavelConfig cfg) : cfg_(cfg) {}

std::string GavelScheduler::name() const { return "Gavel"; }

void GavelScheduler::reset() {
  last_epoch_ = 0;
  last_cluster_epoch_ = 0;
  active_ids_.clear();
  last_caps_.clear();
  y_.clear();
  lp_ctx_.clear();
}

void GavelScheduler::save_state(common::BinaryWriter& w) const {
  w.u64(last_epoch_);
  w.u64(last_cluster_epoch_);
  common::write_i32_vector(w, active_ids_);
  common::write_i32_vector(w, last_caps_);
  w.u32(static_cast<std::uint32_t>(y_.size()));
  for (const auto& [id, row] : y_) {
    w.i32(id);
    common::write_f64_vector(w, row);
  }
}

void GavelScheduler::restore_state(common::BinaryReader& r) {
  reset();
  last_epoch_ = r.u64();
  last_cluster_epoch_ = r.u64();
  active_ids_ = common::read_i32_vector(r);
  last_caps_ = common::read_i32_vector(r);
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    const JobId id = r.i32();
    y_[id] = common::read_f64_vector(r);
  }
}

std::vector<double> GavelScheduler::allocation_row(JobId id) const {
  const auto it = y_.find(id);
  return it != y_.end() ? it->second : std::vector<double>{};
}

void GavelScheduler::recompute_allocation(const sim::SchedulerContext& ctx) {
  obs::ScopedSpan span("gavel", "gavel.recompute", 1);
  if (span.active()) span.arg("jobs", static_cast<double>(ctx.jobs.size()));
  obs::count("gavel.recomputes");
  const int R = ctx.spec->num_types();
  solver::MaxMinProblem& p = problem_;  // reused across events
  p.cap.assign(static_cast<std::size_t>(R), 0.0);
  for (GpuTypeId r = 0; r < R; ++r) {
    p.cap[static_cast<std::size_t>(r)] = ctx.spec->total_of_type(r);
  }
  p.rate.resize(ctx.jobs.size());
  p.demand.clear();
  p.scale.clear();
  p.key.clear();
  for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
    const auto& job = ctx.jobs[i];
    std::vector<double>& row = p.rate[i];
    row.assign(static_cast<std::size_t>(R), 0.0);
    for (GpuTypeId r = 0; r < R; ++r) {
      row[static_cast<std::size_t>(r)] = job.throughput_on(r) * job.spec->num_workers;
    }
    p.demand.push_back(job.spec->num_workers);
    if (cfg_.policy == GavelPolicy::kMinMakespan) {
      // Normalize by remaining work: equalizing work-normalized throughput
      // aligns completion times, which is what minimizes the makespan.
      p.scale.push_back(std::max(1.0, job.remaining_iterations()));
    } else {
      // Normalize by the job's ideal (fastest-type) aggregate throughput so
      // the objective compares *relative* progress across jobs.
      p.scale.push_back(std::max(1e-9, job.max_throughput() * job.spec->num_workers));
    }
    // Warm-start identity: the LP basis is remembered per (job id, type).
    p.key.push_back(job.id());
  }

  solver::MaxMinContext* lp_ctx = cfg_.warm_start ? &lp_ctx_ : nullptr;
  const solver::MaxMinSolution sol = cfg_.policy == GavelPolicy::kMaxSumThroughput
                                         ? solver::solve_max_sum(p, cfg_.solver, lp_ctx)
                                         : solver::solve_max_min(p, cfg_.solver, lp_ctx);
  y_.clear();
  for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
    y_[ctx.jobs[i].id()] =
        sol.feasible ? sol.y[i] : std::vector<double>(static_cast<std::size_t>(R), 0.0);
  }
}

bool GavelScheduler::job_set_changed(const sim::SchedulerContext& ctx) {
  if (ctx.jobs_epoch != 0) {
    // The simulator bumps the epoch exactly when the runnable set changes,
    // so one integer compare replaces the per-round id-set rebuild.
    const bool changed = ctx.jobs_epoch != last_epoch_;
    last_epoch_ = ctx.jobs_epoch;
    return changed;
  }
  // Epoch-less context (hand-built in tests/tools): id-signature fallback.
  ids_scratch_.clear();
  for (const auto& j : ctx.jobs) ids_scratch_.push_back(j.id());
  if (ids_scratch_ == active_ids_) return false;
  active_ids_.swap(ids_scratch_);
  return true;
}

bool GavelScheduler::cluster_changed(const sim::SchedulerContext& ctx) {
  if (ctx.cluster_epoch != 0) {
    const bool changed = ctx.cluster_epoch != last_cluster_epoch_;
    last_cluster_epoch_ = ctx.cluster_epoch;
    return changed;
  }
  // Epoch-less context: per-type capacity signature fallback.
  caps_scratch_.clear();
  for (GpuTypeId r = 0; r < ctx.spec->num_types(); ++r) {
    caps_scratch_.push_back(ctx.spec->total_of_type(r));
  }
  if (caps_scratch_ == last_caps_) return false;
  last_caps_.swap(caps_scratch_);
  return true;
}

cluster::AllocationMap GavelScheduler::schedule(const sim::SchedulerContext& ctx) {
  const int R = ctx.spec->num_types();

  // Refresh Y on job arrival/completion events and topology changes. A
  // topology change also drops the warm-start basis: the cached LP operated
  // on different capacities, so its basis may be infeasible for the new one.
  const bool jobs_changed = job_set_changed(ctx);
  const bool topo_changed = cluster_changed(ctx);
  if (topo_changed) lp_ctx_.clear();
  if (jobs_changed || topo_changed) recompute_allocation(ctx);

  // Priority list over (job, type): Y / (rounds received on that type).
  entries_.clear();
  entries_.reserve(ctx.jobs.size() * static_cast<std::size_t>(R));
  for (const auto& job : ctx.jobs) {
    const auto it = y_.find(job.id());
    if (it == y_.end()) continue;
    for (GpuTypeId r = 0; r < R; ++r) {
      if (job.throughput_on(r) <= 0.0) continue;
      const double y = it->second[static_cast<std::size_t>(r)];
      const double rounds = job.rounds_on_type.empty()
                                ? 0.0
                                : job.rounds_on_type[static_cast<std::size_t>(r)];
      // Tiny floor keeps zero-Y rows schedulable when capacity would
      // otherwise idle (Gavel breaks ties the same way via water-filling).
      const double pr = std::max(y, 1e-6) / (rounds + cfg_.rounds_epsilon);
      entries_.push_back({&job, r, pr});
    }
  }
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.job->id() != b.job->id()) return a.job->id() < b.job->id();
    return a.type < b.type;
  });

  HADAR_TRACE_SCOPE("gavel", "gavel.pack", 1);
  if (!state_ || &state_->spec() != ctx.spec) {
    state_.emplace(ctx.spec);
  } else {
    state_->clear();
  }
  cluster::ClusterState& state = *state_;
  cluster::AllocationMap result;
  for (const Entry& e : entries_) {
    if (result.count(e.job->id())) continue;  // one type per job per round
    auto alloc = take_homogeneous(state, e.type, e.job->spec->num_workers);
    if (!alloc) continue;  // job-level all-or-nothing on this type
    state.allocate(*alloc);
    result.emplace(e.job->id(), std::move(*alloc));
  }
  return result;
}

}  // namespace hadar::baselines
