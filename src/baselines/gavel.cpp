#include "baselines/gavel.hpp"

#include <algorithm>

#include "common/binary.hpp"
#include "obs/trace.hpp"
#include "pipeline/stages.hpp"

namespace hadar::baselines {

const char* to_string(GavelPolicy p) {
  switch (p) {
    case GavelPolicy::kMaxMinFairness: return "max-min-fairness";
    case GavelPolicy::kMaxSumThroughput: return "max-sum-throughput";
    case GavelPolicy::kMinMakespan: return "min-makespan";
  }
  return "?";
}

// ------------------------------------------------------------- priority ---

bool GavelChangeStage::job_set_changed(const sim::SchedulerContext& ctx) {
  GavelPipelineState& s = *st_;
  if (ctx.jobs_epoch != 0) {
    // The simulator bumps the epoch exactly when the runnable set changes,
    // so one integer compare replaces the per-round id-set rebuild.
    const bool changed = ctx.jobs_epoch != s.last_epoch;
    s.last_epoch = ctx.jobs_epoch;
    return changed;
  }
  // Epoch-less context (hand-built in tests/tools): id-signature fallback.
  s.ids_scratch.clear();
  for (const auto& j : ctx.jobs) s.ids_scratch.push_back(j.id());
  if (s.ids_scratch == s.active_ids) return false;
  s.active_ids.swap(s.ids_scratch);
  return true;
}

bool GavelChangeStage::cluster_changed(const sim::SchedulerContext& ctx) {
  GavelPipelineState& s = *st_;
  if (ctx.cluster_epoch != 0) {
    const bool changed = ctx.cluster_epoch != s.last_cluster_epoch;
    s.last_cluster_epoch = ctx.cluster_epoch;
    return changed;
  }
  // Epoch-less context: per-type capacity signature fallback.
  s.caps_scratch.clear();
  for (GpuTypeId r = 0; r < ctx.spec->num_types(); ++r) {
    s.caps_scratch.push_back(ctx.spec->total_of_type(r));
  }
  if (s.caps_scratch == s.last_caps) return false;
  s.last_caps.swap(s.caps_scratch);
  return true;
}

void GavelChangeStage::prioritize(pipeline::RoundState& rs) {
  GavelPipelineState& s = *st_;
  // Refresh Y on job arrival/completion events and topology changes. A
  // topology change also drops the warm-start basis: the cached LP operated
  // on different capacities, so its basis may be infeasible for the new one.
  const bool jobs_changed = job_set_changed(*rs.ctx);
  const bool topo_changed = cluster_changed(*rs.ctx);
  if (topo_changed) s.lp_ctx.clear();
  s.needs_solve = jobs_changed || topo_changed;
}

void GavelChangeStage::reset() {
  GavelPipelineState& s = *st_;
  s.last_epoch = 0;
  s.last_cluster_epoch = 0;
  s.active_ids.clear();
  s.last_caps.clear();
  s.needs_solve = false;
}

void GavelChangeStage::save_state(common::BinaryWriter& w) const {
  const GavelPipelineState& s = *st_;
  w.u64(s.last_epoch);
  w.u64(s.last_cluster_epoch);
  common::write_i32_vector(w, s.active_ids);
  common::write_i32_vector(w, s.last_caps);
}

void GavelChangeStage::restore_state(common::BinaryReader& r) {
  GavelPipelineState& s = *st_;
  s.last_epoch = r.u64();
  s.last_cluster_epoch = r.u64();
  s.active_ids = common::read_i32_vector(r);
  s.last_caps = common::read_i32_vector(r);
}

// ----------------------------------------------------------- allocation ---

void GavelLpStage::recompute_allocation(const sim::SchedulerContext& ctx) {
  GavelPipelineState& s = *st_;
  obs::ScopedSpan span("gavel", "gavel.recompute", 1);
  if (span.active()) span.arg("jobs", static_cast<double>(ctx.jobs.size()));
  obs::count("gavel.recomputes");
  const int R = ctx.spec->num_types();
  solver::MaxMinProblem& p = s.problem;  // reused across events
  p.cap.assign(static_cast<std::size_t>(R), 0.0);
  for (GpuTypeId r = 0; r < R; ++r) {
    p.cap[static_cast<std::size_t>(r)] = ctx.spec->total_of_type(r);
  }
  p.rate.resize(ctx.jobs.size());
  p.demand.clear();
  p.scale.clear();
  p.key.clear();
  for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
    const auto& job = ctx.jobs[i];
    std::vector<double>& row = p.rate[i];
    row.assign(static_cast<std::size_t>(R), 0.0);
    for (GpuTypeId r = 0; r < R; ++r) {
      row[static_cast<std::size_t>(r)] = job.throughput_on(r) * job.spec->num_workers;
    }
    p.demand.push_back(job.spec->num_workers);
    if (s.cfg.policy == GavelPolicy::kMinMakespan) {
      // Normalize by remaining work: equalizing work-normalized throughput
      // aligns completion times, which is what minimizes the makespan.
      p.scale.push_back(std::max(1.0, job.remaining_iterations()));
    } else {
      // Normalize by the job's ideal (fastest-type) aggregate throughput so
      // the objective compares *relative* progress across jobs.
      p.scale.push_back(std::max(1e-9, job.max_throughput() * job.spec->num_workers));
    }
    // Warm-start identity: the LP basis is remembered per (job id, type).
    p.key.push_back(job.id());
  }

  solver::MaxMinContext* lp_ctx = s.cfg.warm_start ? &s.lp_ctx : nullptr;
  const solver::MaxMinSolution sol = s.cfg.policy == GavelPolicy::kMaxSumThroughput
                                         ? solver::solve_max_sum(p, s.cfg.solver, lp_ctx)
                                         : solver::solve_max_min(p, s.cfg.solver, lp_ctx);
  s.y.clear();
  for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
    s.y[ctx.jobs[i].id()] =
        sol.feasible ? sol.y[i] : std::vector<double>(static_cast<std::size_t>(R), 0.0);
  }
}

void GavelLpStage::allocate(pipeline::RoundState& rs) {
  GavelPipelineState& s = *st_;
  const sim::SchedulerContext& ctx = *rs.ctx;
  const int R = ctx.spec->num_types();

  if (s.needs_solve) recompute_allocation(ctx);
  s.needs_solve = false;

  // Priority list over (job, type): Y / (rounds received on that type).
  rs.ranked.reserve(ctx.jobs.size() * static_cast<std::size_t>(R));
  for (const auto& job : ctx.jobs) {
    const auto it = s.y.find(job.id());
    if (it == s.y.end()) continue;
    for (GpuTypeId r = 0; r < R; ++r) {
      if (job.throughput_on(r) <= 0.0) continue;
      const double y = it->second[static_cast<std::size_t>(r)];
      const double rounds = job.rounds_on_type.empty()
                                ? 0.0
                                : job.rounds_on_type[static_cast<std::size_t>(r)];
      // Tiny floor keeps zero-Y rows schedulable when capacity would
      // otherwise idle (Gavel breaks ties the same way via water-filling).
      const double pr = std::max(y, 1e-6) / (rounds + s.cfg.rounds_epsilon);
      rs.ranked.push_back(pipeline::RoundState::Candidate{&job, r, pr});
    }
  }
  using Candidate = pipeline::RoundState::Candidate;
  std::sort(rs.ranked.begin(), rs.ranked.end(), [](const Candidate& a, const Candidate& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.job->id() != b.job->id()) return a.job->id() < b.job->id();
    return a.type < b.type;
  });
}

void GavelLpStage::reset() {
  st_->y.clear();
  st_->lp_ctx.clear();
}

void GavelLpStage::save_state(common::BinaryWriter& w) const {
  const GavelPipelineState& s = *st_;
  w.u32(static_cast<std::uint32_t>(s.y.size()));
  for (const auto& [id, row] : s.y) {
    w.i32(id);
    common::write_f64_vector(w, row);
  }
}

void GavelLpStage::restore_state(common::BinaryReader& r) {
  GavelPipelineState& s = *st_;
  s.y.clear();
  s.lp_ctx.clear();
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    const JobId id = r.i32();
    s.y[id] = common::read_f64_vector(r);
  }
}

// ------------------------------------------------------------- assembly ---

namespace {

pipeline::StageSet gavel_stages_for(const std::shared_ptr<GavelPipelineState>& st) {
  pipeline::StageSet set;
  set.admission = std::make_shared<pipeline::PassThroughAdmissionStage>();
  set.priority = std::make_shared<GavelChangeStage>(st);
  set.allocation = std::make_shared<GavelLpStage>(st);
  set.placement = std::make_shared<pipeline::GreedyPlacementStage>();
  set.preemption = std::make_shared<pipeline::NoPreemptionStage>();
  return set;
}

std::shared_ptr<GavelPipelineState> gavel_state_for(GavelConfig cfg) {
  auto st = std::make_shared<GavelPipelineState>();
  st->cfg = cfg;
  return st;
}

}  // namespace

pipeline::StageSet make_gavel_stages(GavelConfig cfg,
                                     std::shared_ptr<GavelPipelineState>* state) {
  auto st = gavel_state_for(cfg);
  if (state != nullptr) *state = st;
  return gavel_stages_for(st);
}

GavelScheduler::GavelScheduler(GavelConfig cfg) : GavelScheduler(gavel_state_for(cfg)) {}

GavelScheduler::GavelScheduler(std::shared_ptr<GavelPipelineState> st)
    : StagedScheduler("Gavel", gavel_stages_for(st)), st_(std::move(st)) {}

std::vector<double> GavelScheduler::allocation_row(JobId id) const {
  const auto it = st_->y.find(id);
  return it != st_->y.end() ? it->second : std::vector<double>{};
}

}  // namespace hadar::baselines
