#include "baselines/gavel.hpp"

#include <algorithm>

#include "baselines/alloc_util.hpp"

namespace hadar::baselines {

const char* to_string(GavelPolicy p) {
  switch (p) {
    case GavelPolicy::kMaxMinFairness: return "max-min-fairness";
    case GavelPolicy::kMaxSumThroughput: return "max-sum-throughput";
    case GavelPolicy::kMinMakespan: return "min-makespan";
  }
  return "?";
}

GavelScheduler::GavelScheduler(GavelConfig cfg) : cfg_(cfg) {}

std::string GavelScheduler::name() const { return "Gavel"; }

void GavelScheduler::reset() {
  active_set_.clear();
  y_.clear();
}

std::vector<double> GavelScheduler::allocation_row(JobId id) const {
  const auto it = y_.find(id);
  return it != y_.end() ? it->second : std::vector<double>{};
}

void GavelScheduler::recompute_allocation(const sim::SchedulerContext& ctx) {
  const int R = ctx.spec->num_types();
  solver::MaxMinProblem p;
  p.cap.resize(static_cast<std::size_t>(R));
  for (GpuTypeId r = 0; r < R; ++r) {
    p.cap[static_cast<std::size_t>(r)] = ctx.spec->total_of_type(r);
  }
  p.rate.reserve(ctx.jobs.size());
  for (const auto& job : ctx.jobs) {
    std::vector<double> row(static_cast<std::size_t>(R), 0.0);
    for (GpuTypeId r = 0; r < R; ++r) {
      row[static_cast<std::size_t>(r)] = job.throughput_on(r) * job.spec->num_workers;
    }
    p.rate.push_back(std::move(row));
    p.demand.push_back(job.spec->num_workers);
    if (cfg_.policy == GavelPolicy::kMinMakespan) {
      // Normalize by remaining work: equalizing work-normalized throughput
      // aligns completion times, which is what minimizes the makespan.
      p.scale.push_back(std::max(1.0, job.remaining_iterations()));
    } else {
      // Normalize by the job's ideal (fastest-type) aggregate throughput so
      // the objective compares *relative* progress across jobs.
      p.scale.push_back(std::max(1e-9, job.max_throughput() * job.spec->num_workers));
    }
  }

  const solver::MaxMinSolution sol = cfg_.policy == GavelPolicy::kMaxSumThroughput
                                         ? solver::solve_max_sum(p, cfg_.solver)
                                         : solver::solve_max_min(p, cfg_.solver);
  y_.clear();
  for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
    y_[ctx.jobs[i].id()] = sol.feasible ? sol.y[i] : std::vector<double>(static_cast<std::size_t>(R), 0.0);
  }
}

cluster::AllocationMap GavelScheduler::schedule(const sim::SchedulerContext& ctx) {
  const int R = ctx.spec->num_types();

  // Refresh Y on job arrival/completion events only.
  std::set<JobId> ids;
  for (const auto& j : ctx.jobs) ids.insert(j.id());
  if (ids != active_set_) {
    recompute_allocation(ctx);
    active_set_ = std::move(ids);
  }

  // Priority list over (job, type): Y / (rounds received on that type).
  struct Entry {
    const sim::JobView* job;
    GpuTypeId type;
    double priority;
  };
  std::vector<Entry> entries;
  entries.reserve(ctx.jobs.size() * static_cast<std::size_t>(R));
  for (const auto& job : ctx.jobs) {
    const auto it = y_.find(job.id());
    if (it == y_.end()) continue;
    for (GpuTypeId r = 0; r < R; ++r) {
      if (job.throughput_on(r) <= 0.0) continue;
      const double y = it->second[static_cast<std::size_t>(r)];
      const double rounds = job.rounds_on_type.empty()
                                ? 0.0
                                : job.rounds_on_type[static_cast<std::size_t>(r)];
      // Tiny floor keeps zero-Y rows schedulable when capacity would
      // otherwise idle (Gavel breaks ties the same way via water-filling).
      const double pr = std::max(y, 1e-6) / (rounds + cfg_.rounds_epsilon);
      entries.push_back({&job, r, pr});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.job->id() != b.job->id()) return a.job->id() < b.job->id();
    return a.type < b.type;
  });

  cluster::ClusterState state(ctx.spec);
  cluster::AllocationMap result;
  for (const Entry& e : entries) {
    if (result.count(e.job->id())) continue;  // one type per job per round
    auto alloc = take_homogeneous(state, e.type, e.job->spec->num_workers);
    if (!alloc) continue;  // job-level all-or-nothing on this type
    state.allocate(*alloc);
    result.emplace(e.job->id(), std::move(*alloc));
  }
  return result;
}

}  // namespace hadar::baselines
