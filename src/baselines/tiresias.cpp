#include "baselines/tiresias.hpp"

#include <algorithm>

#include "common/binary.hpp"
#include "obs/trace.hpp"
#include "pipeline/stages.hpp"

namespace hadar::baselines {

void TiresiasQueueStage::prioritize(pipeline::RoundState& rs) {
  obs::ScopedSpan queues_span("tiresias", "tiresias.queues", 1);
  for (const auto& job : rs.jobs) {
    // PromoteKnob (disabled by default, as in the paper's evaluation):
    // a demoted job starved of service long enough is promoted back and
    // shielded from re-demotion until it actually runs again.
    auto& starved = starved_rounds_[job.id()];
    if (!job.current_allocation.empty()) {
      starved = 0;
      promoted_.erase(job.id());  // served again: normal demotion rules apply
    } else {
      ++starved;
    }
    if (cfg_.promote_after_starved_rounds > 0 && demoted_.count(job.id()) &&
        starved >= cfg_.promote_after_starved_rounds) {
      demoted_.erase(job.id());
      promoted_.insert(job.id());
      starved = 0;
    }
    if (!promoted_.count(job.id()) && job.attained_service >= cfg_.queue_threshold) {
      demoted_.insert(job.id());
    }
  }

  // Priority: high queue first, FIFO (arrival == id order) within a queue.
  using Candidate = pipeline::RoundState::Candidate;
  rs.ranked.reserve(rs.queue.size());
  for (const sim::JobView* job : rs.queue) {
    rs.ranked.push_back(Candidate{job, -1, 0.0});
  }
  std::stable_sort(rs.ranked.begin(), rs.ranked.end(),
                   [this](const Candidate& a, const Candidate& b) {
                     const bool da = demoted_.count(a.job->id()) > 0;
                     const bool db = demoted_.count(b.job->id()) > 0;
                     if (da != db) return !da;            // high queue before low queue
                     return a.job->id() < b.job->id();    // FIFO
                   });

  if (queues_span.active()) {
    queues_span.arg("demoted", static_cast<double>(demoted_.size()));
    obs::gauge_set("tiresias.demoted_jobs", static_cast<double>(demoted_.size()));
  }
}

void TiresiasQueueStage::reset() {
  demoted_.clear();
  promoted_.clear();
  starved_rounds_.clear();
}

void TiresiasQueueStage::save_state(common::BinaryWriter& w) const {
  w.u32(static_cast<std::uint32_t>(demoted_.size()));
  for (JobId id : demoted_) w.i32(id);
  w.u32(static_cast<std::uint32_t>(promoted_.size()));
  for (JobId id : promoted_) w.i32(id);
  w.u32(static_cast<std::uint32_t>(starved_rounds_.size()));
  for (const auto& [id, n] : starved_rounds_) {
    w.i32(id);
    w.i32(n);
  }
}

void TiresiasQueueStage::restore_state(common::BinaryReader& r) {
  reset();
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) demoted_.insert(r.i32());
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) promoted_.insert(r.i32());
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    const JobId id = r.i32();
    starved_rounds_[id] = r.i32();
  }
}

void TiresiasPreemptionStage::preempt(pipeline::RoundState& rs) {
  // Any short job left waiting this round?
  bool short_job_waiting = false;
  for (const auto& job : rs.jobs) {
    if (job.attained_service < cfg_.queue_threshold && rs.result.count(job.id()) == 0) {
      short_job_waiting = true;
      break;
    }
  }
  if (!short_job_waiting) return;

  // Revoke fresh grants to over-threshold jobs (they were not running, so
  // taking the grant back costs no checkpoint churn).
  for (const auto& job : rs.jobs) {
    if (job.attained_service < cfg_.queue_threshold) continue;
    if (!job.current_allocation.empty()) continue;  // running: never disturbed
    const auto it = rs.result.find(job.id());
    if (it == rs.result.end()) continue;
    rs.state->release(it->second);
    rs.result.erase(it);
  }
}

TiresiasScheduler::TiresiasScheduler(TiresiasConfig cfg)
    : TiresiasScheduler(std::make_shared<TiresiasQueueStage>(cfg)) {}

TiresiasScheduler::TiresiasScheduler(std::shared_ptr<TiresiasQueueStage> queues)
    : StagedScheduler("Tiresias",
                      pipeline::StageSet{
                          std::make_shared<pipeline::PassThroughAdmissionStage>(),
                          queues,
                          std::make_shared<pipeline::NoSolveStage>(),
                          std::make_shared<pipeline::GreedyPlacementStage>(),
                          std::make_shared<pipeline::NoPreemptionStage>(),
                      }),
      queues_(std::move(queues)) {}

}  // namespace hadar::baselines
