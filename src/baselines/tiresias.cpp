#include "baselines/tiresias.hpp"

#include <algorithm>

#include "baselines/alloc_util.hpp"
#include "common/binary.hpp"
#include "obs/trace.hpp"

namespace hadar::baselines {

TiresiasScheduler::TiresiasScheduler(TiresiasConfig cfg) : cfg_(cfg) {}

std::string TiresiasScheduler::name() const { return "Tiresias"; }

void TiresiasScheduler::reset() {
  demoted_.clear();
  promoted_.clear();
  starved_rounds_.clear();
}

void TiresiasScheduler::save_state(common::BinaryWriter& w) const {
  w.u32(static_cast<std::uint32_t>(demoted_.size()));
  for (JobId id : demoted_) w.i32(id);
  w.u32(static_cast<std::uint32_t>(promoted_.size()));
  for (JobId id : promoted_) w.i32(id);
  w.u32(static_cast<std::uint32_t>(starved_rounds_.size()));
  for (const auto& [id, n] : starved_rounds_) {
    w.i32(id);
    w.i32(n);
  }
}

void TiresiasScheduler::restore_state(common::BinaryReader& r) {
  reset();
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) demoted_.insert(r.i32());
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) promoted_.insert(r.i32());
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    const JobId id = r.i32();
    starved_rounds_[id] = r.i32();
  }
}

cluster::AllocationMap TiresiasScheduler::schedule(const sim::SchedulerContext& ctx) {
  obs::ScopedSpan queues_span("tiresias", "tiresias.queues", 1);
  for (const auto& job : ctx.jobs) {
    // PromoteKnob (disabled by default, as in the paper's evaluation):
    // a demoted job starved of service long enough is promoted back and
    // shielded from re-demotion until it actually runs again.
    auto& starved = starved_rounds_[job.id()];
    if (!job.current_allocation.empty()) {
      starved = 0;
      promoted_.erase(job.id());  // served again: normal demotion rules apply
    } else {
      ++starved;
    }
    if (cfg_.promote_after_starved_rounds > 0 && demoted_.count(job.id()) &&
        starved >= cfg_.promote_after_starved_rounds) {
      demoted_.erase(job.id());
      promoted_.insert(job.id());
      starved = 0;
    }
    if (!promoted_.count(job.id()) && job.attained_service >= cfg_.queue_threshold) {
      demoted_.insert(job.id());
    }
  }

  // Priority: high queue first, FIFO (arrival == id order) within a queue.
  order_.clear();
  order_.reserve(ctx.jobs.size());
  for (const auto& job : ctx.jobs) order_.push_back(&job);
  std::stable_sort(order_.begin(), order_.end(),
                   [this](const sim::JobView* a, const sim::JobView* b) {
                     const bool da = demoted_.count(a->id()) > 0;
                     const bool db = demoted_.count(b->id()) > 0;
                     if (da != db) return !da;  // high queue before low queue
                     return a->id() < b->id();  // FIFO
                   });

  if (queues_span.active()) {
    queues_span.arg("demoted", static_cast<double>(demoted_.size()));
    obs::gauge_set("tiresias.demoted_jobs", static_cast<double>(demoted_.size()));
  }
  HADAR_TRACE_SCOPE("tiresias", "tiresias.pack", 1);
  cluster::ClusterState state(ctx.spec);
  cluster::AllocationMap result;
  for (const sim::JobView* job : order_) {
    // Restrict to types the job can actually run on (rate > 0); a zero-rate
    // device would stall the gang's synchronization barrier forever.
    usable_.clear();
    for (GpuTypeId r = 0; r < ctx.spec->num_types(); ++r) {
      if (job->throughput_on(r) > 0.0) usable_.push_back(r);
    }
    auto alloc = take_unaware(state, usable_, job->spec->num_workers);
    if (!alloc) continue;
    state.allocate(*alloc);
    result.emplace(job->id(), std::move(*alloc));
  }
  return result;
}

}  // namespace hadar::baselines
