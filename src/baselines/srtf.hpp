// Shortest-Remaining-Time-First: an extra preemptive baseline (not in the
// paper's comparison set) used by tests and ablations as a simple
// heterogeneity-aware reference point. Jobs are ordered by their remaining
// runtime on their fastest device type; gangs are filled fastest-types-first.
#pragma once

#include "sim/scheduler.hpp"

namespace hadar::baselines {

class SrtfScheduler : public sim::IScheduler {
 public:
  SrtfScheduler() = default;

  std::string name() const override;
  cluster::AllocationMap schedule(const sim::SchedulerContext& ctx) override;
};

}  // namespace hadar::baselines
