#include "baselines/yarn_cs.hpp"

#include "common/binary.hpp"
#include "pipeline/stages.hpp"

namespace hadar::baselines {

void YarnAdmissionStage::admit(pipeline::RoundState& rs) {
  const sim::SchedulerContext& ctx = *rs.ctx;

  // Drop finished jobs (present in running_, absent from the context). The
  // O(running * jobs) scan only pays off when the runnable set actually
  // changed; epoch-less contexts (jobs_epoch == 0) always scan.
  if (ctx.jobs_epoch == 0 || ctx.jobs_epoch != last_epoch_) {
    last_epoch_ = ctx.jobs_epoch;
    for (auto it = running_.begin(); it != running_.end();) {
      if (ctx.find(it->first) == nullptr) {
        it = running_.erase(it);
      } else {
        ++it;
      }
    }
  }

  for (auto it = running_.begin(); it != running_.end();) {
    // Running jobs are never disturbed — unless their node died under them
    // (the simulator clears such jobs' allocations, so they also reappear in
    // the queue below and wait for readmission like any other arrival).
    if (!rs.state->can_allocate(it->second)) {
      it = running_.erase(it);
      continue;
    }
    rs.state->allocate(it->second);
    rs.result.emplace(it->first, it->second);
    ++it;
  }

  // Everyone else waits in strict arrival order.
  rs.queue.reserve(rs.jobs.size());
  for (const auto& job : rs.jobs) {
    if (running_.count(job.id())) continue;
    rs.queue.push_back(&job);
  }
}

void YarnAdmissionStage::note_placed(JobId id, const cluster::JobAllocation& alloc) {
  running_.emplace(id, alloc);
}

void YarnAdmissionStage::reset() {
  running_.clear();
  last_epoch_ = 0;
}

void YarnAdmissionStage::save_state(common::BinaryWriter& w) const {
  w.u64(last_epoch_);
  w.u32(static_cast<std::uint32_t>(running_.size()));
  for (const auto& [id, alloc] : running_) {
    w.i32(id);
    alloc.save(w);
  }
}

void YarnAdmissionStage::restore_state(common::BinaryReader& r) {
  reset();
  last_epoch_ = r.u64();
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    const JobId id = r.i32();
    running_.emplace(id, cluster::JobAllocation::restore(r));
  }
}

namespace {

pipeline::StageSet yarn_stages(YarnConfig cfg) {
  auto admission = std::make_shared<YarnAdmissionStage>();
  pipeline::GreedyPlacementOptions opts;
  opts.stop_on_first_failure = !cfg.backfill;  // head-of-line blocking
  pipeline::StageSet set;
  set.admission = admission;
  set.priority = std::make_shared<pipeline::ArrivalOrderPriorityStage>();
  set.allocation = std::make_shared<pipeline::NoSolveStage>();
  set.placement = std::make_shared<pipeline::GreedyPlacementStage>(
      opts, [admission](JobId id, const cluster::JobAllocation& alloc) {
        admission->note_placed(id, alloc);
      });
  set.preemption = std::make_shared<pipeline::NoPreemptionStage>();
  return set;
}

}  // namespace

YarnCsScheduler::YarnCsScheduler(YarnConfig cfg)
    : StagedScheduler("YARN-CS", yarn_stages(cfg)) {}

}  // namespace hadar::baselines
