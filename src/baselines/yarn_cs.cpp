#include "baselines/yarn_cs.hpp"

#include "baselines/alloc_util.hpp"
#include "common/binary.hpp"
#include "obs/trace.hpp"

namespace hadar::baselines {

YarnCsScheduler::YarnCsScheduler(YarnConfig cfg) : cfg_(cfg) {}

std::string YarnCsScheduler::name() const { return "YARN-CS"; }

void YarnCsScheduler::reset() {
  running_.clear();
  last_epoch_ = 0;
}

void YarnCsScheduler::save_state(common::BinaryWriter& w) const {
  w.u64(last_epoch_);
  w.u32(static_cast<std::uint32_t>(running_.size()));
  for (const auto& [id, alloc] : running_) {
    w.i32(id);
    alloc.save(w);
  }
}

void YarnCsScheduler::restore_state(common::BinaryReader& r) {
  reset();
  last_epoch_ = r.u64();
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    const JobId id = r.i32();
    running_.emplace(id, cluster::JobAllocation::restore(r));
  }
}

cluster::AllocationMap YarnCsScheduler::schedule(const sim::SchedulerContext& ctx) {
  // Drop finished jobs (present in running_, absent from the context). The
  // O(running * jobs) scan only pays off when the runnable set actually
  // changed; epoch-less contexts (jobs_epoch == 0) always scan.
  if (ctx.jobs_epoch == 0 || ctx.jobs_epoch != last_epoch_) {
    last_epoch_ = ctx.jobs_epoch;
    for (auto it = running_.begin(); it != running_.end();) {
      if (ctx.find(it->first) == nullptr) {
        it = running_.erase(it);
      } else {
        ++it;
      }
    }
  }

  cluster::ClusterState state(ctx.spec);
  cluster::AllocationMap result;
  for (auto it = running_.begin(); it != running_.end();) {
    // Running jobs are never disturbed — unless their node died under them
    // (the simulator clears such jobs' allocations, so they also reappear in
    // the queue below and wait for readmission like any other arrival).
    if (!state.can_allocate(it->second)) {
      it = running_.erase(it);
      continue;
    }
    state.allocate(it->second);
    result.emplace(it->first, it->second);
    ++it;
  }

  // Strict FIFO admission with head-of-line blocking.
  obs::ScopedSpan pack_span("yarn", "yarn.pack", 1);
  int admitted = 0;
  for (const auto& job : ctx.jobs) {  // ctx.jobs is arrival-ordered
    if (running_.count(job.id())) continue;
    usable_.clear();
    for (GpuTypeId r = 0; r < ctx.spec->num_types(); ++r) {
      if (job.throughput_on(r) > 0.0) usable_.push_back(r);
    }
    auto alloc = take_unaware(state, usable_, job.spec->num_workers);
    if (!alloc) {
      if (!cfg_.backfill) break;  // the queue head waits; nobody jumps it
      continue;                   // backfill: later jobs may slot in
    }
    state.allocate(*alloc);
    running_.emplace(job.id(), *alloc);
    result.emplace(job.id(), std::move(*alloc));
    ++admitted;
  }
  if (pack_span.active()) {
    pack_span.arg("admitted", static_cast<double>(admitted));
    pack_span.arg("running", static_cast<double>(running_.size()));
  }
  return result;
}

}  // namespace hadar::baselines
