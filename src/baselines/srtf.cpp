#include "baselines/srtf.hpp"

#include <algorithm>

#include "baselines/alloc_util.hpp"

namespace hadar::baselines {

std::string SrtfScheduler::name() const { return "SRTF"; }

cluster::AllocationMap SrtfScheduler::schedule(const sim::SchedulerContext& ctx) {
  std::vector<const sim::JobView*> order;
  order.reserve(ctx.jobs.size());
  for (const auto& job : ctx.jobs) order.push_back(&job);

  auto remaining_time = [](const sim::JobView* j) {
    const double x = j->max_throughput();
    return x > 0.0 ? j->remaining_iterations() / (x * j->spec->num_workers)
                   : kInfiniteTime;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](const sim::JobView* a, const sim::JobView* b) {
                     return remaining_time(a) < remaining_time(b);
                   });

  cluster::ClusterState state(ctx.spec);
  cluster::AllocationMap result;
  for (const sim::JobView* job : order) {
    // Fastest usable types first.
    std::vector<GpuTypeId> usable;
    for (GpuTypeId r = 0; r < ctx.spec->num_types(); ++r) {
      if (job->throughput_on(r) > 0.0) usable.push_back(r);
    }
    std::sort(usable.begin(), usable.end(), [&](GpuTypeId a, GpuTypeId b) {
      return job->throughput_on(a) > job->throughput_on(b);
    });
    auto alloc = take_in_type_order(state, usable, job->spec->num_workers);
    if (!alloc) continue;
    state.allocate(*alloc);
    result.emplace(job->id(), std::move(*alloc));
  }
  return result;
}

}  // namespace hadar::baselines
