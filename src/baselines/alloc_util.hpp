// Back-compat shim: the gang-placement helpers moved to cluster/placement.*
// so layers below baselines (the sharded cell orchestrator in sim/) can use
// them. Baseline schedulers and tests keep their historical names.
#pragma once

#include "cluster/placement.hpp"

namespace hadar::baselines {

using cluster::take_homogeneous;
using cluster::take_in_type_order;
using cluster::take_unaware;

}  // namespace hadar::baselines
