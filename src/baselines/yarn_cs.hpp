// YARN capacity scheduler (YARN-CS [6]) baseline as configured in the
// paper: a single-queue FIFO, NON-preemptive scheduler, expressed as a
// round pipeline. A job admitted to the cluster keeps exactly the same
// devices until it finishes; the queue head blocks until its full gang fits
// (head-of-line blocking), which is what costs YARN-CS its 7-15x JCT gap
// despite near-perfect GPU utilization.
//
// Stage split: the admission stage owns the sticky running set — it prunes
// finished jobs, re-commits every surviving placement, and queues only the
// waiting jobs; the shared FIFO priority stage ranks them in arrival order;
// the shared greedy placement stage packs with take_unaware(), stopping at
// the first failure (head-of-line blocking) unless backfill is on, and
// records every new placement back into the running set via the placement
// hook.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "pipeline/staged_scheduler.hpp"

namespace hadar::baselines {

struct YarnConfig {
  /// Strict FIFO (paper configuration): the queue head blocks everyone
  /// behind it. With backfill enabled, later jobs that fit may be admitted
  /// while the head waits — the common production tuning knob.
  bool backfill = false;
};

/// Admission: the non-preemptive running set. Surviving placements are
/// pinned straight into state/result; everything else queues FIFO.
class YarnAdmissionStage final : public pipeline::IAdmissionStage {
 public:
  std::string name() const override { return "yarn.admission"; }
  void admit(pipeline::RoundState& rs) override;
  void reset() override;
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

  /// The placement stage's hook target: a freshly admitted job becomes
  /// sticky from the next round on.
  void note_placed(JobId id, const cluster::JobAllocation& alloc);

 private:
  std::map<JobId, cluster::JobAllocation> running_;
  std::uint64_t last_epoch_ = 0;  // skip the finished-job prune when unchanged
};

class YarnCsScheduler final : public pipeline::StagedScheduler {
 public:
  explicit YarnCsScheduler(YarnConfig cfg = {});
};

}  // namespace hadar::baselines
