// YARN capacity scheduler (YARN-CS [6]) baseline as configured in the paper:
// a single-queue FIFO, NON-preemptive scheduler. A job admitted to the
// cluster keeps exactly the same devices until it finishes; the queue head
// blocks until its full gang fits (head-of-line blocking), which is what
// costs YARN-CS its 7-15x JCT gap despite near-perfect GPU utilization.
#pragma once

#include <cstdint>
#include <map>

#include "sim/scheduler.hpp"

namespace hadar::baselines {

struct YarnConfig {
  /// Strict FIFO (paper configuration): the queue head blocks everyone
  /// behind it. With backfill enabled, later jobs that fit may be admitted
  /// while the head waits — the common production tuning knob.
  bool backfill = false;
};

class YarnCsScheduler : public sim::IScheduler {
 public:
  explicit YarnCsScheduler(YarnConfig cfg = {});

  std::string name() const override;
  cluster::AllocationMap schedule(const sim::SchedulerContext& ctx) override;
  void reset() override;

  /// Cross-round decision state: the sticky (non-preemptive) placements.
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

 private:
  YarnConfig cfg_;
  std::map<JobId, cluster::JobAllocation> running_;
  std::uint64_t last_epoch_ = 0;  // skip the finished-job prune when unchanged
  std::vector<GpuTypeId> usable_;  // reused per-job scratch
};

}  // namespace hadar::baselines
