#include "service/daemon.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/env.hpp"
#include "obs/trace.hpp"
#include "service/snapshot.hpp"

namespace hadar::service {

namespace {

/// Rotation round encoded in a changelog file name ("...changelog_N.wal"),
/// or 0 when the name does not match (genesis).
long long rotation_round_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  long long r = 0;
  if (std::sscanf(base.c_str(), "changelog_%lld.wal", &r) == 1 && r >= 0) return r;
  return 0;
}

}  // namespace

ServiceConfig ServiceConfig::from_env() { return from_env(ServiceConfig{}); }

ServiceConfig ServiceConfig::from_env(ServiceConfig base) {
  base.dir = common::env_str("HADAR_SERVICE_DIR", base.dir);
  base.snapshot_interval = common::env_int(
      "HADAR_SERVICE_SNAPSHOT_INTERVAL", static_cast<int>(base.snapshot_interval), 0);
  base.queue_depth = static_cast<std::size_t>(common::env_int(
      "HADAR_SERVICE_QUEUE_DEPTH", static_cast<int>(base.queue_depth), 1));
  base.fsync = fsync_mode_from_env("HADAR_SERVICE_FSYNC", base.fsync);
  return base;
}

SchedulerDaemon::SchedulerDaemon(const cluster::ClusterSpec* spec,
                                 sim::SchedulerPtr scheduler, ServiceConfig cfg)
    : spec_(spec),
      cfg_(std::move(cfg)),
      scheduler_(std::move(scheduler)),
      engine_(spec_, cfg_.sim),
      queue_(cfg_.queue_depth) {
  scheduler_->reset();
  recovery_ = recover(cfg_.dir, engine_, *scheduler_);
  last_rotation_round_ = rotation_round_of(recovery_.active_changelog);
  wal_ = std::make_unique<ChangelogWriter>(recovery_.active_changelog, cfg_.fsync,
                                           /*append=*/true);
}

bool SchedulerDaemon::idle() const {
  return !engine_.has_runnable() && pending_.empty() && queue_.size() == 0;
}

std::optional<sim::RoundOutcome> SchedulerDaemon::run_round() {
  HADAR_TRACE_SCOPE("service", "service.round");

  // 1. Pull new submissions into the (arrival-sorted) pending buffer.
  std::vector<workload::JobSpec> fresh = queue_.drain();
  if (!fresh.empty()) {
    pending_.insert(pending_.end(), std::make_move_iterator(fresh.begin()),
                    std::make_move_iterator(fresh.end()));
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const workload::JobSpec& a, const workload::JobSpec& b) {
                       return a.arrival < b.arrival;
                     });
  }

  // 2. Admit everything due at the current boundary; if nothing is runnable,
  // skip the idle gap to the earliest pending arrival (same policy as the
  // batch driver in Simulator::run).
  std::vector<workload::JobSpec> admitted;
  auto admit_due = [&]() {
    std::size_t n = 0;
    while (n < pending_.size() && pending_[n].arrival <= engine_.now() + 1e-9) ++n;
    for (std::size_t i = 0; i < n; ++i) {
      engine_.admit(pending_[i]);
      admitted.push_back(std::move(pending_[i]));
    }
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(n));
  };
  admit_due();
  if (!engine_.has_runnable()) {
    if (pending_.empty()) return std::nullopt;  // nothing to do at all
    engine_.skip_to(pending_.front().arrival);
    admit_due();
  }

  // 3. Execute the round, then make it durable: the record carries the
  // events admitted at this boundary, so an event is durable exactly when
  // its round commits (a crash in between loses the submission and the
  // producer must resubmit).
  RoundRecord rec;
  rec.round = engine_.rounds_completed();
  rec.start = engine_.now();
  rec.rng_before = engine_.rng_state();
  rec.admitted = std::move(admitted);
  sim::RoundOutcome out = engine_.step(*scheduler_);
  rec.rng_after = engine_.rng_state();
  rec.allocations = out.allocations;
  wal_->append(rec.encode());
  obs::count("service.rounds");

  maybe_snapshot();
  return out;
}

long long SchedulerDaemon::run_until_idle() {
  long long n = 0;
  while (run_round().has_value()) ++n;
  return n;
}

void SchedulerDaemon::maybe_snapshot() {
  if (cfg_.snapshot_interval <= 0) return;
  const long long r = engine_.rounds_completed();
  if (r - last_rotation_round_ < cfg_.snapshot_interval) return;
  HADAR_TRACE_SCOPE("service", "service.snapshot");
  write_snapshot(snapshot_path(cfg_.dir, r), engine_, *scheduler_,
                 cfg_.fsync != FsyncMode::kNone);
  // Rotate: the old changelog's rounds are folded into the snapshot; new
  // records land in a fresh file paired with it.
  if (cfg_.fsync == FsyncMode::kRotate) wal_->sync();
  wal_->close();
  wal_ = std::make_unique<ChangelogWriter>(changelog_path(cfg_.dir, r), cfg_.fsync,
                                           /*append=*/false);
  last_rotation_round_ = r;
  obs::count("service.snapshots");
}

}  // namespace hadar::service
