// Crash recovery for the scheduler daemon: restore the newest valid
// snapshot (falling back to older ones, or to genesis, when CRCs fail),
// then replay the changelog tail record by record — re-admitting the logged
// events and re-executing each round through the real scheduler. Because
// engine and schedulers are deterministic functions of their persisted
// state, replay reproduces the pre-crash state bit for bit; every record
// carries the RNG positions and the decision it produced, and replay
// cross-checks them as it goes.
//
// Torn or corrupt tails (partial write, flipped bits) are detected by the
// framing CRCs and cut off at the last valid record; anything after a cut —
// later records, later changelog files, later snapshots — is orphaned state
// from a lost future and is removed. Recovery never throws on corrupt
// input; it throws only when the durable state structurally mismatches the
// (spec, config, scheduler) it is being restored into.
#pragma once

#include <cstdint>
#include <string>

#include "sim/round_engine.hpp"
#include "sim/scheduler.hpp"

namespace hadar::service {

/// File-name helpers: changelog_<round>.wal / snapshot_<round>.snap in dir.
std::string changelog_path(const std::string& dir, long long start_round);
std::string snapshot_path(const std::string& dir, long long round);

struct RecoveryReport {
  /// Any durable state was found (false = fresh start in an empty dir).
  bool recovered = false;
  /// Round of the snapshot restored; -1 when replay started from genesis.
  long long snapshot_round = -1;
  long long replayed_rounds = 0;
  long long replayed_events = 0;  ///< admissions re-applied from the log
  /// Corrupt snapshots skipped while searching for a restorable one.
  long long discarded_snapshots = 0;
  /// Torn/corrupt tail bytes dropped by truncation (0 = clean shutdown).
  std::uint64_t truncated_bytes = 0;
  /// Later changelog/snapshot files removed after a mid-chain cut.
  long long removed_orphans = 0;
  bool torn_tail = false;
  double seconds = 0.0;  ///< wall-clock recovery time
  /// The changelog file the daemon must append to next (it exists and ends
  /// at a record boundary after recovery).
  std::string active_changelog;

  std::string to_string() const;
};

/// Restores `engine` and `scheduler` from the durable state in `dir`.
/// Both must be freshly constructed/reset over the same (spec, config,
/// scheduler type) the state was written with. The directory is created if
/// missing. Never throws on corrupt/torn/missing files — those are
/// recovered around; throws std::runtime_error on I/O errors and on
/// structural mismatch with the provided engine/scheduler.
RecoveryReport recover(const std::string& dir, sim::RoundEngine& engine,
                       sim::IScheduler& scheduler);

}  // namespace hadar::service
