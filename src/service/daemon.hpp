// The long-running scheduler service: an event-driven daemon that ingests
// job submissions through a bounded admission queue and drives a RoundEngine
// one round at a time with any IScheduler policy. Every executed round is
// made durable before the daemon moves on — the admitted events, RNG stream
// positions, and the allocation decision are appended to a write-ahead
// changelog — and every `snapshot_interval` rounds the full engine +
// scheduler state is snapshotted and the changelog rotated. Constructing a
// daemon over a directory with prior state runs crash recovery first
// (snapshot restore + changelog replay, see recovery.hpp), so a process kill
// at any point resumes bit-identically.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/admission_queue.hpp"
#include "service/changelog.hpp"
#include "service/recovery.hpp"
#include "sim/round_engine.hpp"
#include "sim/scheduler.hpp"

namespace hadar::service {

struct ServiceConfig {
  /// Durable-state directory (changelogs + snapshots). Created if missing.
  std::string dir = "hadar-service";
  /// Rounds between snapshots / changelog rotations; <= 0 disables both
  /// (one ever-growing changelog, replayed from genesis on recovery).
  long long snapshot_interval = 50;
  /// Admission-queue capacity; submissions beyond it are rejected.
  std::size_t queue_depth = 1024;
  FsyncMode fsync = FsyncMode::kNone;
  /// Engine configuration (round length, seed, failures, noise, ...).
  sim::SimConfig sim;

  /// Overlays HADAR_SERVICE_DIR / HADAR_SERVICE_SNAPSHOT_INTERVAL /
  /// HADAR_SERVICE_QUEUE_DEPTH / HADAR_SERVICE_FSYNC onto `base`.
  static ServiceConfig from_env(ServiceConfig base);
  static ServiceConfig from_env();
};

class SchedulerDaemon {
 public:
  /// Runs recovery against cfg.dir before returning: a daemon constructed
  /// over a crashed predecessor's directory (same spec/config/policy) starts
  /// exactly where the predecessor durably left off. `spec` must outlive
  /// the daemon; `scheduler` is reset() before recovery.
  SchedulerDaemon(const cluster::ClusterSpec* spec, sim::SchedulerPtr scheduler,
                  ServiceConfig cfg);

  const ServiceConfig& config() const { return cfg_; }
  const RecoveryReport& recovery() const { return recovery_; }
  const sim::RoundEngine& engine() const { return engine_; }
  sim::IScheduler& scheduler() { return *scheduler_; }
  AdmissionQueue& queue() { return queue_; }

  /// Thread-safe submission entry point; false = rejected (queue full).
  bool submit(const workload::JobSpec& job) { return queue_.try_push(job); }

  /// Submissions drained from the queue but not yet due (future arrivals).
  std::size_t pending_arrivals() const { return pending_.size(); }
  /// True when nothing is runnable, queued, or pending.
  bool idle() const;

  /// Executes one round: drains the queue, admits due arrivals, skips idle
  /// gaps to the next pending arrival, steps the scheduler, and commits the
  /// round to the changelog (snapshotting/rotating on the configured
  /// cadence). Returns std::nullopt without advancing anything when there is
  /// no work at all (idle()).
  std::optional<sim::RoundOutcome> run_round();

  /// run_round() until idle; returns the number of rounds executed.
  long long run_until_idle();

  /// Flushes and fsyncs the active changelog (e.g. before a planned stop).
  void sync() { wal_->sync(); }

  /// Aggregate metrics so far (see RoundEngine::finalize).
  sim::SimResult result(std::size_t ftf_population = 0, bool truncated = false) const {
    return engine_.finalize(ftf_population, truncated);
  }

 private:
  void maybe_snapshot();

  const cluster::ClusterSpec* spec_;
  ServiceConfig cfg_;
  sim::SchedulerPtr scheduler_;
  sim::RoundEngine engine_;
  AdmissionQueue queue_;
  RecoveryReport recovery_;
  std::unique_ptr<ChangelogWriter> wal_;
  /// Drained-but-not-due submissions, sorted by arrival (stable: equal
  /// arrivals keep submission order, matching the batch driver's trace
  /// order). NOT yet durable — durability starts at round commit.
  std::vector<workload::JobSpec> pending_;
  long long last_rotation_round_ = 0;
};

}  // namespace hadar::service
