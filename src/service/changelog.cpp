#include "service/changelog.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <unistd.h>

#include "common/binary.hpp"
#include "common/env.hpp"

namespace hadar::service {

namespace {

void fsync_file(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    throw std::runtime_error("changelog: fsync failed for " + path + ": " +
                             std::strerror(errno));
  }
}

std::uint32_t le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

const char* to_string(FsyncMode m) {
  switch (m) {
    case FsyncMode::kNone: return "none";
    case FsyncMode::kRound: return "round";
    case FsyncMode::kRotate: return "rotate";
  }
  return "?";
}

FsyncMode parse_fsync_mode(const std::string& s) {
  if (s == "none") return FsyncMode::kNone;
  if (s == "round") return FsyncMode::kRound;
  if (s == "rotate") return FsyncMode::kRotate;
  throw std::invalid_argument("unknown fsync mode '" + s + "' (none|round|rotate)");
}

FsyncMode fsync_mode_from_env(const char* name, FsyncMode fallback) {
  const std::string raw = common::env_str(name, to_string(fallback));
  try {
    return parse_fsync_mode(raw);
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "[hadar] warning: %s='%s' is not none|round|rotate; using %s\n",
                 name, raw.c_str(), to_string(fallback));
    return fallback;
  }
}

std::string RoundRecord::encode() const {
  common::BinaryWriter w;
  w.i64(round);
  w.f64(start);
  w.u64(rng_before);
  w.u64(rng_after);
  w.u32(static_cast<std::uint32_t>(admitted.size()));
  for (const auto& j : admitted) j.save(w);
  w.u32(static_cast<std::uint32_t>(allocations.size()));
  for (const auto& [id, alloc] : allocations) {
    w.i32(id);
    alloc.save(w);
  }
  return w.take();
}

RoundRecord RoundRecord::decode(std::string_view payload) {
  common::BinaryReader r(payload);
  RoundRecord rec;
  rec.round = r.i64();
  rec.start = r.f64();
  rec.rng_before = r.u64();
  rec.rng_after = r.u64();
  const std::uint32_t na = r.u32();
  rec.admitted.reserve(na);
  for (std::uint32_t i = 0; i < na; ++i) rec.admitted.push_back(workload::JobSpec::restore(r));
  const std::uint32_t nd = r.u32();
  for (std::uint32_t i = 0; i < nd; ++i) {
    const JobId id = r.i32();
    rec.allocations.emplace(id, cluster::JobAllocation::restore(r));
  }
  if (!r.done()) throw std::runtime_error("RoundRecord: trailing bytes");
  return rec;
}

ChangelogWriter::ChangelogWriter(std::string path, FsyncMode mode, bool append)
    : path_(std::move(path)), mode_(mode) {
  if (append) {
    // Continue a file recovery just validated/truncated. "r+b" fails when
    // the file is missing; fall through to creation in that case.
    f_ = std::fopen(path_.c_str(), "r+b");
  }
  if (f_ != nullptr) {
    char magic[kMagicSize];
    if (std::fread(magic, 1, kMagicSize, f_) != kMagicSize ||
        std::memcmp(magic, kChangelogMagic, kMagicSize) != 0) {
      std::fclose(f_);
      f_ = nullptr;
      throw std::runtime_error("changelog: bad magic in existing file " + path_);
    }
    if (std::fseek(f_, 0, SEEK_END) != 0) {
      std::fclose(f_);
      f_ = nullptr;
      throw std::runtime_error("changelog: seek failed for " + path_);
    }
    bytes_ = static_cast<std::uint64_t>(std::ftell(f_));
    return;
  }
  f_ = std::fopen(path_.c_str(), "wb");
  if (f_ == nullptr) {
    throw std::runtime_error("changelog: cannot create " + path_ + ": " +
                             std::strerror(errno));
  }
  if (std::fwrite(kChangelogMagic, 1, kMagicSize, f_) != kMagicSize) {
    throw std::runtime_error("changelog: cannot write magic to " + path_);
  }
  bytes_ = kMagicSize;
}

ChangelogWriter::~ChangelogWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an fsync failure here was already best
    // effort (an explicit close() would have surfaced it).
  }
}

void ChangelogWriter::append(std::string_view payload) {
  if (f_ == nullptr) throw std::runtime_error("changelog: append after close");
  if (payload.size() > kMaxRecordPayload) {
    throw std::runtime_error("changelog: record exceeds max payload size");
  }
  unsigned char header[8];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = common::crc32(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<unsigned char>(len >> (8 * i));
  for (int i = 0; i < 4; ++i) header[4 + i] = static_cast<unsigned char>(crc >> (8 * i));
  if (std::fwrite(header, 1, sizeof(header), f_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), f_) != payload.size()) {
    throw std::runtime_error("changelog: write failed for " + path_);
  }
  bytes_ += sizeof(header) + payload.size();
  ++records_;
  if (mode_ == FsyncMode::kRound) {
    fsync_file(f_, path_);
  } else if (std::fflush(f_) != 0) {
    throw std::runtime_error("changelog: flush failed for " + path_);
  }
}

void ChangelogWriter::sync() {
  if (f_ != nullptr) fsync_file(f_, path_);
}

void ChangelogWriter::close() {
  if (f_ == nullptr) return;
  if (mode_ != FsyncMode::kNone) fsync_file(f_, path_);
  std::fclose(f_);
  f_ = nullptr;
}

ChangelogScan scan_changelog(const std::string& path) {
  ChangelogScan out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    out.missing = true;
    return out;
  }

  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    out.bad_magic = true;
    return out;
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(std::ftell(f));
  std::rewind(f);

  char magic[kMagicSize];
  if (std::fread(magic, 1, kMagicSize, f) != kMagicSize ||
      std::memcmp(magic, kChangelogMagic, kMagicSize) != 0) {
    std::fclose(f);
    out.bad_magic = true;
    out.torn_bytes = file_size;
    return out;
  }

  std::uint64_t offset = kMagicSize;
  std::string payload;
  while (true) {
    unsigned char header[8];
    const std::size_t got = std::fread(header, 1, sizeof(header), f);
    if (got != sizeof(header)) break;  // clean EOF or torn header
    const std::uint32_t len = le32(header);
    const std::uint32_t crc = le32(header + 4);
    if (len > kMaxRecordPayload) break;  // corrupt length prefix
    payload.resize(len);
    if (len > 0 && std::fread(payload.data(), 1, len, f) != len) break;  // torn payload
    if (common::crc32(payload.data(), payload.size()) != crc) break;     // bit rot
    out.records.push_back(payload);
    offset += sizeof(header) + len;
    out.record_ends.push_back(offset);
  }
  std::fclose(f);
  out.valid_bytes = offset;
  out.torn_bytes = file_size > offset ? file_size - offset : 0;
  return out;
}

void truncate_changelog(const std::string& path, std::uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    throw std::runtime_error("changelog: truncate failed for " + path + ": " +
                             std::strerror(errno));
  }
}

}  // namespace hadar::service
