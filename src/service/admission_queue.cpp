#include "service/admission_queue.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace hadar::service {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("AdmissionQueue: capacity == 0");
}

bool AdmissionQueue::try_push(workload::JobSpec job) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.size() >= capacity_) {
      ++rejected_;
      obs::count("service.rejected");
      return false;
    }
    q_.push_back(std::move(job));
    ++accepted_;
    depth = q_.size();
  }
  obs::count("service.ingested");
  obs::gauge_set("service.queue_depth", static_cast<double>(depth));
  return true;
}

std::vector<workload::JobSpec> AdmissionQueue::drain() {
  std::vector<workload::JobSpec> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(std::make_move_iterator(q_.begin()), std::make_move_iterator(q_.end()));
    q_.clear();
  }
  obs::gauge_set("service.queue_depth", 0.0);
  return out;
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

std::uint64_t AdmissionQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepted_;
}

std::uint64_t AdmissionQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

}  // namespace hadar::service
