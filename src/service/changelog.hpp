// Write-ahead changelog for the scheduler daemon: an append-only file of
// length-prefixed, CRC32-checksummed records, one per executed round. Each
// record captures everything needed to re-execute its round on a restored
// engine — the events admitted at the boundary, the round's start time and
// RNG stream position, and the allocation decision — so replaying the tail
// after a snapshot reproduces the exact pre-crash state bit for bit.
//
// On-disk layout:
//   [8-byte magic "HDRCLG01"]
//   repeat: [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// A crash can tear the tail mid-record; scan_changelog() finds the longest
// valid record prefix and reports the torn bytes, and truncate_changelog()
// drops them (recover-to-last-valid). Corruption is detected by the CRC,
// an impossible length, or a short read — scanning never throws.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/allocation.hpp"
#include "common/types.hpp"
#include "workload/job.hpp"

namespace hadar::service {

inline constexpr char kChangelogMagic[8] = {'H', 'D', 'R', 'C', 'L', 'G', '0', '1'};
inline constexpr std::size_t kMagicSize = 8;
/// Backstop against absurd length prefixes from corrupt headers (a record
/// holds one round: admitted specs + one allocation map).
inline constexpr std::uint32_t kMaxRecordPayload = 64u << 20;

/// When appended bytes are pushed to stable storage.
enum class FsyncMode {
  kNone,    ///< never fsync (fastest; durability = OS page-cache policy)
  kRound,   ///< fsync after every record (every round is durable)
  kRotate,  ///< fsync only at snapshot/rotation boundaries
};

const char* to_string(FsyncMode m);
/// Parses "none" / "round" / "rotate"; throws std::invalid_argument else.
FsyncMode parse_fsync_mode(const std::string& s);
/// Reads `name` from the environment; an unknown value warns on stderr and
/// falls back (the env_int convention — bad knobs never crash).
FsyncMode fsync_mode_from_env(const char* name, FsyncMode fallback);

/// One executed round, as logged. Replay = admit the events, skip to the
/// start time, step the scheduler, and check the decision matches.
struct RoundRecord {
  long long round = 0;        ///< round index executed
  Seconds start = 0.0;        ///< engine time when the round ran
  std::uint64_t rng_before = 0;  ///< engine RNG position entering the round
  std::uint64_t rng_after = 0;   ///< ... and leaving it (replay invariant)
  std::vector<workload::JobSpec> admitted;  ///< events admitted at this boundary
  cluster::AllocationMap allocations;       ///< the decision applied

  std::string encode() const;
  /// Throws std::runtime_error on a malformed payload (CRC passed but the
  /// structure does not parse — treated as corruption by the recovery path).
  static RoundRecord decode(std::string_view payload);
};

/// Appender over one changelog file. Not thread-safe (the daemon's round
/// loop is the only writer).
class ChangelogWriter {
 public:
  /// Creates `path` (truncating any previous content) and writes the magic,
  /// or — when `append` and the file already starts with a valid magic —
  /// continues after the existing content. Throws std::runtime_error on I/O
  /// failure or magic mismatch.
  explicit ChangelogWriter(std::string path, FsyncMode mode = FsyncMode::kNone,
                           bool append = false);
  ~ChangelogWriter();
  ChangelogWriter(const ChangelogWriter&) = delete;
  ChangelogWriter& operator=(const ChangelogWriter&) = delete;

  /// Appends one length+CRC framed record; fsyncs when mode == kRound.
  void append(std::string_view payload);

  /// Flushes stdio buffers and fsyncs the file.
  void sync();

  /// Flushes (and fsyncs under kRound/kRotate) and closes. Idempotent.
  void close();

  const std::string& path() const { return path_; }
  /// Total file size in bytes including the magic.
  std::uint64_t bytes() const { return bytes_; }
  long long records_appended() const { return records_; }

 private:
  std::string path_;
  FsyncMode mode_;
  std::FILE* f_ = nullptr;
  std::uint64_t bytes_ = 0;
  long long records_ = 0;
};

/// Result of scanning a changelog: the longest valid prefix of records plus
/// what (if anything) trails it.
struct ChangelogScan {
  /// Payloads of every valid record, in file order.
  std::vector<std::string> records;
  /// File offset one past records[i] — the truncation point that keeps
  /// records [0, i] and drops everything after.
  std::vector<std::uint64_t> record_ends;
  /// File offset one past the last valid record (== the size a truncated
  /// file should have). Includes the magic when it was valid.
  std::uint64_t valid_bytes = 0;
  /// Bytes present beyond the valid prefix (torn or corrupt tail).
  std::uint64_t torn_bytes = 0;
  bool missing = false;    ///< file does not exist
  bool bad_magic = false;  ///< header missing/garbled: no record is trusted
  bool clean() const { return !missing && !bad_magic && torn_bytes == 0; }
};

/// Reads every record, stopping at the first framing/CRC violation. Never
/// throws on corrupt input.
ChangelogScan scan_changelog(const std::string& path);

/// Shrinks the file to `valid_bytes` (the recover-to-last-valid step).
/// Throws std::runtime_error on I/O failure.
void truncate_changelog(const std::string& path, std::uint64_t valid_bytes);

}  // namespace hadar::service
