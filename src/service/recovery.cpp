#include "service/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "common/binary.hpp"
#include "obs/trace.hpp"
#include "service/changelog.hpp"
#include "service/snapshot.hpp"

namespace hadar::service {

namespace fs = std::filesystem;

namespace {

/// Strictly-numeric middle of "<prefix><n><suffix>", or -1.
long long parse_indexed(const std::string& name, const std::string& prefix,
                        const std::string& suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return -1;
  const std::string mid = name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (mid.empty()) return -1;
  long long v = 0;
  for (char c : mid) {
    if (c < '0' || c > '9') return -1;
    v = v * 10 + (c - '0');
  }
  return v;
}

std::vector<long long> list_indexed(const std::string& dir, const std::string& prefix,
                                    const std::string& suffix) {
  std::vector<long long> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const long long v = parse_indexed(entry.path().filename().string(), prefix, suffix);
    if (v >= 0) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void structural_mismatch(const std::string& what) {
  throw std::runtime_error(
      "recovery: durable state does not match this configuration (" + what +
      "); refusing to continue from it");
}

}  // namespace

std::string changelog_path(const std::string& dir, long long start_round) {
  return dir + "/changelog_" + std::to_string(start_round) + ".wal";
}

std::string snapshot_path(const std::string& dir, long long round) {
  return dir + "/snapshot_" + std::to_string(round) + ".snap";
}

std::string RecoveryReport::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "recovered=%d snapshot_round=%lld replayed_rounds=%lld "
                "replayed_events=%lld truncated_bytes=%llu torn_tail=%d "
                "discarded_snapshots=%lld removed_orphans=%lld seconds=%.6f",
                recovered ? 1 : 0, snapshot_round, replayed_rounds, replayed_events,
                static_cast<unsigned long long>(truncated_bytes), torn_tail ? 1 : 0,
                discarded_snapshots, removed_orphans, seconds);
  return buf;
}

RecoveryReport recover(const std::string& dir, sim::RoundEngine& engine,
                       sim::IScheduler& scheduler) {
  obs::ScopedSpan span("service", "service.recover");
  const double t0 = wall_seconds();
  RecoveryReport rep;

  fs::create_directories(dir);
  const std::vector<long long> snaps = list_indexed(dir, "snapshot_", ".snap");
  const std::vector<long long> wals = list_indexed(dir, "changelog_", ".wal");
  rep.recovered = !snaps.empty() || !wals.empty();

  // 1. Newest restorable snapshot (corrupt ones are dead weight: remove).
  long long base = -1;
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    const std::string path = snapshot_path(dir, *it);
    if (read_snapshot(path, engine, scheduler)) {
      base = *it;
      rep.snapshot_round = base;
      break;
    }
    ++rep.discarded_snapshots;
    obs::count("recovery.discarded_snapshots");
    fs::remove(path);
  }

  // 2. Replay the changelog chain from the restored round on. Each file
  // covers the rounds from its start index to the next rotation; replay
  // re-admits the logged events and re-executes every round, cross-checking
  // the logged RNG positions and decisions.
  const long long chain_start = base >= 0 ? base : 0;
  bool cut = false;  // a torn/corrupt point was found; later files are orphans
  std::string active;
  for (long long w : wals) {
    if (w < chain_start) continue;  // pre-snapshot history, already folded in
    const std::string path = changelog_path(dir, w);
    if (cut) {
      fs::remove(path);
      ++rep.removed_orphans;
      continue;
    }

    const ChangelogScan scan = scan_changelog(path);
    if (scan.missing) continue;
    if (scan.bad_magic) {
      // Nothing in the file is trusted. Drop it; a fresh file will be
      // started at the current round.
      rep.torn_tail = true;
      rep.truncated_bytes += scan.torn_bytes;
      fs::remove(path);
      ++rep.removed_orphans;
      cut = true;
      continue;
    }

    std::uint64_t keep_bytes = scan.valid_bytes;
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      RoundRecord rec;
      try {
        rec = RoundRecord::decode(scan.records[i]);
      } catch (const std::exception&) {
        // CRC-valid but unparseable: corruption the checksum missed. Cut
        // here, keeping the records before it.
        keep_bytes = i == 0 ? kMagicSize : scan.record_ends[i - 1];
        cut = true;
        break;
      }
      if (rec.round != engine.rounds_completed()) {
        if (i == 0) {
          // A whole file from a lost future (its rounds were rolled back
          // with a discarded snapshot): orphan.
          fs::remove(path);
          ++rep.removed_orphans;
          cut = true;
          break;
        }
        structural_mismatch("non-contiguous round in " + path);
      }
      if (rec.rng_before != engine.rng_state()) {
        structural_mismatch("RNG stream diverged entering round " +
                            std::to_string(rec.round));
      }
      for (const auto& j : rec.admitted) {
        engine.admit(j);
        ++rep.replayed_events;
      }
      engine.skip_to(rec.start);
      if (engine.now() != rec.start) {
        structural_mismatch("round start time diverged at round " + std::to_string(rec.round));
      }
      const sim::RoundOutcome out = engine.step(scheduler);
      if (engine.rng_state() != rec.rng_after || !(out.allocations == rec.allocations)) {
        structural_mismatch("replayed decision diverged at round " + std::to_string(rec.round));
      }
      ++rep.replayed_rounds;
      obs::count("recovery.replayed_rounds");
    }

    if (fs::exists(path)) {
      if (cut || scan.torn_bytes > 0) {
        const std::uint64_t file_size = scan.valid_bytes + scan.torn_bytes;
        if (cut && keep_bytes < scan.valid_bytes) {
          // decode-level cut inside the framing-valid prefix
          rep.truncated_bytes += file_size - keep_bytes;
          truncate_changelog(path, keep_bytes);
        } else {
          rep.truncated_bytes += scan.torn_bytes;
          if (scan.torn_bytes > 0) truncate_changelog(path, scan.valid_bytes);
        }
        rep.torn_tail = true;
        cut = true;  // a torn framing tail also orphans any later file
      }
      active = path;
    }
  }

  // 3. Snapshots newer than the recovered round reference a lost future.
  for (long long s : snaps) {
    if (s > engine.rounds_completed() && fs::exists(snapshot_path(dir, s))) {
      fs::remove(snapshot_path(dir, s));
      ++rep.removed_orphans;
    }
  }

  if (active.empty()) {
    // No usable changelog survived: the daemon starts a fresh file at the
    // last rotation boundary (the restored snapshot round, or genesis).
    active = changelog_path(dir, chain_start);
  }
  rep.active_changelog = active;
  rep.seconds = wall_seconds() - t0;
  obs::count("recovery.runs");
  if (span.active()) {
    span.arg("replayed_rounds", static_cast<double>(rep.replayed_rounds));
    span.arg("truncated_bytes", static_cast<double>(rep.truncated_bytes));
  }
  return rep;
}

}  // namespace hadar::service
