// Bounded admission queue between event producers (trace feeders, RPC
// front-ends, benchmark drivers) and the daemon's round loop. When the
// queue is full new submissions are rejected — backpressure the producer
// can observe — and both outcomes feed the session MetricsRegistry
// (service.ingested / service.rejected / service.queue_depth).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "workload/job.hpp"

namespace hadar::service {

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }

  /// Enqueues one submission; false (and a bumped rejected counter) when the
  /// queue is at capacity. Thread-safe.
  bool try_push(workload::JobSpec job);

  /// Removes and returns every queued submission, in arrival order at the
  /// queue (FIFO). Thread-safe.
  std::vector<workload::JobSpec> drain();

  std::size_t size() const;
  std::uint64_t accepted() const;
  std::uint64_t rejected() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<workload::JobSpec> q_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace hadar::service
