// Full-state snapshots of the scheduler daemon: the engine's bit-exact save
// blob plus the scheduler's cross-round decision state, framed like a single
// changelog record (magic + length + CRC32). A snapshot at round N pairs
// with changelog_N.wal — recovery restores the newest valid snapshot and
// replays that changelog's records. Corrupt snapshots are detected by the
// CRC and skipped (recovery falls back to an older snapshot, or genesis).
#pragma once

#include <cstdint>
#include <string>

#include "sim/round_engine.hpp"
#include "sim/scheduler.hpp"

namespace hadar::service {

inline constexpr char kSnapshotMagic[8] = {'H', 'D', 'R', 'S', 'N', 'P', '0', '1'};

/// Writes engine + scheduler state to `path` (overwriting), optionally
/// fsyncing before close. Throws std::runtime_error on I/O failure.
void write_snapshot(const std::string& path, const sim::RoundEngine& engine,
                    const sim::IScheduler& scheduler, bool fsync);

/// Restores engine + scheduler from `path`. Returns false — leaving both
/// untouched — when the file is missing, torn, or fails its CRC; throws only
/// on structural mismatch (a valid snapshot of a different configuration).
bool read_snapshot(const std::string& path, sim::RoundEngine& engine,
                   sim::IScheduler& scheduler);

}  // namespace hadar::service
