#include "service/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <unistd.h>

#include "common/binary.hpp"

namespace hadar::service {

namespace {
constexpr std::size_t kMagicSize = 8;
}

void write_snapshot(const std::string& path, const sim::RoundEngine& engine,
                    const sim::IScheduler& scheduler, bool fsync) {
  common::BinaryWriter w;
  engine.save(w);
  scheduler.save_state(w);
  const std::string& payload = w.data();

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("snapshot: cannot create " + path + ": " + std::strerror(errno));
  }
  unsigned char header[8];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = common::crc32(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<unsigned char>(len >> (8 * i));
  for (int i = 0; i < 4; ++i) header[4 + i] = static_cast<unsigned char>(crc >> (8 * i));
  bool ok = std::fwrite(kSnapshotMagic, 1, kMagicSize, f) == kMagicSize &&
            std::fwrite(header, 1, sizeof(header), f) == sizeof(header) &&
            std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  if (ok && std::fflush(f) != 0) ok = false;
  if (ok && fsync && ::fsync(::fileno(f)) != 0) ok = false;
  std::fclose(f);
  if (!ok) throw std::runtime_error("snapshot: write failed for " + path);
}

bool read_snapshot(const std::string& path, sim::RoundEngine& engine,
                   sim::IScheduler& scheduler) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;

  char magic[kMagicSize];
  unsigned char header[8];
  if (std::fread(magic, 1, kMagicSize, f) != kMagicSize ||
      std::memcmp(magic, kSnapshotMagic, kMagicSize) != 0 ||
      std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    std::fclose(f);
    return false;
  }
  std::uint32_t len = 0, crc = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  for (int i = 0; i < 4; ++i) crc |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);

  std::string payload(len, '\0');
  const bool read_ok = len == 0 || std::fread(payload.data(), 1, len, f) == len;
  // Trailing bytes after the framed payload mean the file is not one of
  // ours; a torn tail (short read) is the common crash case. Reject both.
  const bool at_eof = std::fgetc(f) == EOF;
  std::fclose(f);
  if (!read_ok || !at_eof) return false;
  if (common::crc32(payload.data(), payload.size()) != crc) return false;

  common::BinaryReader r(payload);
  engine.restore(r);
  scheduler.restore_state(r);
  if (!r.done()) {
    throw std::runtime_error("snapshot: trailing state bytes in " + path +
                             " (configuration mismatch?)");
  }
  return true;
}

}  // namespace hadar::service
