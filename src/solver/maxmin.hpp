// Max-min fair time-fraction allocation, the optimization at the heart of
// the Gavel baseline: compute Y[j][r] (fraction of wall-clock time job j
// should spend on GPU type r) maximizing the minimum normalized throughput
//
//   max  min_j ( sum_r Y[j][r] * rate[j][r] / scale[j] )
//   s.t. sum_r Y[j][r]            <= 1        for every job
//        sum_j Y[j][r] * demand[j] <= cap[r]  for every type
//        Y >= 0
//
// Two engines: an exact LP (two-phase simplex; used for small job counts)
// and an event-driven progressive-filling heuristic (linear-time per event;
// used beyond `lp_job_threshold`, mirroring how Gavel falls back to faster
// approximations at scale).
#pragma once

#include <cstdint>
#include <vector>

#include "solver/revised_simplex.hpp"

namespace hadar::solver {

struct MaxMinProblem {
  /// rate[j][r]: job j's aggregate useful throughput when running fully on
  /// type r (0 when the job cannot run there).
  std::vector<std::vector<double>> rate;
  /// demand[j]: devices consumed while job j runs (its gang size W_j).
  std::vector<double> demand;
  /// cap[r]: devices of type r in the cluster.
  std::vector<double> cap;
  /// scale[j]: normalization (e.g. the job's ideal isolated throughput).
  /// Empty => all ones.
  std::vector<double> scale;
  /// key[j]: stable non-negative identity per job (e.g. the JobId), used to
  /// warm-start the LP across re-solves as jobs arrive/complete. Empty =>
  /// positional keys 0..J-1 (warm start then only matches when the job set
  /// is unchanged or shrinks from the back).
  std::vector<std::int64_t> key;
};

/// Which LP engine backs the exact solves.
enum class LpEngine {
  kDense,    ///< two-phase tableau (lp.cpp) — the verification fallback
  kRevised,  ///< sparse revised simplex with optional warm start (default)
};

/// Warm-start state carried across successive solves of the same problem
/// family (one LpContext per LP shape). Owned by the caller (e.g. the Gavel
/// scheduler); pass nullptr for context-free solves.
struct MaxMinContext {
  LpContext max_min;
  LpContext max_sum;
  /// Capacity vector of the last solve. The solvers drop the warm bases
  /// automatically when `cap` changes (cluster shrink/grow): a basis that
  /// was optimal for different capacities may be infeasible for the new LP.
  std::vector<double> cap_signature;

  void clear() {
    max_min.clear();
    max_sum.clear();
    cap_signature.clear();
  }
};

struct MaxMinSolution {
  bool feasible = false;
  double min_normalized_throughput = 0.0;
  /// Y[j][r] time fractions.
  std::vector<std::vector<double>> y;
};

struct MaxMinOptions {
  int lp_job_threshold = 96;  ///< above this many jobs, use the heuristic
  int max_lp_iterations = 200000;
  LpEngine engine = LpEngine::kRevised;
};

/// Solves with the exact LP regardless of size. A non-optimal outcome from
/// the revised engine (iteration limit, numerically lost basis) retries once
/// on the dense tableau before reporting infeasible.
MaxMinSolution solve_max_min_lp(const MaxMinProblem& p, int max_iterations = 200000,
                                LpEngine engine = LpEngine::kRevised,
                                MaxMinContext* ctx = nullptr);

/// Progressive-filling heuristic: every job draws time on its fastest
/// remaining type at the common normalized rate until its time budget or a
/// capacity saturates.
MaxMinSolution solve_max_min_filling(const MaxMinProblem& p);

/// Dispatches on problem size per `opts`.
MaxMinSolution solve_max_min(const MaxMinProblem& p, const MaxMinOptions& opts = {},
                             MaxMinContext* ctx = nullptr);

/// Total-throughput maximization over the same constraint polytope:
///   max sum_j sum_r Y[j][r] * rate[j][r] / scale[j]
/// (Gavel's "maximize sum of normalized throughputs" policy family).
/// Uses the exact LP up to the job threshold, then a greedy density fill.
MaxMinSolution solve_max_sum(const MaxMinProblem& p, const MaxMinOptions& opts = {},
                             MaxMinContext* ctx = nullptr);

}  // namespace hadar::solver
