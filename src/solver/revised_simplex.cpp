#include "solver/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/trace.hpp"

namespace hadar::solver {
namespace {

// Feasibility / canonicalization tolerances (looser than the pivot eps:
// they judge *values*, not pivot magnitudes — mirrors the dense solver's
// 1e-7 artificial-sum test).
constexpr double kFeasTol = 1e-7;
constexpr double kCanonTol = 1e-7;
// Product-form updates accumulate roundoff; refresh the explicit inverse
// from scratch every so many pivots.
constexpr int kRefactorEvery = 128;

struct ColEntry {
  int row;
  double val;
};

// Deterministic "generic" weight in [1, 2) for the phase-3 secondary
// objective (SplitMix64 finalizer). A hash — rather than, say, multiples of
// an irrational — matters: sequence-structured weights make w_{j+k} - w_j
// constant in j, and face directions that pair variables with their slacks a
// fixed index stride apart (components summing to zero) would then be
// exactly secondary-neutral, leaving the canonical point ambiguous.
double secondary_weight(int j) {
  std::uint64_t z = static_cast<std::uint64_t>(j) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return 1.0 + static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

// Revised simplex over the standard form  max c^T x, A x = b (b >= 0),
// x >= 0, built once per solve. Column layout matches the dense tableau:
// [structural | slack/surplus | artificial], except that here EVERY row owns
// an artificial column (art_first_ + row) so a warm crash always has a unit
// column available for rows it cannot cover. Artificials for rows that never
// needed one ("extra" artificials on <= rows) are barred from entering in
// all phases.
class RevisedEngine {
 public:
  RevisedEngine(const LpProblem& lp, const SimplexOptions& opts)
      : lp_(lp), opts_(opts), m_(lp.num_constraints()), n_struct_(lp.num_vars()) {
    build_standard_form();
  }

  int n_struct() const { return n_struct_; }
  int art_first() const { return art_first_; }
  // Column index of row i's slack/surplus variable, -1 for equality rows.
  int slack_col_of_row(int i) const { return slack_col_of_row_[static_cast<std::size_t>(i)]; }
  int row_of_slack_col(int j) const {
    return row_of_slack_[static_cast<std::size_t>(j - n_struct_)];
  }
  const std::vector<int>& basis() const { return basis_; }
  // The deterministic support-completed basis from the last successful
  // extract() (empty when extraction fell back to the pivot basis).
  const std::vector<int>& canonical_extract_basis() const { return canon_basis_; }

  // `warm_candidates`: ascending column indices to crash a starting basis
  // from, or nullptr for a cold start. `warm_used` reports whether the warm
  // basis was accepted (phase 1 skipped).
  LpSolution run(const std::vector<int>* warm_candidates, RevisedStats* stats,
                 bool* warm_used) {
    *warm_used = false;
    LpSolution sol;
    iters_left_ = opts_.max_iterations;

    if (warm_candidates != nullptr) {
      ++stats->warm_attempts;
      if (try_warm_crash(*warm_candidates)) {
        *warm_used = true;
        ++stats->warm_hits;
        obs::count("solver.warm_hits");
      }
    }
    if (!*warm_used) {
      ++stats->cold_solves;
      obs::count("solver.cold_solves");
      init_cold_basis();
      if (n_real_art_ > 0) {
        HADAR_TRACE_SCOPE("lp", "lp.phase1", 2);
        const LpStatus st = phase1(stats);
        if (st != LpStatus::kOptimal) {
          sol.status = st;
          return sol;
        }
      }
    }
    // Both paths arrive here with a primal-feasible basis whose basic
    // artificials are all ~0; eject as many of those as possible so phase-2
    // pivots cannot re-inflate them (rows where no structural/slack pivot
    // exists are redundant — their artificial is frozen at 0 forever).
    drive_out_artificials();

    LpStatus st;
    {
      HADAR_TRACE_SCOPE("lp", "lp.phase2", 2);
      st = phase2(stats);
    }
    if (st != LpStatus::kOptimal) {
      sol.status = st;
      return sol;
    }
    {
      HADAR_TRACE_SCOPE("lp", "lp.canonicalize", 2);
      canonicalize(stats);
    }
    extract(sol);
    return sol;
  }

 private:
  // ---- standard form ------------------------------------------------------

  void build_standard_form() {
    slack_col_of_row_.assign(static_cast<std::size_t>(m_), -1);
    is_real_art_.assign(static_cast<std::size_t>(m_), false);
    b_.assign(static_cast<std::size_t>(m_), 0.0);

    // Pass 1: relations after sign-flip, slack numbering.
    std::vector<Relation> rel(static_cast<std::size_t>(m_));
    std::vector<double> sign(static_cast<std::size_t>(m_), 1.0);
    int n_slack = 0;
    for (int i = 0; i < m_; ++i) {
      const auto& row = lp_.rows()[static_cast<std::size_t>(i)];
      Relation r = row.rel;
      if (row.b < 0.0) {
        sign[static_cast<std::size_t>(i)] = -1.0;
        r = r == Relation::kLessEqual
                ? Relation::kGreaterEqual
                : (r == Relation::kGreaterEqual ? Relation::kLessEqual : Relation::kEqual);
      }
      rel[static_cast<std::size_t>(i)] = r;
      b_[static_cast<std::size_t>(i)] = sign[static_cast<std::size_t>(i)] * row.b;
      if (r != Relation::kEqual) {
        slack_col_of_row_[static_cast<std::size_t>(i)] = n_struct_ + n_slack;
        ++n_slack;
      }
      if (r != Relation::kLessEqual) {
        is_real_art_[static_cast<std::size_t>(i)] = true;
        ++n_real_art_;
      }
    }
    art_first_ = n_struct_ + n_slack;
    n_ = art_first_ + m_;

    row_of_slack_.assign(static_cast<std::size_t>(n_slack), -1);
    for (int i = 0; i < m_; ++i) {
      const int sc = slack_col_of_row_[static_cast<std::size_t>(i)];
      if (sc >= 0) row_of_slack_[static_cast<std::size_t>(sc - n_struct_)] = i;
    }

    // Pass 2: sparse columns (CSC) for structural + slack columns.
    // Artificial columns are implicit unit vectors.
    std::vector<int> count(static_cast<std::size_t>(art_first_) + 1, 0);
    for (int i = 0; i < m_; ++i) {
      for (const SparseEntry& e : lp_.rows()[static_cast<std::size_t>(i)].a) {
        ++count[static_cast<std::size_t>(e.index)];
      }
      if (slack_col_of_row_[static_cast<std::size_t>(i)] >= 0) {
        ++count[static_cast<std::size_t>(slack_col_of_row_[static_cast<std::size_t>(i)])];
      }
    }
    col_ptr_.assign(static_cast<std::size_t>(art_first_) + 1, 0);
    for (int j = 0; j < art_first_; ++j) {
      col_ptr_[static_cast<std::size_t>(j) + 1] =
          col_ptr_[static_cast<std::size_t>(j)] + count[static_cast<std::size_t>(j)];
    }
    entries_.resize(static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(art_first_)]));
    std::vector<int> next(col_ptr_.begin(), col_ptr_.end() - 1);
    for (int i = 0; i < m_; ++i) {
      const double si = sign[static_cast<std::size_t>(i)];
      for (const SparseEntry& e : lp_.rows()[static_cast<std::size_t>(i)].a) {
        entries_[static_cast<std::size_t>(next[static_cast<std::size_t>(e.index)]++)] = {
            i, si * e.value};
      }
      const int sc = slack_col_of_row_[static_cast<std::size_t>(i)];
      if (sc >= 0) {
        const double sv = rel[static_cast<std::size_t>(i)] == Relation::kLessEqual ? 1.0 : -1.0;
        entries_[static_cast<std::size_t>(next[static_cast<std::size_t>(sc)]++)] = {i, sv};
      }
    }

    // Phase costs.
    phase1_cost_.assign(static_cast<std::size_t>(n_), 0.0);
    for (int i = 0; i < m_; ++i) {
      if (is_real_art_[static_cast<std::size_t>(i)]) {
        phase1_cost_[static_cast<std::size_t>(art_first_ + i)] = -1.0;
      }
    }
    phase2_cost_.assign(static_cast<std::size_t>(n_), 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      phase2_cost_[static_cast<std::size_t>(j)] = lp_.objective()[static_cast<std::size_t>(j)];
    }

    binv_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), 0.0);
    xb_.assign(static_cast<std::size_t>(m_), 0.0);
    basis_.assign(static_cast<std::size_t>(m_), -1);
    in_basis_.assign(static_cast<std::size_t>(n_), 0);
    y_.assign(static_cast<std::size_t>(m_), 0.0);
    pi_.assign(static_cast<std::size_t>(m_), 0.0);
    pi2_.assign(static_cast<std::size_t>(m_), 0.0);
    rho_.assign(static_cast<std::size_t>(m_), 0.0);
  }

  // ---- linear algebra on the explicit inverse -----------------------------

  double* binv_col(int k) { return binv_.data() + static_cast<std::size_t>(k) * m_; }

  // y_ = B^-1 * A_j.
  void ftran(int j) {
    std::fill(y_.begin(), y_.end(), 0.0);
    if (j >= art_first_) {
      const double* col = binv_col(j - art_first_);
      std::copy(col, col + m_, y_.begin());
      return;
    }
    for (int p = col_ptr_[static_cast<std::size_t>(j)];
         p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const ColEntry& e = entries_[static_cast<std::size_t>(p)];
      const double* col = binv_col(e.row);
      const double v = e.val;
      for (int i = 0; i < m_; ++i) y_[static_cast<std::size_t>(i)] += v * col[i];
    }
  }

  // out = c_B^T B^-1 for the given phase cost.
  void price_into(const std::vector<double>& cost, std::vector<double>& out) {
    // Collect the (usually few) nonzero basic costs once.
    nz_cb_.clear();
    for (int i = 0; i < m_; ++i) {
      const double c = cost[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
      if (c != 0.0) nz_cb_.push_back({i, c});
    }
    if (nz_cb_.empty()) {
      std::fill(out.begin(), out.end(), 0.0);
      return;
    }
    for (int k = 0; k < m_; ++k) {
      const double* col = binv_col(k);
      double s = 0.0;
      for (const ColEntry& e : nz_cb_) s += e.val * col[e.row];
      out[static_cast<std::size_t>(k)] = s;
    }
  }

  void price(const std::vector<double>& cost) { price_into(cost, pi_); }

  // c_j - pi . A_j against an explicit pricing vector.
  double reduced_cost_with(int j, const std::vector<double>& cost,
                           const std::vector<double>& pi) const {
    double d = cost[static_cast<std::size_t>(j)];
    if (j >= art_first_) return d - pi[static_cast<std::size_t>(j - art_first_)];
    for (int p = col_ptr_[static_cast<std::size_t>(j)];
         p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const ColEntry& e = entries_[static_cast<std::size_t>(p)];
      d -= pi[static_cast<std::size_t>(e.row)] * e.val;
    }
    return d;
  }

  // c_j - pi . A_j (pi_ must be current).
  double reduced_cost(int j, const std::vector<double>& cost) const {
    return reduced_cost_with(j, cost, pi_);
  }

  // Product-form pivot: column q enters in row r; y_ holds B^-1 A_q.
  void update_basis(int r, int q) {
    const double piv = y_[static_cast<std::size_t>(r)];
    const double inv = 1.0 / piv;
    for (int k = 0; k < m_; ++k) {
      double* col = binv_col(k);
      const double t = col[r];
      if (t == 0.0) continue;
      const double tp = t * inv;
      for (int i = 0; i < m_; ++i) col[i] -= y_[static_cast<std::size_t>(i)] * tp;
      col[r] = tp;  // the i==r subtraction above zeroed it; restore E*col row r
    }
    const double ratio = xb_[static_cast<std::size_t>(r)] * inv;
    for (int i = 0; i < m_; ++i) {
      xb_[static_cast<std::size_t>(i)] -= y_[static_cast<std::size_t>(i)] * ratio;
    }
    xb_[static_cast<std::size_t>(r)] = ratio;
    in_basis_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] = 0;
    basis_[static_cast<std::size_t>(r)] = q;
    in_basis_[static_cast<std::size_t>(q)] = 1;
    ++pivots_since_refactor_;
  }

  // Writes the dense standard-form column j into out (size m_).
  void scatter_column(int j, std::vector<double>& out) const {
    std::fill(out.begin(), out.end(), 0.0);
    if (j >= art_first_) {
      out[static_cast<std::size_t>(j - art_first_)] = 1.0;
      return;
    }
    for (int p = col_ptr_[static_cast<std::size_t>(j)];
         p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const ColEntry& e = entries_[static_cast<std::size_t>(p)];
      out[static_cast<std::size_t>(e.row)] = e.val;
    }
  }

  // Recomputes binv_ and xb_ from scratch for the current basis_ via
  // Gauss-Jordan with partial pivoting (deterministic: max |pivot|, first
  // row on ties). Returns false on a singular basis.
  bool refactorize(RevisedStats* stats) {
    ++stats->refactorizations;
    pivots_since_refactor_ = 0;
    if (m_ == 0) return true;
    // work = [B | I], row-major, 2m columns.
    const std::size_t w = 2 * static_cast<std::size_t>(m_);
    work_.assign(static_cast<std::size_t>(m_) * w, 0.0);
    std::vector<double> col(static_cast<std::size_t>(m_));
    for (int k = 0; k < m_; ++k) {
      scatter_column(basis_[static_cast<std::size_t>(k)], col);
      for (int i = 0; i < m_; ++i) work_[static_cast<std::size_t>(i) * w + k] = col[i];
      work_[static_cast<std::size_t>(k) * w + m_ + k] = 1.0;
    }
    for (int k = 0; k < m_; ++k) {
      int p = k;
      double best = std::fabs(work_[static_cast<std::size_t>(k) * w + k]);
      for (int i = k + 1; i < m_; ++i) {
        const double v = std::fabs(work_[static_cast<std::size_t>(i) * w + k]);
        if (v > best) {
          best = v;
          p = i;
        }
      }
      if (best < 1e-12) return false;
      if (p != k) {
        for (std::size_t j = 0; j < w; ++j) {
          std::swap(work_[static_cast<std::size_t>(k) * w + j],
                    work_[static_cast<std::size_t>(p) * w + j]);
        }
      }
      const double inv = 1.0 / work_[static_cast<std::size_t>(k) * w + k];
      for (std::size_t j = 0; j < w; ++j) work_[static_cast<std::size_t>(k) * w + j] *= inv;
      for (int i = 0; i < m_; ++i) {
        if (i == k) continue;
        const double f = work_[static_cast<std::size_t>(i) * w + k];
        if (f == 0.0) continue;
        for (std::size_t j = 0; j < w; ++j) {
          work_[static_cast<std::size_t>(i) * w + j] -=
              f * work_[static_cast<std::size_t>(k) * w + j];
        }
      }
    }
    // binv column k = column (m_+k) of the reduced [B|I]; xb = binv b.
    for (int k = 0; k < m_; ++k) {
      double* bc = binv_col(k);
      for (int i = 0; i < m_; ++i) bc[i] = work_[static_cast<std::size_t>(i) * w + m_ + k];
    }
    for (int i = 0; i < m_; ++i) {
      double s = 0.0;
      for (int k = 0; k < m_; ++k) s += binv_col(k)[i] * b_[static_cast<std::size_t>(k)];
      xb_[static_cast<std::size_t>(i)] = s;
    }
    return true;
  }

  // ---- starting bases -----------------------------------------------------

  void init_cold_basis() {
    // Slack basic on <=-rows, artificial elsewhere: B = I exactly.
    std::fill(in_basis_.begin(), in_basis_.end(), 0);
    std::fill(binv_.begin(), binv_.end(), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int sc = slack_col_of_row_[static_cast<std::size_t>(i)];
      const int bj = (sc >= 0 && !is_real_art_[static_cast<std::size_t>(i)])
                         ? sc
                         : art_first_ + i;
      basis_[static_cast<std::size_t>(i)] = bj;
      in_basis_[static_cast<std::size_t>(bj)] = 1;
      binv_col(i)[i] = 1.0;
      xb_[static_cast<std::size_t>(i)] = b_[static_cast<std::size_t>(i)];
    }
    pivots_since_refactor_ = 0;
  }

  // Crashes a basis from `candidates` (ascending column indices): starts
  // from the all-artificial identity basis and pivots each independent
  // candidate in, assigning it the still-artificial row where its
  // transformed column is largest (ties -> smallest row). Dependent
  // candidates are dropped; uncovered rows keep their artificial. Accepts
  // the result only if it is primal-feasible with all basic artificials ~0 —
  // that certifies feasibility of the LP itself, which is what makes
  // skipping phase 1 sound.
  bool try_warm_crash(const std::vector<int>& candidates) {
    if (m_ == 0) return true;
    std::fill(in_basis_.begin(), in_basis_.end(), 0);
    std::fill(binv_.begin(), binv_.end(), 0.0);
    for (int i = 0; i < m_; ++i) {
      basis_[static_cast<std::size_t>(i)] = art_first_ + i;
      in_basis_[static_cast<std::size_t>(art_first_ + i)] = 1;
      binv_col(i)[i] = 1.0;
      xb_[static_cast<std::size_t>(i)] = b_[static_cast<std::size_t>(i)];
    }
    pivots_since_refactor_ = 0;

    for (const int j : candidates) {
      if (j < 0 || j >= art_first_ || in_basis_[static_cast<std::size_t>(j)]) continue;
      ftran(j);
      int r = -1;
      double best = 1e-9;
      for (int i = 0; i < m_; ++i) {
        if (basis_[static_cast<std::size_t>(i)] < art_first_) continue;  // row taken
        const double v = std::fabs(y_[static_cast<std::size_t>(i)]);
        if (v > best) {
          best = v;
          r = i;
        }
      }
      if (r < 0) continue;  // dependent on already-chosen columns
      update_basis(r, j);
    }

    // Feasibility gate on a fresh LU solve of B x_B = b (m^3/3 — far cheaper
    // than re-inverting). A singular crash basis is rejected here. The
    // product-form binv_ built by the crash pivots is kept for phase 2: the
    // crash starts from an exact identity, so its accumulated error matches a
    // near-refactorized state and does not warrant paying a full inversion.
    {
      std::vector<double> vals;
      if (!lu_solve(basis_, vals)) return false;
      xb_ = vals;
      pivots_since_refactor_ = 0;
    }
    for (int i = 0; i < m_; ++i) {
      if (xb_[static_cast<std::size_t>(i)] < -kFeasTol) return false;
      if (basis_[static_cast<std::size_t>(i)] >= art_first_ &&
          xb_[static_cast<std::size_t>(i)] > kFeasTol) {
        return false;
      }
    }
    for (int i = 0; i < m_; ++i) {
      if (xb_[static_cast<std::size_t>(i)] < 0.0) xb_[static_cast<std::size_t>(i)] = 0.0;
    }
    return true;
  }

  bool refactorize_if_due(bool force, RevisedStats* stats) {
    if (!force && pivots_since_refactor_ < kRefactorEvery) return true;
    RevisedStats scratch;
    return refactorize(stats != nullptr ? stats : &scratch);
  }

  // ---- simplex phases -----------------------------------------------------

  // Ejects zero-valued basic artificials by pivoting on any structural or
  // slack column with a nonzero entry in that row (a pivot at value 0 keeps
  // xb unchanged, so feasibility is preserved for any pivot sign). Rows with
  // no such column are redundant: every FTRAN has a zero there, so the
  // artificial's value can never move off 0.
  void drive_out_artificials() {
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] < art_first_) continue;
      // rho = row r of B^-1 (strided gather).
      for (int k = 0; k < m_; ++k) rho_[static_cast<std::size_t>(k)] = binv_col(k)[r];
      int enter = -1;
      for (int j = 0; j < art_first_ && enter < 0; ++j) {
        if (in_basis_[static_cast<std::size_t>(j)]) continue;
        double v = 0.0;
        for (int p = col_ptr_[static_cast<std::size_t>(j)];
             p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
          const ColEntry& e = entries_[static_cast<std::size_t>(p)];
          v += rho_[static_cast<std::size_t>(e.row)] * e.val;
        }
        if (std::fabs(v) > opts_.eps) enter = j;
      }
      if (enter >= 0) {
        ftran(enter);
        update_basis(r, enter);
      }
    }
  }

  // Bland's rule iteration for one phase. `allow_artificials` admits the
  // real artificial columns (phase 1 mirrors the dense solver, where
  // artificials stay enterable until phase 2 bars them).
  LpStatus iterate(const std::vector<double>& cost, bool allow_artificials,
                   std::uint64_t* pivot_counter, RevisedStats* stats) {
    while (iters_left_-- > 0) {
      if (!refactorize_if_due(false, stats)) return LpStatus::kIterationLimit;
      price(cost);
      int q = -1;
      for (int j = 0; j < n_; ++j) {
        if (in_basis_[static_cast<std::size_t>(j)]) continue;
        if (j >= art_first_ &&
            (!allow_artificials || !is_real_art_[static_cast<std::size_t>(j - art_first_)])) {
          continue;
        }
        if (reduced_cost(j, cost) > opts_.eps) {
          q = j;
          break;
        }
      }
      if (q < 0) return LpStatus::kOptimal;

      ftran(q);
      // Ratio test; ties (within eps) leave the smallest basis index, the
      // same rule as the dense tableau.
      int r = -1;
      double best = 0.0;
      for (int i = 0; i < m_; ++i) {
        const double yi = y_[static_cast<std::size_t>(i)];
        if (yi > opts_.eps) {
          const double ratio = xb_[static_cast<std::size_t>(i)] / yi;
          if (r < 0 || ratio < best - opts_.eps ||
              (ratio < best + opts_.eps &&
               basis_[static_cast<std::size_t>(i)] < basis_[static_cast<std::size_t>(r)])) {
            r = i;
            best = ratio;
          }
        }
      }
      if (r < 0) return LpStatus::kUnbounded;
      update_basis(r, q);
      ++*pivot_counter;
    }
    return LpStatus::kIterationLimit;
  }

  LpStatus phase1(RevisedStats* stats) {
    const LpStatus st = iterate(phase1_cost_, /*allow_artificials=*/true,
                                &stats->phase1_pivots, stats);
    if (st != LpStatus::kOptimal) return st;
    double art_sum = 0.0;
    for (int i = 0; i < m_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] >= art_first_) {
        art_sum += xb_[static_cast<std::size_t>(i)];
      }
    }
    if (art_sum > kFeasTol) return LpStatus::kInfeasible;
    for (int i = 0; i < m_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] >= art_first_ &&
          xb_[static_cast<std::size_t>(i)] < 0.0) {
        xb_[static_cast<std::size_t>(i)] = 0.0;
      }
    }
    return LpStatus::kOptimal;
  }

  LpStatus phase2(RevisedStats* stats) {
    return iterate(phase2_cost_, /*allow_artificials=*/false, &stats->phase2_pivots, stats);
  }

  // Phase 3: canonicalize the optimal POINT. Different pivot paths (warm vs
  // cold) may stop at different optimal vertices of a degenerate LP, so
  // after phase 2 we minimize a fixed generic secondary objective
  //   s(x) = sum_j w_j x_j,  w_j = secondary_weight(j) in [1, 2)
  // over the optimal face. Pivoting is restricted to columns whose PHASE-2
  // reduced cost is ~0 (pivots on such columns leave every phase-2 reduced
  // cost unchanged, so the face-column set is invariant); Bland's rule on the
  // secondary reduced costs guarantees termination. Since all x >= 0 and
  // w > 0, s is bounded below, and with hash-generic weights its minimizer
  // over the face is unique in practice — both paths land on the SAME point
  // no matter where on the face they entered.
  void canonicalize(RevisedStats* stats) {
    if (m_ == 0) return;
    if (phase3_cost_.empty()) {
      phase3_cost_.assign(static_cast<std::size_t>(n_), 0.0);
      for (int j = 0; j < art_first_; ++j) {
        phase3_cost_[static_cast<std::size_t>(j)] = -secondary_weight(j);
      }
    }
    int guard = 64 * (m_ + 16);
    while (guard-- > 0) {
      if (!refactorize_if_due(false, stats)) return;
      price_into(phase2_cost_, pi2_);
      price(phase3_cost_);
      int q = -1;
      for (int j = 0; j < art_first_; ++j) {
        if (in_basis_[static_cast<std::size_t>(j)]) continue;
        if (std::fabs(reduced_cost_with(j, phase2_cost_, pi2_)) > kCanonTol) continue;
        if (reduced_cost(j, phase3_cost_) > opts_.eps) {
          q = j;
          break;
        }
      }
      if (q < 0) return;  // secondary-optimal on the face: canonical point
      ftran(q);
      int r = -1;
      double best = 0.0;
      for (int i = 0; i < m_; ++i) {
        const double yi = y_[static_cast<std::size_t>(i)];
        if (yi > opts_.eps) {
          const double ratio = xb_[static_cast<std::size_t>(i)] / yi;
          if (r < 0 || ratio < best - opts_.eps ||
              (ratio < best + opts_.eps &&
               basis_[static_cast<std::size_t>(i)] < basis_[static_cast<std::size_t>(r)])) {
            r = i;
            best = ratio;
          }
        }
      }
      if (r < 0) return;  // s >= 0 is bounded; only roundoff can land here
      update_basis(r, q);
      ++stats->canonical_pivots;
    }
  }

  // ---- canonical extraction ----------------------------------------------

  // Rebuilds a canonical basis from the solution's SUPPORT: the positive
  // basic columns are forced in, then the set is completed greedily by
  // ascending column index (structural, slack, then artificials for
  // redundant rows), accepting a column iff it is independent of those
  // already chosen. Every decision consumes only exact LP data plus the
  // support SET, so two pivot paths ending at the same point — even with
  // different degenerate bases — produce the identical basis. Returns false
  // if the support columns themselves look dependent (roundoff pathology).
  bool canonical_basis(std::vector<int>& out) {
    out.clear();
    std::vector<int> support;
    for (int i = 0; i < m_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] < art_first_ &&
          xb_[static_cast<std::size_t>(i)] > kFeasTol) {
        support.push_back(basis_[static_cast<std::size_t>(i)]);
      }
    }
    std::sort(support.begin(), support.end());

    // Incremental elimination state: accepted columns reduced against each
    // other, with their pivot rows retired.
    std::vector<std::vector<double>> reduced;
    std::vector<int> pivot_row;
    std::vector<char> row_used(static_cast<std::size_t>(m_), 0);
    std::vector<double> col(static_cast<std::size_t>(m_));
    auto try_add = [&](int j) {
      scatter_column(j, col);
      for (std::size_t k = 0; k < reduced.size(); ++k) {
        const double f = col[static_cast<std::size_t>(pivot_row[k])];
        if (f == 0.0) continue;
        const std::vector<double>& u = reduced[k];
        for (int i = 0; i < m_; ++i) {
          col[static_cast<std::size_t>(i)] -= f * u[static_cast<std::size_t>(i)];
        }
        col[static_cast<std::size_t>(pivot_row[k])] = 0.0;
      }
      int p = -1;
      double best = 1e-9;
      for (int i = 0; i < m_; ++i) {
        if (row_used[static_cast<std::size_t>(i)]) continue;
        const double v = std::fabs(col[static_cast<std::size_t>(i)]);
        if (v > best) {
          best = v;
          p = i;
        }
      }
      if (p < 0) return false;  // dependent
      const double inv = 1.0 / col[static_cast<std::size_t>(p)];
      for (int i = 0; i < m_; ++i) col[static_cast<std::size_t>(i)] *= inv;
      reduced.push_back(col);
      pivot_row.push_back(p);
      row_used[static_cast<std::size_t>(p)] = 1;
      out.push_back(j);
      return true;
    };

    for (const int j : support) {
      if (!try_add(j)) return false;  // support must be independent
    }
    std::size_t si = 0;
    for (int j = 0; j < art_first_ && static_cast<int>(out.size()) < m_; ++j) {
      if (si < support.size() && support[si] == j) {
        ++si;
        continue;
      }
      try_add(j);
    }
    // Rows structural+slack columns cannot span are redundant; their unit
    // artificial completes the basis (ascending row order).
    for (int i = 0; i < m_ && static_cast<int>(out.size()) < m_; ++i) {
      if (!row_used[static_cast<std::size_t>(i)]) try_add(art_first_ + i);
    }
    if (static_cast<int>(out.size()) != m_) return false;
    std::sort(out.begin(), out.end());
    return true;
  }

  // x is recomputed from the canonical basis set with a fresh LU solve, so
  // the reported solution depends only on (LP, optimal point) — not on the
  // pivot path or the warm/cold route that reached it.
  void extract(LpSolution& sol) {
    sol.status = LpStatus::kOptimal;
    sol.x.assign(static_cast<std::size_t>(n_struct_), 0.0);
    canon_basis_.clear();
    if (m_ > 0) {
      std::vector<int> sorted;
      std::vector<double> vals;
      if (!canonical_basis(sorted) || !lu_solve(sorted, vals)) {
        // Roundoff pathology; fall back to the pivot basis and the engine's
        // incremental values (still a valid optimum, just not guaranteed
        // path-independent).
        sorted = basis_;
        std::sort(sorted.begin(), sorted.end());
        if (!lu_solve(sorted, vals)) {
          sorted = basis_;
          vals.assign(xb_.begin(), xb_.end());
        }
      }
      canon_basis_ = sorted;
      for (int k = 0; k < m_; ++k) {
        const int j = sorted[static_cast<std::size_t>(k)];
        if (j < n_struct_) {
          sol.x[static_cast<std::size_t>(j)] = std::max(0.0, vals[static_cast<std::size_t>(k)]);
        }
      }
    }
    double obj = 0.0;
    for (int j = 0; j < n_struct_; ++j) {
      obj += lp_.objective()[static_cast<std::size_t>(j)] * sol.x[static_cast<std::size_t>(j)];
    }
    sol.objective = obj;
  }

  // Solves B(cols) v = b with partial-pivoted LU (deterministic: max
  // |pivot|, first row on ties). Returns false if singular.
  bool lu_solve(const std::vector<int>& cols, std::vector<double>& v) {
    const std::size_t mm = static_cast<std::size_t>(m_);
    work_.assign(mm * mm, 0.0);  // row-major
    std::vector<double> col(mm);
    for (int k = 0; k < m_; ++k) {
      scatter_column(cols[static_cast<std::size_t>(k)], col);
      for (int i = 0; i < m_; ++i) {
        work_[static_cast<std::size_t>(i) * mm + static_cast<std::size_t>(k)] =
            col[static_cast<std::size_t>(i)];
      }
    }
    v.assign(b_.begin(), b_.end());
    for (int k = 0; k < m_; ++k) {
      int p = k;
      double best =
          std::fabs(work_[static_cast<std::size_t>(k) * mm + static_cast<std::size_t>(k)]);
      for (int i = k + 1; i < m_; ++i) {
        const double t =
            std::fabs(work_[static_cast<std::size_t>(i) * mm + static_cast<std::size_t>(k)]);
        if (t > best) {
          best = t;
          p = i;
        }
      }
      if (best < 1e-12) return false;
      if (p != k) {
        for (int j = 0; j < m_; ++j) {
          std::swap(work_[static_cast<std::size_t>(k) * mm + static_cast<std::size_t>(j)],
                    work_[static_cast<std::size_t>(p) * mm + static_cast<std::size_t>(j)]);
        }
        std::swap(v[static_cast<std::size_t>(k)], v[static_cast<std::size_t>(p)]);
      }
      const double inv =
          1.0 / work_[static_cast<std::size_t>(k) * mm + static_cast<std::size_t>(k)];
      for (int i = k + 1; i < m_; ++i) {
        const double f =
            work_[static_cast<std::size_t>(i) * mm + static_cast<std::size_t>(k)] * inv;
        if (f == 0.0) continue;
        work_[static_cast<std::size_t>(i) * mm + static_cast<std::size_t>(k)] = f;
        for (int j = k + 1; j < m_; ++j) {
          work_[static_cast<std::size_t>(i) * mm + static_cast<std::size_t>(j)] -=
              f * work_[static_cast<std::size_t>(k) * mm + static_cast<std::size_t>(j)];
        }
        v[static_cast<std::size_t>(i)] -= f * v[static_cast<std::size_t>(k)];
      }
    }
    for (int i = m_ - 1; i >= 0; --i) {
      double s = v[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < m_; ++j) {
        s -= work_[static_cast<std::size_t>(i) * mm + static_cast<std::size_t>(j)] *
             v[static_cast<std::size_t>(j)];
      }
      v[static_cast<std::size_t>(i)] =
          s / work_[static_cast<std::size_t>(i) * mm + static_cast<std::size_t>(i)];
    }
    return true;
  }

  // ---- data ---------------------------------------------------------------

  const LpProblem& lp_;
  const SimplexOptions opts_;
  const int m_;
  const int n_struct_;
  int art_first_ = 0;
  int n_ = 0;
  int n_real_art_ = 0;
  int iters_left_ = 0;
  int pivots_since_refactor_ = 0;

  std::vector<int> slack_col_of_row_;
  std::vector<int> row_of_slack_;
  std::vector<bool> is_real_art_;
  std::vector<double> b_;
  std::vector<int> col_ptr_;
  std::vector<ColEntry> entries_;
  std::vector<double> phase1_cost_;
  std::vector<double> phase2_cost_;
  std::vector<double> phase3_cost_;  // canonicalization secondary objective

  std::vector<double> binv_;  // column-major m x m
  std::vector<double> xb_;
  std::vector<int> basis_;
  std::vector<char> in_basis_;
  std::vector<double> y_;
  std::vector<double> pi_;
  std::vector<double> pi2_;  // second pricing buffer for phase-3 face tests
  std::vector<double> rho_;
  std::vector<int> canon_basis_;
  std::vector<ColEntry> nz_cb_;
  std::vector<double> work_;
};

}  // namespace

LpSolution LpContext::solve(const LpProblem& lp, const LpLabels& labels,
                            const SimplexOptions& opts) {
  if (static_cast<int>(labels.var.size()) != lp.num_vars() ||
      static_cast<int>(labels.row.size()) != lp.num_constraints()) {
    throw std::invalid_argument("LpContext::solve: label arity mismatch");
  }
  RevisedEngine eng(lp, opts);

  std::vector<int> candidates;
  if (has_basis_) {
    // Ascending by construction: structural columns first, then slacks.
    for (int j = 0; j < lp.num_vars(); ++j) {
      if (std::binary_search(basic_vars_.begin(), basic_vars_.end(),
                             labels.var[static_cast<std::size_t>(j)])) {
        candidates.push_back(j);
      }
    }
    for (int i = 0; i < lp.num_constraints(); ++i) {
      const int sc = eng.slack_col_of_row(i);
      if (sc >= 0 && std::binary_search(basic_rows_.begin(), basic_rows_.end(),
                                        labels.row[static_cast<std::size_t>(i)])) {
        candidates.push_back(sc);
      }
    }
  }

  bool warm_used = false;
  LpSolution sol = eng.run(has_basis_ ? &candidates : nullptr, &stats_, &warm_used);

  if (sol.status == LpStatus::kOptimal) {
    basic_vars_.clear();
    basic_rows_.clear();
    // Prefer the canonical extract basis so the saved context state is a
    // pure function of the LP — path-independence then carries across the
    // whole event stream, not just one solve.
    const std::vector<int>& saved = eng.canonical_extract_basis().empty()
                                        ? eng.basis()
                                        : eng.canonical_extract_basis();
    for (const int j : saved) {
      if (j < eng.n_struct()) {
        basic_vars_.push_back(labels.var[static_cast<std::size_t>(j)]);
      } else if (j < eng.art_first()) {
        basic_rows_.push_back(
            labels.row[static_cast<std::size_t>(eng.row_of_slack_col(j))]);
      }
      // Basic artificials (redundant rows) are not remembered; the next
      // crash re-fills uncovered rows with artificials anyway.
    }
    std::sort(basic_vars_.begin(), basic_vars_.end());
    std::sort(basic_rows_.begin(), basic_rows_.end());
    has_basis_ = true;
  } else {
    clear();
  }
  return sol;
}

LpSolution LpContext::solve(const LpProblem& lp, const SimplexOptions& opts) {
  clear();
  RevisedEngine eng(lp, opts);
  bool warm_used = false;
  return eng.run(nullptr, &stats_, &warm_used);
}

void LpContext::clear() {
  has_basis_ = false;
  basic_vars_.clear();
  basic_rows_.clear();
}

LpSolution solve_revised(const LpProblem& lp, const SimplexOptions& opts) {
  RevisedEngine eng(lp, opts);
  RevisedStats stats;
  bool warm_used = false;
  return eng.run(nullptr, &stats, &warm_used);
}

}  // namespace hadar::solver
