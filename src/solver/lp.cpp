#include "solver/lp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hadar::solver {

const char* to_string(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

LpProblem::LpProblem(int num_vars) : num_vars_(num_vars) {
  if (num_vars <= 0) throw std::invalid_argument("LpProblem: num_vars <= 0");
  c_.assign(static_cast<std::size_t>(num_vars), 0.0);
}

void LpProblem::set_objective(int v, double coeff) {
  if (v < 0 || v >= num_vars_) throw std::out_of_range("LpProblem::set_objective");
  c_[static_cast<std::size_t>(v)] = coeff;
}

void LpProblem::add_constraint(const std::vector<double>& coeffs, Relation rel, double rhs) {
  if (static_cast<int>(coeffs.size()) > num_vars_) {
    throw std::invalid_argument("LpProblem::add_constraint: too many coefficients");
  }
  Row row;
  row.rel = rel;
  row.b = rhs;
  for (int j = 0; j < static_cast<int>(coeffs.size()); ++j) {
    const double v = coeffs[static_cast<std::size_t>(j)];
    if (v != 0.0) row.a.push_back(SparseEntry{j, v});
  }
  rows_.push_back(std::move(row));
}

void LpProblem::add_constraint_sparse(std::vector<SparseEntry> entries, Relation rel,
                                      double rhs) {
  int prev = -1;
  for (const SparseEntry& e : entries) {
    if (e.index < 0 || e.index >= num_vars_) {
      throw std::invalid_argument("LpProblem::add_constraint_sparse: index out of range");
    }
    if (e.index <= prev) {
      throw std::invalid_argument(
          "LpProblem::add_constraint_sparse: indices must be strictly increasing");
    }
    prev = e.index;
  }
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [](const SparseEntry& e) { return e.value == 0.0; }),
                entries.end());
  rows_.push_back(Row{std::move(entries), rel, rhs});
}

double LpProblem::Row::coeff(int j) const {
  const auto it = std::lower_bound(
      a.begin(), a.end(), j,
      [](const SparseEntry& e, int idx) { return e.index < idx; });
  return (it != a.end() && it->index == j) ? it->value : 0.0;
}

namespace {

// Dense simplex tableau over the standard form
//   max c^T x,  A x = b,  x >= 0,  b >= 0
// with `m` rows and `n` columns (structural + slack/surplus + artificial).
class Tableau {
 public:
  Tableau(int m, int n)
      : m_(m),
        n_(n),
        b_(static_cast<std::size_t>(m), 0.0),
        cost_(static_cast<std::size_t>(n), 0.0),
        basis_(static_cast<std::size_t>(m), -1),
        a_(static_cast<std::size_t>(m) * static_cast<std::size_t>(n), 0.0) {}

  double& at(int i, int j) {
    return a_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(j)];
  }
  double at(int i, int j) const {
    return a_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(j)];
  }

  int m_;
  int n_;
  std::vector<double> b_;
  std::vector<double> cost_;   // objective being MAXIMIZED over current columns
  std::vector<int> basis_;     // basis_[row] = column basic in that row

  // Reduced cost of column j given the current basis: c_j - c_B^T B^-1 A_j.
  // We keep the tableau fully reduced, so the reduced costs live in cost_
  // after each pivot (classic full-tableau simplex).
  void pivot(int row, int col, double eps) {
    const double p = at(row, col);
    if (std::fabs(p) < eps) throw std::runtime_error("simplex: degenerate pivot");
    const double inv = 1.0 / p;
    for (int j = 0; j < n_; ++j) at(row, j) *= inv;
    b_[static_cast<std::size_t>(row)] *= inv;
    for (int i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double f = at(i, col);
      if (f == 0.0) continue;
      for (int j = 0; j < n_; ++j) at(i, j) -= f * at(row, j);
      b_[static_cast<std::size_t>(i)] -= f * b_[static_cast<std::size_t>(row)];
    }
    const double f = cost_[static_cast<std::size_t>(col)];
    if (f != 0.0) {
      for (int j = 0; j < n_; ++j) cost_[static_cast<std::size_t>(j)] -= f * at(row, j);
      obj_shift_ += f * b_[static_cast<std::size_t>(row)];
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  // Runs simplex iterations (Bland's rule). Returns kOptimal / kUnbounded /
  // kIterationLimit. `allowed(j)` filters enterable columns.
  template <typename Allowed>
  LpStatus iterate(const SimplexOptions& opts, int& iters_left, Allowed allowed) {
    while (iters_left-- > 0) {
      // Bland: smallest-index column with positive reduced cost (maximize).
      int col = -1;
      for (int j = 0; j < n_; ++j) {
        if (!allowed(j)) continue;
        if (cost_[static_cast<std::size_t>(j)] > opts.eps) {
          col = j;
          break;
        }
      }
      if (col < 0) return LpStatus::kOptimal;

      // Ratio test; Bland tie-break on the leaving variable's column index.
      int row = -1;
      double best_ratio = 0.0;
      for (int i = 0; i < m_; ++i) {
        const double aij = at(i, col);
        if (aij > opts.eps) {
          const double ratio = b_[static_cast<std::size_t>(i)] / aij;
          if (row < 0 || ratio < best_ratio - opts.eps ||
              (ratio < best_ratio + opts.eps &&
               basis_[static_cast<std::size_t>(i)] < basis_[static_cast<std::size_t>(row)])) {
            row = i;
            best_ratio = ratio;
          }
        }
      }
      if (row < 0) return LpStatus::kUnbounded;
      pivot(row, col, opts.eps);
    }
    return LpStatus::kIterationLimit;
  }

  double objective_value() const { return obj_shift_; }

 private:
  std::vector<double> a_;
  double obj_shift_ = 0.0;
};

}  // namespace

LpSolution solve(const LpProblem& lp, const SimplexOptions& opts) {
  const int n_struct = lp.num_vars();
  const int m = lp.num_constraints();

  // Count auxiliary columns.
  int n_slack = 0;
  int n_artificial = 0;
  for (const auto& row : lp.rows()) {
    const bool flip = row.b < 0.0;
    Relation rel = row.rel;
    if (flip) {
      rel = rel == Relation::kLessEqual
                ? Relation::kGreaterEqual
                : (rel == Relation::kGreaterEqual ? Relation::kLessEqual : Relation::kEqual);
    }
    if (rel != Relation::kEqual) ++n_slack;
    if (rel != Relation::kLessEqual) ++n_artificial;
  }

  const int n = n_struct + n_slack + n_artificial;
  Tableau t(m, n);

  int slack_next = n_struct;
  int artificial_first = n_struct + n_slack;
  int art_next = artificial_first;

  for (int i = 0; i < m; ++i) {
    const auto& row = lp.rows()[static_cast<std::size_t>(i)];
    const bool flip = row.b < 0.0;
    const double sign = flip ? -1.0 : 1.0;
    Relation rel = row.rel;
    if (flip) {
      rel = rel == Relation::kLessEqual
                ? Relation::kGreaterEqual
                : (rel == Relation::kGreaterEqual ? Relation::kLessEqual : Relation::kEqual);
    }
    for (const SparseEntry& e : row.a) t.at(i, e.index) = sign * e.value;
    t.b_[static_cast<std::size_t>(i)] = sign * row.b;

    if (rel == Relation::kLessEqual) {
      t.at(i, slack_next) = 1.0;
      t.basis_[static_cast<std::size_t>(i)] = slack_next;
      ++slack_next;
    } else if (rel == Relation::kGreaterEqual) {
      t.at(i, slack_next) = -1.0;  // surplus
      ++slack_next;
      t.at(i, art_next) = 1.0;
      t.basis_[static_cast<std::size_t>(i)] = art_next;
      ++art_next;
    } else {
      t.at(i, art_next) = 1.0;
      t.basis_[static_cast<std::size_t>(i)] = art_next;
      ++art_next;
    }
  }

  LpSolution sol;
  int iters_left = opts.max_iterations;

  // Phase 1: maximize -(sum of artificials), i.e. drive them to zero.
  if (n_artificial > 0) {
    for (int j = artificial_first; j < n; ++j) t.cost_[static_cast<std::size_t>(j)] = -1.0;
    // Price out basic artificials so reduced costs start consistent.
    for (int i = 0; i < m; ++i) {
      const int bj = t.basis_[static_cast<std::size_t>(i)];
      if (bj >= artificial_first) {
        for (int j = 0; j < n; ++j) t.cost_[static_cast<std::size_t>(j)] += t.at(i, j);
        // objective shift: cost_b * b, with cost_b = -1
      }
    }
    // Track phase-1 objective separately: sum of artificial basics.
    const LpStatus st = t.iterate(opts, iters_left, [](int) { return true; });
    if (st == LpStatus::kIterationLimit) {
      sol.status = st;
      return sol;
    }
    // Feasible iff all artificial variables are zero.
    double art_sum = 0.0;
    for (int i = 0; i < m; ++i) {
      if (t.basis_[static_cast<std::size_t>(i)] >= artificial_first) {
        art_sum += t.b_[static_cast<std::size_t>(i)];
      }
    }
    if (art_sum > 1e-7) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    // Pivot any remaining (zero-valued) artificials out of the basis.
    for (int i = 0; i < m; ++i) {
      if (t.basis_[static_cast<std::size_t>(i)] < artificial_first) continue;
      int col = -1;
      for (int j = 0; j < artificial_first; ++j) {
        if (std::fabs(t.at(i, j)) > opts.eps) {
          col = j;
          break;
        }
      }
      if (col >= 0) {
        t.pivot(i, col, opts.eps);
      }
      // Else the row is all-zero over structural+slack columns: redundant
      // constraint; leave the zero artificial basic (it stays at 0).
    }
  }

  // Phase 2: real objective over structural columns; artificials barred.
  std::fill(t.cost_.begin(), t.cost_.end(), 0.0);
  for (int j = 0; j < n_struct; ++j) {
    t.cost_[static_cast<std::size_t>(j)] = lp.objective()[static_cast<std::size_t>(j)];
  }
  // Reset the objective bookkeeping by re-pricing basic columns.
  double base_obj = 0.0;
  for (int i = 0; i < m; ++i) {
    const int bj = t.basis_[static_cast<std::size_t>(i)];
    const double cb = t.cost_[static_cast<std::size_t>(bj)];
    if (cb != 0.0) {
      for (int j = 0; j < n; ++j) t.cost_[static_cast<std::size_t>(j)] -= cb * t.at(i, j);
      base_obj += cb * t.b_[static_cast<std::size_t>(i)];
      // note: t.cost_[bj] becomes 0 as at(i,bj)==1
    }
  }

  const int art_first = artificial_first;
  const LpStatus st =
      t.iterate(opts, iters_left, [art_first](int j) { return j < art_first; });
  if (st != LpStatus::kOptimal) {
    sol.status = st;
    return sol;
  }

  sol.status = LpStatus::kOptimal;
  sol.x.assign(static_cast<std::size_t>(n_struct), 0.0);
  for (int i = 0; i < m; ++i) {
    const int bj = t.basis_[static_cast<std::size_t>(i)];
    if (bj < n_struct) sol.x[static_cast<std::size_t>(bj)] = t.b_[static_cast<std::size_t>(i)];
  }
  double obj = 0.0;
  for (int j = 0; j < n_struct; ++j) {
    obj += lp.objective()[static_cast<std::size_t>(j)] * sol.x[static_cast<std::size_t>(j)];
  }
  (void)base_obj;  // objective recomputed from x for numerical cleanliness
  sol.objective = obj;
  return sol;
}

}  // namespace hadar::solver
