// Linear-programming front end shared by two engines: the dense two-phase
// tableau simplex below (kept as the verification fallback) and the sparse
// revised simplex in revised_simplex.hpp. Constraint rows are stored
// sparsely — the Gavel allocation LPs touch only R+1 of their 1+J*R
// variables per row — and are validated/compressed once at add time.
#pragma once

#include <vector>

namespace hadar::solver {

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* to_string(LpStatus s);

/// One nonzero coefficient of a constraint row.
struct SparseEntry {
  int index = 0;
  double value = 0.0;
};

/// max c^T x  s.t.  each constraint (a^T x REL b),  x >= 0.
class LpProblem {
 public:
  explicit LpProblem(int num_vars);

  int num_vars() const { return num_vars_; }
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  /// Objective coefficient for variable `v` (maximization).
  void set_objective(int v, double coeff);

  /// Adds a constraint sum_i coeffs[i] * x_i REL rhs. `coeffs` may be shorter
  /// than num_vars (missing entries are 0); longer rows are rejected. Zeros
  /// are dropped at add time — rows are stored sparsely.
  void add_constraint(const std::vector<double>& coeffs, Relation rel, double rhs);

  /// Adds a constraint from explicit nonzeros. Entries must be sorted by
  /// strictly increasing index; out-of-range or duplicate indices throw
  /// std::invalid_argument. Zero-valued entries are dropped.
  void add_constraint_sparse(std::vector<SparseEntry> entries, Relation rel, double rhs);

  const std::vector<double>& objective() const { return c_; }

  struct Row {
    std::vector<SparseEntry> a;  ///< sorted by index, nonzero values only
    Relation rel;
    double b;

    /// Coefficient of variable `j` (binary search; tests/introspection).
    double coeff(int j) const;
  };
  const std::vector<Row>& rows() const { return rows_; }

 private:
  int num_vars_;
  std::vector<double> c_;
  std::vector<Row> rows_;
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;
};

struct SimplexOptions {
  int max_iterations = 50000;
  double eps = 1e-9;
};

/// Solves with the dense two-phase tableau simplex. Deterministic (Bland's
/// rule). Kept as the verification fallback for the revised engine.
LpSolution solve(const LpProblem& lp, const SimplexOptions& opts = {});

}  // namespace hadar::solver
