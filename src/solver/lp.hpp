// Dense linear-programming solver: two-phase primal simplex with Bland's
// anti-cycling rule. Built for the moderate-size allocation LPs of the
// Gavel baseline (hundreds of variables); no sparsity exploitation.
#pragma once

#include <vector>

namespace hadar::solver {

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* to_string(LpStatus s);

/// max c^T x  s.t.  each constraint (a^T x REL b),  x >= 0.
class LpProblem {
 public:
  explicit LpProblem(int num_vars);

  int num_vars() const { return num_vars_; }
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  /// Objective coefficient for variable `v` (maximization).
  void set_objective(int v, double coeff);

  /// Adds a constraint sum_i coeffs[i] * x_i REL rhs. `coeffs` may be shorter
  /// than num_vars (missing entries are 0).
  void add_constraint(std::vector<double> coeffs, Relation rel, double rhs);

  const std::vector<double>& objective() const { return c_; }

  struct Row {
    std::vector<double> a;
    Relation rel;
    double b;
  };
  const std::vector<Row>& rows() const { return rows_; }

 private:
  int num_vars_;
  std::vector<double> c_;
  std::vector<Row> rows_;
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;
};

struct SimplexOptions {
  int max_iterations = 50000;
  double eps = 1e-9;
};

/// Solves with two-phase primal simplex. Deterministic (Bland's rule).
LpSolution solve(const LpProblem& lp, const SimplexOptions& opts = {});

}  // namespace hadar::solver
