#include "solver/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"
#include "solver/lp.hpp"

namespace hadar::solver {
namespace {

void check(const MaxMinProblem& p) {
  const std::size_t j_count = p.rate.size();
  if (p.demand.size() != j_count) throw std::invalid_argument("MaxMin: demand arity");
  if (!p.scale.empty() && p.scale.size() != j_count) {
    throw std::invalid_argument("MaxMin: scale arity");
  }
  for (const auto& row : p.rate) {
    if (row.size() != p.cap.size()) throw std::invalid_argument("MaxMin: rate arity");
  }
  for (double d : p.demand) {
    if (d <= 0.0) throw std::invalid_argument("MaxMin: non-positive demand");
  }
  for (double c : p.cap) {
    if (c < 0.0) throw std::invalid_argument("MaxMin: negative capacity");
  }
  if (!p.key.empty()) {
    if (p.key.size() != j_count) throw std::invalid_argument("MaxMin: key arity");
    for (std::int64_t k : p.key) {
      if (k < 0) throw std::invalid_argument("MaxMin: negative key");
    }
  }
}

double scale_of(const MaxMinProblem& p, std::size_t j) {
  return p.scale.empty() ? 1.0 : p.scale[j];
}

std::int64_t key_of(const MaxMinProblem& p, int j) {
  return p.key.empty() ? j : p.key[static_cast<std::size_t>(j)];
}

// Dispatches one LP solve through the configured engine. The revised engine
// warm-starts from `lpctx` when given; any non-optimal revised outcome
// retries once on the dense tableau (a pure function of the LP, so the
// fallback stays deterministic) after dropping the stale warm basis.
LpSolution solve_dispatch(const LpProblem& lp, const LpLabels& labels, int max_iterations,
                          LpEngine engine, LpContext* lpctx) {
  obs::ScopedSpan span("lp", "lp.solve", 1);
  if (span.active()) {
    span.arg("rows", static_cast<double>(lp.num_constraints()));
    span.arg("vars", static_cast<double>(lp.num_vars()));
  }
  obs::count("lp.solves");
  SimplexOptions opts;
  opts.max_iterations = max_iterations;
  if (engine == LpEngine::kDense) return solve(lp, opts);
  LpSolution sol = lpctx != nullptr ? lpctx->solve(lp, labels, opts)
                                    : solve_revised(lp, opts);
  if (sol.status != LpStatus::kOptimal && sol.status != LpStatus::kInfeasible &&
      sol.status != LpStatus::kUnbounded) {
    if (lpctx != nullptr) lpctx->clear();
    obs::count("lp.dense_fallbacks");
    sol = solve(lp, opts);
  }
  if (span.active()) span.str_arg("status", to_string(sol.status));
  return sol;
}

// Drops the warm-start bases when the capacity vector changed since the
// last solve with this context (labels only track the job set, not caps).
void refresh_cap_signature(MaxMinContext* ctx, const MaxMinProblem& p) {
  if (ctx == nullptr) return;
  if (ctx->cap_signature != p.cap) {
    ctx->clear();
    ctx->cap_signature = p.cap;
  }
}

}  // namespace

MaxMinSolution solve_max_min_lp(const MaxMinProblem& p, int max_iterations, LpEngine engine,
                                MaxMinContext* ctx) {
  check(p);
  refresh_cap_signature(ctx, p);
  const int J = static_cast<int>(p.rate.size());
  const int R = static_cast<int>(p.cap.size());
  MaxMinSolution sol;
  sol.y.assign(static_cast<std::size_t>(J), std::vector<double>(static_cast<std::size_t>(R), 0.0));
  if (J == 0) {
    sol.feasible = true;
    return sol;
  }

  // Variable layout: [z, Y(0,0..R-1), Y(1,..), ...]. Rows are sparse: each
  // job row touches only its own R variables (plus z).
  const int nv = 1 + J * R;
  auto yvar = [R](int j, int r) { return 1 + j * R + r; };
  LpProblem lp(nv);
  lp.set_objective(0, 1.0);  // max z

  // Warm-start labels, stable across job arrivals/completions: variables
  // are keyed by (job key, type); rows by job key for the two per-job rows
  // and by -(r+1) for the capacity rows. z gets -1 (keys are >= 0, so no
  // clash). Variable and row label spaces are matched independently.
  LpLabels labels;
  labels.var.assign(static_cast<std::size_t>(nv), -1);
  std::vector<SparseEntry> row;
  row.reserve(static_cast<std::size_t>(R) + 1);
  for (int j = 0; j < J; ++j) {
    const double s = scale_of(p, static_cast<std::size_t>(j));
    const std::int64_t k = key_of(p, j);
    // z - sum_r Y[j][r]*rate/scale <= 0
    row.clear();
    row.push_back({0, 1.0});
    for (int r = 0; r < R; ++r) {
      labels.var[static_cast<std::size_t>(yvar(j, r))] =
          k * R + r;
      const double rate = p.rate[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)];
      if (rate != 0.0) row.push_back({yvar(j, r), -rate / s});
    }
    lp.add_constraint_sparse(row, Relation::kLessEqual, 0.0);
    labels.row.push_back(2 * k);

    // sum_r Y[j][r] <= 1
    row.clear();
    for (int r = 0; r < R; ++r) row.push_back({yvar(j, r), 1.0});
    lp.add_constraint_sparse(row, Relation::kLessEqual, 1.0);
    labels.row.push_back(2 * k + 1);
  }
  for (int r = 0; r < R; ++r) {
    row.clear();
    for (int j = 0; j < J; ++j) {
      row.push_back({yvar(j, r), p.demand[static_cast<std::size_t>(j)]});
    }
    lp.add_constraint_sparse(row, Relation::kLessEqual, p.cap[static_cast<std::size_t>(r)]);
    labels.row.push_back(-(r + 1));
  }

  const LpSolution lsol = solve_dispatch(lp, labels, max_iterations, engine,
                                         ctx != nullptr ? &ctx->max_min : nullptr);
  if (lsol.status != LpStatus::kOptimal) return sol;  // infeasible/limit => !feasible

  sol.feasible = true;
  sol.min_normalized_throughput = std::max(0.0, lsol.objective);
  for (int j = 0; j < J; ++j) {
    for (int r = 0; r < R; ++r) {
      sol.y[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] =
          std::max(0.0, lsol.x[static_cast<std::size_t>(yvar(j, r))]);
    }
  }
  return sol;
}

MaxMinSolution solve_max_min_filling(const MaxMinProblem& p) {
  check(p);
  const std::size_t J = p.rate.size();
  const std::size_t R = p.cap.size();
  MaxMinSolution sol;
  sol.feasible = true;
  sol.y.assign(J, std::vector<double>(R, 0.0));
  if (J == 0) return sol;

  std::vector<double> cap = p.cap;
  std::vector<double> budget(J, 1.0);  // remaining time fraction per job
  std::vector<bool> active(J, true);
  double z = 0.0;                      // common normalized throughput level
  double min_final = std::numeric_limits<double>::infinity();
  bool any_ran = false;

  // Contention pressure per type: how many active jobs have this type as
  // their strictly-best remaining option. Flexible jobs drawing on a
  // near-tie type should yield the contested pool to inflexible ones.
  auto type_pressure = [&]() {
    std::vector<int> pressure(R, 0);
    for (std::size_t j = 0; j < J; ++j) {
      if (!active[j]) continue;
      int best = -1;
      for (std::size_t r = 0; r < R; ++r) {
        if (cap[r] > 1e-12 && p.rate[j][r] > 0.0 &&
            (best < 0 || p.rate[j][r] > p.rate[j][static_cast<std::size_t>(best)])) {
          best = static_cast<int>(r);
        }
      }
      // Count only jobs whose best strictly dominates their second option.
      if (best >= 0) {
        bool strict = true;
        for (std::size_t r = 0; r < R; ++r) {
          if (static_cast<int>(r) != best && cap[r] > 1e-12 &&
              p.rate[j][r] >= 0.95 * p.rate[j][static_cast<std::size_t>(best)]) {
            strict = false;
          }
        }
        if (strict) ++pressure[static_cast<std::size_t>(best)];
      }
    }
    return pressure;
  };

  // Best available type for job j: max rate with residual capacity; among
  // near-ties (>= 95% of the best rate), the least contended pool.
  std::vector<int> pressure(R, 0);
  auto best_type = [&](std::size_t j) -> int {
    double best_rate = 0.0;
    for (std::size_t r = 0; r < R; ++r) {
      if (cap[r] > 1e-12) best_rate = std::max(best_rate, p.rate[j][r]);
    }
    if (best_rate <= 0.0) return -1;
    int pick = -1;
    for (std::size_t r = 0; r < R; ++r) {
      if (cap[r] > 1e-12 && p.rate[j][r] >= 0.95 * best_rate) {
        if (pick < 0 || pressure[r] < pressure[static_cast<std::size_t>(pick)]) {
          pick = static_cast<int>(r);
        }
      }
    }
    return pick;
  };

  for (std::size_t guard = 0; guard < J + R + 2; ++guard) {
    pressure = type_pressure();
    // Assign each active job its current drawing type; deactivate jobs with
    // no usable type left.
    std::vector<int> type_of(J, -1);
    bool any_active = false;
    for (std::size_t j = 0; j < J; ++j) {
      if (!active[j]) continue;
      const int r = best_type(j);
      if (r < 0 || budget[j] <= 1e-12) {
        active[j] = false;
        min_final = std::min(min_final, z);
        continue;
      }
      type_of[j] = r;
      any_active = true;
    }
    if (!any_active) break;
    any_ran = true;

    // Largest dz before a budget or a capacity binds.
    double dz = std::numeric_limits<double>::infinity();
    std::vector<double> drain(R, 0.0);  // capacity consumed per unit dz
    for (std::size_t j = 0; j < J; ++j) {
      if (!active[j] || type_of[j] < 0) continue;
      const auto r = static_cast<std::size_t>(type_of[j]);
      const double dy_per_dz = scale_of(p, j) / p.rate[j][r];
      dz = std::min(dz, budget[j] / dy_per_dz);
      drain[r] += p.demand[j] * dy_per_dz;
    }
    for (std::size_t r = 0; r < R; ++r) {
      if (drain[r] > 1e-12) dz = std::min(dz, cap[r] / drain[r]);
    }
    if (!(dz > 0.0) || !std::isfinite(dz)) break;

    // Apply the step.
    for (std::size_t j = 0; j < J; ++j) {
      if (!active[j] || type_of[j] < 0) continue;
      const auto r = static_cast<std::size_t>(type_of[j]);
      const double dy = scale_of(p, j) / p.rate[j][r] * dz;
      sol.y[j][r] += dy;
      budget[j] = std::max(0.0, budget[j] - dy);
      cap[r] = std::max(0.0, cap[r] - p.demand[j] * dy);
    }
    z += dz;
  }

  // Jobs still marked active ended at level z.
  for (std::size_t j = 0; j < J; ++j) {
    if (active[j]) min_final = std::min(min_final, z);
  }
  sol.min_normalized_throughput = any_ran && std::isfinite(min_final) ? min_final : 0.0;
  return sol;
}

MaxMinSolution solve_max_min(const MaxMinProblem& p, const MaxMinOptions& opts,
                             MaxMinContext* ctx) {
  if (static_cast<int>(p.rate.size()) <= opts.lp_job_threshold) {
    MaxMinSolution sol = solve_max_min_lp(p, opts.max_lp_iterations, opts.engine, ctx);
    if (sol.feasible) return sol;
    // LP hit the iteration limit (rare): fall through to the heuristic.
  }
  return solve_max_min_filling(p);
}

namespace {

MaxMinSolution solve_max_sum_lp(const MaxMinProblem& p, int max_iterations, LpEngine engine,
                                MaxMinContext* ctx) {
  refresh_cap_signature(ctx, p);
  const int J = static_cast<int>(p.rate.size());
  const int R = static_cast<int>(p.cap.size());
  MaxMinSolution sol;
  sol.y.assign(static_cast<std::size_t>(J),
               std::vector<double>(static_cast<std::size_t>(R), 0.0));
  if (J == 0) {
    sol.feasible = true;
    return sol;
  }
  const int nv = J * R;
  auto yvar = [R](int j, int r) { return j * R + r; };
  LpProblem lp(nv);
  // Same label scheme as the max-min LP, minus z: vars (job key, type), the
  // per-job time row keyed by the job, capacity rows by -(r+1).
  LpLabels labels;
  labels.var.assign(static_cast<std::size_t>(nv), -1);
  std::vector<SparseEntry> row;
  row.reserve(static_cast<std::size_t>(std::max(J, R)));
  for (int j = 0; j < J; ++j) {
    const double s = scale_of(p, static_cast<std::size_t>(j));
    const std::int64_t k = key_of(p, j);
    row.clear();
    for (int r = 0; r < R; ++r) {
      lp.set_objective(yvar(j, r),
                       p.rate[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] / s);
      labels.var[static_cast<std::size_t>(yvar(j, r))] = k * R + r;
      row.push_back({yvar(j, r), 1.0});
    }
    lp.add_constraint_sparse(row, Relation::kLessEqual, 1.0);
    labels.row.push_back(k);
  }
  for (int r = 0; r < R; ++r) {
    row.clear();
    for (int j = 0; j < J; ++j) {
      row.push_back({yvar(j, r), p.demand[static_cast<std::size_t>(j)]});
    }
    lp.add_constraint_sparse(row, Relation::kLessEqual, p.cap[static_cast<std::size_t>(r)]);
    labels.row.push_back(-(r + 1));
  }
  const LpSolution lsol = solve_dispatch(lp, labels, max_iterations, engine,
                                         ctx != nullptr ? &ctx->max_sum : nullptr);
  if (lsol.status != LpStatus::kOptimal) return sol;
  sol.feasible = true;
  double min_norm = std::numeric_limits<double>::infinity();
  for (int j = 0; j < J; ++j) {
    double norm = 0.0;
    for (int r = 0; r < R; ++r) {
      const double y = std::max(0.0, lsol.x[static_cast<std::size_t>(yvar(j, r))]);
      sol.y[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] = y;
      norm += y * p.rate[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] /
              scale_of(p, static_cast<std::size_t>(j));
    }
    min_norm = std::min(min_norm, norm);
  }
  sol.min_normalized_throughput = std::isfinite(min_norm) ? min_norm : 0.0;
  return sol;
}

MaxMinSolution solve_max_sum_greedy(const MaxMinProblem& p) {
  const std::size_t J = p.rate.size();
  const std::size_t R = p.cap.size();
  MaxMinSolution sol;
  sol.feasible = true;
  sol.y.assign(J, std::vector<double>(R, 0.0));
  if (J == 0) return sol;

  // Value density of one time-unit of (j, r): normalized rate per device.
  struct Cell {
    std::size_t j, r;
    double density;
  };
  std::vector<Cell> cells;
  for (std::size_t j = 0; j < J; ++j) {
    for (std::size_t r = 0; r < R; ++r) {
      if (p.rate[j][r] > 0.0) {
        cells.push_back({j, r, p.rate[j][r] / (scale_of(p, j) * p.demand[j])});
      }
    }
  }
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    if (a.density != b.density) return a.density > b.density;
    return a.j != b.j ? a.j < b.j : a.r < b.r;
  });

  std::vector<double> cap = p.cap;
  std::vector<double> budget(J, 1.0);
  for (const Cell& c : cells) {
    if (budget[c.j] <= 1e-12 || cap[c.r] <= 1e-12) continue;
    const double y = std::min(budget[c.j], cap[c.r] / p.demand[c.j]);
    sol.y[c.j][c.r] += y;
    budget[c.j] -= y;
    cap[c.r] -= y * p.demand[c.j];
  }
  double min_norm = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < J; ++j) {
    double norm = 0.0;
    for (std::size_t r = 0; r < R; ++r) norm += sol.y[j][r] * p.rate[j][r] / scale_of(p, j);
    min_norm = std::min(min_norm, norm);
  }
  sol.min_normalized_throughput = std::isfinite(min_norm) ? min_norm : 0.0;
  return sol;
}

}  // namespace

MaxMinSolution solve_max_sum(const MaxMinProblem& p, const MaxMinOptions& opts,
                             MaxMinContext* ctx) {
  check(p);
  if (static_cast<int>(p.rate.size()) <= opts.lp_job_threshold) {
    MaxMinSolution sol = solve_max_sum_lp(p, opts.max_lp_iterations, opts.engine, ctx);
    if (sol.feasible) return sol;
  }
  return solve_max_sum_greedy(p);
}

}  // namespace hadar::solver
