// Sparse revised simplex with warm-start contexts.
//
// The dense tableau in lp.cpp updates an m x n tableau per pivot; the Gavel
// allocation LPs are ~95% zeros, so this engine keeps the constraint matrix
// in sparse column form and maintains only an explicit basis inverse B^-1
// (m x m), updated per pivot with the product-form (eta) transformation and
// refactorized periodically for numerical health.
//
// Warm start: Gavel re-solves after a single arrival/completion, so
// consecutive LPs share almost all of their basis. `LpContext` remembers the
// optimal basis of the previous solve *by caller-supplied labels* (stable
// across re-builds of the LpProblem), crashes a starting basis from the
// still-present labels, and skips phase 1 entirely when that basis is
// primal-feasible. Any failure — missing labels, singular crash basis,
// infeasible basic point — falls back to the cold two-phase path.
//
// Determinism: warm and cold starts can reach different (equally optimal)
// vertices on degenerate LPs, which would make warm-start observable in
// scheduler output. Two mechanisms converge them:
//   1. a phase-3 canonicalization at optimality minimizes a fixed generic
//      secondary objective over the optimal face (pivots restricted to
//      columns with ~0 phase-2 reduced cost, Bland's rule, so it
//      terminates); with hash-generic weights the face has a unique
//      secondary minimizer, so every pivot path converges to one POINT;
//   2. the solution is extracted from a canonical basis rebuilt from that
//      point's support (positive columns forced in, completed greedily by
//      ascending column index) via a fresh deterministic LU solve, making x
//      a pure function of the LP rather than of the pivot path.
#pragma once

#include <cstdint>
#include <vector>

#include "solver/lp.hpp"

namespace hadar::solver {

/// Stable identities for warm-starting across LpProblem rebuilds. The caller
/// assigns one label per variable and one per constraint row; a label that
/// appears in consecutive problems is treated as "the same" variable/row.
/// Labels must be unique within each vector (variables and rows may reuse
/// the same numeric space — they are matched separately).
struct LpLabels {
  std::vector<std::int64_t> var;  ///< one per variable
  std::vector<std::int64_t> row;  ///< one per constraint
};

/// Counters for tests/bench introspection; cumulative over an LpContext.
struct RevisedStats {
  std::uint64_t cold_solves = 0;     ///< solves that ran the full two-phase path
  std::uint64_t warm_attempts = 0;   ///< solves that had a saved basis to try
  std::uint64_t warm_hits = 0;       ///< warm basis accepted; phase 1 skipped
  std::uint64_t phase1_pivots = 0;
  std::uint64_t phase2_pivots = 0;
  std::uint64_t canonical_pivots = 0;
  std::uint64_t refactorizations = 0;
};

/// Reusable warm-start state. Not thread-safe; use one per solver stream.
class LpContext {
 public:
  /// Warm-capable solve. Tries the basis remembered from the previous
  /// successful solve (matched through `labels`); falls back to a cold
  /// two-phase solve when the basis is unusable. On kOptimal the final basis
  /// is saved for the next call; any other status clears the context.
  LpSolution solve(const LpProblem& lp, const LpLabels& labels,
                   const SimplexOptions& opts = {});

  /// Cold solve that also resets the saved basis (no labels to remember).
  LpSolution solve(const LpProblem& lp, const SimplexOptions& opts = {});

  /// Forgets the saved basis (stats are kept).
  void clear();

  bool has_basis() const { return has_basis_; }
  const RevisedStats& stats() const { return stats_; }

 private:
  bool has_basis_ = false;
  std::vector<std::int64_t> basic_vars_;  ///< sorted labels of basic variables
  std::vector<std::int64_t> basic_rows_;  ///< sorted labels of rows whose slack is basic
  RevisedStats stats_;
};

/// One-shot cold solve with the revised engine (no context, no warm start).
/// Produces the same canonical solution the warm path converges to.
LpSolution solve_revised(const LpProblem& lp, const SimplexOptions& opts = {});

}  // namespace hadar::solver
