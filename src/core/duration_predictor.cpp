#include "core/duration_predictor.hpp"

#include <algorithm>

#include "common/binary.hpp"
#include "core/utility.hpp"

namespace hadar::core {

namespace {
// Outlier clamp for one realized stretch sample: a JCT below ideal is
// estimator noise, and a single starved job must not poison the mean.
constexpr double kStretchLo = 1.0;
constexpr double kStretchHi = 100.0;
}  // namespace

void DurationPredictor::observe(Seconds now, std::span<const sim::JobView> jobs) {
  present_.clear();
  for (const sim::JobView& v : jobs) present_.insert(v.spec->id);

  for (auto it = live_.begin(); it != live_.end();) {
    if (present_.count(it->first) != 0) {
      ++it;
      continue;
    }
    const Tracked& t = it->second;
    if (t.ideal > 0.0 && t.ideal != kInfiniteTime && now > t.arrival) {
      const double sample =
          std::clamp((now - t.arrival) / t.ideal, kStretchLo, kStretchHi);
      sum_[t.cls % kClasses] += sample;
      ++n_[t.cls % kClasses];
    }
    it = live_.erase(it);
  }

  for (const sim::JobView& v : jobs) {
    if (live_.count(v.spec->id) != 0) continue;
    Tracked t;
    t.arrival = v.spec->arrival;
    t.ideal = ideal_total_runtime(v);
    t.cls = static_cast<std::uint8_t>(v.spec->size_class);
    live_.emplace(v.spec->id, t);
  }
}

double DurationPredictor::stretch(workload::SizeClass c) const {
  const std::size_t i = static_cast<std::size_t>(c) % kClasses;
  if (n_[i] > 0) return sum_[i] / static_cast<double>(n_[i]);
  double s = 0.0;
  std::int64_t n = 0;
  for (std::size_t k = 0; k < kClasses; ++k) {
    s += sum_[k];
    n += n_[k];
  }
  return n > 0 ? s / static_cast<double>(n) : 1.0;
}

Seconds DurationPredictor::predict_remaining(const sim::JobView& job) const {
  const Seconds ideal = ideal_remaining_runtime(job);
  if (ideal == kInfiniteTime) return kInfiniteTime;
  return ideal * stretch(job.spec->size_class);
}

std::int64_t DurationPredictor::samples() const {
  std::int64_t n = 0;
  for (std::size_t k = 0; k < kClasses; ++k) n += n_[k];
  return n;
}

void DurationPredictor::reset() {
  live_.clear();
  sum_.fill(0.0);
  n_.fill(0);
}

void DurationPredictor::save(common::BinaryWriter& w) const {
  for (std::size_t k = 0; k < kClasses; ++k) {
    w.f64(sum_[k]);
    w.i64(n_[k]);
  }
  w.u32(static_cast<std::uint32_t>(live_.size()));
  for (const auto& [id, t] : live_) {
    w.i32(id);
    w.f64(t.arrival);
    w.f64(t.ideal);
    w.u8(t.cls);
  }
}

void DurationPredictor::restore(common::BinaryReader& r) {
  reset();
  for (std::size_t k = 0; k < kClasses; ++k) {
    sum_[k] = r.f64();
    n_[k] = r.i64();
  }
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const JobId id = r.i32();
    Tracked t;
    t.arrival = r.f64();
    t.ideal = r.f64();
    t.cls = r.u8();
    live_.emplace(id, t);
  }
}

}  // namespace hadar::core
