// Scenario-diversity policy stages (DESIGN.md §15): deadline-aware
// prioritization and tenant-quota admission as *decorators* over an existing
// stage assembly. Neither stage replaces a policy's own logic — the deadline
// stage re-blends the inner priority order with a predicted-urgency term,
// and the quota stage filters the inner admission's queue by per-tenant
// GPU-hour budgets — so any staged scheduler (Hadar or baseline) gains
// deadlines and quotas with `with_policy()` and zero solver changes. With
// both knobs at their defaults the decorators are never installed and every
// schedule stays bit-identical.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/duration_predictor.hpp"
#include "pipeline/staged_scheduler.hpp"

namespace hadar::core {

/// Knobs for the policy decorators. Defaults disable everything.
struct PolicyConfig {
  /// Weight of the deadline-urgency term in the blended priority score.
  /// 0 disables the DeadlineUtilityStage entirely.
  double deadline_weight = 0.0;
  /// Weight of the inner policy's own order in the blend (the "fairness"
  /// term: it preserves the utility/service order the policy computed).
  double fairness_weight = 1.0;
  /// Per-tenant GPU-hour budget per unit of tenant weight. 0 disables the
  /// TenantQuotaStage entirely.
  double quota_gpu_hours = 0.0;
  /// How hard the budget caps a tenant, in (0, 1]: a tenant is hard-blocked
  /// above quota/strictness GPU-hours (1.0 = blocked right at quota), and
  /// between quota and that cap it competes DRF-style: only the tenant(s)
  /// with the smallest weighted overage stay admitted. <= 0 = no hard cap.
  double quota_strictness = 1.0;
  /// Weight per tenant id (index = tenant); tenants beyond the vector get
  /// weight 1.0. Both the budget and the overage are scaled by the weight.
  std::vector<double> tenant_weights;

  bool deadline_enabled() const { return deadline_weight > 0.0; }
  bool quota_enabled() const { return quota_gpu_hours > 0.0; }
  bool enabled() const { return deadline_enabled() || quota_enabled(); }

  double weight_of(int tenant) const;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;

  /// Reads HADAR_DEADLINE_WEIGHT, HADAR_FAIRNESS_WEIGHT,
  /// HADAR_QUOTA_GPU_HOURS, HADAR_QUOTA_STRICTNESS and HADAR_QUOTA_WEIGHTS
  /// (comma-separated per-tenant weights). Unset variables keep defaults.
  static PolicyConfig from_env();
};

/// Priority decorator: runs the inner stage, then re-orders rs.queue and
/// rs.ranked by fairness_weight * inner_rank_score + deadline_weight *
/// urgency, where urgency is predicted remaining runtime over the time left
/// to the job's deadline (1.0 when overdue, 0 for deadline-free jobs). The
/// predictor learns per-class stretch from completions it watches go by.
/// Ties preserve the inner order, so deadline_weight -> 0 degenerates to
/// the undecorated pipeline.
class DeadlineUtilityStage final : public pipeline::IPriorityStage {
 public:
  DeadlineUtilityStage(std::shared_ptr<pipeline::IPriorityStage> inner, PolicyConfig cfg);

  std::string name() const override { return "policy.deadline"; }
  void prioritize(pipeline::RoundState& rs) override;
  void reset() override;
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

  const DurationPredictor& predictor() const { return predictor_; }

 private:
  double urgency(const sim::JobView& job, Seconds now) const;

  std::shared_ptr<pipeline::IPriorityStage> inner_;
  PolicyConfig cfg_;
  DurationPredictor predictor_;
  // Per-round sort scratch (speed-only).
  std::vector<int> order_;
  std::vector<double> score_;
  std::vector<const sim::JobView*> queue_tmp_;
  std::vector<pipeline::RoundState::Candidate> ranked_tmp_;
};

/// Admission decorator: runs the inner stage, charges each tenant the
/// GPU-seconds its jobs attained since the last round, then filters
/// rs.queue: under-quota tenants pass, tenants past the hard cap
/// (quota/strictness) are blocked, and over-quota tenants in between keep
/// only the minimal weighted-overage tenant(s) — weighted DRF-style surplus
/// sharing. If the filter would leave the round completely empty the
/// DRF-deferred jobs are re-admitted — and with every queued tenant past the
/// hard cap, the minimal-overage capped tenant(s) get in too — so quotas
/// shape sharing but can never idle (or deadlock) the cluster while work
/// exists. Usage is tracked per scheduler instance,
/// so under cell sharding each cell enforces its budget over its own jobs.
class TenantQuotaStage final : public pipeline::IAdmissionStage {
 public:
  TenantQuotaStage(std::shared_ptr<pipeline::IAdmissionStage> inner, PolicyConfig cfg);

  std::string name() const override { return "policy.quota"; }
  void admit(pipeline::RoundState& rs) override;
  void reset() override;
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

  /// GPU-seconds charged to a tenant so far (tests / introspection).
  double usage_gpu_seconds(int tenant) const;

 private:
  void update_usage(const pipeline::RoundState& rs);

  std::shared_ptr<pipeline::IAdmissionStage> inner_;
  PolicyConfig cfg_;
  std::map<JobId, double> last_attained_;  ///< per-job service watermark
  std::map<int, double> usage_s_;          ///< per-tenant GPU-seconds
  // Per-round scratch (speed-only).
  std::vector<const sim::JobView*> keep_;
  std::vector<const sim::JobView*> deferred_;
  std::vector<const sim::JobView*> capped_;
  std::unordered_set<JobId> present_;
};

/// Wraps a staged scheduler's admission/priority slots with the decorators
/// `cfg` enables. Returns `base` unchanged when cfg disables everything;
/// throws std::invalid_argument when `base` is not a StagedScheduler.
sim::SchedulerPtr with_policy(sim::SchedulerPtr base, const PolicyConfig& cfg);

}  // namespace hadar::core
