#include "core/dp_allocation.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <unordered_set>

#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

namespace hadar::core {
namespace {

// One partial decision over the queue prefix. `seq` is the state's position
// in the deterministic exclude-then-include expansion order; it breaks
// payoff ties so pruning is a unique total order, identical at every thread
// count.
struct BeamState {
  cluster::ClusterState::Snapshot usage;
  double payoff = 0.0;
  int jobs = 0;
  std::size_t seq = 0;
  std::vector<std::pair<JobId, cluster::JobAllocation>> chosen;
};

// Outcome of pricing one include branch against one beam state.
struct IncludeEval {
  bool attempted = false;  ///< state had free capacity => find_alloc ran
  std::optional<AllocCandidate> cand;
  cluster::ClusterState::Snapshot usage;  ///< post-allocation snapshot
};

}  // namespace

DpResult dp_allocation(const std::vector<const sim::JobView*>& queue,
                       cluster::ClusterState& state, const PriceBook& prices,
                       const UtilityFunction& utility, Seconds now,
                       const sim::NetworkModel& network,
                       const DpConfig& cfg) {
  if (cfg.beam_width < 1) throw std::invalid_argument("DpConfig: beam_width < 1");
  if (cfg.queue_window < 0) throw std::invalid_argument("DpConfig: queue_window < 0");

  DpResult result;
  const auto base = state.snapshot();
  const cluster::ClusterSpec* spec = &state.spec();

  const int window =
      std::min<int>(cfg.queue_window, static_cast<int>(queue.size()));

  // ---- beam DP over the branching window ----
  std::vector<BeamState> beam;
  beam.push_back(BeamState{base, 0.0, 0, 0, {}});

  for (int idx = 0; idx < window; ++idx) {
    const sim::JobView& job = *queue[static_cast<std::size_t>(idx)];
    obs::ScopedSpan level_span("hadar", "hadar.beam_level", 2);
    if (level_span.active()) {
      level_span.arg("level", static_cast<double>(idx));
      level_span.arg("beam", static_cast<double>(beam.size()));
    }

    // Price the include branch of every beam state concurrently. Each lane
    // works on its own scratch ClusterState, so the search tree never shares
    // mutable cluster state across threads; results land by beam index,
    // which keeps the expansion order — and therefore the final schedule —
    // bit-identical to the serial path. Levels with fewer branches than
    // parallel lanes (the first few of every decision, and most levels of a
    // small cell's solve) skip pool dispatch outright: waking the pool costs
    // more than evaluating the handful of branches in place.
    auto eval_include = [&](std::size_t i) {
      IncludeEval e;
      cluster::ClusterState scratch(spec);
      scratch.restore(beam[i].usage);
      if (scratch.is_full()) return e;
      e.attempted = true;
      e.cand = find_alloc(job, scratch, prices, utility, now, network, cfg.find_alloc);
      if (e.cand && e.cand->payoff > 0.0) {
        scratch.allocate(e.cand->alloc);
        e.usage = scratch.snapshot();
      }
      return e;
    };
    std::vector<IncludeEval> evals;
    if (beam.size() < static_cast<std::size_t>(common::ThreadPool::global().concurrency())) {
      evals.reserve(beam.size());
      for (std::size_t i = 0; i < beam.size(); ++i) evals.push_back(eval_include(i));
    } else {
      evals = common::parallel_map(beam.size(), eval_include);
    }

    std::vector<BeamState> next;
    next.reserve(beam.size() * 2);
    for (std::size_t i = 0; i < beam.size(); ++i) {
      BeamState& bs = beam[i];
      IncludeEval& e = evals[i];
      if (e.attempted) ++result.stats.states_explored;

      // Exclude branch: state unchanged.
      bs.seq = next.size();
      next.push_back(bs);

      // Include branch, if it survived the admission filter (line 30).
      if (!e.attempted || !e.cand || e.cand->payoff <= 0.0) continue;
      BeamState inc;
      inc.usage = std::move(e.usage);
      inc.payoff = next.back().payoff + e.cand->payoff;
      inc.jobs = next.back().jobs + 1;
      inc.seq = next.size();
      inc.chosen = next.back().chosen;
      inc.chosen.emplace_back(job.id(), std::move(e.cand->alloc));
      next.push_back(std::move(inc));
    }

    // Deduplicate identical cluster states, keeping the better payoff
    // (the memoization of Algorithm 2 lines 16-21).
    std::sort(next.begin(), next.end(), [](const BeamState& a, const BeamState& b) {
      if (a.payoff != b.payoff) return a.payoff > b.payoff;
      if (a.jobs != b.jobs) return a.jobs > b.jobs;
      return a.seq < b.seq;
    });
    std::vector<BeamState> dedup;
    std::unordered_set<std::uint64_t> seen;
    for (auto& bs : next) {
      const auto h = cluster::ClusterState::hash(bs.usage);
      if (seen.insert(h).second) {
        dedup.push_back(std::move(bs));
        if (static_cast<int>(dedup.size()) >= cfg.beam_width) break;
      }
    }
    beam = std::move(dedup);
  }

  // Best full-window state (beam is sorted best-first).
  BeamState best = std::move(beam.front());

  // ---- greedy tail beyond the window ----
  state.restore(best.usage);
  for (std::size_t idx = static_cast<std::size_t>(window); idx < queue.size(); ++idx) {
    if (state.is_full()) break;
    const sim::JobView& job = *queue[idx];
    const auto cand =
        find_alloc(job, state, prices, utility, now, network, cfg.find_alloc);
    ++result.stats.greedy_tail_jobs;
    if (!cand || cand->payoff <= 0.0) continue;
    state.allocate(cand->alloc);
    best.payoff += cand->payoff;
    best.jobs += 1;
    best.chosen.emplace_back(job.id(), cand->alloc);
  }

  state.restore(base);  // leave caller's state untouched

  result.total_payoff = best.payoff;
  result.jobs_scheduled = best.jobs;
  for (auto& [id, alloc] : best.chosen) result.allocs.emplace(id, std::move(alloc));
  return result;
}

}  // namespace hadar::core
