#include "core/dp_allocation.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <unordered_set>

#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

namespace hadar::core {
namespace {

// One partial decision over the queue prefix. `seq` is the state's position
// in the deterministic exclude-then-include expansion order; it breaks
// payoff ties so pruning is a unique total order, identical at every thread
// count. The cluster usage of the state is not stored — `chosen` IS the
// delta from the caller's base state, replayed into a per-thread scratch on
// demand; `hash`/`free_left` carry the O(1) summaries (dedup key, fullness)
// that used to require materializing a snapshot per branch.
struct BeamState {
  double payoff = 0.0;
  int jobs = 0;
  std::size_t seq = 0;
  std::uint64_t hash = 0;  ///< ClusterState hash of base + chosen
  int free_left = 0;       ///< free devices remaining under base + chosen
  std::vector<std::pair<JobId, cluster::JobAllocation>> chosen;
};

// Outcome of pricing one include branch against one beam state.
struct IncludeEval {
  bool attempted = false;  ///< state had free capacity => find_alloc ran
  std::optional<AllocCandidate> cand;
  std::uint64_t hash = 0;  ///< post-allocation state hash
  int free_left = 0;       ///< post-allocation free total
};

// Monotonic id per dp_allocation() call, used to stamp per-thread scratch:
// a lane resyncs its scratch state to the caller's base exactly when it is
// working for a different call than last time (covers interleaved evals of
// nested solves — sharded cells dispatching onto the shared pool).
std::atomic<std::uint64_t> g_dp_call{0};

// Per-thread scratch ClusterState for include-branch evaluation. Reusing it
// across beam levels and calls (copy assignment recycles its buffers)
// removes the state construction + full restore() that used to run once per
// branch; the undo log rolls each eval back to base in O(touched cells).
struct DpScratch {
  std::uint64_t generation = 0;
  std::optional<cluster::ClusterState> state;
};

DpScratch& dp_scratch() {
  static thread_local DpScratch s;
  return s;
}

}  // namespace

DpResult dp_allocation(std::span<const sim::JobView* const> queue,
                       cluster::ClusterState& state, const PriceBook& prices,
                       const UtilityFunction& utility, Seconds now,
                       const sim::NetworkModel& network,
                       const DpConfig& cfg) {
  if (cfg.beam_width < 1) throw std::invalid_argument("DpConfig: beam_width < 1");
  if (cfg.queue_window < 0) throw std::invalid_argument("DpConfig: queue_window < 0");

  DpResult result;
  const std::uint64_t call_gen = g_dp_call.fetch_add(1) + 1;

  const int window =
      std::min<int>(cfg.queue_window, static_cast<int>(queue.size()));

  // ---- beam DP over the branching window ----
  std::vector<BeamState> beam;
  beam.push_back(BeamState{0.0, 0, 0, state.hash(), state.total_free(), {}});

  for (int idx = 0; idx < window; ++idx) {
    const sim::JobView& job = *queue[static_cast<std::size_t>(idx)];
    obs::ScopedSpan level_span("hadar", "hadar.beam_level", 2);
    if (level_span.active()) {
      level_span.arg("level", static_cast<double>(idx));
      level_span.arg("beam", static_cast<double>(beam.size()));
    }

    // Price the include branch of every beam state concurrently. Each lane
    // works on its own scratch ClusterState, so the search tree never shares
    // mutable cluster state across threads; results land by beam index,
    // which keeps the expansion order — and therefore the final schedule —
    // bit-identical to the serial path. Levels with fewer branches than
    // parallel lanes (the first few of every decision, and most levels of a
    // small cell's solve) skip pool dispatch outright: waking the pool costs
    // more than evaluating the handful of branches in place.
    auto eval_include = [&](std::size_t i) {
      IncludeEval e;
      const BeamState& bs = beam[i];
      if (bs.free_left == 0) return e;  // full state: include cannot fit
      e.attempted = true;

      DpScratch& ds = dp_scratch();
      if (ds.generation != call_gen) {
        ds.state = state;                  // copy of the caller's base usage
        ds.state->set_undo_enabled(true);  // also clears any stale log
        ds.generation = call_gen;
      }
      cluster::ClusterState& scratch = *ds.state;
      const auto m = scratch.mark();
      // Replay this branch's decisions; they were feasible when chosen on an
      // identical usage trajectory, so the unchecked path is safe.
      for (const auto& [id, alloc] : bs.chosen) scratch.allocate_unchecked(alloc);
      e.cand = find_alloc(job, scratch, prices, utility, now, network, cfg.find_alloc);
      if (e.cand && e.cand->payoff > 0.0) {
        scratch.allocate_unchecked(e.cand->alloc);
        e.hash = scratch.hash();
        e.free_left = scratch.total_free();
      }
      scratch.rollback(m);  // back to base
      return e;
    };
    std::vector<IncludeEval> evals;
    if (beam.size() < static_cast<std::size_t>(common::ThreadPool::global().concurrency())) {
      evals.reserve(beam.size());
      for (std::size_t i = 0; i < beam.size(); ++i) evals.push_back(eval_include(i));
    } else {
      evals = common::parallel_map(beam.size(), eval_include);
    }

    std::vector<BeamState> next;
    next.reserve(beam.size() * 2);
    for (std::size_t i = 0; i < beam.size(); ++i) {
      BeamState& bs = beam[i];
      IncludeEval& e = evals[i];
      if (e.attempted) ++result.stats.states_explored;

      // Exclude branch: state unchanged.
      bs.seq = next.size();
      next.push_back(std::move(bs));

      // Include branch, if it survived the admission filter (line 30).
      if (!e.attempted || !e.cand || e.cand->payoff <= 0.0) continue;
      BeamState inc;
      inc.payoff = next.back().payoff + e.cand->payoff;
      inc.jobs = next.back().jobs + 1;
      inc.seq = next.size();
      inc.hash = e.hash;
      inc.free_left = e.free_left;
      inc.chosen = next.back().chosen;
      inc.chosen.emplace_back(job.id(), std::move(e.cand->alloc));
      next.push_back(std::move(inc));
    }

    // Deduplicate identical cluster states, keeping the better payoff
    // (the memoization of Algorithm 2 lines 16-21). The key is the
    // incrementally maintained hash captured when the branch was built.
    std::sort(next.begin(), next.end(), [](const BeamState& a, const BeamState& b) {
      if (a.payoff != b.payoff) return a.payoff > b.payoff;
      if (a.jobs != b.jobs) return a.jobs > b.jobs;
      return a.seq < b.seq;
    });
    std::vector<BeamState> dedup;
    std::unordered_set<std::uint64_t> seen;
    for (auto& bs : next) {
      if (seen.insert(bs.hash).second) {
        dedup.push_back(std::move(bs));
        if (static_cast<int>(dedup.size()) >= cfg.beam_width) break;
      }
    }
    beam = std::move(dedup);
  }

  // Best full-window state (beam is sorted best-first).
  BeamState best = std::move(beam.front());

  // ---- greedy tail beyond the window ----
  // The winning branch is applied through the undo log and rolled back at
  // the end, so the caller's state (and any log it already carries) is left
  // untouched without the two full-vector restores this used to cost.
  const bool undo_was = state.undo_enabled();
  if (!undo_was) state.set_undo_enabled(true);
  const auto tail_mark = state.mark();
  for (const auto& [id, alloc] : best.chosen) state.allocate_unchecked(alloc);
  for (std::size_t idx = static_cast<std::size_t>(window); idx < queue.size(); ++idx) {
    if (state.is_full()) break;
    const sim::JobView& job = *queue[idx];
    const auto cand =
        find_alloc(job, state, prices, utility, now, network, cfg.find_alloc);
    ++result.stats.greedy_tail_jobs;
    if (!cand || cand->payoff <= 0.0) continue;
    state.allocate(cand->alloc);
    best.payoff += cand->payoff;
    best.jobs += 1;
    best.chosen.emplace_back(job.id(), cand->alloc);
  }
  state.rollback(tail_mark);  // leave caller's state untouched
  if (!undo_was) state.set_undo_enabled(false);

  result.total_payoff = best.payoff;
  result.jobs_scheduled = best.jobs;
  for (auto& [id, alloc] : best.chosen) result.allocs.emplace(id, std::move(alloc));
  return result;
}

}  // namespace hadar::core
