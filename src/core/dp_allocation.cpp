#include "core/dp_allocation.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace hadar::core {
namespace {

// One partial decision over the queue prefix.
struct BeamState {
  cluster::ClusterState::Snapshot usage;
  double payoff = 0.0;
  int jobs = 0;
  std::vector<std::pair<JobId, cluster::JobAllocation>> chosen;
};

}  // namespace

DpResult dp_allocation(const std::vector<const sim::JobView*>& queue,
                       cluster::ClusterState& state, const PriceBook& prices,
                       const UtilityFunction& utility, Seconds now,
                       const sim::NetworkModel& network,
                       const DpConfig& cfg) {
  if (cfg.beam_width < 1) throw std::invalid_argument("DpConfig: beam_width < 1");
  if (cfg.queue_window < 0) throw std::invalid_argument("DpConfig: queue_window < 0");

  DpResult result;
  const auto base = state.snapshot();

  const int window =
      std::min<int>(cfg.queue_window, static_cast<int>(queue.size()));

  // ---- beam DP over the branching window ----
  std::vector<BeamState> beam;
  beam.push_back(BeamState{base, 0.0, 0, {}});

  for (int idx = 0; idx < window; ++idx) {
    const sim::JobView& job = *queue[static_cast<std::size_t>(idx)];
    std::vector<BeamState> next;
    next.reserve(beam.size() * 2);
    for (auto& bs : beam) {
      // Exclude branch: state unchanged.
      next.push_back(bs);

      // Include branch: price the job against this partial state.
      state.restore(bs.usage);
      if (state.is_full()) continue;
      const auto cand =
          find_alloc(job, state, prices, utility, now, network, cfg.find_alloc);
      ++result.stats.states_explored;
      if (!cand || cand->payoff <= 0.0) continue;  // admission filter (line 30)
      state.allocate(cand->alloc);
      BeamState inc;
      inc.usage = state.snapshot();
      inc.payoff = bs.payoff + cand->payoff;
      inc.jobs = bs.jobs + 1;
      inc.chosen = bs.chosen;
      inc.chosen.emplace_back(job.id(), cand->alloc);
      next.push_back(std::move(inc));
    }

    // Deduplicate identical cluster states, keeping the better payoff
    // (the memoization of Algorithm 2 lines 16-21).
    std::sort(next.begin(), next.end(), [](const BeamState& a, const BeamState& b) {
      if (a.payoff != b.payoff) return a.payoff > b.payoff;
      return a.jobs > b.jobs;
    });
    std::vector<BeamState> dedup;
    std::unordered_set<std::uint64_t> seen;
    for (auto& bs : next) {
      state.restore(bs.usage);
      const auto h = state.hash();
      if (seen.insert(h).second) {
        dedup.push_back(std::move(bs));
        if (static_cast<int>(dedup.size()) >= cfg.beam_width) break;
      }
    }
    beam = std::move(dedup);
  }

  // Best full-window state (beam is sorted best-first).
  BeamState best = std::move(beam.front());

  // ---- greedy tail beyond the window ----
  state.restore(best.usage);
  for (std::size_t idx = static_cast<std::size_t>(window); idx < queue.size(); ++idx) {
    if (state.is_full()) break;
    const sim::JobView& job = *queue[idx];
    const auto cand =
        find_alloc(job, state, prices, utility, now, network, cfg.find_alloc);
    ++result.stats.greedy_tail_jobs;
    if (!cand || cand->payoff <= 0.0) continue;
    state.allocate(cand->alloc);
    best.payoff += cand->payoff;
    best.jobs += 1;
    best.chosen.emplace_back(job.id(), cand->alloc);
  }

  state.restore(base);  // leave caller's state untouched

  result.total_payoff = best.payoff;
  result.jobs_scheduled = best.jobs;
  for (auto& [id, alloc] : best.chosen) result.allocs.emplace(id, std::move(alloc));
  return result;
}

}  // namespace hadar::core
