// Throughput estimator (Fig. 2): when jobs arrive without trusted
// performance numbers, Hadar profiles them during their first rounds of
// execution. Each round the estimator compares a job's realized progress
// against the round length, attributes the measured per-worker rate to the
// placement's bottleneck type, and blends it into its estimate (EWMA).
// Types never profiled are extrapolated from profiled ones via the type
// registry's nominal relative speeds.
#pragma once

#include <map>
#include <vector>

#include "cluster/gpu_type.hpp"
#include "sim/scheduler.hpp"

namespace hadar::common {
class BinaryWriter;
class BinaryReader;
}  // namespace hadar::common

namespace hadar::core {

struct EstimatorConfig {
  double blend = 0.5;        ///< EWMA weight of the newest measurement
  double initial_rate = 1.0; ///< prior per-worker rate on the slowest type
};

class ThroughputEstimator {
 public:
  ThroughputEstimator() = default;
  ThroughputEstimator(const cluster::GpuTypeRegistry* registry, EstimatorConfig cfg = {});

  void reset();

  /// Late-binds the registry/config without touching accumulated tracks, so
  /// a default-constructed (or state-restored) estimator can attach to the
  /// cluster on the scheduler's first round.
  void bind(const cluster::GpuTypeRegistry* registry, EstimatorConfig cfg);

  /// Bit-exact persistence of the measurement tracks (the registry binding
  /// is re-established via bind(); it is a pointer, not state).
  void save(common::BinaryWriter& w) const;
  void restore(common::BinaryReader& r);

  /// Ingests the new round's context: measures the realized rate of every
  /// job that ran last round and updates its per-type estimates.
  void observe(const sim::SchedulerContext& ctx);

  /// Estimated per-worker rates for `job` (profiled measurements where
  /// available, registry-scaled extrapolations elsewhere).
  std::vector<double> estimate(const sim::JobView& job) const;

  /// True once at least one type of this job has a real measurement.
  bool profiled(JobId id) const;

 private:
  struct Track {
    double last_iterations = 0.0;
    cluster::JobAllocation last_alloc;
    std::vector<double> measured;   // 0 = no measurement yet
  };

  const cluster::GpuTypeRegistry* registry_ = nullptr;
  EstimatorConfig cfg_;
  std::map<JobId, Track> tracks_;
};

}  // namespace hadar::core
