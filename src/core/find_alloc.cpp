#include "core/find_alloc.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

#include "obs/trace.hpp"

namespace hadar::core {
namespace {

// Evaluates a concrete placement into a candidate (cost, utility, payoff).
AllocCandidate evaluate(const sim::JobView& job, cluster::JobAllocation alloc,
                        const cluster::ClusterState& state, const PriceBook& prices,
                        const UtilityFunction& utility, Seconds now,
                        const sim::NetworkModel& network,
                        const FindAllocConfig& cfg) {
  AllocCandidate cand;
  cand.alloc = std::move(alloc);

  const int workers = cand.alloc.total_workers();
  const int extra_nodes = cand.alloc.nodes_used() - 1;
  const double x = network.effective_rate(cand.alloc.bottleneck_throughput(job.throughput),
                                          cand.alloc.nodes_used(), job.spec->model_size_mb);

  const double rate = x * workers;
  cand.est_duration = rate > 0.0 ? job.remaining_iterations() / rate : kInfiniteTime;
  cand.utility = rate > 0.0 ? utility(job, cand.est_duration, now) : 0.0;

  cand.cost = prices.allocation_cost(state, cand.alloc);
  if (extra_nodes > 0 && workers > 0) {
    // Explicit communication surcharge (Algorithm 2 line 27): a fraction of
    // the mean per-device price, per extra node spanned, per worker.
    const double mean_price = cand.cost / workers;
    cand.cost += cfg.comm_cost_weight * mean_price * extra_nodes * workers;
  }
  cand.payoff = cand.utility - cand.cost;
  return cand;
}

// One free device pool a job could draw from. `price` caches the marginal
// Eq. 5 price of (node, type) once per find_alloc call — the pools repeat
// across bottleneck levels, so re-querying the PriceBook per candidate would
// redo the same exponentials dozens of times per job.
struct Slot {
  NodeId node;
  GpuTypeId type;
  int free;
  double rate;   // X_j^r
  double price;  // marginal price of the first device in the pool
};

// Fill order for a gang draw. The bottleneck throughput is fixed by the
// slowest eligible type, so the efficient fill draws the SLOWEST types
// first — faster devices add nothing to this gang and are left free for
// jobs that can actually exploit them. Within a rate, denser pools come
// first (fewer nodes spanned), then cheaper, then stable ids. Distinct
// slots never compare equal ((node, type) is unique), so this is a strict
// total order and every pool filtered from a fill-ordered list is itself
// fill-ordered — fill() never needs to re-sort.
bool fill_order(const Slot& a, const Slot& b) {
  if (a.rate != b.rate) return a.rate < b.rate;    // slowest eligible first
  if (a.free != b.free) return a.free > b.free;    // consolidate
  if (a.price != b.price) return a.price < b.price;
  return a.node != b.node ? a.node < b.node : a.type < b.type;
}

// Fill a gang of `workers` from `pool`, which must already be in fill
// order. Type diversity is tracked with a bitmask (types are small dense
// ids); the rare registry with >64 types falls back to a linear scan.
std::optional<cluster::JobAllocation> fill(std::span<const Slot* const> pool,
                                           int workers, bool allow_mixed_types,
                                           std::vector<cluster::TaskPlacement>& scratch) {
  int total = 0;
  for (const Slot* s : pool) total += s->free;
  if (total < workers) return std::nullopt;

  scratch.clear();
  int need = workers;
  std::uint64_t type_mask = 0;
  int distinct_types = 0;
  for (const Slot* s : pool) {
    if (need == 0) break;
    const int take = std::min(need, s->free);
    scratch.push_back({s->node, s->type, take});
    need -= take;
    if (s->type < 64) {
      const std::uint64_t bit = std::uint64_t{1} << s->type;
      if ((type_mask & bit) == 0) {
        type_mask |= bit;
        ++distinct_types;
      }
    } else {
      bool seen = false;
      for (std::size_t i = 0; i + 1 < scratch.size(); ++i) {
        if (scratch[i].type == s->type) { seen = true; break; }
      }
      if (!seen) ++distinct_types;
    }
  }
  if (need != 0) return std::nullopt;
  if (!allow_mixed_types && distinct_types > 1) return std::nullopt;
  return cluster::JobAllocation(scratch);
}

void consider(std::optional<AllocCandidate>& best, AllocCandidate cand) {
  if (!best || cand.payoff > best->payoff + 1e-12 ||
      (cand.payoff > best->payoff - 1e-12 && cand.cost < best->cost)) {
    best = std::move(cand);
  }
}

}  // namespace

std::optional<AllocCandidate> find_alloc(const sim::JobView& job,
                                         const cluster::ClusterState& state,
                                         const PriceBook& prices,
                                         const UtilityFunction& utility, Seconds now,
                                         const sim::NetworkModel& network,
                                         const FindAllocConfig& cfg) {
  const cluster::ClusterSpec& spec = state.spec();
  const int H = spec.num_nodes();
  const int R = spec.num_types();
  const int W = job.spec->num_workers;

  // Free pools usable by this job, gathered in one scan and sorted into
  // fill order once. Every candidate pool below is a rate-threshold suffix
  // of these lists (rate is the primary sort key), so the per-threshold
  // work drops from "scan + sort all slots" to a lower_bound.
  std::vector<Slot> slots;
  slots.reserve(static_cast<std::size_t>(H) * static_cast<std::size_t>(R));
  for (NodeId h = 0; h < H; ++h) {
    if (!state.node_available(h)) continue;  // dead nodes host no slots
    for (GpuTypeId r = 0; r < R; ++r) {
      const int free = state.free_count(h, r);
      const double rate = job.throughput_on(r);
      if (free > 0 && rate > 0.0) {
        slots.push_back(Slot{h, r, free, rate, prices.marginal_price(state, h, r)});
      }
    }
  }
  if (slots.empty()) return std::nullopt;
  std::sort(slots.begin(), slots.end(), fill_order);

  std::vector<const Slot*> all;
  all.reserve(slots.size());
  std::vector<std::vector<const Slot*>> by_node(static_cast<std::size_t>(H));
  for (const auto& s : slots) {
    all.push_back(&s);
    by_node[static_cast<std::size_t>(s.node)].push_back(&s);
  }

  // Distinct usable rates, fastest first: each defines a bottleneck level k
  // (Algorithm 2 line 23's descending-throughput sweep).
  std::vector<double> thresholds;
  for (GpuTypeId r = 0; r < R; ++r) {
    const double x = job.throughput_on(r);
    if (x > 0.0) thresholds.push_back(x);
  }
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()), thresholds.end());

  std::optional<AllocCandidate> best;
  std::vector<cluster::TaskPlacement> scratch;
  scratch.reserve(static_cast<std::size_t>(R));
  // Candidates are tallied locally and published once per call: find_alloc
  // runs inside parallel beam lanes, so per-candidate registry traffic would
  // serialize the lanes on the metrics mutex.
  std::uint64_t candidates_scanned = 0;
  auto try_pool = [&](std::span<const Slot* const> pool) {
    ++candidates_scanned;
    auto alloc = fill(pool, W, cfg.allow_mixed_types, scratch);
    if (!alloc) return;
    consider(best, evaluate(job, std::move(*alloc), state, prices, utility, now,
                            network, cfg));
  };
  // Rate-ascending lists make "rate >= threshold" a suffix.
  auto suffix_from = [](const std::vector<const Slot*>& list, double threshold) {
    const auto it = std::lower_bound(
        list.begin(), list.end(), threshold,
        [](const Slot* s, double t) { return s->rate < t; });
    return std::span<const Slot* const>(
        list.data() + (it - list.begin()),
        static_cast<std::size_t>(list.end() - it));
  };

  // ---- consolidated candidates: all W workers on one node (line 24),
  // one candidate per (node, bottleneck level) ----
  for (NodeId h = 0; h < H; ++h) {
    const auto& node_slots = by_node[static_cast<std::size_t>(h)];
    if (node_slots.empty()) continue;
    for (double threshold : thresholds) {
      const auto pool = suffix_from(node_slots, threshold);
      if (!pool.empty()) try_pool(pool);
    }
  }

  // ---- cluster-wide candidates per bottleneck level (line 25) ----
  if (cfg.allow_multi_node) {
    for (double threshold : thresholds) {
      const auto pool = suffix_from(all, threshold);
      if (!pool.empty()) try_pool(pool);
    }
  }

  // ---- the job's current placement, if it still fits ----
  if (!job.current_allocation.empty() && state.can_allocate(job.current_allocation)) {
    ++candidates_scanned;
    consider(best, evaluate(job, job.current_allocation, state, prices, utility, now,
                            network, cfg));
  }

  if (obs::tracing()) {
    obs::count("find_alloc.calls");
    obs::count("find_alloc.candidates_scanned", candidates_scanned);
  }
  return best;
}

}  // namespace hadar::core
