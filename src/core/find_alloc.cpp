#include "core/find_alloc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hadar::core {
namespace {

// Evaluates a concrete placement into a candidate (cost, utility, payoff).
AllocCandidate evaluate(const sim::JobView& job, cluster::JobAllocation alloc,
                        const cluster::ClusterState& state, const PriceBook& prices,
                        const UtilityFunction& utility, Seconds now,
                        const sim::NetworkModel& network,
                        const FindAllocConfig& cfg) {
  AllocCandidate cand;
  cand.alloc = std::move(alloc);

  const int workers = cand.alloc.total_workers();
  const int extra_nodes = cand.alloc.nodes_used() - 1;
  const double x = network.effective_rate(cand.alloc.bottleneck_throughput(job.throughput),
                                          cand.alloc.nodes_used(), job.spec->model_size_mb);

  const double rate = x * workers;
  cand.est_duration = rate > 0.0 ? job.remaining_iterations() / rate : kInfiniteTime;
  cand.utility = rate > 0.0 ? utility(job, cand.est_duration, now) : 0.0;

  cand.cost = prices.allocation_cost(state, cand.alloc);
  if (extra_nodes > 0 && workers > 0) {
    // Explicit communication surcharge (Algorithm 2 line 27): a fraction of
    // the mean per-device price, per extra node spanned, per worker.
    const double mean_price = cand.cost / workers;
    cand.cost += cfg.comm_cost_weight * mean_price * extra_nodes * workers;
  }
  cand.payoff = cand.utility - cand.cost;
  return cand;
}

// One free device pool a job could draw from.
struct Slot {
  NodeId node;
  GpuTypeId type;
  int free;
  double rate;   // X_j^r
  double price;  // marginal price of the first device in the pool
};

// Fill a gang of `workers` from `pool`. The bottleneck throughput is fixed
// by the slowest eligible type, so the efficient fill draws the SLOWEST
// types first — faster devices add nothing to this gang and are left free
// for jobs that can actually exploit them. Within a rate, denser pools come
// first (fewer nodes spanned), then cheaper, then stable ids.
std::optional<cluster::JobAllocation> fill(std::vector<const Slot*> pool, int workers,
                                           bool allow_mixed_types) {
  int total = 0;
  for (const Slot* s : pool) total += s->free;
  if (total < workers) return std::nullopt;

  std::sort(pool.begin(), pool.end(), [](const Slot* a, const Slot* b) {
    if (a->rate != b->rate) return a->rate < b->rate;  // slowest eligible first
    if (a->free != b->free) return a->free > b->free;  // consolidate
    if (a->price != b->price) return a->price < b->price;
    return a->node != b->node ? a->node < b->node : a->type < b->type;
  });

  std::vector<cluster::TaskPlacement> pl;
  int need = workers;
  std::vector<GpuTypeId> types_seen;
  for (const Slot* s : pool) {
    if (need == 0) break;
    const int take = std::min(need, s->free);
    pl.push_back({s->node, s->type, take});
    need -= take;
    if (std::find(types_seen.begin(), types_seen.end(), s->type) == types_seen.end()) {
      types_seen.push_back(s->type);
    }
  }
  if (need != 0) return std::nullopt;
  if (!allow_mixed_types && types_seen.size() > 1) return std::nullopt;
  return cluster::JobAllocation(std::move(pl));
}

void consider(std::optional<AllocCandidate>& best, AllocCandidate cand) {
  if (!best || cand.payoff > best->payoff + 1e-12 ||
      (cand.payoff > best->payoff - 1e-12 && cand.cost < best->cost)) {
    best = std::move(cand);
  }
}

}  // namespace

std::optional<AllocCandidate> find_alloc(const sim::JobView& job,
                                         const cluster::ClusterState& state,
                                         const PriceBook& prices,
                                         const UtilityFunction& utility, Seconds now,
                                         const sim::NetworkModel& network,
                                         const FindAllocConfig& cfg) {
  const cluster::ClusterSpec& spec = state.spec();
  const int H = spec.num_nodes();
  const int R = spec.num_types();
  const int W = job.spec->num_workers;

  // Free pools usable by this job.
  std::vector<Slot> slots;
  slots.reserve(static_cast<std::size_t>(H) * static_cast<std::size_t>(R));
  for (NodeId h = 0; h < H; ++h) {
    for (GpuTypeId r = 0; r < R; ++r) {
      const int free = state.free_count(h, r);
      const double rate = job.throughput_on(r);
      if (free > 0 && rate > 0.0) {
        slots.push_back(Slot{h, r, free, rate, prices.marginal_price(state, h, r)});
      }
    }
  }
  if (slots.empty()) return std::nullopt;

  // Distinct usable rates, fastest first: each defines a bottleneck level k
  // (Algorithm 2 line 23's descending-throughput sweep).
  std::vector<double> thresholds;
  for (GpuTypeId r = 0; r < R; ++r) {
    const double x = job.throughput_on(r);
    if (x > 0.0) thresholds.push_back(x);
  }
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()), thresholds.end());

  std::optional<AllocCandidate> best;
  auto try_pool = [&](const std::vector<const Slot*>& pool) {
    auto alloc = fill(pool, W, cfg.allow_mixed_types);
    if (!alloc) return;
    consider(best, evaluate(job, std::move(*alloc), state, prices, utility, now,
                            network, cfg));
  };

  // ---- consolidated candidates: all W workers on one node (line 24),
  // one candidate per (node, bottleneck level) ----
  for (NodeId h = 0; h < H; ++h) {
    for (double threshold : thresholds) {
      std::vector<const Slot*> pool;
      for (const auto& s : slots) {
        if (s.node == h && s.rate >= threshold) pool.push_back(&s);
      }
      if (!pool.empty()) try_pool(pool);
    }
  }

  // ---- cluster-wide candidates per bottleneck level (line 25) ----
  if (cfg.allow_multi_node) {
    for (double threshold : thresholds) {
      std::vector<const Slot*> pool;
      for (const auto& s : slots) {
        if (s.rate >= threshold) pool.push_back(&s);
      }
      if (!pool.empty()) try_pool(pool);
    }
  }

  // ---- the job's current placement, if it still fits ----
  if (!job.current_allocation.empty() && state.can_allocate(job.current_allocation)) {
    consider(best, evaluate(job, job.current_allocation, state, prices, utility, now,
                            network, cfg));
  }

  return best;
}

}  // namespace hadar::core
