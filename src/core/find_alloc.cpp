#include "core/find_alloc.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "obs/trace.hpp"

namespace hadar::core {
namespace {

// One free device pool a job could draw from. `price` caches the marginal
// Eq. 5 price of (node, type) once per find_alloc call — the pools repeat
// across bottleneck levels, so re-querying the PriceBook per candidate would
// redo the same exponentials dozens of times per job.
struct Slot {
  NodeId node;
  GpuTypeId type;
  int free;
  double rate;   // X_j^r
  double price;  // marginal price of the first device in the pool
};

// Fill order for a gang draw. The bottleneck throughput is fixed by the
// slowest eligible type, so the efficient fill draws the SLOWEST types
// first — faster devices add nothing to this gang and are left free for
// jobs that can actually exploit them. Within a rate, denser pools come
// first (fewer nodes spanned), then cheaper, then stable ids. Distinct
// slots never compare equal ((node, type) is unique), so this is a strict
// total order and every pool filtered from a fill-ordered list is itself
// fill-ordered — fill() never needs to re-sort.
bool fill_order(const Slot& a, const Slot& b) {
  if (a.rate != b.rate) return a.rate < b.rate;    // slowest eligible first
  if (a.free != b.free) return a.free > b.free;    // consolidate
  if (a.price != b.price) return a.price < b.price;
  return a.node != b.node ? a.node < b.node : a.type < b.type;
}

// Fill a gang of `workers` from `pool`, which must already be in fill
// order; `total` is the pool's precomputed free sum (suffix tables), the
// same value the previous implementation rescanned per candidate. Type
// diversity is tracked with a bitmask (types are small dense ids); the rare
// registry with >64 types falls back to a linear scan. On success the
// placements are left in `scratch` in fill order.
bool fill(std::span<const Slot* const> pool, int workers, int total,
          bool allow_mixed_types, std::vector<cluster::TaskPlacement>& scratch) {
  if (total < workers) return false;

  scratch.clear();
  int need = workers;
  std::uint64_t type_mask = 0;
  int distinct_types = 0;
  for (const Slot* s : pool) {
    if (need == 0) break;
    const int take = std::min(need, s->free);
    scratch.push_back({s->node, s->type, take});
    need -= take;
    if (s->type < 64) {
      const std::uint64_t bit = std::uint64_t{1} << s->type;
      if ((type_mask & bit) == 0) {
        type_mask |= bit;
        ++distinct_types;
      }
    } else {
      bool seen = false;
      for (std::size_t i = 0; i + 1 < scratch.size(); ++i) {
        if (scratch[i].type == s->type) { seen = true; break; }
      }
      if (!seen) ++distinct_types;
    }
  }
  if (need != 0) return false;
  if (!allow_mixed_types && distinct_types > 1) return false;
  return true;
}

// Scalars of one evaluated candidate (the JobAllocation itself is only
// materialized for the winner, at the end of the call).
struct EvalOut {
  double cost = 0.0;
  double utility = 0.0;
  double payoff = 0.0;
  Seconds est_duration = 0.0;
};

// Evaluates a normalized placement span into (cost, utility, payoff).
// Replicates the arithmetic previously run on a constructed JobAllocation
// bit for bit: workers/nodes_used/bottleneck from the same normalized
// order, cost summed in the same order, identical surcharge expression.
EvalOut evaluate_span(const sim::JobView& job,
                      std::span<const cluster::TaskPlacement> placements,
                      const cluster::ClusterState& state, const PriceBook& prices,
                      PriceCache& cache, const UtilityFunction& utility, Seconds now,
                      const sim::NetworkModel& network, const FindAllocConfig& cfg) {
  int workers = 0;
  int nodes_used = 0;
  double bottleneck = std::numeric_limits<double>::infinity();
  const auto& xs = job.throughput;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const auto& p = placements[i];
    workers += p.count;
    if (i == 0 || p.node != placements[i - 1].node) ++nodes_used;
    const auto r = static_cast<std::size_t>(p.type);
    bottleneck = std::min(bottleneck, r < xs.size() ? xs[r] : 0.0);
  }
  if (placements.empty()) bottleneck = 0.0;

  const int extra_nodes = nodes_used - 1;
  const double x = network.effective_rate(bottleneck, nodes_used, job.spec->model_size_mb);

  const double rate = x * workers;
  EvalOut out;
  out.est_duration = rate > 0.0 ? job.remaining_iterations() / rate : kInfiniteTime;
  out.utility = rate > 0.0 ? utility(job, out.est_duration, now) : 0.0;

  out.cost = prices.allocation_cost(state, placements, &cache);
  if (extra_nodes > 0 && workers > 0) {
    // Explicit communication surcharge (Algorithm 2 line 27): a fraction of
    // the mean per-device price, per extra node spanned, per worker.
    const double mean_price = out.cost / workers;
    out.cost += cfg.comm_cost_weight * mean_price * extra_nodes * workers;
  }
  out.payoff = out.utility - out.cost;
  return out;
}

// Per-thread scratch reused across calls: the hot loop (one call per job per
// beam branch) allocates nothing once the vectors reach steady-state size.
struct FaScratch {
  std::vector<Slot> slots;
  std::vector<const Slot*> all;            // slots in fill order
  std::vector<int> all_suffix_free;        // [i] = free in all[i..N), [N] = 0
  std::vector<std::uint32_t> node_start;   // CSR offsets into by_node_flat
  std::vector<std::uint32_t> node_cursor;  // build-time fill cursors
  std::vector<const Slot*> by_node_flat;   // per-node lists, each fill-ordered
  std::vector<int> node_suffix_free;       // [j] = free from j to its node's end
  std::vector<double> thresholds;
  std::vector<cluster::TaskPlacement> scratch;
  std::vector<cluster::TaskPlacement> best_placements;
  PriceCache cache;
};

}  // namespace

std::optional<AllocCandidate> find_alloc(const sim::JobView& job,
                                         const cluster::ClusterState& state,
                                         const PriceBook& prices,
                                         const UtilityFunction& utility, Seconds now,
                                         const sim::NetworkModel& network,
                                         const FindAllocConfig& cfg) {
  const cluster::ClusterSpec& spec = state.spec();
  const int H = spec.num_nodes();
  const int R = spec.num_types();
  const int W = job.spec->num_workers;

  static thread_local FaScratch fa;
  fa.cache.sync(prices);

  // Free pools usable by this job, gathered from the state's usable-slot
  // table (dead nodes and capacity-less cells are never probed), priced in
  // one flat pass, and sorted into fill order once. Every candidate pool
  // below is a rate-threshold suffix of these lists (rate is the primary
  // sort key), so the per-threshold work drops from "scan + sort all slots"
  // to a lower_bound.
  auto& slots = fa.slots;
  slots.clear();
  for (const auto& us : state.usable_slots()) {
    const int free = state.free_in_cell(static_cast<std::size_t>(us.cell));
    const double rate = job.throughput_on(us.type);
    if (free > 0 && rate > 0.0) slots.push_back(Slot{us.node, us.type, free, rate, 0.0});
  }
  if (slots.empty()) return std::nullopt;
  for (auto& s : slots) s.price = prices.marginal_price(state, s.node, s.type, &fa.cache);
  std::sort(slots.begin(), slots.end(), fill_order);
  const std::size_t N = slots.size();

  // CSR per-node lists plus the all-slots list, each with suffix free sums
  // so a pool's feasibility check is O(1) instead of a rescan.
  auto& all = fa.all;
  auto& all_suffix = fa.all_suffix_free;
  all.resize(N);
  all_suffix.assign(N + 1, 0);
  for (std::size_t i = 0; i < N; ++i) all[i] = &slots[i];
  for (std::size_t i = N; i-- > 0;) all_suffix[i] = all_suffix[i + 1] + slots[i].free;

  auto& node_start = fa.node_start;
  node_start.assign(static_cast<std::size_t>(H) + 1, 0);
  for (const auto& s : slots) ++node_start[static_cast<std::size_t>(s.node) + 1];
  for (std::size_t h = 0; h < static_cast<std::size_t>(H); ++h) {
    node_start[h + 1] += node_start[h];
  }
  auto& cursor = fa.node_cursor;
  cursor.assign(node_start.begin(), node_start.end() - 1);
  auto& by_node = fa.by_node_flat;
  by_node.resize(N);
  for (const auto& s : slots) by_node[cursor[static_cast<std::size_t>(s.node)]++] = &s;
  auto& node_suffix = fa.node_suffix_free;
  node_suffix.assign(N, 0);
  for (std::size_t h = 0; h < static_cast<std::size_t>(H); ++h) {
    int acc = 0;
    for (std::size_t j = node_start[h + 1]; j-- > node_start[h];) {
      acc += by_node[j]->free;
      node_suffix[j] = acc;
    }
  }

  // Distinct usable rates, fastest first: each defines a bottleneck level k
  // (Algorithm 2 line 23's descending-throughput sweep).
  auto& thresholds = fa.thresholds;
  thresholds.clear();
  for (GpuTypeId r = 0; r < R; ++r) {
    const double x = job.throughput_on(r);
    if (x > 0.0) thresholds.push_back(x);
  }
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()), thresholds.end());

  bool have_best = false;
  bool best_is_current = false;
  EvalOut best{};
  // Candidates are tallied locally and published once per call: find_alloc
  // runs inside parallel beam lanes, so per-candidate registry traffic would
  // serialize the lanes on the metrics mutex.
  std::uint64_t candidates_scanned = 0;
  auto consider = [&](const EvalOut& e, bool is_current) {
    if (!have_best || e.payoff > best.payoff + 1e-12 ||
        (e.payoff > best.payoff - 1e-12 && e.cost < best.cost)) {
      have_best = true;
      best = e;
      best_is_current = is_current;
      if (!is_current) fa.best_placements.assign(fa.scratch.begin(), fa.scratch.end());
    }
  };
  auto try_pool = [&](std::span<const Slot* const> pool, int total) {
    ++candidates_scanned;
    if (!fill(pool, W, total, cfg.allow_mixed_types, fa.scratch)) return;
    // Normalize in place: (node, type) keys are unique within a pool, so a
    // plain sort reproduces JobAllocation's canonical order exactly.
    std::sort(fa.scratch.begin(), fa.scratch.end(),
              [](const cluster::TaskPlacement& a, const cluster::TaskPlacement& b) {
                return a.node != b.node ? a.node < b.node : a.type < b.type;
              });
    consider(evaluate_span(job, fa.scratch, state, prices, fa.cache, utility, now,
                           network, cfg),
             /*is_current=*/false);
  };
  // Rate-ascending lists make "rate >= threshold" a suffix.
  auto suffix_begin = [](const Slot* const* first, const Slot* const* last, double t) {
    return std::lower_bound(first, last, t,
                            [](const Slot* s, double th) { return s->rate < th; });
  };

  // ---- consolidated candidates: all W workers on one node (line 24),
  // one candidate per (node, bottleneck level) ----
  for (NodeId h = 0; h < H; ++h) {
    const std::size_t s0 = node_start[static_cast<std::size_t>(h)];
    const std::size_t s1 = node_start[static_cast<std::size_t>(h) + 1];
    if (s0 == s1) continue;
    for (double threshold : thresholds) {
      const Slot* const* lo =
          suffix_begin(by_node.data() + s0, by_node.data() + s1, threshold);
      if (lo == by_node.data() + s1) continue;
      const std::size_t j = static_cast<std::size_t>(lo - by_node.data());
      try_pool({lo, s1 - j}, node_suffix[j]);
    }
  }

  // ---- cluster-wide candidates per bottleneck level (line 25) ----
  if (cfg.allow_multi_node) {
    for (double threshold : thresholds) {
      const Slot* const* lo = suffix_begin(all.data(), all.data() + N, threshold);
      if (lo == all.data() + N) continue;
      const std::size_t i = static_cast<std::size_t>(lo - all.data());
      try_pool({lo, N - i}, all_suffix[i]);
    }
  }

  // ---- the job's current placement, if it still fits ----
  if (!job.current_allocation.empty() && state.can_allocate(job.current_allocation)) {
    ++candidates_scanned;
    consider(evaluate_span(job, job.current_allocation.placements(), state, prices,
                           fa.cache, utility, now, network, cfg),
             /*is_current=*/true);
  }

  if (obs::tracing()) {
    obs::count("find_alloc.calls");
    obs::count("find_alloc.candidates_scanned", candidates_scanned);
  }
  if (!have_best) return std::nullopt;

  AllocCandidate cand;
  cand.alloc = best_is_current ? job.current_allocation
                               : cluster::JobAllocation(fa.best_placements);
  cand.cost = best.cost;
  cand.utility = best.utility;
  cand.payoff = best.payoff;
  cand.est_duration = best.est_duration;
  return cand;
}

}  // namespace hadar::core
