// Empirical companion to Theorem 2 (the 2*alpha competitive ratio): given a
// finished simulation, evaluate the total utility the scheduler actually
// realized, compare it against the offline utility UPPER bound (every job
// completing at its physically fastest), and report the guaranteed bound
// 2*alpha computed from the Eq. 6-7 price limits over the initial queue.
//
// Because the upper bound dominates the offline optimum, observing
//   achieved * guaranteed_ratio >= upper_bound        (i.e. ratio <= 2*alpha)
// is a sound empirical check of the theorem on any workload.
#pragma once

#include "core/pricing.hpp"
#include "sim/metrics.hpp"
#include "workload/job.hpp"

namespace hadar::core {

struct CompetitiveReport {
  /// sum_j U_j(f_j - a_j) realized by the schedule (finished jobs only).
  double achieved_utility = 0.0;
  /// sum_j U_j(t_j^min): the unreachable all-ideal completion bound, which
  /// upper-bounds the offline optimum OPT.
  double utility_upper_bound = 0.0;
  /// upper_bound / achieved (>= 1). An upper bound on the true competitive
  /// ratio OPT / achieved.
  double empirical_ratio = 0.0;
  /// alpha = max_r max(1, ln(Umax^r / Umin^r)) over the initial queue.
  double alpha = 1.0;
  /// Theorem 2's guarantee: 2 * alpha.
  double guaranteed_ratio = 2.0;
  /// True when the run satisfies the bound (empirical <= guaranteed).
  bool within_guarantee() const { return empirical_ratio <= guaranteed_ratio + 1e-9; }
};

/// Analyzes one finished run. `spec` provides the GPU types used to compute
/// the price-bound alpha; `utility_kind` must match the scheduler's policy.
CompetitiveReport analyze_competitiveness(const cluster::ClusterSpec& spec,
                                          const workload::Trace& trace,
                                          const sim::SimResult& result,
                                          UtilityKind utility_kind =
                                              UtilityKind::kEffectiveThroughput,
                                          PricingConfig pricing = {});

}  // namespace hadar::core
