#include "core/throughput_estimator.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/binary.hpp"

namespace hadar::core {

ThroughputEstimator::ThroughputEstimator(const cluster::GpuTypeRegistry* registry,
                                         EstimatorConfig cfg)
    : registry_(registry), cfg_(cfg) {
  if (registry_ == nullptr) throw std::invalid_argument("ThroughputEstimator: null registry");
  if (cfg_.blend <= 0.0 || cfg_.blend > 1.0) {
    throw std::invalid_argument("ThroughputEstimator: blend must be in (0,1]");
  }
}

void ThroughputEstimator::reset() { tracks_.clear(); }

void ThroughputEstimator::bind(const cluster::GpuTypeRegistry* registry, EstimatorConfig cfg) {
  if (registry == nullptr) throw std::invalid_argument("ThroughputEstimator: null registry");
  if (cfg.blend <= 0.0 || cfg.blend > 1.0) {
    throw std::invalid_argument("ThroughputEstimator: blend must be in (0,1]");
  }
  registry_ = registry;
  cfg_ = cfg;
}

void ThroughputEstimator::save(common::BinaryWriter& w) const {
  w.u32(static_cast<std::uint32_t>(tracks_.size()));
  for (const auto& [id, tr] : tracks_) {
    w.i32(id);
    w.f64(tr.last_iterations);
    tr.last_alloc.save(w);
    common::write_f64_vector(w, tr.measured);
  }
}

void ThroughputEstimator::restore(common::BinaryReader& r) {
  tracks_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const JobId id = r.i32();
    Track tr;
    tr.last_iterations = r.f64();
    tr.last_alloc = cluster::JobAllocation::restore(r);
    tr.measured = common::read_f64_vector(r);
    tracks_.emplace(id, std::move(tr));
  }
}

void ThroughputEstimator::observe(const sim::SchedulerContext& ctx) {
  if (registry_ == nullptr) return;
  const int R = registry_->size();
  for (const auto& job : ctx.jobs) {
    auto [it, inserted] = tracks_.try_emplace(job.id());
    Track& tr = it->second;
    if (inserted) {
      tr.measured.assign(static_cast<std::size_t>(R), 0.0);
      tr.last_iterations = job.iterations_done;
      tr.last_alloc = job.current_allocation;
      continue;
    }

    // The job ran the previous round under tr.last_alloc (==
    // job.current_allocation); its progress since then measures the
    // placement's bottleneck rate.
    if (!job.current_allocation.empty() && job.current_allocation == tr.last_alloc) {
      const double delta = job.iterations_done - tr.last_iterations;
      const int workers = job.current_allocation.total_workers();
      if (delta > 0.0 && workers > 0 && ctx.round_length > 0.0) {
        const double per_worker = delta / (ctx.round_length * workers);
        // Attribute to the slowest used type: the bottleneck (1b). With our
        // current estimates, that is the used type with minimum estimate.
        GpuTypeId bottleneck = kInvalidGpuType;
        double best = 0.0;
        const auto est = estimate(job);
        for (const auto& p : job.current_allocation.placements()) {
          const double e = est[static_cast<std::size_t>(p.type)];
          if (bottleneck == kInvalidGpuType || e < best) {
            bottleneck = p.type;
            best = e;
          }
        }
        if (bottleneck != kInvalidGpuType) {
          auto& m = tr.measured[static_cast<std::size_t>(bottleneck)];
          m = m > 0.0 ? cfg_.blend * per_worker + (1.0 - cfg_.blend) * m : per_worker;
        }
      }
    }
    tr.last_iterations = job.iterations_done;
    tr.last_alloc = job.current_allocation;
  }
}

std::vector<double> ThroughputEstimator::estimate(const sim::JobView& job) const {
  const int R = registry_ ? registry_->size() : static_cast<int>(job.throughput.size());
  std::vector<double> est(static_cast<std::size_t>(R), 0.0);
  const auto it = tracks_.find(job.id());

  // Reference point: the fastest profiled type, if any.
  int ref = -1;
  if (it != tracks_.end()) {
    for (int r = 0; r < R; ++r) {
      if (it->second.measured[static_cast<std::size_t>(r)] > 0.0 &&
          (ref < 0 || it->second.measured[static_cast<std::size_t>(r)] >
                          it->second.measured[static_cast<std::size_t>(ref)])) {
        ref = r;
      }
    }
  }

  for (int r = 0; r < R; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    if (it != tracks_.end() && it->second.measured[ri] > 0.0) {
      est[ri] = it->second.measured[ri];
    } else if (ref >= 0) {
      // Scale the best measurement by nominal relative speeds.
      const double scale = registry_->info(r).relative_speed /
                           registry_->info(ref).relative_speed;
      est[ri] = it->second.measured[static_cast<std::size_t>(ref)] * scale;
    } else {
      // Never profiled: optimistic nominal prior so the job gets tried.
      est[ri] = cfg_.initial_rate * registry_->info(r).relative_speed;
    }
  }
  return est;
}

bool ThroughputEstimator::profiled(JobId id) const {
  const auto it = tracks_.find(id);
  if (it == tracks_.end()) return false;
  for (double m : it->second.measured) {
    if (m > 0.0) return true;
  }
  return false;
}

}  // namespace hadar::core
