// The Hadar online scheduler (Algorithm 1) expressed as a round pipeline
// (src/pipeline/): at every round the admission stage pins running jobs when
// their placements remain worthwhile (the paper's incremental
// allocation-update policy — only ~30% of rounds change an average job's
// allocation), the priority stage recomputes the dual price bounds from the
// live queue and orders it by utility density, the allocation stage runs
// DP_allocation over the waiting jobs, the shared greedy placement stage
// commits the DP's placements, and the preemption slot carries the liveness
// guard. The stages share one HadarPipelineState core.
#pragma once

#include <memory>

#include "core/dp_allocation.hpp"
#include "core/pricing.hpp"
#include "core/throughput_estimator.hpp"
#include "core/utility.hpp"
#include "pipeline/staged_scheduler.hpp"

namespace hadar::core {

struct HadarConfig {
  UtilityKind utility = UtilityKind::kEffectiveThroughput;
  PricingConfig pricing;
  DpConfig dp;

  /// Keep running jobs in place between full recomputations (reduces
  /// checkpoint-restart churn). Disabled => every round is a full recompute.
  bool sticky = true;
  /// Every this many rounds, unpin everything and recompute from scratch so
  /// allocations track the drifting optimum.
  int full_recompute_period = 5;

  /// Replace the jobs' declared throughputs with profiling-based estimates
  /// (the throughput-estimator path of Fig. 2).
  bool use_estimator = false;
  EstimatorConfig estimator;

  /// Liveness guard: when the payoff filter admits nothing while the cluster
  /// sits idle, force the top-priority feasible job in anyway.
  bool ensure_progress = true;
};

/// The core the Hadar stages share. Cross-round decision state (round
/// counter, estimator tracks) is owned by the stage that persists it; the
/// per-round fields (utility, the estimator's job view) are rebuilt by the
/// admission stage every round and are only valid within one round.
struct HadarPipelineState {
  explicit HadarPipelineState(HadarConfig c);

  HadarConfig cfg;
  PriceBook prices;                    ///< owned by the priority stage
  ThroughputEstimator estimator;       ///< owned by the admission stage
  bool estimator_bound = false;
  long long round = 0;                 ///< owned by the admission stage
  DpStats last_stats;                  ///< owned by the allocation stage

  // ---- per-round products (admission writes, later stages read) ----
  UtilityFunction utility;
  std::vector<sim::JobView> estimated;  ///< estimator view storage, reused
};

/// Admission: round counter, optional estimator view swap, utility
/// construction, and sticky pinning of running jobs between full recomputes.
class HadarAdmissionStage final : public pipeline::IAdmissionStage {
 public:
  explicit HadarAdmissionStage(std::shared_ptr<HadarPipelineState> st) : st_(std::move(st)) {}
  std::string name() const override { return "hadar.admission"; }
  void admit(pipeline::RoundState& rs) override;
  void reset() override;
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

 private:
  std::shared_ptr<HadarPipelineState> st_;
};

/// Priority: recomputes the dual price bounds (Eqs. 6-8) from the live
/// queue and sorts it by objective-specific utility density.
class HadarPricingStage final : public pipeline::IPriorityStage {
 public:
  explicit HadarPricingStage(std::shared_ptr<HadarPipelineState> st) : st_(std::move(st)) {}
  std::string name() const override { return "hadar.pricing"; }
  void prioritize(pipeline::RoundState& rs) override;
  void reset() override;

 private:
  std::shared_ptr<HadarPipelineState> st_;
};

/// Allocation: DP over the queue (Algorithm 2) -> proposed placements.
class HadarDpStage final : public pipeline::IAllocationStage {
 public:
  explicit HadarDpStage(std::shared_ptr<HadarPipelineState> st) : st_(std::move(st)) {}
  std::string name() const override { return "hadar.dp"; }
  void allocate(pipeline::RoundState& rs) override;
  void reset() override;

 private:
  std::shared_ptr<HadarPipelineState> st_;
};

/// Preemption slot: the liveness guard. When the payoff filter admitted
/// nothing while jobs wait, force in the top-priority feasible job.
class HadarGuardStage final : public pipeline::IPreemptionStage {
 public:
  explicit HadarGuardStage(std::shared_ptr<HadarPipelineState> st) : st_(std::move(st)) {}
  std::string name() const override { return "hadar.guard"; }
  void preempt(pipeline::RoundState& rs) override;

 private:
  std::shared_ptr<HadarPipelineState> st_;
};

/// The Hadar stage assembly over an existing shared core (tests compose
/// mixed pipelines from these stages).
pipeline::StageSet hadar_stages_for(const std::shared_ptr<HadarPipelineState>& st);
/// Convenience: builds the core from `cfg` and hands it back via `state`.
pipeline::StageSet make_hadar_stages(HadarConfig cfg,
                                     std::shared_ptr<HadarPipelineState>* state = nullptr);

class HadarScheduler final : public pipeline::StagedScheduler {
 public:
  explicit HadarScheduler(HadarConfig cfg = {});

  /// Introspection for tests and ablation benches.
  const PriceBook& price_book() const { return st_->prices; }
  const DpStats& last_dp_stats() const { return st_->last_stats; }
  const HadarConfig& config() const { return st_->cfg; }

 private:
  explicit HadarScheduler(std::shared_ptr<HadarPipelineState> st);

  std::shared_ptr<HadarPipelineState> st_;
};

}  // namespace hadar::core
