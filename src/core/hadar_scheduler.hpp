// The Hadar online scheduler (Algorithm 1): at every round it recomputes
// the dual price bounds from the live queue, pins running jobs when their
// placements remain worthwhile (the paper's incremental allocation-update
// policy — only ~30% of rounds change an average job's allocation), and runs
// DP_allocation over the waiting jobs in utility-density order.
#pragma once

#include "core/dp_allocation.hpp"
#include "core/pricing.hpp"
#include "core/throughput_estimator.hpp"
#include "core/utility.hpp"
#include "sim/scheduler.hpp"

namespace hadar::core {

struct HadarConfig {
  UtilityKind utility = UtilityKind::kEffectiveThroughput;
  PricingConfig pricing;
  DpConfig dp;

  /// Keep running jobs in place between full recomputations (reduces
  /// checkpoint-restart churn). Disabled => every round is a full recompute.
  bool sticky = true;
  /// Every this many rounds, unpin everything and recompute from scratch so
  /// allocations track the drifting optimum.
  int full_recompute_period = 5;

  /// Replace the jobs' declared throughputs with profiling-based estimates
  /// (the throughput-estimator path of Fig. 2).
  bool use_estimator = false;
  EstimatorConfig estimator;

  /// Liveness guard: when the payoff filter admits nothing while the cluster
  /// sits idle, force the top-priority feasible job in anyway.
  bool ensure_progress = true;
};

class HadarScheduler : public sim::IScheduler {
 public:
  explicit HadarScheduler(HadarConfig cfg = {});

  std::string name() const override;
  cluster::AllocationMap schedule(const sim::SchedulerContext& ctx) override;
  void reset() override;

  /// Cross-round decision state: the round counter (phase of the
  /// full-recompute cycle) and the estimator's measurement tracks. The
  /// PriceBook carries no cross-round state (bounds are recomputed from the
  /// live queue every round).
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

  /// Introspection for tests and ablation benches.
  const PriceBook& price_book() const { return prices_; }
  const DpStats& last_dp_stats() const { return last_stats_; }
  const HadarConfig& config() const { return cfg_; }

 private:
  HadarConfig cfg_;
  PriceBook prices_;
  ThroughputEstimator estimator_;
  bool estimator_bound_ = false;
  long long round_ = 0;
  DpStats last_stats_;
};

}  // namespace hadar::core
