// DP_allocation (Algorithm 2): decide which queued jobs to admit this round
// and with which task-level placements, maximizing total payoff under the
// dual prices.
//
// The paper's recursion branches on "schedule job idx" vs "skip job idx"
// (lines 14-15), memoizing per (job index, server state) so subproblems are
// not recomputed. We realize the same structure as a deterministic
// beam-bounded DP: a bounded set of partial states advances job by job,
// each state forking into exclude/include children, deduplicated by cluster
// -state hash and pruned to the `beam_width` best payoffs. With beam_width=1
// this degenerates to the pure greedy include-first pass; the cap is what
// keeps the round decision polynomial — O(|Q| * beam * H R log H) — matching
// the paper's claimed complexity class (Theorem 1).
//
// Jobs beyond `queue_window` (already priority-ordered by the caller) skip
// the branching and are admitted greedily, which bounds work under the very
// long queues of the scalability study (Fig. 7).
//
// The include-branch FIND_ALLOC evaluations of one beam level are
// independent, so they fan out across the common::ThreadPool (HADAR_THREADS
// lanes), each on a private scratch ClusterState. Expansion order, the
// (payoff, jobs, stable-seq) pruning order, and hence the returned schedule
// are identical at every thread count.
#pragma once

#include <span>
#include <vector>

#include "core/find_alloc.hpp"

namespace hadar::core {

struct DpConfig {
  int queue_window = 48;  ///< jobs covered by the include/exclude branching
  int beam_width = 64;    ///< partial states kept per step (>=1)
  FindAllocConfig find_alloc;
};

struct DpStats {
  int states_explored = 0;
  int greedy_tail_jobs = 0;
};

struct DpResult {
  cluster::AllocationMap allocs;
  double total_payoff = 0.0;
  int jobs_scheduled = 0;
  DpStats stats;
};

/// Runs the allocation decision over `queue` (highest priority first).
/// `state` carries pre-existing allocations (pinned running jobs) and is
/// left unchanged on return (its undo log, if enabled, is preserved).
DpResult dp_allocation(std::span<const sim::JobView* const> queue,
                       cluster::ClusterState& state, const PriceBook& prices,
                       const UtilityFunction& utility, Seconds now,
                       const sim::NetworkModel& network,
                       const DpConfig& cfg = {});

}  // namespace hadar::core
