#include "core/hadar_scheduler.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "common/binary.hpp"
#include "obs/trace.hpp"
#include "pipeline/stages.hpp"

namespace hadar::core {

HadarPipelineState::HadarPipelineState(HadarConfig c) : cfg(std::move(c)) {
  if (cfg.full_recompute_period < 1) cfg.full_recompute_period = 1;
}

// ------------------------------------------------------------ admission ---

void HadarAdmissionStage::admit(pipeline::RoundState& rs) {
  HadarPipelineState& s = *st_;
  const sim::SchedulerContext& ctx = *rs.ctx;
  ++s.round;

  // Optionally swap in profiled throughput estimates. The common
  // (estimator-off) configuration keeps rs.jobs pointing at the context's
  // jobs; the estimator path repoints it at a per-round clone held in the
  // shared core (storage reused across rounds).
  if (s.cfg.use_estimator) {
    if (!s.estimator_bound) {
      // bind() keeps any tracks restore_state() brought back.
      s.estimator.bind(&ctx.spec->types(), s.cfg.estimator);
      s.estimator_bound = true;
    }
    s.estimator.observe(ctx);
    s.estimated.assign(ctx.jobs.begin(), ctx.jobs.end());
    for (auto& j : s.estimated) j.throughput = s.estimator.estimate(j);
    rs.jobs = std::span<const sim::JobView>(s.estimated);
  }

  s.utility = UtilityFunction(s.cfg.utility, static_cast<double>(rs.jobs.size()));

  // ---- incremental update: pin running jobs between full recomputes ----
  const bool full_recompute = !s.cfg.sticky || (s.round % s.cfg.full_recompute_period == 0);
  rs.queue.reserve(rs.jobs.size());
  for (const auto& j : rs.jobs) {
    if (!full_recompute && !j.current_allocation.empty() &&
        rs.state->can_allocate(j.current_allocation)) {
      rs.state->allocate(j.current_allocation);
      rs.result.emplace(j.id(), j.current_allocation);
    } else {
      rs.queue.push_back(&j);
    }
  }
}

void HadarAdmissionStage::reset() {
  st_->round = 0;
  st_->estimator.reset();
  st_->estimator_bound = false;
}

void HadarAdmissionStage::save_state(common::BinaryWriter& w) const {
  w.i64(st_->round);
  st_->estimator.save(w);
}

void HadarAdmissionStage::restore_state(common::BinaryReader& r) {
  st_->round = r.i64();
  st_->estimator.restore(r);
  st_->estimator_bound = false;  // re-bind to the live registry on the next round
}

// ------------------------------------------------------------- priority ---

void HadarPricingStage::prioritize(pipeline::RoundState& rs) {
  HadarPipelineState& s = *st_;
  const sim::SchedulerContext& ctx = *rs.ctx;

  // Recompute the dual price bounds from the live queue (Eqs. 6-8).
  if (!s.prices.ready()) s.prices = PriceBook(ctx.spec->num_types(), s.cfg.pricing);
  {
    HADAR_TRACE_SCOPE("hadar", "hadar.price_bounds", 1);
    s.prices.compute_bounds(*ctx.spec, rs.jobs, ctx.now, ctx.round_length, s.utility);
  }

  // ---- objective-specific priority order (see UtilityFunction::priority) --
  std::sort(rs.queue.begin(), rs.queue.end(),
            [&](const sim::JobView* a, const sim::JobView* b) {
              const double pa = s.utility.priority(*a, ctx.now);
              const double pb = s.utility.priority(*b, ctx.now);
              if (pa != pb) return pa > pb;
              return a->id() < b->id();
            });
}

void HadarPricingStage::reset() { st_->prices = PriceBook(); }

// ----------------------------------------------------------- allocation ---

void HadarDpStage::allocate(pipeline::RoundState& rs) {
  HadarPipelineState& s = *st_;
  DpResult dp;
  {
    obs::ScopedSpan dp_span("hadar", "hadar.dp", 1);
    if (dp_span.active()) dp_span.arg("queue", static_cast<double>(rs.queue.size()));
    dp = dp_allocation(rs.queue, *rs.state, s.prices, s.utility, rs.ctx->now,
                       rs.ctx->network, s.cfg.dp);
    if (dp_span.active()) {
      dp_span.arg("states_explored", static_cast<double>(dp.stats.states_explored));
      dp_span.arg("allocated", static_cast<double>(dp.allocs.size()));
      obs::count("hadar.dp_states", static_cast<std::uint64_t>(dp.stats.states_explored));
    }
  }
  s.last_stats = dp.stats;
  rs.proposed.reserve(dp.allocs.size());
  for (auto& [id, alloc] : dp.allocs) rs.proposed.emplace_back(id, std::move(alloc));
}

void HadarDpStage::reset() { st_->last_stats = DpStats{}; }

// ----------------------------------------------------------- preemption ---

void HadarGuardStage::preempt(pipeline::RoundState& rs) {
  HadarPipelineState& s = *st_;
  if (!s.cfg.ensure_progress || !rs.result.empty() || rs.queue.empty()) return;
  for (const sim::JobView* j : rs.queue) {
    const auto cand = find_alloc(*j, *rs.state, s.prices, s.utility, rs.ctx->now,
                                 rs.ctx->network, s.cfg.dp.find_alloc);
    if (cand) {
      rs.state->allocate(cand->alloc);
      rs.result.emplace(j->id(), cand->alloc);
      break;
    }
  }
}

// ------------------------------------------------------------- assembly ---

pipeline::StageSet hadar_stages_for(const std::shared_ptr<HadarPipelineState>& st) {
  pipeline::StageSet set;
  set.admission = std::make_shared<HadarAdmissionStage>(st);
  set.priority = std::make_shared<HadarPricingStage>(st);
  set.allocation = std::make_shared<HadarDpStage>(st);
  set.placement = std::make_shared<pipeline::GreedyPlacementStage>();
  set.preemption = std::make_shared<HadarGuardStage>(st);
  return set;
}

pipeline::StageSet make_hadar_stages(HadarConfig cfg,
                                     std::shared_ptr<HadarPipelineState>* state) {
  auto st = std::make_shared<HadarPipelineState>(std::move(cfg));
  if (state != nullptr) *state = st;
  return hadar_stages_for(st);
}

HadarScheduler::HadarScheduler(HadarConfig cfg)
    : HadarScheduler(std::make_shared<HadarPipelineState>(std::move(cfg))) {}

HadarScheduler::HadarScheduler(std::shared_ptr<HadarPipelineState> st)
    : StagedScheduler("Hadar", hadar_stages_for(st)), st_(std::move(st)) {}

}  // namespace hadar::core
