#include "core/hadar_scheduler.hpp"

#include <algorithm>
#include <span>

#include "common/arena.hpp"
#include "common/binary.hpp"
#include "obs/trace.hpp"

namespace hadar::core {

HadarScheduler::HadarScheduler(HadarConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.full_recompute_period < 1) cfg_.full_recompute_period = 1;
}

std::string HadarScheduler::name() const { return "Hadar"; }

void HadarScheduler::reset() {
  prices_ = PriceBook();
  estimator_.reset();
  estimator_bound_ = false;
  round_ = 0;
  last_stats_ = DpStats{};
}

void HadarScheduler::save_state(common::BinaryWriter& w) const {
  w.i64(round_);
  estimator_.save(w);
}

void HadarScheduler::restore_state(common::BinaryReader& r) {
  round_ = r.i64();
  estimator_.restore(r);
  estimator_bound_ = false;  // re-bind to the live registry on the next round
}

cluster::AllocationMap HadarScheduler::schedule(const sim::SchedulerContext& ctx) {
  ++round_;
  const int R = ctx.spec->num_types();

  // Optionally swap in profiled throughput estimates. The common
  // (estimator-off) configuration reads the context's jobs in place; the
  // estimator path copies them into round-local arena storage so that the
  // per-round JobView clone never hits the heap.
  const common::ArenaAllocator<sim::JobView> jv_alloc(ctx.arena);
  common::ArenaVector<sim::JobView> estimated(jv_alloc);
  std::span<const sim::JobView> jobs(ctx.jobs);
  if (cfg_.use_estimator) {
    if (!estimator_bound_) {
      // bind() keeps any tracks restore_state() brought back.
      estimator_.bind(&ctx.spec->types(), cfg_.estimator);
      estimator_bound_ = true;
    }
    estimator_.observe(ctx);
    estimated.assign(ctx.jobs.begin(), ctx.jobs.end());
    for (auto& j : estimated) j.throughput = estimator_.estimate(j);
    jobs = std::span<const sim::JobView>(estimated.data(), estimated.size());
  }

  const UtilityFunction utility(cfg_.utility, static_cast<double>(jobs.size()));

  // Recompute the dual price bounds from the live queue (Eqs. 6-8).
  if (!prices_.ready()) prices_ = PriceBook(R, cfg_.pricing);
  {
    HADAR_TRACE_SCOPE("hadar", "hadar.price_bounds", 1);
    prices_.compute_bounds(*ctx.spec, jobs, ctx.now, ctx.round_length, utility);
  }

  cluster::ClusterState state(ctx.spec);
  cluster::AllocationMap result;

  // ---- incremental update: pin running jobs between full recomputes ----
  const bool full_recompute = !cfg_.sticky || (round_ % cfg_.full_recompute_period == 0);
  const common::ArenaAllocator<const sim::JobView*> q_alloc(ctx.arena);
  common::ArenaVector<const sim::JobView*> queue(q_alloc);
  queue.reserve(jobs.size());
  for (const auto& j : jobs) {
    if (!full_recompute && !j.current_allocation.empty() &&
        state.can_allocate(j.current_allocation)) {
      state.allocate(j.current_allocation);
      result.emplace(j.id(), j.current_allocation);
    } else {
      queue.push_back(&j);
    }
  }

  // ---- objective-specific priority order (see UtilityFunction::priority) --
  std::sort(queue.begin(), queue.end(), [&](const sim::JobView* a, const sim::JobView* b) {
    const double pa = utility.priority(*a, ctx.now);
    const double pb = utility.priority(*b, ctx.now);
    if (pa != pb) return pa > pb;
    return a->id() < b->id();
  });

  // ---- DP over the queue (Algorithm 2) ----
  DpResult dp;
  {
    obs::ScopedSpan dp_span("hadar", "hadar.dp", 1);
    if (dp_span.active()) dp_span.arg("queue", static_cast<double>(queue.size()));
    dp = dp_allocation(queue, state, prices_, utility, ctx.now, ctx.network, cfg_.dp);
    if (dp_span.active()) {
      dp_span.arg("states_explored", static_cast<double>(dp.stats.states_explored));
      dp_span.arg("allocated", static_cast<double>(dp.allocs.size()));
      obs::count("hadar.dp_states", static_cast<std::uint64_t>(dp.stats.states_explored));
    }
  }
  last_stats_ = dp.stats;
  for (auto& [id, alloc] : dp.allocs) {
    state.allocate(alloc);
    result.emplace(id, std::move(alloc));
  }

  // ---- liveness guard ----
  if (cfg_.ensure_progress && result.empty() && !queue.empty()) {
    for (const sim::JobView* j : queue) {
      const auto cand = find_alloc(*j, state, prices_, utility, ctx.now,
                                   ctx.network, cfg_.dp.find_alloc);
      if (cand) {
        state.allocate(cand->alloc);
        result.emplace(j->id(), cand->alloc);
        break;
      }
    }
  }

  return result;
}

}  // namespace hadar::core
