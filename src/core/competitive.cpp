#include "core/competitive.hpp"

#include <algorithm>

namespace hadar::core {

CompetitiveReport analyze_competitiveness(const cluster::ClusterSpec& spec,
                                          const workload::Trace& trace,
                                          const sim::SimResult& result,
                                          UtilityKind utility_kind,
                                          PricingConfig pricing) {
  CompetitiveReport rep;
  const UtilityFunction utility(utility_kind, static_cast<double>(trace.jobs.size()));

  // Fresh job views (no progress): U is evaluated on the whole job.
  sim::SchedulerContext ctx;
  ctx.spec = &spec;
  ctx.now = 0.0;
  for (const auto& j : trace.jobs) {
    sim::JobView v;
    v.spec = &j;
    v.throughput = j.throughput;
    ctx.jobs.push_back(std::move(v));
  }

  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    const auto& view = ctx.jobs[i];
    const Seconds ideal = ideal_total_runtime(view);
    if (ideal == kInfiniteTime) continue;
    rep.utility_upper_bound += utility(view, std::max<Seconds>(ideal, 1e-6), 0.0);
    const auto& outcome = result.jobs.at(i);
    if (outcome.finished()) {
      rep.achieved_utility += utility(view, std::max<Seconds>(outcome.jct(), 1e-6), 0.0);
    }
  }

  PriceBook book(spec.num_types(), pricing);
  book.compute_bounds(ctx, utility);
  rep.alpha = book.alpha();
  rep.guaranteed_ratio = 2.0 * rep.alpha;
  rep.empirical_ratio = rep.achieved_utility > 0.0
                            ? rep.utility_upper_bound / rep.achieved_utility
                            : rep.guaranteed_ratio;
  return rep;
}

}  // namespace hadar::core
