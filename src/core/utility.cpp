#include "core/utility.hpp"

#include <algorithm>
#include <cmath>

namespace hadar::core {

const char* to_string(UtilityKind k) {
  switch (k) {
    case UtilityKind::kEffectiveThroughput: return "effective-throughput";
    case UtilityKind::kMinMakespan: return "min-makespan";
    case UtilityKind::kFinishTimeFairness: return "finish-time-fairness";
  }
  return "?";
}

Seconds ideal_remaining_runtime(const sim::JobView& job) {
  const double x = job.max_throughput();
  if (x <= 0.0 || job.spec->num_workers <= 0) return kInfiniteTime;
  return job.remaining_iterations() / (x * job.spec->num_workers);
}

Seconds ideal_total_runtime(const sim::JobView& job) {
  const double x = job.max_throughput();
  if (x <= 0.0 || job.spec->num_workers <= 0) return kInfiniteTime;
  return job.spec->total_iterations() / (x * job.spec->num_workers);
}

UtilityFunction::UtilityFunction(UtilityKind kind, double total_jobs_hint)
    : kind_(kind), total_jobs_hint_(std::max(1.0, total_jobs_hint)) {}

double UtilityFunction::projected_rho(const sim::JobView& job, Seconds duration) const {
  const Seconds ideal = ideal_total_runtime(job);
  if (ideal == kInfiniteTime || ideal <= 0.0) return 0.0;
  // Themis: JCT over the runtime with an exclusive 1/n cluster share.
  return duration / (ideal * total_jobs_hint_);
}

double UtilityFunction::operator()(const sim::JobView& job, Seconds remaining_duration,
                                   Seconds now) const {
  if (remaining_duration <= 0.0) remaining_duration = 1e-6;
  const Seconds ideal_rem = ideal_remaining_runtime(job);
  if (ideal_rem == kInfiniteTime) return 0.0;
  // Inverse stretch of the work to go, scaled by the gang size: the paper's
  // effective-throughput utility is proportional to the job's aggregate
  // rate W_j * X_j, so a W-worker job carries W times the value of a
  // 1-worker job at the same stretch — without this, payoff-per-device
  // systematically starves large gangs.
  const double inv_stretch = static_cast<double>(job.spec->num_workers) *
                             std::max<Seconds>(ideal_rem, 1e-6) / remaining_duration;
  switch (kind_) {
    case UtilityKind::kEffectiveThroughput:
    case UtilityKind::kMinMakespan:
      // The two objectives price placements identically; they differ in the
      // queue order (SJF-flavored response ratio vs LPT), see priority().
      return inv_stretch;
    case UtilityKind::kFinishTimeFairness: {
      // Weight by the rho the job is heading toward: the further past its
      // fair share, the more valuable serving it becomes.
      const Seconds total_duration = (now - job.spec->arrival) + remaining_duration;
      const double weight = std::max(1.0, projected_rho(job, total_duration));
      return weight * inv_stretch;
    }
  }
  return 0.0;
}

double UtilityFunction::priority(const sim::JobView& job, Seconds now) const {
  const Seconds age = std::max<Seconds>(0.0, now - job.spec->arrival);
  switch (kind_) {
    case UtilityKind::kEffectiveThroughput: {
      // Highest-response-ratio-next over remaining runtime: SJF-flavored
      // (short jobs rank first even when fresh, thanks to the constant
      // offset) yet starvation-free (every job's ratio rises without bound
      // while it waits).
      const Seconds rem = ideal_remaining_runtime(job);
      if (rem == kInfiniteTime) return 0.0;
      return (age + 3600.0) / std::max<Seconds>(rem, 1.0);
    }
    case UtilityKind::kMinMakespan: {
      // LPT: longest remaining runtime first.
      const Seconds rem = ideal_remaining_runtime(job);
      return rem == kInfiniteTime ? 0.0 : rem;
    }
    case UtilityKind::kFinishTimeFairness: {
      // Worst-off first by projected rho.
      const Seconds heading = age + ideal_remaining_runtime(job);
      return projected_rho(job, heading);
    }
  }
  return 0.0;
}

double UtilityFunction::best_case(const sim::JobView& job, Seconds now) const {
  const Seconds rem = ideal_remaining_runtime(job);
  if (rem == kInfiniteTime) return 0.0;
  return (*this)(job, std::max<Seconds>(rem, 1e-6), now);
}

double UtilityFunction::worst_case(const sim::JobView& job, Seconds now,
                                   Seconds horizon) const {
  return (*this)(job, std::max<Seconds>(horizon, 1.0), now);
}

}  // namespace hadar::core
