#include "core/policy_stages.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "common/binary.hpp"
#include "common/env.hpp"
#include "obs/trace.hpp"

namespace hadar::core {

double PolicyConfig::weight_of(int tenant) const {
  if (tenant >= 0 && static_cast<std::size_t>(tenant) < tenant_weights.size()) {
    return tenant_weights[static_cast<std::size_t>(tenant)];
  }
  return 1.0;
}

void PolicyConfig::validate() const {
  if (deadline_weight < 0.0) throw std::invalid_argument("PolicyConfig: deadline_weight < 0");
  if (fairness_weight < 0.0) throw std::invalid_argument("PolicyConfig: fairness_weight < 0");
  if (quota_gpu_hours < 0.0) throw std::invalid_argument("PolicyConfig: quota_gpu_hours < 0");
  if (quota_strictness > 1.0) {
    throw std::invalid_argument("PolicyConfig: quota_strictness > 1");
  }
  for (double w : tenant_weights) {
    if (w <= 0.0) throw std::invalid_argument("PolicyConfig: non-positive tenant weight");
  }
}

PolicyConfig PolicyConfig::from_env() {
  PolicyConfig cfg;
  cfg.deadline_weight = common::env_double("HADAR_DEADLINE_WEIGHT", cfg.deadline_weight, 0.0,
                                           std::numeric_limits<double>::max());
  cfg.fairness_weight = common::env_double("HADAR_FAIRNESS_WEIGHT", cfg.fairness_weight, 0.0,
                                           std::numeric_limits<double>::max());
  cfg.quota_gpu_hours = common::env_double("HADAR_QUOTA_GPU_HOURS", cfg.quota_gpu_hours, 0.0,
                                           std::numeric_limits<double>::max());
  cfg.quota_strictness =
      common::env_double("HADAR_QUOTA_STRICTNESS", cfg.quota_strictness, -1.0, 1.0);
  const std::string raw = common::env_str("HADAR_QUOTA_WEIGHTS", "");
  if (!raw.empty()) {
    std::vector<double> weights;
    std::size_t start = 0;
    bool ok = true;
    while (start <= raw.size()) {
      const std::size_t comma = raw.find(',', start);
      const std::string tok =
          raw.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
      try {
        std::size_t pos = 0;
        const double w = std::stod(tok, &pos);
        if (pos != tok.size() || w <= 0.0) throw std::invalid_argument(tok);
        weights.push_back(w);
      } catch (const std::exception&) {
        ok = false;
        break;
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (ok) {
      cfg.tenant_weights = std::move(weights);
    } else {
      std::fprintf(stderr,
                   "[hadar] warning: HADAR_QUOTA_WEIGHTS='%s' is not a comma-separated "
                   "list of positive numbers; ignoring\n",
                   raw.c_str());
    }
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// DeadlineUtilityStage

DeadlineUtilityStage::DeadlineUtilityStage(std::shared_ptr<pipeline::IPriorityStage> inner,
                                           PolicyConfig cfg)
    : inner_(std::move(inner)), cfg_(std::move(cfg)) {
  if (inner_ == nullptr) throw std::invalid_argument("DeadlineUtilityStage: null inner stage");
  cfg_.validate();
}

double DeadlineUtilityStage::urgency(const sim::JobView& job, Seconds now) const {
  if (!job.spec->has_deadline()) return 0.0;
  const Seconds slack = job.spec->deadline - now;
  if (slack <= 0.0) return 1.0;  // overdue: maximum urgency
  const Seconds remaining = predictor_.predict_remaining(job);
  if (remaining == kInfiniteTime) return 1.0;
  return std::min(1.0, remaining / slack);
}

void DeadlineUtilityStage::prioritize(pipeline::RoundState& rs) {
  predictor_.observe(rs.ctx->now, std::span<const sim::JobView>(rs.ctx->jobs));
  inner_->prioritize(rs);

  const Seconds now = rs.ctx->now;
  // Blend over the inner order: rank i of n maps to a base score (n-1-i)/
  // (n-1) in [0, 1], comparable with the urgency term. Stable ties keep the
  // inner order, so zero deadline weight reproduces the pipeline exactly.
  auto blend = [&](std::size_t n, auto job_at, auto apply_order) {
    if (n < 2) return;
    order_.resize(n);
    score_.resize(n);
    const double denom = static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      order_[static_cast<std::size_t>(i)] = static_cast<int>(i);
      const double base = static_cast<double>(n - 1 - i) / denom;
      score_[i] = cfg_.fairness_weight * base + cfg_.deadline_weight * urgency(*job_at(i), now);
    }
    std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
      const double sa = score_[static_cast<std::size_t>(a)];
      const double sb = score_[static_cast<std::size_t>(b)];
      if (sa != sb) return sa > sb;
      return a < b;
    });
    apply_order();
  };

  if (!rs.queue.empty()) {
    blend(
        rs.queue.size(), [&](std::size_t i) { return rs.queue[i]; },
        [&] {
          queue_tmp_.assign(rs.queue.begin(), rs.queue.end());
          for (std::size_t i = 0; i < queue_tmp_.size(); ++i) {
            rs.queue[i] = queue_tmp_[static_cast<std::size_t>(order_[i])];
          }
        });
  }
  if (!rs.ranked.empty()) {
    blend(
        rs.ranked.size(), [&](std::size_t i) { return rs.ranked[i].job; },
        [&] {
          ranked_tmp_.assign(rs.ranked.begin(), rs.ranked.end());
          for (std::size_t i = 0; i < ranked_tmp_.size(); ++i) {
            rs.ranked[i] = ranked_tmp_[static_cast<std::size_t>(order_[i])];
          }
        });
  }

  if (obs::TraceSession::current() != nullptr) {
    obs::gauge_set("policy.predictor_samples", static_cast<double>(predictor_.samples()));
  }
}

void DeadlineUtilityStage::reset() {
  inner_->reset();
  predictor_.reset();
}

void DeadlineUtilityStage::save_state(common::BinaryWriter& w) const {
  inner_->save_state(w);
  predictor_.save(w);
}

void DeadlineUtilityStage::restore_state(common::BinaryReader& r) {
  inner_->restore_state(r);
  predictor_.restore(r);
}

// ---------------------------------------------------------------------------
// TenantQuotaStage

TenantQuotaStage::TenantQuotaStage(std::shared_ptr<pipeline::IAdmissionStage> inner,
                                   PolicyConfig cfg)
    : inner_(std::move(inner)), cfg_(std::move(cfg)) {
  if (inner_ == nullptr) throw std::invalid_argument("TenantQuotaStage: null inner stage");
  cfg_.validate();
}

double TenantQuotaStage::usage_gpu_seconds(int tenant) const {
  const auto it = usage_s_.find(tenant);
  return it != usage_s_.end() ? it->second : 0.0;
}

void TenantQuotaStage::update_usage(const pipeline::RoundState& rs) {
  // Charge each tenant the GPU-seconds its jobs attained since last round.
  // A job's final partial round goes uncharged (it is gone before the next
  // admit) — a sub-round error that never accumulates.
  for (const sim::JobView& v : rs.ctx->jobs) {
    double& last = last_attained_[v.spec->id];
    double delta = v.attained_service - last;
    if (delta < 0.0) delta = v.attained_service;  // watermark from a reused id
    if (delta > 0.0) usage_s_[v.spec->tenant] += delta;
    last = v.attained_service;
  }
  // Drop watermarks of completed jobs so reused ids start clean.
  present_.clear();
  for (const sim::JobView& v : rs.ctx->jobs) present_.insert(v.spec->id);
  for (auto it = last_attained_.begin(); it != last_attained_.end();) {
    it = present_.count(it->first) != 0 ? std::next(it) : last_attained_.erase(it);
  }
}

void TenantQuotaStage::admit(pipeline::RoundState& rs) {
  inner_->admit(rs);
  update_usage(rs);
  if (!cfg_.quota_enabled() || rs.queue.empty()) return;

  const double quota_unit_s = cfg_.quota_gpu_hours * 3600.0;
  const auto quota_of = [&](int tenant) { return quota_unit_s * cfg_.weight_of(tenant); };
  const auto cap_of = [&](int tenant) {
    if (cfg_.quota_strictness <= 0.0) return std::numeric_limits<double>::infinity();
    return quota_of(tenant) / cfg_.quota_strictness;
  };

  // Weighted DRF over the surplus: among over-quota (but not hard-capped)
  // tenants with queued work, only those at the minimal weighted overage
  // stay admitted this round.
  double min_over = std::numeric_limits<double>::infinity();
  for (const sim::JobView* job : rs.queue) {
    const int t = job->spec->tenant;
    const double u = usage_gpu_seconds(t);
    if (u <= quota_of(t) || u >= cap_of(t)) continue;
    min_over = std::min(min_over, (u - quota_of(t)) / cfg_.weight_of(t));
  }

  keep_.clear();
  deferred_.clear();
  capped_.clear();
  for (const sim::JobView* job : rs.queue) {
    const int t = job->spec->tenant;
    const double u = usage_gpu_seconds(t);
    if (u <= quota_of(t)) {
      keep_.push_back(job);
    } else if (u >= cap_of(t)) {
      capped_.push_back(job);
    } else if ((u - quota_of(t)) / cfg_.weight_of(t) <= min_over) {
      keep_.push_back(job);
    } else {
      deferred_.push_back(job);
    }
  }

  // Idle guard: quotas shape sharing, they must never deadlock the run.
  // When nothing was pinned and the filter emptied the round, let the
  // DRF-deferred jobs back in; with every queued tenant hard-capped, yield
  // the cap too (only for the minimal-overage tenant(s)) — a budget with no
  // competing under-budget work left should not idle the cluster forever.
  if (keep_.empty() && rs.result.empty()) {
    if (!deferred_.empty()) {
      keep_.swap(deferred_);
    } else if (!capped_.empty()) {
      double min_capped = std::numeric_limits<double>::infinity();
      for (const sim::JobView* job : capped_) {
        const int t = job->spec->tenant;
        min_capped =
            std::min(min_capped, (usage_gpu_seconds(t) - quota_of(t)) / cfg_.weight_of(t));
      }
      for (const sim::JobView* job : capped_) {
        const int t = job->spec->tenant;
        if ((usage_gpu_seconds(t) - quota_of(t)) / cfg_.weight_of(t) <= min_capped) {
          keep_.push_back(job);
        }
      }
    }
  }

  if (obs::TraceSession::current() != nullptr) {
    obs::count("quota.deferred", static_cast<std::uint64_t>(deferred_.size()));
    obs::count("quota.capped", static_cast<std::uint64_t>(capped_.size()));
  }
  rs.queue.assign(keep_.begin(), keep_.end());
}

void TenantQuotaStage::reset() {
  inner_->reset();
  last_attained_.clear();
  usage_s_.clear();
}

void TenantQuotaStage::save_state(common::BinaryWriter& w) const {
  inner_->save_state(w);
  w.u32(static_cast<std::uint32_t>(last_attained_.size()));
  for (const auto& [id, v] : last_attained_) {
    w.i32(id);
    w.f64(v);
  }
  w.u32(static_cast<std::uint32_t>(usage_s_.size()));
  for (const auto& [t, v] : usage_s_) {
    w.i32(t);
    w.f64(v);
  }
}

void TenantQuotaStage::restore_state(common::BinaryReader& r) {
  inner_->restore_state(r);
  last_attained_.clear();
  usage_s_.clear();
  const std::uint32_t nj = r.u32();
  for (std::uint32_t i = 0; i < nj; ++i) {
    const JobId id = r.i32();
    last_attained_[id] = r.f64();
  }
  const std::uint32_t nt = r.u32();
  for (std::uint32_t i = 0; i < nt; ++i) {
    const int t = r.i32();
    usage_s_[t] = r.f64();
  }
}

// ---------------------------------------------------------------------------

sim::SchedulerPtr with_policy(sim::SchedulerPtr base, const PolicyConfig& cfg) {
  cfg.validate();
  if (!cfg.enabled()) return base;
  auto* staged = dynamic_cast<pipeline::StagedScheduler*>(base.get());
  if (staged == nullptr) {
    throw std::invalid_argument("with_policy: '" + base->name() +
                                "' is not a staged scheduler");
  }
  pipeline::StageSet stages = staged->stages();
  if (cfg.quota_enabled()) {
    stages.admission = std::make_shared<TenantQuotaStage>(stages.admission, cfg);
  }
  if (cfg.deadline_enabled()) {
    stages.priority = std::make_shared<DeadlineUtilityStage>(stages.priority, cfg);
  }
  // The inner scheduler object is released here; its stages (and the policy
  // core they share) live on through the StageSet's shared_ptrs.
  return std::make_unique<pipeline::StagedScheduler>(staged->name() + "+policy",
                                                     std::move(stages));
}

}  // namespace hadar::core
