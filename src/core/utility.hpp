// Job utility functions U_j(.) (Sec. III-A). The optimization framework is
// generic over the utility, which is how Hadar expresses different
// scheduling objectives: average-JCT minimization, makespan minimization,
// and finish-time fairness.
//
// All utilities are normalized to be UNITLESS so they are comparable across
// models whose raw iteration rates differ by orders of magnitude: the base
// quantity is the job's inverse stretch, ideal_runtime / (f_j - a_j), where
// ideal_runtime = E N / (W * max_r X^r) is the job's isolated best-case
// runtime. A job finishing as fast as physically possible has utility ~1.
#pragma once

#include "sim/scheduler.hpp"

namespace hadar::core {

enum class UtilityKind {
  /// U_j(d) = ideal_runtime / d (inverse stretch): the effective-throughput
  /// special case of the paper, normalized per job. Queue order is SRPT on
  /// remaining GPU-time with mild aging (drives average JCT down). Default.
  kEffectiveThroughput,
  /// U_j(d) = remaining_ideal_runtime / d: longer-remaining jobs carry more
  /// utility, and queue order is longest-remaining-first (LPT), which keeps
  /// the tail of the schedule flat — the makespan objective.
  kMinMakespan,
  /// Inverse stretch weighted by the job's projected Themis rho; queue order
  /// is worst-rho-first — the finish-time-fairness objective.
  kFinishTimeFairness,
};

const char* to_string(UtilityKind k);

/// The job's isolated best-case runtime for its remaining work:
/// remaining_iterations / (W_j * max_r X_j^r). +inf if it cannot run.
Seconds ideal_remaining_runtime(const sim::JobView& job);
/// Same for the total work E_j N_j.
Seconds ideal_total_runtime(const sim::JobView& job);

/// Evaluates the online value-to-go of a job and supplies the
/// queue-ordering priority for Algorithm 1.
class UtilityFunction {
 public:
  explicit UtilityFunction(UtilityKind kind = UtilityKind::kEffectiveThroughput,
                           double total_jobs_hint = 1.0);

  UtilityKind kind() const { return kind_; }

  /// The online reading of U_j(f_j - a_j): the value still obtainable from
  /// job j if its remaining work completes `remaining_duration` seconds from
  /// `now`. Non-negative, decreasing in remaining_duration, ~1 for a job
  /// driven at its physically best rate.
  double operator()(const sim::JobView& job, Seconds remaining_duration,
                    Seconds now) const;

  /// Queue-ordering key (higher = scheduled earlier). See UtilityKind docs.
  double priority(const sim::JobView& job, Seconds now) const;

  /// Utility at the job's fastest possible completion from `now`
  /// (Eq. 6 numerator).
  double best_case(const sim::JobView& job, Seconds now) const;

  /// Utility at a pessimistic completion bound (Eq. 7 numerator): finishing
  /// only after `horizon` more seconds.
  double worst_case(const sim::JobView& job, Seconds now, Seconds horizon) const;

  /// Projected Themis rho if the job finished after `duration` total.
  double projected_rho(const sim::JobView& job, Seconds duration) const;

 private:
  UtilityKind kind_;
  double total_jobs_hint_;  ///< n for the fairness rho normalization

  /// SRPT aging horizon: a job waiting this long doubles its priority.
  static constexpr Seconds kAgingTau = 24.0 * 3600.0;
};

}  // namespace hadar::core
