// Luo-style online duration predictor (Prediction-Assisted Online
// Scheduling, PAPERS.md): a running per-size-class estimate of the stretch
// factor observed JCT / ideal runtime, learned from jobs as they complete.
// The deadline stage multiplies a job's ideal remaining runtime by the
// learned stretch to judge how tight its deadline really is — no oracle
// durations, just the completions the scheduler has already seen.
#pragma once

#include <array>
#include <map>
#include <span>
#include <unordered_set>

#include "common/types.hpp"
#include "sim/scheduler.hpp"
#include "workload/job.hpp"

namespace hadar::common {
class BinaryWriter;
class BinaryReader;
}  // namespace hadar::common

namespace hadar::core {

/// Completion detector + per-class stretch model. observe() is fed the
/// runnable job set once per round; a tracked job that vanishes from the set
/// completed since the last round, and its realized stretch (JCT over ideal
/// total runtime, clamped to [1, 100]) updates the running mean of its size
/// class. Deterministic: samples arrive in job-id order within a round.
class DurationPredictor {
 public:
  /// Records completions against the previous round's tracked set, then
  /// tracks the current one. `now` is the simulation clock of the round.
  void observe(Seconds now, std::span<const sim::JobView> jobs);

  /// Predicted remaining runtime: ideal_remaining_runtime * stretch(class).
  Seconds predict_remaining(const sim::JobView& job) const;

  /// Learned stretch for a class; falls back to the all-class mean, then 1.0
  /// before any completion has been observed.
  double stretch(workload::SizeClass c) const;

  std::int64_t samples() const;  ///< completions folded into the model

  void reset();
  void save(common::BinaryWriter& w) const;
  void restore(common::BinaryReader& r);

 private:
  static constexpr std::size_t kClasses = 4;

  struct Tracked {
    Seconds arrival = 0.0;
    Seconds ideal = 0.0;  ///< ideal total runtime at first sight
    std::uint8_t cls = 0;
  };

  std::map<JobId, Tracked> live_;  ///< ordered: deterministic sample order
  std::array<double, kClasses> sum_{};
  std::array<std::int64_t, kClasses> n_{};
  std::unordered_set<JobId> present_;  ///< per-round scratch
};

}  // namespace hadar::core
