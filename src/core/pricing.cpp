#include "core/pricing.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

namespace hadar::core {

namespace {

// Process-wide identity allocator for PriceBook objects. Identities start
// at 1 (0 means "cache never synced") and are never reused, so a stale
// PriceCache can never mistake a new book for the one it memoized — even
// when the new book lands on the old one's address.
std::atomic<std::uint64_t> g_book_identity{0};

std::uint64_t next_book_identity() { return g_book_identity.fetch_add(1) + 1; }

std::uint64_t double_bits(double d) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

void PriceCache::sync(const PriceBook& book) {
  if (book_id_ == book.identity() && bump_ == book.bounds_version() && !table_.empty()) {
    return;
  }
  table_.assign(kSlots, Entry{});
  book_id_ = book.identity();
  bump_ = book.bounds_version();
}

double PriceCache::price(const PriceBook& book, GpuTypeId r, double frac) {
  const std::uint64_t fb = double_bits(frac);
  // SplitMix64-ish mix of (type, fraction bits) to pick a slot; the entry
  // stores both inputs verbatim so a hit is exact, never a hash collision.
  std::uint64_t x = fb ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) *
                          0x9E3779B97F4A7C15ULL);
  x ^= x >> 31;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 29;
  Entry& e = table_[static_cast<std::size_t>(x) & (kSlots - 1)];
  if (e.type == r && e.frac_bits == fb) return e.value;
  const double v = book.price_at_fraction(r, frac);
  e.type = r;
  e.frac_bits = fb;
  e.value = v;
  return v;
}

PriceBook::PriceBook() : id_(next_book_identity()) {}

PriceBook::PriceBook(int num_types, PricingConfig cfg)
    : cfg_(cfg), id_(next_book_identity()), bump_(1) {
  if (num_types <= 0) throw std::invalid_argument("PriceBook: num_types <= 0");
  if (cfg_.eta <= 0.0) throw std::invalid_argument("PriceBook: eta <= 0");
  u_max_.assign(static_cast<std::size_t>(num_types), 1.0);
  u_min_.assign(static_cast<std::size_t>(num_types), cfg_.min_price);
}

// Copies and moves are new logical books: they draw a fresh identity so an
// (identity, bump) pair observed by a PriceCache can never later name a
// different bounds snapshot. Assignment keeps the target's identity — the
// same logical book with changed bounds — and bumps its counter.
PriceBook::PriceBook(const PriceBook& other)
    : cfg_(other.cfg_),
      u_max_(other.u_max_),
      u_min_(other.u_min_),
      id_(next_book_identity()),
      bump_(other.bump_) {}

PriceBook::PriceBook(PriceBook&& other) noexcept
    : cfg_(other.cfg_),
      u_max_(std::move(other.u_max_)),
      u_min_(std::move(other.u_min_)),
      id_(next_book_identity()),
      bump_(other.bump_) {}

PriceBook& PriceBook::operator=(const PriceBook& other) {
  if (this == &other) return *this;
  cfg_ = other.cfg_;
  u_max_ = other.u_max_;
  u_min_ = other.u_min_;
  ++bump_;
  return *this;
}

PriceBook& PriceBook::operator=(PriceBook&& other) noexcept {
  if (this == &other) return *this;
  cfg_ = other.cfg_;
  u_max_ = std::move(other.u_max_);
  u_min_ = std::move(other.u_min_);
  ++bump_;
  return *this;
}

void PriceBook::compute_bounds(const sim::SchedulerContext& ctx,
                               const UtilityFunction& utility) {
  compute_bounds(*ctx.spec, std::span<const sim::JobView>(ctx.jobs), ctx.now,
                 ctx.round_length, utility);
}

void PriceBook::compute_bounds(const cluster::ClusterSpec& spec,
                               std::span<const sim::JobView> jobs, Seconds now,
                               Seconds round_length, const UtilityFunction& utility) {
  const int R = spec.num_types();
  if (static_cast<std::size_t>(R) != u_max_.size()) {
    u_max_.assign(static_cast<std::size_t>(R), 1.0);
    u_min_.assign(static_cast<std::size_t>(R), cfg_.min_price);
  }

  // Horizon proxy for Eq. 7's T: serial worst-case drain time of the queue.
  Seconds horizon = 0.0;
  for (const auto& job : jobs) {
    const double x_min = job.spec->min_throughput();
    if (x_min > 0.0) {
      horizon += job.remaining_iterations() / (x_min * job.spec->num_workers);
    }
  }
  horizon = std::max(horizon, round_length);

  for (GpuTypeId r = 0; r < R; ++r) {
    double umax = 0.0;
    double umin = std::numeric_limits<double>::infinity();
    for (const auto& job : jobs) {
      if (job.throughput_on(r) <= 0.0) continue;  // job cannot use type r
      const double w = job.spec->num_workers;
      // Per-unit-resource utility *on type r*: the job's value scaled by how
      // well this type drives it. This differentiates prices across types —
      // V100s are expensive precisely when the queue holds jobs that are far
      // faster on them.
      const double type_value = job.throughput_on(r) / job.max_throughput();

      // Eq. 6: max_j U_j(t_min) / W_j.
      umax = std::max(umax, type_value * utility.best_case(job, now) / w);

      // Eq. 7: (1/4 eta) * min_j U_j(T - a_j) / (t_max * sum_r w_j^r).
      const double x_min = job.spec->min_throughput();
      if (x_min > 0.0) {
        const Seconds t_max = job.remaining_iterations() / (x_min * w);
        const double u_worst = type_value * utility.worst_case(job, now, horizon);
        umin = std::min(umin, u_worst / (4.0 * cfg_.eta * std::max<Seconds>(t_max, 1.0) * w));
      }
    }
    if (umax <= 0.0) umax = 1.0;  // no eligible job: any positive price blocks nothing
    if (!std::isfinite(umin) || umin <= 0.0) umin = cfg_.min_price;
    umin = std::max(umin, cfg_.min_price);
    // Keep the exponential curve well-formed (Umin strictly below Umax).
    if (umin >= umax) umin = umax / std::exp(1.0);
    u_max_[static_cast<std::size_t>(r)] = umax;
    u_min_[static_cast<std::size_t>(r)] = std::max(umin, cfg_.min_price);
  }
  ++bump_;
}

double PriceBook::price_at_fraction(GpuTypeId r, double frac) const {
  if (r < 0 || static_cast<std::size_t>(r) >= u_max_.size()) {
    throw std::out_of_range("PriceBook::price: bad type");
  }
  const double umin = u_min_[static_cast<std::size_t>(r)];
  const double umax = u_max_[static_cast<std::size_t>(r)];
  return umin * std::pow(umax / umin, std::clamp(frac, 0.0, 1.0));
}

double PriceBook::price(GpuTypeId r, int gamma, int capacity) const {
  if (capacity <= 0) {
    if (r < 0 || static_cast<std::size_t>(r) >= u_max_.size()) {
      throw std::out_of_range("PriceBook::price: bad type");
    }
    return std::numeric_limits<double>::infinity();
  }
  return price_at_fraction(r, static_cast<double>(gamma) / capacity);
}

namespace {

// Utilization fraction driving Eq. 5: the tighter of the node-local pool and
// the cluster-wide pool of that type. The cluster-wide component makes a
// scarce type expensive everywhere, not just on nearly-full nodes.
double blended_fraction(const cluster::ClusterState& state, NodeId h, GpuTypeId r,
                        int extra_node, int extra_cluster) {
  const int node_cap = state.spec().node(h).capacity(r);
  if (node_cap <= 0) return 2.0;  // nonexistent pool => beyond-full
  const double node_frac =
      static_cast<double>(state.used_count(h, r) + extra_node) / node_cap;
  const int cluster_cap = state.spec().total_of_type(r);
  const int cluster_used = cluster_cap - state.total_free_of_type(r);
  const double cluster_frac =
      cluster_cap > 0
          ? static_cast<double>(cluster_used + extra_cluster) / cluster_cap
          : 1.0;
  return std::max(node_frac, cluster_frac);
}

}  // namespace

double PriceBook::marginal_price(const cluster::ClusterState& state, NodeId h,
                                 GpuTypeId r, PriceCache* cache) const {
  if (state.spec().node(h).capacity(r) <= 0) return std::numeric_limits<double>::infinity();
  const double frac = blended_fraction(state, h, r, 0, 0);
  if (cache != nullptr) return cache->price(*this, r, frac);
  return price_at_fraction(r, frac);
}

double PriceBook::allocation_cost(const cluster::ClusterState& state,
                                  const cluster::JobAllocation& alloc) const {
  return allocation_cost(state, std::span<const cluster::TaskPlacement>(alloc.placements()),
                         nullptr);
}

double PriceBook::allocation_cost(const cluster::ClusterState& state,
                                  std::span<const cluster::TaskPlacement> placements,
                                  PriceCache* cache) const {
  double cost = 0.0;
  // Per-call scratch; thread-local so the hot path never heap-allocates.
  static thread_local std::vector<int> extra_of_type;
  extra_of_type.assign(u_max_.size(), 0);
  for (const auto& p : placements) {
    if (state.spec().node(p.node).capacity(p.type) <= 0) {
      return std::numeric_limits<double>::infinity();
    }
    auto& extra = extra_of_type[static_cast<std::size_t>(p.type)];
    // Devices are claimed one at a time along the rising curve.
    for (int i = 0; i < p.count; ++i) {
      const double frac = blended_fraction(state, p.node, p.type, i, extra);
      cost += cache != nullptr ? cache->price(*this, p.type, frac)
                               : price_at_fraction(p.type, frac);
      ++extra;
    }
  }
  return cost;
}

double PriceBook::alpha() const {
  double a = 1.0;
  for (std::size_t r = 0; r < u_max_.size(); ++r) {
    if (u_min_[r] > 0.0) a = std::max(a, std::log(u_max_[r] / u_min_[r]));
  }
  return a;
}

}  // namespace hadar::core
