// The primal-dual resource price (Sec. III-B). Each (machine h, type r) pair
// carries a dual price k_h^r that rises exponentially with its utilization
// (Eq. 5), between per-type bounds U_min^r (Eq. 7) and U_max^r (Eq. 6)
// recomputed from the live queue at every scheduling event. A job is
// admitted only when its utility exceeds the priced cost of its placement —
// this is what yields the 2*alpha competitive ratio (Theorem 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/cluster_state.hpp"
#include "core/utility.hpp"
#include "sim/scheduler.hpp"

namespace hadar::core {

class PriceBook;

/// Memo for Eq. 5 evaluations: (type, utilization-fraction bits) -> price.
/// The exponential is by far the most expensive instruction on the
/// FIND_ALLOC hot path, and the fractions recur heavily (ratios of small
/// integer counts), so a small lossy direct-mapped table converts most pow
/// calls into a load. Bit-safe by construction: a hit returns the double
/// previously computed for the exact same (book identity, bounds bump,
/// type, fraction) inputs — never for a different book that happens to
/// reuse an address (per-cell books under sharding, concurrent Simulators).
/// Callers keep one cache per thread; sync() must be called before use so a
/// bounds recompute invalidates stale entries.
class PriceCache {
 public:
  /// Drops all entries when `book` is a different logical book or its
  /// bounds changed since the last sync.
  void sync(const PriceBook& book);

  /// Memoized PriceBook::price_at_fraction(r, frac).
  double price(const PriceBook& book, GpuTypeId r, double frac);

 private:
  static constexpr std::size_t kSlots = 512;  // power of two
  struct Entry {
    std::uint64_t frac_bits = 0;
    double value = 0.0;
    GpuTypeId type = -1;  // -1 == empty slot
  };
  std::vector<Entry> table_;
  std::uint64_t book_id_ = 0;  // 0 == never synced (identities start at 1)
  std::uint64_t bump_ = 0;
};

struct PricingConfig {
  /// Eq. 7 scaling factor eta (>0). Larger eta lowers the admission floor.
  double eta = 1.0;
  /// Floor applied to U_min (numerical guard; prices must stay positive).
  double min_price = 1e-9;
};

/// Per-type price bounds + the Eq. 5 price curve over a ClusterState.
///
/// Version scheme: every construction (default, sized, copy, move) draws a
/// fresh process-unique identity, and every bounds change bumps a per-book
/// counter. Two live books therefore never share an identity, and an
/// (identity, bump) pair names exactly one bounds snapshot — the property
/// PriceCache validity rests on. Assignment keeps the target's identity but
/// bumps it (its bounds changed).
class PriceBook {
 public:
  PriceBook();
  PriceBook(int num_types, PricingConfig cfg);
  PriceBook(const PriceBook& other);
  PriceBook(PriceBook&& other) noexcept;
  PriceBook& operator=(const PriceBook& other);
  PriceBook& operator=(PriceBook&& other) noexcept;

  /// Recomputes U_max^r / U_min^r (Eqs. 6-8) from the current queue. The
  /// horizon proxy for "ends at T" is now + the queue's serial worst-case
  /// runtime (an online stand-in for the offline T).
  void compute_bounds(const sim::SchedulerContext& ctx, const UtilityFunction& utility);
  /// Same recomputation from a job span, so callers with an unmaterialized
  /// context (HadarScheduler's no-copy round path) avoid cloning one.
  void compute_bounds(const cluster::ClusterSpec& spec, std::span<const sim::JobView> jobs,
                      Seconds now, Seconds round_length, const UtilityFunction& utility);

  /// Eq. 5: k_h^r given the allocated count gamma and the capacity c of the
  /// (h, r) pool. For c == 0 the pool does not exist => +inf.
  double price(GpuTypeId r, int gamma, int capacity) const;

  /// Eq. 5 evaluated directly at a utilization fraction in [0,1].
  double price_at_fraction(GpuTypeId r, double frac) const;

  /// Price of one *additional* device on (h, r) given current state: the
  /// marginal Eq. 5 price evaluated at the pre-allocation gamma. `cache`
  /// (optional) memoizes the exponential per thread.
  double marginal_price(const cluster::ClusterState& state, NodeId h, GpuTypeId r,
                        PriceCache* cache = nullptr) const;

  /// Total priced cost of an allocation against `state` (devices priced at
  /// the marginal rate as they are claimed one by one).
  double allocation_cost(const cluster::ClusterState& state,
                         const cluster::JobAllocation& alloc) const;
  /// Same cost over a raw placement span. The span MUST be in normalized
  /// order (ascending (node, type), one entry per pair) — the summation
  /// order is part of the result's bit pattern.
  double allocation_cost(const cluster::ClusterState& state,
                         std::span<const cluster::TaskPlacement> placements,
                         PriceCache* cache = nullptr) const;

  double u_max(GpuTypeId r) const { return u_max_.at(static_cast<std::size_t>(r)); }
  double u_min(GpuTypeId r) const { return u_min_.at(static_cast<std::size_t>(r)); }

  /// alpha = max_r max(1, ln(Umax/Umin)) — the competitive-ratio factor.
  double alpha() const;

  bool ready() const { return !u_max_.empty(); }

  /// Process-unique id of this book object (never 0, never reused).
  std::uint64_t identity() const { return id_; }
  /// Per-book counter of bounds changes; (identity(), bounds_version())
  /// names exactly one bounds snapshot.
  std::uint64_t bounds_version() const { return bump_; }

 private:
  PricingConfig cfg_;
  std::vector<double> u_max_;
  std::vector<double> u_min_;
  std::uint64_t id_;        ///< assigned at construction, immutable
  std::uint64_t bump_ = 0;  ///< incremented on every bounds change
};

}  // namespace hadar::core
