// The primal-dual resource price (Sec. III-B). Each (machine h, type r) pair
// carries a dual price k_h^r that rises exponentially with its utilization
// (Eq. 5), between per-type bounds U_min^r (Eq. 7) and U_max^r (Eq. 6)
// recomputed from the live queue at every scheduling event. A job is
// admitted only when its utility exceeds the priced cost of its placement —
// this is what yields the 2*alpha competitive ratio (Theorem 2).
#pragma once

#include <vector>

#include "cluster/cluster_state.hpp"
#include "core/utility.hpp"
#include "sim/scheduler.hpp"

namespace hadar::core {

struct PricingConfig {
  /// Eq. 7 scaling factor eta (>0). Larger eta lowers the admission floor.
  double eta = 1.0;
  /// Floor applied to U_min (numerical guard; prices must stay positive).
  double min_price = 1e-9;
};

/// Per-type price bounds + the Eq. 5 price curve over a ClusterState.
class PriceBook {
 public:
  PriceBook() = default;
  PriceBook(int num_types, PricingConfig cfg);

  /// Recomputes U_max^r / U_min^r (Eqs. 6-8) from the current queue. The
  /// horizon proxy for "ends at T" is now + the queue's serial worst-case
  /// runtime (an online stand-in for the offline T).
  void compute_bounds(const sim::SchedulerContext& ctx, const UtilityFunction& utility);

  /// Eq. 5: k_h^r given the allocated count gamma and the capacity c of the
  /// (h, r) pool. For c == 0 the pool does not exist => +inf.
  double price(GpuTypeId r, int gamma, int capacity) const;

  /// Eq. 5 evaluated directly at a utilization fraction in [0,1].
  double price_at_fraction(GpuTypeId r, double frac) const;

  /// Price of one *additional* device on (h, r) given current state: the
  /// marginal Eq. 5 price evaluated at the pre-allocation gamma.
  double marginal_price(const cluster::ClusterState& state, NodeId h, GpuTypeId r) const;

  /// Total priced cost of an allocation against `state` (devices priced at
  /// the marginal rate as they are claimed one by one).
  double allocation_cost(const cluster::ClusterState& state,
                         const cluster::JobAllocation& alloc) const;

  double u_max(GpuTypeId r) const { return u_max_.at(static_cast<std::size_t>(r)); }
  double u_min(GpuTypeId r) const { return u_min_.at(static_cast<std::size_t>(r)); }

  /// alpha = max_r max(1, ln(Umax/Umin)) — the competitive-ratio factor.
  double alpha() const;

  bool ready() const { return !u_max_.empty(); }

 private:
  PricingConfig cfg_;
  std::vector<double> u_max_;
  std::vector<double> u_min_;
};

}  // namespace hadar::core
