// FIND_ALLOC (Algorithm 2, lines 22-34): the cheapest feasible task-level
// placement for one job under the current dual prices.
//
// Candidates generated, all gang-sized (exactly W_j workers):
//   * consolidated — all workers on a single node, fastest types first
//     (line 24);
//   * non-consolidated — cluster-wide, restricted to the k fastest usable
//     types for every k (line 25): sweeping k trades a faster bottleneck
//     against availability, which is exactly Hadar's task-level flexibility;
//   * the job's current allocation (so continuing in place is always
//     considered and priced).
// Non-consolidated candidates pay communication cost (lines 26-27) twice
// over: their bottleneck throughput is reduced by the network penalty (which
// lengthens the estimated completion and thus lowers utility), and an
// explicit priced surcharge is added per extra node spanned.
// The best candidate maximizes the payoff mu_j = U_j - cost (line 29); a
// job whose best payoff is non-positive is filtered out (lines 30-33).
#pragma once

#include <optional>

#include "cluster/cluster_state.hpp"
#include "core/pricing.hpp"
#include "core/utility.hpp"
#include "sim/scheduler.hpp"

namespace hadar::core {

struct FindAllocConfig {
  /// Extra priced cost per node beyond the first: this fraction of the
  /// placement's mean per-device price, per extra node, per worker.
  double comm_cost_weight = 0.5;
  /// Allow placements mixing GPU types (Hadar's defining capability).
  /// Disabled => job-level homogeneous placements only (Gavel-like).
  bool allow_mixed_types = true;
  /// Allow placements spanning several nodes.
  bool allow_multi_node = true;
};

/// One feasible priced placement.
struct AllocCandidate {
  cluster::JobAllocation alloc;
  double cost = 0.0;        ///< priced device cost + communication surcharge
  double utility = 0.0;     ///< U_j at the estimated completion
  double payoff = 0.0;         ///< utility - cost (the dual mu_j)
  Seconds est_duration = 0.0;  ///< estimated f_j - now under this placement
};

/// Returns the max-payoff candidate for `job` against `state`, or nullopt
/// when no gang-sized placement fits. Does not apply the payoff>0 admission
/// filter — the DP layer decides admission.
std::optional<AllocCandidate> find_alloc(const sim::JobView& job,
                                         const cluster::ClusterState& state,
                                         const PriceBook& prices,
                                         const UtilityFunction& utility, Seconds now,
                                         const sim::NetworkModel& network,
                                         const FindAllocConfig& cfg = {});

}  // namespace hadar::core
