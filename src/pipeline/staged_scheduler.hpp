// Drives a StageSet through one round: admission -> priority -> allocation
// -> placement -> preemption, with per-stage trace spans and metrics. This
// is the only place the stage order lives; every staged policy (Hadar and
// all baselines) is an assembly of stages handed to this driver, so
// ShardedScheduler, RoundEngine, and the service daemon drive staged
// schedulers through the unchanged sim::IScheduler interface.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "pipeline/stage.hpp"

namespace hadar::pipeline {

/// Stage slots in driver order. Also indexes stage_seconds().
enum class StageKind : int {
  kAdmission = 0,
  kPriority = 1,
  kAllocation = 2,
  kPlacement = 3,
  kPreemption = 4,
};
inline constexpr int kNumStages = 5;

const char* to_string(StageKind k);

/// sim::IScheduler implemented as a stage pipeline. Owns the RoundState and
/// the per-round ClusterState (reused across rounds: clear()ed in place
/// while the spec pointer is stable, reconstructed when it changes — both
/// paths rebuild from the live spec, so the contents are identical either
/// way and topology changes are picked up).
class StagedScheduler : public sim::IScheduler {
 public:
  StagedScheduler(std::string name, StageSet stages);

  std::string name() const override;
  cluster::AllocationMap schedule(const sim::SchedulerContext& ctx) override;

  /// reset()/save_state()/restore_state() delegate to every distinct stage
  /// object once, in driver order; a stage shared between slots is visited
  /// only at its first slot. Policy assemblies therefore keep byte-stable
  /// state formats as long as their stage ownership is stable.
  void reset() override;
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

  const StageSet& stages() const { return stages_; }

  /// Test hook: invoked after each stage with the stage's RoundState output.
  /// Costs one branch per stage when unset; never set it on hot paths.
  using StageObserver = std::function<void(StageKind, const RoundState&)>;
  void set_stage_observer(StageObserver cb) { observer_ = std::move(cb); }

  /// Bench hook: accumulate per-stage wall time. Off by default (the hot
  /// path then takes no clock reads beyond tracing's own).
  void enable_stage_timing(bool on) { timing_ = on; }
  /// Accumulated seconds per StageKind since enable_stage_timing(true).
  const std::array<double, kNumStages>& stage_seconds() const { return stage_seconds_; }
  std::uint64_t timed_rounds() const { return timed_rounds_; }

 private:
  template <typename Fn>
  void run_stage(StageKind kind, RoundState& rs, Fn&& fn);
  IStage* slot(int i) const;
  /// True when slot i holds the first occurrence of its stage object.
  bool first_occurrence(int i) const;

  std::string name_;
  StageSet stages_;
  std::optional<cluster::ClusterState> state_;
  RoundState rs_;
  StageObserver observer_;
  bool timing_ = false;
  std::array<double, kNumStages> stage_seconds_{};
  std::uint64_t timed_rounds_ = 0;
};

}  // namespace hadar::pipeline
