#include "pipeline/staged_scheduler.hpp"

#include <stdexcept>

#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace hadar::pipeline {

namespace {

struct StageMeta {
  const char* label;        // to_string(kind)
  const char* span;         // per-stage trace span (DESIGN.md §10)
  const char* metric;       // per-stage duration histogram (milliseconds)
};

constexpr StageMeta kMeta[kNumStages] = {
    {"admission", "stage.admission", "pipeline.admission_ms"},
    {"priority", "stage.priority", "pipeline.priority_ms"},
    {"allocation", "stage.allocation", "pipeline.allocation_ms"},
    {"placement", "stage.placement", "pipeline.placement_ms"},
    {"preemption", "stage.preemption", "pipeline.preemption_ms"},
};

}  // namespace

const char* to_string(StageKind k) { return kMeta[static_cast<int>(k)].label; }

StagedScheduler::StagedScheduler(std::string name, StageSet stages)
    : name_(std::move(name)), stages_(std::move(stages)) {
  if (!stages_.admission || !stages_.priority || !stages_.allocation ||
      !stages_.placement || !stages_.preemption) {
    throw std::invalid_argument("StagedScheduler: every stage slot must be filled");
  }
}

std::string StagedScheduler::name() const { return name_; }

IStage* StagedScheduler::slot(int i) const {
  switch (static_cast<StageKind>(i)) {
    case StageKind::kAdmission: return stages_.admission.get();
    case StageKind::kPriority: return stages_.priority.get();
    case StageKind::kAllocation: return stages_.allocation.get();
    case StageKind::kPlacement: return stages_.placement.get();
    case StageKind::kPreemption: return stages_.preemption.get();
  }
  return nullptr;
}

bool StagedScheduler::first_occurrence(int i) const {
  for (int j = 0; j < i; ++j) {
    if (slot(j) == slot(i)) return false;
  }
  return true;
}

template <typename Fn>
void StagedScheduler::run_stage(StageKind kind, RoundState& rs, Fn&& fn) {
  const StageMeta& m = kMeta[static_cast<int>(kind)];
  obs::ScopedSpan span("pipeline", m.span, 1);
  if (timing_ || span.active()) {
    common::WallTimer t;
    fn();
    const double s = t.seconds();
    if (timing_) stage_seconds_[static_cast<int>(kind)] += s;
    if (span.active()) obs::observe(m.metric, s * 1e3);
  } else {
    fn();
  }
  if (observer_) observer_(kind, rs);
}

cluster::AllocationMap StagedScheduler::schedule(const sim::SchedulerContext& ctx) {
  if (ctx.spec == nullptr) throw std::invalid_argument("StagedScheduler: null spec");
  if (!state_ || &state_->spec() != ctx.spec) {
    state_.emplace(ctx.spec);
  } else {
    state_->clear();
  }
  rs_.begin_round(ctx, &*state_);

  run_stage(StageKind::kAdmission, rs_, [&] { stages_.admission->admit(rs_); });
  run_stage(StageKind::kPriority, rs_, [&] { stages_.priority->prioritize(rs_); });
  run_stage(StageKind::kAllocation, rs_, [&] { stages_.allocation->allocate(rs_); });
  run_stage(StageKind::kPlacement, rs_, [&] { stages_.placement->place(rs_); });
  run_stage(StageKind::kPreemption, rs_, [&] { stages_.preemption->preempt(rs_); });
  if (timing_) ++timed_rounds_;

  return std::move(rs_.result);
}

void StagedScheduler::reset() {
  for (int i = 0; i < kNumStages; ++i) {
    if (first_occurrence(i)) slot(i)->reset();
  }
  state_.reset();
  stage_seconds_.fill(0.0);
  timed_rounds_ = 0;
}

void StagedScheduler::save_state(common::BinaryWriter& w) const {
  for (int i = 0; i < kNumStages; ++i) {
    if (first_occurrence(i)) slot(i)->save_state(w);
  }
}

void StagedScheduler::restore_state(common::BinaryReader& r) {
  for (int i = 0; i < kNumStages; ++i) {
    if (first_occurrence(i)) slot(i)->restore_state(r);
  }
}

}  // namespace hadar::pipeline
