// Shared stages extracted from the formerly duplicated per-scheduler code:
// the pass-through admission every non-sticky policy used implicitly, the
// FIFO priority order, the greedy packing loop (Gavel/Tiresias/YARN all
// carried a copy), and the no-op allocation/preemption slots greedy policies
// leave empty. Policy assemblies combine these with their own stages.
#pragma once

#include <functional>

#include "pipeline/stage.hpp"

namespace hadar::pipeline {

/// Admits every runnable job unchanged: rs.queue = all of rs.jobs in
/// context (arrival) order. Stateless.
class PassThroughAdmissionStage final : public IAdmissionStage {
 public:
  std::string name() const override { return "admit.pass-through"; }
  void admit(RoundState& rs) override;
};

/// Ranks the queue FIFO (context order is arrival order), one any-type
/// candidate per job that is not already holding a result entry. Stateless.
class ArrivalOrderPriorityStage final : public IPriorityStage {
 public:
  std::string name() const override { return "priority.arrival-order"; }
  void prioritize(RoundState& rs) override;
};

/// No optimization solve: rs.proposed stays empty (greedy policies place
/// straight from rs.ranked). Stateless.
class NoSolveStage final : public IAllocationStage {
 public:
  std::string name() const override { return "allocate.none"; }
  void allocate(RoundState&) override {}
};

struct GreedyPlacementOptions {
  /// Stop packing at the first candidate whose gang does not fit (YARN-CS
  /// head-of-line blocking). Default: skip it and keep going (backfill).
  bool stop_on_first_failure = false;
};

/// The shared packing loop: first commits rs.proposed verbatim (solver
/// output), then walks rs.ranked best-first and places at most one candidate
/// per job — take_homogeneous() when the candidate pins a type,
/// take_unaware() over the job's usable types (rate > 0, ascending type
/// order) otherwise. `on_place` fires for every allocation this stage
/// commits (policies hook their sticky bookkeeping here, e.g. YARN's
/// running set). Holds only reusable scratch.
class GreedyPlacementStage final : public IPlacementStage {
 public:
  using PlacedHook = std::function<void(JobId, const cluster::JobAllocation&)>;
  explicit GreedyPlacementStage(GreedyPlacementOptions opts = {}, PlacedHook on_place = {});

  std::string name() const override { return "place.greedy"; }
  void place(RoundState& rs) override;

 private:
  GreedyPlacementOptions opts_;
  PlacedHook on_place_;
  std::vector<GpuTypeId> usable_;  // reused per-candidate scratch
};

/// No preemption pass: round-based policies preempt implicitly (a job absent
/// from the result is paused by the simulator). Stateless.
class NoPreemptionStage final : public IPreemptionStage {
 public:
  std::string name() const override { return "preempt.none"; }
  void preempt(RoundState&) override {}
};

}  // namespace hadar::pipeline
