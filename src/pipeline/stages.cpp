#include "pipeline/stages.hpp"

#include <utility>

#include "cluster/placement.hpp"

namespace hadar::pipeline {

void PassThroughAdmissionStage::admit(RoundState& rs) {
  rs.queue.reserve(rs.jobs.size());
  for (const auto& j : rs.jobs) rs.queue.push_back(&j);
}

void ArrivalOrderPriorityStage::prioritize(RoundState& rs) {
  rs.ranked.reserve(rs.queue.size());
  for (const sim::JobView* j : rs.queue) {
    if (rs.result.count(j->id())) continue;  // already pinned by admission
    rs.ranked.push_back(RoundState::Candidate{j, -1, 0.0});
  }
}

GreedyPlacementStage::GreedyPlacementStage(GreedyPlacementOptions opts, PlacedHook on_place)
    : opts_(opts), on_place_(std::move(on_place)) {}

void GreedyPlacementStage::place(RoundState& rs) {
  cluster::ClusterState& state = *rs.state;

  // Solver output first, verbatim and in proposal order.
  for (auto& [id, alloc] : rs.proposed) {
    state.allocate(alloc);
    if (on_place_) on_place_(id, alloc);
    rs.result.emplace(id, std::move(alloc));
  }
  rs.proposed.clear();

  // Then the greedy pack over ranked candidates.
  for (const RoundState::Candidate& c : rs.ranked) {
    const JobId id = c.job->id();
    if (rs.result.count(id)) continue;  // at most one placement per job
    std::optional<cluster::JobAllocation> alloc;
    if (c.type >= 0) {
      alloc = cluster::take_homogeneous(state, c.type, c.job->spec->num_workers);
    } else {
      // Restrict to types the job can actually run on (rate > 0); a
      // zero-rate device would stall the gang's synchronization barrier.
      usable_.clear();
      for (GpuTypeId r = 0; r < rs.ctx->spec->num_types(); ++r) {
        if (c.job->throughput_on(r) > 0.0) usable_.push_back(r);
      }
      alloc = cluster::take_unaware(state, usable_, c.job->spec->num_workers);
    }
    if (!alloc) {
      if (opts_.stop_on_first_failure) break;  // the queue head blocks everyone
      continue;
    }
    state.allocate(*alloc);
    if (on_place_) on_place_(id, *alloc);
    rs.result.emplace(id, std::move(*alloc));
  }
}

}  // namespace hadar::pipeline
