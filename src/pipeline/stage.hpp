// The Blox-style round pipeline (Agarwal et al.): one scheduling round is
// factored into five stages with stable interfaces —
//
//   admission  -> priority/utility -> allocation solve -> placement -> preemption
//
// so a policy is a *composition of stages* rather than a monolithic
// schedule() body. Hadar's FIND_ALLOC/DP is an allocation stage, Gavel's LP
// another; the packing loops the baselines used to duplicate live in one
// shared GreedyPlacementStage. New policies (deadline, quota, elastic) become
// stage swaps instead of new schedulers.
//
// Data flow: the StagedScheduler driver owns a RoundState that threads the
// round's intermediate products between stages. Each stage reads the fields
// earlier stages produced and writes its own:
//
//   admission   ctx/jobs -> jobs (may swap in an estimator view), queue,
//               and any pinned allocations committed straight into
//               state/result (non-preemptive or sticky policies).
//   priority    queue/jobs -> a sorted `queue` (solver-bound policies) or a
//               `ranked` candidate list (greedy policies), plus any
//               cross-round model refresh (price bounds, LP change detection).
//   allocation  queue -> `proposed` placements (the optimization solve).
//               Greedy policies with no solve leave `proposed` empty.
//   placement   commits `proposed` into state/result, then realizes `ranked`
//               candidates against the remaining free devices.
//   preemption  may revoke or force entries in `result` (liveness guards,
//               service-based preemption).
//
// State ownership (DESIGN.md §14): RoundState and the ClusterState it points
// at are owned by the driver and valid only inside one schedule() call.
// Stages own their cross-round policy state exclusively; reset() clears it
// and save_state()/restore_state() persist it. Per-round scratch a stage
// keeps for reuse (sort buffers, LP problem storage) is speed-only state:
// it must never change a decision and need not be persisted.
//
// Bit-identity contract: the driver invokes stages in the fixed order above,
// exactly once per round, with no reordering or elision — the 16 golden
// digests in tests/test_cluster_state_soa.cpp pin that schedules through the
// pipeline are bit-identical to the former monolithic schedulers.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_state.hpp"
#include "sim/scheduler.hpp"

namespace hadar::common {
class BinaryWriter;
class BinaryReader;
}  // namespace hadar::common

namespace hadar::pipeline {

/// Everything one round threads between stages. Owned by the driver and
/// reused across rounds (buffers keep their capacity); begin_round() resets
/// the per-round fields. Nothing in here survives schedule() returning.
struct RoundState {
  /// The simulator's context for this round (never null inside a stage).
  const sim::SchedulerContext* ctx = nullptr;

  /// The round's job view. Defaults to ctx->jobs; an admission stage may
  /// repoint it at a policy-transformed copy (e.g. Hadar's estimator view).
  /// The pointee must stay alive until the round ends.
  std::span<const sim::JobView> jobs;

  /// Jobs still waiting after admission (arrival order until a priority
  /// stage reorders it). Pinned jobs are already in `result`, not here.
  std::vector<const sim::JobView*> queue;

  /// One placement intent emitted by a priority stage for greedy
  /// realization. `type` >= 0 restricts the candidate to that device type
  /// (job-level homogeneity, Gavel); `type` < 0 lets the placement stage
  /// fill the gang from any type the job can use (Tiresias/YARN).
  struct Candidate {
    const sim::JobView* job = nullptr;
    GpuTypeId type = -1;
    double priority = 0.0;
  };
  /// Ranked placement intents, best first. May hold several entries per job;
  /// the placement stage realizes at most one.
  std::vector<Candidate> ranked;

  /// Allocation-stage output: concrete placements awaiting commit, in the
  /// order the placement stage must apply them.
  std::vector<std::pair<JobId, cluster::JobAllocation>> proposed;

  /// Driver-owned device usage for the round; every allocation that lands in
  /// `result` must be applied here first (capacity bookkeeping).
  cluster::ClusterState* state = nullptr;

  /// The round's decision as built so far; schedule() returns it.
  cluster::AllocationMap result;

  void begin_round(const sim::SchedulerContext& c, cluster::ClusterState* st) {
    ctx = &c;
    jobs = std::span<const sim::JobView>(c.jobs);
    queue.clear();
    ranked.clear();
    proposed.clear();
    state = st;
    result.clear();
  }
};

/// Base of every stage. A stage owns its cross-round policy state
/// exclusively: reset() clears it, save_state()/restore_state() persist the
/// decision-relevant part (same contract as sim::IScheduler). Stages are
/// invoked from one thread at a time (the driver), never concurrently.
class IStage {
 public:
  virtual ~IStage() = default;
  virtual std::string name() const = 0;
  virtual void reset() {}
  virtual void save_state(common::BinaryWriter&) const {}
  virtual void restore_state(common::BinaryReader&) {}
};

/// Decides who participates this round: fills rs.queue, may transform
/// rs.jobs, and may pin allocations straight into rs.state/rs.result
/// (sticky and non-preemptive policies commit their held placements here).
class IAdmissionStage : public IStage {
 public:
  virtual void admit(RoundState& rs) = 0;
};

/// Orders the work: sorts rs.queue and/or emits rs.ranked candidates.
/// Cross-round models that feed the ordering (price bounds, Gavel's Y
/// refresh detection) are maintained here.
class IPriorityStage : public IStage {
 public:
  virtual void prioritize(RoundState& rs) = 0;
};

/// The optimization solve: consumes rs.queue (and the models the priority
/// stage refreshed) and emits rs.proposed. Policies without a solve use a
/// no-op stage and rely on ranked + placement.
class IAllocationStage : public IStage {
 public:
  virtual void allocate(RoundState& rs) = 0;
};

/// Realizes decisions against free devices: commits rs.proposed, then packs
/// rs.ranked greedily. Everything it places must go through rs.state.
class IPlacementStage : public IStage {
 public:
  virtual void place(RoundState& rs) = 0;
};

/// Post-pass over the round's result: revoke grants (service-based
/// preemption) or force progress (liveness guards). Runs last.
class IPreemptionStage : public IStage {
 public:
  virtual void preempt(RoundState& rs) = 0;
};

/// One full pipeline. Stages are shared_ptr so assemblies can share a policy
/// core between their stages and tests can mix stages across policies.
struct StageSet {
  std::shared_ptr<IAdmissionStage> admission;
  std::shared_ptr<IPriorityStage> priority;
  std::shared_ptr<IAllocationStage> allocation;
  std::shared_ptr<IPlacementStage> placement;
  std::shared_ptr<IPreemptionStage> preemption;
};

}  // namespace hadar::pipeline
