#include "runner/scenarios.hpp"

#include "workload/model_zoo.hpp"

namespace hadar::runner {
namespace {

workload::Trace make_trace(const cluster::ClusterSpec& spec, const workload::TraceGenConfig& cfg) {
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &spec.types());
  return gen.generate(cfg);
}

}  // namespace

ExperimentConfig paper_static(int num_jobs, std::uint64_t seed) {
  ExperimentConfig e;
  e.spec = cluster::ClusterSpec::simulation_default();
  workload::TraceGenConfig t;
  t.num_jobs = num_jobs;
  t.arrivals = workload::ArrivalPattern::kStatic;
  t.seed = seed;
  e.trace = make_trace(e.spec, t);
  e.sim.round_length = 360.0;
  e.sim.flat_reallocation_penalty = 10.0;
  e.sim.seed = seed;
  return e;
}

ExperimentConfig paper_continuous(double jobs_per_hour, int num_jobs, std::uint64_t seed) {
  ExperimentConfig e;
  e.spec = cluster::ClusterSpec::simulation_default();
  workload::TraceGenConfig t;
  t.num_jobs = num_jobs;
  t.arrivals = workload::ArrivalPattern::kContinuous;
  t.jobs_per_hour = jobs_per_hour;
  t.seed = seed;
  e.trace = make_trace(e.spec, t);
  e.sim.round_length = 360.0;
  e.sim.flat_reallocation_penalty = 10.0;
  e.sim.seed = seed;
  return e;
}

ExperimentConfig slo_static(int num_jobs, std::uint64_t seed, double deadline_fraction,
                            int num_tenants) {
  ExperimentConfig e;
  e.spec = cluster::ClusterSpec::simulation_default();
  workload::TraceGenConfig t;
  t.num_jobs = num_jobs;
  t.arrivals = workload::ArrivalPattern::kStatic;
  t.seed = seed;
  t.deadline_fraction = deadline_fraction;
  t.num_tenants = num_tenants;
  e.trace = make_trace(e.spec, t);
  e.sim.round_length = 360.0;
  e.sim.flat_reallocation_penalty = 10.0;
  e.sim.seed = seed;
  return e;
}

ExperimentConfig resilience(double node_mttf, double node_mttr, double gpu_mttf,
                            double gpu_mttr, int num_jobs, std::uint64_t seed) {
  ExperimentConfig e = paper_static(num_jobs, seed);
  e.sim.failure.node_mttf = node_mttf;
  e.sim.failure.node_mttr = node_mttr;
  e.sim.failure.gpu_mttf = gpu_mttf;
  e.sim.failure.gpu_mttr = gpu_mttr;
  // Decoupled from the workload seed: varying the trace keeps the failure
  // timeline fixed, and vice versa.
  e.sim.failure.seed = seed ^ 0x5bd1e995u;
  return e;
}

ExperimentConfig prototype(bool testbed_noise, std::uint64_t seed) {
  ExperimentConfig e;
  e.spec = cluster::ClusterSpec::aws_prototype();
  static const workload::ModelZoo zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &e.spec.types());
  e.trace = gen.prototype_workload(seed);
  e.sim.round_length = 360.0;
  e.sim.seed = seed;
  // Table IV per-model checkpoint costs instead of the flat 10 s.
  e.sim.use_flat_reallocation_penalty = false;
  e.sim.charge_periodic_save = true;
  if (testbed_noise) e.sim.throughput_jitter = 0.08;
  return e;
}

}  // namespace hadar::runner
