#include "runner/tune_policy.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace hadar::runner {
namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Max tenant share relative to its ideal weighted share; 1.0 = perfectly
/// proportional, higher = some tenant hogging the cluster.
double imbalance_of(const sim::SimResult& r, const core::PolicyConfig& p) {
  if (r.tenant_shares.size() < 2) return 1.0;
  double total_w = 0.0;
  for (const sim::TenantShare& ts : r.tenant_shares) total_w += p.weight_of(ts.tenant);
  if (total_w <= 0.0) return 1.0;
  double imb = 1.0;
  for (const sim::TenantShare& ts : r.tenant_shares) {
    const double ideal = p.weight_of(ts.tenant) / total_w;
    if (ideal > 0.0) imb = std::max(imb, ts.share / ideal);
  }
  return imb;
}

}  // namespace

double tune_score(const TunePoint& p) {
  const double tardiness_norm = p.makespan > 0.0 ? p.avg_tardiness / p.makespan : 0.0;
  return p.deadline_attainment - tardiness_norm - 0.25 * std::max(0.0, p.tenant_imbalance - 1.0);
}

TuneResult tune_policy(const std::string& scheduler, const ExperimentConfig& config,
                       const TuneGrid& grid) {
  if (grid.deadline_weights.empty() || grid.fairness_weights.empty() ||
      grid.quota_strictness.empty()) {
    throw std::invalid_argument("tune_policy: empty grid axis");
  }

  // Grid enumeration order IS the tie-break order: deadline-major, then
  // fairness, then strictness, matching the declaration order above.
  std::vector<core::PolicyConfig> policies;
  std::vector<SweepCase> cases;
  for (double dw : grid.deadline_weights) {
    for (double fw : grid.fairness_weights) {
      for (double qs : grid.quota_strictness) {
        core::PolicyConfig p;
        p.deadline_weight = dw;
        p.fairness_weight = fw;
        p.quota_strictness = qs;
        p.quota_gpu_hours = grid.quota_gpu_hours;
        p.validate();
        SweepCase c;
        c.label = "dw=" + fmt(dw) + ",fw=" + fmt(fw) + ",qs=" + fmt(qs);
        c.scheduler = scheduler;
        c.config = config;
        // Per-case decoration instead of the process-global env overlay:
        // the same grid runs concurrently without racing on environment.
        c.factory = [scheduler, p] {
          return core::with_policy(make_flat_scheduler(scheduler), p);
        };
        policies.push_back(std::move(p));
        cases.push_back(std::move(c));
      }
    }
  }

  const std::vector<SweepResult> runs = sweep(cases);

  TuneResult out;
  out.scheduler = scheduler;
  out.points.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const sim::SimResult& r = runs[i].result;
    TunePoint pt;
    pt.policy = policies[i];
    pt.deadline_attainment = r.deadline_attainment;
    pt.avg_tardiness = r.avg_tardiness;
    pt.tenant_imbalance = imbalance_of(r, policies[i]);
    pt.avg_jct = r.avg_jct;
    pt.makespan = r.makespan;
    pt.score = tune_score(pt);
    // Strict > keeps the earliest grid point on ties, so the winner is a
    // pure function of the grid + scenario, independent of HADAR_THREADS.
    if (out.best < 0 || pt.score > out.points[static_cast<std::size_t>(out.best)].score) {
      out.best = static_cast<int>(i);
    }
    out.points.push_back(std::move(pt));
  }
  return out;
}

std::string tune_result_json(const TuneResult& r) {
  auto point_json = [](const TunePoint& p) {
    std::ostringstream os;
    os << "{\"deadline_weight\": " << fmt(p.policy.deadline_weight)
       << ", \"fairness_weight\": " << fmt(p.policy.fairness_weight)
       << ", \"quota_strictness\": " << fmt(p.policy.quota_strictness)
       << ", \"quota_gpu_hours\": " << fmt(p.policy.quota_gpu_hours)
       << ", \"score\": " << fmt(p.score)
       << ", \"deadline_attainment\": " << fmt(p.deadline_attainment)
       << ", \"avg_tardiness_s\": " << fmt(p.avg_tardiness)
       << ", \"tenant_imbalance\": " << fmt(p.tenant_imbalance)
       << ", \"avg_jct_s\": " << fmt(p.avg_jct)
       << ", \"makespan_s\": " << fmt(p.makespan) << "}";
    return os.str();
  };

  std::ostringstream os;
  os << "{\n  \"scheduler\": \"" << r.scheduler << "\",\n";
  os << "  \"grid_points\": " << r.points.size() << ",\n";
  os << "  \"best\": " << (r.best >= 0 ? point_json(r.best_point()) : "null") << ",\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    os << "    " << point_json(r.points[i]) << (i + 1 < r.points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace hadar::runner
