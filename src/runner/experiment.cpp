#include "runner/experiment.hpp"

#include <cstdio>
#include <stdexcept>

#include "baselines/gavel.hpp"
#include "common/thread_pool.hpp"
#include "baselines/srtf.hpp"
#include "baselines/tiresias.hpp"
#include "baselines/yarn_cs.hpp"
#include "core/hadar_scheduler.hpp"
#include "core/policy_stages.hpp"
#include "obs/trace.hpp"

namespace hadar::runner {

const std::vector<std::string> kPaperSchedulers = {"hadar", "gavel", "tiresias", "yarn"};
const std::vector<std::string> kPreemptiveSchedulers = {"hadar", "gavel", "tiresias"};

namespace {

/// The HADAR_DEADLINE_WEIGHT / HADAR_QUOTA_* environment overlay: wraps
/// staged schedulers with the policy decorators when any knob is set.
/// Non-staged schedulers (srtf) pass through with a warning rather than
/// failing the whole factory.
sim::SchedulerPtr apply_policy_env(sim::SchedulerPtr s) {
  const core::PolicyConfig cfg = core::PolicyConfig::from_env();
  if (!cfg.enabled()) return s;
  if (dynamic_cast<pipeline::StagedScheduler*>(s.get()) == nullptr) {
    std::fprintf(stderr,
                 "[hadar] warning: policy knobs set but '%s' is not a staged "
                 "scheduler; running it without deadline/quota stages\n",
                 s->name().c_str());
    return s;
  }
  return core::with_policy(std::move(s), cfg);
}

sim::SchedulerPtr make_base_scheduler(const std::string& name) {
  using core::HadarConfig;
  using core::HadarScheduler;
  using core::UtilityKind;

  if (name == "hadar") {
    return std::make_unique<HadarScheduler>();
  }
  if (name == "hadar-makespan") {
    HadarConfig cfg;
    cfg.utility = UtilityKind::kMinMakespan;
    return std::make_unique<HadarScheduler>(cfg);
  }
  if (name == "hadar-ftf") {
    HadarConfig cfg;
    cfg.utility = UtilityKind::kFinishTimeFairness;
    return std::make_unique<HadarScheduler>(cfg);
  }
  if (name == "hadar-nomix") {
    HadarConfig cfg;
    cfg.dp.find_alloc.allow_mixed_types = false;
    return std::make_unique<HadarScheduler>(cfg);
  }
  if (name == "hadar-greedy") {
    HadarConfig cfg;
    cfg.dp.beam_width = 1;
    return std::make_unique<HadarScheduler>(cfg);
  }
  if (name == "hadar-estimator") {
    HadarConfig cfg;
    cfg.use_estimator = true;
    return std::make_unique<HadarScheduler>(cfg);
  }
  if (name == "gavel") return std::make_unique<baselines::GavelScheduler>();
  if (name == "gavel-maxsum") {
    baselines::GavelConfig cfg;
    cfg.policy = baselines::GavelPolicy::kMaxSumThroughput;
    return std::make_unique<baselines::GavelScheduler>(cfg);
  }
  if (name == "gavel-makespan") {
    baselines::GavelConfig cfg;
    cfg.policy = baselines::GavelPolicy::kMinMakespan;
    return std::make_unique<baselines::GavelScheduler>(cfg);
  }
  if (name == "tiresias") return std::make_unique<baselines::TiresiasScheduler>();
  if (name == "tiresias-promote") {
    baselines::TiresiasConfig cfg;
    cfg.promote_after_starved_rounds = 10;
    return std::make_unique<baselines::TiresiasScheduler>(cfg);
  }
  if (name == "yarn") return std::make_unique<baselines::YarnCsScheduler>();
  if (name == "yarn-backfill") {
    baselines::YarnConfig cfg;
    cfg.backfill = true;
    return std::make_unique<baselines::YarnCsScheduler>(cfg);
  }
  if (name == "srtf") return std::make_unique<baselines::SrtfScheduler>();
  throw std::invalid_argument("make_scheduler: unknown scheduler '" + name + "'");
}

}  // namespace

sim::SchedulerPtr make_flat_scheduler(const std::string& name) {
  return apply_policy_env(make_base_scheduler(name));
}

sim::SchedulerPtr make_sharded_scheduler(const std::string& name, sim::ShardConfig cfg) {
  // Validate the name eagerly so a typo still throws here, not on the first
  // schedule() inside a worker thread.
  make_flat_scheduler(name);
  return std::make_unique<sim::ShardedScheduler>(
      [name] { return make_flat_scheduler(name); }, cfg);
}

sim::SchedulerPtr make_scheduler(const std::string& name) {
  const sim::ShardConfig cfg = sim::ShardConfig::from_env();
  if (cfg.cells == 1) return make_flat_scheduler(name);
  return make_sharded_scheduler(name, cfg);
}

std::vector<SchedulerRun> compare(const ExperimentConfig& cfg,
                                  const std::vector<std::string>& schedulers) {
  HADAR_TRACE_SCOPE("runner", "runner.compare");
  return common::parallel_map(schedulers.size(), [&](std::size_t i) {
    obs::ScopedSpan span("runner", "runner.case");
    if (span.active()) span.str_arg("case", schedulers[i]);
    sim::Simulator simulator(cfg.sim);
    auto sched = make_scheduler(schedulers[i]);
    return SchedulerRun{sched->name(), simulator.run(cfg.spec, cfg.trace, *sched)};
  });
}

std::vector<SweepResult> sweep(const std::vector<SweepCase>& cases) {
  HADAR_TRACE_SCOPE("runner", "runner.sweep");
  return common::parallel_map(cases.size(), [&](std::size_t i) {
    const SweepCase& c = cases[i];
    obs::ScopedSpan span("runner", "runner.case");
    if (span.active()) span.str_arg("case", c.label + "/" + c.scheduler);
    sim::Simulator simulator(c.config.sim);
    auto sched = c.factory ? c.factory() : make_scheduler(c.scheduler);
    return SweepResult{c.label, sched->name(),
                       simulator.run(c.config.spec, c.config.trace, *sched)};
  });
}

}  // namespace hadar::runner
