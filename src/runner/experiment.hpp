// Experiment harness shared by the bench binaries and examples: a scheduler
// factory keyed by name and a one-call comparison runner that executes the
// same (cluster, trace, sim-config) under several schedulers.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"

namespace hadar::runner {

/// One reproducible experiment setup.
struct ExperimentConfig {
  cluster::ClusterSpec spec;
  workload::Trace trace;
  sim::SimConfig sim;
};

/// Builds a scheduler by name:
///   "hadar"            Hadar, default (effective-throughput utility)
///   "hadar-makespan"   Hadar with the min-makespan utility
///   "hadar-ftf"        Hadar with the finish-time-fairness utility
///   "hadar-nomix"      Hadar restricted to homogeneous placements (ablation)
///   "hadar-greedy"     Hadar with beam_width 1 (pure greedy, ablation)
///   "hadar-estimator"  Hadar driven by the profiling throughput estimator
///   "gavel" | "gavel-maxsum" | "gavel-makespan"   Gavel policy variants
///   "tiresias" | "tiresias-promote"               PromoteKnob off / on
///   "yarn" | "yarn-backfill"                      strict FIFO / backfill
///   "srtf"
/// Throws std::invalid_argument for unknown names.
///
/// Honors the sharding environment overlay (HADAR_CELLS /
/// HADAR_CELL_MIGRATION, see sim/sharded.hpp): with HADAR_CELLS != 1 the
/// named policy comes back wrapped in a ShardedScheduler, so every consumer
/// of the factory — benches, examples, the service daemon — gets cell-level
/// parallel scheduling from the environment alone.
sim::SchedulerPtr make_scheduler(const std::string& name);

/// make_scheduler() without the sharding environment overlay: always the
/// flat (unsharded) policy. Both factories honor the policy overlay
/// (HADAR_DEADLINE_WEIGHT / HADAR_QUOTA_*, core/policy_stages.hpp): when a
/// policy knob is set, staged schedulers come back wrapped by with_policy()
/// — under sharding each cell's scheduler is wrapped individually.
sim::SchedulerPtr make_flat_scheduler(const std::string& name);

/// The named policy wrapped for cell-sharded scheduling with an explicit
/// config (cfg.cells == 1 behaves exactly like the flat policy).
sim::SchedulerPtr make_sharded_scheduler(const std::string& name, sim::ShardConfig cfg);

/// Result of running one scheduler on an experiment.
struct SchedulerRun {
  std::string scheduler;
  sim::SimResult result;
};

/// Runs each named scheduler over the experiment (fresh simulator each).
/// Simulations are independent, so they fan out across the HADAR_THREADS
/// worker pool; results are returned in `schedulers` order and are
/// identical at every thread count (simulations are seeded and isolated).
std::vector<SchedulerRun> compare(const ExperimentConfig& cfg,
                                  const std::vector<std::string>& schedulers);

/// One cell of a scheduler x scenario x seed sweep.
struct SweepCase {
  std::string label;      ///< caller-chosen key, e.g. "rate=40" or "seed=7"
  std::string scheduler;  ///< make_scheduler() name
  ExperimentConfig config;
  /// When set, builds this case's scheduler instead of
  /// make_scheduler(scheduler). Must be callable concurrently with itself
  /// (each case invokes it once, possibly from a pool worker). This is how
  /// tune_policy varies PolicyConfig per case without touching the
  /// process-global environment.
  std::function<sim::SchedulerPtr()> factory = {};
};

/// SweepCase outcome; `label`/`scheduler` echo the case for readers.
struct SweepResult {
  std::string label;
  std::string scheduler;
  sim::SimResult result;
};

/// Runs every case (fresh simulator + scheduler each) across the
/// HADAR_THREADS pool.
///
/// Ordering contract (pinned by tests/test_policy.cpp): results are
/// positional — result[i] is the outcome of cases[i], always. The pool maps
/// workers to indices, never to completion order, and each case's simulation
/// is seeded and isolated, so the returned vector is byte-identical at every
/// HADAR_THREADS value. Grid searches (tune_policy) rely on this to make
/// "first best in grid order" reproducible across thread counts.
///
/// This is the engine behind the fig07/fig08/fig09 benches and the perf
/// harness — a four-scheduler paper comparison is one sweep.
std::vector<SweepResult> sweep(const std::vector<SweepCase>& cases);

/// The paper's four-way comparison set.
extern const std::vector<std::string> kPaperSchedulers;  // hadar gavel tiresias yarn
/// The preemptive-only subset used by the FTF/makespan figures.
extern const std::vector<std::string> kPreemptiveSchedulers;  // hadar gavel tiresias

}  // namespace hadar::runner
