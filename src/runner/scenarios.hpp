// Canonical experiment setups matching the paper's evaluation section; every
// bench binary obtains its workload here so figures stay mutually
// consistent.
#pragma once

#include "runner/experiment.hpp"
#include "workload/trace_gen.hpp"

namespace hadar::runner {

/// Sec. IV-A static trace: 15-node / 60-GPU cluster, `num_jobs` jobs all
/// present at t=0, 6-minute rounds, flat 10 s reallocation penalty.
ExperimentConfig paper_static(int num_jobs = 480, std::uint64_t seed = 42);

/// Sec. IV-A continuous trace: Poisson arrivals at `jobs_per_hour`.
ExperimentConfig paper_continuous(double jobs_per_hour, int num_jobs = 480,
                                  std::uint64_t seed = 42);

/// Sec. IV-B prototype: 8-GPU AWS cluster, the 10-job Table II mix.
/// `testbed_noise` > 0 adds per-round throughput jitter + per-model Table IV
/// checkpoint costs, standing in for the physical testbed.
ExperimentConfig prototype(bool testbed_noise, std::uint64_t seed = 7);

/// paper_static with deadlines and tenants: `deadline_fraction` of the jobs
/// carry a deadline at 1.5-4x their ideal runtime, and every job belongs to
/// one of `num_tenants` tenants (both drawn from salted per-job streams, so
/// the base job attributes match paper_static(num_jobs, seed) exactly).
/// This is the fixed-seed scenario the SLO tests and bench_policy pin.
ExperimentConfig slo_static(int num_jobs = 480, std::uint64_t seed = 42,
                            double deadline_fraction = 0.5, int num_tenants = 3);

/// paper_static plus fault injection: per-node crashes at the given MTTF
/// (seconds; 0 disables) with `node_mttr` mean repair time, and optional
/// single-GPU degrades. The failure seed is fixed per scenario so every
/// scheduler faces the identical availability timeline.
ExperimentConfig resilience(double node_mttf, double node_mttr = 3600.0,
                            double gpu_mttf = 0.0, double gpu_mttr = 3600.0,
                            int num_jobs = 480, std::uint64_t seed = 42);

}  // namespace hadar::runner
