// Policy auto-tuner (the HPS exemplar's weight-sweep shape): grid-searches
// (deadline_weight, fairness_weight, quota_strictness) over runner::sweep
// and scores each run with a fixed composite of deadline attainment,
// normalized tardiness, and tenant imbalance. Deterministic end to end: the
// grid is enumerated in a fixed order, sweep results are positional, and
// ties pick the earliest grid point — the winning vector is identical at
// HADAR_THREADS=1 and N.
#pragma once

#include <string>
#include <vector>

#include "core/policy_stages.hpp"
#include "runner/experiment.hpp"

namespace hadar::runner {

/// The grid to search. Axes with a single value pin that knob.
struct TuneGrid {
  std::vector<double> deadline_weights = {0.0, 0.5, 1.0, 2.0};
  std::vector<double> fairness_weights = {1.0};
  std::vector<double> quota_strictness = {0.0, 0.5, 1.0};
  /// Per-tenant GPU-hour budget used whenever strictness > 0 enables the
  /// quota stage (0 keeps the quota stage off for the whole grid).
  double quota_gpu_hours = 0.0;
};

/// One evaluated grid point.
struct TunePoint {
  core::PolicyConfig policy;
  double score = 0.0;  ///< higher is better (see tune_score)
  double deadline_attainment = 0.0;
  double avg_tardiness = 0.0;
  double tenant_imbalance = 0.0;  ///< max share / ideal weighted share
  double avg_jct = 0.0;
  double makespan = 0.0;
};

/// The tuner's verdict: every point in grid order plus the winner's index
/// (the earliest point reaching the best score).
struct TuneResult {
  std::string scheduler;
  std::vector<TunePoint> points;
  int best = -1;

  const TunePoint& best_point() const { return points.at(static_cast<std::size_t>(best)); }
};

/// The fixed scoring rule: deadline attainment minus tardiness normalized by
/// makespan minus a tenant-imbalance penalty. Exposed so tests can pin it.
double tune_score(const TunePoint& p);

/// Runs the full grid for `scheduler` over `config` (one sweep; cases fan
/// out across HADAR_THREADS). The config's trace should carry deadlines /
/// tenants (e.g. slo_static()) or the deadline axis cannot differentiate.
TuneResult tune_policy(const std::string& scheduler, const ExperimentConfig& config,
                       const TuneGrid& grid = {});

/// Serializes a TuneResult as the BENCH_POLICY.json payload.
std::string tune_result_json(const TuneResult& r);

}  // namespace hadar::runner
