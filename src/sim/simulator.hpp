// Discrete-time, round-based, trace-driven cluster simulator (Sec. IV-A).
//
// Time advances in rounds of `round_length` seconds. Each round the engine
// (1) admits arrivals, (2) invokes the scheduler, (3) validates the decision
// (capacity + gang semantics), (4) charges checkpoint-restart overhead to
// jobs whose allocation changed, and (5) advances every scheduled job at its
// bottleneck throughput (constraint 1b) for the round's effective compute
// time, finishing jobs mid-round when their iteration budget is exhausted.
//
// The per-round mechanics live in sim::RoundEngine (round_engine.hpp), which
// the service daemon also drives; Simulator is the batch driver that feeds a
// whole trace through an engine. SimConfig moved to sim/sim_config.hpp.
#pragma once

#include "sim/event_log.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/sim_config.hpp"
#include "workload/job.hpp"

namespace hadar::sim {

/// Trace-driven simulation engine. Stateless between run() calls.
class Simulator {
 public:
  explicit Simulator(SimConfig config = {});

  const SimConfig& config() const { return config_; }

  /// Runs `scheduler` over `trace` on `spec`. The scheduler is reset first.
  SimResult run(const cluster::ClusterSpec& spec, const workload::Trace& trace,
                IScheduler& scheduler);

  /// Event log of the most recent run (empty unless enable_event_log).
  const EventLog& event_log() const { return log_; }

 private:
  SimConfig config_;
  EventLog log_;
};

}  // namespace hadar::sim
