#include "sim/metrics.hpp"

namespace hadar::sim {

std::vector<double> SimResult::finish_times() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) {
    if (j.finished()) out.push_back(j.finish);
  }
  return out;
}

std::vector<double> SimResult::jcts() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) {
    if (j.finished()) out.push_back(j.jct());
  }
  return out;
}

std::vector<common::CdfPoint> SimResult::completion_cdf(std::size_t points) const {
  return common::empirical_cdf(finish_times(), points);
}

bool SimResult::all_finished() const {
  for (const auto& j : jobs) {
    if (!j.finished()) return false;
  }
  return !jobs.empty();
}

}  // namespace hadar::sim
