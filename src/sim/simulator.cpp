#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "cluster/cluster_state.hpp"

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace hadar::sim {
namespace {

struct JobRuntime {
  const workload::JobSpec* spec = nullptr;
  JobOutcome out;
  double iterations = 0.0;
  double attained_service = 0.0;
  int rounds_received = 0;
  std::vector<int> rounds_on_type;
  std::vector<double> observed_throughput;
  cluster::JobAllocation current;
  bool active = false;
  bool finished = false;
  /// Iteration count at the last implicit checkpoint (the start of the most
  /// recent round the job computed in) and the compute done since — the
  /// progress a failure kill rolls back.
  double checkpoint_iterations = 0.0;
  double compute_since_checkpoint = 0.0;
  /// Set when a failure kill preempted the job; its next restart is charged
  /// checkpoint_load only (the save happened implicitly at the boundary).
  bool restart_pending = false;
};

EventKind to_event_kind(ClusterEventKind k) {
  switch (k) {
    case ClusterEventKind::kNodeDown: return EventKind::kNodeDown;
    case ClusterEventKind::kNodeUp: return EventKind::kNodeUp;
    case ClusterEventKind::kGpuDegrade: return EventKind::kGpuDegrade;
    case ClusterEventKind::kGpuRestore: return EventKind::kGpuRestore;
  }
  return EventKind::kNodeDown;
}

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Simulator::Simulator(SimConfig config) : config_(std::move(config)) {
  if (config_.round_length <= 0.0) throw std::invalid_argument("SimConfig: round_length <= 0");
  config_.network.validate();
  if (config_.straggler.probability < 0.0 || config_.straggler.probability > 1.0 ||
      config_.straggler.slowdown <= 0.0 || config_.straggler.slowdown > 1.0) {
    throw std::invalid_argument("SimConfig: bad straggler parameters");
  }
}

SimResult Simulator::run(const cluster::ClusterSpec& spec, const workload::Trace& trace,
                         IScheduler& scheduler) {
  const int R = spec.num_types();
  for (const auto& j : trace.jobs) j.validate(R);

  scheduler.reset();
  log_.clear();
  log_.set_enabled(config_.enable_event_log);
  common::Rng rng(config_.seed);

  const Seconds L = config_.round_length;
  std::vector<JobRuntime> js(trace.jobs.size());
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    auto& s = js[i];
    s.spec = &trace.jobs[i];
    s.out.id = s.spec->id;
    s.out.arrival = s.spec->arrival;
    s.rounds_on_type.assign(static_cast<std::size_t>(R), 0);
    s.observed_throughput = s.spec->throughput;
    if (config_.observation_noise > 0.0) {
      for (double& x : s.observed_throughput) {
        if (x > 0.0) x *= std::max(0.05, 1.0 + rng.normal(0.0, config_.observation_noise));
      }
    }
  }

  obs::ScopedSpan run_span("sim", "sim.run");
  if (run_span.active()) {
    run_span.str_arg("scheduler", scheduler.name());
    run_span.arg("jobs", static_cast<double>(trace.jobs.size()));
  }

  SimResult result;
  std::size_t next_arrival = 0;  // trace is arrival-sorted
  std::size_t unfinished = trace.jobs.size();
  Seconds t = 0.0;
  double busy_gpu_seconds = 0.0;
  long long job_rounds = 0;
  int stalled_rounds = 0;
  constexpr int kStallLimit = 100000;

  // With failures enabled the scheduler sees a live (masked) copy of the
  // spec. The copy lives in a stable local so pointers schedulers cache
  // across rounds (ClusterState::spec_, bound type registries) stay valid:
  // topology changes reassign the object in place, never move it.
  const bool failures_on = config_.failure.enabled();
  std::optional<FailureModel> fm;
  cluster::ClusterSpec live_spec_storage;
  if (failures_on) {
    fm.emplace(spec, config_.failure);
    live_spec_storage = spec.masked(fm->mask());
  }

  SchedulerContext ctx;
  ctx.spec = failures_on ? &live_spec_storage : &spec;
  ctx.round_length = L;
  ctx.network = config_.network;
  std::uint64_t cluster_epoch = 1;  // 0 = "unknown", as with jobs_epoch

  // ctx.jobs is rebuilt only when the runnable set changes (epoch bump);
  // otherwise the JobViews from the previous round are refreshed in place,
  // reusing their rounds_on_type/throughput buffers. view_of[i] maps js[i]
  // to its slot in ctx.jobs for the current epoch (-1 when not runnable).
  std::uint64_t epoch = 1;       // simulator epochs start at 1; 0 = "unknown"
  std::uint64_t built_epoch = 0;
  std::vector<int> view_of(js.size(), -1);

  while (unfinished > 0) {
    if (config_.horizon > 0.0 && t >= config_.horizon) break;

    obs::ScopedSpan round_span("sim", "sim.round");
    if (round_span.active()) {
      round_span.arg("round", static_cast<double>(result.rounds));
      round_span.arg("t", t);
    }
    int round_preemptions = 0;
    int round_kills = 0;

    // Apply availability changes due at this round boundary, then kill jobs
    // whose held allocation no longer fits the live cluster. Each victim
    // rolls back to its last implicit checkpoint and re-enters the queue.
    if (failures_on) {
      HADAR_TRACE_SCOPE("sim", "sim.failures", 1);
      const std::vector<ClusterEvent> fired = fm->advance_to(t);
      if (!fired.empty()) {
        for (const ClusterEvent& e : fired) {
          switch (e.kind) {
            case ClusterEventKind::kNodeDown: ++result.num_node_failures; break;
            case ClusterEventKind::kNodeUp: ++result.num_node_recoveries; break;
            case ClusterEventKind::kGpuDegrade: ++result.num_gpu_degrades; break;
            case ClusterEventKind::kGpuRestore: break;
          }
          if (log_.enabled()) {
            std::string detail = "node " + std::to_string(e.node);
            if (e.kind == ClusterEventKind::kGpuDegrade ||
                e.kind == ClusterEventKind::kGpuRestore) {
              detail += " " + spec.types().name(e.type) + " x" + std::to_string(e.count);
            }
            log_.record(e.time, to_event_kind(e.kind), kInvalidJob, std::move(detail));
          }
          if (obs::TraceSession* ts = obs::TraceSession::current()) {
            ts->instant("fault", sim::to_string(to_event_kind(e.kind)),
                        {{"node", static_cast<double>(e.node)}, {"sim_t", e.time}});
            obs::count("fault.events");
          }
        }
        live_spec_storage = spec.masked(fm->mask());
        ++cluster_epoch;

        // Re-fit held allocations in job order: survivors keep their
        // placement, the rest are failure-killed. Deterministic because the
        // iteration order and the live capacities are.
        cluster::ClusterState live_state(&live_spec_storage);
        for (auto& s : js) {
          if (!s.active || s.finished || s.current.empty()) continue;
          if (live_state.can_allocate(s.current)) {
            live_state.allocate(s.current);
            continue;
          }
          s.iterations = s.checkpoint_iterations;
          s.out.lost_gpu_seconds += s.compute_since_checkpoint;
          s.compute_since_checkpoint = 0.0;
          ++s.out.failure_kills;
          s.restart_pending = true;
          s.current = cluster::JobAllocation{};
          ++round_kills;
          log_.record(t, EventKind::kKill, s.spec->id);
          if (obs::TraceSession* ts = obs::TraceSession::current()) {
            ts->instant("fault", "job_kill",
                        {{"job", static_cast<double>(s.spec->id)}, {"sim_t", t}});
          }
        }
      }
    }

    // Admit arrivals visible at this round boundary.
    while (next_arrival < trace.jobs.size() &&
           trace.jobs[next_arrival].arrival <= t + 1e-9) {
      auto& s = js[next_arrival];
      s.active = true;
      ++epoch;
      log_.record(s.spec->arrival, EventKind::kArrival, s.spec->id);
      ++next_arrival;
    }

    // Nothing runnable: skip ahead to the round containing the next arrival.
    bool any_active = false;
    for (const auto& s : js) {
      if (s.active && !s.finished) {
        any_active = true;
        break;
      }
    }
    if (!any_active) {
      if (next_arrival >= trace.jobs.size()) break;  // nothing left will arrive
      const Seconds a = trace.jobs[next_arrival].arrival;
      t = std::ceil(a / L) * L;
      if (t < a) t += L;  // guard FP rounding
      continue;
    }

    // Build (or refresh) the scheduler's view.
    ctx.now = t;
    ctx.jobs_epoch = epoch;
    ctx.cluster_epoch = cluster_epoch;
    if (built_epoch != epoch) {
      ctx.jobs.clear();
      std::fill(view_of.begin(), view_of.end(), -1);
      for (std::size_t i = 0; i < js.size(); ++i) {
        auto& s = js[i];
        if (!s.active || s.finished) continue;
        view_of[i] = static_cast<int>(ctx.jobs.size());
        JobView v;
        v.spec = s.spec;
        v.iterations_done = s.iterations;
        v.attained_service = s.attained_service;
        v.rounds_received = s.rounds_received;
        v.rounds_on_type = s.rounds_on_type;
        v.current_allocation = s.current;
        v.throughput = s.observed_throughput;
        ctx.jobs.push_back(std::move(v));
      }
      built_epoch = epoch;
    } else {
      // Same runnable set as last round: only the dynamic fields moved.
      // Same-size vector assignments below reuse the views' buffers.
      for (std::size_t i = 0; i < js.size(); ++i) {
        if (view_of[i] < 0) continue;
        auto& s = js[i];
        JobView& v = ctx.jobs[static_cast<std::size_t>(view_of[i])];
        v.iterations_done = s.iterations;
        v.attained_service = s.attained_service;
        v.rounds_received = s.rounds_received;
        v.rounds_on_type = s.rounds_on_type;
        v.current_allocation = s.current;
        // v.spec and v.throughput are per-job constants within a run.
      }
    }

    if (round_span.active()) {
      round_span.arg("runnable", static_cast<double>(ctx.jobs.size()));
    }
    const double t0 = now_seconds();
    cluster::AllocationMap amap;
    {
      obs::ScopedSpan sched_span("sched", "sched.schedule");
      if (sched_span.active()) {
        sched_span.str_arg("scheduler", scheduler.name());
        sched_span.arg("runnable", static_cast<double>(ctx.jobs.size()));
      }
      amap = scheduler.schedule(ctx);
    }
    result.scheduler_seconds += now_seconds() - t0;
    ++result.scheduler_calls;

    if (config_.validate_allocations) {
      HADAR_TRACE_SCOPE("sim", "sim.validate", 2);
      const std::string err = cluster::validate(*ctx.spec, amap);
      if (!err.empty()) {
        throw std::runtime_error(scheduler.name() + ": capacity violation: " + err);
      }
      for (const auto& [id, alloc] : amap) {
        if (alloc.empty()) continue;
        if (id < 0 || static_cast<std::size_t>(id) >= js.size() ||
            !js[static_cast<std::size_t>(id)].active ||
            js[static_cast<std::size_t>(id)].finished) {
          throw std::runtime_error(scheduler.name() + ": allocated a non-runnable job " +
                                   std::to_string(id));
        }
        const int w = alloc.total_workers();
        const int want = js[static_cast<std::size_t>(id)].spec->num_workers;
        if (w != want) {
          throw std::runtime_error(scheduler.name() + ": gang violation for job " +
                                   std::to_string(id) + ": got " + std::to_string(w) +
                                   " workers, requested " + std::to_string(want));
        }
      }
    }

    // Advance every active job through the round [t, t+L).
    obs::ScopedSpan advance_span("sim", "sim.advance", 1);
    bool progressed = false;
    int round_scheduled = 0;
    for (auto& s : js) {
      if (!s.active || s.finished) continue;
      const auto it = amap.find(s.spec->id);
      const cluster::JobAllocation alloc =
          it != amap.end() ? it->second : cluster::JobAllocation{};

      if (alloc.empty()) {
        if (!s.current.empty()) {
          ++s.out.preemptions;
          ++round_preemptions;
          log_.record(t, EventKind::kPreempt, s.spec->id);
        }
        s.current = cluster::JobAllocation{};
        continue;
      }

      ++round_scheduled;
      const bool changed = !(alloc == s.current);
      if (s.out.first_start < 0.0) {
        s.out.first_start = t;
        log_.record(t, EventKind::kStart, s.spec->id, alloc.to_string(spec));
      } else if (changed) {
        ++s.out.reallocations;
        log_.record(t, s.current.empty() ? EventKind::kResume : EventKind::kReallocate,
                    s.spec->id, alloc.to_string(spec));
      }

      Seconds penalty = 0.0;
      if (changed) {
        // A failure restart skips the save: the checkpoint already exists
        // (written implicitly at the round boundary before the crash).
        penalty = config_.use_flat_reallocation_penalty
                      ? config_.flat_reallocation_penalty
                      : (s.restart_pending ? s.spec->checkpoint_load
                                           : s.spec->checkpoint_save + s.spec->checkpoint_load);
      } else if (config_.charge_periodic_save) {
        penalty = s.spec->checkpoint_save;
      }
      if (changed && s.restart_pending) {
        if (obs::TraceSession* ts = obs::TraceSession::current()) {
          ts->instant("checkpoint", "checkpoint_restore",
                      {{"job", static_cast<double>(s.spec->id)}, {"sim_t", t}});
          obs::count("checkpoint.restores");
        }
      }
      s.restart_pending = false;
      penalty = std::min(penalty, L);
      const Seconds effective = L - penalty;

      // True bottleneck throughput of this placement (constraint 1b), with
      // network penalty, optional jitter, and optional straggler slowdown.
      double x = config_.network.effective_rate(
          alloc.bottleneck_throughput(s.spec->throughput), alloc.nodes_used(),
          s.spec->model_size_mb);
      if (config_.throughput_jitter > 0.0) {
        const double sigma = config_.throughput_jitter;
        x *= rng.lognormal(-0.5 * sigma * sigma, sigma);  // mean-1 jitter
      }
      if (config_.straggler.probability > 0.0 &&
          rng.uniform() < config_.straggler.probability) {
        x *= config_.straggler.slowdown;
        log_.record(t, EventKind::kStraggler, s.spec->id);
      }

      const int workers = alloc.total_workers();
      const double rate = x * workers;  // aggregate iterations/s (1a)
      ++s.rounds_received;
      ++job_rounds;
      if (changed) ++result.total_reallocations;
      for (GpuTypeId r = 0; r < R; ++r) {
        if (alloc.workers_of_type(r) > 0) ++s.rounds_on_type[static_cast<std::size_t>(r)];
      }

      // The round boundary is the job's implicit checkpoint: a failure during
      // this round rolls progress back to here.
      s.checkpoint_iterations = s.iterations;

      const double remaining = s.spec->total_iterations() - s.iterations;
      double held, compute;
      if (rate > 0.0 && remaining / rate <= effective + 1e-12) {
        const Seconds run_time = remaining / rate;
        s.iterations = s.spec->total_iterations();
        s.finished = true;
        ++epoch;
        s.out.finish = t + penalty + run_time;
        held = workers * (penalty + run_time);
        compute = workers * run_time;
        --unfinished;
        log_.record(s.out.finish, EventKind::kFinish, s.spec->id);
        s.current = cluster::JobAllocation{};
        progressed = true;
      } else {
        s.iterations += rate * effective;
        held = workers * L;
        compute = workers * effective;
        s.current = alloc;
        if (rate > 0.0) progressed = true;
      }
      s.compute_since_checkpoint = compute;
      ++s.out.rounds_run;
      s.attained_service += held;
      s.out.gpu_seconds += held;
      s.out.compute_gpu_seconds += compute;
      busy_gpu_seconds += compute;
    }

    if (!progressed) {
      if (++stalled_rounds > kStallLimit) {
        throw std::runtime_error(scheduler.name() +
                                 ": simulation stalled (no progress for 100000 rounds)");
      }
    } else {
      stalled_rounds = 0;
    }

    if (obs::TraceSession* ts = obs::TraceSession::current()) {
      const int queue_depth = static_cast<int>(ctx.jobs.size()) - round_scheduled;
      ts->counter("round.queue_depth", queue_depth);
      ts->counter("round.scheduled_jobs", round_scheduled);
      obs::count("sim.rounds");
      obs::count("round.preemptions", static_cast<std::uint64_t>(round_preemptions));
      obs::count("round.failure_kills", static_cast<std::uint64_t>(round_kills));
      obs::gauge_set("round.queue_depth", queue_depth);
      obs::gauge_set("round.scheduled_jobs", round_scheduled);
      ts->sample_metrics(t);
    }

    t += L;
    ++result.rounds;
  }

  if (run_span.active()) {
    run_span.arg("rounds", static_cast<double>(result.rounds));
    run_span.arg("scheduler_calls", static_cast<double>(result.scheduler_calls));
  }

  // ---- finalize metrics ----
  result.jobs.reserve(js.size());
  const double n_jobs = static_cast<double>(trace.jobs.size());
  Seconds makespan = 0.0;
  std::vector<double> jcts, qdelays, ftfs, utils;
  for (auto& s : js) {
    if (s.finished) {
      utils.push_back(s.out.gpu_utilization(s.spec->num_workers));
      makespan = std::max(makespan, s.out.finish);
      jcts.push_back(s.out.jct());
      // Themis finish-time fairness: JCT over the runtime with an exclusive
      // 1/n share of the cluster's best devices.
      const double x_best = s.spec->max_throughput();
      const double isolated_rate = x_best * s.spec->num_workers / n_jobs;
      if (isolated_rate > 0.0) {
        const double t_id = s.spec->total_iterations() / isolated_rate;
        s.out.ftf = s.out.jct() / t_id;
        ftfs.push_back(s.out.ftf);
      }
    }
    if (s.out.first_start >= 0.0) {
      qdelays.push_back(s.out.queueing_delay());
    } else {
      ++result.num_never_started;
    }
    if (!s.finished) ++result.num_unfinished;
    result.total_preemptions += s.out.preemptions;
    result.total_failure_kills += s.out.failure_kills;
    result.lost_gpu_seconds += s.out.lost_gpu_seconds;
    result.jobs.push_back(s.out);
  }
  if (unfinished > 0) makespan = std::max(makespan, t);
  result.makespan = makespan;
  result.avg_jct = common::mean(jcts);
  result.median_jct = common::median(jcts);
  result.min_jct = common::min_of(jcts);
  result.max_jct = common::max_of(jcts);
  result.p95_jct = common::percentile(jcts, 95.0);
  result.avg_queueing_delay = common::mean(qdelays);
  result.avg_ftf = common::mean(ftfs);
  result.max_ftf = common::max_of(ftfs);
  result.avg_job_utilization = common::mean(utils);
  if (makespan > 0.0 && spec.total_gpus() > 0) {
    // Both are normalized by nameplate capacity so degradation curves stay
    // comparable across failure rates; goodput discounts rolled-back work.
    result.gpu_utilization = busy_gpu_seconds / (spec.total_gpus() * makespan);
    result.goodput =
        (busy_gpu_seconds - result.lost_gpu_seconds) / (spec.total_gpus() * makespan);
  }
  if (job_rounds > 0) {
    result.realloc_round_fraction =
        static_cast<double>(result.total_reallocations) / static_cast<double>(job_rounds);
  }
  return result;
}

}  // namespace hadar::sim
