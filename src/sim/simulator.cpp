#include "sim/simulator.hpp"

#include <cstddef>

#include "obs/trace.hpp"
#include "sim/round_engine.hpp"

namespace hadar::sim {

Simulator::Simulator(SimConfig config) : config_(std::move(config)) {
  config_.validate();
}

SimResult Simulator::run(const cluster::ClusterSpec& spec, const workload::Trace& trace,
                         IScheduler& scheduler) {
  const int R = spec.num_types();
  for (const auto& j : trace.jobs) j.validate(R);

  scheduler.reset();
  RoundEngine engine(&spec, config_);

  obs::ScopedSpan run_span("sim", "sim.run");
  if (run_span.active()) {
    run_span.str_arg("scheduler", scheduler.name());
    run_span.arg("jobs", static_cast<double>(trace.jobs.size()));
  }

  // Drive the engine: admit arrivals due at each round boundary, skip idle
  // gaps between arrival bursts, step until every admitted job finished and
  // no arrivals remain (or the horizon hit).
  std::size_t next_arrival = 0;  // trace is arrival-sorted
  while (next_arrival < trace.jobs.size() || engine.unfinished_admitted() > 0) {
    if (config_.horizon > 0.0 && engine.now() >= config_.horizon) break;

    while (next_arrival < trace.jobs.size() &&
           trace.jobs[next_arrival].arrival <= engine.now() + 1e-9) {
      engine.admit(trace.jobs[next_arrival]);
      ++next_arrival;
    }

    if (!engine.has_runnable()) {
      if (next_arrival >= trace.jobs.size()) break;  // nothing left will arrive
      engine.skip_to(trace.jobs[next_arrival].arrival);
      continue;
    }

    engine.step(scheduler);
  }

  if (run_span.active()) {
    run_span.arg("rounds", static_cast<double>(engine.rounds_completed()));
    run_span.arg("scheduler_calls", static_cast<double>(engine.rounds_completed()));
  }

  // The FTF 1/n share divides by the full trace population, so jobs the
  // horizon kept out of admission still dilute the isolated share. A run
  // that ended with arrivals never admitted is truncated: its makespan
  // extends to the stop time, as it always did.
  SimResult result = engine.finalize(trace.jobs.size(), next_arrival < trace.jobs.size());

  // Jobs never admitted (horizon hit before their arrival) still get an
  // outcome row, as they always did.
  for (std::size_t i = next_arrival; i < trace.jobs.size(); ++i) {
    JobOutcome o;
    o.id = trace.jobs[i].id;
    o.arrival = trace.jobs[i].arrival;
    result.jobs.push_back(o);
    ++result.num_never_started;
    ++result.num_unfinished;
  }

  log_ = engine.event_log();
  return result;
}

}  // namespace hadar::sim
