#include "sim/network.hpp"

#include <cmath>
#include <stdexcept>

namespace hadar::sim {

double NetworkModel::effective_rate(double rate, int nodes_used,
                                    double model_size_mb) const {
  if (rate <= 0.0 || nodes_used <= 1) return rate < 0.0 ? 0.0 : rate;
  if (!parameter_server) {
    return rate * std::pow(penalty_factor, nodes_used - 1);
  }
  // 2 transfers of the model per iteration over the worker's NIC.
  const double size_bits = model_size_mb * 8e6;
  const double bw_bits = nic_bandwidth_gbps * 1e9;
  const double t_comm = bw_bits > 0.0 ? 2.0 * size_bits / bw_bits : 0.0;
  return rate / (1.0 + rate * t_comm);
}

void NetworkModel::validate() const {
  if (penalty_factor <= 0.0 || penalty_factor > 1.0) {
    throw std::invalid_argument("NetworkModel: penalty_factor must be in (0,1]");
  }
  if (parameter_server && nic_bandwidth_gbps <= 0.0) {
    throw std::invalid_argument("NetworkModel: non-positive NIC bandwidth");
  }
}

}  // namespace hadar::sim
