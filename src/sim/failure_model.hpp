// Fault injection for the simulator: node crash/recover cycles and
// single-GPU degrade/restore events, driven either by seeded MTTF/MTTR
// exponential draws or by an explicit scripted event list. The simulator
// polls advance_to() at every round boundary and applies the resulting
// availability mask to the cluster spec schedulers see.
#pragma once

#include <limits>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace hadar::common {
class BinaryWriter;
class BinaryReader;
}  // namespace hadar::common

namespace hadar::sim {

enum class ClusterEventKind { kNodeDown, kNodeUp, kGpuDegrade, kGpuRestore };

const char* to_string(ClusterEventKind k);

/// One availability change. For node events `type`/`count` are ignored; for
/// GPU events `count` devices of `type` on `node` degrade or restore.
struct ClusterEvent {
  Seconds time = 0.0;
  ClusterEventKind kind = ClusterEventKind::kNodeDown;
  NodeId node = kInvalidNode;
  GpuTypeId type = kInvalidGpuType;
  int count = 1;
};

/// Knobs for the stochastic processes, all in seconds. A zero MTTF disables
/// that process; `script` events fire regardless and may be combined with
/// stochastic draws.
struct FailureConfig {
  /// Mean time between failures of any single node (exponential).
  Seconds node_mttf = 0.0;
  /// Mean repair time of a failed node (exponential).
  Seconds node_mttr = 3600.0;
  /// Cluster-wide mean time between single-GPU degrade events (exponential).
  Seconds gpu_mttf = 0.0;
  /// Mean time until a degraded GPU is restored (exponential).
  Seconds gpu_mttr = 3600.0;
  /// Seed for the failure processes (independent of SimConfig::seed).
  std::uint64_t seed = 1;
  /// Explicit events, e.g. for tests: applied in (time, list-order) order.
  std::vector<ClusterEvent> script;

  bool enabled() const { return node_mttf > 0.0 || gpu_mttf > 0.0 || !script.empty(); }
};

/// Deterministic availability process over one cluster. All randomness is
/// derived from FailureConfig::seed, so the event sequence is a pure
/// function of (spec, config) and never depends on scheduler decisions.
class FailureModel {
 public:
  FailureModel(const cluster::ClusterSpec& spec, FailureConfig config);

  /// Processes every pending event with time <= t, in deterministic order,
  /// and returns the events that actually changed availability (a scripted
  /// "down" for an already-down node is dropped).
  std::vector<ClusterEvent> advance_to(Seconds t);

  const cluster::AvailabilityMask& mask() const { return mask_; }
  const FailureConfig& config() const { return config_; }

  /// Bit-exact persistence of the process state (per-node RNG streams, next
  /// transitions, pending repairs, script cursor, mask) for the durability
  /// layer. restore() requires a model constructed over the same (spec,
  /// config); the advancing state is overwritten in place.
  void save(common::BinaryWriter& w) const;
  void restore(common::BinaryReader& r);

 private:
  static constexpr Seconds kNever = std::numeric_limits<double>::infinity();

  struct NodeProcess {
    common::Rng rng{0};
    Seconds next_transition = kNever;  // next down (if up) or up (if down)
  };
  struct PendingRestore {
    Seconds time = 0.0;
    NodeId node = kInvalidNode;
    GpuTypeId type = kInvalidGpuType;
  };

  bool apply(const ClusterEvent& e);
  void schedule_next_gpu_degrade(Seconds after);
  /// Picks the degrade victim (h, r) weighted by live capacity; returns
  /// false when no device is live.
  bool pick_degrade_victim(NodeId* h, GpuTypeId* r);

  const cluster::ClusterSpec* spec_;
  FailureConfig config_;
  cluster::AvailabilityMask mask_;
  std::vector<NodeProcess> nodes_;
  common::Rng gpu_rng_{0};
  Seconds next_gpu_degrade_ = kNever;
  std::vector<PendingRestore> pending_restores_;  // sorted by time
  std::size_t script_cursor_ = 0;
  std::vector<double> victim_weights_;  // scratch for weighted_index
};

}  // namespace hadar::sim
