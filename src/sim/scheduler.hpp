// The scheduler abstraction every policy implements (Hadar and all
// baselines). Once per round the simulator hands the scheduler a context —
// cluster spec plus a view of every runnable job (static spec + dynamic
// progress) — and receives the round's task-level allocation map.
//
// Schedulers may keep internal state across rounds (Gavel's LP cache,
// Tiresias' queues); reset() is invoked at the start of every simulation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/allocation.hpp"
#include "sim/network.hpp"
#include "cluster/cluster_spec.hpp"
#include "workload/job.hpp"

namespace hadar::common {
class Arena;
class BinaryWriter;
class BinaryReader;
}  // namespace hadar::common

namespace hadar::sim {

/// Dynamic view of one runnable job as of the current round.
struct JobView {
  const workload::JobSpec* spec = nullptr;

  double iterations_done = 0.0;
  /// GPU-seconds of service received so far (Tiresias' attained service).
  double attained_service = 0.0;
  /// Rounds in which the job held any allocation.
  int rounds_received = 0;
  /// Rounds received per GPU type (Gavel's priority denominator).
  std::vector<int> rounds_on_type;
  /// Allocation held in the previous round (empty if paused/new).
  cluster::JobAllocation current_allocation;
  /// Observable per-type throughput (oracle values, or noisy estimates when
  /// the simulator's profiling mode is enabled). Same arity as GPU types.
  std::vector<double> throughput;

  JobId id() const { return spec->id; }
  double remaining_iterations() const {
    const double rem = spec->total_iterations() - iterations_done;
    return rem > 0.0 ? rem : 0.0;
  }
  double throughput_on(GpuTypeId r) const {
    return (r >= 0 && static_cast<std::size_t>(r) < throughput.size())
               ? throughput[static_cast<std::size_t>(r)]
               : 0.0;
  }
  double max_throughput() const {
    double x = 0.0;
    for (double v : throughput) x = x > v ? x : v;
    return x;
  }
};

/// Everything a scheduler may inspect when making a round decision.
struct SchedulerContext {
  const cluster::ClusterSpec* spec = nullptr;
  Seconds now = 0.0;
  Seconds round_length = 360.0;
  /// Throughput multiplier per extra node a placement spans (models the
  /// synchronization traffic of non-consolidated placements).
  NetworkModel network;
  /// Bumped whenever the runnable-job set changes (an arrival is admitted or
  /// a job finishes), so schedulers can skip re-deriving job-set-dependent
  /// state on the common no-change round. 0 means "no epoch information"
  /// (e.g. hand-built contexts in tests): schedulers must then fall back to
  /// comparing job ids.
  std::uint64_t jobs_epoch = 0;
  /// Bumped whenever cluster topology changes (a node fails/recovers or a
  /// device degrades/restores), so schedulers invalidate capacity-dependent
  /// caches (warm-started LP bases, sticky allocations). 0 means "no epoch
  /// information": schedulers must fall back to comparing capacities.
  std::uint64_t cluster_epoch = 0;
  /// Runnable jobs: arrived and not finished. Order is arrival order.
  std::vector<JobView> jobs;
  /// Round-local scratch arena, reset by the context's owner at the start of
  /// every round. Null for hand-built contexts (tests): arena-backed
  /// containers then fall back to the heap. Nothing allocated from it may
  /// outlive the round (see common/arena.hpp).
  common::Arena* arena = nullptr;

  const JobView* find(JobId id) const {
    for (const auto& j : jobs) {
      if (j.id() == id) return &j;
    }
    return nullptr;
  }
};

/// Round-based scheduling policy.
class IScheduler {
 public:
  virtual ~IScheduler() = default;

  virtual std::string name() const = 0;

  /// Computes the allocation for the round starting at ctx.now. Jobs absent
  /// from the returned map are paused. Every returned allocation must respect
  /// gang semantics (exactly W_j workers) and cluster capacity.
  virtual cluster::AllocationMap schedule(const SchedulerContext& ctx) = 0;

  /// Clears internal state; called before every simulation run.
  virtual void reset() {}

  /// Persists the cross-round decision state (queue demotions, time-fraction
  /// targets, sticky placements, estimator tracks, ...) so a restored
  /// scheduler reproduces the exact decisions of the original. Speed-only
  /// caches (warm LP bases, scratch buffers) that cannot change decisions
  /// need not be saved. The default is for stateless policies; any policy
  /// whose schedule() reads state written by a previous round MUST override
  /// both hooks. restore_state() is always called on a freshly reset()
  /// instance constructed with the same parameters.
  virtual void save_state(common::BinaryWriter&) const {}
  virtual void restore_state(common::BinaryReader&) {}
};

using SchedulerPtr = std::unique_ptr<IScheduler>;

}  // namespace hadar::sim
