// Communication model for non-consolidated placements. Two fidelities:
//
//  * penalty factor (default) — the throughput of a placement spanning k
//    nodes is multiplied by penalty_factor^(k-1), the paper's flat
//    communication cost;
//  * parameter-server model — per training iteration each worker pushes its
//    gradients to and pulls fresh parameters from parameter servers across
//    the network (Sec. II's data-parallel SGD), so every iteration pays
//    2 x model_size over the worker's NIC when the gang spans nodes:
//        x_eff = 1 / (1/x + t_comm),  t_comm = 2 * size / bandwidth.
//    Consolidated gangs communicate over intra-node links and pay nothing.
#pragma once

namespace hadar::sim {

struct NetworkModel {
  /// Multiplicative throughput factor per extra node (penalty-factor mode).
  double penalty_factor = 0.97;
  /// Switch to the explicit parameter-server synchronization model.
  bool parameter_server = false;
  /// Per-node NIC bandwidth for the parameter-server model (gigabits/s).
  double nic_bandwidth_gbps = 10.0;

  /// Effective per-worker iteration rate of a placement.
  /// `rate`: bottleneck per-worker rate (iterations/s); `nodes_used`:
  /// distinct machines the gang spans; `model_size_mb`: the DNN's parameter
  /// size in megabytes (parameter-server mode only).
  double effective_rate(double rate, int nodes_used, double model_size_mb) const;

  /// Throws std::invalid_argument when parameters are out of range.
  void validate() const;
};

}  // namespace hadar::sim
