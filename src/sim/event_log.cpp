#include "sim/event_log.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "common/time_format.hpp"

namespace hadar::sim {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kNodeDown: return "node-down";
    case EventKind::kNodeUp: return "node-up";
    case EventKind::kGpuDegrade: return "gpu-degrade";
    case EventKind::kGpuRestore: return "gpu-restore";
    case EventKind::kKill: return "kill";
    case EventKind::kArrival: return "arrival";
    case EventKind::kStart: return "start";
    case EventKind::kReallocate: return "realloc";
    case EventKind::kResume: return "resume";
    case EventKind::kPreempt: return "preempt";
    case EventKind::kStraggler: return "straggler";
    case EventKind::kFinish: return "finish";
  }
  return "?";
}

void EventLog::record(Seconds time, EventKind kind, JobId job, std::string detail) {
  if (!enabled_) return;
  events_.push_back(Event{time, kind, job, std::move(detail)});
}

std::vector<Event> EventLog::sorted() const {
  std::vector<Event> out = events_;
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return std::tie(a.time, a.kind, a.job) < std::tie(b.time, b.kind, b.job);
  });
  return out;
}

std::vector<Event> EventLog::of_kind(EventKind k) const {
  std::vector<Event> out;
  for (const auto& e : sorted()) {
    if (e.kind == k) out.push_back(e);
  }
  return out;
}

std::string EventLog::to_string() const {
  std::string out;
  char buf[64];
  for (const auto& e : sorted()) {
    const std::string when = common::format_sim_time(e.time);
    if (e.job == kInvalidJob) {
      std::snprintf(buf, sizeof(buf), "[t=%s] %s", when.c_str(), sim::to_string(e.kind));
    } else {
      std::snprintf(buf, sizeof(buf), "[t=%s] %s job %d", when.c_str(),
                    sim::to_string(e.kind), e.job);
    }
    out += buf;
    if (!e.detail.empty()) {
      out += " (";
      out += e.detail;
      out += ")";
    }
    out += '\n';
  }
  return out;
}

}  // namespace hadar::sim
