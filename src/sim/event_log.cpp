#include "sim/event_log.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "common/binary.hpp"
#include "common/time_format.hpp"

namespace hadar::sim {

namespace {

bool event_before(const Event& a, const Event& b) {
  return std::tie(a.time, a.kind, a.job) < std::tie(b.time, b.kind, b.job);
}

}  // namespace

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kNodeDown: return "node-down";
    case EventKind::kNodeUp: return "node-up";
    case EventKind::kGpuDegrade: return "gpu-degrade";
    case EventKind::kGpuRestore: return "gpu-restore";
    case EventKind::kKill: return "kill";
    case EventKind::kArrival: return "arrival";
    case EventKind::kStart: return "start";
    case EventKind::kReallocate: return "realloc";
    case EventKind::kResume: return "resume";
    case EventKind::kPreempt: return "preempt";
    case EventKind::kStraggler: return "straggler";
    case EventKind::kFinish: return "finish";
  }
  return "?";
}

void EventLog::record(Seconds time, EventKind kind, JobId job, std::string detail) {
  if (!enabled_) return;
  events_.push_back(Event{time, kind, job, std::move(detail)});
}

const std::vector<Event>& EventLog::sorted() const {
  if (sorted_upto_ < events_.size()) {
    // Sort only the newly appended run, then merge it into the cached
    // prefix. Stability: stable_sort within the run plus a stable merge
    // preserves insertion order among equal keys, matching the previous
    // full-stable_sort semantics.
    const std::size_t old_size = sorted_cache_.size();
    sorted_cache_.insert(sorted_cache_.end(), events_.begin() + static_cast<std::ptrdiff_t>(sorted_upto_),
                         events_.end());
    const auto mid = sorted_cache_.begin() + static_cast<std::ptrdiff_t>(old_size);
    std::stable_sort(mid, sorted_cache_.end(), event_before);
    std::inplace_merge(sorted_cache_.begin(), mid, sorted_cache_.end(), event_before);
    sorted_upto_ = events_.size();
  }
  return sorted_cache_;
}

std::vector<Event> EventLog::sorted_since(std::size_t first) const {
  std::vector<Event> out;
  if (first >= events_.size()) return out;
  out.assign(events_.begin() + static_cast<std::ptrdiff_t>(first), events_.end());
  std::stable_sort(out.begin(), out.end(), event_before);
  return out;
}

std::vector<Event> EventLog::of_kind(EventKind k) const {
  std::vector<Event> out;
  for (const auto& e : sorted()) {
    if (e.kind == k) out.push_back(e);
  }
  return out;
}

void EventLog::clear() {
  events_.clear();
  sorted_cache_.clear();
  sorted_upto_ = 0;
}

std::string EventLog::to_string() const {
  std::string out;
  char buf[64];
  for (const auto& e : sorted()) {
    const std::string when = common::format_sim_time(e.time);
    if (e.job == kInvalidJob) {
      std::snprintf(buf, sizeof(buf), "[t=%s] %s", when.c_str(), sim::to_string(e.kind));
    } else {
      std::snprintf(buf, sizeof(buf), "[t=%s] %s job %d", when.c_str(),
                    sim::to_string(e.kind), e.job);
    }
    out += buf;
    if (!e.detail.empty()) {
      out += " (";
      out += e.detail;
      out += ")";
    }
    out += '\n';
  }
  return out;
}

void EventLog::save(common::BinaryWriter& w) const {
  w.boolean(enabled_);
  w.u32(static_cast<std::uint32_t>(events_.size()));
  for (const Event& e : events_) {
    w.f64(e.time);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.i32(e.job);
    w.str(e.detail);
  }
}

void EventLog::restore(common::BinaryReader& r) {
  clear();
  enabled_ = r.boolean();
  const std::uint32_t n = r.u32();
  events_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Event e;
    e.time = r.f64();
    e.kind = static_cast<EventKind>(r.u8());
    e.job = r.i32();
    e.detail = r.str();
    events_.push_back(std::move(e));
  }
}

}  // namespace hadar::sim
