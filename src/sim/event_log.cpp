#include "sim/event_log.hpp"

#include <cstdio>

namespace hadar::sim {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kArrival: return "arrival";
    case EventKind::kStart: return "start";
    case EventKind::kReallocate: return "realloc";
    case EventKind::kPreempt: return "preempt";
    case EventKind::kFinish: return "finish";
    case EventKind::kStraggler: return "straggler";
  }
  return "?";
}

void EventLog::record(Seconds time, EventKind kind, JobId job, std::string detail) {
  if (!enabled_) return;
  events_.push_back(Event{time, kind, job, std::move(detail)});
}

std::vector<Event> EventLog::of_kind(EventKind k) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == k) out.push_back(e);
  }
  return out;
}

std::string EventLog::to_string() const {
  std::string out;
  char buf[64];
  for (const auto& e : events_) {
    std::snprintf(buf, sizeof(buf), "[t=%.1fs] %s job %d", e.time, sim::to_string(e.kind), e.job);
    out += buf;
    if (!e.detail.empty()) {
      out += " (";
      out += e.detail;
      out += ")";
    }
    out += '\n';
  }
  return out;
}

}  // namespace hadar::sim
