// Per-job outcomes and aggregate metrics of one simulation run: the paper's
// evaluation quantities — JCT, makespan, finish-time fairness (Themis [10]),
// GPU utilization, queueing delay, and scheduler decision latency.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace hadar::sim {

/// Final record for one job.
struct JobOutcome {
  JobId id = kInvalidJob;
  Seconds arrival = 0.0;
  Seconds first_start = -1.0;  ///< first round with an allocation; <0 = never
  Seconds finish = -1.0;       ///< completion time; <0 = unfinished
  double gpu_seconds = 0.0;    ///< device-seconds HELD (incl. checkpoint time)
  double compute_gpu_seconds = 0.0;  ///< device-seconds spent computing
  int rounds_run = 0;
  int preemptions = 0;      ///< running -> paused transitions
  int reallocations = 0;    ///< allocation changed while staying scheduled
  int failure_kills = 0;    ///< force-preemptions caused by node/GPU failures
  double lost_gpu_seconds = 0.0;  ///< compute rolled back to the last checkpoint
  double ftf = 0.0;         ///< finish-time fairness rho (filled at finalize)
  Seconds deadline = 0.0;   ///< spec deadline echo; <= 0 = none
  int tenant = 0;           ///< spec tenant echo
  Seconds tardiness = 0.0;  ///< max(0, completion - deadline); filled at finalize

  bool has_deadline() const { return deadline > 0.0; }
  bool met_deadline() const { return has_deadline() && finished() && finish <= deadline; }
  bool finished() const { return finish >= 0.0; }
  Seconds jct() const { return finished() ? finish - arrival : kInfiniteTime; }
  Seconds queueing_delay() const {
    return first_start >= 0.0 ? first_start - arrival : kInfiniteTime;
  }
  /// The paper's Fig. 4 quantity for one job: the fraction of the job's
  /// post-start lifetime during which its requested gang was computing.
  /// 1.0 for a never-preempted, overhead-free run.
  double gpu_utilization(int num_workers) const {
    if (!finished() || first_start < 0.0 || num_workers <= 0) return 0.0;
    const Seconds span = finish - first_start;
    return span > 0.0 ? compute_gpu_seconds / (num_workers * span) : 1.0;
  }
};

/// Per-tenant slice of a run (SLO / quota accounting, DESIGN.md §15).
struct TenantShare {
  int tenant = 0;
  int jobs = 0;            ///< jobs owned by the tenant
  double gpu_hours = 0.0;  ///< device-hours held across the run
  double share = 0.0;      ///< gpu_hours / total gpu_hours of the run
};

/// Aggregate result of a run. All time quantities in seconds.
struct SimResult {
  std::vector<JobOutcome> jobs;

  Seconds makespan = 0.0;      ///< max_j f_j
  double avg_jct = 0.0;
  double median_jct = 0.0;
  double min_jct = 0.0;
  double max_jct = 0.0;
  double p95_jct = 0.0;
  double avg_queueing_delay = 0.0;
  double gpu_utilization = 0.0;      ///< compute GPU-seconds / (total GPUs * makespan)
  double avg_job_utilization = 0.0;  ///< mean JobOutcome::gpu_utilization (Fig. 4)
  double avg_ftf = 0.0;          ///< mean Themis rho (lower is fairer-faster)
  double max_ftf = 0.0;          ///< worst-case rho
  long long rounds = 0;
  long long total_reallocations = 0;
  long long total_preemptions = 0;
  int num_never_started = 0;  ///< jobs that never held an allocation (horizon)
  int num_unfinished = 0;     ///< jobs with no finish time (includes the above)
  long long num_node_failures = 0;
  long long num_node_recoveries = 0;
  long long num_gpu_degrades = 0;
  long long total_failure_kills = 0;
  double lost_gpu_seconds = 0.0;  ///< total compute redone after failures
  /// Useful work rate: (compute - lost) GPU-seconds / (total GPUs * makespan).
  /// Equals gpu_utilization when no work was lost.
  double goodput = 0.0;
  double realloc_round_fraction = 0.0;  ///< fraction of job-rounds with changed allocation
  double scheduler_seconds = 0.0;       ///< wall-clock spent inside schedule()
  long long scheduler_calls = 0;

  /// SLO accounting (jobs with a deadline). Unfinished deadline jobs count
  /// as missed, with tardiness measured to the end of the run.
  int num_deadline_jobs = 0;
  int num_deadline_met = 0;
  double deadline_attainment = 1.0;  ///< met / deadline jobs; 1.0 when none
  double avg_tardiness = 0.0;        ///< mean tardiness over deadline jobs
  double max_tardiness = 0.0;
  /// One entry per tenant present in the trace, ordered by tenant id.
  std::vector<TenantShare> tenant_shares;

  /// All finished jobs' completion times (for Fig. 3-style CDFs).
  std::vector<double> finish_times() const;
  /// All finished jobs' JCTs.
  std::vector<double> jcts() const;
  /// Empirical CDF of completion times sampled at `points` x-values.
  std::vector<common::CdfPoint> completion_cdf(std::size_t points = 50) const;
  /// True when every job in the trace completed.
  bool all_finished() const;
};

}  // namespace hadar::sim
