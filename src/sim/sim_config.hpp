// Simulation knobs shared by the batch Simulator and the service daemon's
// RoundEngine. Split out of simulator.hpp so the durability layer can talk
// about configuration without pulling in the batch driver.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/failure_model.hpp"
#include "sim/network.hpp"

namespace hadar::sim {

/// Random per-round slowdowns standing in for the stragglers the paper's
/// continuous experiments mention. A struck job's effective throughput is
/// multiplied by `slowdown` for that round only.
struct StragglerConfig {
  double probability = 0.0;  ///< per job-round
  double slowdown = 0.5;     ///< multiplicative (0 < slowdown <= 1)
};

struct SimConfig {
  Seconds round_length = 360.0;  ///< 6 minutes (Sec. IV-A)

  /// Checkpoint-restart charged when a job's allocation changes. When
  /// `use_flat_reallocation_penalty`, a flat 10 s is used (Sec. IV-A);
  /// otherwise the per-model Table IV costs (save + load) apply.
  bool use_flat_reallocation_penalty = true;
  Seconds flat_reallocation_penalty = 10.0;
  /// Periodic checkpoint save charged every scheduled round even without
  /// reallocation (Table IV "w/o reallocation" column). Off for the trace
  /// simulations to match the paper's flat-penalty setup.
  bool charge_periodic_save = false;

  /// Throughput multiplier per extra node a placement spans.
  NetworkModel network;

  /// Multiplicative log-normal throughput jitter (sigma of log); models
  /// testbed noise in the "physical cluster" reproduction. 0 disables.
  double throughput_jitter = 0.0;

  StragglerConfig straggler;

  /// Gaussian relative error applied to the throughputs schedulers observe
  /// (the profiling-based estimator path). 0 = oracle values. Each job's
  /// noise comes from its own SplitMix64 stream forked off `seed` by job id,
  /// so the observed throughputs are a pure function of (seed, job) and do
  /// not depend on admission order or batching.
  double observation_noise = 0.0;

  std::uint64_t seed = 1;

  /// Hard stop (simulated seconds); 0 = run to completion. Runs that hit the
  /// horizon leave jobs unfinished (SimResult::all_finished() == false).
  Seconds horizon = 0.0;

  /// Fault injection (node crash/recover, GPU degrade). Disabled by default:
  /// with `failure.enabled() == false` the engine is bit-identical to a
  /// failure-free build. Failures are applied at round boundaries; a job on
  /// a failed node rolls back to its last implicit checkpoint (the previous
  /// round boundary), is force-preempted, and re-enters the runnable set,
  /// paying the normal reallocation penalty when it restarts.
  FailureConfig failure;

  /// Validate every allocation map (capacity + gang). Throws on violation —
  /// keep on; scheduling bugs must never silently corrupt results.
  bool validate_allocations = true;

  bool enable_event_log = false;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

}  // namespace hadar::sim
