#include "sim/failure_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/binary.hpp"

namespace hadar::sim {

const char* to_string(ClusterEventKind k) {
  switch (k) {
    case ClusterEventKind::kNodeDown: return "node-down";
    case ClusterEventKind::kNodeUp: return "node-up";
    case ClusterEventKind::kGpuDegrade: return "gpu-degrade";
    case ClusterEventKind::kGpuRestore: return "gpu-restore";
  }
  return "?";
}

FailureModel::FailureModel(const cluster::ClusterSpec& spec, FailureConfig config)
    : spec_(&spec), config_(std::move(config)), mask_(spec) {
  if (config_.node_mttf < 0.0 || config_.gpu_mttf < 0.0) {
    throw std::invalid_argument("FailureModel: negative MTTF");
  }
  if (config_.node_mttf > 0.0 && config_.node_mttr <= 0.0) {
    throw std::invalid_argument("FailureModel: node_mttf > 0 requires node_mttr > 0");
  }
  if (config_.gpu_mttf > 0.0 && config_.gpu_mttr <= 0.0) {
    throw std::invalid_argument("FailureModel: gpu_mttf > 0 requires gpu_mttr > 0");
  }
  for (const ClusterEvent& e : config_.script) {
    const bool node_event = e.kind == ClusterEventKind::kNodeDown ||
                            e.kind == ClusterEventKind::kNodeUp;
    if (e.node < 0 || e.node >= spec.num_nodes()) {
      throw std::invalid_argument("FailureModel: scripted event names a bad node id");
    }
    if (!node_event && (e.type < 0 || e.type >= spec.num_types())) {
      throw std::invalid_argument("FailureModel: scripted GPU event names a bad type id");
    }
    if (e.time < 0.0) throw std::invalid_argument("FailureModel: scripted event before t=0");
  }
  // Stable sort keeps list order among same-time scripted events.
  std::stable_sort(config_.script.begin(), config_.script.end(),
                   [](const ClusterEvent& a, const ClusterEvent& b) { return a.time < b.time; });

  common::Rng base(config_.seed);
  nodes_.resize(static_cast<std::size_t>(spec.num_nodes()));
  for (auto& np : nodes_) {
    np.rng = base.fork();
    if (config_.node_mttf > 0.0) {
      np.next_transition = np.rng.exponential(1.0 / config_.node_mttf);
    }
  }
  gpu_rng_ = base.fork();
  schedule_next_gpu_degrade(0.0);
}

void FailureModel::schedule_next_gpu_degrade(Seconds after) {
  if (config_.gpu_mttf <= 0.0) {
    next_gpu_degrade_ = kNever;
    return;
  }
  // Each device fails at rate 1/gpu_mttf; the cluster-wide superposition has
  // rate total/gpu_mttf. Nameplate count keeps the draw sequence independent
  // of the current availability state (pure function of the seed).
  const double rate = static_cast<double>(spec_->total_gpus()) / config_.gpu_mttf;
  next_gpu_degrade_ = after + gpu_rng_.exponential(rate);
}

bool FailureModel::pick_degrade_victim(NodeId* h, GpuTypeId* r) {
  victim_weights_.clear();
  double total = 0.0;
  for (NodeId n = 0; n < spec_->num_nodes(); ++n) {
    for (GpuTypeId t = 0; t < spec_->num_types(); ++t) {
      const double w = static_cast<double>(mask_.live_capacity(n, t));
      victim_weights_.push_back(w);
      total += w;
    }
  }
  if (total <= 0.0) return false;
  const std::size_t idx = gpu_rng_.weighted_index(victim_weights_);
  *h = static_cast<NodeId>(idx / static_cast<std::size_t>(spec_->num_types()));
  *r = static_cast<GpuTypeId>(idx % static_cast<std::size_t>(spec_->num_types()));
  return true;
}

bool FailureModel::apply(const ClusterEvent& e) {
  switch (e.kind) {
    case ClusterEventKind::kNodeDown: return mask_.set_node_up(e.node, false);
    case ClusterEventKind::kNodeUp: return mask_.set_node_up(e.node, true);
    case ClusterEventKind::kGpuDegrade: return mask_.degrade(e.node, e.type, e.count) != 0;
    case ClusterEventKind::kGpuRestore: return mask_.degrade(e.node, e.type, -e.count) != 0;
  }
  return false;
}

void FailureModel::save(common::BinaryWriter& w) const {
  mask_.save(w);
  w.u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const NodeProcess& np : nodes_) {
    w.u64(np.rng.state());
    w.f64(np.next_transition);
  }
  w.u64(gpu_rng_.state());
  w.f64(next_gpu_degrade_);
  w.u32(static_cast<std::uint32_t>(pending_restores_.size()));
  for (const PendingRestore& pr : pending_restores_) {
    w.f64(pr.time);
    w.i32(pr.node);
    w.i32(pr.type);
  }
  w.u64(static_cast<std::uint64_t>(script_cursor_));
}

void FailureModel::restore(common::BinaryReader& r) {
  mask_.restore(r);
  const std::uint32_t n = r.u32();
  if (n != nodes_.size()) throw std::runtime_error("FailureModel::restore: node count mismatch");
  for (NodeProcess& np : nodes_) {
    np.rng.set_state(r.u64());
    np.next_transition = r.f64();
  }
  gpu_rng_.set_state(r.u64());
  next_gpu_degrade_ = r.f64();
  pending_restores_.resize(r.u32());
  for (PendingRestore& pr : pending_restores_) {
    pr.time = r.f64();
    pr.node = r.i32();
    pr.type = r.i32();
  }
  script_cursor_ = static_cast<std::size_t>(r.u64());
  if (script_cursor_ > config_.script.size()) {
    throw std::runtime_error("FailureModel::restore: script cursor out of range");
  }
}

std::vector<ClusterEvent> FailureModel::advance_to(Seconds t) {
  std::vector<ClusterEvent> fired;
  for (;;) {
    // Candidate sources, tie-broken (time, source rank, node id) so the
    // event order is deterministic: script, node processes, restores,
    // degrade draws.
    Seconds best = kNever;
    int rank = -1;
    NodeId best_node = kInvalidNode;

    if (script_cursor_ < config_.script.size()) {
      const ClusterEvent& e = config_.script[script_cursor_];
      if (e.time < best || (e.time == best && rank > 0)) {
        best = e.time;
        rank = 0;
        best_node = e.node;
      }
    }
    for (NodeId h = 0; h < spec_->num_nodes(); ++h) {
      const Seconds when = nodes_[static_cast<std::size_t>(h)].next_transition;
      if (when < best || (when == best && rank > 1)) {
        best = when;
        rank = 1;
        best_node = h;
      }
    }
    if (!pending_restores_.empty()) {
      const Seconds when = pending_restores_.front().time;
      if (when < best || (when == best && rank > 2)) {
        best = when;
        rank = 2;
        best_node = pending_restores_.front().node;
      }
    }
    if (next_gpu_degrade_ < best || (next_gpu_degrade_ == best && rank > 3)) {
      best = next_gpu_degrade_;
      rank = 3;
      best_node = kInvalidNode;
    }
    if (rank < 0 || best > t) break;

    switch (rank) {
      case 0: {
        ClusterEvent e = config_.script[script_cursor_++];
        if (e.kind == ClusterEventKind::kGpuDegrade ||
            e.kind == ClusterEventKind::kGpuRestore) {
          // Report the clamped count actually applied.
          const int applied = mask_.degrade(
              e.node, e.type,
              e.kind == ClusterEventKind::kGpuDegrade ? e.count : -e.count);
          if (applied != 0) {
            e.count = applied < 0 ? -applied : applied;
            fired.push_back(e);
          }
        } else if (apply(e)) {
          fired.push_back(e);
        }
        break;
      }
      case 1: {
        NodeProcess& np = nodes_[static_cast<std::size_t>(best_node)];
        // Direction follows the mask, so scripted overrides and the
        // stochastic process can't double-fire the same transition.
        ClusterEvent e;
        e.time = best;
        e.node = best_node;
        if (mask_.node_up(best_node)) {
          e.kind = ClusterEventKind::kNodeDown;
          np.next_transition = best + np.rng.exponential(1.0 / config_.node_mttr);
        } else {
          e.kind = ClusterEventKind::kNodeUp;
          np.next_transition = best + np.rng.exponential(1.0 / config_.node_mttf);
        }
        if (apply(e)) fired.push_back(e);
        break;
      }
      case 2: {
        const PendingRestore pr = pending_restores_.front();
        pending_restores_.erase(pending_restores_.begin());
        ClusterEvent e;
        e.time = pr.time;
        e.kind = ClusterEventKind::kGpuRestore;
        e.node = pr.node;
        e.type = pr.type;
        e.count = 1;
        if (apply(e)) fired.push_back(e);
        break;
      }
      case 3: {
        const Seconds when = next_gpu_degrade_;
        schedule_next_gpu_degrade(when);
        NodeId h = kInvalidNode;
        GpuTypeId r = kInvalidGpuType;
        if (pick_degrade_victim(&h, &r)) {
          ClusterEvent e;
          e.time = when;
          e.kind = ClusterEventKind::kGpuDegrade;
          e.node = h;
          e.type = r;
          e.count = 1;
          if (apply(e)) {
            fired.push_back(e);
            const Seconds repair = when + gpu_rng_.exponential(1.0 / config_.gpu_mttr);
            const auto pos = std::upper_bound(
                pending_restores_.begin(), pending_restores_.end(), repair,
                [](Seconds x, const PendingRestore& p) { return x < p.time; });
            pending_restores_.insert(pos, PendingRestore{repair, h, r});
          }
        }
        break;
      }
      default: break;
    }
  }
  return fired;
}

}  // namespace hadar::sim
