// The incremental round engine: the simulator's per-round core factored into
// a long-lived object the event-driven service daemon can drive one round at
// a time. Jobs are admitted individually (event sourcing) instead of being
// read from a whole trace up front; the engine owns every piece of advancing
// state — job runtimes, RNG streams, failure model, event log, metric
// accumulators — and can persist all of it bit-exactly through
// save()/restore(), which is what makes write-ahead logging + snapshot
// recovery reproduce the exact round (see src/service/).
//
// Simulator::run is now a thin driver over this engine (admit due arrivals,
// skip idle gaps, step), so the batch simulator and the daemon execute the
// same code path and stay behaviourally identical.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster_state.hpp"
#include "common/arena.hpp"
#include "common/rng.hpp"
#include "sim/event_log.hpp"
#include "sim/failure_model.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/sim_config.hpp"
#include "workload/job.hpp"

namespace hadar::common {
class BinaryWriter;
class BinaryReader;
}  // namespace hadar::common

namespace hadar::sim {

/// What one step() did — the unit the service daemon logs per round.
struct RoundOutcome {
  long long round = 0;    ///< index of the executed round (0-based)
  Seconds start = 0.0;    ///< simulated start time of the round
  int runnable = 0;       ///< jobs visible to the scheduler
  int scheduled = 0;      ///< jobs that held an allocation
  int preemptions = 0;
  int failure_kills = 0;
  std::vector<JobId> finished;          ///< jobs completed within this round
  cluster::AllocationMap allocations;   ///< the decision applied
  double schedule_seconds = 0.0;        ///< wall-clock spent in schedule()
};

/// Round-at-a-time simulation engine over one cluster. Construct, admit jobs
/// as they arrive, step() once per round. Non-copyable: the failure model
/// and scheduler contexts hold stable internal pointers.
class RoundEngine {
 public:
  /// `spec` must outlive the engine.
  RoundEngine(const cluster::ClusterSpec* spec, SimConfig config);
  RoundEngine(const RoundEngine&) = delete;
  RoundEngine& operator=(const RoundEngine&) = delete;

  const SimConfig& config() const { return config_; }
  const cluster::ClusterSpec& spec() const { return *nameplate_; }

  Seconds now() const { return t_; }
  long long rounds_completed() const { return rounds_; }
  std::size_t jobs_admitted() const { return js_.size(); }
  std::size_t unfinished_admitted() const { return unfinished_; }
  bool has_runnable() const { return unfinished_ > 0; }
  const EventLog& event_log() const { return log_; }

  /// Admits one job (its arrival event). Rejects duplicate ids and invalid
  /// specs with std::invalid_argument. Jobs whose arrival lies in the past
  /// are admitted as of now (the log still records the true arrival time).
  void admit(const workload::JobSpec& job);

  /// Advances the clock to the first round boundary at or after `target`
  /// without executing rounds (the idle skip between arrival bursts).
  /// Backwards skips are ignored.
  void skip_to(Seconds target);

  /// Executes one round at the current boundary: failure events, scheduler
  /// decision, validation, job advancement. Advances the clock by one round.
  RoundOutcome step(IScheduler& scheduler);

  /// Aggregate metrics over every admitted job. `ftf_population` overrides
  /// the job count used for the finish-time-fairness 1/n share (0 = the
  /// admitted count); the batch simulator passes the full trace size so
  /// never-admitted jobs still dilute the isolated share. `truncated` marks
  /// a run cut short with work still outstanding beyond the admitted set
  /// (horizon hit before later arrivals): the makespan then extends to now()
  /// even if every admitted job finished, as it would had they been admitted.
  SimResult finalize(std::size_t ftf_population = 0, bool truncated = false) const;

  /// Bit-exact persistence of all advancing state. restore() requires an
  /// engine constructed over the same (spec, config); throws
  /// std::runtime_error on shape mismatches.
  void save(common::BinaryWriter& w) const;
  void restore(common::BinaryReader& r);

  /// SplitMix64 position of the shared jitter/straggler stream — recorded in
  /// every changelog record and compared during replay as a cheap
  /// determinism check.
  std::uint64_t rng_state() const { return rng_.state(); }

 private:
  struct JobRuntime {
    /// Stable storage: JobViews and the outcome vector point into it.
    std::unique_ptr<workload::JobSpec> spec;
    JobOutcome out;
    double iterations = 0.0;
    double attained_service = 0.0;
    int rounds_received = 0;
    std::vector<int> rounds_on_type;
    std::vector<double> observed_throughput;
    cluster::JobAllocation current;
    bool finished = false;
    /// Iteration count at the last implicit checkpoint (the start of the
    /// most recent round the job computed in) and the compute done since —
    /// the progress a failure kill rolls back.
    double checkpoint_iterations = 0.0;
    double compute_since_checkpoint = 0.0;
    /// Set when a failure kill preempted the job; its next restart is
    /// charged checkpoint_load only (the save happened at the boundary).
    bool restart_pending = false;
  };

  void apply_failures(RoundOutcome& out);
  void refresh_context();
  void validate_decision(const cluster::AllocationMap& amap, IScheduler& scheduler) const;

  const cluster::ClusterSpec* nameplate_;
  SimConfig config_;
  common::Rng rng_;
  EventLog log_;

  std::vector<JobRuntime> js_;            // admission order
  std::map<JobId, std::size_t> index_of_; // job id -> js_ slot
  std::size_t unfinished_ = 0;

  Seconds t_ = 0.0;
  long long rounds_ = 0;
  int stalled_rounds_ = 0;

  // Failure machinery (present iff config_.failure.enabled()). The live spec
  // lives in a stable member so pointers schedulers cache across rounds stay
  // valid: topology changes reassign the object in place, never move it.
  std::optional<FailureModel> fm_;
  cluster::ClusterSpec live_spec_storage_;
  /// Scratch for apply_failures()' re-fit pass, kept across rounds so a
  /// failure round neither copies the spec (masked_into reuses
  /// live_spec_storage_'s buffers) nor allocates a fresh usage vector.
  std::optional<cluster::ClusterState> refit_state_;

  // Scheduler view, rebuilt only when the runnable set changes (epoch bump);
  // otherwise refreshed in place. view_of_[i] maps js_[i] to its slot in
  // ctx_.jobs for the current epoch (-1 when not runnable).
  SchedulerContext ctx_;
  /// Round-local scratch backing ctx_.arena; reset at every step() so
  /// scheduler-side per-round buffers recycle the same blocks.
  common::Arena arena_;
  std::uint64_t epoch_ = 1;          // simulator epochs start at 1; 0 = "unknown"
  std::uint64_t cluster_epoch_ = 1;
  std::uint64_t built_epoch_ = 0;
  std::vector<int> view_of_;

  // Result accumulators (SimResult fields that grow per round).
  double busy_gpu_seconds_ = 0.0;
  long long job_rounds_ = 0;
  long long total_reallocations_ = 0;
  double scheduler_seconds_ = 0.0;
  long long scheduler_calls_ = 0;
  long long num_node_failures_ = 0;
  long long num_node_recoveries_ = 0;
  long long num_gpu_degrades_ = 0;
};

}  // namespace hadar::sim
