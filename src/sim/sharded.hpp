// Sharded hierarchical scheduling: a top-level orchestrator that partitions
// the cluster into scheduling cells (cluster/cell_partition.hpp), routes
// every runnable job to one cell, and runs an independent instance of the
// wrapped policy on each cell concurrently. Per-round cost drops from one
// O(solve(H, J)) decision to K parallel O(solve(H/K, J/K)) decisions — the
// decomposition that makes 10k-node rounds tractable.
//
// Contract highlights:
//  - cells == 1 is a pure passthrough: schedule()/name()/save_state() hit
//    the wrapped policy directly, so the result (and persisted state) is
//    bit-identical to running it unsharded.
//  - Determinism: cells are solved via common::parallel_map (results are
//    index-addressed) and merged in ascending cell order; job routing and
//    migration iterate jobs in context order. HADAR_THREADS=N therefore
//    produces the same schedule as HADAR_THREADS=1.
//  - Each cell owns a full scheduler instance created by the factory, so
//    per-cell warm solver state (Gavel's MaxMinContext, Tiresias queues)
//    falls out automatically and is never shared across threads.
//  - Job routing is sticky: a job stays in the cell where it currently holds
//    devices, else in its previously assigned cell; new jobs land on the
//    cell with the lowest assigned-demand/capacity ratio, which distributes
//    the per-round job quota proportionally to cell capacity.
//  - Cross-cell refinement: a job its home cell physically cannot fit (free
//    usable devices < gang size) migrates to the cheapest other cell — using
//    device-utilization as the marginal-price proxy — when that cell
//    undercuts the home cell's utilization by migration_threshold. Jobs the
//    inner policy *chose* to pause (e.g. Hadar's payoff filter) are never
//    second-guessed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cell_partition.hpp"
#include "cluster/cluster_state.hpp"
#include "common/arena.hpp"
#include "sim/scheduler.hpp"

namespace hadar::sim {

/// Knobs for ShardedScheduler. Overlay from the environment via from_env();
/// runner::make_scheduler applies it automatically (HADAR_CELLS).
struct ShardConfig {
  /// Number of cells. 1 = unsharded passthrough (the default); 0 = derive
  /// from cluster size via cluster::auto_cells(). Values above the node
  /// count are clamped by the partitioner.
  int cells = 1;
  /// Minimum utilization gap (fraction of devices in use, in [0, 1]) before
  /// an unplaceable job migrates to a cheaper cell. 1.0 disables migration.
  double migration_threshold = 0.05;
  /// Consecutive rounds a job may go unplaced by its cell's policy before
  /// the orchestrator force-places it greedily in the cheapest cell with
  /// room (ignoring the price threshold; 0 disables). This rescues gangs
  /// that are structurally unplaceable at cell granularity — e.g. a
  /// homogeneous-only policy whose gang exceeds every cell's single-type
  /// pool even though it fits the unsharded cluster.
  int starvation_rounds = 8;

  /// Overlays HADAR_CELLS / HADAR_CELL_MIGRATION onto `base` (defaults when
  /// omitted). Bad values warn on stderr and keep the base value
  /// (HADAR_SERVICE_* convention).
  static ShardConfig from_env(ShardConfig base);
  static ShardConfig from_env();
};

class ShardedScheduler final : public IScheduler {
 public:
  using Factory = std::function<SchedulerPtr()>;

  /// `factory` creates one instance of the wrapped policy per cell (plus the
  /// passthrough instance); it must produce identically configured
  /// schedulers on every call.
  ShardedScheduler(Factory factory, ShardConfig cfg = {});

  std::string name() const override;
  cluster::AllocationMap schedule(const SchedulerContext& ctx) override;
  void reset() override;
  void save_state(common::BinaryWriter& w) const override;
  void restore_state(common::BinaryReader& r) override;

  /// Resolved cell count (0 until the first schedule() when cells == auto).
  int num_cells() const { return resolved_cells_; }
  /// Current partition, or nullptr before the first multi-cell schedule().
  const cluster::CellLayout* layout() const {
    return layout_ ? &*layout_ : nullptr;
  }
  /// Cell a job was last routed to, or -1 when unknown.
  int cell_of_job(JobId id) const;
  /// Consecutive rounds the job has gone policy-unplaced (0 when placed or
  /// unknown). Exposed for the churn/bounded-state regression tests.
  int starved_rounds(JobId id) const;
  /// Cross-cell migrations performed since construction/reset().
  long long migrations() const { return migrations_; }

 private:
  struct Cell {
    SchedulerPtr scheduler;
    SchedulerContext ctx;              ///< reused across rounds (no realloc)
    common::Arena arena;               ///< round scratch for this cell's solve
    std::vector<JobId> last_ids;       ///< job set of the previous round
    std::uint64_t jobs_epoch = 1;      ///< bumped when last_ids changes
  };

  /// Resolves the cell count, (re)builds the partition when topology
  /// changed, and creates per-cell schedulers on first use.
  void ensure_cells(const SchedulerContext& ctx);
  /// Fills job_cell_[i] for every ctx.jobs[i] and refreshes home_.
  void route_jobs(const SchedulerContext& ctx);
  /// Rebuilds every cell's SchedulerContext from the global one.
  void build_cell_contexts(const SchedulerContext& ctx);
  /// Remaps a cell-local allocation into global node ids.
  cluster::JobAllocation to_global(int cell, const cluster::JobAllocation& a) const;

  Factory factory_;
  ShardConfig cfg_;
  SchedulerPtr flat_;  ///< passthrough instance; also provides name()

  /// Bookkeeping entry guarded by the owning job's arrival time: both maps
  /// are rebuilt from the live job set every round (so completed/killed jobs
  /// are pruned and state size stays bounded by the runnable set), and the
  /// arrival guard keeps a recycled JobId — a fresh job reusing a finished
  /// job's id in service mode — from inheriting the dead job's sticky cell
  /// or starvation counter.
  struct JobEntry {
    int value = 0;        ///< home cell, resp. consecutive unplaced rounds
    Seconds arrival = 0;  ///< arrival of the job this entry belongs to
  };
  /// Arrival sentinel for entries restored from version-1 state (which
  /// lacked the guard): matches any job. Real arrivals are never negative.
  static constexpr Seconds kAnyArrival = -1.0;

  /// True when `e` was recorded for this job and not for a finished job
  /// whose id got recycled.
  static bool same_job(const JobEntry& e, const JobView& j) {
    return e.arrival == kAnyArrival || e.arrival == j.spec->arrival;
  }

  int resolved_cells_ = 0;
  std::optional<cluster::CellLayout> layout_;
  std::vector<Cell> cells_;
  std::map<JobId, JobEntry> home_;     ///< sticky job -> cell routing
  std::map<JobId, JobEntry> starved_;  ///< consecutive policy-unplaced rounds
  std::vector<int> job_cell_;          ///< per-round: cell of ctx.jobs[i]
  long long migrations_ = 0;

  /// Topology-change detection: cluster_epoch when available, else a dense
  /// per-(node, type) capacity signature.
  std::uint64_t topo_version_ = 1;   ///< handed to cells as cluster_epoch
  std::uint64_t seen_cluster_epoch_ = 0;
  std::vector<int> cap_signature_;
  std::vector<int> cap_scratch_;

  // Per-round merge/refinement scratch, persistent so the hot path stops
  // reconstructing K ClusterStates (and assorted vectors) every round.
  // merge_state_ is reused only while it still points at the live layout's
  // cell specs; a repartition rebuilds it.
  std::vector<cluster::ClusterState> merge_state_;
  std::vector<double> merge_used_;
  std::vector<double> route_load_;
  std::vector<double> route_cap_;
  std::vector<double> mig_cap_;
  std::vector<int> mig_order_;
};

}  // namespace hadar::sim
