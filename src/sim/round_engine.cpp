#include "sim/round_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <stdexcept>

#include "cluster/cluster_state.hpp"
#include "common/binary.hpp"
#include "obs/trace.hpp"

namespace hadar::sim {
namespace {

// Namespaces the per-job observation-noise streams away from every other
// consumer of SimConfig::seed (trace generation forks per job with the raw
// seed; the failure model has its own seed).
constexpr std::uint64_t kObsNoiseSalt = 0x6f62736e6f697365ULL;  // "obsnoise"

EventKind to_event_kind(ClusterEventKind k) {
  switch (k) {
    case ClusterEventKind::kNodeDown: return EventKind::kNodeDown;
    case ClusterEventKind::kNodeUp: return EventKind::kNodeUp;
    case ClusterEventKind::kGpuDegrade: return EventKind::kGpuDegrade;
    case ClusterEventKind::kGpuRestore: return EventKind::kGpuRestore;
  }
  return EventKind::kNodeDown;
}

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void SimConfig::validate() const {
  if (round_length <= 0.0) throw std::invalid_argument("SimConfig: round_length <= 0");
  network.validate();
  if (straggler.probability < 0.0 || straggler.probability > 1.0 ||
      straggler.slowdown <= 0.0 || straggler.slowdown > 1.0) {
    throw std::invalid_argument("SimConfig: bad straggler parameters");
  }
}

RoundEngine::RoundEngine(const cluster::ClusterSpec* spec, SimConfig config)
    : nameplate_(spec), config_(std::move(config)), rng_(config_.seed) {
  if (nameplate_ == nullptr) throw std::invalid_argument("RoundEngine: null cluster spec");
  config_.validate();
  log_.set_enabled(config_.enable_event_log);

  // With failures enabled the scheduler sees a live (masked) copy of the
  // spec. The copy lives in a stable member so pointers schedulers cache
  // across rounds (ClusterState::spec_, bound type registries) stay valid:
  // topology changes reassign the object in place, never move it.
  if (config_.failure.enabled()) {
    fm_.emplace(*nameplate_, config_.failure);
    nameplate_->masked_into(fm_->mask(), &live_spec_storage_);
    refit_state_.emplace(&live_spec_storage_);
  }
  ctx_.spec = fm_ ? &live_spec_storage_ : nameplate_;
  ctx_.round_length = config_.round_length;
  ctx_.network = config_.network;
}

void RoundEngine::admit(const workload::JobSpec& job) {
  const int R = nameplate_->num_types();
  job.validate(R);
  if (index_of_.count(job.id) != 0) {
    throw std::invalid_argument("RoundEngine: duplicate job id " + std::to_string(job.id));
  }

  JobRuntime s;
  s.spec = std::make_unique<workload::JobSpec>(job);
  s.out.id = job.id;
  s.out.arrival = job.arrival;
  s.out.deadline = job.deadline;
  s.out.tenant = job.tenant;
  s.rounds_on_type.assign(static_cast<std::size_t>(R), 0);
  s.observed_throughput = job.throughput;
  if (config_.observation_noise > 0.0) {
    // Fork-per-job stream: observed throughputs are a pure function of
    // (seed, job id), independent of admission order and batching.
    common::Rng nrng(common::mix64(config_.seed ^ kObsNoiseSalt,
                                   static_cast<std::uint64_t>(job.id)));
    for (double& x : s.observed_throughput) {
      if (x > 0.0) x *= std::max(0.05, 1.0 + nrng.normal(0.0, config_.observation_noise));
    }
  }

  index_of_[job.id] = js_.size();
  js_.push_back(std::move(s));
  ++unfinished_;
  ++epoch_;
  log_.record(job.arrival, EventKind::kArrival, job.id);
}

void RoundEngine::skip_to(Seconds target) {
  if (target <= t_) return;
  const Seconds L = config_.round_length;
  Seconds nt = std::ceil(target / L) * L;
  if (nt < target) nt += L;  // guard FP rounding
  if (nt > t_) t_ = nt;
}

void RoundEngine::apply_failures(RoundOutcome& out) {
  if (!fm_) return;
  HADAR_TRACE_SCOPE("sim", "sim.failures", 1);
  const std::vector<ClusterEvent> fired = fm_->advance_to(t_);
  if (fired.empty()) return;

  for (const ClusterEvent& e : fired) {
    switch (e.kind) {
      case ClusterEventKind::kNodeDown: ++num_node_failures_; break;
      case ClusterEventKind::kNodeUp: ++num_node_recoveries_; break;
      case ClusterEventKind::kGpuDegrade: ++num_gpu_degrades_; break;
      case ClusterEventKind::kGpuRestore: break;
    }
    if (log_.enabled()) {
      std::string detail = "node " + std::to_string(e.node);
      if (e.kind == ClusterEventKind::kGpuDegrade || e.kind == ClusterEventKind::kGpuRestore) {
        detail += " " + nameplate_->types().name(e.type) + " x" + std::to_string(e.count);
      }
      log_.record(e.time, to_event_kind(e.kind), kInvalidJob, std::move(detail));
    }
    if (obs::TraceSession* ts = obs::TraceSession::current()) {
      ts->instant("fault", sim::to_string(to_event_kind(e.kind)),
                  {{"node", static_cast<double>(e.node)}, {"sim_t", e.time}});
      obs::count("fault.events");
    }
  }
  nameplate_->masked_into(fm_->mask(), &live_spec_storage_);
  ++cluster_epoch_;

  // Re-fit held allocations in job order: survivors keep their placement,
  // the rest are failure-killed. Deterministic because the iteration order
  // and the live capacities are. Each victim rolls back to its last
  // implicit checkpoint and re-enters the queue.
  refit_state_->clear();
  cluster::ClusterState& live_state = *refit_state_;
  for (auto& s : js_) {
    if (s.finished || s.current.empty()) continue;
    if (live_state.can_allocate(s.current)) {
      live_state.allocate(s.current);
      continue;
    }
    s.iterations = s.checkpoint_iterations;
    s.out.lost_gpu_seconds += s.compute_since_checkpoint;
    s.compute_since_checkpoint = 0.0;
    ++s.out.failure_kills;
    s.restart_pending = true;
    s.current = cluster::JobAllocation{};
    ++out.failure_kills;
    log_.record(t_, EventKind::kKill, s.spec->id);
    if (obs::TraceSession* ts = obs::TraceSession::current()) {
      ts->instant("fault", "job_kill",
                  {{"job", static_cast<double>(s.spec->id)}, {"sim_t", t_}});
    }
  }
}

void RoundEngine::refresh_context() {
  ctx_.now = t_;
  ctx_.jobs_epoch = epoch_;
  ctx_.cluster_epoch = cluster_epoch_;
  if (view_of_.size() != js_.size()) view_of_.resize(js_.size(), -1);
  if (built_epoch_ != epoch_) {
    ctx_.jobs.clear();
    std::fill(view_of_.begin(), view_of_.end(), -1);
    for (std::size_t i = 0; i < js_.size(); ++i) {
      auto& s = js_[i];
      if (s.finished) continue;
      view_of_[i] = static_cast<int>(ctx_.jobs.size());
      JobView v;
      v.spec = s.spec.get();
      v.iterations_done = s.iterations;
      v.attained_service = s.attained_service;
      v.rounds_received = s.rounds_received;
      v.rounds_on_type = s.rounds_on_type;
      v.current_allocation = s.current;
      v.throughput = s.observed_throughput;
      ctx_.jobs.push_back(std::move(v));
    }
    built_epoch_ = epoch_;
  } else {
    // Same runnable set as last round: only the dynamic fields moved.
    // Same-size vector assignments below reuse the views' buffers.
    for (std::size_t i = 0; i < js_.size(); ++i) {
      if (view_of_[i] < 0) continue;
      auto& s = js_[i];
      JobView& v = ctx_.jobs[static_cast<std::size_t>(view_of_[i])];
      v.iterations_done = s.iterations;
      v.attained_service = s.attained_service;
      v.rounds_received = s.rounds_received;
      v.rounds_on_type = s.rounds_on_type;
      v.current_allocation = s.current;
      // v.spec and v.throughput are per-job constants within a run.
    }
  }
}

void RoundEngine::validate_decision(const cluster::AllocationMap& amap,
                                    IScheduler& scheduler) const {
  HADAR_TRACE_SCOPE("sim", "sim.validate", 2);
  const std::string err = cluster::validate(*ctx_.spec, amap);
  if (!err.empty()) {
    throw std::runtime_error(scheduler.name() + ": capacity violation: " + err);
  }
  for (const auto& [id, alloc] : amap) {
    if (alloc.empty()) continue;
    const auto it = index_of_.find(id);
    if (it == index_of_.end() || js_[it->second].finished) {
      throw std::runtime_error(scheduler.name() + ": allocated a non-runnable job " +
                               std::to_string(id));
    }
    const int w = alloc.total_workers();
    const int want = js_[it->second].spec->num_workers;
    if (w != want) {
      throw std::runtime_error(scheduler.name() + ": gang violation for job " +
                               std::to_string(id) + ": got " + std::to_string(w) +
                               " workers, requested " + std::to_string(want));
    }
  }
}

RoundOutcome RoundEngine::step(IScheduler& scheduler) {
  const Seconds L = config_.round_length;
  const int R = nameplate_->num_types();
  constexpr int kStallLimit = 100000;

  RoundOutcome out;
  out.round = rounds_;
  out.start = t_;

  obs::ScopedSpan round_span("sim", "sim.round");
  if (round_span.active()) {
    round_span.arg("round", static_cast<double>(rounds_));
    round_span.arg("t", t_);
  }

  // Apply availability changes due at this round boundary, then kill jobs
  // whose held allocation no longer fits the live cluster.
  apply_failures(out);

  // Build (or refresh) the scheduler's view. The round-scratch arena is
  // rewound here — everything handed out last round is dead by contract —
  // and re-attached each step so the pointer survives engine moves.
  arena_.reset();
  ctx_.arena = &arena_;
  refresh_context();
  out.runnable = static_cast<int>(ctx_.jobs.size());
  if (round_span.active()) {
    round_span.arg("runnable", static_cast<double>(ctx_.jobs.size()));
  }

  const double t0 = now_seconds();
  cluster::AllocationMap amap;
  {
    obs::ScopedSpan sched_span("sched", "sched.schedule");
    if (sched_span.active()) {
      sched_span.str_arg("scheduler", scheduler.name());
      sched_span.arg("runnable", static_cast<double>(ctx_.jobs.size()));
    }
    amap = scheduler.schedule(ctx_);
  }
  out.schedule_seconds = now_seconds() - t0;
  scheduler_seconds_ += out.schedule_seconds;
  ++scheduler_calls_;

  if (config_.validate_allocations) validate_decision(amap, scheduler);

  // Advance every active job through the round [t, t+L).
  obs::ScopedSpan advance_span("sim", "sim.advance", 1);
  bool progressed = false;
  for (auto& s : js_) {
    if (s.finished) continue;
    const auto it = amap.find(s.spec->id);
    const cluster::JobAllocation alloc =
        it != amap.end() ? it->second : cluster::JobAllocation{};

    if (alloc.empty()) {
      if (!s.current.empty()) {
        ++s.out.preemptions;
        ++out.preemptions;
        log_.record(t_, EventKind::kPreempt, s.spec->id);
      }
      s.current = cluster::JobAllocation{};
      continue;
    }

    ++out.scheduled;
    const bool changed = !(alloc == s.current);
    if (s.out.first_start < 0.0) {
      s.out.first_start = t_;
      log_.record(t_, EventKind::kStart, s.spec->id, alloc.to_string(*nameplate_));
    } else if (changed) {
      ++s.out.reallocations;
      log_.record(t_, s.current.empty() ? EventKind::kResume : EventKind::kReallocate,
                  s.spec->id, alloc.to_string(*nameplate_));
    }

    Seconds penalty = 0.0;
    if (changed) {
      // A failure restart skips the save: the checkpoint already exists
      // (written implicitly at the round boundary before the crash).
      penalty = config_.use_flat_reallocation_penalty
                    ? config_.flat_reallocation_penalty
                    : (s.restart_pending ? s.spec->checkpoint_load
                                         : s.spec->checkpoint_save + s.spec->checkpoint_load);
    } else if (config_.charge_periodic_save) {
      penalty = s.spec->checkpoint_save;
    }
    if (changed && s.restart_pending) {
      if (obs::TraceSession* ts = obs::TraceSession::current()) {
        ts->instant("checkpoint", "checkpoint_restore",
                    {{"job", static_cast<double>(s.spec->id)}, {"sim_t", t_}});
        obs::count("checkpoint.restores");
      }
    }
    s.restart_pending = false;
    penalty = std::min(penalty, L);
    const Seconds effective = L - penalty;

    // True bottleneck throughput of this placement (constraint 1b), with
    // network penalty, optional jitter, and optional straggler slowdown.
    double x = config_.network.effective_rate(
        alloc.bottleneck_throughput(s.spec->throughput), alloc.nodes_used(),
        s.spec->model_size_mb);
    if (config_.throughput_jitter > 0.0) {
      const double sigma = config_.throughput_jitter;
      x *= rng_.lognormal(-0.5 * sigma * sigma, sigma);  // mean-1 jitter
    }
    if (config_.straggler.probability > 0.0 && rng_.uniform() < config_.straggler.probability) {
      x *= config_.straggler.slowdown;
      log_.record(t_, EventKind::kStraggler, s.spec->id);
    }

    const int workers = alloc.total_workers();
    const double rate = x * workers;  // aggregate iterations/s (1a)
    ++s.rounds_received;
    ++job_rounds_;
    if (changed) ++total_reallocations_;
    for (GpuTypeId r = 0; r < R; ++r) {
      if (alloc.workers_of_type(r) > 0) ++s.rounds_on_type[static_cast<std::size_t>(r)];
    }

    // The round boundary is the job's implicit checkpoint: a failure during
    // this round rolls progress back to here.
    s.checkpoint_iterations = s.iterations;

    const double remaining = s.spec->total_iterations() - s.iterations;
    double held, compute;
    if (rate > 0.0 && remaining / rate <= effective + 1e-12) {
      const Seconds run_time = remaining / rate;
      s.iterations = s.spec->total_iterations();
      s.finished = true;
      ++epoch_;
      s.out.finish = t_ + penalty + run_time;
      held = workers * (penalty + run_time);
      compute = workers * run_time;
      --unfinished_;
      out.finished.push_back(s.spec->id);
      log_.record(s.out.finish, EventKind::kFinish, s.spec->id);
      if (s.spec->has_deadline() && obs::TraceSession::current() != nullptr) {
        obs::count(s.out.finish <= s.spec->deadline ? "slo.deadline_met" : "slo.deadline_miss");
      }
      s.current = cluster::JobAllocation{};
      progressed = true;
    } else {
      s.iterations += rate * effective;
      held = workers * L;
      compute = workers * effective;
      s.current = alloc;
      if (rate > 0.0) progressed = true;
    }
    s.compute_since_checkpoint = compute;
    ++s.out.rounds_run;
    s.attained_service += held;
    s.out.gpu_seconds += held;
    s.out.compute_gpu_seconds += compute;
    busy_gpu_seconds_ += compute;
  }

  if (!progressed && !ctx_.jobs.empty()) {
    if (++stalled_rounds_ > kStallLimit) {
      throw std::runtime_error(scheduler.name() +
                               ": simulation stalled (no progress for 100000 rounds)");
    }
  } else {
    stalled_rounds_ = 0;
  }

  if (obs::TraceSession* ts = obs::TraceSession::current()) {
    const int queue_depth = static_cast<int>(ctx_.jobs.size()) - out.scheduled;
    ts->counter("round.queue_depth", queue_depth);
    ts->counter("round.scheduled_jobs", out.scheduled);
    obs::count("sim.rounds");
    obs::count("round.preemptions", static_cast<std::uint64_t>(out.preemptions));
    obs::count("round.failure_kills", static_cast<std::uint64_t>(out.failure_kills));
    obs::gauge_set("round.queue_depth", queue_depth);
    obs::gauge_set("round.scheduled_jobs", out.scheduled);
    ts->sample_metrics(t_);
  }

  t_ += L;
  ++rounds_;
  out.allocations = std::move(amap);
  return out;
}

SimResult RoundEngine::finalize(std::size_t ftf_population, bool truncated) const {
  SimResult result;
  result.rounds = rounds_;
  result.total_reallocations = total_reallocations_;
  result.scheduler_seconds = scheduler_seconds_;
  result.scheduler_calls = scheduler_calls_;
  result.num_node_failures = num_node_failures_;
  result.num_node_recoveries = num_node_recoveries_;
  result.num_gpu_degrades = num_gpu_degrades_;

  result.jobs.reserve(js_.size());
  const double n_jobs =
      static_cast<double>(ftf_population > 0 ? ftf_population : js_.size());
  Seconds makespan = 0.0;
  std::vector<double> jcts, qdelays, ftfs, utils;
  for (const auto& s : js_) {
    JobOutcome o = s.out;
    if (s.finished) {
      utils.push_back(o.gpu_utilization(s.spec->num_workers));
      makespan = std::max(makespan, o.finish);
      jcts.push_back(o.jct());
      // Themis finish-time fairness: JCT over the runtime with an exclusive
      // 1/n share of the cluster's best devices.
      const double x_best = s.spec->max_throughput();
      const double isolated_rate = x_best * s.spec->num_workers / n_jobs;
      if (isolated_rate > 0.0) {
        const double t_id = s.spec->total_iterations() / isolated_rate;
        o.ftf = o.jct() / t_id;
        ftfs.push_back(o.ftf);
      }
    }
    if (o.first_start >= 0.0) {
      qdelays.push_back(o.queueing_delay());
    } else {
      ++result.num_never_started;
    }
    if (!s.finished) ++result.num_unfinished;
    result.total_preemptions += o.preemptions;
    result.total_failure_kills += o.failure_kills;
    result.lost_gpu_seconds += o.lost_gpu_seconds;
    result.jobs.push_back(std::move(o));
  }
  if (unfinished_ > 0 || truncated) makespan = std::max(makespan, t_);
  result.makespan = makespan;
  result.avg_jct = common::mean(jcts);
  result.median_jct = common::median(jcts);
  result.min_jct = common::min_of(jcts);
  result.max_jct = common::max_of(jcts);
  result.p95_jct = common::percentile(jcts, 95.0);
  result.avg_queueing_delay = common::mean(qdelays);
  result.avg_ftf = common::mean(ftfs);
  result.max_ftf = common::max_of(ftfs);
  result.avg_job_utilization = common::mean(utils);
  if (makespan > 0.0 && nameplate_->total_gpus() > 0) {
    // Both are normalized by nameplate capacity so degradation curves stay
    // comparable across failure rates; goodput discounts rolled-back work.
    result.gpu_utilization = busy_gpu_seconds_ / (nameplate_->total_gpus() * makespan);
    result.goodput =
        (busy_gpu_seconds_ - result.lost_gpu_seconds) / (nameplate_->total_gpus() * makespan);
  }
  if (job_rounds_ > 0) {
    result.realloc_round_fraction =
        static_cast<double>(result.total_reallocations) / static_cast<double>(job_rounds_);
  }

  // SLO accounting: deadline attainment/tardiness and per-tenant shares.
  // Runs after makespan so unfinished deadline jobs can be charged to the
  // end of the run.
  std::map<int, TenantShare> tenants;
  double tardiness_sum = 0.0;
  double total_gpu_seconds = 0.0;
  for (JobOutcome& o : result.jobs) {
    TenantShare& ts = tenants[o.tenant];
    ts.tenant = o.tenant;
    ++ts.jobs;
    ts.gpu_hours += o.gpu_seconds / 3600.0;
    total_gpu_seconds += o.gpu_seconds;
    if (!o.has_deadline()) continue;
    ++result.num_deadline_jobs;
    o.tardiness = std::max(0.0, (o.finished() ? o.finish : makespan) - o.deadline);
    if (o.met_deadline()) ++result.num_deadline_met;
    tardiness_sum += o.tardiness;
    result.max_tardiness = std::max(result.max_tardiness, o.tardiness);
  }
  if (result.num_deadline_jobs > 0) {
    result.deadline_attainment = static_cast<double>(result.num_deadline_met) /
                                 static_cast<double>(result.num_deadline_jobs);
    result.avg_tardiness = tardiness_sum / result.num_deadline_jobs;
  }
  result.tenant_shares.reserve(tenants.size());
  for (auto& [id, ts] : tenants) {
    if (total_gpu_seconds > 0.0) ts.share = ts.gpu_hours * 3600.0 / total_gpu_seconds;
    result.tenant_shares.push_back(ts);
  }
  if (obs::TraceSession* ts = obs::TraceSession::current()) {
    ts->counter("slo.deadline_attainment", result.deadline_attainment);
    obs::gauge_set("slo.deadline_attainment", result.deadline_attainment);
    obs::gauge_set("slo.avg_tardiness_s", result.avg_tardiness);
    obs::gauge_set("slo.tenants", static_cast<double>(result.tenant_shares.size()));
  }
  return result;
}

void RoundEngine::save(common::BinaryWriter& w) const {
  w.u64(rng_.state());
  w.f64(t_);
  w.i64(rounds_);
  w.i32(stalled_rounds_);
  w.u64(epoch_);
  w.u64(cluster_epoch_);

  w.u32(static_cast<std::uint32_t>(js_.size()));
  for (const auto& s : js_) {
    s.spec->save(w);
    // JobOutcome (id/arrival derive from the spec, ftf from finalize()).
    w.f64(s.out.first_start);
    w.f64(s.out.finish);
    w.f64(s.out.gpu_seconds);
    w.f64(s.out.compute_gpu_seconds);
    w.i32(s.out.rounds_run);
    w.i32(s.out.preemptions);
    w.i32(s.out.reallocations);
    w.i32(s.out.failure_kills);
    w.f64(s.out.lost_gpu_seconds);
    w.f64(s.iterations);
    w.f64(s.attained_service);
    w.i32(s.rounds_received);
    common::write_i32_vector(w, s.rounds_on_type);
    common::write_f64_vector(w, s.observed_throughput);
    s.current.save(w);
    w.boolean(s.finished);
    w.f64(s.checkpoint_iterations);
    w.f64(s.compute_since_checkpoint);
    w.boolean(s.restart_pending);
  }

  w.f64(busy_gpu_seconds_);
  w.i64(job_rounds_);
  w.i64(total_reallocations_);
  w.f64(scheduler_seconds_);
  w.i64(scheduler_calls_);
  w.i64(num_node_failures_);
  w.i64(num_node_recoveries_);
  w.i64(num_gpu_degrades_);

  w.boolean(fm_.has_value());
  if (fm_) fm_->save(w);
  log_.save(w);
}

void RoundEngine::restore(common::BinaryReader& r) {
  rng_.set_state(r.u64());
  t_ = r.f64();
  rounds_ = r.i64();
  stalled_rounds_ = r.i32();
  epoch_ = r.u64();
  cluster_epoch_ = r.u64();

  const std::uint32_t n = r.u32();
  js_.clear();
  index_of_.clear();
  unfinished_ = 0;
  js_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    JobRuntime s;
    s.spec = std::make_unique<workload::JobSpec>(workload::JobSpec::restore(r));
    s.out.id = s.spec->id;
    s.out.arrival = s.spec->arrival;
    s.out.deadline = s.spec->deadline;
    s.out.tenant = s.spec->tenant;
    s.out.first_start = r.f64();
    s.out.finish = r.f64();
    s.out.gpu_seconds = r.f64();
    s.out.compute_gpu_seconds = r.f64();
    s.out.rounds_run = r.i32();
    s.out.preemptions = r.i32();
    s.out.reallocations = r.i32();
    s.out.failure_kills = r.i32();
    s.out.lost_gpu_seconds = r.f64();
    s.iterations = r.f64();
    s.attained_service = r.f64();
    s.rounds_received = r.i32();
    s.rounds_on_type = common::read_i32_vector(r);
    s.observed_throughput = common::read_f64_vector(r);
    s.current = cluster::JobAllocation::restore(r);
    s.finished = r.boolean();
    s.checkpoint_iterations = r.f64();
    s.compute_since_checkpoint = r.f64();
    s.restart_pending = r.boolean();
    if (s.rounds_on_type.size() != static_cast<std::size_t>(nameplate_->num_types())) {
      throw std::runtime_error("RoundEngine::restore: rounds_on_type arity mismatch");
    }
    if (!s.finished) ++unfinished_;
    if (!index_of_.emplace(s.spec->id, js_.size()).second) {
      throw std::runtime_error("RoundEngine::restore: duplicate job id");
    }
    js_.push_back(std::move(s));
  }

  busy_gpu_seconds_ = r.f64();
  job_rounds_ = r.i64();
  total_reallocations_ = r.i64();
  scheduler_seconds_ = r.f64();
  scheduler_calls_ = r.i64();
  num_node_failures_ = r.i64();
  num_node_recoveries_ = r.i64();
  num_gpu_degrades_ = r.i64();

  const bool had_fm = r.boolean();
  if (had_fm != fm_.has_value()) {
    throw std::runtime_error("RoundEngine::restore: failure-model presence mismatch");
  }
  if (fm_) {
    fm_->restore(r);
    nameplate_->masked_into(fm_->mask(), &live_spec_storage_);
  }
  log_.restore(r);
  log_.set_enabled(config_.enable_event_log);

  // Force a full JobView rebuild on the next step(): the views hold pointers
  // into the old js_ storage.
  built_epoch_ = 0;
  view_of_.assign(js_.size(), -1);
  ctx_.jobs.clear();
}

}  // namespace hadar::sim
