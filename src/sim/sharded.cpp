#include "sim/sharded.hpp"

#include <algorithm>
#include <stdexcept>

#include "cluster/cluster_state.hpp"
#include "cluster/placement.hpp"
#include "common/binary.hpp"
#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

namespace hadar::sim {

namespace {

/// Usable GPU types of a job ordered best-first (throughput desc, id asc) —
/// the fill order the migration pass hands to take_in_type_order().
std::vector<GpuTypeId> type_order_for(const JobView& j, int num_types) {
  std::vector<GpuTypeId> order;
  for (GpuTypeId r = 0; r < num_types; ++r) {
    if (j.throughput_on(r) > 0.0) order.push_back(r);
  }
  std::sort(order.begin(), order.end(), [&j](GpuTypeId a, GpuTypeId b) {
    const double xa = j.throughput_on(a), xb = j.throughput_on(b);
    return xa != xb ? xa > xb : a < b;
  });
  return order;
}

}  // namespace

ShardConfig ShardConfig::from_env() { return from_env(ShardConfig{}); }

ShardConfig ShardConfig::from_env(ShardConfig base) {
  ShardConfig cfg = base;
  // 0 = auto-size from the cluster; negative / garbage values warn + fall
  // back, mirroring the HADAR_SERVICE_* convention.
  cfg.cells = common::env_int("HADAR_CELLS", base.cells, 0);
  cfg.migration_threshold =
      common::env_double("HADAR_CELL_MIGRATION", base.migration_threshold, 0.0, 1.0);
  return cfg;
}

ShardedScheduler::ShardedScheduler(Factory factory, ShardConfig cfg)
    : factory_(std::move(factory)), cfg_(cfg) {
  if (!factory_) throw std::invalid_argument("ShardedScheduler: null factory");
  if (cfg_.cells < 0) cfg_.cells = 1;
  flat_ = factory_();
  if (!flat_) throw std::invalid_argument("ShardedScheduler: factory returned null");
}

std::string ShardedScheduler::name() const {
  if (cfg_.cells == 1) return flat_->name();
  const int k = resolved_cells_ > 0 ? resolved_cells_ : cfg_.cells;
  return flat_->name() + "[cells=" + (k > 0 ? std::to_string(k) : "auto") + "]";
}

int ShardedScheduler::cell_of_job(JobId id) const {
  const auto it = home_.find(id);
  return it == home_.end() ? -1 : it->second.value;
}

int ShardedScheduler::starved_rounds(JobId id) const {
  const auto it = starved_.find(id);
  return it == starved_.end() ? 0 : it->second.value;
}

void ShardedScheduler::reset() {
  flat_->reset();
  cells_.clear();
  layout_.reset();
  home_.clear();
  starved_.clear();
  job_cell_.clear();
  migrations_ = 0;
  resolved_cells_ = 0;
  topo_version_ = 1;
  seen_cluster_epoch_ = 0;
  cap_signature_.clear();
  merge_state_.clear();  // held spec pointers die with layout_
}

void ShardedScheduler::ensure_cells(const SchedulerContext& ctx) {
  const cluster::ClusterSpec& spec = *ctx.spec;
  const int want = cfg_.cells == 0 ? cluster::auto_cells(spec.num_nodes()) : cfg_.cells;
  const int K = std::clamp(want, 1, std::max(1, spec.num_nodes()));

  // Topology-change detection: trust cluster_epoch when the caller maintains
  // one; otherwise compare the dense per-(node, type) capacity signature.
  bool changed = false;
  if (ctx.cluster_epoch != 0) {
    changed = seen_cluster_epoch_ != 0 && ctx.cluster_epoch != seen_cluster_epoch_;
    seen_cluster_epoch_ = ctx.cluster_epoch;
  } else {
    cap_scratch_.clear();
    cap_scratch_.reserve(static_cast<std::size_t>(spec.num_nodes()) *
                         static_cast<std::size_t>(spec.num_types()));
    for (const auto& n : spec.nodes()) {
      for (GpuTypeId r = 0; r < spec.num_types(); ++r) cap_scratch_.push_back(n.capacity(r));
    }
    changed = !cap_signature_.empty() && cap_scratch_ != cap_signature_;
    cap_signature_.swap(cap_scratch_);
  }

  if (layout_ && !changed && resolved_cells_ == K) return;
  if (layout_) ++topo_version_;  // repartition invalidates cell-local caches

  resolved_cells_ = K;
  layout_ = cluster::partition_cells(spec, K);
  if (static_cast<int>(cells_.size()) != K) {
    // First multi-cell round (or a resize): give every cell its own policy
    // instance so warm solver state is cell-private. restore_state() may
    // have pre-built these.
    cells_.clear();
    if (K > 1) {
      cells_.resize(static_cast<std::size_t>(K));
      for (auto& cell : cells_) {
        cell.scheduler = factory_();
        if (!cell.scheduler) {
          throw std::runtime_error("ShardedScheduler: factory returned null");
        }
      }
    }
  }
}

void ShardedScheduler::route_jobs(const SchedulerContext& ctx) {
  const cluster::CellLayout& L = *layout_;
  const int K = resolved_cells_;
  job_cell_.assign(ctx.jobs.size(), -1);

  auto& load = route_load_;
  auto& cap = route_cap_;
  load.assign(static_cast<std::size_t>(K), 0.0);
  cap.assign(static_cast<std::size_t>(K), 1.0);
  for (int c = 0; c < K; ++c) {
    cap[static_cast<std::size_t>(c)] = std::max(1, L.cell_capacity(c));
  }

  std::map<JobId, JobEntry> fresh;

  // Pass 1 — forced and sticky routing. A job holding devices is pinned to
  // the cell that owns them (preempting it to rebalance would burn a
  // reallocation penalty the policy never asked for); a known job keeps its
  // previous cell so per-cell policy state stays meaningful. "Known" means
  // the sticky entry's arrival matches: a recycled JobId belongs to a new
  // job and must be routed fresh, not sent to the dead job's cell.
  for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
    const JobView& j = ctx.jobs[i];
    int cell = -1;
    const auto& ps = j.current_allocation.placements();
    if (!ps.empty()) {
      cell = L.cell_of_node[static_cast<std::size_t>(ps.front().node)];
      for (const auto& p : ps) {
        if (L.cell_of_node[static_cast<std::size_t>(p.node)] != cell) {
          cell = -1;  // spans cells (stale after a repartition): re-route
          break;
        }
      }
    }
    if (cell < 0) {
      const auto it = home_.find(j.id());
      if (it != home_.end() && same_job(it->second, j) && it->second.value >= 0 &&
          it->second.value < K) {
        cell = it->second.value;
      }
    }
    if (cell >= 0) {
      job_cell_[i] = cell;
      load[static_cast<std::size_t>(cell)] += j.spec->num_workers;
      fresh.emplace(j.id(), JobEntry{cell, j.spec->arrival});
    }
  }

  // Pass 2 — new jobs land on the least-loaded cell relative to capacity,
  // distributing the round's job quota proportionally to cell size.
  for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
    if (job_cell_[i] >= 0) continue;
    const JobView& j = ctx.jobs[i];
    int best = 0;
    for (int c = 1; c < K; ++c) {
      const auto bc = static_cast<std::size_t>(best);
      const auto cc = static_cast<std::size_t>(c);
      if (load[cc] / cap[cc] < load[bc] / cap[bc]) best = c;
    }
    job_cell_[i] = best;
    load[static_cast<std::size_t>(best)] += j.spec->num_workers;
    fresh.emplace(j.id(), JobEntry{best, j.spec->arrival});
  }

  home_.swap(fresh);
}

void ShardedScheduler::build_cell_contexts(const SchedulerContext& ctx) {
  const cluster::CellLayout& L = *layout_;
  const int K = resolved_cells_;

  for (int c = 0; c < K; ++c) {
    Cell& cell = cells_[static_cast<std::size_t>(c)];
    cell.ctx.spec = &L.specs[static_cast<std::size_t>(c)];
    cell.ctx.now = ctx.now;
    cell.ctx.round_length = ctx.round_length;
    cell.ctx.network = ctx.network;
    cell.ctx.jobs.clear();
    // Each cell solves on its own round-scratch arena (cells run on separate
    // pool lanes; arenas are single-threaded). Re-attached every round
    // because vector<Cell> growth moves cells.
    cell.arena.reset();
    cell.ctx.arena = &cell.arena;
  }

  for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
    const int c = job_cell_[i];
    Cell& cell = cells_[static_cast<std::size_t>(c)];
    cell.ctx.jobs.push_back(ctx.jobs[i]);
    JobView& v = cell.ctx.jobs.back();
    const auto& ps = v.current_allocation.placements();
    if (ps.empty()) continue;
    // Remap the held allocation into cell-local node ids; an allocation that
    // is no longer fully inside the cell reads as "paused" to the policy.
    const auto& cell_nodes = L.nodes[static_cast<std::size_t>(c)];
    std::vector<cluster::TaskPlacement> local;
    local.reserve(ps.size());
    bool ok = true;
    for (const auto& p : ps) {
      const auto it = std::lower_bound(cell_nodes.begin(), cell_nodes.end(), p.node);
      if (it == cell_nodes.end() || *it != p.node) {
        ok = false;
        break;
      }
      local.push_back(cluster::TaskPlacement{
          static_cast<NodeId>(it - cell_nodes.begin()), p.type, p.count});
    }
    v.current_allocation =
        ok ? cluster::JobAllocation(std::move(local)) : cluster::JobAllocation();
  }

  // Per-cell epochs: bump jobs_epoch exactly when the cell's job set changed,
  // so inner policies keep their cheap no-change round path.
  for (int c = 0; c < K; ++c) {
    Cell& cell = cells_[static_cast<std::size_t>(c)];
    bool same = cell.ctx.jobs.size() == cell.last_ids.size();
    if (same) {
      for (std::size_t i = 0; i < cell.ctx.jobs.size(); ++i) {
        if (cell.ctx.jobs[i].id() != cell.last_ids[i]) {
          same = false;
          break;
        }
      }
    }
    if (!same) {
      ++cell.jobs_epoch;
      cell.last_ids.clear();
      for (const auto& j : cell.ctx.jobs) cell.last_ids.push_back(j.id());
    }
    cell.ctx.jobs_epoch = cell.jobs_epoch;
    cell.ctx.cluster_epoch = topo_version_;
  }
}

cluster::JobAllocation ShardedScheduler::to_global(int cell,
                                                   const cluster::JobAllocation& a) const {
  const auto& cell_nodes = layout_->nodes[static_cast<std::size_t>(cell)];
  std::vector<cluster::TaskPlacement> ps = a.placements();
  for (auto& p : ps) p.node = cell_nodes[static_cast<std::size_t>(p.node)];
  return cluster::JobAllocation(std::move(ps));
}

cluster::AllocationMap ShardedScheduler::schedule(const SchedulerContext& ctx) {
  if (cfg_.cells == 1) return flat_->schedule(ctx);
  if (ctx.spec == nullptr) throw std::invalid_argument("ShardedScheduler: null spec");
  ensure_cells(ctx);
  if (resolved_cells_ <= 1) return flat_->schedule(ctx);

  obs::ScopedSpan span("sched", "shard.schedule", 1);
  const int K = resolved_cells_;
  const cluster::CellLayout& L = *layout_;
  span.arg("cells", K);
  span.arg("jobs", static_cast<double>(ctx.jobs.size()));

  route_jobs(ctx);
  build_cell_contexts(ctx);

  // Solve every cell concurrently. Results are index-addressed, so the merge
  // below is independent of scheduling order across threads.
  auto locals = common::parallel_map(static_cast<std::size_t>(K), [this](std::size_t c) {
    obs::ScopedSpan cell_span("sched", "shard.cell", 1);
    Cell& cell = cells_[c];
    cell_span.arg("cell", static_cast<double>(c));
    cell_span.arg("jobs", static_cast<double>(cell.ctx.jobs.size()));
    return cell.scheduler->schedule(cell.ctx);
  });

  // Deterministic merge in ascending cell order; keep cell-local usage
  // states around for the refinement pass. The states are persistent
  // scratch: while the layout is unchanged they are clear()ed in place
  // instead of reconstructed (K usage-vector allocations per round saved);
  // a repartition (new spec objects) rebuilds them.
  cluster::AllocationMap out;
  auto& state = merge_state_;
  bool reuse = static_cast<int>(state.size()) == K;
  for (int c = 0; reuse && c < K; ++c) {
    reuse = &state[static_cast<std::size_t>(c)].spec() == &L.specs[static_cast<std::size_t>(c)];
  }
  if (!reuse) {
    state.clear();
    state.reserve(static_cast<std::size_t>(K));
    for (int c = 0; c < K; ++c) state.emplace_back(&L.specs[static_cast<std::size_t>(c)]);
  } else {
    for (auto& s : state) s.clear();
  }
  auto& used = merge_used_;
  used.assign(static_cast<std::size_t>(K), 0.0);
  for (int c = 0; c < K; ++c) {
    for (const auto& [id, alloc] : locals[static_cast<std::size_t>(c)]) {
      state[static_cast<std::size_t>(c)].allocate(alloc);
      used[static_cast<std::size_t>(c)] += alloc.total_workers();
      out.emplace(id, to_global(c, alloc));
    }
  }

  // Track per-job starvation: rounds in a row the cell's policy left the
  // job unplaced. A starved job is a structural casualty of sharding (its
  // gang may not fit any cell the way the policy wants to place it), so the
  // refinement below eventually force-places it. Rebuilding the map from
  // the live job set prunes completed/killed jobs; the arrival guard keeps
  // a recycled id from resuming the dead job's count mid-way.
  {
    std::map<JobId, JobEntry> fresh;
    for (const auto& j : ctx.jobs) {
      if (out.count(j.id()) != 0) continue;
      const auto it = starved_.find(j.id());
      const int prev =
          it != starved_.end() && same_job(it->second, j) ? it->second.value : 0;
      fresh.emplace(j.id(), JobEntry{prev + 1, j.spec->arrival});
    }
    starved_.swap(fresh);
  }

  // Cross-cell refinement: move jobs their home cell physically cannot fit
  // to the cheapest other cell. Device utilization stands in for the cell's
  // marginal price; the threshold keeps borderline moves (and ping-ponging)
  // out. Jobs the policy paused despite available capacity stay paused —
  // that was an admission decision, not a capacity limit — unless they have
  // starved past starvation_rounds, in which case the orchestrator places
  // them greedily wherever they fit, home cell and threshold included.
  long long moved = 0;
  if (cfg_.migration_threshold < 1.0 || cfg_.starvation_rounds > 0) {
    auto& cap = mig_cap_;
    cap.assign(static_cast<std::size_t>(K), 1.0);
    for (int c = 0; c < K; ++c) {
      cap[static_cast<std::size_t>(c)] = std::max(1, L.cell_capacity(c));
    }
    auto& order = mig_order_;
    order.assign(static_cast<std::size_t>(K), 0);
    for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
      const JobView& j = ctx.jobs[i];
      if (out.count(j.id()) != 0) continue;
      const int home = job_cell_[i];
      const int W = j.spec->num_workers;
      const auto usable = type_order_for(j, ctx.spec->num_types());
      if (usable.empty()) continue;
      int home_free = 0;
      for (const GpuTypeId r : usable) {
        home_free += state[static_cast<std::size_t>(home)].total_free_of_type(r);
      }
      const auto sit = starved_.find(j.id());
      const bool starving = cfg_.starvation_rounds > 0 && sit != starved_.end() &&
                            sit->second.value >= cfg_.starvation_rounds;
      const bool cramped = home_free < W && cfg_.migration_threshold < 1.0;
      if (!cramped && !starving) continue;  // the policy chose to pause this job

      const double home_util = used[static_cast<std::size_t>(home)] /
                               cap[static_cast<std::size_t>(home)];
      for (int c = 0; c < K; ++c) order[static_cast<std::size_t>(c)] = c;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const double ua = used[static_cast<std::size_t>(a)] / cap[static_cast<std::size_t>(a)];
        const double ub = used[static_cast<std::size_t>(b)] / cap[static_cast<std::size_t>(b)];
        return ua != ub ? ua < ub : a < b;
      });
      for (const int cand : order) {
        if (cand == home && !starving) continue;
        const double cand_util = used[static_cast<std::size_t>(cand)] /
                                 cap[static_cast<std::size_t>(cand)];
        if (!starving && home_util - cand_util < cfg_.migration_threshold) {
          break;  // sorted by price: no better candidate follows
        }
        auto got = cluster::take_in_type_order(state[static_cast<std::size_t>(cand)],
                                               usable, W);
        if (!got) continue;
        state[static_cast<std::size_t>(cand)].allocate(*got);
        used[static_cast<std::size_t>(cand)] += W;
        out.emplace(j.id(), to_global(cand, *got));
        if (cand != home) {
          home_[j.id()] = JobEntry{cand, j.spec->arrival};
          job_cell_[i] = cand;
          ++moved;
        }
        break;
      }
    }
  }
  migrations_ += moved;

  span.arg("migrations", static_cast<double>(moved));
  if (obs::tracing()) {
    obs::count("shard.rounds");
    obs::gauge_set("shard.cells", K);
    if (moved > 0) obs::count("shard.migrations", static_cast<std::uint64_t>(moved));
  }
  return out;
}

void ShardedScheduler::save_state(common::BinaryWriter& w) const {
  if (cfg_.cells == 1) {
    // Passthrough stays byte-compatible with the unsharded policy's state.
    flat_->save_state(w);
    return;
  }
  w.u8(2);  // sharded-state version (2: + per-entry arrival guards)
  w.i32(resolved_cells_);
  w.u64(topo_version_);
  w.i64(migrations_);
  w.u32(static_cast<std::uint32_t>(home_.size()));
  for (const auto& [id, e] : home_) {
    w.i32(id);
    w.i32(e.value);
    w.f64(e.arrival);
  }
  w.u32(static_cast<std::uint32_t>(starved_.size()));
  for (const auto& [id, e] : starved_) {
    w.i32(id);
    w.i32(e.value);
    w.f64(e.arrival);
  }
  if (resolved_cells_ > 1) {
    for (const Cell& cell : cells_) {
      w.u64(cell.jobs_epoch);
      common::write_i32_vector(w, cell.last_ids);
      cell.scheduler->save_state(w);
    }
  } else {
    flat_->save_state(w);
  }
}

void ShardedScheduler::restore_state(common::BinaryReader& r) {
  if (cfg_.cells == 1) {
    flat_->restore_state(r);
    return;
  }
  const std::uint8_t version = r.u8();
  if (version != 1 && version != 2) {
    throw std::runtime_error("ShardedScheduler: unknown state version");
  }
  resolved_cells_ = r.i32();
  topo_version_ = r.u64();
  migrations_ = r.i64();
  // Version-1 entries carry no arrival guard; restore them with the
  // match-anything sentinel so legacy snapshots stay loadable.
  home_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const JobId id = r.i32();
    const int cell = r.i32();
    const Seconds arrival = version >= 2 ? r.f64() : kAnyArrival;
    home_.emplace(id, JobEntry{cell, arrival});
  }
  starved_.clear();
  const std::uint32_t ns = r.u32();
  for (std::uint32_t i = 0; i < ns; ++i) {
    const JobId id = r.i32();
    const int rounds = r.i32();
    const Seconds arrival = version >= 2 ? r.f64() : kAnyArrival;
    starved_.emplace(id, JobEntry{rounds, arrival});
  }
  cells_.clear();
  layout_.reset();  // rebuilt from the spec on the next schedule()
  seen_cluster_epoch_ = 0;
  cap_signature_.clear();
  if (resolved_cells_ > 1) {
    cells_.resize(static_cast<std::size_t>(resolved_cells_));
    for (Cell& cell : cells_) {
      cell.scheduler = factory_();
      if (!cell.scheduler) throw std::runtime_error("ShardedScheduler: factory returned null");
      cell.jobs_epoch = r.u64();
      cell.last_ids = common::read_i32_vector(r);
      cell.scheduler->restore_state(r);
    }
  } else {
    flat_->restore_state(r);
  }
}

}  // namespace hadar::sim
