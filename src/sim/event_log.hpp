// Optional structured log of simulation events, for debugging, tests, and
// the example programs' narratives. Disabled by default (zero overhead).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace hadar::sim {

enum class EventKind { kArrival, kStart, kReallocate, kPreempt, kFinish, kStraggler };

const char* to_string(EventKind k);

struct Event {
  Seconds time = 0.0;
  EventKind kind = EventKind::kArrival;
  JobId job = kInvalidJob;
  std::string detail;  ///< e.g. the allocation string
};

class EventLog {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Seconds time, EventKind kind, JobId job, std::string detail = {});

  const std::vector<Event>& events() const { return events_; }
  std::vector<Event> of_kind(EventKind k) const;
  void clear() { events_.clear(); }

  /// One line per event, "[t=1234.0s] finish job 7 (...)".
  std::string to_string() const;

 private:
  bool enabled_ = false;
  std::vector<Event> events_;
};

}  // namespace hadar::sim
