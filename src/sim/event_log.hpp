// Optional structured log of simulation events, for debugging, tests, and
// the example programs' narratives. Disabled by default (zero overhead).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace hadar::sim {

/// Ordered so that at equal timestamps a sorted timeline reads naturally:
/// cluster events first, then kills, arrivals, (re)starts, preemptions, and
/// finally finishes. Enumerator order is the tiebreak key of sorted().
enum class EventKind {
  kNodeDown,
  kNodeUp,
  kGpuDegrade,
  kGpuRestore,
  kKill,
  kArrival,
  kStart,
  kReallocate,
  kResume,
  kPreempt,
  kStraggler,
  kFinish,
};

const char* to_string(EventKind k);

struct Event {
  Seconds time = 0.0;
  EventKind kind = EventKind::kArrival;
  JobId job = kInvalidJob;  ///< kInvalidJob for cluster-level events
  std::string detail;       ///< e.g. the allocation string
};

class EventLog {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Seconds time, EventKind kind, JobId job, std::string detail = {});

  /// Raw events in insertion order. Arrivals are recorded at the job's
  /// arrival time and finishes at the completion time, which generally
  /// differ from the round timestamp they were observed in — use sorted()
  /// for a monotone timeline.
  const std::vector<Event>& events() const { return events_; }

  /// Events stable-sorted by (time, kind, job).
  std::vector<Event> sorted() const;

  /// Events of one kind, in (time, kind, job) order.
  std::vector<Event> of_kind(EventKind k) const;
  void clear() { events_.clear(); }

  /// One line per event in (time, kind, job) order,
  /// "[t=1234.0s] finish job 7 (...)"; cluster events omit the job field.
  std::string to_string() const;

 private:
  bool enabled_ = false;
  std::vector<Event> events_;
};

}  // namespace hadar::sim
