// Optional structured log of simulation events, for debugging, tests, the
// example programs' narratives, and the service daemon's per-round
// completion/failure notifications. Disabled by default (zero overhead).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace hadar::common {
class BinaryWriter;
class BinaryReader;
}  // namespace hadar::common

namespace hadar::sim {

/// Ordered so that at equal timestamps a sorted timeline reads naturally:
/// cluster events first, then kills, arrivals, (re)starts, preemptions, and
/// finally finishes. Enumerator order is the tiebreak key of sorted().
enum class EventKind {
  kNodeDown,
  kNodeUp,
  kGpuDegrade,
  kGpuRestore,
  kKill,
  kArrival,
  kStart,
  kReallocate,
  kResume,
  kPreempt,
  kStraggler,
  kFinish,
};

const char* to_string(EventKind k);

struct Event {
  Seconds time = 0.0;
  EventKind kind = EventKind::kArrival;
  JobId job = kInvalidJob;  ///< kInvalidJob for cluster-level events
  std::string detail;       ///< e.g. the allocation string

  friend bool operator==(const Event&, const Event&) = default;
};

class EventLog {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Seconds time, EventKind kind, JobId job, std::string detail = {});

  /// Raw events in insertion order. Arrivals are recorded at the job's
  /// arrival time and finishes at the completion time, which generally
  /// differ from the round timestamp they were observed in — use sorted()
  /// for a monotone timeline.
  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Events stable-sorted by (time, kind, job). The sorted view is a
  /// maintained merge structure, not a fresh full sort: each call sorts only
  /// the events appended since the previous call and merges that run into
  /// the cached prefix, so per-round consumers (of_kind, to_string, the
  /// daemon's notification cursor) pay O(new events) instead of
  /// O(total log N) per round.
  const std::vector<Event>& sorted() const;

  /// Events appended at insertion index >= `first`, in (time, kind, job)
  /// order — the per-round drain used by the service daemon: keep a cursor
  /// at size() and ask for the delta after each round.
  std::vector<Event> sorted_since(std::size_t first) const;

  /// Events of one kind, in (time, kind, job) order.
  std::vector<Event> of_kind(EventKind k) const;
  void clear();

  /// One line per event in (time, kind, job) order,
  /// "[t=1234.0s] finish job 7 (...)"; cluster events omit the job field.
  std::string to_string() const;

  /// Bit-exact persistence for snapshots (timestamps as IEEE-754 patterns).
  void save(common::BinaryWriter& w) const;
  void restore(common::BinaryReader& r);

 private:
  bool enabled_ = false;
  std::vector<Event> events_;
  /// Lazily maintained (time, kind, job)-sorted copy of events_[0..upto).
  mutable std::vector<Event> sorted_cache_;
  mutable std::size_t sorted_upto_ = 0;
};

}  // namespace hadar::sim
