#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace hadar::obs {
namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t next_session_id() {
  static std::atomic<std::uint64_t> id{1};
  return id.fetch_add(1, std::memory_order_relaxed);
}

// Thread-local cache of "my buffer in the current session". Keyed by the
// session's process-unique id, so a session destroyed and another allocated
// at the same address cannot alias.
struct ThreadCache {
  std::uint64_t session_id = 0;
  void* buf = nullptr;
};
thread_local ThreadCache t_cache;

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out += buf;
}

}  // namespace

std::atomic<TraceSession*> TraceSession::current_{nullptr};

TraceSession::TraceSession(TraceConfig cfg)
    : cfg_(std::move(cfg)), id_(next_session_id()) {
  if (cfg_.detail < 0) cfg_.detail = 0;
}

TraceSession::~TraceSession() {
  TraceSession* self = this;
  current_.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

void TraceSession::install() {
  if (!cfg_.enabled) return;
  start_ns_ = steady_ns();
  current_.store(this, std::memory_order_release);
}

void TraceSession::uninstall() {
  TraceSession* self = this;
  current_.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

double TraceSession::now_us() const {
  return static_cast<double>(steady_ns() - start_ns_) * 1e-3;
}

TraceSession::ThreadBuf* TraceSession::buf_for_this_thread() {
  if (t_cache.session_id == id_) return static_cast<ThreadBuf*>(t_cache.buf);
  std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_unique<ThreadBuf>();
  buf->tid = static_cast<std::uint32_t>(bufs_.size());
  buf->events.reserve(1024);
  ThreadBuf* raw = buf.get();
  bufs_.push_back(std::move(buf));
  t_cache.session_id = id_;
  t_cache.buf = raw;
  return raw;
}

void TraceSession::record(TraceEvent e) {
  ThreadBuf* buf = buf_for_this_thread();
  e.tid = buf->tid;
  buf->events.push_back(std::move(e));
}

void TraceSession::instant(const char* cat, const char* name,
                           std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.phase = TracePhase::kInstant;
  e.ts_us = now_us();
  for (const TraceArg& a : args) e.add_arg(a.key, a.value);
  record(std::move(e));
}

void TraceSession::counter(const char* name, double value) {
  TraceEvent e;
  e.cat = "metric";
  e.name = name;
  e.phase = TracePhase::kCounter;
  e.ts_us = now_us();
  e.add_arg("value", value);
  record(std::move(e));
}

void TraceSession::sample_metrics(double sim_time) {
  std::lock_guard<std::mutex> lock(mu_);
  csv_.sample(sim_time);
}

std::string TraceSession::metrics_csv() const {
  std::lock_guard<std::mutex> lock(mu_);
  return csv_.csv();
}

std::vector<TraceEvent> TraceSession::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  std::size_t n = 0;
  for (const auto& b : bufs_) n += b->events.size();
  out.reserve(n);
  for (const auto& b : bufs_) {
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.ts_us < b.ts_us;
  });
  return out;
}

std::size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& b : bufs_) n += b->events.size();
  return n;
}

std::string TraceSession::chrome_json() const {
  const auto events = snapshot();
  std::string out;
  out.reserve(events.size() * 120 + 256);
  out += "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  out +=
      "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"hadar\"}}";
  for (const auto& e : events) {
    out += ",\n{\"name\": \"";
    json_escape_into(out, e.name);
    out += "\", \"cat\": \"";
    json_escape_into(out, e.cat);
    out += "\", \"ph\": \"";
    out += static_cast<char>(e.phase);
    out += "\", \"pid\": 1, \"tid\": ";
    append_number(out, e.tid);
    out += ", \"ts\": ";
    append_number(out, e.ts_us);
    if (e.phase == TracePhase::kComplete) {
      out += ", \"dur\": ";
      append_number(out, e.dur_us);
    }
    if (e.phase == TracePhase::kInstant) out += ", \"s\": \"t\"";
    if (e.num_args > 0 || e.str_key != nullptr) {
      out += ", \"args\": {";
      bool first = true;
      for (int i = 0; i < e.num_args; ++i) {
        if (!first) out += ", ";
        first = false;
        out += "\"";
        json_escape_into(out, e.args[i].key);
        out += "\": ";
        append_number(out, e.args[i].value);
      }
      if (e.str_key != nullptr) {
        if (!first) out += ", ";
        out += "\"";
        json_escape_into(out, e.str_key);
        out += "\": \"";
        json_escape_into(out, e.str_value);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool TraceSession::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : bufs_) b->events.clear();
}

void count(const char* name, std::uint64_t delta) {
  TraceSession* s = TraceSession::current();
  if (s != nullptr) s->metrics().counter(name).add(delta);
}

void gauge_set(const char* name, double value) {
  TraceSession* s = TraceSession::current();
  if (s != nullptr) s->metrics().gauge(name).set(value);
}

void observe(const char* name, double value) {
  TraceSession* s = TraceSession::current();
  if (s != nullptr) s->metrics().histogram(name, duration_buckets_ms()).observe(value);
}

std::vector<double> duration_buckets_ms() {
  // Powers of ~3.16 spanning 10 us .. 10 s; solver calls land mid-range.
  return {0.01, 0.0316, 0.1, 0.316, 1.0, 3.16, 10.0, 31.6, 100.0, 316.0, 1000.0, 10000.0};
}

}  // namespace hadar::obs
